/**
 * @file
 * HBM organization and timing configuration (paper Table 1).
 *
 * Both the Pimba device and the HBM-PIM baseline use 40 HBM stacks'
 * worth of channels matching the host GPU's memory bandwidth: HBM2E at a
 * 1.512 GHz bus for the A100 system and HBM3 at 2.626 GHz for the H100
 * system (Section 6.1 / Figure 16). The PIM clock is the bus clock
 * divided by tCCD_L = 4, i.e. 378 MHz and 657 MHz respectively.
 */

#ifndef PIMBA_DRAM_HBM_CONFIG_H
#define PIMBA_DRAM_HBM_CONFIG_H

#include <string>

#include "core/units.h"

namespace pimba {

/** DRAM timing parameters, in memory-bus clock cycles (Table 1). */
struct HbmTiming
{
    int tRCD = 14;   ///< ACT to column command (assumed; not in Table 1)
    int tRP = 14;    ///< precharge period
    int tRAS = 34;   ///< ACT to PRE minimum
    int tCCD_S = 2;  ///< column-to-column, different bank group
    int tCCD_L = 4;  ///< column-to-column, same bank group
    int tWR = 16;    ///< write recovery before PRE
    int tRTP_S = 4;  ///< read-to-precharge, different bank group
    int tRTP_L = 6;  ///< read-to-precharge, same bank group
    int tREFI = 3900;///< average refresh interval
    int tRFC = 390;  ///< refresh cycle time (assumed 260 ns @ 1.512 GHz)
    int tFAW = 30;   ///< four-activation window
    int burstCycles = 2; ///< data-bus occupancy per column burst (BL4, DDR)

    /** tRC: minimum interval between ACTs to the same bank. */
    int tRC() const { return tRAS + tRP; }
};

/** DRAM organization parameters (Table 1 plus common HBM2E geometry). */
struct HbmOrganization
{
    int banksPerBankGroup = 4;
    int bankGroupsPerPseudoChannel = 4;
    int pseudoChannelsPerChannel = 2;
    int numChannels = 40;      ///< across all stacks of the device
    int columnBytes = 32;      ///< one column access per pseudo-channel
    int rowBytes = 1024;       ///< row-buffer size per bank

    int banksPerPseudoChannel() const
    {
        return banksPerBankGroup * bankGroupsPerPseudoChannel;
    }

    int totalPseudoChannels() const
    {
        return numChannels * pseudoChannelsPerChannel;
    }

    int totalBanks() const
    {
        return totalPseudoChannels() * banksPerPseudoChannel();
    }

    int columnsPerRow() const { return rowBytes / columnBytes; }
};

/** Energy constants (O'Connor et al. MICRO'17 fine-grained DRAM). */
struct HbmEnergy
{
    double actEnergyPerRow_pJ = 909.0; ///< one row activation
    double colEnergyPerBit_pJ = 1.25;  ///< internal column access
    double ioEnergyPerBit_pJ = 1.5;    ///< off-chip transfer to the host
};

/** Full HBM + PIM clocking configuration. */
struct HbmConfig
{
    std::string name = "hbm2e";
    HbmOrganization org;
    HbmTiming timing;
    HbmEnergy energy;
    double busFreqHz = 1.512e9;

    /** PIM (SPU) clock: one COMP per tCCD_L bus cycles (Section 6.1). */
    double pimFreqHz() const
    {
        return busFreqHz / timing.tCCD_L;
    }

    /**
     * Peak off-chip bandwidth of the device in bytes/s:
     * one column burst per pseudo-channel per burstCycles.
     */
    double channelBandwidth() const
    {
        return static_cast<double>(org.totalPseudoChannels()) *
               org.columnBytes * busFreqHz / timing.burstCycles;
    }

    /**
     * Peak internal (all-bank PIM) bandwidth in bytes/s: every bank in
     * every pseudo-channel delivers one column per tCCD_L.
     */
    double internalBandwidth() const
    {
        return static_cast<double>(org.totalBanks()) * org.columnBytes *
               busFreqHz / timing.tCCD_L;
    }
};

/** A100-matched HBM2E device (Table 1; ~1.94 TB/s over 40 channels). */
HbmConfig hbm2eConfig();

/** H100-matched HBM3 device (Section 6.2, Fig. 16; ~3.36 TB/s). */
HbmConfig hbm3Config();

inline HbmConfig
hbm2eConfig()
{
    HbmConfig cfg;
    cfg.name = "hbm2e";
    cfg.busFreqHz = 1.512e9;
    return cfg;
}

inline HbmConfig
hbm3Config()
{
    HbmConfig cfg;
    cfg.name = "hbm3";
    cfg.busFreqHz = 2.626e9;
    // Same cycle-domain timing table; the faster clock shrinks wall-time.
    // tRFC scales to keep ~260 ns.
    cfg.timing.tRFC = 683;
    cfg.timing.tREFI = 6774;
    return cfg;
}

} // namespace pimba

#endif // PIMBA_DRAM_HBM_CONFIG_H
