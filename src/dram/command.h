/**
 * @file
 * DRAM command vocabulary: the standard commands plus Pimba's five custom
 * PIM commands (paper Section 5.5).
 */

#ifndef PIMBA_DRAM_COMMAND_H
#define PIMBA_DRAM_COMMAND_H

#include <cstdint>
#include <string>

#include "core/units.h"

namespace pimba {

/** Commands the pseudo-channel controller can issue. */
enum class DramCommand
{
    // Standard commands.
    ACT,          ///< activate one row in one bank
    PRE,          ///< precharge one bank
    PREA,         ///< precharge all banks
    RD,           ///< column read
    WR,           ///< column write
    REF,          ///< all-bank refresh

    // Pimba custom commands (Section 5.5).
    ACT4,         ///< gang four activations (respects tFAW)
    REG_WRITE,    ///< load an operand register from the host (data bus)
    COMP,         ///< all-bank PIM computation on one column
    RESULT_READ,  ///< drain accumulator registers to the host (data bus)
    PRECHARGES,   ///< precharge all banks after a PIM pass
};

/** Human-readable command mnemonic. */
inline std::string
commandName(DramCommand cmd)
{
    switch (cmd) {
      case DramCommand::ACT: return "ACT";
      case DramCommand::PRE: return "PRE";
      case DramCommand::PREA: return "PREA";
      case DramCommand::RD: return "RD";
      case DramCommand::WR: return "WR";
      case DramCommand::REF: return "REF";
      case DramCommand::ACT4: return "ACT4";
      case DramCommand::REG_WRITE: return "REG_WRITE";
      case DramCommand::COMP: return "COMP";
      case DramCommand::RESULT_READ: return "RESULT_READ";
      case DramCommand::PRECHARGES: return "PRECHARGES";
    }
    return "?";
}

/** True for commands that occupy the shared data bus. */
inline bool
usesDataBus(DramCommand cmd)
{
    switch (cmd) {
      case DramCommand::RD:
      case DramCommand::WR:
      case DramCommand::REG_WRITE:
      case DramCommand::RESULT_READ:
        return true;
      default:
        return false;
    }
}

/** One issued command with its timestamp, for traces and tests. */
struct CommandRecord
{
    DramCommand cmd;
    Cycles cycle;
    int bank;      ///< first bank touched (-1 for all-bank commands)

    bool operator==(const CommandRecord &other) const = default;
};

} // namespace pimba

#endif // PIMBA_DRAM_COMMAND_H
