/**
 * @file
 * Cycle-accurate command scheduler for one PIM pseudo-channel.
 *
 * Enforces the Table 1 timing constraints over the five custom commands of
 * Section 5.5 and reproduces the Fig. 11 overlap: REG_WRITEs slot into the
 * tFAW-imposed gaps between ACT4s (they only need the data bus), and
 * RESULT_READ overlaps the tRP window opened by PRECHARGES.
 *
 * All banks of the pseudo-channel operate in lock-step under the all-bank
 * commands (the all-bank design the paper adopts from prior PIMs), so one
 * scheduler instance models the whole pseudo-channel; per-device numbers
 * multiply by the pseudo-channel count.
 *
 * Refresh is handled at pass boundaries via maybeRefresh(): the host
 * schedules PIM passes between refresh windows ("aligning with DRAM
 * refresh schemes", Section 5.5), so REF is issued while banks are
 * precharged and charges tRFC.
 */

#ifndef PIMBA_DRAM_PIM_SCHEDULER_H
#define PIMBA_DRAM_PIM_SCHEDULER_H

#include <vector>

#include "dram/command.h"
#include "dram/hbm_config.h"

namespace pimba {

/** Per-command issue counters. */
struct PimCommandCounts
{
    uint64_t act4 = 0;
    uint64_t regWrite = 0;
    uint64_t comp = 0;
    uint64_t resultRead = 0;
    uint64_t precharges = 0;
    uint64_t refresh = 0;
};

/** Timing-enforcing issue engine for one pseudo-channel. */
class PimCommandScheduler
{
  public:
    /**
     * @param cfg HBM configuration (timings in bus cycles).
     * @param keep_trace Record every issued command (tests/visualization);
     *                   disable for long simulations.
     */
    explicit PimCommandScheduler(const HbmConfig &cfg,
                                 bool keep_trace = false);

    /** Gang-activate the next four banks' target rows. */
    Cycles issueAct4();

    /** Load one operand register group from the host (data bus burst). */
    Cycles issueRegWrite();

    /** One all-bank PIM computation step on one column. */
    Cycles issueComp();

    /** Drain one accumulator register group to the host. */
    Cycles issueResultRead();

    /** Precharge all banks; returns issue cycle (completion is +tRP). */
    Cycles issuePrecharges();

    /**
     * Issue any due refresh while banks are precharged. Call between PIM
     * passes. Returns the number of REF commands issued.
     */
    int maybeRefresh();

    /** Completion frontier: cycle at which all issued work is done. */
    Cycles finishCycle() const;

    /** Cycle of the last issued command. */
    Cycles lastIssueCycle() const { return lastIssue; }

    const PimCommandCounts &counts() const { return stats; }
    const std::vector<CommandRecord> &trace() const { return records; }

    /** Wall-clock time corresponding to finishCycle() — the cycle
     *  domain's only crossing into the time domain. */
    Seconds finishSeconds() const;

  private:
    void record(DramCommand cmd, Cycles cycle, int bank = -1);

    const HbmConfig cfg;
    const bool keepTrace;

    // Resource-availability frontiers (cycle numbers).
    Cycles cmdBusFree;   ///< command/address bus (1 cmd per cycle)
    Cycles dataBusFree;  ///< shared data bus (burstCycles per xfer)
    Cycles lastAct4;     ///< for the tFAW window between ACT4s
    bool anyAct4 = false;
    Cycles maxActReady;  ///< latest ACT4 issue in the open pass
    bool rowsOpen = false;
    Cycles lastComp;
    bool anyComp = false;
    Cycles bankReady;    ///< banks usable (after tRP / tRFC)
    Cycles nextRefresh;

    Cycles lastIssue;
    Cycles frontier;     ///< completion of all issued activity

    PimCommandCounts stats;
    std::vector<CommandRecord> records;
};

} // namespace pimba

#endif // PIMBA_DRAM_PIM_SCHEDULER_H
