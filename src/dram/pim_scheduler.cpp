#include "dram/pim_scheduler.h"

#include <algorithm>

#include "core/logging.h"

namespace pimba {

PimCommandScheduler::PimCommandScheduler(const HbmConfig &config,
                                         bool keep_trace)
    : cfg(config), keepTrace(keep_trace),
      nextRefresh(Cycles(config.timing.tREFI))
{}

void
PimCommandScheduler::record(DramCommand cmd, Cycles cycle, int bank)
{
    lastIssue = cycle;
    if (keepTrace)
        records.push_back({cmd, cycle, bank});
}

Cycles
PimCommandScheduler::issueAct4()
{
    const auto &t = cfg.timing;
    Cycles at = std::max({cmdBusFree, bankReady,
                          anyAct4 ? lastAct4 + Cycles(t.tFAW)
                                  : Cycles(0)});
    lastAct4 = at;
    anyAct4 = true;
    maxActReady = std::max(maxActReady, at);
    rowsOpen = true;
    cmdBusFree = at + Cycles(1);
    frontier = std::max(frontier, at + Cycles(t.tRCD));
    ++stats.act4;
    record(DramCommand::ACT4, at);
    return at;
}

Cycles
PimCommandScheduler::issueRegWrite()
{
    const auto &t = cfg.timing;
    Cycles at = std::max(cmdBusFree, dataBusFree);
    dataBusFree = at + Cycles(t.burstCycles);
    cmdBusFree = at + Cycles(1);
    frontier = std::max(frontier, dataBusFree);
    ++stats.regWrite;
    record(DramCommand::REG_WRITE, at);
    return at;
}

Cycles
PimCommandScheduler::issueComp()
{
    const auto &t = cfg.timing;
    PIMBA_ASSERT(rowsOpen, "COMP issued with no activated rows");
    Cycles at = std::max({cmdBusFree,
                          maxActReady + Cycles(t.tRCD),
                          anyComp ? lastComp + Cycles(t.tCCD_L)
                                  : Cycles(0)});
    lastComp = at;
    anyComp = true;
    cmdBusFree = at + Cycles(1);
    frontier = std::max(frontier, at + Cycles(t.tCCD_L));
    ++stats.comp;
    record(DramCommand::COMP, at);
    return at;
}

Cycles
PimCommandScheduler::issueResultRead()
{
    const auto &t = cfg.timing;
    // COMP both reads and writes the row buffer, so the register drain
    // respects both tRTP and tWR relative to the last COMP (Section 5.5).
    Cycles after_comp = anyComp
        ? lastComp + Cycles(std::max(t.tRTP_L, t.tWR))
        : Cycles(0);
    Cycles at = std::max({cmdBusFree, dataBusFree, after_comp});
    dataBusFree = at + Cycles(t.burstCycles);
    cmdBusFree = at + Cycles(1);
    frontier = std::max(frontier, dataBusFree);
    ++stats.resultRead;
    record(DramCommand::RESULT_READ, at);
    return at;
}

Cycles
PimCommandScheduler::issuePrecharges()
{
    const auto &t = cfg.timing;
    PIMBA_ASSERT(rowsOpen, "PRECHARGES issued with no activated rows");
    Cycles after_comp = anyComp
        ? lastComp + Cycles(std::max(t.tWR, t.tRTP_L))
        : Cycles(0);
    Cycles at = std::max({cmdBusFree,
                          maxActReady + Cycles(t.tRAS),
                          after_comp});
    bankReady = at + Cycles(t.tRP);
    rowsOpen = false;
    anyComp = false;
    maxActReady = Cycles(0);
    cmdBusFree = at + Cycles(1);
    frontier = std::max(frontier, bankReady);
    ++stats.precharges;
    record(DramCommand::PRECHARGES, at);
    return at;
}

int
PimCommandScheduler::maybeRefresh()
{
    const auto &t = cfg.timing;
    PIMBA_ASSERT(!rowsOpen, "refresh requires all banks precharged");
    int issued = 0;
    while (bankReady >= nextRefresh ||
           std::max(cmdBusFree, bankReady) >= nextRefresh) {
        Cycles at = std::max({cmdBusFree, bankReady, nextRefresh});
        bankReady = at + Cycles(t.tRFC);
        cmdBusFree = at + Cycles(1);
        frontier = std::max(frontier, bankReady);
        nextRefresh += Cycles(t.tREFI);
        ++stats.refresh;
        record(DramCommand::REF, at);
        ++issued;
    }
    return issued;
}

Cycles
PimCommandScheduler::finishCycle() const
{
    return frontier;
}

Seconds
PimCommandScheduler::finishSeconds() const
{
    return cyclesToSeconds(finishCycle(), cfg.busFreqHz);
}

} // namespace pimba
