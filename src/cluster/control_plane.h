/**
 * @file
 * SLO-aware fleet control plane (docs/control-plane.md): a replica
 * autoscaler driven by queue-depth / head-of-line-wait signals sampled
 * on the fleet's event calendar, priority tiers layered over the
 * request classes, per-class TTFT/total deadlines that cancel queued or
 * evict running requests, and per-class synthetic prefix ids that feed
 * the cache-affinity router.
 *
 * Everything here is strictly opt-in: a default-constructed
 * ControlPlaneConfig reports anyEnabled() == false and the fleet runs
 * its classic static paths byte-for-byte unchanged. When any feature is
 * on, Fleet::runControlled() pumps a dedicated calendar (arrivals,
 * warm-up completions, deadline timers, autoscaler ticks) and this
 * class owns the replica activation state machine:
 *
 *   Inactive --scaleUp(warm-up)--> Warming --timer--> Active
 *   Active --scaleDown--> Draining (keeps serving its backlog, gets no
 *   new routes) --scaleUp while still busy--> Active (drain cancelled,
 *   no new warm-up; an idle drained replica has been released and pays
 *   the full warm-up again)
 *
 * Replica-seconds are billed from warm-up start (spinning a replica up
 * costs its warm-up time too) until drain, plus each drained replica's
 * lazily-served backlog tail; replicas still active at the end bill to
 * the run's makespan. The trajectory and warm-up spans are recorded for
 * the property-test suite.
 */

#ifndef PIMBA_CLUSTER_CONTROL_PLANE_H
#define PIMBA_CLUSTER_CONTROL_PLANE_H

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/units.h"

namespace pimba {

class ServingEngine;

/** Per-class cancellation deadlines, both relative to arrival. +inf
 *  (the default) disables the respective timer. */
struct ClassDeadline
{
    /** Cancel if the first output token has not been delivered by
     *  arrival + ttft (queued requests are dropped, running ones
     *  evicted; a request whose first token is out is left alone). */
    Seconds ttft{std::numeric_limits<double>::infinity()};
    /** Cancel outright if not completed by arrival + total. */
    Seconds total{std::numeric_limits<double>::infinity()};

    bool any() const
    {
        return ttft < Seconds(std::numeric_limits<double>::infinity()) ||
               total < Seconds(std::numeric_limits<double>::infinity());
    }
};

/** Autoscaler policy knobs. Disabled by default. */
struct AutoscalerConfig
{
    bool enabled = false;
    size_t minReplicas = 1;
    /** 0 resolves to the fleet size. */
    size_t maxReplicas = 0;
    /** Replicas routable at t = 0; 0 resolves to minReplicas. */
    size_t initialReplicas = 0;
    /** Signal sampling period (one calendar tick per interval). */
    Seconds interval{5.0};
    /** Scale up when the mean queue depth across routable replicas
     *  reaches this. */
    double scaleUpQueueDepth = 8.0;
    /** Scale down when the mean queue depth falls to this (0 disables
     *  scale-down — the monotone-trajectory property-test mode). */
    double scaleDownQueueDepth = 1.0;
    /** SLO-attainment signal: also scale up when the oldest queued
     *  request has waited at least this long (0 disables). */
    Seconds scaleUpWait{0.0};
    /** Time between a scale-up decision and the replica accepting
     *  work. The replica is billed from the decision instant. */
    Seconds warmup{2.0};
};

/** Fleet-level control-plane configuration (scenario key
 *  "controlPlane" plus the fleet-level "priorities"/"deadlines"
 *  arrays; see docs/control-plane.md). */
struct ControlPlaneConfig
{
    AutoscalerConfig autoscaler;
    /** Priority tier per request class (higher = more important);
     *  propagated into every replica engine's EngineConfig. */
    std::vector<int> tierByClass;
    /** Cancellation deadlines per request class. */
    std::vector<ClassDeadline> deadlines;
    /** Synthetic shared-prefix length (tokens) per request class; the
     *  control plane stamps Request::prefixLen from it so engines skip
     *  warm prefixes and the cache-affinity router can score replicas
     *  by locality. */
    std::vector<uint64_t> prefixTokensByClass;

    /** Any feature on? False for a default-constructed config — the
     *  fleet then never enters the controlled run path. */
    bool anyEnabled() const
    {
        return autoscaler.enabled || !tierByClass.empty() ||
               !deadlines.empty() || !prefixTokensByClass.empty();
    }

    int tierOf(uint32_t classId) const
    {
        return classId < tierByClass.size() ? tierByClass[classId] : 0;
    }

    uint64_t prefixTokensOf(uint32_t classId) const
    {
        return classId < prefixTokensByClass.size()
                   ? prefixTokensByClass[classId]
                   : 0;
    }

    /** Deadlines of @p classId; nullptr when none are configured. */
    const ClassDeadline *deadlineOf(uint32_t classId) const
    {
        return classId < deadlines.size() && deadlines[classId].any()
                   ? &deadlines[classId]
                   : nullptr;
    }
};

/** Validate @p cfg against a fleet of @p fleetSize replicas. Returns
 *  the empty string when sane, else one actionable message. */
std::string validateControlPlaneConfig(const ControlPlaneConfig &cfg,
                                       size_t fleetSize);

/** One point of the replica-count trajectory: after the change at
 *  @c time, @c provisioned replicas (routable + warming) are billed. */
struct ScaleEvent
{
    Seconds time{0.0};
    size_t provisioned = 0;
};

/** One warm-up interval: replica @c replica was provisioned at
 *  @c start and accepted no work before @c ready. */
struct WarmupSpan
{
    size_t replica = 0;
    Seconds start{0.0};
    Seconds ready{0.0};
};

/** Control-plane outcome folded into FleetReport. */
struct ControlPlaneReport
{
    bool enabled = false;
    /** Provisioned-replica trajectory, starting with the t = 0 point. */
    std::vector<ScaleEvent> trajectory;
    /** Replica-seconds billed (the autoscaler's cost metric). */
    Seconds replicaSeconds{0.0};
    /** Warm-up spans, for the no-admission-while-warming invariant. */
    std::vector<WarmupSpan> warmups;
    uint64_t cancelledRequests = 0;
    uint64_t wastedTokens = 0;
};

/**
 * Replica activation state machine + replica-second billing. Owned by
 * Fleet::runControlled(); the signal evaluation and calendar pumping
 * stay in the fleet, this class answers "who is routable" and records
 * the audit trail the property tests replay.
 */
class ControlPlane
{
  public:
    ControlPlane(const ControlPlaneConfig &cfg, size_t fleetSize);

    /** Replica indices currently accepting routed work (ascending). */
    const std::vector<size_t> &pool() const { return routable; }

    /** Routable + warming — the replicas currently being billed. */
    size_t provisioned() const { return routable.size() + warming; }

    /** Replica indices in the Draining state (ascending) — still
     *  serving their backlog, so the fleet keeps advancing them. */
    std::vector<size_t> drainingReplicas() const;

    bool canScaleUp() const { return provisioned() < maxReplicas; }
    bool canScaleDown() const
    {
        return routable.size() > minReplicas;
    }

    struct ScaleUp
    {
        size_t replica = 0;
        Seconds ready{0.0}; ///< when the replica becomes routable
        bool instant = false; ///< drain cancelled, no warm-up needed
    };

    /** Provision one more replica at @p now. A draining replica that
     *  still has work (per @p engines) reactivates instantly; otherwise
     *  the lowest-index cold replica starts its warm-up and the caller
     *  posts a calendar entry for @c ready. Requires canScaleUp(). */
    ScaleUp scaleUp(Seconds now,
                    const std::vector<ServingEngine> &engines);

    /** Warm-up timer fired: @p replica joins the routable pool. */
    void warmupDone(size_t replica, Seconds now);

    /** Drain the highest-index routable replica at @p now; it keeps
     *  serving queued work but receives no new routes. Returns its
     *  index. Requires canScaleDown(). */
    size_t scaleDown(Seconds now);

    /** Close the books at @p makespan: active/warming replicas bill to
     *  the makespan, drained replicas bill their lazily-served backlog
     *  tail (each engine's final clock). Call once, after the engines
     *  have drained. */
    void finalize(Seconds makespan,
                  const std::vector<ServingEngine> &engines);

    const ControlPlaneReport &report() const { return rep; }

  private:
    enum class State
    {
        Inactive, ///< never provisioned (cold)
        Warming,  ///< provisioned, warm-up timer pending
        Active,   ///< routable
        Draining, ///< deprovisioned, serving out its backlog
    };

    void rebuildPool();
    void record(Seconds time);

    ControlPlaneConfig cfg;
    size_t minReplicas = 1;
    size_t maxReplicas = 1;
    std::vector<State> state;
    std::vector<Seconds> billedFrom; ///< per-replica open bill start
    std::vector<Seconds> drainedAt;  ///< last drain instant (Draining)
    std::vector<size_t> routable;
    size_t warming = 0;
    ControlPlaneReport rep;
};

} // namespace pimba

#endif // PIMBA_CLUSTER_CONTROL_PLANE_H
