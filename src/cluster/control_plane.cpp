#include "cluster/control_plane.h"

#include <algorithm>

#include "core/logging.h"
#include "serving/engine.h"

namespace pimba {

std::string
validateControlPlaneConfig(const ControlPlaneConfig &cfg,
                           size_t fleetSize)
{
    if (!cfg.anyEnabled())
        return "";
    const AutoscalerConfig &as = cfg.autoscaler;
    if (as.enabled) {
        const size_t maxR =
            as.maxReplicas != 0 ? as.maxReplicas : fleetSize;
        const size_t initR = as.initialReplicas != 0
                                 ? as.initialReplicas
                                 : as.minReplicas;
        if (as.minReplicas < 1)
            return "controlPlane: minReplicas must be >= 1";
        if (maxR > fleetSize)
            return "controlPlane: maxReplicas " +
                   std::to_string(maxR) + " exceeds the fleet's " +
                   std::to_string(fleetSize) + " replicas";
        if (as.minReplicas > maxR)
            return "controlPlane: minReplicas " +
                   std::to_string(as.minReplicas) +
                   " exceeds maxReplicas " + std::to_string(maxR);
        if (initR < as.minReplicas || initR > maxR)
            return "controlPlane: initialReplicas " +
                   std::to_string(initR) + " outside [" +
                   std::to_string(as.minReplicas) + ", " +
                   std::to_string(maxR) + "]";
        if (!(as.interval > Seconds(0.0)))
            return "controlPlane: intervalSec must be positive";
        if (as.warmup < Seconds(0.0))
            return "controlPlane: warmupSec must be >= 0";
        if (!(as.scaleUpQueueDepth > 0.0))
            return "controlPlane: scaleUpQueueDepth must be positive";
        if (as.scaleDownQueueDepth < 0.0)
            return "controlPlane: scaleDownQueueDepth must be >= 0";
        if (as.scaleDownQueueDepth > 0.0 &&
            as.scaleDownQueueDepth >= as.scaleUpQueueDepth)
            return "controlPlane: scaleDownQueueDepth must be below "
                   "scaleUpQueueDepth (hysteresis), got " +
                   std::to_string(as.scaleDownQueueDepth) + " vs " +
                   std::to_string(as.scaleUpQueueDepth);
        if (as.scaleUpWait < Seconds(0.0))
            return "controlPlane: scaleUpWaitSec must be >= 0";
    }
    for (size_t c = 0; c < cfg.deadlines.size(); ++c) {
        const ClassDeadline &d = cfg.deadlines[c];
        if (!(d.ttft > Seconds(0.0)) || !(d.total > Seconds(0.0)))
            return "deadlines[" + std::to_string(c) +
                   "]: ttft/total must be positive seconds";
    }
    return "";
}

ControlPlane::ControlPlane(const ControlPlaneConfig &cfg_,
                           size_t fleetSize)
    : cfg(cfg_)
{
    PIMBA_ASSERT(fleetSize >= 1, "control plane over an empty fleet");
    PIMBA_ASSERT(
        validateControlPlaneConfig(cfg, fleetSize).empty(),
        "control-plane config must be validated before construction");
    const AutoscalerConfig &as = cfg.autoscaler;
    if (as.enabled) {
        minReplicas = as.minReplicas;
        maxReplicas = as.maxReplicas != 0 ? as.maxReplicas : fleetSize;
    } else {
        // No autoscaler: the whole fleet is statically routable.
        minReplicas = fleetSize;
        maxReplicas = fleetSize;
    }
    const size_t initial =
        as.enabled ? (as.initialReplicas != 0 ? as.initialReplicas
                                              : minReplicas)
                   : fleetSize;
    state.assign(fleetSize, State::Inactive);
    billedFrom.assign(fleetSize, Seconds(0.0));
    drainedAt.assign(fleetSize, Seconds(0.0));
    for (size_t i = 0; i < initial; ++i)
        state[i] = State::Active;
    rebuildPool();
    rep.enabled = cfg.anyEnabled();
    record(Seconds(0.0));
}

std::vector<size_t>
ControlPlane::drainingReplicas() const
{
    std::vector<size_t> out;
    for (size_t i = 0; i < state.size(); ++i)
        if (state[i] == State::Draining)
            out.push_back(i);
    return out;
}

void
ControlPlane::rebuildPool()
{
    routable.clear();
    warming = 0;
    for (size_t i = 0; i < state.size(); ++i) {
        if (state[i] == State::Active)
            routable.push_back(i);
        else if (state[i] == State::Warming)
            ++warming;
    }
}

void
ControlPlane::record(Seconds time)
{
    rep.trajectory.push_back(ScaleEvent{time, provisioned()});
}

ControlPlane::ScaleUp
ControlPlane::scaleUp(Seconds now,
                      const std::vector<ServingEngine> &engines)
{
    PIMBA_ASSERT(canScaleUp(), "scaleUp() at the replica ceiling");
    ScaleUp out;
    // Prefer cancelling a drain: a replica still serving its backlog
    // is warm and rejoins instantly. An idle drained replica was
    // released — it is as cold as a never-used one.
    for (size_t i = 0; i < state.size(); ++i) {
        if (state[i] == State::Draining &&
            engines[i].queueDepth() > 0) {
            // It kept serving its backlog through the drain window —
            // bill that gap before the new active interval opens.
            rep.replicaSeconds += now - drainedAt[i];
            state[i] = State::Active;
            billedFrom[i] = now;
            rebuildPool();
            record(now);
            out.replica = i;
            out.ready = now;
            out.instant = true;
            return out;
        }
    }
    for (size_t i = 0; i < state.size(); ++i) {
        if (state[i] != State::Inactive &&
            state[i] != State::Draining)
            continue;
        if (state[i] == State::Draining)
            // Cold re-provision of a released replica: bill whatever
            // backlog tail it lazily served after its drain.
            rep.replicaSeconds += std::max(
                Seconds(0.0), engines[i].now() - drainedAt[i]);
        state[i] = State::Warming;
        billedFrom[i] = now; // warm-up time is billed too
        rebuildPool();
        record(now);
        rep.warmups.push_back(
            WarmupSpan{i, now, now + cfg.autoscaler.warmup});
        out.replica = i;
        out.ready = now + cfg.autoscaler.warmup;
        out.instant = false;
        return out;
    }
    PIMBA_PANIC("canScaleUp() with no provisionable replica");
}

void
ControlPlane::warmupDone(size_t replica, Seconds now)
{
    PIMBA_ASSERT(replica < state.size() &&
                     state[replica] == State::Warming,
                 "warm-up completion for a replica not warming");
    (void)now;
    state[replica] = State::Active;
    rebuildPool();
}

size_t
ControlPlane::scaleDown(Seconds now)
{
    PIMBA_ASSERT(canScaleDown(), "scaleDown() at the replica floor");
    const size_t victim = routable.back();
    state[victim] = State::Draining;
    rep.replicaSeconds += now - billedFrom[victim];
    drainedAt[victim] = now;
    rebuildPool();
    record(now);
    return victim;
}

void
ControlPlane::finalize(Seconds makespan,
                       const std::vector<ServingEngine> &engines)
{
    for (size_t i = 0; i < state.size(); ++i) {
        switch (state[i]) {
        case State::Inactive:
            break;
        case State::Warming:
        case State::Active:
            rep.replicaSeconds +=
                std::max(makespan, billedFrom[i]) - billedFrom[i];
            break;
        case State::Draining:
            // The drained backlog was served lazily; bill the tail up
            // to the engine's final clock (zero if it was idle).
            rep.replicaSeconds += std::max(
                Seconds(0.0), engines[i].now() - drainedAt[i]);
            break;
        }
    }
}

} // namespace pimba
