/**
 * @file
 * Pluggable request routers for the cluster fleet.
 *
 * A Router picks which replica serves each arriving request, given a
 * snapshot of every candidate replica's load at the arrival instant.
 * Four policies ship:
 *
 *  - RoundRobin: rotate through the replicas regardless of load — the
 *    baseline every load-aware policy must beat, and the one that
 *    drowns the slow replicas of a heterogeneous fleet.
 *  - JoinShortestQueue: fewest unfinished requests (queued + resident).
 *  - LeastOutstandingTokens: fewest outstanding work tokens (prompt
 *    tokens still to prefill plus output tokens still to generate) — a
 *    finer signal than request counts when lengths vary.
 *  - PowerOfTwoChoices: sample two distinct replicas with a seeded
 *    LFSR, send to the less token-loaded of the pair — near-JSQ balance
 *    at O(1) state inspection (The Power of Two Choices, Mitzenmacher).
 *
 * Every policy is deterministic: ties break toward the lowest replica
 * index, and the only randomness (PowerOfTwoChoices sampling) flows
 * from the seed, so a fleet run is a pure function of trace + config.
 */

#ifndef PIMBA_CLUSTER_ROUTER_H
#define PIMBA_CLUSTER_ROUTER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serving/request.h"

namespace pimba {

/** Selectable routing policy. */
enum class RouterPolicy
{
    RoundRobin,             ///< rotate, load-blind
    JoinShortestQueue,      ///< fewest unfinished requests
    LeastOutstandingTokens, ///< fewest outstanding work tokens
    PowerOfTwoChoices,      ///< seeded 2-sample, less token-loaded wins
    /// Prefer the replica holding the most of this request's class
    /// prefix, among replicas within a small queue-depth slack of the
    /// shortest queue (locality must not starve load balance). Only
    /// meaningful under the control plane, which stamps
    /// Request::prefixLen and feeds cachedPrefixBlocks into the
    /// snapshots; with those at zero it degenerates to JSQ.
    CacheAffinity,
};

/** Human-readable policy name ("rr", "jsq", "lot", "p2c",
 *  "cache-affinity"). */
std::string routerName(RouterPolicy policy);

/** The load-only routing policies, for sweeps and tests. Excludes
 *  CacheAffinity deliberately: fleet sweeps iterate this list against
 *  traces with no prefix ids, where cache-affinity is just JSQ. */
const std::vector<RouterPolicy> &allRouterPolicies();

/** One replica's load at a routing instant. */
struct ReplicaSnapshot
{
    size_t queueDepth = 0;         ///< unfinished requests (queued + run)
    uint64_t outstandingTokens = 0; ///< work tokens still to serve
    /// Priority-weighted unfinished work (sum of tier + 1); load-tie
    /// break toward the replica hosting less important work. Zero in
    /// untiered fleets, leaving every legacy pick unchanged.
    uint64_t tierPressure = 0;
    /// Blocks of the *arriving request's* class prefix this replica
    /// has warm — the cache-affinity locality signal. Zero for
    /// requests without a prefix id.
    uint64_t cachedPrefixBlocks = 0;
};

/** Request-to-replica routing policy. */
class Router
{
  public:
    virtual ~Router() = default;

    virtual RouterPolicy policy() const = 0;

    /**
     * Index into @p pool of the replica that serves @p r. @p pool holds
     * one snapshot per candidate replica, in replica order; it is never
     * empty.
     */
    virtual size_t route(const std::vector<ReplicaSnapshot> &pool,
                         const Request &r) = 0;
};

/** Build a router. @p seed drives PowerOfTwoChoices sampling. */
std::unique_ptr<Router> makeRouter(RouterPolicy policy,
                                   uint32_t seed = 0x5EEDC4A5u);

} // namespace pimba

#endif // PIMBA_CLUSTER_ROUTER_H
