/**
 * @file
 * Canonical cluster testbeds shared by bench_cluster_sweep and
 * tests/cluster, so what the bench prints is exactly what the tests
 * pin (the same discipline serving/workload.h applies one layer down).
 * One seeded uniform-length Poisson trace, one heterogeneous
 * router-shootout fleet, and one colocated/disaggregated Pimba pair.
 */

#ifndef PIMBA_CLUSTER_WORKLOAD_H
#define PIMBA_CLUSTER_WORKLOAD_H

#include "cluster/fleet.h"

namespace pimba {

/**
 * The canonical cluster trace: Poisson arrivals, uniform lengths
 * (input 256..768, output 128..384 — mean 512/256; the variance is
 * what separates the token-aware routers from request counting).
 */
std::vector<Request> clusterTrace(double rate, int num_requests,
                                  uint32_t seed = 0x5EEDC0DEu);

/**
 * The router testbed: 2x Pimba + 2x GPU — fast and slow replicas in
 * one fleet, where load-blind round-robin drowns the GPUs.
 */
FleetConfig heterogeneousFleet(
    RouterPolicy router = RouterPolicy::RoundRobin);

/** Colocated n x Pimba baseline (join-shortest-queue routing), every
 *  replica costing its steps under @p mode. */
FleetConfig colocatedPimbaFleet(size_t n = 4,
                                ExecutionMode mode = ExecutionMode::Blocked);

/**
 * A heterogeneous-*mode* Pimba fleet: the first half of the replicas
 * run blocked, the second half overlapped (per-replica
 * EngineConfig::executionMode), behind join-shortest-queue routing.
 * Exercises mode mixing inside one fleet — the load-aware router should
 * steer work toward the faster overlapped replicas.
 */
FleetConfig mixedModePimbaFleet(size_t n = 4);

/**
 * The same four Pimba devices split 2 prefill + 2 decode, cached
 * blocks shipped over @p link (join-shortest-queue at both stages).
 */
FleetConfig disaggregatedPimbaFleet(const LinkConfig &link = nvlinkLink());

} // namespace pimba

#endif // PIMBA_CLUSTER_WORKLOAD_H
