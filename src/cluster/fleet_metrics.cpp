#include "cluster/fleet_metrics.h"

#include <algorithm>

namespace pimba {

ServingMetrics
aggregateMetrics(const std::vector<ServingReport> &replicas,
                 Seconds makespan, const SloConfig &slo)
{
    std::vector<CompletedRequest> merged;
    size_t total = 0;
    for (const ServingReport &r : replicas)
        total += r.completed.size();
    merged.reserve(total);
    for (const ServingReport &r : replicas)
        merged.insert(merged.end(), r.completed.begin(),
                      r.completed.end());
    // computeMetrics handles the empty record set (a fleet that served
    // nothing) and a zero makespan without dividing by nothing.
    return computeMetrics(merged, makespan, slo);
}

ServingMetrics
aggregateMetricsStreaming(const std::vector<ServingReport> &replicas,
                          Seconds makespan, const SloConfig &slo,
                          double accuracy)
{
    StreamingMetrics fleet(slo, accuracy);
    for (const ServingReport &r : replicas) {
        StreamingMetrics local(slo, accuracy);
        for (const CompletedRequest &c : r.completed)
            local.observe(c);
        fleet.merge(local);
    }
    return fleet.finalize(makespan);
}

LoadStats
computeLoadStats(const std::vector<ServingReport> &replicas)
{
    LoadStats stats;
    stats.requestsPerReplica.reserve(replicas.size());
    stats.tokensPerReplica.reserve(replicas.size());
    for (const ServingReport &r : replicas) {
        // The counter, not completed.size(): streamOnly replicas drop
        // the per-request records but still count their completions.
        stats.requestsPerReplica.push_back(r.completedRequests);
        stats.tokensPerReplica.push_back(r.generatedTokens);
    }

    auto imbalance = [](const std::vector<uint64_t> &per) {
        if (per.empty())
            return 0.0;
        uint64_t sum = 0, peak = 0;
        for (uint64_t v : per) {
            sum += v;
            peak = std::max(peak, v);
        }
        if (sum == 0)
            return 0.0;
        double mean =
            static_cast<double>(sum) / static_cast<double>(per.size());
        return static_cast<double>(peak) / mean;
    };
    stats.requestImbalance = imbalance(stats.requestsPerReplica);
    stats.tokenImbalance = imbalance(stats.tokensPerReplica);
    return stats;
}

} // namespace pimba
