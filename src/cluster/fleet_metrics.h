/**
 * @file
 * Fleet-level metric aggregation: merge per-replica serving reports
 * into one fleet metrics record, quantify how (un)evenly the router
 * spread the load, and break down what cross-replica block transfers
 * cost a disaggregated fleet. Every aggregator tolerates degenerate
 * inputs — an empty fleet, or a saturated replica that completed zero
 * requests, reports zeros rather than dividing by nothing.
 */

#ifndef PIMBA_CLUSTER_FLEET_METRICS_H
#define PIMBA_CLUSTER_FLEET_METRICS_H

#include <vector>

#include "serving/engine.h"
#include "serving/metrics.h"

namespace pimba {

/**
 * Merge the per-replica completion records of @p replicas into one
 * fleet ServingMetrics over a shared @p makespan. Replicas that
 * completed nothing contribute nothing; an entirely empty fleet yields
 * the all-zero metrics record.
 */
ServingMetrics aggregateMetrics(const std::vector<ServingReport> &replicas,
                                Seconds makespan, const SloConfig &slo);

/**
 * aggregateMetrics without materializing the merged sample vector:
 * each replica's records stream through a local quantile-sketch
 * collector and the collectors merge (the mergeability that lets a
 * distributed deployment aggregate without shipping samples).
 * Count/mean/min/max/rates are exact; percentiles carry the sketch's
 * relative-error bound @p accuracy.
 */
ServingMetrics
aggregateMetricsStreaming(const std::vector<ServingReport> &replicas,
                          Seconds makespan, const SloConfig &slo,
                          double accuracy = QuantileSketch::kDefaultAccuracy);

/** How evenly the router spread requests/tokens over the replicas. */
struct LoadStats
{
    std::vector<uint64_t> requestsPerReplica; ///< completions, per replica
    std::vector<uint64_t> tokensPerReplica;   ///< generated, per replica
    /** max/mean completions across replicas; 1.0 is perfectly balanced,
     *  0.0 when the fleet served nothing. */
    double requestImbalance = 0.0;
    /** max/mean generated tokens across replicas (same convention). */
    double tokenImbalance = 0.0;
};

/** Per-replica load spread of one fleet run. */
LoadStats computeLoadStats(const std::vector<ServingReport> &replicas);

/** Cross-replica KV/state transfer costs of a disaggregated run. */
struct TransferStats
{
    uint64_t transfers = 0;     ///< prefill -> decode hand-offs
    Bytes totalBytes{0.0};      ///< KV/state bytes shipped
    Seconds totalSeconds{0.0};  ///< link seconds across all transfers
    Joules totalEnergyJ{0.0};   ///< link energy across all transfers
    LatencySummary perTransfer; ///< seconds of each hand-off
    /** Mean fraction of a transferred request's TTFT spent on the
     *  link — the disaggregation tax the TTFT percentiles carry. */
    double meanTtftShare = 0.0;
};

} // namespace pimba

#endif // PIMBA_CLUSTER_FLEET_METRICS_H
