#include "cluster/fleet.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map> // pimba-lint: allow(node-container) per-run handoff bookkeeping

#include "core/event_queue.h"
#include "core/logging.h"

namespace pimba {

namespace {

constexpr Seconds kInf{std::numeric_limits<double>::infinity()};

/// Calendar event classes: at equal times an arrival dispatches before
/// a hand-off, reproducing the lockstep loop's `ta <= th` preference.
constexpr uint32_t kArrivalClass = 0;
constexpr uint32_t kHandoffClass = 1;

/** Load snapshots of the replicas in @p pool, in pool order, into the
 *  caller's reused buffer (one routing decision per request makes this
 *  a per-request allocation otherwise). */
void
snapshotPool(const std::vector<ServingEngine> &engines,
             const std::vector<size_t> &pool,
             std::vector<ReplicaSnapshot> &snap,
             const Request *req = nullptr)
{
    snap.clear();
    snap.reserve(pool.size());
    for (size_t i : pool) {
        ReplicaSnapshot s;
        s.queueDepth = engines[i].queueDepth();
        s.outstandingTokens = engines[i].outstandingTokens();
        s.tierPressure = engines[i].tierPressure();
        // The locality signal is per arriving request (its class's
        // prefix); legacy call sites route without a request and leave
        // it zero, as do requests without a prefix id.
        if (req && req->prefixLen > 0)
            s.cachedPrefixBlocks =
                engines[i].cachedPrefixBlocks(req->classId);
        snap.push_back(s);
    }
}

/**
 * Cached per-replica next-event times gating the fleet's advanceTo
 * broadcasts. The cache is refreshed after every state-changing engine
 * call (advance/submit/drain), so a cached time later than the target
 * proves the replica is idle until after it — advanceTo would be a pure
 * no-op — and the broadcast skips it. This turns the former
 * O(requests x replicas) advance loop into O(requests x replicas with
 * due work) while leaving every engine in exactly the state the eager
 * broadcast produced (routing snapshots, and therefore reports, are
 * byte-identical).
 */
class AdvanceGate
{
  public:
    explicit AdvanceGate(std::vector<ServingEngine> &engines_)
        : engines(engines_), nextEvent(engines_.size(), Seconds(0.0))
    {}

    /** advanceTo(@p t) on every pool replica not provably idle past t. */
    void
    advancePool(const std::vector<size_t> &pool, Seconds t)
    {
        for (size_t i : pool) {
            if (nextEvent[i] > t)
                continue;
            engines[i].advanceTo(t);
            nextEvent[i] = engines[i].nextEventTime();
        }
    }

    /** advanceTo(@p t) on replica @p i alone (deadline timers target
     *  the one replica the request was routed to). */
    void
    advanceOne(size_t i, Seconds t)
    {
        if (nextEvent[i] > t)
            return;
        engines[i].advanceTo(t);
        nextEvent[i] = engines[i].nextEventTime();
    }

    /** Refresh replica @p i's cache after a submit/drain on it. */
    void refresh(size_t i) { nextEvent[i] = engines[i].nextEventTime(); }

  private:
    std::vector<ServingEngine> &engines;
    std::vector<Seconds> nextEvent;
};

/** Completion instant of a fleet-level record. */
Seconds
finishTime(const CompletedRequest &c)
{
    return c.req.arrival + c.latency;
}

/** Order fleet records by completion time (ties by id) — makes the
 *  fleet-level list deterministic regardless of replica merge order. */
void
sortByCompletion(std::vector<CompletedRequest> &completed)
{
    std::stable_sort(completed.begin(), completed.end(),
                     [](const CompletedRequest &a,
                        const CompletedRequest &b) {
                         Seconds fa = finishTime(a), fb = finishTime(b);
                         if (fa != fb)
                             return fa < fb;
                         return a.req.id < b.req.id;
                     });
}

/** One prefill-complete request waiting for its blocks to land. */
struct Handoff
{
    Seconds ready{0.0};        ///< transfer completes on the link
    Request req;               ///< the original request
    Seconds prefillFinish{0.0};
    Seconds linkSeconds{0.0};
    Seconds prefillQueueing{0.0};
    uint64_t prefillPreemptions = 0;
};

/** Min-first by (ready, id): deterministic hand-off order (the
 *  lockstep reference driver's queue; the event pump encodes the same
 *  order in its calendar keys). */
struct HandoffLater
{
    bool
    operator()(const Handoff &a, const Handoff &b) const
    {
        if (a.ready != b.ready)
            return a.ready > b.ready;
        return a.req.id > b.req.id;
    }
};

/** Calendar payload of the disaggregated pump: an arrival or a
 *  readied hand-off. */
struct FleetEvent
{
    bool isArrival = true;
    Request req;     ///< arrival payload
    Handoff handoff; ///< hand-off payload
};

/// Controlled-pump event classes. At one instant: a warm-up completion
/// makes its replica routable before a same-time arrival routes; the
/// arrival dispatches before any deadline timer (a request admitted at
/// its exact deadline instant still gets its chance); autoscaler ticks
/// observe the settled state last.
constexpr uint32_t kCpWarmupClass = 0;
constexpr uint32_t kCpArrivalClass = 1;
constexpr uint32_t kCpDeadlineClass = 2;
constexpr uint32_t kCpScaleClass = 3;

/** Calendar payload of the controlled pump. */
struct CpEvent
{
    enum class Kind
    {
        Warmup,   ///< replica's warm-up timer fired
        Arrival,  ///< one trace arrival
        Deadline, ///< a request's TTFT or total deadline
        ScaleTick ///< autoscaler signal-sampling tick
    };
    Kind kind = Kind::Arrival;
    Request req;            ///< Arrival payload
    uint64_t requestId = 0; ///< Deadline: the request to cancel
    bool ttftOnly = false;  ///< Deadline: TTFT (vs total) semantics
    size_t replica = 0;     ///< Warmup / Deadline: the target replica
};

/**
 * Shared fleet-report epilogue: order the fleet-level records, derive
 * the makespan from the last completion, and fill the aggregate
 * metrics and load stats. The caller has already populated
 * report.replicas and report.completed.
 */
void
finalizeReport(FleetReport &report, const SloConfig &slo)
{
    sortByCompletion(report.completed);
    report.makespan = report.completed.empty()
                          ? Seconds(0.0)
                          : finishTime(report.completed.back());
    report.metrics =
        computeMetrics(report.completed, report.makespan, slo);
    report.load = computeLoadStats(report.replicas);
}

} // namespace

FleetConfig
homogeneousFleet(SystemKind kind, size_t n, EngineConfig engine)
{
    FleetConfig cfg;
    cfg.replicas.assign(n, ReplicaConfig{kind, 1, engine});
    return cfg;
}

std::string
validateFleetConfig(const FleetConfig &cfg)
{
    if (cfg.replicas.empty())
        return "fleet: needs at least 1 replica (empty fleets serve "
               "nothing)";
    for (size_t i = 0; i < cfg.replicas.size(); ++i) {
        const ReplicaConfig &rc = cfg.replicas[i];
        if (rc.nGpus < 1)
            return "fleet: replica " + std::to_string(i) +
                   ": nGpus must be >= 1, got " +
                   std::to_string(rc.nGpus);
        if (std::string err = validateEngineConfig(rc.engine);
            !err.empty())
            return "fleet: replica " + std::to_string(i) + ": " + err;
    }
    if (cfg.mode == FleetMode::Disaggregated) {
        if (cfg.prefillReplicas < 1 ||
            cfg.prefillReplicas >= cfg.replicas.size())
            return "fleet: disaggregation needs >= 1 prefill and >= 1 "
                   "decode replica; got " +
                   std::to_string(cfg.prefillReplicas) +
                   " prefill of " + std::to_string(cfg.replicas.size()) +
                   " total";
        if (!(cfg.link.bandwidth > BytesPerSecond(0.0)) ||
            !(cfg.link.efficiency > 0.0))
            return "fleet: the disaggregation link needs positive "
                   "bandwidth and efficiency (" + cfg.link.name + ")";
    }
    if (!(cfg.slo.ttft > Seconds(0.0)) || !(cfg.slo.tpot > Seconds(0.0)))
        return "fleet: SLO targets must be positive seconds (ttft " +
               std::to_string(cfg.slo.ttft.value()) + ", tpot " +
               std::to_string(cfg.slo.tpot.value()) + ")";
    if (cfg.controlPlane.anyEnabled()) {
        if (cfg.mode == FleetMode::Disaggregated)
            return "fleet: the control plane drives colocated fleets "
                   "only (the disaggregated pump has no notion of "
                   "draining or warming a pool member)";
        if (std::string err = validateControlPlaneConfig(
                cfg.controlPlane, cfg.replicas.size());
            !err.empty())
            return "fleet: " + err;
    }
    return "";
}

Fleet::Fleet(const ModelConfig &model_, FleetConfig cfg_)
    : model(model_), cfg(std::move(cfg_))
{
    if (std::string err = validateFleetConfig(cfg); !err.empty())
        PIMBA_FATAL(err);
    engines.reserve(cfg.replicas.size());
    for (const ReplicaConfig &rc : cfg.replicas) {
        ServingSimulator sim(makeSystem(rc.kind, rc.nGpus));
        EngineConfig ec = rc.engine;
        // Priority tiers are a fleet-level policy; every replica engine
        // must order its queue and pick eviction victims by the same
        // tier map.
        if (!cfg.controlPlane.tierByClass.empty())
            ec.tierByClass = cfg.controlPlane.tierByClass;
        engines.emplace_back(sim, model, ec);
    }
}

std::string
Fleet::replicaLabel(size_t i) const
{
    const ReplicaConfig &rc = cfg.replicas[i];
    std::string label = "replica " + std::to_string(i) + " (" +
                        systemName(rc.kind) + " x" +
                        std::to_string(rc.nGpus);
    if (cfg.mode == FleetMode::Disaggregated)
        label += i < cfg.prefillReplicas ? ", prefill" : ", decode";
    label += ")";
    return label;
}

void
Fleet::attachObservers(const FleetObservers &o)
{
    obs = o;
    for (size_t i = 0; i < engines.size(); ++i) {
        EngineObservers eo;
        eo.tracer = obs.tracer;
        eo.pid = obs.pidBase + static_cast<int>(i);
        eo.timeline = obs.timeline;
        if (obs.timeline)
            eo.timelineTrack = obs.timeline->registerTrack(
                obs.labelPrefix + replicaLabel(i));
        if (obs.tracer)
            obs.tracer->processName(eo.pid,
                                    obs.labelPrefix + replicaLabel(i));
        engines[i].attachObservers(eo);
    }
    if (obs.tracer && cfg.mode == FleetMode::Disaggregated) {
        obs.tracer->processName(obs.interconnectPid,
                                obs.labelPrefix + "interconnect (" +
                                    cfg.link.name + ")");
        // One link lane per prefill replica: concurrent ships from
        // different sources render side by side.
        for (size_t i = 0; i < cfg.prefillReplicas; ++i)
            obs.tracer->threadName(obs.interconnectPid,
                                   static_cast<int>(i) + 1,
                                   "ships from replica " +
                                       std::to_string(i));
    }
}

std::vector<size_t>
Fleet::prefillPool() const
{
    std::vector<size_t> pool;
    size_t count = cfg.mode == FleetMode::Disaggregated
                       ? cfg.prefillReplicas
                       : engines.size();
    for (size_t i = 0; i < count; ++i)
        pool.push_back(i);
    return pool;
}

std::vector<size_t>
Fleet::decodePool() const
{
    std::vector<size_t> pool;
    size_t first = cfg.mode == FleetMode::Disaggregated
                       ? cfg.prefillReplicas
                       : 0;
    for (size_t i = first; i < engines.size(); ++i)
        pool.push_back(i);
    return pool;
}

FleetReport
Fleet::run(const std::vector<Request> &trace)
{
    std::vector<Request> sorted = trace;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Request &a, const Request &b) {
                         return a.arrival < b.arrival;
                     });
    VectorArrivalSource src(sorted);
    return run(src);
}

FleetReport
Fleet::run(ArrivalSource &arrivals)
{
    if (cfg.controlPlane.anyEnabled())
        return runControlled(arrivals, nullptr);
    return cfg.mode == FleetMode::Colocated
               ? runColocated(arrivals, nullptr)
               : runDisaggregated(arrivals);
}

FleetReport
Fleet::runStreamed(ArrivalSource &arrivals, StreamingMetrics &stream)
{
    PIMBA_ASSERT(cfg.mode == FleetMode::Colocated,
                 "runStreamed() needs a colocated fleet: the "
                 "disaggregated driver polls per-request completion "
                 "records to build transfer hand-offs, which the "
                 "record-free streaming mode drops");
    if (cfg.controlPlane.anyEnabled())
        return runControlled(arrivals, &stream);
    return runColocated(arrivals, &stream);
}

/**
 * Colocated event pump. The calendar holds exactly one pending arrival
 * (the source is pulled lazily, one ahead), and every dispatch runs
 * the same engine-call sequence the lockstep loop ran — advance the
 * pool to the arrival instant (gated by cached next-event times),
 * snapshot, route, submit — so reports are byte-identical to
 * runLockstep() on the same trace.
 *
 * With @p stream set, the run is the bounded-memory replay shape:
 * engines fold completions into the collector instead of retaining
 * records, and the fleet skips its own O(requests) assignment and
 * completion lists.
 */
FleetReport
Fleet::runColocated(ArrivalSource &arrivals, StreamingMetrics *stream)
{
    FleetReport report;
    report.mode = cfg.mode;
    report.router = cfg.router;

    // Streamed runs temporarily graft the collector onto every
    // replica's observers; the attach is restored before returning so
    // the engines stay reusable for ordinary runs.
    std::vector<EngineObservers> saved;
    if (stream) {
        for (ServingEngine &e : engines) {
            saved.push_back(e.observers());
            EngineObservers eo = e.observers();
            eo.stream = stream;
            eo.streamOnly = true;
            e.attachObservers(eo);
        }
    }

    for (ServingEngine &e : engines)
        e.begin();

    auto router = makeRouter(cfg.router, cfg.routerSeed);
    const std::vector<size_t> pool = prefillPool(); // all replicas
    AdvanceGate gate(engines);
    std::vector<ReplicaSnapshot> snap;

    EventQueue<Request> calendar;
    auto pullArrival = [&]() {
        Request r;
        if (arrivals.next(r))
            calendar.push(r.arrival, kArrivalClass, r.id, r);
    };
    pullArrival();
    while (!calendar.empty()) {
        Request r = calendar.pop().payload;
        gate.advancePool(pool, r.arrival);
        snapshotPool(engines, pool, snap);
        size_t pick = pool[router->route(snap, r)];
        engines[pick].submit(r);
        gate.refresh(pick);
        // decodeReplica stays -1: the field marks a disaggregated
        // hand-off, and a colocated replica decodes its own work.
        if (!stream)
            report.assignments.push_back(Assignment{r.id, pick, -1});
        pullArrival();
    }
    for (ServingEngine &e : engines)
        e.drain();
    for (ServingEngine &e : engines)
        report.replicas.push_back(e.finish());

    if (stream) {
        // The collector saw every completion; its last-finish instant
        // is exactly the makespan the sorted completion list yields.
        report.makespan = stream->lastFinishTime();
        report.metrics = stream->finalize(report.makespan);
        report.load = computeLoadStats(report.replicas);
        for (size_t i = 0; i < engines.size(); ++i)
            engines[i].attachObservers(saved[i]);
        return report;
    }

    // The fleet records are the merged replica records, computed
    // on directly (aggregateMetrics would merge the same vectors a
    // second time; it remains the API for callers holding only
    // per-replica reports).
    for (const ServingReport &rep : report.replicas)
        report.completed.insert(report.completed.end(),
                                rep.completed.begin(),
                                rep.completed.end());
    finalizeReport(report, cfg.slo);
    return report;
}

/**
 * Control-plane event pump (docs/control-plane.md): colocated routing
 * plus three timer families on one calendar — autoscaler ticks sampling
 * queue depth / head-of-line wait every interval, warm-up completions
 * opening scaled-up replicas, and per-request TTFT/total deadline
 * timers cancelling work that missed its SLO. Routing only ever sees
 * the control plane's routable pool, so warming and draining replicas
 * receive no new work; draining replicas keep serving their backlog on
 * their own engine clocks (advanced lazily at ticks and at drain, which
 * cannot change their simulated completion times). Deadline timers
 * carry the replica the request was routed to, so firing one advances
 * and probes a single engine — no per-request lookup table, keeping the
 * streamed-replay memory bound intact.
 */
FleetReport
Fleet::runControlled(ArrivalSource &arrivals, StreamingMetrics *stream)
{
    PIMBA_ASSERT(cfg.mode == FleetMode::Colocated,
                 "runControlled() drives colocated fleets only "
                 "(validateFleetConfig enforces this)");
    FleetReport report;
    report.mode = cfg.mode;
    report.router = cfg.router;

    // Same collector graft as runColocated: streamed runs fold
    // completions into the stream instead of retaining records.
    std::vector<EngineObservers> saved;
    if (stream) {
        for (ServingEngine &e : engines) {
            saved.push_back(e.observers());
            EngineObservers eo = e.observers();
            eo.stream = stream;
            eo.streamOnly = true;
            e.attachObservers(eo);
        }
    }

    for (ServingEngine &e : engines)
        e.begin();

    const ControlPlaneConfig &cp_cfg = cfg.controlPlane;
    ControlPlane cp(cp_cfg, engines.size());
    auto router = makeRouter(cfg.router, cfg.routerSeed);
    AdvanceGate gate(engines);
    std::vector<ReplicaSnapshot> snap;

    EventQueue<CpEvent> calendar;
    bool arrivalsExhausted = false;
    auto pullArrival = [&]() {
        Request r;
        if (arrivals.next(r)) {
            CpEvent ev;
            ev.kind = CpEvent::Kind::Arrival;
            ev.req = r;
            calendar.push(r.arrival, kCpArrivalClass, r.id, ev);
        } else {
            arrivalsExhausted = true;
        }
    };
    auto anyBusy = [&]() {
        for (const ServingEngine &e : engines)
            if (e.queueDepth() > 0)
                return true;
        return false;
    };

    const AutoscalerConfig &as = cp_cfg.autoscaler;
    if (as.enabled) {
        CpEvent tick;
        tick.kind = CpEvent::Kind::ScaleTick;
        calendar.push(as.interval, kCpScaleClass, 0, tick);
    }
    pullArrival();

    while (!calendar.empty()) {
        CalendarEntry<CpEvent> e = calendar.pop();
        const Seconds t = e.time;
        CpEvent &ev = e.payload;
        switch (ev.kind) {
        case CpEvent::Kind::Warmup:
            cp.warmupDone(ev.replica, t);
            break;
        case CpEvent::Kind::Arrival: {
            Request r = ev.req;
            r.prefixLen = cp_cfg.prefixTokensOf(r.classId);
            const std::vector<size_t> &pool = cp.pool();
            gate.advancePool(pool, t);
            snapshotPool(engines, pool, snap, &r);
            size_t pick = pool[router->route(snap, r)];
            engines[pick].submit(r);
            gate.refresh(pick);
            if (!stream)
                report.assignments.push_back(
                    Assignment{r.id, pick, -1});
            if (const ClassDeadline *d = cp_cfg.deadlineOf(r.classId)) {
                CpEvent dl;
                dl.kind = CpEvent::Kind::Deadline;
                dl.requestId = r.id;
                dl.replica = pick;
                if (d->ttft < kInf) {
                    dl.ttftOnly = true;
                    calendar.push(r.arrival + d->ttft,
                                  kCpDeadlineClass, r.id, dl);
                }
                if (d->total < kInf) {
                    dl.ttftOnly = false;
                    calendar.push(r.arrival + d->total,
                                  kCpDeadlineClass, r.id, dl);
                }
            }
            pullArrival();
            break;
        }
        case CpEvent::Kind::Deadline:
            // Bring the one engine the request lives on up to the
            // deadline instant, then cancel. Completed / already
            // cancelled / kept-its-first-token requests return false —
            // a stale timer, nothing to unwind.
            gate.advanceOne(ev.replica, t);
            engines[ev.replica].cancel(ev.requestId, t, ev.ttftOnly);
            gate.refresh(ev.replica);
            break;
        case CpEvent::Kind::ScaleTick: {
            // Sample the signals on settled state: routable replicas
            // advanced to the tick, draining replicas too (their
            // backlog drains on their own clocks either way; advancing
            // here just keeps queueDepth() — the re-activation warmth
            // test — current).
            const std::vector<size_t> &pool = cp.pool();
            gate.advancePool(pool, t);
            gate.advancePool(cp.drainingReplicas(), t);
            double depthSum = 0.0;
            Seconds oldest = kInf;
            for (size_t i : pool) {
                depthSum +=
                    static_cast<double>(engines[i].queueDepth());
                oldest =
                    std::min(oldest, engines[i].oldestQueuedArrival());
            }
            const double meanDepth =
                depthSum / static_cast<double>(pool.size());
            const bool waitBreached =
                as.scaleUpWait > Seconds(0.0) && oldest < kInf &&
                t - oldest >= as.scaleUpWait;
            if ((meanDepth >= as.scaleUpQueueDepth || waitBreached) &&
                cp.canScaleUp()) {
                ControlPlane::ScaleUp su = cp.scaleUp(t, engines);
                if (!su.instant) {
                    CpEvent w;
                    w.kind = CpEvent::Kind::Warmup;
                    w.replica = su.replica;
                    calendar.push(su.ready, kCpWarmupClass,
                                  su.replica, w);
                }
            } else if (as.scaleDownQueueDepth > 0.0 &&
                       meanDepth <= as.scaleDownQueueDepth &&
                       cp.canScaleDown()) {
                cp.scaleDown(t);
            }
            // Keep ticking while load can still change the signals;
            // once the trace is exhausted and every engine is idle the
            // autoscaler has nothing left to react to.
            if (!arrivalsExhausted || anyBusy()) {
                CpEvent tick;
                tick.kind = CpEvent::Kind::ScaleTick;
                calendar.push(t + as.interval, kCpScaleClass, 0, tick);
            }
            break;
        }
        }
    }

    for (ServingEngine &e : engines)
        e.drain();
    for (ServingEngine &e : engines)
        report.replicas.push_back(e.finish());

    if (stream) {
        report.makespan = stream->lastFinishTime();
        report.metrics = stream->finalize(report.makespan);
        report.load = computeLoadStats(report.replicas);
        for (size_t i = 0; i < engines.size(); ++i)
            engines[i].attachObservers(saved[i]);
    } else {
        for (const ServingReport &rep : report.replicas)
            report.completed.insert(report.completed.end(),
                                    rep.completed.begin(),
                                    rep.completed.end());
        finalizeReport(report, cfg.slo);
    }

    cp.finalize(report.makespan, engines);
    report.controlPlane = cp.report();
    for (const ServingReport &rep : report.replicas) {
        report.controlPlane.cancelledRequests += rep.cancelledRequests;
        report.controlPlane.wastedTokens += rep.wastedTokens;
    }
    // Cancelled requests emit no completion record, so neither the
    // merged records nor the stream saw them — surface the counts in
    // the fleet-level metrics too.
    report.metrics.cancelledRequests =
        report.controlPlane.cancelledRequests;
    report.metrics.wastedTokens = report.controlPlane.wastedTokens;
    return report;
}

/**
 * Disaggregated event pump: arrivals (class 0) and prefill-to-decode
 * hand-offs (class 1, readied by the link transfer) share one
 * calendar. Before committing to the earliest event the prefill pool
 * is advanced to its time and polled — a prefill completion inside the
 * gap may ready a hand-off earlier than anything queued, exactly the
 * re-check the lockstep loop did per iteration. An empty calendar with
 * prefill work still in flight drains the prefill pool to discover the
 * remaining hand-offs.
 */
FleetReport
Fleet::runDisaggregated(ArrivalSource &arrivals)
{
    FleetReport report;
    report.mode = cfg.mode;
    report.router = cfg.router;

    for (ServingEngine &e : engines)
        e.begin();

    const std::vector<size_t> prefills = prefillPool();
    const std::vector<size_t> decodes = decodePool();
    auto prefillRouter = makeRouter(cfg.router, cfg.routerSeed);
    // Decouple the two stages' sampling streams but keep both seeded.
    auto decodeRouter = makeRouter(cfg.router, cfg.routerSeed ^ 0x9E3779B9u);
    const LinkModel link(cfg.link);

    // pimba-lint: allow(node-container) touched once per request, not per step
    std::unordered_map<uint64_t, Request> originals;
    std::unordered_map<uint64_t, size_t> assignmentIdx; // pimba-lint: allow(node-container) ditto
    std::unordered_map<uint64_t, Handoff> handoffMeta; // pimba-lint: allow(node-container) ditto
    EventQueue<FleetEvent> calendar;
    std::vector<CompletedRequest> prefillOnly; // single-token requests
    std::vector<size_t> polled(engines.size(), 0);
    AdvanceGate gate(engines);
    std::vector<ReplicaSnapshot> snap;

    // Collect fresh prefill completions into transfer hand-offs. The
    // shipped bytes are the request's cached state + KV at prompt + 1
    // tokens, in the *prefill* replica's storage formats.
    auto pollPrefills = [&]() {
        for (size_t i : prefills) {
            const auto &done = engines[i].completedSoFar();
            for (size_t k = polled[i]; k < done.size(); ++k) {
                const CompletedRequest &c = done[k];
                const Request &orig = originals.at(c.req.id);
                if (orig.outputLen == 1) {
                    // Fully served by the prefill stage; never ships.
                    prefillOnly.push_back(c);
                    continue;
                }
                MemoryUsage mem = engines[i].simulator().memoryUsage(
                    model, 1, orig.inputLen + 1);
                Bytes bytes = mem.state + mem.kvCache;
                LinkCost cost = link.transfer(bytes);
                Handoff h;
                h.prefillFinish = finishTime(c);
                h.ready = h.prefillFinish + cost.seconds;
                h.req = orig;
                h.linkSeconds = cost.seconds;
                h.prefillQueueing = c.queueing;
                h.prefillPreemptions = c.preemptions;
                calendar.push(h.ready, kHandoffClass, h.req.id,
                              FleetEvent{false, Request{}, h});
                if (obs.tracer)
                    // Slice on the interconnect process, one lane per
                    // source replica: blocks leave when the prefill
                    // finishes and land cost.seconds later.
                    obs.tracer->complete(
                        obs.interconnectPid, static_cast<int>(i) + 1,
                        h.prefillFinish, cost.seconds,
                        "ship req " + std::to_string(orig.id),
                        "interconnect",
                        {{"bytes", bytes.value()},
                         {"seconds", cost.seconds.value()}});
                // A request with no cached state or KV bytes (possible
                // only for degenerate models) ships nothing: it is a
                // hand-off, not a transfer, and must not count into the
                // transfer-overhead breakdown.
                if (bytes > Bytes(0.0)) {
                    ++report.transfer.transfers;
                    report.transfer.totalBytes += bytes;
                    report.transfer.totalSeconds += cost.seconds;
                    report.transfer.totalEnergyJ += cost.energyJ;
                }
            }
            polled[i] = done.size();
        }
    };

    auto prefillBusy = [&]() {
        for (size_t i : prefills)
            if (engines[i].queueDepth() > 0)
                return true;
        return false;
    };

    // One pending arrival rides the calendar at a time: the source is
    // pulled lazily, and the next arrival is scheduled only once the
    // current one dispatches (it cannot precede it, so the calendar
    // order is complete regardless).
    auto pullArrival = [&]() {
        Request r;
        if (arrivals.next(r))
            calendar.push(r.arrival, kArrivalClass, r.id,
                          FleetEvent{true, r, Handoff{}});
    };
    pullArrival();
    while (!calendar.empty() || prefillBusy()) {
        if (calendar.empty()) {
            // No event on the calendar, but prefill work is still in
            // flight: run it out to discover the remaining hand-offs.
            for (size_t i : prefills) {
                engines[i].drain();
                gate.refresh(i);
            }
            pollPrefills();
            continue;
        }
        // Advance the prefill pool to the event horizon *before*
        // committing to the event order: a completion inside (now, t]
        // may ready a hand-off earlier than the one queued — the poll
        // schedules it, and the pop below dispatches the true minimum.
        gate.advancePool(prefills, calendar.nextTime());
        pollPrefills();

        CalendarEntry<FleetEvent> e = calendar.pop();
        if (e.payload.isArrival) {
            const Request r = e.payload.req;
            PIMBA_ASSERT(originals.emplace(r.id, r).second,
                         "duplicate request id ", r.id, " in trace");
            snapshotPool(engines, prefills, snap);
            size_t pick = prefills[prefillRouter->route(snap, r)];
            Request pr = r;
            pr.outputLen = 1; // prefill stage emits the first token only
            engines[pick].submit(pr);
            gate.refresh(pick);
            assignmentIdx.emplace(r.id, report.assignments.size());
            report.assignments.push_back(Assignment{r.id, pick, -1});
            pullArrival();
        } else {
            const Handoff &h = e.payload.handoff;
            gate.advancePool(decodes, h.ready);
            snapshotPool(engines, decodes, snap);
            size_t pick = decodes[decodeRouter->route(snap, h.req)];
            Request dr = h.req;
            dr.arrival = h.ready; // blocks land; decode clock starts
            engines[pick].submitPrefilled(dr);
            gate.refresh(pick);
            report.assignments[assignmentIdx.at(h.req.id)].decodeReplica =
                static_cast<int>(pick);
            handoffMeta.emplace(h.req.id, h);
        }
    }

    for (ServingEngine &e : engines)
        e.drain();
    for (ServingEngine &e : engines)
        report.replicas.push_back(e.finish());

    // Synthesize the fleet-level records: TTFT is prefill + transfer
    // (the first token is not servable until its blocks land on the
    // decode replica), decode-stage queueing and compute land in TPOT.
    double shareSum = 0.0;
    std::vector<double> transferSeconds;
    transferSeconds.reserve(handoffMeta.size());
    for (size_t i : decodes) {
        for (const CompletedRequest &c : report.replicas[i].completed) {
            const Handoff &h = handoffMeta.at(c.req.id);
            const Request &orig = originals.at(c.req.id);
            CompletedRequest out;
            out.req = orig;
            out.ttft = h.prefillFinish + h.linkSeconds - orig.arrival;
            out.latency = finishTime(c) - orig.arrival;
            out.tpot =
                (out.latency - out.ttft) /
                static_cast<double>(orig.outputLen - 1);
            out.queueing = h.prefillQueueing;
            out.preemptions = h.prefillPreemptions + c.preemptions;
            report.completed.push_back(out);
            shareSum += h.linkSeconds / out.ttft;
            transferSeconds.push_back(h.linkSeconds.value());
        }
    }
    report.completed.insert(report.completed.end(), prefillOnly.begin(),
                            prefillOnly.end());
    finalizeReport(report, cfg.slo);
    report.transfer.perTransfer = summarizeLatency(transferSeconds);
    report.transfer.meanTtftShare =
        transferSeconds.empty()
            ? 0.0
            : shareSum / static_cast<double>(transferSeconds.size());
    return report;
}

FleetReport
Fleet::runLockstep(const std::vector<Request> &trace)
{
    // The pre-event-core driver, byte for byte: it walks the sorted
    // trace eagerly, keeps its own hand-off priority queue, and
    // re-derives the event order per iteration. The equivalence suite
    // holds the calendar pump to this implementation's exact output;
    // do not "improve" one without the other.
    PIMBA_ASSERT(!cfg.controlPlane.anyEnabled(),
                 "runLockstep() predates the control plane; use run()");
    std::vector<Request> sorted = trace;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Request &a, const Request &b) {
                         return a.arrival < b.arrival;
                     });

    FleetReport report;
    report.mode = cfg.mode;
    report.router = cfg.router;
    report.assignments.reserve(sorted.size());

    for (ServingEngine &e : engines)
        e.begin();

    if (cfg.mode == FleetMode::Colocated) {
        // ---------------------------------------------- colocated
        auto router = makeRouter(cfg.router, cfg.routerSeed);
        const std::vector<size_t> pool = prefillPool(); // all replicas
        AdvanceGate gate(engines);
        std::vector<ReplicaSnapshot> snap;
        for (const Request &r : sorted) {
            gate.advancePool(pool, r.arrival);
            snapshotPool(engines, pool, snap);
            size_t pick = pool[router->route(snap, r)];
            engines[pick].submit(r);
            gate.refresh(pick);
            report.assignments.push_back(Assignment{r.id, pick, -1});
        }
        for (ServingEngine &e : engines)
            e.drain();
        for (ServingEngine &e : engines)
            report.replicas.push_back(e.finish());
        for (const ServingReport &rep : report.replicas)
            report.completed.insert(report.completed.end(),
                                    rep.completed.begin(),
                                    rep.completed.end());
        finalizeReport(report, cfg.slo);
        return report;
    }

    // ------------------------------------------------ disaggregated
    const std::vector<size_t> prefills = prefillPool();
    const std::vector<size_t> decodes = decodePool();
    auto prefillRouter = makeRouter(cfg.router, cfg.routerSeed);
    auto decodeRouter = makeRouter(cfg.router, cfg.routerSeed ^ 0x9E3779B9u);
    const LinkModel link(cfg.link);

    // pimba-lint: allow(node-container) touched once per request, not per step
    std::unordered_map<uint64_t, Request> originals;
    std::unordered_map<uint64_t, size_t> assignmentIdx; // pimba-lint: allow(node-container) ditto
    std::unordered_map<uint64_t, Handoff> handoffMeta; // pimba-lint: allow(node-container) ditto
    std::priority_queue<Handoff, std::vector<Handoff>, HandoffLater> due;
    std::vector<CompletedRequest> prefillOnly; // single-token requests
    std::vector<size_t> polled(engines.size(), 0);
    AdvanceGate gate(engines);
    std::vector<ReplicaSnapshot> snap;

    auto pollPrefills = [&]() {
        for (size_t i : prefills) {
            const auto &done = engines[i].completedSoFar();
            for (size_t k = polled[i]; k < done.size(); ++k) {
                const CompletedRequest &c = done[k];
                const Request &orig = originals.at(c.req.id);
                if (orig.outputLen == 1) {
                    prefillOnly.push_back(c);
                    continue;
                }
                MemoryUsage mem = engines[i].simulator().memoryUsage(
                    model, 1, orig.inputLen + 1);
                Bytes bytes = mem.state + mem.kvCache;
                LinkCost cost = link.transfer(bytes);
                Handoff h;
                h.prefillFinish = finishTime(c);
                h.ready = h.prefillFinish + cost.seconds;
                h.req = orig;
                h.linkSeconds = cost.seconds;
                h.prefillQueueing = c.queueing;
                h.prefillPreemptions = c.preemptions;
                due.push(h);
                if (obs.tracer)
                    obs.tracer->complete(
                        obs.interconnectPid, static_cast<int>(i) + 1,
                        h.prefillFinish, cost.seconds,
                        "ship req " + std::to_string(orig.id),
                        "interconnect",
                        {{"bytes", bytes.value()},
                         {"seconds", cost.seconds.value()}});
                if (bytes > Bytes(0.0)) {
                    ++report.transfer.transfers;
                    report.transfer.totalBytes += bytes;
                    report.transfer.totalSeconds += cost.seconds;
                    report.transfer.totalEnergyJ += cost.energyJ;
                }
            }
            polled[i] = done.size();
        }
    };

    auto prefillBusy = [&]() {
        for (size_t i : prefills)
            if (engines[i].queueDepth() > 0)
                return true;
        return false;
    };

    size_t next = 0;
    while (next < sorted.size() || !due.empty() || prefillBusy()) {
        Seconds ta = next < sorted.size() ? sorted[next].arrival : kInf;
        Seconds th = due.empty() ? kInf : due.top().ready;
        Seconds t = std::min(ta, th);
        if (t == kInf) {
            for (size_t i : prefills) {
                engines[i].drain();
                gate.refresh(i);
            }
            pollPrefills();
            continue;
        }
        gate.advancePool(prefills, t);
        pollPrefills();
        th = due.empty() ? kInf : due.top().ready;

        if (ta <= th) {
            const Request &r = sorted[next++];
            PIMBA_ASSERT(originals.emplace(r.id, r).second,
                         "duplicate request id ", r.id, " in trace");
            snapshotPool(engines, prefills, snap);
            size_t pick = prefills[prefillRouter->route(snap, r)];
            Request pr = r;
            pr.outputLen = 1;
            engines[pick].submit(pr);
            gate.refresh(pick);
            assignmentIdx.emplace(r.id, report.assignments.size());
            report.assignments.push_back(Assignment{r.id, pick, -1});
        } else {
            Handoff h = due.top();
            due.pop();
            gate.advancePool(decodes, h.ready);
            snapshotPool(engines, decodes, snap);
            size_t pick = decodes[decodeRouter->route(snap, h.req)];
            Request dr = h.req;
            dr.arrival = h.ready;
            engines[pick].submitPrefilled(dr);
            gate.refresh(pick);
            report.assignments[assignmentIdx.at(h.req.id)].decodeReplica =
                static_cast<int>(pick);
            handoffMeta.emplace(h.req.id, h);
        }
    }

    for (ServingEngine &e : engines)
        e.drain();
    for (ServingEngine &e : engines)
        report.replicas.push_back(e.finish());

    double shareSum = 0.0;
    std::vector<double> transferSeconds;
    transferSeconds.reserve(handoffMeta.size());
    for (size_t i : decodes) {
        for (const CompletedRequest &c : report.replicas[i].completed) {
            const Handoff &h = handoffMeta.at(c.req.id);
            const Request &orig = originals.at(c.req.id);
            CompletedRequest out;
            out.req = orig;
            out.ttft = h.prefillFinish + h.linkSeconds - orig.arrival;
            out.latency = finishTime(c) - orig.arrival;
            out.tpot =
                (out.latency - out.ttft) /
                static_cast<double>(orig.outputLen - 1);
            out.queueing = h.prefillQueueing;
            out.preemptions = h.prefillPreemptions + c.preemptions;
            report.completed.push_back(out);
            shareSum += h.linkSeconds / out.ttft;
            transferSeconds.push_back(h.linkSeconds.value());
        }
    }
    report.completed.insert(report.completed.end(), prefillOnly.begin(),
                            prefillOnly.end());
    finalizeReport(report, cfg.slo);
    report.transfer.perTransfer = summarizeLatency(transferSeconds);
    report.transfer.meanTtftShare =
        transferSeconds.empty()
            ? 0.0
            : shareSum / static_cast<double>(transferSeconds.size());
    return report;
}

} // namespace pimba
