#include "cluster/router.h"

#include "core/lfsr.h"
#include "core/logging.h"

namespace pimba {

namespace {

/** Argmin over the pool by @p key; ties fall to the lower index. */
template <typename Key>
size_t
argminBy(const std::vector<ReplicaSnapshot> &pool, Key key)
{
    size_t best = 0;
    for (size_t i = 1; i < pool.size(); ++i)
        if (key(pool[i]) < key(pool[best]))
            best = i;
    return best;
}

class RoundRobinRouter : public Router
{
  public:
    RouterPolicy policy() const override
    {
        return RouterPolicy::RoundRobin;
    }

    size_t
    route(const std::vector<ReplicaSnapshot> &pool,
          const Request &) override
    {
        return next++ % pool.size();
    }

  private:
    size_t next = 0;
};

class JsqRouter : public Router
{
  public:
    RouterPolicy policy() const override
    {
        return RouterPolicy::JoinShortestQueue;
    }

    size_t
    route(const std::vector<ReplicaSnapshot> &pool,
          const Request &) override
    {
        return argminBy(pool, [](const ReplicaSnapshot &s) {
            return s.queueDepth;
        });
    }
};

class LeastTokensRouter : public Router
{
  public:
    RouterPolicy policy() const override
    {
        return RouterPolicy::LeastOutstandingTokens;
    }

    size_t
    route(const std::vector<ReplicaSnapshot> &pool,
          const Request &) override
    {
        return argminBy(pool, [](const ReplicaSnapshot &s) {
            return s.outstandingTokens;
        });
    }
};

class PowerOfTwoRouter : public Router
{
  public:
    explicit PowerOfTwoRouter(uint32_t seed) : rng(seed) {}

    RouterPolicy policy() const override
    {
        return RouterPolicy::PowerOfTwoChoices;
    }

    size_t
    route(const std::vector<ReplicaSnapshot> &pool,
          const Request &) override
    {
        size_t n = pool.size();
        if (n == 1)
            return 0;
        // Two distinct uniform draws; the second skips over the first.
        size_t a = rng.next() % n;
        size_t b = rng.next() % (n - 1);
        if (b >= a)
            ++b;
        // Less token-loaded of the pair; tie to the lower index.
        if (pool[a].outstandingTokens < pool[b].outstandingTokens)
            return a;
        if (pool[b].outstandingTokens < pool[a].outstandingTokens)
            return b;
        return std::min(a, b);
    }

  private:
    Lfsr32 rng;
};

} // namespace

std::string
routerName(RouterPolicy policy)
{
    switch (policy) {
      case RouterPolicy::RoundRobin:
        return "rr";
      case RouterPolicy::JoinShortestQueue:
        return "jsq";
      case RouterPolicy::LeastOutstandingTokens:
        return "lot";
      case RouterPolicy::PowerOfTwoChoices:
        return "p2c";
    }
    PIMBA_PANIC("unknown router policy");
}

const std::vector<RouterPolicy> &
allRouterPolicies()
{
    static const std::vector<RouterPolicy> kAll = {
        RouterPolicy::RoundRobin, RouterPolicy::JoinShortestQueue,
        RouterPolicy::LeastOutstandingTokens,
        RouterPolicy::PowerOfTwoChoices};
    return kAll;
}

std::unique_ptr<Router>
makeRouter(RouterPolicy policy, uint32_t seed)
{
    switch (policy) {
      case RouterPolicy::RoundRobin:
        return std::make_unique<RoundRobinRouter>();
      case RouterPolicy::JoinShortestQueue:
        return std::make_unique<JsqRouter>();
      case RouterPolicy::LeastOutstandingTokens:
        return std::make_unique<LeastTokensRouter>();
      case RouterPolicy::PowerOfTwoChoices:
        return std::make_unique<PowerOfTwoRouter>(seed);
    }
    PIMBA_PANIC("unknown router policy");
}

} // namespace pimba
