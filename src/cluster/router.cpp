#include "cluster/router.h"

#include <tuple>

#include "core/lfsr.h"
#include "core/logging.h"

namespace pimba {

namespace {

/** Argmin over the pool by @p key; ties fall to the lower index. */
template <typename Key>
size_t
argminBy(const std::vector<ReplicaSnapshot> &pool, Key key)
{
    size_t best = 0;
    for (size_t i = 1; i < pool.size(); ++i)
        if (key(pool[i]) < key(pool[best]))
            best = i;
    return best;
}

class RoundRobinRouter : public Router
{
  public:
    RouterPolicy policy() const override
    {
        return RouterPolicy::RoundRobin;
    }

    size_t
    route(const std::vector<ReplicaSnapshot> &pool,
          const Request &) override
    {
        return next++ % pool.size();
    }

  private:
    size_t next = 0;
};

class JsqRouter : public Router
{
  public:
    RouterPolicy policy() const override
    {
        return RouterPolicy::JoinShortestQueue;
    }

    size_t
    route(const std::vector<ReplicaSnapshot> &pool,
          const Request &) override
    {
        // Queue-depth ties break toward the replica hosting less
        // important work (tierPressure is zero in untiered fleets, so
        // legacy picks are unchanged), then the lower index.
        return argminBy(pool, [](const ReplicaSnapshot &s) {
            return std::make_tuple(s.queueDepth, s.tierPressure);
        });
    }
};

class LeastTokensRouter : public Router
{
  public:
    RouterPolicy policy() const override
    {
        return RouterPolicy::LeastOutstandingTokens;
    }

    size_t
    route(const std::vector<ReplicaSnapshot> &pool,
          const Request &) override
    {
        return argminBy(pool, [](const ReplicaSnapshot &s) {
            return std::make_tuple(s.outstandingTokens,
                                   s.tierPressure);
        });
    }
};

class PowerOfTwoRouter : public Router
{
  public:
    explicit PowerOfTwoRouter(uint32_t seed) : rng(seed) {}

    RouterPolicy policy() const override
    {
        return RouterPolicy::PowerOfTwoChoices;
    }

    size_t
    route(const std::vector<ReplicaSnapshot> &pool,
          const Request &) override
    {
        size_t n = pool.size();
        if (n == 1)
            return 0;
        // Two distinct uniform draws; the second skips over the first.
        size_t a = rng.next() % n;
        size_t b = rng.next() % (n - 1);
        if (b >= a)
            ++b;
        // Less token-loaded of the pair; then less tier pressure
        // (zero in untiered fleets); tie to the lower index.
        auto key = [&](size_t i) {
            return std::make_tuple(pool[i].outstandingTokens,
                                   pool[i].tierPressure);
        };
        if (key(a) < key(b))
            return a;
        if (key(b) < key(a))
            return b;
        return std::min(a, b);
    }

  private:
    Lfsr32 rng;
};

/** Most warm prefix blocks among the near-shortest queues. Pure
 *  locality would pile a hot class onto one replica forever, so only
 *  replicas within kQueueSlack requests of the shortest queue compete
 *  on cache; ties fall back to (queue depth, tier pressure, index) —
 *  i.e. exactly JSQ when no replica holds any of the class's prefix. */
class CacheAffinityRouter : public Router
{
  public:
    RouterPolicy policy() const override
    {
        return RouterPolicy::CacheAffinity;
    }

    size_t
    route(const std::vector<ReplicaSnapshot> &pool,
          const Request &) override
    {
        size_t minDepth = pool[0].queueDepth;
        for (const ReplicaSnapshot &s : pool)
            minDepth = std::min(minDepth, s.queueDepth);
        size_t best = pool.size();
        for (size_t i = 0; i < pool.size(); ++i) {
            const ReplicaSnapshot &s = pool[i];
            if (s.queueDepth > minDepth + kQueueSlack)
                continue;
            if (best == pool.size() || better(s, pool[best]))
                best = i;
        }
        return best;
    }

  private:
    static constexpr size_t kQueueSlack = 2;

    static bool
    better(const ReplicaSnapshot &a, const ReplicaSnapshot &b)
    {
        if (a.cachedPrefixBlocks != b.cachedPrefixBlocks)
            return a.cachedPrefixBlocks > b.cachedPrefixBlocks;
        return std::make_tuple(a.queueDepth, a.tierPressure) <
               std::make_tuple(b.queueDepth, b.tierPressure);
    }
};

} // namespace

std::string
routerName(RouterPolicy policy)
{
    switch (policy) {
      case RouterPolicy::RoundRobin:
        return "rr";
      case RouterPolicy::JoinShortestQueue:
        return "jsq";
      case RouterPolicy::LeastOutstandingTokens:
        return "lot";
      case RouterPolicy::PowerOfTwoChoices:
        return "p2c";
      case RouterPolicy::CacheAffinity:
        return "cache-affinity";
    }
    PIMBA_PANIC("unknown router policy");
}

const std::vector<RouterPolicy> &
allRouterPolicies()
{
    static const std::vector<RouterPolicy> kAll = {
        RouterPolicy::RoundRobin, RouterPolicy::JoinShortestQueue,
        RouterPolicy::LeastOutstandingTokens,
        RouterPolicy::PowerOfTwoChoices};
    return kAll;
}

std::unique_ptr<Router>
makeRouter(RouterPolicy policy, uint32_t seed)
{
    switch (policy) {
      case RouterPolicy::RoundRobin:
        return std::make_unique<RoundRobinRouter>();
      case RouterPolicy::JoinShortestQueue:
        return std::make_unique<JsqRouter>();
      case RouterPolicy::LeastOutstandingTokens:
        return std::make_unique<LeastTokensRouter>();
      case RouterPolicy::PowerOfTwoChoices:
        return std::make_unique<PowerOfTwoRouter>(seed);
      case RouterPolicy::CacheAffinity:
        return std::make_unique<CacheAffinityRouter>();
    }
    PIMBA_PANIC("unknown router policy");
}

} // namespace pimba
