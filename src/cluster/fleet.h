/**
 * @file
 * Cluster fleet simulator: N serving-engine replicas behind a pluggable
 * request router, driven by one shared arrival source on one global
 * clock.
 *
 * Replicas are full ServingEngine instances (homogeneous or
 * heterogeneous SystemKind mixes, per-replica EngineConfig). The fleet
 * is a discrete-event simulation: arrivals and (in disaggregated mode)
 * transfer hand-offs live on one event calendar (core/event_queue.h),
 * and the fleet pumps the earliest event — advancing only the replicas
 * whose cached nextEventTime() says they have due work, snapshotting
 * queue depth and outstanding tokens, and letting the router commit
 * the request. Arrivals are pulled lazily from an ArrivalSource, so a
 * replay-scale run never holds the whole trace. The retired lockstep
 * driver survives as runLockstep(), the reference the event core is
 * proven byte-identical against. Two fleet modes:
 *
 *  - Colocated: every replica both prefills and decodes its own
 *    requests — the classic replicated deployment.
 *  - Disaggregated: the fleet is partitioned into a prefill pool and a
 *    decode pool (DistServe-style). A request prefills on one replica;
 *    its cached KV/state blocks (bytes from the replica simulator's
 *    footprint math) are then shipped to a decode replica over a
 *    modeled interconnect link, and the transfer is charged into the
 *    request's TTFT. Single-token requests complete at the prefill
 *    stage and never cross the link.
 *
 * Runs are deterministic: engines are seeded-trace-driven, router ties
 * break by replica index, PowerOfTwoChoices randomness flows from the
 * router seed, and hand-offs are ordered by (ready time, request id) —
 * the same trace + config always reproduces the same assignment and
 * metrics.
 */

#ifndef PIMBA_CLUSTER_FLEET_H
#define PIMBA_CLUSTER_FLEET_H

#include <cstdint>
#include <vector>

#include "cluster/control_plane.h"
#include "cluster/fleet_metrics.h"
#include "cluster/router.h"
#include "gpu/interconnect.h"
#include "serving/engine.h"
#include "serving/trace.h"

namespace pimba {

/// One replica of the fleet.
struct ReplicaConfig
{
    SystemKind kind = SystemKind::GPU;
    int nGpus = 1; ///< tensor-parallel degree inside the replica
    EngineConfig engine;
};

/// How the fleet splits the request lifecycle across replicas.
enum class FleetMode
{
    Colocated,     ///< every replica prefills and decodes
    Disaggregated, ///< prefill pool -> link transfer -> decode pool
};

/// Full description of one fleet.
struct FleetConfig
{
    std::vector<ReplicaConfig> replicas;
    RouterPolicy router = RouterPolicy::RoundRobin;
    uint32_t routerSeed = 0x5EEDC4A5u; ///< PowerOfTwoChoices sampling
    FleetMode mode = FleetMode::Colocated;
    /// Disaggregated only: the first @c prefillReplicas replicas form
    /// the prefill pool, the rest the decode pool.
    size_t prefillReplicas = 0;
    /// Disaggregated only: the link KV/state blocks ship over.
    LinkConfig link = infinibandLink();
    /// SLO the fleet-level metrics are judged against.
    SloConfig slo;
    /// SLO-aware control plane (autoscaler, priority tiers, deadlines,
    /// prefix affinity; docs/control-plane.md). Disabled by default —
    /// anyEnabled() false keeps every classic run path byte-identical.
    /// Colocated fleets only.
    ControlPlaneConfig controlPlane;
};

/// Convenience: @p n identical replicas of one system.
FleetConfig homogeneousFleet(SystemKind kind, size_t n,
                             EngineConfig engine = {});

/// Observability sinks for a fleet run (all null = disabled, zero
/// overhead). Replica k traces as pid @c pidBase + k with a
/// process_name naming its system and pool; @c interconnectPid
/// carries the disaggregation link's ship events (one tid per prefill
/// replica).
struct FleetObservers
{
    Tracer *tracer = nullptr;
    int pidBase = 1;
    int interconnectPid = 0;
    TimelineSampler *timeline = nullptr; ///< one track per replica
    /// Prepended to every replica label — distinguishes the cases of a
    /// multi-case fleet study sharing one tracer/sampler.
    std::string labelPrefix;
};

/// Validate @p cfg. Returns the empty string when the fleet is runnable,
/// else one actionable message (empty fleet, non-positive per-replica
/// tensor-parallel degree, a bad per-replica EngineConfig, an impossible
/// disaggregation split, a zero-bandwidth link). The Fleet constructor
/// enforces this; the scenario loader calls it up front so JSON mistakes
/// are reported with a file location instead of a fatal abort mid-run.
std::string validateFleetConfig(const FleetConfig &cfg);

/// Where one request was served.
struct Assignment
{
    uint64_t requestId = 0;
    size_t replica = 0;     ///< serving (colocated) or prefill replica
    int decodeReplica = -1; ///< disaggregated decode replica, else -1

    bool operator==(const Assignment &) const = default;
};

/// Outcome of one fleet run over a trace.
struct FleetReport
{
    FleetMode mode = FleetMode::Colocated;
    RouterPolicy router = RouterPolicy::RoundRobin;
    std::vector<ServingReport> replicas; ///< per replica, replica order
    std::vector<Assignment> assignments; ///< in routing order
    /// Fleet-level per-request records: end-to-end latencies with the
    /// transfer charged into TTFT, ordered by completion time.
    std::vector<CompletedRequest> completed;
    ServingMetrics metrics; ///< over the fleet-level records
    Seconds makespan;       ///< trace start to last token, fleet-wide
    LoadStats load;
    TransferStats transfer; ///< all-zero for a colocated fleet
    /// Autoscaler trajectory, replica-second bill, warm-up spans and
    /// cancellation totals. Default (enabled = false) outside the
    /// controlled run path.
    ControlPlaneReport controlPlane;
};

/// N-replica fleet simulator for one model.
class Fleet
{
  public:
    Fleet(const ModelConfig &model, FleetConfig cfg);

    /// Serve @p trace to completion across the fleet. Reusable: every
    /// run re-seeds the router and resets every replica. Sorts a copy
    /// by arrival and feeds it through the event calendar.
    FleetReport run(const std::vector<Request> &trace);

    /// Event-driven run over a lazy source (requests must come in
    /// non-decreasing arrival order — what ArrivalStream and
    /// TraceFileReader produce). The trace is never materialized; with
    /// per-request records retained, the report is still O(requests).
    FleetReport run(ArrivalSource &arrivals);

    /// Bounded-memory replay: like run(ArrivalSource&), but every
    /// completion folds into @p stream instead of being retained, so
    /// peak memory is O(in-flight requests + sketch buckets),
    /// independent of trace length. The report's completed /
    /// assignments vectors stay empty; metrics and makespan come from
    /// the stream (percentiles are sketch estimates, counters exact).
    /// Colocated fleets only — the disaggregated driver polls
    /// per-request completion records to build transfer hand-offs.
    FleetReport runStreamed(ArrivalSource &arrivals,
                            StreamingMetrics &stream);

    /// The pre-event-core lockstep driver, kept as the debug reference
    /// the event calendar is proven byte-identical against
    /// (tests/cluster/event_equivalence_test.cpp). Not for new
    /// callers: it holds the whole trace and advances eagerly.
    FleetReport runLockstep(const std::vector<Request> &trace);

    const FleetConfig &config() const { return cfg; }
    size_t replicaCount() const { return engines.size(); }

    /// Attach (or with a default-constructed argument, detach) the
    /// observability sinks: wires every replica engine's observers,
    /// names the trace processes, and registers one timeline track per
    /// replica. Call before run(); persists across runs.
    void attachObservers(const FleetObservers &o);
    /// "replica k (<system> xN[, prefill|decode])" — the trace
    /// process / timeline track label of replica @p i.
    std::string replicaLabel(size_t i) const;

  private:
    std::vector<size_t> prefillPool() const;
    std::vector<size_t> decodePool() const;
    /// Event-calendar drivers behind the public run()/runStreamed().
    FleetReport runColocated(ArrivalSource &arrivals,
                             StreamingMetrics *stream);
    FleetReport runDisaggregated(ArrivalSource &arrivals);
    /// The control-plane driver (cfg.controlPlane.anyEnabled()):
    /// colocated routing plus autoscaler ticks, warm-up timers and
    /// per-request deadline timers on the same calendar.
    FleetReport runControlled(ArrivalSource &arrivals,
                              StreamingMetrics *stream);

    ModelConfig model;
    FleetConfig cfg;
    std::vector<ServingEngine> engines;
    FleetObservers obs;
};

} // namespace pimba

#endif // PIMBA_CLUSTER_FLEET_H
