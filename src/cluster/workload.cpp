#include "cluster/workload.h"

#include "serving/trace.h"

namespace pimba {

std::vector<Request>
clusterTrace(double rate, int num_requests, uint32_t seed)
{
    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Poisson;
    tc.ratePerSec = rate;
    tc.numRequests = num_requests;
    tc.lengths = LengthDistribution::Uniform;
    tc.inputLen = 256;
    tc.inputLenMax = 768;
    tc.outputLen = 128;
    tc.outputLenMax = 384;
    tc.seed = seed;
    return generateTrace(tc);
}

FleetConfig
heterogeneousFleet(RouterPolicy router)
{
    FleetConfig cfg;
    cfg.replicas = {ReplicaConfig{SystemKind::PIMBA, 1, {}},
                    ReplicaConfig{SystemKind::PIMBA, 1, {}},
                    ReplicaConfig{SystemKind::GPU, 1, {}},
                    ReplicaConfig{SystemKind::GPU, 1, {}}};
    cfg.router = router;
    return cfg;
}

FleetConfig
colocatedPimbaFleet(size_t n, ExecutionMode mode)
{
    FleetConfig cfg = homogeneousFleet(SystemKind::PIMBA, n);
    cfg.router = RouterPolicy::JoinShortestQueue;
    for (ReplicaConfig &rc : cfg.replicas)
        rc.engine.executionMode = mode;
    return cfg;
}

FleetConfig
mixedModePimbaFleet(size_t n)
{
    FleetConfig cfg = colocatedPimbaFleet(n);
    for (size_t i = n / 2; i < n; ++i)
        cfg.replicas[i].engine.executionMode = ExecutionMode::Overlapped;
    return cfg;
}

FleetConfig
disaggregatedPimbaFleet(const LinkConfig &link)
{
    FleetConfig cfg = colocatedPimbaFleet(4);
    cfg.mode = FleetMode::Disaggregated;
    cfg.prefillReplicas = 2;
    cfg.link = link;
    return cfg;
}

} // namespace pimba
