#include "quant/format.h"

#include "core/logging.h"
#include "quant/int8_group.h"
#include "quant/minifloat.h"
#include "quant/mx8.h"

namespace pimba {

std::string
formatName(NumberFormat fmt)
{
    switch (fmt) {
      case NumberFormat::FP64: return "fp64";
      case NumberFormat::FP16: return "fp16";
      case NumberFormat::INT8: return "int8";
      case NumberFormat::E4M3: return "e4m3";
      case NumberFormat::E5M2: return "e5m2";
      case NumberFormat::MX8:  return "mx8";
    }
    PIMBA_PANIC("unknown format");
}

std::string
QuantSpec::name() const
{
    std::string base = formatName(fmt);
    if (rnd == Rounding::Stochastic && fmt != NumberFormat::FP64)
        base += "SR";
    return base;
}

double
bitsPerValue(NumberFormat fmt)
{
    switch (fmt) {
      case NumberFormat::FP64:
        return 64.0;
      case NumberFormat::FP16:
        return 16.0;
      case NumberFormat::INT8:
        // 8-bit codes plus one fp16 scale per 32 elements.
        return 8.0 + 16.0 / kInt8GroupSize;
      case NumberFormat::E4M3:
      case NumberFormat::E5M2:
        return 8.0;
      case NumberFormat::MX8:
        return kMx8BitsPerValue;
    }
    PIMBA_PANIC("unknown format");
}

double
storageBytes(NumberFormat fmt, size_t n)
{
    return bitsPerValue(fmt) * static_cast<double>(n) / 8.0;
}

void
quantizeSpan(double *v, size_t n, const QuantSpec &spec, Lfsr16 &lfsr)
{
    switch (spec.fmt) {
      case NumberFormat::FP64:
        return;
      case NumberFormat::FP16:
        for (size_t i = 0; i < n; ++i)
            v[i] = minifloatQuantize(v[i], fp16Spec(), spec.rnd, lfsr);
        return;
      case NumberFormat::E4M3:
        for (size_t i = 0; i < n; ++i)
            v[i] = minifloatQuantize(v[i], e4m3Spec(), spec.rnd, lfsr);
        return;
      case NumberFormat::E5M2:
        for (size_t i = 0; i < n; ++i)
            v[i] = minifloatQuantize(v[i], e5m2Spec(), spec.rnd, lfsr);
        return;
      case NumberFormat::INT8:
        int8QuantizeSpan(v, n, spec.rnd, lfsr);
        return;
      case NumberFormat::MX8:
        mxQuantizeSpan(v, n, spec.rnd, lfsr);
        return;
    }
    PIMBA_PANIC("unknown format");
}

std::vector<QuantSpec>
figure4Specs()
{
    using NF = NumberFormat;
    return {
        {NF::FP16, Rounding::Nearest},
        {NF::INT8, Rounding::Nearest},
        {NF::INT8, Rounding::Stochastic},
        {NF::E4M3, Rounding::Nearest},
        {NF::E4M3, Rounding::Stochastic},
        {NF::E5M2, Rounding::Nearest},
        {NF::E5M2, Rounding::Stochastic},
        {NF::MX8, Rounding::Nearest},
        {NF::MX8, Rounding::Stochastic},
    };
}

} // namespace pimba
