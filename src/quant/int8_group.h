/**
 * @file
 * Group-scaled 8-bit integer codec.
 *
 * Section 3.2: "For the integer format, we use an 8-bit integer with a
 * scaling factor across every 32 elements." The scale itself is stored in
 * fp16 (like the KV-cache quantizers the paper cites), and both nearest
 * and stochastic rounding are supported.
 *
 * The format is accurate (7-bit mantissa avoids swamping) but expensive in
 * hardware: element-wise addition needs dequantize / requantize plus a max
 * search for the new scale — that cost is what the area model charges in
 * Fig. 6 / Section 4.2.
 */

#ifndef PIMBA_QUANT_INT8_GROUP_H
#define PIMBA_QUANT_INT8_GROUP_H

#include <cstdint>
#include <vector>

#include "quant/minifloat.h"
#include "quant/rounding.h"

namespace pimba {

/** Number of elements sharing one scaling factor. */
constexpr int kInt8GroupSize = 32;

/** One quantized group: 32 int8 codes plus an fp16 scale. */
struct Int8Group
{
    double scale = 0.0;               ///< fp16-rounded scale factor
    int8_t codes[kInt8GroupSize] = {}; ///< quantized elements

    /** Decoded value of element @p i. */
    double value(int i) const { return scale * codes[i]; }
};

/**
 * Quantize @p n values (n <= 32; missing elements treated as zero).
 *
 * scale = max|v| / 127 rounded to fp16; codes = round(v / scale).
 */
Int8Group int8Quantize(const double *v, int n, Rounding mode, Lfsr16 &lfsr);

/** Decode a group back into @p out (n elements). */
void int8Dequantize(const Int8Group &g, double *out, int n);

/**
 * Quantize-dequantize a whole span in groups of 32 (the operation the
 * accuracy harness applies to the state after every update step).
 */
void int8QuantizeSpan(double *v, size_t n, Rounding mode, Lfsr16 &lfsr);

} // namespace pimba

#endif // PIMBA_QUANT_INT8_GROUP_H
