#include "quant/int8_group.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace pimba {

Int8Group
int8Quantize(const double *v, int n, Rounding mode, Lfsr16 &lfsr)
{
    PIMBA_ASSERT(n > 0 && n <= kInt8GroupSize, "bad int8 group size ", n);
    Int8Group g;

    double amax = 0.0;
    for (int i = 0; i < n; ++i)
        amax = std::max(amax, std::fabs(v[i]));
    if (amax == 0.0)
        return g;

    // The scale register is fp16 in the memory layout; round it the same
    // way (always nearest: the scale is computed once per group, it is the
    // codes that see the rounding-mode choice).
    Lfsr16 scale_lfsr(1);
    double scale = minifloatQuantize(amax / 127.0, fp16Spec(),
                                     Rounding::Nearest, scale_lfsr);
    if (scale == 0.0)
        scale = fp16Spec().minSubnormal();
    g.scale = scale;

    for (int i = 0; i < n; ++i) {
        double q = roundToGrid(v[i] / scale, mode, lfsr);
        q = std::clamp(q, -127.0, 127.0);
        g.codes[i] = static_cast<int8_t>(q);
    }
    return g;
}

void
int8Dequantize(const Int8Group &g, double *out, int n)
{
    PIMBA_ASSERT(n > 0 && n <= kInt8GroupSize, "bad int8 group size ", n);
    for (int i = 0; i < n; ++i)
        out[i] = g.value(i);
}

void
int8QuantizeSpan(double *v, size_t n, Rounding mode, Lfsr16 &lfsr)
{
    for (size_t base = 0; base < n; base += kInt8GroupSize) {
        int len = static_cast<int>(
            std::min<size_t>(kInt8GroupSize, n - base));
        Int8Group g = int8Quantize(v + base, len, mode, lfsr);
        int8Dequantize(g, v + base, len);
    }
}

} // namespace pimba
