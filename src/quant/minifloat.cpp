#include "quant/minifloat.h"

#include <cmath>

#include "core/logging.h"

namespace pimba {

int
MinifloatSpec::maxExpField() const
{
    return (1 << expBits) - (ieeeReserved ? 2 : 1);
}

int
MinifloatSpec::maxManFieldAtTop() const
{
    // OCP e4m3 reserves only the all-ones mantissa at the all-ones
    // exponent (the single NaN code); IEEE-style formats use the full
    // mantissa range in their top usable binade.
    return (1 << manBits) - (ieeeReserved ? 1 : 2);
}

double
MinifloatSpec::maxValue() const
{
    int emax = maxExpField() - bias;
    double frac = 1.0 + std::ldexp(static_cast<double>(maxManFieldAtTop()),
                                   -manBits);
    return frac * std::ldexp(1.0, emax);
}

double
MinifloatSpec::minNormal() const
{
    return std::ldexp(1.0, 1 - bias);
}

double
MinifloatSpec::minSubnormal() const
{
    return std::ldexp(1.0, 1 - bias - manBits);
}

MinifloatSpec
fp16Spec()
{
    return {5, 10, 15, true};
}

MinifloatSpec
e4m3Spec()
{
    return {4, 3, 7, false};
}

MinifloatSpec
e5m2Spec()
{
    return {5, 2, 15, true};
}

uint32_t
minifloatEncode(double v, const MinifloatSpec &spec, Rounding mode,
                Lfsr16 &lfsr, double *decoded)
{
    const int ebits = spec.expBits;
    const int mbits = spec.manBits;
    const int bias = spec.bias;
    const uint32_t sign = (std::signbit(v) ? 1u : 0u);
    double mag = std::fabs(v);

    uint32_t exp_field = 0;
    uint32_t man_field = 0;

    auto saturate = [&]() {
        exp_field = static_cast<uint32_t>(spec.maxExpField());
        man_field = static_cast<uint32_t>(spec.maxManFieldAtTop());
    };

    if (mag == 0.0 || std::isnan(v)) {
        // NaN inputs should not occur in the state pipeline; encode zero.
        exp_field = 0;
        man_field = 0;
    } else if (mag > spec.maxValue()) {
        saturate();
    } else {
        int e2 = 0;
        std::frexp(mag, &e2);         // mag = f * 2^e2, f in [0.5, 1)
        int unbiased = e2 - 1;        // exponent with 1.f normalization
        int efield = unbiased + bias;

        if (efield <= 0) {
            // Subnormal range: grid spacing = minSubnormal.
            double ulp = spec.minSubnormal();
            double q = roundToGrid(mag / ulp, mode, lfsr);
            if (q >= std::ldexp(1.0, mbits)) {
                // Rounded up into the normal range.
                exp_field = 1;
                man_field = 0;
            } else {
                exp_field = 0;
                man_field = static_cast<uint32_t>(q);
            }
        } else {
            // Normal: mantissa grid within this binade.
            double scaled = std::ldexp(mag, -unbiased) - 1.0; // [0, 1)
            double q = roundToGrid(std::ldexp(scaled, mbits), mode, lfsr);
            if (q >= std::ldexp(1.0, mbits)) {
                // Carried into the next binade.
                efield += 1;
                q = 0;
            }
            if (efield > spec.maxExpField() ||
                (efield == spec.maxExpField() &&
                 q > spec.maxManFieldAtTop())) {
                saturate();
            } else {
                exp_field = static_cast<uint32_t>(efield);
                man_field = static_cast<uint32_t>(q);
            }
        }
    }

    uint32_t bits = (sign << (ebits + mbits)) | (exp_field << mbits) |
                    man_field;
    if (decoded)
        *decoded = minifloatDecode(bits, spec);
    return bits;
}

double
minifloatDecode(uint32_t bits, const MinifloatSpec &spec)
{
    const int ebits = spec.expBits;
    const int mbits = spec.manBits;
    const int bias = spec.bias;

    uint32_t sign = (bits >> (ebits + mbits)) & 1u;
    uint32_t exp_field = (bits >> mbits) & ((1u << ebits) - 1u);
    uint32_t man_field = bits & ((1u << mbits) - 1u);

    double mag;
    if (exp_field == 0) {
        mag = std::ldexp(static_cast<double>(man_field), 1 - bias - mbits);
    } else {
        double frac = 1.0 + std::ldexp(static_cast<double>(man_field),
                                       -mbits);
        mag = std::ldexp(frac, static_cast<int>(exp_field) - bias);
    }
    return sign ? -mag : mag;
}

double
minifloatQuantize(double v, const MinifloatSpec &spec, Rounding mode,
                  Lfsr16 &lfsr)
{
    double decoded = 0.0;
    minifloatEncode(v, spec, mode, lfsr, &decoded);
    return decoded;
}

} // namespace pimba
