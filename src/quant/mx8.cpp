#include "quant/mx8.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace pimba {

namespace {

/** Clamp a rounded mantissa into the 6-bit sign-magnitude range. */
int8_t
clampMant(int64_t m)
{
    return static_cast<int8_t>(std::clamp<int64_t>(m, -kMxMantMax,
                                                   kMxMantMax));
}

/** Exponent of the quantization grid: smallest E with amax <= 2^E. */
int
gridExponent(double amax)
{
    int e2 = 0;
    std::frexp(amax, &e2); // amax = f * 2^e2, f in [0.5, 1)
    return std::clamp(e2, kMxExpMin, kMxExpMax);
}

} // namespace

double
MxGroup::value(int i) const
{
    PIMBA_ASSERT(i >= 0 && i < kMxGroupSize, "mx element index ", i);
    int mu = micro[i / kMxSubGroupSize];
    return std::ldexp(static_cast<double>(mant[i]),
                      sharedExp - mu - kMxMantFracBits);
}

void
MxGroup::decode(double *out) const
{
    for (int i = 0; i < kMxGroupSize; ++i)
        out[i] = value(i);
}

bool
MxGroup::isZero() const
{
    for (int i = 0; i < kMxGroupSize; ++i)
        if (mant[i] != 0)
            return false;
    return true;
}

MxGroup
mxQuantize(const double *v, Rounding mode, Lfsr16 &lfsr)
{
    MxGroup g;

    double amax = 0.0;
    for (int i = 0; i < kMxGroupSize; ++i)
        amax = std::max(amax, std::fabs(v[i]));
    if (amax == 0.0 || !std::isfinite(amax))
        return g; // all-zero group

    int e = gridExponent(amax);
    // If the largest magnitude would round past the top mantissa code,
    // widen the grid by one exponent step instead of clamping it.
    if (amax * std::ldexp(1.0, kMxMantFracBits - e) >
            static_cast<double>(kMxMantMax) + 0.5 &&
        e < kMxExpMax) {
        ++e;
    }
    g.sharedExp = e;

    for (int p = 0; p < kMxNumSubGroups; ++p) {
        double pmax = std::max(std::fabs(v[2 * p]),
                               std::fabs(v[2 * p + 1]));
        // micro = 1 gives the pair a grid twice as fine; usable when the
        // pair maximum fits the halved range (with margin for round-up).
        double half_range =
            std::ldexp(static_cast<double>(kMxMantMax), e - 1 -
                       kMxMantFracBits);
        int mu = (pmax <= half_range && e - 1 >= kMxExpMin) ? 1 : 0;
        g.micro[p] = static_cast<uint8_t>(mu);

        for (int j = 0; j < kMxSubGroupSize; ++j) {
            int i = 2 * p + j;
            double scaled = std::ldexp(v[i], kMxMantFracBits + mu - e);
            double q = roundToGrid(scaled, mode, lfsr);
            g.mant[i] = clampMant(static_cast<int64_t>(q));
        }
    }
    return g;
}

void
mxQuantizeSpan(double *v, size_t n, Rounding mode, Lfsr16 &lfsr)
{
    double tmp[kMxGroupSize];
    for (size_t base = 0; base < n; base += kMxGroupSize) {
        size_t len = std::min<size_t>(kMxGroupSize, n - base);
        for (size_t i = 0; i < kMxGroupSize; ++i)
            tmp[i] = (i < len) ? v[base + i] : 0.0;
        MxGroup g = mxQuantize(tmp, mode, lfsr);
        for (size_t i = 0; i < len; ++i)
            v[base + i] = g.value(static_cast<int>(i));
    }
}

MxGroup
mxMultiply(const MxGroup &a, const MxGroup &b, Rounding mode, Lfsr16 &lfsr)
{
    MxGroup r;
    if (a.isZero() || b.isZero())
        return r;

    int er = a.sharedExp + b.sharedExp;
    if (er > kMxExpMax) {
        // Saturating overflow: encode max-magnitude values.
        r.sharedExp = kMxExpMax;
        for (int i = 0; i < kMxGroupSize; ++i) {
            int s = (a.mant[i] < 0) != (b.mant[i] < 0) ? -1 : 1;
            r.mant[i] = (a.mant[i] != 0 && b.mant[i] != 0)
                            ? static_cast<int8_t>(s * kMxMantMax)
                            : 0;
        }
        return r;
    }
    if (er < kMxExpMin)
        return r; // underflow flushes to zero

    r.sharedExp = er;
    for (int p = 0; p < kMxNumSubGroups; ++p) {
        int mu_sum = a.micro[p] + b.micro[p];
        int mu_r = std::min(mu_sum, 1);
        int extra = (mu_sum == 2) ? 1 : 0; // unrepresentable micro of 2:
                                           // keep 1 and shift mantissas
        r.micro[p] = static_cast<uint8_t>(mu_r);
        for (int j = 0; j < kMxSubGroupSize; ++j) {
            int i = 2 * p + j;
            int64_t prod = static_cast<int64_t>(a.mant[i]) *
                           static_cast<int64_t>(b.mant[i]);
            int64_t m = roundShift(prod, kMxMantFracBits + extra, mode,
                                   lfsr);
            r.mant[i] = clampMant(m);
        }
    }
    return r;
}

MxGroup
mxAdd(const MxGroup &a, const MxGroup &b, Rounding mode, Lfsr16 &lfsr)
{
    MxGroup r;
    bool a_zero = a.isZero();
    bool b_zero = b.isZero();
    if (a_zero && b_zero)
        return r;

    int er;
    if (a_zero) {
        er = b.sharedExp;
    } else if (b_zero) {
        er = a.sharedExp;
    } else {
        er = std::max(a.sharedExp, b.sharedExp);
    }

    // Align both operands to er and micro 0, then add integer mantissas.
    std::array<int64_t, kMxGroupSize> sum{};
    bool overflow = false;
    for (int i = 0; i < kMxGroupSize; ++i) {
        int p = i / kMxSubGroupSize;
        int64_t ma = 0;
        int64_t mb = 0;
        if (!a_zero && a.mant[i] != 0) {
            int shift = (er - a.sharedExp) + a.micro[p];
            ma = roundShift(a.mant[i], shift, mode, lfsr);
        }
        if (!b_zero && b.mant[i] != 0) {
            int shift = (er - b.sharedExp) + b.micro[p];
            mb = roundShift(b.mant[i], shift, mode, lfsr);
        }
        sum[i] = ma + mb;
        if (std::abs(sum[i]) > kMxMantMax)
            overflow = true;
    }

    if (overflow) {
        // Carry-out: renormalize the group by one exponent step.
        if (er < kMxExpMax) {
            er += 1;
            for (auto &s : sum)
                s = roundShift(s, 1, mode, lfsr);
        }
    }

    r.sharedExp = er;
    for (int i = 0; i < kMxGroupSize; ++i)
        r.mant[i] = clampMant(sum[i]);
    // Result microexponents are always zero (paper, Section 5.3).
    return r;
}

MxGroup
mxScale(const MxGroup &a, double scalar, Rounding mode, Lfsr16 &lfsr)
{
    MxGroup s;
    if (scalar == 0.0)
        return s;
    int e = gridExponent(std::fabs(scalar));
    s.sharedExp = e;
    double scaled = std::ldexp(scalar, kMxMantFracBits - e);
    // The broadcast scalar register is encoded once with nearest rounding;
    // the rounding-mode choice applies to the product mantissas.
    Lfsr16 reg_lfsr(1);
    int64_t m = static_cast<int64_t>(
        roundToGrid(scaled, Rounding::Nearest, reg_lfsr));
    for (int i = 0; i < kMxGroupSize; ++i)
        s.mant[i] = clampMant(m);
    return mxMultiply(a, s, mode, lfsr);
}

double
mxDotProduct(const MxGroup &a, const MxGroup &b)
{
    double acc = 0.0;
    for (int i = 0; i < kMxGroupSize; ++i) {
        int p = i / kMxSubGroupSize;
        int64_t prod = static_cast<int64_t>(a.mant[i]) *
                       static_cast<int64_t>(b.mant[i]);
        if (prod == 0)
            continue;
        int scale = a.sharedExp + b.sharedExp - a.micro[p] - b.micro[p] -
                    2 * kMxMantFracBits;
        acc += std::ldexp(static_cast<double>(prod), scale);
    }
    return acc;
}

} // namespace pimba
