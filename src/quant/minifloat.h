/**
 * @file
 * Parametric small floating-point codec covering fp16, e4m3 and e5m2.
 *
 * Section 3.2 of the paper quantizes the state / KV cache to 8-bit floats
 * (e4m3 = 4 exponent + 3 mantissa bits, e5m2 = 5 + 2) and observes severe
 * swamping for SU-LLMs; we reproduce those formats bit-faithfully,
 * including subnormals and saturation, with both rounding modes.
 */

#ifndef PIMBA_QUANT_MINIFLOAT_H
#define PIMBA_QUANT_MINIFLOAT_H

#include <cstdint>

#include "quant/rounding.h"

namespace pimba {

/** Static description of a sign+exponent+mantissa format. */
struct MinifloatSpec
{
    int expBits;       ///< exponent field width
    int manBits;       ///< mantissa (fraction) field width
    int bias;          ///< exponent bias
    bool ieeeReserved; ///< all-ones exponent reserved for inf/NaN (IEEE
                       ///< style, fp16/e5m2) vs only the single top code
                       ///< reserved (OCP e4m3 style)

    /** Largest finite magnitude; out-of-range inputs saturate to this. */
    double maxValue() const;

    /** Smallest positive normal magnitude. */
    double minNormal() const;

    /** Smallest positive subnormal magnitude (one ulp at the bottom). */
    double minSubnormal() const;

    /** Highest usable exponent field value. */
    int maxExpField() const;

    /** Highest usable mantissa field value in the top binade. */
    int maxManFieldAtTop() const;
};

/** fp16 / binary16 (5 exponent, 10 mantissa, bias 15, max 65504). */
MinifloatSpec fp16Spec();
/** OCP FP8 e4m3 (bias 7, max 448, saturating). */
MinifloatSpec e4m3Spec();
/** OCP FP8 e5m2 (bias 15, max 57344, saturating). */
MinifloatSpec e5m2Spec();

/**
 * Quantize @p v to a representable value of @p spec and return the decoded
 * result. Values beyond the max magnitude saturate.
 */
double minifloatQuantize(double v, const MinifloatSpec &spec, Rounding mode,
                         Lfsr16 &lfsr);

/**
 * Encode @p v into the raw bit pattern (sign | exponent | mantissa).
 * Exposed for bit-level tests.
 *
 * @param[out] decoded The value the returned bits represent (optional).
 * @return Raw bits, right-aligned.
 */
uint32_t minifloatEncode(double v, const MinifloatSpec &spec, Rounding mode,
                         Lfsr16 &lfsr, double *decoded);

/** Decode a raw bit pattern produced by minifloatEncode. */
double minifloatDecode(uint32_t bits, const MinifloatSpec &spec);

} // namespace pimba

#endif // PIMBA_QUANT_MINIFLOAT_H
