/**
 * @file
 * Rounding-mode definitions shared by every codec in src/quant.
 *
 * The paper (Section 3.2) studies round-to-nearest and stochastic rounding
 * for each 8-bit format; stochastic rounding probabilistically preserves
 * small-magnitude updates that would otherwise be swamped during the state
 * "update" accumulation, and is implemented in hardware with an LFSR plus
 * one adder (Section 4.2).
 */

#ifndef PIMBA_QUANT_ROUNDING_H
#define PIMBA_QUANT_ROUNDING_H

#include <cmath>
#include <cstdint>

#include "core/lfsr.h"

namespace pimba {

/** How codecs map an exact value onto the representable grid. */
enum class Rounding
{
    Nearest,    ///< round-to-nearest, ties to even
    Stochastic, ///< round up with probability equal to the fraction
};

/**
 * Round @p x (in units of the destination ulp) to an integer grid point.
 *
 * @param x Exact value measured in destination ulps.
 * @param mode Rounding mode.
 * @param lfsr Randomness source for stochastic rounding.
 */
inline double
roundToGrid(double x, Rounding mode, Lfsr16 &lfsr)
{
    if (mode == Rounding::Stochastic) {
        double lo = std::floor(x);
        double frac = x - lo;
        return lo + ((lfsr.nextUnit() < frac) ? 1.0 : 0.0);
    }
    // Round-half-to-even.
    double lo = std::floor(x);
    double frac = x - lo;
    if (frac > 0.5)
        return lo + 1.0;
    if (frac < 0.5)
        return lo;
    // Tie: pick the even neighbor.
    return (std::fmod(lo, 2.0) == 0.0) ? lo : lo + 1.0;
}

/**
 * Arithmetic right shift of a signed integer with explicit rounding of the
 * discarded bits. Used by the MX adder/multiplier datapaths where mantissa
 * alignment shifts are the rounding points.
 *
 * @param v Signed integer value.
 * @param shift Non-negative shift amount (0 returns @p v unchanged).
 */
inline int64_t
roundShift(int64_t v, int shift, Rounding mode, Lfsr16 &lfsr)
{
    if (shift <= 0)
        return v << (-shift);
    if (shift >= 63)
        return 0;
    // Operate on the magnitude so behaviour is symmetric in sign, the way
    // a sign-magnitude datapath behaves.
    uint64_t mag = static_cast<uint64_t>(v < 0 ? -v : v);
    uint64_t keep = mag >> shift;
    uint64_t rem = mag & ((uint64_t{1} << shift) - 1);
    if (mode == Rounding::Stochastic) {
        uint64_t r = lfsr.nextBits(shift > 32 ? 32 : shift);
        if (shift > 32)
            r = (r << (shift - 32)) | lfsr.nextBits(shift - 32);
        if (rem + r >= (uint64_t{1} << shift))
            keep += 1;
    } else {
        uint64_t half = uint64_t{1} << (shift - 1);
        if (rem > half || (rem == half && (keep & 1)))
            keep += 1;
    }
    int64_t out = static_cast<int64_t>(keep);
    return v < 0 ? -out : out;
}

} // namespace pimba

#endif // PIMBA_QUANT_ROUNDING_H
