/**
 * @file
 * MX8 block floating point: codec plus the bit-level MX Multiplier and
 * MX Adder datapaths of the Pimba SPE (paper Section 5.3, Fig. 9).
 *
 * Format (Section 3.2): groups of 16 values share one 8-bit exponent;
 * pairs of values within a group share a 1-bit microexponent; each element
 * carries a sign and a 6-bit mantissa. Total = 8 + 8*1 + 16*7 = 128 bits
 * for 16 values, i.e. an average of 8 bits per value — hence "MX8".
 *
 * Semantics used here (self-consistent fixed-point convention):
 *
 *   value(i) = mant[i] * 2^(sharedExp - micro[i/2] - kMantFracBits)
 *
 * with mant in [-63, 63] (sign-magnitude 6-bit) and micro in {0, 1}.
 * The shared exponent is chosen so the largest group member uses the full
 * mantissa range; a pair whose local maximum fits in half the group range
 * takes micro = 1 and gains one bit of effective precision.
 */

#ifndef PIMBA_QUANT_MX8_H
#define PIMBA_QUANT_MX8_H

#include <array>
#include <cstdint>

#include "quant/rounding.h"

namespace pimba {

/** Elements per MX8 group. */
constexpr int kMxGroupSize = 16;
/** Elements per microexponent sub-group. */
constexpr int kMxSubGroupSize = 2;
/** Sub-groups (microexponents) per group. */
constexpr int kMxNumSubGroups = kMxGroupSize / kMxSubGroupSize;
/** Mantissa magnitude bits (excluding sign). */
constexpr int kMxMantBits = 6;
/** Fixed-point fraction position of the mantissa. */
constexpr int kMxMantFracBits = 6;
/** Maximum mantissa magnitude. */
constexpr int kMxMantMax = (1 << kMxMantBits) - 1; // 63
/** Shared-exponent clamp range (8-bit signed storage). */
constexpr int kMxExpMin = -127;
constexpr int kMxExpMax = 127;

/** One MX8 group of 16 values. */
struct MxGroup
{
    int sharedExp = kMxExpMin;                     ///< unbiased exponent E
    std::array<uint8_t, kMxNumSubGroups> micro{};  ///< microexponents (0/1)
    std::array<int8_t, kMxGroupSize> mant{};       ///< sign+6-bit mantissas

    /** Decoded value of element @p i. */
    double value(int i) const;

    /** Decode all 16 elements into @p out. */
    void decode(double *out) const;

    /** True if every mantissa is zero. */
    bool isZero() const;
};

/**
 * Quantize 16 doubles into an MX8 group.
 *
 * @param v Input values (exactly kMxGroupSize of them).
 * @param mode Rounding mode applied to the mantissas.
 * @param lfsr Randomness source for stochastic rounding.
 */
MxGroup mxQuantize(const double *v, Rounding mode, Lfsr16 &lfsr);

/** Quantize-dequantize a span in groups of 16 (tail zero-padded). */
void mxQuantizeSpan(double *v, size_t n, Rounding mode, Lfsr16 &lfsr);

/**
 * MX Multiplier (Fig. 9a): element-wise product of two groups.
 *
 * Shared exponents add; microexponents add per sub-group, and a sum of 2
 * (unrepresentable in one bit) is encoded as micro = 1 with the sub-group
 * mantissas right-shifted by one. Mantissa products are rescaled back to
 * 6 bits with the selected rounding.
 */
MxGroup mxMultiply(const MxGroup &a, const MxGroup &b, Rounding mode,
                   Lfsr16 &lfsr);

/**
 * MX Adder (Fig. 9b): element-wise sum of two groups.
 *
 * The result exponent is the max of the operand exponents; the smaller
 * group's mantissas are right-shifted by the difference ("CMP-delta" in
 * the figure), every mantissa is further right-shifted by its own
 * microexponent, and the result always carries microexponent 0. If any
 * element sum overflows 6 bits the whole group renormalizes by one
 * exponent step (carry-out handling; an implementation decision the paper
 * leaves implicit).
 */
MxGroup mxAdd(const MxGroup &a, const MxGroup &b, Rounding mode,
              Lfsr16 &lfsr);

/**
 * Broadcast-multiply: scale every element of @p a by MX-encoded scalar
 * behaviour is obtained by building a group with all mantissas equal.
 * Convenience used by the decay step d_t (broadcast along dim_state).
 */
MxGroup mxScale(const MxGroup &a, double scalar, Rounding mode,
                Lfsr16 &lfsr);

/**
 * Dot Product Unit: exact integer multiply-accumulate over one group pair,
 * returning the real-valued partial sum. The hardware accumulates partial
 * dot products in a wide fixed-point accumulator; exact integer math in
 * software models that (no intermediate rounding).
 */
double mxDotProduct(const MxGroup &a, const MxGroup &b);

/** Per-value storage bits of MX8 (128 bits / 16 values). */
constexpr double kMx8BitsPerValue = 8.0;

} // namespace pimba

#endif // PIMBA_QUANT_MX8_H
