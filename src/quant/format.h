/**
 * @file
 * Unified front end over all codecs in src/quant: the set of candidate
 * state/KV-cache representations the paper sweeps in Figures 4 and 6
 * (fp16, int8, e4m3, e5m2, mx8; each with nearest or stochastic rounding).
 */

#ifndef PIMBA_QUANT_FORMAT_H
#define PIMBA_QUANT_FORMAT_H

#include <string>
#include <vector>

#include "quant/rounding.h"

namespace pimba {

/** Numeric storage formats studied by the paper. */
enum class NumberFormat
{
    FP64, ///< reference (no quantization)
    FP16,
    INT8, ///< 8-bit integer, fp16 scale per 32 elements
    E4M3,
    E5M2,
    MX8,  ///< 16-element shared exponent + paired microexponents
};

/** A format plus the rounding mode used when writing into it. */
struct QuantSpec
{
    NumberFormat fmt = NumberFormat::FP64;
    Rounding rnd = Rounding::Nearest;

    /** "mx8SR"-style short name matching the paper's figure labels. */
    std::string name() const;

    bool operator==(const QuantSpec &other) const = default;
};

/** Storage bits per value, including shared scale/exponent overhead. */
double bitsPerValue(NumberFormat fmt);

/** Storage bytes for @p n values in @p fmt. */
double storageBytes(NumberFormat fmt, size_t n);

/** Short name of a bare format ("mx8", "e4m3", ...). */
std::string formatName(NumberFormat fmt);

/**
 * Quantize-dequantize @p n values in place according to @p spec.
 *
 * This is the per-step projection onto the representable grid that the
 * accuracy harness applies to the state (SU-LLMs) or to freshly appended
 * KV vectors (transformers). FP64 is the identity.
 */
void quantizeSpan(double *v, size_t n, const QuantSpec &spec, Lfsr16 &lfsr);

/** The nine configurations of the paper's Fig. 4 sweep, in figure order. */
std::vector<QuantSpec> figure4Specs();

} // namespace pimba

#endif // PIMBA_QUANT_FORMAT_H
