#include "perf/selfbench.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "config/runner.h"
#include "config/scenario.h"
#include "core/table.h"
#include "serving/engine.h"
#include "serving/trace.h"
#include "sim/serving_sim.h"

namespace pimba {

namespace {

using Clock = std::chrono::steady_clock;

/** Seconds elapsed since @p start. */
double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Pinned trace of the engine-level layers. The shapes are part of the
 * benchmark's contract: changing them breaks comparability of the
 * BENCH_*.json trajectory across PRs (see docs/benchmarking.md).
 */
TraceConfig
benchTrace(bool smoke, double rate)
{
    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Poisson;
    tc.ratePerSec = rate;
    tc.numRequests = smoke ? 24 : 96;
    tc.inputLen = smoke ? 256 : 512;
    tc.outputLen = smoke ? 128 : 256;
    tc.seed = 0x5EEDBE4Cu;
    return tc;
}

EngineConfig
benchEngine()
{
    EngineConfig ec;
    ec.maxBatch = 32;
    return ec;
}

/** Layer 1: cold-cache generation-step evaluation. */
BenchLayer
benchStepCost(const SelfBenchOptions &opts)
{
    BenchLayer layer;
    layer.name = "step_cost";
    const std::vector<ModelConfig> models = {retnet2p7b(), mamba2_2p7b(),
                                             opt7b()};
    const std::vector<int> batches =
        opts.smoke ? std::vector<int>{8} : std::vector<int>{32, 128};
    const uint64_t seq = opts.smoke ? 256 : 2048;
    layer.detail = "cold generationStep, Pimba system, "
                   "RetNet/Mamba-2/OPT x batches, seq " +
                   std::to_string(seq);

    Clock::time_point start = Clock::now();
    for (int rep = 0; rep < opts.reps; ++rep) {
        // A fresh simulator per rep: cold PIM kernel caches, so this
        // layer times the raw command-level evaluation path.
        ServingSimulator sim(makeSystem(SystemKind::PIMBA));
        for (const ModelConfig &m : models) {
            for (int batch : batches) {
                StepResult step = sim.generationStep(m, batch, seq);
                layer.simSeconds += step.seconds.value();
                layer.simTokens += static_cast<uint64_t>(batch);
            }
        }
    }
    layer.wallSeconds = secondsSince(start);
    return layer;
}

/** Layer 2: one memoized serving-engine run. */
BenchLayer
benchEngineRun(const SelfBenchOptions &opts)
{
    BenchLayer layer;
    layer.name = "engine";
    TraceConfig tc = benchTrace(opts.smoke, 16.0);
    layer.detail = "ServingEngine, Pimba, FCFS, Poisson 16 req/s, " +
                   std::to_string(tc.numRequests) + " requests";

    std::vector<Request> trace = generateTrace(tc);
    Clock::time_point start = Clock::now();
    for (int rep = 0; rep < opts.reps; ++rep) {
        ServingSimulator sim(makeSystem(SystemKind::PIMBA));
        ServingEngine engine(sim, mamba2_2p7b(), benchEngine());
        ServingReport r = engine.run(trace);
        layer.simRequests += r.metrics.requests;
        layer.simTokens += r.generatedTokens;
        layer.simSeconds += r.makespan.value();
    }
    layer.wallSeconds = secondsSince(start);
    return layer;
}

/** Layer 3: the same engine run with the full event tracer attached —
 *  the observed cost of tracing, read against the "engine" layer. */
BenchLayer
benchEngineTraced(const SelfBenchOptions &opts)
{
    BenchLayer layer;
    layer.name = "engine_traced";
    TraceConfig tc = benchTrace(opts.smoke, 16.0);
    layer.detail = "engine layer plus lifecycle/phase tracer and "
                   "timeline sampler";

    std::vector<Request> trace = generateTrace(tc);
    Clock::time_point start = Clock::now();
    for (int rep = 0; rep < opts.reps; ++rep) {
        ServingSimulator sim(makeSystem(SystemKind::PIMBA));
        ServingEngine engine(sim, mamba2_2p7b(), benchEngine());
        // Fresh sinks per rep (a real run writes one trace per run);
        // the recorded events are discarded, the recording is timed.
        Tracer tracer;
        TimelineSampler timeline(Seconds(0.05));
        EngineObservers eo;
        eo.tracer = &tracer;
        eo.timeline = &timeline;
        eo.timelineTrack = timeline.registerTrack("engine_traced");
        engine.attachObservers(eo);
        ServingReport r = engine.run(trace);
        layer.simRequests += r.metrics.requests;
        layer.simTokens += r.generatedTokens;
        layer.simSeconds += r.makespan.value();
    }
    layer.wallSeconds = secondsSince(start);
    return layer;
}

/** Layer 4: a serving study (systems x policies x rates). */
BenchLayer
benchServingStudy(const SelfBenchOptions &opts)
{
    BenchLayer layer;
    layer.name = "serving";
    const std::vector<SystemKind> systems = {
        SystemKind::GPU, SystemKind::GPU_Q, SystemKind::PIMBA};
    const std::vector<SchedulerPolicy> policies = {
        SchedulerPolicy::FCFS, SchedulerPolicy::Sarathi};
    const std::vector<double> rates =
        opts.smoke ? std::vector<double>{8.0}
                   : std::vector<double>{4.0, 16.0};
    layer.detail = "GPU/GPU+Q/Pimba x fcfs/sarathi x " +
                   std::to_string(rates.size()) + " rates";

    Clock::time_point start = Clock::now();
    for (int rep = 0; rep < opts.reps; ++rep) {
        for (SystemKind kind : systems) {
            ServingSimulator sim(makeSystem(kind));
            for (SchedulerPolicy policy : policies) {
                for (double rate : rates) {
                    EngineConfig ec = benchEngine();
                    ec.policy = policy;
                    ServingEngine engine(sim, mamba2_2p7b(), ec);
                    ServingReport r = engine.run(
                        generateTrace(benchTrace(opts.smoke, rate)));
                    layer.simRequests += r.metrics.requests;
                    layer.simTokens += r.generatedTokens;
                    layer.simSeconds += r.makespan.value();
                }
            }
        }
    }
    layer.wallSeconds = secondsSince(start);
    return layer;
}

/** Layer 5: a multi-replica fleet run behind a router. */
BenchLayer
benchFleetRun(const SelfBenchOptions &opts)
{
    BenchLayer layer;
    layer.name = "fleet";
    const size_t replicas = opts.smoke ? 2 : 4;
    FleetConfig cfg = homogeneousFleet(SystemKind::PIMBA, replicas,
                                       benchEngine());
    cfg.router = RouterPolicy::JoinShortestQueue;
    TraceConfig tc = benchTrace(opts.smoke, 24.0);
    layer.detail = std::to_string(replicas) +
                   "x Pimba, join-shortest-queue, Poisson 24 req/s, " +
                   std::to_string(tc.numRequests) + " requests";

    std::vector<Request> trace = generateTrace(tc);
    Clock::time_point start = Clock::now();
    for (int rep = 0; rep < opts.reps; ++rep) {
        Fleet fleet(mamba2_2p7b(), cfg);
        FleetReport r = fleet.run(trace);
        layer.simRequests += r.metrics.requests;
        layer.simTokens += r.metrics.generatedTokens;
        layer.simSeconds += r.makespan.value();
    }
    layer.wallSeconds = secondsSince(start);
    return layer;
}

/** Layer 6: the bounded-memory replay path — streamed diurnal
 *  arrivals pumped through the event-calendar fleet into sketch
 *  collectors, the shape million-request replays run in. */
BenchLayer
benchFleetReplay(const SelfBenchOptions &opts)
{
    BenchLayer layer;
    layer.name = "fleet_replay";
    const size_t replicas = opts.smoke ? 2 : 4;
    FleetConfig cfg = homogeneousFleet(SystemKind::PIMBA, replicas,
                                       benchEngine());
    cfg.router = RouterPolicy::JoinShortestQueue;
    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Diurnal;
    tc.ratePerSec = 24.0;
    tc.diurnal.period = Seconds(120.0);
    tc.diurnal.peakToTrough = 3.0;
    tc.numRequests = opts.smoke ? 200 : 2000;
    tc.inputLen = opts.smoke ? 256 : 512;
    tc.outputLen = opts.smoke ? 128 : 256;
    tc.seed = 0x5EEDBE4Cu;
    layer.detail = std::to_string(replicas) +
                   "x Pimba, streamed diurnal 24 req/s, " +
                   std::to_string(tc.numRequests) +
                   " requests, sketch metrics";

    Clock::time_point start = Clock::now();
    for (int rep = 0; rep < opts.reps; ++rep) {
        Fleet fleet(mamba2_2p7b(), cfg);
        StreamingMetrics stream(cfg.slo);
        ArrivalStream arrivals(tc);
        FleetReport r = fleet.runStreamed(arrivals, stream);
        layer.simRequests += r.metrics.requests;
        layer.simTokens += r.metrics.generatedTokens;
        layer.simSeconds += r.makespan.value();
    }
    layer.wallSeconds = secondsSince(start);
    return layer;
}

/** Layer 7: the control-plane pump — the fleet_replay shape with the
 *  autoscaler enabled, so the extra calendar traffic (scale ticks,
 *  warm-up timers) and the scale-up/down machinery are timed against
 *  the static-pool baseline one layer above. */
BenchLayer
benchFleetAutoscale(const SelfBenchOptions &opts)
{
    BenchLayer layer;
    layer.name = "fleet_autoscale";
    const size_t replicas = opts.smoke ? 2 : 4;
    FleetConfig cfg = homogeneousFleet(SystemKind::PIMBA, replicas,
                                       benchEngine());
    cfg.router = RouterPolicy::JoinShortestQueue;
    AutoscalerConfig &as = cfg.controlPlane.autoscaler;
    as.enabled = true;
    as.minReplicas = 1;
    as.maxReplicas = replicas;
    as.initialReplicas = 1;
    as.interval = Seconds(2.0);
    as.scaleUpQueueDepth = 6.0;
    as.scaleDownQueueDepth = 1.0;
    as.warmup = Seconds(2.0);
    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Diurnal;
    tc.ratePerSec = 24.0;
    tc.diurnal.period = Seconds(120.0);
    tc.diurnal.peakToTrough = 3.0;
    tc.numRequests = opts.smoke ? 200 : 2000;
    tc.inputLen = opts.smoke ? 256 : 512;
    tc.outputLen = opts.smoke ? 128 : 256;
    tc.seed = 0x5EEDBE4Cu;
    layer.detail = "1.." + std::to_string(replicas) +
                   "x Pimba autoscaled, streamed diurnal 24 req/s, " +
                   std::to_string(tc.numRequests) +
                   " requests, sketch metrics";

    Clock::time_point start = Clock::now();
    for (int rep = 0; rep < opts.reps; ++rep) {
        Fleet fleet(mamba2_2p7b(), cfg);
        StreamingMetrics stream(cfg.slo);
        ArrivalStream arrivals(tc);
        FleetReport r = fleet.runStreamed(arrivals, stream);
        layer.simRequests += r.metrics.requests;
        layer.simTokens += r.metrics.generatedTokens;
        layer.simSeconds += r.makespan.value();
    }
    layer.wallSeconds = secondsSince(start);
    return layer;
}

/** Layer 8: the full fig12-scale throughput sweep. */
BenchLayer
benchFig12Sweep(const SelfBenchOptions &opts)
{
    BenchLayer layer;
    layer.name = "sweep_fig12";
    layer.detail = opts.smoke ? "fig12 throughput scenario (smoke)"
                              : "fig12 throughput scenario (full)";
    Scenario sc = fig12Scenario(opts.smoke);
    Clock::time_point start = Clock::now();
    // The grid cells are step-level (no request lifecycle), so the
    // layer reports wall time only.
    for (int rep = 0; rep < opts.reps; ++rep)
        runScenario(sc, /*quiet=*/true);
    layer.wallSeconds = secondsSince(start);
    return layer;
}

/** Minimal JSON string escaping (the details are ASCII by contract). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

std::string
jsonNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

/** Required-member check shared by the layer validators. */
const JsonValue *
requireMember(const JsonValue &obj, const char *key,
              JsonValue::Kind kind, std::string &err)
{
    const JsonValue *v = obj.find(key);
    if (!v) {
        err = std::string("missing member \"") + key + "\"";
        return nullptr;
    }
    if (v->kind() != kind) {
        err = std::string("member \"") + key + "\" has type " +
              v->typeName();
        return nullptr;
    }
    return v;
}

} // namespace

double
BenchLayer::requestsPerWallSec() const
{
    return wallSeconds > 0.0
               ? static_cast<double>(simRequests) / wallSeconds
               : 0.0;
}

double
BenchLayer::tokensPerWallSec() const
{
    return wallSeconds > 0.0
               ? static_cast<double>(simTokens) / wallSeconds
               : 0.0;
}

double
SelfBenchReport::totalWallSeconds() const
{
    double total = 0.0;
    for (const BenchLayer &l : layers)
        total += l.wallSeconds;
    return total;
}

std::string
SelfBenchReport::renderJson() const
{
    std::string out = "{\n";
    out += "  \"schema\": \"" + std::string(kSchema) + "\",\n";
    out += "  \"scale\": \"" + jsonEscape(scale) + "\",\n";
    out += "  \"reps\": " + std::to_string(reps) + ",\n";
    out += "  \"totalWallSeconds\": " + jsonNumber(totalWallSeconds()) +
           ",\n";
    out += "  \"layers\": [\n";
    for (size_t i = 0; i < layers.size(); ++i) {
        const BenchLayer &l = layers[i];
        out += "    {\n";
        out += "      \"name\": \"" + jsonEscape(l.name) + "\",\n";
        out += "      \"detail\": \"" + jsonEscape(l.detail) + "\",\n";
        out += "      \"wallSeconds\": " + jsonNumber(l.wallSeconds) +
               ",\n";
        out += "      \"simSeconds\": " + jsonNumber(l.simSeconds) +
               ",\n";
        out += "      \"simRequests\": " + std::to_string(l.simRequests) +
               ",\n";
        out += "      \"simTokens\": " + std::to_string(l.simTokens) +
               ",\n";
        out += "      \"requestsPerWallSec\": " +
               jsonNumber(l.requestsPerWallSec()) + ",\n";
        out += "      \"tokensPerWallSec\": " +
               jsonNumber(l.tokensPerWallSec()) + "\n";
        out += i + 1 < layers.size() ? "    },\n" : "    }\n";
    }
    out += "  ]\n}\n";
    return out;
}

std::string
SelfBenchReport::renderText() const
{
    Table t({"layer", "wall s", "sim req/s", "sim tok/s", "sim s"});
    for (const BenchLayer &l : layers)
        t.addRow({l.name, fmt(l.wallSeconds, 3),
                  fmt(l.requestsPerWallSec(), 0),
                  fmt(l.tokensPerWallSec(), 0), fmt(l.simSeconds, 2)});
    std::string out = "=== Simulator self-benchmark (" + scale + ", " +
                      std::to_string(reps) + " reps) ===\n";
    out += t.str();
    out += "total wall: " + fmt(totalWallSeconds(), 3) + " s\n";
    return out;
}

SelfBenchReport
runSelfBench(const SelfBenchOptions &opts)
{
    SelfBenchReport report;
    report.scale = opts.smoke ? "smoke" : "full";
    report.reps = opts.reps;
    report.layers.push_back(benchStepCost(opts));
    report.layers.push_back(benchEngineRun(opts));
    report.layers.push_back(benchEngineTraced(opts));
    report.layers.push_back(benchServingStudy(opts));
    report.layers.push_back(benchFleetRun(opts));
    report.layers.push_back(benchFleetReplay(opts));
    report.layers.push_back(benchFleetAutoscale(opts));
    report.layers.push_back(benchFig12Sweep(opts));
    return report;
}

std::string
validateSelfBenchJson(const std::string &text)
{
    JsonValue root;
    try {
        root = parseJson(text);
    } catch (const ConfigError &e) {
        return std::string("not parseable JSON: ") + e.what();
    }
    if (!root.isObject())
        return "document root is not an object";

    std::string err;
    const JsonValue *schema = requireMember(
        root, "schema", JsonValue::Kind::String, err);
    if (!schema)
        return err;
    if (schema->asString() != SelfBenchReport::kSchema)
        return "unexpected schema id \"" + schema->asString() + "\"";

    const JsonValue *scale = requireMember(
        root, "scale", JsonValue::Kind::String, err);
    if (!scale)
        return err;
    if (scale->asString() != "smoke" && scale->asString() != "full")
        return "scale must be \"smoke\" or \"full\"";

    const JsonValue *reps = requireMember(
        root, "reps", JsonValue::Kind::Number, err);
    if (!reps)
        return err;
    if (reps->asInt() < 1)
        return "reps must be >= 1";

    if (!requireMember(root, "totalWallSeconds",
                       JsonValue::Kind::Number, err))
        return err;

    const JsonValue *layers = requireMember(
        root, "layers", JsonValue::Kind::Array, err);
    if (!layers)
        return err;
    if (layers->items().empty())
        return "layers array is empty";

    for (const JsonValue &l : layers->items()) {
        if (!l.isObject())
            return "layer entry is not an object";
        const JsonValue *name = requireMember(
            l, "name", JsonValue::Kind::String, err);
        if (!name)
            return err;
        if (name->asString().empty())
            return "layer name is empty";
        if (!requireMember(l, "detail", JsonValue::Kind::String, err))
            return "layer \"" + name->asString() + "\": " + err;
        for (const char *key :
             {"wallSeconds", "simSeconds", "simRequests", "simTokens",
              "requestsPerWallSec", "tokensPerWallSec"}) {
            const JsonValue *v = requireMember(
                l, key, JsonValue::Kind::Number, err);
            if (!v)
                return "layer \"" + name->asString() + "\": " + err;
            if (v->asNumber() < 0.0)
                return "layer \"" + name->asString() + "\": member \"" +
                       key + "\" is negative";
        }
    }
    return "";
}

} // namespace pimba
