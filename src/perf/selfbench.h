/**
 * @file
 * Simulator self-benchmark: times the simulator's own layers — not what
 * it predicts, but how fast it predicts it — so every PR extends a
 * measurable performance trajectory (the `BENCH_*.json` history the
 * roadmap calls for).
 *
 * Six layers, from micro to macro:
 *
 *  - `step_cost`: raw generation-step evaluation on a cold simulator
 *    (the PIM command-level kernel model plus the GPU roofline, no
 *    memo hits) across pinned model/batch shapes.
 *  - `engine`: one memoized ServingEngine run over a seeded trace —
 *    the continuous-batching inner loop with warm step memos.
 *  - `engine_traced`: the same run with the event tracer and timeline
 *    sampler attached — the cost of observability, read against
 *    `engine` (the untraced layer is the one comparable across PRs).
 *  - `serving`: a serving-trace study (systems x policies x rates),
 *    the shape of one serving-scenario table.
 *  - `fleet`: a multi-replica fleet run behind a router.
 *  - `sweep_fig12`: the full fig12 throughput scenario, the paper's
 *    headline grid and the repo's dominant batch workload.
 *
 * Each layer reports wall seconds plus the simulated work it pushed
 * through (requests, tokens, simulated seconds), so the headline rates
 * are *simulated* requests/sec and tokens/sec **per wall-clock
 * second** — a simulator-throughput number that is comparable across
 * PRs as long as the pinned shapes stay untouched.
 *
 * The JSON emitted by renderJson() follows the schema described in
 * docs/benchmarking.md (`"schema": "pimba-selfbench-v1"`) and is
 * self-checked: validateSelfBenchJson() re-parses the text with the
 * scenario subsystem's JSON parser and verifies every required member,
 * which is also what CI's perf job runs against the artifact.
 */

#ifndef PIMBA_PERF_SELFBENCH_H
#define PIMBA_PERF_SELFBENCH_H

#include <cstdint>
#include <string>
#include <vector>

namespace pimba {

/** Knobs of one self-benchmark execution. */
struct SelfBenchOptions
{
    bool smoke = false; ///< CI-sized shapes instead of the full ones
    int reps = 3;       ///< repetitions per layer (wall time summed)
};

/** Measured outcome of one benchmark layer. */
struct BenchLayer
{
    std::string name;   ///< layer id ("step_cost", "engine", ...)
    std::string detail; ///< human description of the pinned shapes
    // pimba-lint: allow(bare-unit) measured wall clock, serialized raw to JSON
    double wallSeconds = 0.0; ///< total wall time across all reps
    // pimba-lint: allow(bare-unit) JSON record field, schema pimba-selfbench-v1
    double simSeconds = 0.0;  ///< simulated time covered (0 when n/a)
    uint64_t simRequests = 0; ///< simulated requests completed (reps summed)
    uint64_t simTokens = 0;   ///< simulated tokens generated (reps summed)

    /** Simulated requests per wall-clock second (0 when n/a). */
    double requestsPerWallSec() const;
    /** Simulated tokens per wall-clock second (0 when n/a). */
    double tokensPerWallSec() const;
};

/** Full self-benchmark outcome. */
struct SelfBenchReport
{
    /// Schema id stamped into the JSON; bump on breaking changes.
    static constexpr const char *kSchema = "pimba-selfbench-v1";

    std::string scale; ///< "smoke" or "full"
    int reps = 0;
    std::vector<BenchLayer> layers;

    /** Wall seconds summed over all layers. */
    double totalWallSeconds() const;

    /** The BENCH_*.json document (always schema-valid by construction). */
    std::string renderJson() const;

    /** Aligned stdout table for interactive runs. */
    std::string renderText() const;
};

/** Run every layer and collect the report. */
SelfBenchReport runSelfBench(const SelfBenchOptions &opts);

/**
 * Validate @p text against the pimba-selfbench-v1 schema (parseable
 * JSON, schema id, per-layer required members with sane types/ranges).
 * Returns the empty string when valid, else one actionable message.
 */
std::string validateSelfBenchJson(const std::string &text);

} // namespace pimba

#endif // PIMBA_PERF_SELFBENCH_H
