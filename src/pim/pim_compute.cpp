#include "pim/pim_compute.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace pimba {

namespace {

/** SPE arithmetic energy per processed state/cache value (pJ). The MX8
 *  datapath is cheaper per value than fp16 (narrower mantissa products);
 *  values follow the Table 3 power ratio scaled per-throughput. */
double
computeEnergyPerValuePj(NumberFormat fmt)
{
    return fmt == NumberFormat::MX8 ? 0.45 : 1.0;
}

/**
 * Pack a state-update shape into a nonzero memo key, or 0 if a field
 * exceeds its bit range (instances >= 1 keeps in-range keys nonzero).
 */
uint64_t
suShapeKey(const StateUpdateShape &s)
{
    if (s.instances >= (1ull << 40) || s.dimHead < 0 ||
        s.dimHead >= (1 << 12) || s.dimState < 0 ||
        s.dimState >= (1 << 12))
        return 0;
    return (s.instances << 24) |
           (static_cast<uint64_t>(s.dimHead) << 12) |
           static_cast<uint64_t>(s.dimState);
}

/** Packed attention-shape memo key, or 0 if out of range. */
uint64_t
attnShapeKey(const AttentionShape &s)
{
    if (s.instances >= (1ull << 20) || s.dimHead < 0 ||
        s.dimHead >= (1 << 12) || s.seqLen >= (1ull << 32))
        return 0;
    return (s.instances << 44) |
           (static_cast<uint64_t>(s.dimHead) << 32) | s.seqLen;
}

} // namespace

PimDesign
pimbaDesign()
{
    return {"Pimba", PimStyle::PimbaInterleaved, NumberFormat::MX8,
            true, true};
}

PimDesign
hbmPimDesign()
{
    return {"HBM-PIM", PimStyle::TimeMultiplexed, NumberFormat::FP16,
            true, true};
}

PimDesign
perBankPipelinedDesign(NumberFormat fmt)
{
    return {"PerBankPipelined", PimStyle::PerBankPipelined, fmt,
            true, true};
}

PimDesign
neupimsDesign()
{
    return {"NeuPIMs", PimStyle::PerBankPipelined, NumberFormat::FP16,
            false, true};
}

PimComputeModel::PimComputeModel(const HbmConfig &hbm,
                                 const PimDesign &design)
    : hbmCfg(hbm), pimDesign(design)
{}

PimKernelResult
PimComputeModel::runPasses(uint64_t passes, uint64_t total_comps,
                           uint64_t reg_write_cmds,
                           uint64_t result_read_cmds,
                           uint64_t processed_bytes_per_pc,
                           bool writes_back) const
{
    const auto &org = hbmCfg.org;
    PimCommandScheduler sched(hbmCfg);

    const int act4_per_pass = ceilDiv(org.banksPerPseudoChannel(), 4);
    uint64_t comps_left = total_comps;
    uint64_t regs_left = reg_write_cmds;
    uint64_t results_left = result_read_cmds;

    for (uint64_t p = 0; p < passes; ++p) {
        uint64_t passes_left = passes - p;
        uint64_t comps = ceilDiv(comps_left, passes_left);
        uint64_t regs = ceilDiv(regs_left, passes_left);
        uint64_t results = ceilDiv(results_left, passes_left);
        comps_left -= comps;
        regs_left -= regs;
        results_left -= results;

        sched.maybeRefresh();

        // ACT4s with REG_WRITEs interleaved into the tFAW gaps (Fig. 11).
        uint64_t regs_issued = 0;
        for (int a = 0; a < act4_per_pass; ++a) {
            sched.issueAct4();
            uint64_t quota = ceilDiv(regs, uint64_t{4}) *
                             static_cast<uint64_t>(a + 1);
            quota = std::min(quota, regs);
            while (regs_issued < quota) {
                sched.issueRegWrite();
                ++regs_issued;
            }
        }
        while (regs_issued < regs) {
            sched.issueRegWrite();
            ++regs_issued;
        }

        for (uint64_t c = 0; c < comps; ++c)
            sched.issueComp();

        // PRECHARGES first so the RESULT_READs overlap its tRP window.
        sched.issuePrecharges();
        for (uint64_t r = 0; r < results; ++r)
            sched.issueResultRead();
    }

    PimKernelResult res;
    res.cycles = sched.finishCycle();
    res.seconds = sched.finishSeconds();
    res.counts = sched.counts();

    // Whole-device energy: every pseudo-channel runs the same stream.
    const double pcs = org.totalPseudoChannels();
    const auto &en = hbmCfg.energy;
    double rows_activated = static_cast<double>(res.counts.act4) * 4.0;
    res.energy.activation = Joules(rows_activated * en.actEnergyPerRow_pJ *
                                   kPico * pcs);
    double bits_processed =
        static_cast<double>(processed_bytes_per_pc) * 8.0;
    double col_factor = writes_back ? 2.0 : 1.0; // read + write-back
    res.energy.column = Joules(bits_processed * col_factor *
                               en.colEnergyPerBit_pJ * kPico * pcs);
    double io_bits = static_cast<double>(res.counts.regWrite +
                                         res.counts.resultRead) *
                     org.columnBytes * 8.0;
    res.energy.io = Joules(io_bits * en.ioEnergyPerBit_pJ * kPico * pcs);
    double values = bits_processed /
                    (bitsPerValue(pimDesign.dataFormat));
    res.energy.compute = Joules(values * computeEnergyPerValuePj(
                                    pimDesign.dataFormat) * kPico * pcs);
    return res;
}

PimKernelResult
PimComputeModel::stateUpdate(const StateUpdateShape &shape) const
{
    uint64_t key = suShapeKey(shape);
    if (key == 0)
        return stateUpdateUncached(shape);
    if (const PimKernelResult *hit = suCache.find(key))
        return *hit;
    return suCache.insert(key, stateUpdateUncached(shape));
}

PimKernelResult
PimComputeModel::attentionScore(const AttentionShape &shape) const
{
    uint64_t key = attnShapeKey(shape);
    if (key == 0)
        return attentionScoreUncached(shape);
    if (const PimKernelResult *hit = scoreCache.find(key))
        return *hit;
    return scoreCache.insert(key, attentionScoreUncached(shape));
}

PimKernelResult
PimComputeModel::attentionAttend(const AttentionShape &shape) const
{
    uint64_t key = attnShapeKey(shape);
    if (key == 0)
        return attentionAttendUncached(shape);
    if (const PimKernelResult *hit = attendCache.find(key))
        return *hit;
    return attendCache.insert(key, attentionAttendUncached(shape));
}

PimKernelResult
PimComputeModel::stateUpdateUncached(const StateUpdateShape &shape) const
{
    PIMBA_ASSERT(pimDesign.supportsStateUpdate,
                 pimDesign.name, " cannot execute state updates");
    const auto &org = hbmCfg.org;
    StateLayout lay = computeStateLayout(shape, pimDesign.dataFormat,
                                         hbmCfg);

    double cols_per_comp = columnsPerCompSlot(
        pimDesign.style, org.banksPerPseudoChannel(), true);
    uint64_t comps = static_cast<uint64_t>(
        std::ceil(static_cast<double>(lay.columnsPerPc) / cols_per_comp));

    int pcs = org.totalPseudoChannels();
    uint64_t reg_cmds = ceilDiv<uint64_t>(
        ceilDiv<uint64_t>(lay.regWriteBytesTotal, pcs),
        static_cast<uint64_t>(org.columnBytes));
    uint64_t result_cmds = ceilDiv<uint64_t>(
        ceilDiv<uint64_t>(lay.resultReadBytesTotal, pcs),
        static_cast<uint64_t>(org.columnBytes));

    return runPasses(lay.passes, comps, reg_cmds, result_cmds,
                     lay.stateBytesPerPc, /*writes_back=*/true);
}

PimKernelResult
PimComputeModel::attentionScoreUncached(const AttentionShape &shape) const
{
    PIMBA_ASSERT(pimDesign.supportsAttention,
                 pimDesign.name, " cannot execute attention");
    const auto &org = hbmCfg.org;
    AttentionLayout lay = computeScoreLayout(shape, pimDesign.dataFormat,
                                             hbmCfg);
    double cols_per_comp = columnsPerCompSlot(
        pimDesign.style, org.banksPerPseudoChannel(), false);
    uint64_t comps = static_cast<uint64_t>(
        std::ceil(static_cast<double>(lay.columnsPerPc) / cols_per_comp));
    int pcs = org.totalPseudoChannels();
    uint64_t reg_cmds = ceilDiv<uint64_t>(
        ceilDiv<uint64_t>(lay.regWriteBytesTotal, pcs),
        static_cast<uint64_t>(org.columnBytes));
    uint64_t result_cmds = ceilDiv<uint64_t>(
        ceilDiv<uint64_t>(lay.resultReadBytesTotal, pcs),
        static_cast<uint64_t>(org.columnBytes));
    return runPasses(lay.passes, comps, reg_cmds, result_cmds,
                     lay.cacheBytesPerPc, /*writes_back=*/false);
}

PimKernelResult
PimComputeModel::attentionAttendUncached(const AttentionShape &shape) const
{
    PIMBA_ASSERT(pimDesign.supportsAttention,
                 pimDesign.name, " cannot execute attention");
    const auto &org = hbmCfg.org;
    AttentionLayout lay = computeAttendLayout(shape, pimDesign.dataFormat,
                                              hbmCfg);
    double cols_per_comp = columnsPerCompSlot(
        pimDesign.style, org.banksPerPseudoChannel(), false);
    uint64_t comps = static_cast<uint64_t>(
        std::ceil(static_cast<double>(lay.columnsPerPc) / cols_per_comp));
    int pcs = org.totalPseudoChannels();
    uint64_t reg_cmds = ceilDiv<uint64_t>(
        ceilDiv<uint64_t>(lay.regWriteBytesTotal, pcs),
        static_cast<uint64_t>(org.columnBytes));
    uint64_t result_cmds = ceilDiv<uint64_t>(
        ceilDiv<uint64_t>(lay.resultReadBytesTotal, pcs),
        static_cast<uint64_t>(org.columnBytes));
    return runPasses(lay.passes, comps, reg_cmds, result_cmds,
                     lay.cacheBytesPerPc, /*writes_back=*/false);
}

} // namespace pimba
