#include "pim/spu.h"

#include <algorithm>
#include <deque>

#include "core/logging.h"

namespace pimba {

double
SpuPipelineResult::throughputPerBankPair() const
{
    if (iterations == 0)
        return 0.0;
    return static_cast<double>(itemsProcessed) /
           static_cast<double>(iterations);
}

namespace {

/** Pimba: one SPU, two banks, alternating read/write (Fig. 8). */
SpuPipelineResult
simulateInterleaved(uint64_t num_items)
{
    SpuPipelineResult res;
    uint64_t remaining[2] = {(num_items + 1) / 2, num_items / 2};
    // Writes scheduled as (iteration_due, bank).
    std::deque<std::pair<uint64_t, int>> in_flight;
    uint64_t reads = 0;
    uint64_t j = 0;
    while (remaining[0] + remaining[1] > 0 || !in_flight.empty()) {
        int read_bank = static_cast<int>(j % 2);
        bool bank_written[2] = {false, false};
        // Retire the item whose write-back is due this iteration.
        if (!in_flight.empty() && in_flight.front().first <= j) {
            bank_written[in_flight.front().second] = true;
            in_flight.pop_front();
            ++res.itemsProcessed;
        }
        // Read a fresh sub-chunk from the scheduled bank.
        if (remaining[read_bank] > 0) {
            if (bank_written[read_bank])
                ++res.bankConflicts; // structural hazard (should not occur)
            --remaining[read_bank];
            in_flight.emplace_back(j + kSpuPipelineStages - 1, read_bank);
            ++reads;
        } else if (remaining[1 - read_bank] > 0 &&
                   !bank_written[1 - read_bank]) {
            // Tail: one bank drained first; keep feeding from the other
            // when it is not busy writing.
            --remaining[1 - read_bank];
            in_flight.emplace_back(j + kSpuPipelineStages - 1,
                                   1 - read_bank);
            ++reads;
        }
        ++j;
    }
    res.iterations = j;
    res.unitUtilization =
        j ? static_cast<double>(reads) / static_cast<double>(j) : 0.0;
    return res;
}

/** Per-bank pipelined: one unit, one bank; reads stall behind writes. */
SpuPipelineResult
simulatePerBank(uint64_t num_items)
{
    SpuPipelineResult res;
    uint64_t remaining = num_items;
    std::deque<uint64_t> in_flight; // write-due iterations
    uint64_t reads = 0;
    uint64_t j = 0;
    while (remaining > 0 || !in_flight.empty()) {
        if (!in_flight.empty() && in_flight.front() <= j) {
            // The single row buffer is occupied by the write; no read.
            in_flight.pop_front();
            ++res.itemsProcessed;
        } else if (remaining > 0) {
            --remaining;
            in_flight.push_back(j + kSpuPipelineStages - 1);
            ++reads;
        }
        ++j;
    }
    res.iterations = j;
    res.unitUtilization =
        j ? static_cast<double>(reads) / static_cast<double>(j) : 0.0;
    return res;
}

/** Time-multiplexed: one basic ALU per two banks, micro-op per slot. */
SpuPipelineResult
simulateTimeMux(uint64_t num_items)
{
    SpuPipelineResult res;
    res.iterations = num_items * kTimeMuxSlotsPerColumn;
    res.itemsProcessed = num_items;
    // The shared ALU is busy every slot, but only one slot in
    // kTimeMuxSlotsPerColumn consumes a fresh column.
    res.unitUtilization = 1.0 / kTimeMuxSlotsPerColumn;
    return res;
}

} // namespace

SpuPipelineResult
simulateSpuPipeline(PimStyle style, uint64_t num_items)
{
    switch (style) {
      case PimStyle::PimbaInterleaved:
        return simulateInterleaved(num_items);
      case PimStyle::PerBankPipelined:
        return simulatePerBank(num_items);
      case PimStyle::TimeMultiplexed:
      case PimStyle::TimeMultiplexedPerBank:
        return simulateTimeMux(num_items);
    }
    PIMBA_PANIC("unknown PIM style");
}

double
columnsPerCompSlot(PimStyle style, int banks_per_pc, bool is_state_update)
{
    switch (style) {
      case PimStyle::PimbaInterleaved:
        // banks/2 SPUs, each consuming one column per slot; attention has
        // no write-back but the SPU still serves one of its two banks per
        // slot, so the rate is identical (Section 6.2: the pipelined
        // design's benefit is limited for attention).
        return banks_per_pc / 2.0;
      case PimStyle::PerBankPipelined:
        // One unit per bank; state update halves duty for write-back.
        return is_state_update ? banks_per_pc / 2.0
                               : static_cast<double>(banks_per_pc);
      case PimStyle::TimeMultiplexed:
        // One ALU per two banks. State update costs
        // kTimeMuxSlotsPerColumn micro-op slots per column; attention is
        // the GEMV HBM-PIM was designed for (one MAC slot per column).
        return is_state_update
                   ? (banks_per_pc / 2.0) / kTimeMuxSlotsPerColumn
                   : banks_per_pc / 2.0;
      case PimStyle::TimeMultiplexedPerBank:
        // Fig. 5's variant: every bank has its own basic ALU.
        return is_state_update
                   ? banks_per_pc / static_cast<double>(
                         kTimeMuxSlotsPerColumn)
                   : static_cast<double>(banks_per_pc);
    }
    PIMBA_PANIC("unknown PIM style");
}

SpeStepResult
speProcessSubchunk(const MxGroup &state, const MxGroup &d, const MxGroup &k,
                   const MxGroup &q, double v_elem, Rounding mode,
                   Lfsr16 &lfsr)
{
    SpeStepResult out;
    // Stage 2: decay product and outer-product column, in parallel.
    MxGroup decayed = mxMultiply(state, d, mode, lfsr);
    MxGroup outer = mxScale(k, v_elem, mode, lfsr);
    // Stage 3: state update.
    out.newState = mxAdd(decayed, outer, mode, lfsr);
    // Stage 4: dot-product contribution while writing back.
    out.dotPartial = mxDotProduct(out.newState, q);
    return out;
}

void
speStateUpdateHead(std::vector<double> &state, const std::vector<double> &d,
                   const std::vector<double> &k, const std::vector<double> &q,
                   const std::vector<double> &v, std::vector<double> &y,
                   int dim_head, int dim_state, Rounding mode, Lfsr16 &lfsr)
{
    PIMBA_ASSERT(dim_head % kMxGroupSize == 0,
                 "dim_head must be a multiple of the MX group size");
    PIMBA_ASSERT(state.size() ==
                     static_cast<size_t>(dim_head) * dim_state,
                 "state size mismatch");
    PIMBA_ASSERT(d.size() == static_cast<size_t>(dim_head) &&
                     k.size() == static_cast<size_t>(dim_head) &&
                     q.size() == static_cast<size_t>(dim_head),
                 "operand size mismatch");
    PIMBA_ASSERT(v.size() == static_cast<size_t>(dim_state),
                 "v size mismatch");

    const int groups = dim_head / kMxGroupSize;
    y.assign(static_cast<size_t>(dim_state), 0.0);

    // Operand registers are loaded once per chunk group (REG_WRITE).
    std::vector<MxGroup> dg(groups), kg(groups), qg(groups);
    for (int g = 0; g < groups; ++g) {
        dg[g] = mxQuantize(d.data() + g * kMxGroupSize, Rounding::Nearest,
                           lfsr);
        kg[g] = mxQuantize(k.data() + g * kMxGroupSize, Rounding::Nearest,
                           lfsr);
        qg[g] = mxQuantize(q.data() + g * kMxGroupSize, Rounding::Nearest,
                           lfsr);
    }

    // Stream sub-chunks: state column j, group g (row-major state:
    // element (i, j) at i * dim_state + j, so gather/scatter per column).
    double tmp[kMxGroupSize];
    for (int j = 0; j < dim_state; ++j) {
        double yj = 0.0;
        for (int g = 0; g < groups; ++g) {
            for (int e = 0; e < kMxGroupSize; ++e) {
                int i = g * kMxGroupSize + e;
                tmp[e] = state[static_cast<size_t>(i) * dim_state + j];
            }
            MxGroup s = mxQuantize(tmp, mode, lfsr);
            SpeStepResult step =
                speProcessSubchunk(s, dg[g], kg[g], qg[g], v[j], mode, lfsr);
            for (int e = 0; e < kMxGroupSize; ++e) {
                int i = g * kMxGroupSize + e;
                state[static_cast<size_t>(i) * dim_state + j] =
                    step.newState.value(e);
            }
            yj += step.dotPartial;
        }
        y[j] = yj;
    }
}

} // namespace pimba
