/**
 * @file
 * State and KV-cache data layout in PIM banks (paper Section 5.1(3) and
 * Fig. 10a).
 *
 * Each state column (along dim_head) is split into sub-chunks of one DRAM
 * column; sub-chunks across dim_state are grouped into chunks that fill a
 * DRAM row; chunks sharing the operands d/q/k of one head form a chunk
 * group placed in consecutive rows of one bank. This header computes the
 * resulting counts used by the kernel cycle models.
 */

#ifndef PIMBA_PIM_DATA_LAYOUT_H
#define PIMBA_PIM_DATA_LAYOUT_H

#include <cstdint>

#include "core/units.h"
#include "dram/hbm_config.h"
#include "quant/format.h"

namespace pimba {

/** Shape of one state-update operation instance. */
struct StateUpdateShape
{
    uint64_t instances = 1; ///< batch x heads x layers being updated
    int dimHead = 64;       ///< rows of the per-head state matrix
    int dimState = 128;     ///< columns of the per-head state matrix
};

/** Shape of one attention phase over the KV cache. */
struct AttentionShape
{
    uint64_t instances = 1; ///< batch x heads x layers
    int dimHead = 128;      ///< head dimension
    uint64_t seqLen = 2048; ///< cached tokens to score/attend over
};

/** Derived placement counts for a state-update pass. */
struct StateLayout
{
    // pimba-lint: allow(bare-unit) per-value width, a conversion factor
    double bytesPerValue;        ///< storage bytes of the state format
    uint64_t totalStateBytes;    ///< all instances
    uint64_t stateBytesPerPc;    ///< per pseudo-channel share
    uint64_t columnsPerPc;       ///< DRAM columns of state per PC
    uint64_t rowsPerPc;          ///< DRAM rows of state per PC
    uint64_t passes;             ///< row passes (one open row per bank)
    int elemsPerColumn;          ///< state values per DRAM column
    int subchunksPerStateColumn; ///< dim_head / elemsPerColumn (>= 1)

    // Host <-> PIM traffic per pass (operand loads and result drains).
    uint64_t regWriteBytesTotal;
    uint64_t resultReadBytesTotal;
};

/** Compute the state layout for @p shape quantized as @p fmt on @p hbm. */
StateLayout computeStateLayout(const StateUpdateShape &shape,
                               NumberFormat fmt, const HbmConfig &hbm);

/** Derived placement counts for one attention phase (score or attend). */
struct AttentionLayout
{
    // pimba-lint: allow(bare-unit) per-value width, a conversion factor
    double bytesPerValue;
    uint64_t cacheBytesTotal;  ///< K (score) or V (attend) bytes touched
    uint64_t cacheBytesPerPc;
    uint64_t columnsPerPc;
    uint64_t rowsPerPc;
    uint64_t passes;
    uint64_t regWriteBytesTotal;   ///< queries or softmaxed scores
    uint64_t resultReadBytesTotal; ///< scores or attended outputs
};

/** Layout of the score phase (read K cache, drain scores). */
AttentionLayout computeScoreLayout(const AttentionShape &shape,
                                   NumberFormat fmt, const HbmConfig &hbm);

/** Layout of the attend phase (read V cache, drain outputs). */
AttentionLayout computeAttendLayout(const AttentionShape &shape,
                                    NumberFormat fmt, const HbmConfig &hbm);

} // namespace pimba

#endif // PIMBA_PIM_DATA_LAYOUT_H
