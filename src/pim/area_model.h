/**
 * @file
 * Gate-level area and power model of the PIM processing units.
 *
 * The paper synthesizes RTL with Synopsys DC on FreePDK45 and scales to
 * 10 nm with DeepScaleTool (Section 6.1); we substitute a parametric
 * gate-count model (NAND2-equivalents) with one technology constant
 * calibrated against the paper's published endpoints:
 *
 *   - Table 3: Pimba compute 0.053 mm² / total 0.092 mm² / 13.4 %
 *              overhead; HBM-PIM 0.042 / 0.081 / 11.8 %.
 *   - Fig. 5(b): per-bank time-multiplexed 17.8 %, per-bank pipelined
 *                32.4 %.
 *   - Fig. 6: mx8 cheapest among the pipelined 8-bit datapaths, int8
 *             penalized by dequantize/requantize + max-search logic,
 *             fp16 far to the right; SR adds only an LFSR and adders.
 *
 * Relative ordering between formats emerges from the gate counts
 * (multipliers ~ n^2, shifters ~ n log p, etc.); only the absolute scale
 * is calibrated.
 */

#ifndef PIMBA_PIM_AREA_MODEL_H
#define PIMBA_PIM_AREA_MODEL_H

#include "pim/pim_compute.h"
#include "quant/format.h"

namespace pimba {

/** Area of one design point, mm² at 10 nm in the DRAM process. */
struct PimArea
{
    double compute = 0.0; ///< all processing units of one pseudo-channel
    double buffer = 0.0;  ///< SRAM operand/result buffers

    double total() const { return compute + buffer; }
};

/**
 * Logic-area budget of one pseudo-channel region (mm²). Derived from
 * Table 3: 0.092 mm² at 13.4 % overhead. Overheads are reported against
 * this budget; prior work recommends staying below 25 % (Section 6.2).
 */
constexpr double kPimAreaBudgetMm2 = 0.6866;

/** Area model with gate-count building blocks. */
class PimAreaModel
{
  public:
    // --- Building blocks (NAND2-equivalent gate counts) ---

    /** n x m array multiplier. */
    static double intMultGates(int n, int m);
    /** n-bit ripple/carry-select adder. */
    static double intAddGates(int n);
    /** n-bit barrel shifter with @p positions shift amounts. */
    static double shifterGates(int bits, int positions);
    /** n-bit register (flip-flops). */
    static double regGates(int bits);
    /** n-bit magnitude comparator. */
    static double cmpGates(int n);
    /** 16-bit LFSR for stochastic rounding. */
    static double lfsrGates();

    // --- Floating point units ---
    static double fpMultGates(int exp_bits, int man_bits);
    static double fpAddGates(int exp_bits, int man_bits);
    static double fpMacGates(int exp_bits, int man_bits);

    // --- Format-specific element-wise lanes (Fig. 9 datapaths) ---

    /** Gates of the element-wise multiply+add+dot path per lane. */
    static double laneGates(NumberFormat fmt);
    /** Shared per-group logic (exponent handling, scale search, ...). */
    static double groupGates(NumberFormat fmt);
    /** Lanes per 256-bit (one DRAM column) operand group. */
    static int lanesPerColumn(NumberFormat fmt);

    /** Gates of one full pipelined SPE (256-bit operands + latches). */
    static double pipelinedUnitGates(NumberFormat fmt, bool stochastic);
    /** Gates of one time-multiplexed basic ALU (fp16 MAC + registers). */
    static double timeMuxUnitGates(NumberFormat fmt);

    // --- Design-level results ---

    /**
     * Area of @p units_per_pc processing units of the given style/format
     * in one pseudo-channel, plus the shared SRAM buffer.
     */
    static PimArea designArea(PimStyle style, NumberFormat fmt,
                              bool stochastic, int units_per_pc);

    /** Area of a PimDesign with its natural unit count for @p banks. */
    static PimArea designArea(const PimDesign &design, int banks_per_pc,
                              bool stochastic = true);

    /** Overhead of @p area against the pseudo-channel logic budget. */
    static double overheadPercent(const PimArea &area);

    /** Dynamic compute power (mW) at @p freq_hz (Table 3 methodology). */
    static double computePowerMw(double compute_area_mm2, double freq_hz);

    /** mm² per NAND2-equivalent gate in the 10 nm DRAM process. */
    static double mm2PerGate();
};

} // namespace pimba

#endif // PIMBA_PIM_AREA_MODEL_H
