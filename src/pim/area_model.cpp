#include "pim/area_model.h"

#include <cmath>

#include "core/logging.h"

namespace pimba {

namespace {

/** Integer log2 rounded up, min 1 (shift-stage count). */
int
log2Ceil(int v)
{
    int stages = 0;
    int x = 1;
    while (x < v) {
        x <<= 1;
        ++stages;
    }
    return std::max(1, stages);
}

} // namespace

double
PimAreaModel::intMultGates(int n, int m)
{
    // Array multiplier: one AND + one full-adder slice per partial
    // product bit (~7 NAND2 each).
    return 7.0 * n * m;
}

double
PimAreaModel::intAddGates(int n)
{
    // Carry-select adder, ~8 NAND2 per bit.
    return 8.0 * n;
}

double
PimAreaModel::shifterGates(int bits, int positions)
{
    // Barrel shifter: bits x log2(positions) 2:1 muxes (~3 NAND2 each).
    return 3.0 * bits * log2Ceil(positions);
}

double
PimAreaModel::regGates(int bits)
{
    // Flip-flop ~6 NAND2 equivalents.
    return 6.0 * bits;
}

double
PimAreaModel::cmpGates(int n)
{
    return 5.0 * n;
}

double
PimAreaModel::lfsrGates()
{
    return regGates(16) + 4.0 * 3.0; // 16 FFs + XOR taps
}

double
PimAreaModel::fpMultGates(int exp_bits, int man_bits)
{
    int sig = man_bits + 1; // implicit leading one
    return intMultGates(sig, sig) + intAddGates(exp_bits) +
           shifterGates(sig, 2) + 40.0; // normalize + flags
}

double
PimAreaModel::fpAddGates(int exp_bits, int man_bits)
{
    int sig = man_bits + 4; // guard/round/sticky
    return cmpGates(exp_bits) + intAddGates(exp_bits) +
           shifterGates(sig, 1 << std::min(exp_bits, 5)) +
           intAddGates(sig) + shifterGates(sig, sig) + 60.0;
}

double
PimAreaModel::fpMacGates(int exp_bits, int man_bits)
{
    // Fused multiplier + wide accumulate path.
    return fpMultGates(exp_bits, man_bits) +
           fpAddGates(exp_bits, man_bits + 4) + regGates(2 * man_bits + 8);
}

int
PimAreaModel::lanesPerColumn(NumberFormat fmt)
{
    // One 256-bit DRAM column of operands (Fig. 6 caption).
    return static_cast<int>(256.0 / bitsPerValue(fmt));
}

double
PimAreaModel::laneGates(NumberFormat fmt)
{
    switch (fmt) {
      case NumberFormat::MX8: {
        // Fig. 9: sign-magnitude 6-bit integer datapath per element.
        double mul = intMultGates(6, 6) + shifterGates(7, 2);   // decay
        double outer = intMultGates(6, 6) + shifterGates(7, 2); // k*v
        double add = shifterGates(8, 8) + intAddGates(8);       // align+add
        double dot = intMultGates(6, 6) + intAddGates(14);      // MAC slice
        return mul + outer + add + dot;
      }
      case NumberFormat::E4M3: {
        double mul2 = 2.0 * fpMultGates(4, 3);
        double add = fpAddGates(4, 3);
        double dot = fpMacGates(4, 3);
        return mul2 + add + dot;
      }
      case NumberFormat::E5M2: {
        double mul2 = 2.0 * fpMultGates(5, 2);
        double add = fpAddGates(5, 2);
        double dot = fpMacGates(5, 2);
        return mul2 + add + dot;
      }
      case NumberFormat::INT8: {
        // Scaled-integer element-wise addition requires dequantize
        // (int8 x fp16-scale multiply) on both operands and a
        // requantize multiply after the max search (Section 4.2).
        double dequant = 2.0 * intMultGates(8, 11);
        double mul2 = 2.0 * intMultGates(8, 8) + shifterGates(16, 4);
        double add = intAddGates(18);
        double requant = intMultGates(16, 11) + shifterGates(16, 16);
        double dot = intMultGates(8, 8) + intAddGates(20);
        return dequant + mul2 + add + requant + dot;
      }
      case NumberFormat::FP16: {
        double mul2 = 2.0 * fpMultGates(5, 10);
        double add = fpAddGates(5, 10);
        double dot = fpMacGates(5, 10);
        return mul2 + add + dot;
      }
      case NumberFormat::FP64:
        break;
    }
    PIMBA_PANIC("no hardware lane for format");
}

double
PimAreaModel::groupGates(NumberFormat fmt)
{
    switch (fmt) {
      case NumberFormat::MX8: {
        // Shared exponent add/compare + 8 microexponent handlers
        // (Fig. 9 top paths).
        double exp = intAddGates(8) + cmpGates(8) + intAddGates(8);
        double micro = 8.0 * (intAddGates(2) + 10.0);
        return exp + micro;
      }
      case NumberFormat::INT8: {
        // Max-magnitude search tree across 32 elements for requantize.
        return 31.0 * cmpGates(16) + regGates(16);
      }
      case NumberFormat::E4M3:
      case NumberFormat::E5M2:
      case NumberFormat::FP16:
        return 0.0; // per-element exponents; no shared logic
      case NumberFormat::FP64:
        break;
    }
    PIMBA_PANIC("no hardware group logic for format");
}

double
PimAreaModel::pipelinedUnitGates(NumberFormat fmt, bool stochastic)
{
    int lanes = lanesPerColumn(fmt);
    double lane_bits = bitsPerValue(fmt);
    double gates = lanes * laneGates(fmt) + groupGates(fmt);
    // Operand registers (d, q, k: one column each; v element + control)
    // and four pipeline latch stages over a 256-bit datapath.
    gates += 3.0 * regGates(256) + regGates(32);
    gates += kSpuPipelineStages * regGates(
        static_cast<int>(lanes * (lane_bits + 4)));
    // Accumulator for the dot-product drain.
    gates += regGates(64);
    if (stochastic)
        gates += lfsrGates() + lanes * intAddGates(4);
    return gates;
}

double
PimAreaModel::timeMuxUnitGates(NumberFormat fmt)
{
    // HBM-PIM style: a single element-wise MAC column (multiply OR add
    // per slot, shared), minimal registers, no pipeline latches.
    int lanes = lanesPerColumn(fmt);
    double gates = 0.0;
    if (fmt == NumberFormat::FP16) {
        gates = lanes * fpMacGates(5, 10);
    } else {
        gates = lanes * (laneGates(fmt) * 0.45);
    }
    gates += 2.0 * regGates(256) + regGates(64);
    return gates;
}

double
PimAreaModel::mm2PerGate()
{
    // Calibrated so the Pimba pseudo-channel compute area matches
    // Table 3 (0.053 mm² for 8 interleaved MX8 SPUs). DRAM processes are
    // ~10x less dense than logic at the same node (Section 6.1).
    return 1.66e-7;
}

namespace {

/**
 * Per-unit silicon area (mm² at 10 nm, DRAM process), anchored to the
 * paper's published synthesis endpoints:
 *
 *  - Fig. 5(b): 16 per-bank pipelined fp16 units = 32.4 % overhead and
 *    16 per-bank time-multiplexed fp16 units = 17.8 % (minus the shared
 *    0.039 mm² buffer) give 11.5e-3 and 5.2e-3 mm² per unit.
 *  - Table 3: 8 Pimba SPUs = 0.053 mm² -> 6.62e-3 mm² each (the
 *    pipelined MX8 unit plus ~16 % for the two-bank access-interleaving
 *    muxing); 8 optimized HBM-PIM units = 0.042 mm² -> 5.25e-3 each.
 *  - The 8-bit formats between MX8 and fp16 follow the gate-count
 *    ratios of the lane models above: fp8 adds per-element exponent
 *    alignment, int8 adds dequantize/requantize multipliers and the
 *    max-search tree (Section 4.2).
 */
double
pipelinedUnitAreaMm2(NumberFormat fmt)
{
    switch (fmt) {
      case NumberFormat::MX8:  return 5.72e-3;
      case NumberFormat::E5M2: return 6.80e-3;
      case NumberFormat::E4M3: return 7.65e-3;
      case NumberFormat::INT8: return 9.37e-3;
      case NumberFormat::FP16: return 11.5e-3;
      case NumberFormat::FP64: break;
    }
    PIMBA_PANIC("no hardware unit for format");
}

/** Extra area for the two-bank interleaving muxes and control. */
constexpr double kInterleaveFactor = 1.157;

/** LFSR + per-lane mantissa adders for stochastic rounding. */
constexpr double kStochasticExtraMm2 = 0.17e-3;

double
timeMuxUnitAreaMm2(NumberFormat fmt)
{
    // HBM-PIM's basic fp16 ALU; other formats scale by the lane ratios.
    if (fmt == NumberFormat::FP16)
        return 5.25e-3;
    return 0.46 * pipelinedUnitAreaMm2(fmt);
}

} // namespace

PimArea
PimAreaModel::designArea(PimStyle style, NumberFormat fmt, bool stochastic,
                         int units_per_pc)
{
    PimArea area;
    double unit = 0.0;
    switch (style) {
      case PimStyle::PimbaInterleaved:
        unit = pipelinedUnitAreaMm2(fmt) * kInterleaveFactor;
        break;
      case PimStyle::PerBankPipelined:
        unit = pipelinedUnitAreaMm2(fmt);
        break;
      case PimStyle::TimeMultiplexed:
      case PimStyle::TimeMultiplexedPerBank:
        unit = timeMuxUnitAreaMm2(fmt);
        break;
    }
    if (stochastic)
        unit += kStochasticExtraMm2;
    area.compute = unit * units_per_pc;
    // Shared SRAM operand/result buffer, identical across designs
    // (Table 3 reports 0.039 mm² for both Pimba and HBM-PIM).
    area.buffer = 0.039;
    return area;
}

PimArea
PimAreaModel::designArea(const PimDesign &design, int banks_per_pc,
                         bool stochastic)
{
    int units = (design.style == PimStyle::PerBankPipelined ||
                 design.style == PimStyle::TimeMultiplexedPerBank)
                    ? banks_per_pc
                    : banks_per_pc / 2;
    return designArea(design.style, design.dataFormat, stochastic, units);
}

double
PimAreaModel::overheadPercent(const PimArea &area)
{
    return 100.0 * area.total() / kPimAreaBudgetMm2;
}

double
PimAreaModel::computePowerMw(double compute_area_mm2, double freq_hz)
{
    // Dynamic power proportional to switched capacitance (~area) and
    // frequency; constant calibrated to Table 3 (8.29 mW for Pimba's
    // 0.053 mm² at 378 MHz).
    constexpr double kMwPerMm2Hz = 8.2908 / (0.053 * 378e6);
    return compute_area_mm2 * freq_hz * kMwPerMm2Hz;
}

} // namespace pimba
