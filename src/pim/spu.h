/**
 * @file
 * State-update Processing Unit models (paper Section 5.2, Fig. 8).
 *
 * Two complementary views of the SPU:
 *
 *  1. SpuPipelineSim — a cycle-level occupancy model of the four-stage
 *     pipeline under the three candidate designs (Pimba's two-bank access
 *     interleaving, per-bank pipelined, time-multiplexed). It verifies the
 *     paper's structural claims: interleaving is hazard-free and sustains
 *     one sub-chunk per iteration with half the units.
 *
 *  2. SpeFunctional — a bit-accurate functional model of the State-update
 *     Processing Engine datapath built from the MX multiplier/adder and
 *     dot-product unit of src/quant (Fig. 8 datapath, Fig. 9 units).
 */

#ifndef PIMBA_PIM_SPU_H
#define PIMBA_PIM_SPU_H

#include <cstdint>
#include <vector>

#include "quant/mx8.h"

namespace pimba {

/** Candidate in-memory compute organizations (Sections 4.1 and 5.2). */
enum class PimStyle
{
    PimbaInterleaved,       ///< one SPU per two banks, access interleaving
    PerBankPipelined,       ///< one pipelined unit per bank
    TimeMultiplexed,        ///< HBM-PIM: one basic fp16 ALU per two banks
    TimeMultiplexedPerBank, ///< Fig. 5's per-bank time-multiplexed design
};

/** Pipeline stages of the SPU (Fig. 8). */
constexpr int kSpuPipelineStages = 4;

/** Micro-op slots a time-multiplexed unit spends per column
 *  (read+decay-mul, outer-product, add, MAC/write). */
constexpr int kTimeMuxSlotsPerColumn = 4;

/** Outcome of a pipeline occupancy simulation. */
struct SpuPipelineResult
{
    uint64_t iterations = 0;     ///< total iterations consumed
    uint64_t itemsProcessed = 0; ///< sub-chunks completed
    uint64_t bankConflicts = 0;  ///< same-bank read+write in one iteration
    double unitUtilization = 0;  ///< fraction of iterations with new input
    /** Items completed per iteration per *bank pair* in steady state. */
    double throughputPerBankPair() const;
};

/**
 * Simulate one processing unit (and its one or two banks) draining
 * @p num_items sub-chunks.
 *
 * @param style Design under test.
 * @param num_items Sub-chunks to process (split evenly across the unit's
 *                  banks for two-bank designs).
 */
SpuPipelineResult simulateSpuPipeline(PimStyle style, uint64_t num_items);

/**
 * Effective state columns processed per all-bank COMP slot in one
 * pseudo-channel (the throughput constant the kernel models use).
 *
 * Pimba: banks/2 SPUs, one column each per slot. Per-bank pipelined:
 * banks units at 50% duty (row buffer cannot read and write in the same
 * slot). Time-multiplexed: banks/2 units needing kTimeMuxSlotsPerColumn
 * slots per column.
 *
 * @param is_state_update State update needs write-back; attention (GEMV)
 *                        does not, which changes the duty factors.
 */
double columnsPerCompSlot(PimStyle style, int banks_per_pc,
                          bool is_state_update);

/** Result of one SPE sub-chunk step. */
struct SpeStepResult
{
    MxGroup newState; ///< updated state sub-chunk
    double dotPartial = 0.0; ///< contribution to y for this state column
};

/**
 * Bit-accurate SPE datapath for one sub-chunk iteration (Fig. 8):
 * Stage 2 computes the decay product d ⊙ S and the outer-product column
 * k * v_j in parallel, Stage 3 adds them, Stage 4 dots the updated
 * sub-chunk with q.
 *
 * @param state Sub-chunk of the state column (16 dim_head elements).
 * @param d Decay operand sub-chunk (aligned with @p state).
 * @param k Key operand sub-chunk.
 * @param q Query operand sub-chunk.
 * @param v_elem The dim_state element of v for this state column.
 */
SpeStepResult speProcessSubchunk(const MxGroup &state, const MxGroup &d,
                                 const MxGroup &k, const MxGroup &q,
                                 double v_elem, Rounding mode,
                                 Lfsr16 &lfsr);

/**
 * Run a full per-head state update S' = d ⊙ S + k v^T, y = S'^T q through
 * the SPE group-by-group, exactly as the hardware would stream sub-chunks.
 *
 * @param state dim_head x dim_state state, row-major, updated in place as
 *              MX8-rounded values.
 * @param d,k,q dim_head operand vectors.
 * @param v dim_state operand vector.
 * @param[out] y dim_state output vector.
 * @param dim_head Must be a multiple of kMxGroupSize.
 */
void speStateUpdateHead(std::vector<double> &state,
                        const std::vector<double> &d,
                        const std::vector<double> &k,
                        const std::vector<double> &q,
                        const std::vector<double> &v,
                        std::vector<double> &y, int dim_head, int dim_state,
                        Rounding mode, Lfsr16 &lfsr);

} // namespace pimba

#endif // PIMBA_PIM_SPU_H
