#include "pim/data_layout.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace pimba {

namespace {

/** Round @p bytes up to whole DRAM columns. */
uint64_t
bytesToColumns(double bytes, const HbmOrganization &org)
{
    return static_cast<uint64_t>(
        std::ceil(bytes / static_cast<double>(org.columnBytes)));
}

} // namespace

StateLayout
computeStateLayout(const StateUpdateShape &shape, NumberFormat fmt,
                   const HbmConfig &hbm)
{
    const auto &org = hbm.org;
    StateLayout lay{};
    lay.bytesPerValue = bitsPerValue(fmt) / 8.0;

    double per_instance_values =
        static_cast<double>(shape.dimHead) * shape.dimState;
    double total_bytes = static_cast<double>(shape.instances) *
                         per_instance_values * lay.bytesPerValue;
    lay.totalStateBytes = static_cast<uint64_t>(std::ceil(total_bytes));

    int pcs = org.totalPseudoChannels();
    lay.stateBytesPerPc = ceilDiv<uint64_t>(lay.totalStateBytes,
                                            static_cast<uint64_t>(pcs));
    lay.columnsPerPc = bytesToColumns(
        static_cast<double>(lay.stateBytesPerPc), org);
    lay.rowsPerPc = ceilDiv<uint64_t>(
        lay.columnsPerPc, static_cast<uint64_t>(org.columnsPerRow()));
    // One pass keeps one row open in every bank of the pseudo-channel.
    lay.passes = std::max<uint64_t>(
        1, ceilDiv<uint64_t>(lay.rowsPerPc,
                             static_cast<uint64_t>(
                                 org.banksPerPseudoChannel())));

    lay.elemsPerColumn = std::max(
        1, static_cast<int>(org.columnBytes / lay.bytesPerValue));
    lay.subchunksPerStateColumn =
        std::max(1, static_cast<int>(ceilDiv<int>(shape.dimHead,
                                                  lay.elemsPerColumn)));

    // Operands per instance per token: d_t, q_t, k_t (dim_head each,
    // shared across the chunk group) plus the v_t vector (dim_state,
    // one element per chunk iteration). All shipped in the state format.
    double opnd_values = 3.0 * shape.dimHead + shape.dimState;
    lay.regWriteBytesTotal = static_cast<uint64_t>(std::ceil(
        static_cast<double>(shape.instances) * opnd_values *
        lay.bytesPerValue));
    // Results: y_t per instance (dim_state values), drained as fp16
    // partials for GPU-side accumulation.
    lay.resultReadBytesTotal = static_cast<uint64_t>(
        shape.instances * static_cast<uint64_t>(shape.dimState) * 2);
    return lay;
}

namespace {

AttentionLayout
attentionLayoutCommon(const AttentionShape &shape, NumberFormat fmt,
                      const HbmConfig &hbm, double reg_values_per_instance,
                      double result_values_per_instance)
{
    const auto &org = hbm.org;
    AttentionLayout lay{};
    lay.bytesPerValue = bitsPerValue(fmt) / 8.0;

    double cache_values = static_cast<double>(shape.instances) *
                          static_cast<double>(shape.seqLen) * shape.dimHead;
    lay.cacheBytesTotal = static_cast<uint64_t>(
        std::ceil(cache_values * lay.bytesPerValue));

    int pcs = org.totalPseudoChannels();
    lay.cacheBytesPerPc = ceilDiv<uint64_t>(lay.cacheBytesTotal,
                                            static_cast<uint64_t>(pcs));
    lay.columnsPerPc = bytesToColumns(
        static_cast<double>(lay.cacheBytesPerPc), org);
    lay.rowsPerPc = ceilDiv<uint64_t>(
        lay.columnsPerPc, static_cast<uint64_t>(org.columnsPerRow()));
    lay.passes = std::max<uint64_t>(
        1, ceilDiv<uint64_t>(lay.rowsPerPc,
                             static_cast<uint64_t>(
                                 org.banksPerPseudoChannel())));

    lay.regWriteBytesTotal = static_cast<uint64_t>(std::ceil(
        static_cast<double>(shape.instances) * reg_values_per_instance *
        lay.bytesPerValue));
    lay.resultReadBytesTotal = static_cast<uint64_t>(std::ceil(
        static_cast<double>(shape.instances) *
        result_values_per_instance * 2.0));
    return lay;
}

} // namespace

AttentionLayout
computeScoreLayout(const AttentionShape &shape, NumberFormat fmt,
                   const HbmConfig &hbm)
{
    // Score: load q (dim_head), drain one score per cached token.
    return attentionLayoutCommon(shape, fmt, hbm,
                                 static_cast<double>(shape.dimHead),
                                 static_cast<double>(shape.seqLen));
}

AttentionLayout
computeAttendLayout(const AttentionShape &shape, NumberFormat fmt,
                    const HbmConfig &hbm)
{
    // Attend: load softmaxed scores (one per token), drain y (dim_head).
    return attentionLayoutCommon(shape, fmt, hbm,
                                 static_cast<double>(shape.seqLen),
                                 static_cast<double>(shape.dimHead));
}

} // namespace pimba
