/**
 * @file
 * Cycle-level performance and energy model of a PIM device executing the
 * state-update and attention kernels, built on the DRAM command scheduler.
 *
 * One pseudo-channel's command stream is simulated (all pseudo-channels
 * run the same all-bank program in parallel); per-pass command counts come
 * from the data layout (Section 5.1(3)), the per-COMP column throughput
 * from the SPU design (Section 5.2), and the issue cycles from the Table 1
 * timing rules with the Fig. 11 overlaps.
 */

#ifndef PIMBA_PIM_PIM_COMPUTE_H
#define PIMBA_PIM_PIM_COMPUTE_H

#include <string>

#include "core/flat_table.h"
#include "dram/hbm_config.h"
#include "dram/pim_scheduler.h"
#include "pim/data_layout.h"
#include "pim/spu.h"
#include "quant/format.h"

namespace pimba {

/** A PIM design point: compute organization plus storage format. */
struct PimDesign
{
    std::string name;
    PimStyle style;
    NumberFormat dataFormat;
    bool supportsStateUpdate = true;
    bool supportsAttention = true;
};

/** Pimba: interleaved SPUs with MX8 state/KV (the paper's design). */
PimDesign pimbaDesign();

/** HBM-PIM baseline: time-multiplexed fp16 ALUs (GPU+PIM system). */
PimDesign hbmPimDesign();

/** Per-bank pipelined design of Fig. 5 (fp16 unless overridden). */
PimDesign perBankPipelinedDesign(NumberFormat fmt = NumberFormat::FP16);

/** NeuPIMs-like baseline: per-bank fp16 GEMV PIM, attention only. */
PimDesign neupimsDesign();

/** Energy split of one kernel invocation (whole device). */
struct PimEnergy
{
    Joules activation; ///< row activations
    Joules column;     ///< internal column accesses
    Joules io;         ///< operand / result transfers on the bus
    Joules compute;    ///< SPE arithmetic

    Joules total() const { return activation + column + io + compute; }
};

/** Result of one kernel invocation on the device. */
struct PimKernelResult
{
    Cycles cycles;          ///< per-pseudo-channel finish cycle
    Seconds seconds;        ///< wall time of the kernel
    PimCommandCounts counts;///< commands issued per pseudo-channel
    PimEnergy energy;       ///< whole-device energy
};

/**
 * Performance/energy model of one PIM device.
 *
 * Kernel results are memoized by their exact shape: every one of a
 * model's stacked layers invokes the device with identical shapes, so
 * the per-command DRAM simulation runs once per distinct shape and the
 * stored result — bit-identical to recomputation, since the model is a
 * pure function of (shape, config) — is replayed for the rest. The
 * caches make the model stateful-but-const; a model instance is
 * therefore not safe to share across threads (each sweep worker builds
 * its own simulator, which is how the scenario layer already runs).
 */
class PimComputeModel
{
  public:
    PimComputeModel(const HbmConfig &hbm, const PimDesign &design);

    /** Full state-update kernel: S = d ⊙ S + k v^T ; y = S^T q. */
    PimKernelResult stateUpdate(const StateUpdateShape &shape) const;

    /** Attention score phase: s = K q over the cached keys. */
    PimKernelResult attentionScore(const AttentionShape &shape) const;

    /** Attention attend phase: y = V^T softmax(s). */
    PimKernelResult attentionAttend(const AttentionShape &shape) const;

    const HbmConfig &hbm() const { return hbmCfg; }
    const PimDesign &design() const { return pimDesign; }

  private:
    PimKernelResult runPasses(uint64_t passes, uint64_t total_comps,
                              uint64_t reg_write_cmds,
                              uint64_t result_read_cmds,
                              uint64_t processed_bytes_per_pc,
                              bool writes_back) const;

    PimKernelResult stateUpdateUncached(
        const StateUpdateShape &shape) const;
    PimKernelResult attentionScoreUncached(
        const AttentionShape &shape) const;
    PimKernelResult attentionAttendUncached(
        const AttentionShape &shape) const;

    HbmConfig hbmCfg;
    PimDesign pimDesign;

    // Shape-keyed result memos (see class comment). Shapes whose fields
    // exceed the packed-key ranges fall back to direct computation.
    mutable FlatTable<PimKernelResult> suCache;
    mutable FlatTable<PimKernelResult> scoreCache;
    mutable FlatTable<PimKernelResult> attendCache;
};

} // namespace pimba

#endif // PIMBA_PIM_PIM_COMPUTE_H
