/**
 * @file
 * Scenario execution: turn a declarative Scenario into the table/CSV
 * report the bench binaries print.
 *
 * A ScenarioReport is a pure value — title, ordered sections, each an
 * optional table plus free-form note lines — rendered to aligned text
 * (renderText) or CSV (renderCsv). Running the same scenario always
 * yields the same report bytes; the sweep layer relies on this to give
 * its any-thread-count determinism guarantee.
 *
 * runServingPoint / runFleetCase are the two primitive executions the
 * higher-level kinds compose; they are exported so the round-trip tests
 * can pin "scenario run == equivalent hand-constructed run" exactly.
 */

#ifndef PIMBA_CONFIG_RUNNER_H
#define PIMBA_CONFIG_RUNNER_H

#include <optional>
#include <string>
#include <vector>

#include "config/scenario.h"
#include "core/table.h"

namespace pimba {

/// One titled block of a report: a table, note lines, or both.
struct ReportSection
{
    std::string heading; ///< omitted when empty
    std::optional<Table> table;
    std::vector<std::string> lines; ///< printed after the table
};

/// Full outcome of one scenario (or sweep) execution.
struct ScenarioReport
{
    std::string title;
    std::vector<ReportSection> sections;

    /// Aligned-table rendering, the bench-binary stdout format.
    std::string renderText() const;
    /// CSV rendering; headings/notes become `#`-prefixed comments.
    std::string renderCsv() const;
};

/**
 * Execute @p sc and build its report. Progress for long grids goes to
 * stderr unless @p quiet (sweeps run points concurrently, where
 * unlabelled interleaved progress is noise); the returned report is a
 * pure function of the scenario either way.
 */
ScenarioReport runScenario(const Scenario &sc, bool quiet = false);

/**
 * One serving-engine run of a serving scenario: @p kind under
 * (@p policy, @p mode) at Poisson/fixed rate @p rate over the
 * scenario's seeded trace template.
 */
ServingReport runServingPoint(const ServingScenario &sc,
                              SystemKind kind, SchedulerPolicy policy,
                              ExecutionMode mode, double rate);

/// runServingPoint with observability sinks attached to the engine
/// before the run (the scenario runner's tracing/streaming path).
ServingReport runServingPoint(const ServingScenario &sc,
                              SystemKind kind, SchedulerPolicy policy,
                              ExecutionMode mode, double rate,
                              const EngineObservers &eo);

/**
 * One fleet run of a fleet scenario. @p router overrides the case's
 * configured router when set (router-shootout expansion).
 */
FleetReport runFleetCase(const FleetScenario &sc, const FleetCase &c,
                         std::optional<RouterPolicy> router = {});

/// runFleetCase with observability sinks attached to the fleet before
/// the run.
FleetReport runFleetCase(const FleetScenario &sc, const FleetCase &c,
                         std::optional<RouterPolicy> router,
                         const FleetObservers &fo);

/**
 * Bounded-memory fleet run: arrivals stream straight from the
 * scenario's trace config (generator or replay file, never
 * materialized) and completions fold into @p stream, so peak memory is
 * independent of trace length — the shape million-request replays
 * need. Colocated cases only (Fleet::runStreamed); the runner falls
 * back to the record-retaining path for disaggregated cases.
 */
FleetReport runFleetCaseStreamed(const FleetScenario &sc,
                                 const FleetCase &c,
                                 std::optional<RouterPolicy> router,
                                 const FleetObservers &fo,
                                 StreamingMetrics &stream);

} // namespace pimba

#endif // PIMBA_CONFIG_RUNNER_H
