/**
 * @file
 * Declarative scenario registry: a typed description of everything the
 * simulator stack can currently express — step-level throughput grids
 * (the paper's Fig. 12/16 shape), request-level serving runs over
 * synthetic traces, cluster fleets (router shootouts, colocated vs.
 * disaggregated pools, execution-mode mixes), saturation-point searches,
 * and fleet-capacity planning — loadable from JSON with located schema
 * errors, or built in C++ by the thin bench wrappers.
 *
 * Six scenario kinds:
 *
 *  - `throughput`: generationThroughput over grids of (model, batch),
 *    one column per system, normalized to the first system.
 *  - `serving`: one ServingEngine run per (system x policy x mode x
 *    rate) combination on a shared seeded trace.
 *  - `fleet`: one Fleet run per labelled fleet case (optionally
 *    expanded across a router list).
 *  - `saturation`: per (system x policy), bisect the highest Poisson
 *    rate that still meets the SLO-attainment fraction.
 *  - `planner`: per system, bisect the minimum replica count whose
 *    homogeneous fleet meets the SLO-attainment fraction.
 *  - `control`: fleet cases with the SLO-aware control plane enabled
 *    (autoscaling, priority tiers, deadlines, prefix affinity; see
 *    docs/control-plane.md) — same schema as `fleet` plus the
 *    per-fleet "controlPlane" / "priorities" / "deadlines" blocks,
 *    reported with cancellation and replica-second columns.
 *
 * A scenario file may carry a `"smoke"` member: a partial overlay
 * deep-merged over the document when the caller asks for smoke mode
 * (CI-sized runs), so the shrink is declared next to the full-size
 * experiment instead of hard-coded in harness binaries.
 *
 * Determinism contract: a Scenario is a pure value; running the same
 * scenario (same seeds included) always reproduces the same report,
 * byte for byte, at any sweep thread count.
 */

#ifndef PIMBA_CONFIG_SCENARIO_H
#define PIMBA_CONFIG_SCENARIO_H

#include <string>
#include <variant>
#include <vector>

#include "cluster/fleet.h"
#include "config/json.h"
#include "obs/observability.h"
#include "serving/trace.h"
#include "serving/workload.h"

namespace pimba {

/// The experiment shapes a scenario can describe.
enum class ScenarioKind
{
    Throughput, ///< step-level normalized-throughput grids (Fig. 12/16)
    Serving,    ///< request-level engine runs over a trace
    Fleet,      ///< multi-replica fleet cases on one trace
    Saturation, ///< highest SLO-sustaining Poisson rate per config
    Planner,    ///< minimum replica count per system at a target rate
    /// Control-plane fleet study (autoscaler / tiers / deadlines /
    /// prefix affinity). Shares FleetScenario as its spec type —
    /// appended at the enum's end so every existing kind keeps its
    /// parse-table index.
    ControlPlane,
};

/// Lower-case kind name ("throughput", "serving", ...).
std::string scenarioKindName(ScenarioKind kind);

/// One (platform, models, batches) grid of a throughput scenario.
struct ThroughputGrid
{
    std::string label;            ///< section heading in the report
    GpuConfig gpu;                ///< platform ("a100" / "h100")
    HbmConfig hbm;                ///< paired HBM generation
    int nGpus = 1;                ///< tensor-parallel degree
    std::vector<ModelConfig> models;
    std::vector<int> batches;
};

/// One summary line: mean/max ratio of @c system over @c versus across
/// every grid cell, with an optional paper-anchor note.
struct ThroughputSummary
{
    SystemKind system = SystemKind::PIMBA;
    SystemKind versus = SystemKind::GPU;
    std::string note; ///< appended in parentheses when non-empty
};

/// Fig. 12/16-shaped study: systems x models x batches, normalized.
struct ThroughputScenario
{
    /// Compared systems; the first is the normalization baseline.
    std::vector<SystemKind> systems;
    uint64_t inputLen = 2048;  ///< prompt length of the decode window
    uint64_t outputLen = 2048; ///< generated length of the decode window
    ExecutionMode executionMode = ExecutionMode::Blocked;
    std::vector<ThroughputGrid> grids;
    std::vector<ThroughputSummary> summaries;
};

/// Request-level engine study: systems x policies x modes x rates.
struct ServingScenario
{
    std::vector<SystemKind> systems;
    int nGpus = 1;
    std::vector<SchedulerPolicy> policies = {SchedulerPolicy::FCFS};
    /// Execution modes per row. When @c autoModes is set the list is
    /// ignored and each system runs blocked plus — if it has a PIM to
    /// overlap — overlapped.
    std::vector<ExecutionMode> modes = {ExecutionMode::Blocked};
    bool autoModes = false;
    std::vector<double> rates; ///< one engine run per rate (>= 1 entry)
    ModelConfig model;
    EngineConfig engine;
    /// Trace template; ratePerSec is overridden per swept rate.
    TraceConfig trace;
};

/// One labelled fleet configuration of a fleet scenario.
struct FleetCase
{
    std::string label;
    FleetConfig fleet;
};

/// Cluster study: every case (x router, when a router list is given)
/// serves the same trace.
struct FleetScenario
{
    ModelConfig model;
    TraceConfig trace;
    /// Non-empty: run every case once per listed router (shootouts).
    std::vector<RouterPolicy> routers;
    std::vector<FleetCase> cases; ///< >= 1
};

/// Saturation search: the highest rate sustaining the SLO fraction.
struct SaturationScenario
{
    std::vector<SystemKind> systems;
    std::vector<SchedulerPolicy> policies = {SchedulerPolicy::FCFS};
    ModelConfig model;
    EngineConfig engine;
    TraceConfig trace; ///< ratePerSec is the search variable, ignored
    double startRate = 0.5; ///< galloping starts here (must sustain)
    double maxRate = 512.0; ///< search ceiling
    int bisectSteps = 6;
    double sloFraction = 0.95; ///< required SLO-attainment fraction
};

/// Capacity planning: minimum replicas per system at the trace rate.
struct PlannerScenario
{
    std::vector<SystemKind> systems;
    ModelConfig model;
    EngineConfig engine;
    TraceConfig trace;
    RouterPolicy router = RouterPolicy::JoinShortestQueue;
    double sloFraction = 0.9;
    size_t maxReplicas = 32; ///< report "> max" beyond this
};

/// One fully-resolved experiment description.
struct Scenario
{
    std::string name;
    std::string description;
    ScenarioKind kind = ScenarioKind::Serving;
    std::variant<ThroughputScenario, ServingScenario, FleetScenario,
                 SaturationScenario, PlannerScenario>
        spec;
    /// Telemetry switches (serving and fleet kinds; all off by
    /// default). Parsed from the `"observability"` block, overridable
    /// by the pimba CLI's --trace/--timeline/--stream-metrics flags.
    ObservabilityConfig obs;
};

/**
 * Map a parsed JSON document onto a Scenario. Unknown keys, wrong
 * types, unknown enum names, and values rejected by the layer
 * validators (validateTraceConfig / validateEngineConfig /
 * validateFleetConfig) all raise ConfigError carrying the line/column
 * of the offending value.
 *
 * @param smoke apply the document's optional `"smoke"` overlay before
 *        mapping (deep merge: objects merge, scalars/arrays replace).
 */
Scenario parseScenario(const JsonValue &root, bool smoke = false);

/// parseScenario over in-memory JSON text (tests, embedded presets).
Scenario parseScenarioText(const std::string &text, bool smoke = false);

/// parseScenario over a JSON file.
Scenario loadScenarioFile(const std::string &path, bool smoke = false);

/**
 * Model-zoo lookup by preset name ("retnet-2.7b", "gla-2.7b",
 * "hgrn2-2.7b", "mamba2-2.7b", "zamba2-7b", "opt-7b", "opt-2.7b").
 * Throws ConfigError listing the valid names on a miss.
 */
ModelConfig modelPreset(const std::string &name);

/**
 * validateEngineConfig once per policy in @p policies. Serving and
 * saturation scenarios override EngineConfig::policy per run, so
 * policy-dependent bounds (the Sarathi memo limits) must be checked
 * against every policy the scenario will actually execute — not just
 * the one written inside the engine block. Returns the first failing
 * message, or the empty string.
 */
std::string
validateEngineAcrossPolicies(const EngineConfig &engine,
                             const std::vector<SchedulerPolicy> &policies);

// ------------------------------------------------- built-in scenarios
// The canonical studies the bench binaries print, constructed in C++ so
// the benches stay path-independent. fig12Scenario()/fig16Scenario()
// are mirrored by scenarios/fig12_throughput.json / fig16_h100.json and
// a parity test pins that `pimba run` on the JSON file reproduces the
// bench's tables exactly.

/// Fig. 12: normalized throughput, A100, small + 70B scale.
Scenario fig12Scenario(bool smoke = false);
/// Fig. 16: normalized throughput on the H100/HBM3 platform, 70B.
Scenario fig16Scenario(bool smoke = false);
/// Rate sweep of all five systems under open-loop Poisson traffic.
Scenario servingRateSweepScenario(const ModelConfig &model,
                                  bool smoke = false);
/// Scheduler-policy x execution-mode shootout at a saturating rate.
Scenario policyShootoutScenario(const ModelConfig &model,
                                bool smoke = false);
/// Router shootout on the heterogeneous 2x Pimba + 2x GPU fleet.
Scenario routerShootoutScenario(bool smoke = false);
/// Colocated vs. NVLink/InfiniBand-disaggregated Pimba fleets.
Scenario disaggregationScenario(bool smoke = false);
/// All-blocked vs. all-overlapped vs. mixed-mode Pimba fleets.
Scenario executionModeScenario(bool smoke = false);
/// Saturation-point search per system x policy (traffic_sweep).
Scenario saturationScenario(bool smoke = false);
/// Min-replica fleet planning per system (fleet_planner).
Scenario plannerScenario(bool smoke = false);
/// Autoscaler vs. static provisioning on a diurnal trace
/// (fleet_planner's policy-evaluation mode; mirrored by
/// scenarios/autoscale_diurnal.json).
Scenario autoscaleScenario(bool smoke = false);

} // namespace pimba

#endif // PIMBA_CONFIG_SCENARIO_H
