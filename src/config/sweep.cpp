#include "config/sweep.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <thread>

#include "core/logging.h"

namespace pimba {

namespace {

double
parseGridNumber(const std::string &token, const std::string &spec)
{
    try {
        size_t used = 0;
        double v = std::stod(token, &used);
        if (used != token.size())
            throw std::invalid_argument(token);
        return v;
    } catch (const std::exception &) {
        throw ConfigError("malformed grid value '" + token + "' in '" +
                          spec + "'");
    }
}

/// Stable value label for headings: integral values print without an
/// exponent ("3000000000", not "3e+09"), fractional ones as "%g".
std::string
gridValueLabel(double v)
{
    char buf[64];
    if (std::nearbyint(v) == v && std::abs(v) < 9.0e15)
        std::snprintf(buf, sizeof buf, "%.0f", v);
    else
        std::snprintf(buf, sizeof buf, "%g", v);
    return buf;
}

} // namespace

GridAxis
parseGridSpec(const std::string &spec)
{
    size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size())
        throw ConfigError("grid spec must look like param=1..32, "
                          "param=1..32:step, or param=1,2,4; got '" +
                          spec + "'");
    GridAxis axis;
    axis.param = spec.substr(0, eq);
    std::string rest = spec.substr(eq + 1);

    if (size_t dots = rest.find(".."); dots != std::string::npos) {
        std::string lo_tok = rest.substr(0, dots);
        std::string hi_tok = rest.substr(dots + 2);
        double step = 1.0;
        bool geometric = false;
        if (size_t colon = hi_tok.find(':');
            colon != std::string::npos) {
            std::string step_tok = hi_tok.substr(colon + 1);
            hi_tok = hi_tok.substr(0, colon);
            if (!step_tok.empty() &&
                (step_tok[0] == 'x' || step_tok[0] == 'X')) {
                geometric = true;
                step_tok = step_tok.substr(1);
            }
            step = parseGridNumber(step_tok, spec);
        }
        double lo = parseGridNumber(lo_tok, spec);
        double hi = parseGridNumber(hi_tok, spec);
        if (hi < lo)
            throw ConfigError("grid range is inverted in '" + spec +
                              "'");
        if (geometric ? step <= 1.0 : step <= 0.0)
            throw ConfigError(
                std::string("grid step must be ") +
                (geometric ? "> 1 (geometric)" : "positive") +
                " in '" + spec + "'");
        if (geometric && lo <= 0.0)
            throw ConfigError("a geometric grid needs a positive "
                              "lower bound in '" +
                              spec + "' (multiplying " +
                              gridValueLabel(lo) + " never advances)");
        // Half-step tolerance absorbs float drift at the top end.
        double tolerance = geometric ? hi * 1e-9 : step * 0.5;
        for (double v = lo; v <= hi + tolerance;
             v = geometric ? v * step : v + step)
            axis.values.push_back(std::min(v, hi));
    } else {
        size_t pos = 0;
        while (pos <= rest.size()) {
            size_t comma = rest.find(',', pos);
            std::string token =
                rest.substr(pos, comma == std::string::npos
                                     ? std::string::npos
                                     : comma - pos);
            axis.values.push_back(parseGridNumber(token, spec));
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
    }
    if (axis.values.empty())
        throw ConfigError("grid '" + spec + "' produced no values");
    return axis;
}

void
applyGridParam(Scenario &sc, const std::string &param, double value)
{
    auto integral = [&](const char *what) {
        double rounded = std::nearbyint(value);
        if (rounded != value || rounded < 1.0 ||
            rounded > 2147483647.0)
            throw ConfigError("grid parameter '" + param +
                              "' needs a positive int-range integer " +
                              what + ", got " + gridValueLabel(value));
        return static_cast<int64_t>(rounded);
    };

    if (param == "rate") {
        if (!(value > 0.0))
            throw ConfigError("grid rate must be positive, got " +
                              gridValueLabel(value));
        if (auto *ss = std::get_if<ServingScenario>(&sc.spec)) {
            ss->rates = {value};
            ss->trace.ratePerSec = value;
        } else if (auto *fs = std::get_if<FleetScenario>(&sc.spec)) {
            fs->trace.ratePerSec = value;
        } else if (auto *ps = std::get_if<PlannerScenario>(&sc.spec)) {
            ps->trace.ratePerSec = value;
        } else {
            throw ConfigError("grid parameter 'rate' does not apply "
                              "to a " +
                              scenarioKindName(sc.kind) + " scenario");
        }
        return;
    }
    if (param == "requests") {
        int64_t n = integral("request count");
        if (auto *ss = std::get_if<ServingScenario>(&sc.spec))
            ss->trace.numRequests = static_cast<int>(n);
        else if (auto *fs = std::get_if<FleetScenario>(&sc.spec))
            fs->trace.numRequests = static_cast<int>(n);
        else if (auto *ps = std::get_if<PlannerScenario>(&sc.spec))
            ps->trace.numRequests = static_cast<int>(n);
        else if (auto *sat =
                     std::get_if<SaturationScenario>(&sc.spec))
            sat->trace.numRequests = static_cast<int>(n);
        else
            throw ConfigError("grid parameter 'requests' does not "
                              "apply to a " +
                              scenarioKindName(sc.kind) + " scenario");
        return;
    }
    if (param == "seed") {
        // Seeds span the full uint32 range (0 included) — wider than
        // integral()'s int bounds, matching the JSON schema's getSeed.
        double rounded = std::nearbyint(value);
        if (rounded != value || rounded < 0.0 ||
            rounded > 4294967295.0)
            throw ConfigError("grid parameter 'seed' needs an integer "
                              "in [0, 4294967295], got " +
                              gridValueLabel(value));
        int64_t seed = static_cast<int64_t>(rounded);
        if (auto *ss = std::get_if<ServingScenario>(&sc.spec))
            ss->trace.seed = static_cast<uint32_t>(seed);
        else if (auto *fs = std::get_if<FleetScenario>(&sc.spec))
            fs->trace.seed = static_cast<uint32_t>(seed);
        else if (auto *ps = std::get_if<PlannerScenario>(&sc.spec))
            ps->trace.seed = static_cast<uint32_t>(seed);
        else if (auto *sat =
                     std::get_if<SaturationScenario>(&sc.spec))
            sat->trace.seed = static_cast<uint32_t>(seed);
        else
            throw ConfigError("grid parameter 'seed' does not apply "
                              "to a " +
                              scenarioKindName(sc.kind) + " scenario");
        return;
    }
    if (param == "maxBatch") {
        int64_t batch = integral("batch cap");
        // Re-validate against every policy the point will actually run
        // — a bad value must be a located grid error here, not a fatal
        // abort inside a worker thread that discards the whole sweep.
        std::string err;
        if (auto *ss = std::get_if<ServingScenario>(&sc.spec)) {
            ss->engine.maxBatch = static_cast<int>(batch);
            err = validateEngineAcrossPolicies(ss->engine,
                                               ss->policies);
        } else if (auto *sat =
                       std::get_if<SaturationScenario>(&sc.spec)) {
            sat->engine.maxBatch = static_cast<int>(batch);
            err = validateEngineAcrossPolicies(sat->engine,
                                               sat->policies);
        } else if (auto *ps = std::get_if<PlannerScenario>(&sc.spec)) {
            ps->engine.maxBatch = static_cast<int>(batch);
            err = validateEngineConfig(ps->engine);
        } else {
            throw ConfigError("grid parameter 'maxBatch' does not "
                              "apply to a " +
                              scenarioKindName(sc.kind) + " scenario");
        }
        if (!err.empty())
            throw ConfigError("grid maxBatch=" +
                              gridValueLabel(value) +
                              " makes the engine config invalid: " +
                              err);
        return;
    }
    if (param == "replicas") {
        int64_t n = integral("replica count");
        auto *fs = std::get_if<FleetScenario>(&sc.spec);
        if (!fs)
            throw ConfigError("grid parameter 'replicas' only applies "
                              "to fleet scenarios");
        for (FleetCase &c : fs->cases) {
            ReplicaConfig proto = c.fleet.replicas.front();
            c.fleet.replicas.assign(static_cast<size_t>(n), proto);
            // Surface an impossible resize (e.g. a disaggregated case
            // whose prefill pool no longer fits) as a located grid
            // error rather than a fatal abort on a worker thread.
            if (std::string err = validateFleetConfig(c.fleet);
                !err.empty())
                throw ConfigError("grid replicas=" +
                                  gridValueLabel(value) + " makes \"" +
                                  c.label + "\" invalid: " + err);
        }
        return;
    }
    throw ConfigError("unknown grid parameter '" + param +
                      "' (expected rate, requests, seed, maxBatch, "
                      "replicas)");
}

ScenarioReport
runSweep(const Scenario &sc, const GridAxis &axis, int threads)
{
    std::vector<Scenario> points;
    points.reserve(axis.values.size());
    bool stripped_files = false;
    for (double v : axis.values) {
        Scenario point = sc;
        applyGridParam(point, axis.param, v);
        // Every point would write the same trace/timeline path from
        // its own worker thread — drop the file surfaces rather than
        // let the points race on (and overwrite) one file. Streaming
        // metrics are per-point and deterministic, so they stay.
        if (point.obs.tracing() || point.obs.timelining()) {
            stripped_files = true;
            point.obs.tracePath.clear();
            point.obs.timelinePath.clear();
        }
        points.push_back(std::move(point));
    }
    if (stripped_files)
        PIMBA_WARN("sweep: trace/timeline files are disabled for swept "
                   "points (all points would write the same path); run "
                   "a single point with --trace/--timeline instead");

    size_t workers = threads >= 1
                         ? static_cast<size_t>(threads)
                         : std::max(1u,
                                    std::thread::hardware_concurrency());
    workers = std::min(workers, points.size());

    std::vector<ScenarioReport> results(points.size());
    std::atomic<size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    auto work = [&]() {
        while (true) {
            size_t i = next.fetch_add(1);
            if (i >= points.size())
                return;
            try {
                // quiet: concurrent unlabelled progress is noise.
                results[i] = runScenario(points[i], /*quiet=*/true);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };

    if (workers <= 1) {
        work();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (size_t i = 0; i < workers; ++i)
            pool.emplace_back(work);
        for (std::thread &t : pool)
            t.join();
    }
    if (first_error)
        std::rethrow_exception(first_error);

    // Merge in grid order: the report is a pure function of the
    // (scenario, axis) pair, independent of the worker count.
    ScenarioReport merged;
    merged.title = (sc.description.empty() ? sc.name : sc.description) +
                   " — sweep over " + axis.param;
    for (size_t i = 0; i < points.size(); ++i) {
        ReportSection marker;
        marker.heading =
            axis.param + " = " + gridValueLabel(axis.values[i]);
        merged.sections.push_back(std::move(marker));
        for (ReportSection &sec : results[i].sections)
            merged.sections.push_back(std::move(sec));
    }
    return merged;
}

} // namespace pimba
