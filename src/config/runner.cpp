#include "config/runner.h"

#include <cstdio>

#include "serving/trace_io.h"
#include "sim/serving_sim.h"

namespace pimba {

std::string
ScenarioReport::renderText() const
{
    std::string out = "=== " + title + " ===\n";
    for (const ReportSection &sec : sections) {
        if (!sec.heading.empty())
            out += "--- " + sec.heading + " ---\n";
        if (sec.table)
            out += sec.table->str();
        for (const std::string &line : sec.lines)
            out += line + "\n";
        out += "\n";
    }
    return out;
}

std::string
ScenarioReport::renderCsv() const
{
    std::string out = "# " + title + "\n";
    for (const ReportSection &sec : sections) {
        if (!sec.heading.empty())
            out += "# " + sec.heading + "\n";
        if (sec.table)
            out += sec.table->csv();
        for (const std::string &line : sec.lines)
            out += "# " + line + "\n";
    }
    return out;
}

ServingReport
runServingPoint(const ServingScenario &sc, SystemKind kind,
                SchedulerPolicy policy, ExecutionMode mode, double rate)
{
    return runServingPoint(sc, kind, policy, mode, rate,
                           EngineObservers{});
}

ServingReport
runServingPoint(const ServingScenario &sc, SystemKind kind,
                SchedulerPolicy policy, ExecutionMode mode, double rate,
                const EngineObservers &eo)
{
    TraceConfig tc = sc.trace;
    tc.ratePerSec = rate;
    ServingSimulator sim(makeSystem(kind, sc.nGpus));
    EngineConfig ec = sc.engine;
    ec.policy = policy;
    ec.executionMode = mode;
    ServingEngine engine(sim, sc.model, ec);
    engine.attachObservers(eo);
    return engine.run(generateTrace(tc));
}

FleetReport
runFleetCase(const FleetScenario &sc, const FleetCase &c,
             std::optional<RouterPolicy> router)
{
    return runFleetCase(sc, c, router, FleetObservers{});
}

FleetReport
runFleetCase(const FleetScenario &sc, const FleetCase &c,
             std::optional<RouterPolicy> router, const FleetObservers &fo)
{
    FleetConfig cfg = c.fleet;
    if (router)
        cfg.router = *router;
    Fleet fleet(sc.model, cfg);
    fleet.attachObservers(fo);
    return fleet.run(materializeTrace(sc.trace));
}

FleetReport
runFleetCaseStreamed(const FleetScenario &sc, const FleetCase &c,
                     std::optional<RouterPolicy> router,
                     const FleetObservers &fo, StreamingMetrics &stream)
{
    FleetConfig cfg = c.fleet;
    if (router)
        cfg.router = *router;
    Fleet fleet(sc.model, cfg);
    fleet.attachObservers(fo);
    auto arrivals = openArrivalSource(sc.trace);
    return fleet.runStreamed(*arrivals, stream);
}

namespace {

/// Write @p body to @p path, throwing a located-enough ConfigError on
/// failure (observability outputs are explicit user requests — a
/// silently dropped file would look like a successful run).
void
writeTextFile(const std::string &path, const std::string &body)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        throw ConfigError("cannot open \"" + path + "\" for writing");
    size_t written = std::fwrite(body.data(), 1, body.size(), f);
    int rc = std::fclose(f);
    if (written != body.size() || rc != 0)
        throw ConfigError("short write to \"" + path + "\"");
}

/// Flush the run's trace/timeline files and append an "observability"
/// section describing what was emitted. No-op (and no section) when
/// every surface is off — reports of undisturbed runs stay
/// byte-identical to a build without the subsystem.
void
emitObsOutputs(const ObservabilityConfig &oc, const Tracer *tracer,
               const TimelineSampler *timeline, ScenarioReport &rep)
{
    if (!tracer && !timeline && !oc.streamMetrics)
        return;
    ReportSection sec;
    sec.heading = "observability";
    if (oc.streamMetrics)
        sec.lines.push_back(
            "metrics: streaming quantile sketches (relative accuracy " +
            fmt(QuantileSketch::kDefaultAccuracy * 100.0, 1) + "%)");
    if (tracer) {
        if (!tracer->writeFile(oc.tracePath))
            throw ConfigError("cannot write trace file \"" +
                              oc.tracePath + "\"");
        sec.lines.push_back("trace: " + oc.tracePath + " (" +
                            std::to_string(tracer->eventCount()) +
                            " events)");
    }
    if (timeline) {
        writeTextFile(oc.timelinePath,
                      oc.timelineFormat == TimelineFormat::Json
                          ? timeline->renderJson()
                          : timeline->renderCsv());
        sec.lines.push_back("timeline: " + oc.timelinePath + " (" +
                            std::to_string(timeline->rows().size()) +
                            " samples over " +
                            std::to_string(timeline->trackCount()) +
                            " tracks)");
    }
    rep.sections.push_back(std::move(sec));
}

/// Execution modes one (system, scenario) row set actually sweeps:
/// autoModes expands to blocked plus overlapped where a PIM exists.
std::vector<ExecutionMode>
modesFor(const ServingScenario &sc, SystemKind kind)
{
    if (!sc.autoModes)
        return sc.modes;
    std::vector<ExecutionMode> modes = {ExecutionMode::Blocked};
    if (makeSystem(kind).pim().has_value())
        modes.push_back(ExecutionMode::Overlapped);
    return modes;
}

ScenarioReport
runThroughput(const Scenario &scenario, bool quiet)
{
    const auto &ts = std::get<ThroughputScenario>(scenario.spec);
    ScenarioReport rep;

    // (mean, max) ratio accumulators per summary, over all grid cells.
    std::vector<Accumulator> ratios(ts.summaries.size());

    for (const ThroughputGrid &grid : ts.grids) {
        std::vector<std::string> header = {"model", "batch"};
        for (SystemKind kind : ts.systems)
            header.push_back(systemName(kind));
        Table t(header);
        for (const ModelConfig &model : grid.models) {
            for (int batch : grid.batches) {
                std::vector<double> thr;
                for (SystemKind kind : ts.systems) {
                    SystemConfig sys = makeSystem(kind, grid.nGpus,
                                                  grid.gpu, grid.hbm);
                    sys.executionMode = ts.executionMode;
                    ServingSimulator sim(sys);
                    thr.push_back(
                        sim.generationThroughput(model, batch,
                                                 ts.inputLen,
                                                 ts.outputLen)
                            .value());
                }
                double base = thr[0];
                std::vector<std::string> row = {
                    model.name, std::to_string(batch)};
                for (double v : thr)
                    row.push_back(fmt(v / base, 2));
                t.addRow(row);
                for (size_t s = 0; s < ts.summaries.size(); ++s) {
                    const ThroughputSummary &sum = ts.summaries[s];
                    double num = 0.0, den = 0.0;
                    for (size_t i = 0; i < ts.systems.size(); ++i) {
                        if (ts.systems[i] == sum.system)
                            num = thr[i];
                        if (ts.systems[i] == sum.versus)
                            den = thr[i];
                    }
                    if (num > 0.0 && den > 0.0)
                        ratios[s].add(num / den);
                }
            }
            if (!quiet)
                fprintf(stderr, "  %s done\n", model.name.c_str());
        }
        rep.sections.push_back(
            ReportSection{grid.label, std::move(t), {}});
    }

    if (!ts.summaries.empty()) {
        ReportSection sec;
        for (size_t s = 0; s < ts.summaries.size(); ++s) {
            const ThroughputSummary &sum = ts.summaries[s];
            std::string line = systemName(sum.system) + " vs " +
                               systemName(sum.versus) + ": avg " +
                               fmtRatio(ratios[s].mean()) + ", max " +
                               fmtRatio(ratios[s].max());
            if (!sum.note.empty())
                line += " (" + sum.note + ")";
            sec.lines.push_back(std::move(line));
        }
        rep.sections.push_back(std::move(sec));
    }
    return rep;
}

ScenarioReport
runServing(const Scenario &scenario, bool quiet)
{
    const auto &sc = std::get<ServingScenario>(scenario.spec);
    const ObservabilityConfig &oc = scenario.obs;
    ScenarioReport rep;
    Table t({"system", "policy", "mode", "rate", "tok/s", "goodput",
             "TTFT p50", "TTFT p95", "TPOT p95", "preempt",
             "blk util"});
    // Per-system saturation knee: the highest swept rate still served
    // almost entirely within the SLO (only meaningful for rate sweeps).
    Table knees({"system", "policy", "mode", "saturation req/s",
                 "peak tok/s"});
    // One trace "process" / timeline track per (system, policy, mode,
    // rate) run, all sharing this study's sinks.
    std::optional<Tracer> tracer;
    std::optional<TimelineSampler> timeline;
    if (oc.tracing())
        tracer.emplace();
    if (oc.timelining())
        timeline.emplace(oc.timelineInterval);
    int nextPid = 1;
    for (SystemKind kind : sc.systems) {
        for (SchedulerPolicy policy : sc.policies) {
            for (ExecutionMode mode : modesFor(sc, kind)) {
                double knee_rate = 0.0, peak_tok = 0.0;
                for (double rate : sc.rates) {
                    ServingReport r;
                    ServingMetrics m;
                    if (oc.enabled()) {
                        std::string label =
                            systemName(kind) + " " + policyName(policy) +
                            " " + executionModeName(mode) +
                            " rate=" + fmt(rate, 0);
                        EngineObservers eo;
                        StreamingMetrics stream(sc.engine.slo);
                        if (tracer) {
                            eo.tracer = &*tracer;
                            eo.pid = nextPid++;
                            tracer->processName(eo.pid, label);
                        }
                        if (timeline) {
                            eo.timeline = &*timeline;
                            eo.timelineTrack =
                                timeline->registerTrack(label);
                        }
                        if (oc.streamMetrics)
                            eo.stream = &stream;
                        r = runServingPoint(sc, kind, policy, mode,
                                            rate, eo);
                        m = oc.streamMetrics ? stream.finalize(r.makespan)
                                             : r.metrics;
                    } else {
                        r = runServingPoint(sc, kind, policy, mode,
                                            rate);
                        m = r.metrics;
                    }
                    t.addRow({systemName(kind), policyName(policy),
                              executionModeName(mode), fmt(rate, 0),
                              fmt(m.tokensPerSec.value(), 1),
                              fmt(m.goodput.value(), 2),
                              fmt(m.ttft.p50, 3),
                              fmt(m.ttft.p95, 3), fmt(m.tpot.p95, 4),
                              fmt(static_cast<double>(r.preemptions),
                                  0),
                              fmt(r.peakBlockUtil, 3)});
                    peak_tok =
                        std::max(peak_tok, m.tokensPerSec.value());
                    if (sustainsSlo(m, 0.9))
                        knee_rate = rate;
                }
                knees.addRow({systemName(kind), policyName(policy),
                              executionModeName(mode),
                              fmt(knee_rate, 0), fmt(peak_tok, 0)});
            }
        }
        if (!quiet)
            fprintf(stderr, "  %s done\n", systemName(kind).c_str());
    }
    rep.sections.push_back(ReportSection{"", std::move(t), {}});
    if (sc.rates.size() > 1)
        rep.sections.push_back(
            ReportSection{"saturation knees", std::move(knees), {}});
    emitObsOutputs(oc, tracer ? &*tracer : nullptr,
                   timeline ? &*timeline : nullptr, rep);
    return rep;
}

ScenarioReport
runFleet(const Scenario &scenario, bool quiet)
{
    const auto &sc = std::get<FleetScenario>(scenario.spec);
    const ObservabilityConfig &oc = scenario.obs;
    ScenarioReport rep;
    Table t({"fleet", "router", "goodput", "TTFT p50", "TTFT p95",
             "TPOT p50", "TPOT p95", "queue p95", "req imbal",
             "tok imbal", "xfer MB/req", "xfer p95 ms", "TTFT share"});
    std::optional<Tracer> tracer;
    std::optional<TimelineSampler> timeline;
    if (oc.tracing())
        tracer.emplace();
    if (oc.timelining())
        timeline.emplace(oc.timelineInterval);
    // Each case claims a contiguous pid block: one pid per replica
    // plus one for its interconnect.
    int nextPid = 1;
    auto addRow = [&](const FleetCase &c,
                      std::optional<RouterPolicy> router) {
        FleetReport r;
        ServingMetrics m;
        if (oc.enabled()) {
            FleetObservers fo;
            fo.labelPrefix =
                c.label + " [" +
                routerName(router ? *router : c.fleet.router) + "] ";
            fo.tracer = tracer ? &*tracer : nullptr;
            fo.timeline = timeline ? &*timeline : nullptr;
            fo.pidBase = nextPid;
            fo.interconnectPid =
                nextPid + static_cast<int>(c.fleet.replicas.size());
            nextPid += static_cast<int>(c.fleet.replicas.size()) + 1;
            if (oc.streamMetrics &&
                c.fleet.mode == FleetMode::Colocated) {
                // The true bounded-memory shape: arrivals stream from
                // the source and completions fold into sketches, so a
                // million-request replay never materializes its trace
                // or its per-request records.
                StreamingMetrics stream(c.fleet.slo);
                r = runFleetCaseStreamed(sc, c, router, fo, stream);
                m = r.metrics;
            } else {
                r = runFleetCase(sc, c, router, fo);
                if (oc.streamMetrics) {
                    // Disaggregated cases must retain records (the
                    // driver polls them for hand-offs); stream the
                    // fleet-level records (transfer-adjusted TTFTs)
                    // through sketch collectors after the fact.
                    StreamingMetrics stream(c.fleet.slo);
                    for (const CompletedRequest &cr : r.completed)
                        stream.observe(cr);
                    m = stream.finalize(r.makespan);
                } else {
                    m = r.metrics;
                }
            }
        } else {
            r = runFleetCase(sc, c, router);
            m = r.metrics;
        }
        std::string mb_per_req = "-", xfer_p95 = "-", ttft_share = "-";
        if (r.transfer.transfers > 0) {
            mb_per_req =
                fmt(r.transfer.totalBytes.value() /
                        static_cast<double>(r.transfer.transfers) / 1e6,
                    2);
            xfer_p95 = fmt(r.transfer.perTransfer.p95 * 1e3, 3);
            ttft_share = fmtPercent(r.transfer.meanTtftShare);
        }
        t.addRow({c.label, routerName(router ? *router
                                             : c.fleet.router),
                  fmt(m.goodput.value(), 2),
                  fmt(m.ttft.p50, 3),
                  fmt(m.ttft.p95, 3), fmt(m.tpot.p50, 4),
                  fmt(m.tpot.p95, 4),
                  fmt(m.queueing.p95, 3),
                  fmt(r.load.requestImbalance, 3),
                  fmt(r.load.tokenImbalance, 3), mb_per_req, xfer_p95,
                  ttft_share});
    };
    for (const FleetCase &c : sc.cases) {
        if (sc.routers.empty()) {
            addRow(c, {});
        } else {
            for (RouterPolicy router : sc.routers)
                addRow(c, router);
        }
        if (!quiet)
            fprintf(stderr, "  %s done\n", c.label.c_str());
    }
    rep.sections.push_back(ReportSection{"", std::move(t), {}});
    emitObsOutputs(oc, tracer ? &*tracer : nullptr,
                   timeline ? &*timeline : nullptr, rep);
    return rep;
}

/**
 * Control-plane fleet study: the fleet columns every CSV consumer
 * already parses (first seven identical to runFleet's, so
 * tools/check_replay.py reads goodput/TTFT/TPOT unchanged), then the
 * control-plane outcome — cancellations, wasted tokens, the provisioned
 * replica range, and the replica-second bill. Cases with the control
 * plane disabled are the static baselines: their bill is simply
 * replicas x makespan, putting both policies on one cost axis.
 */
ScenarioReport
runControlPlane(const Scenario &scenario, bool quiet)
{
    const auto &sc = std::get<FleetScenario>(scenario.spec);
    const ObservabilityConfig &oc = scenario.obs;
    ScenarioReport rep;
    Table t({"fleet", "router", "goodput", "TTFT p50", "TTFT p95",
             "TPOT p50", "TPOT p95", "SLO att", "cancelled",
             "wasted tok", "replicas", "replica-sec"});
    std::optional<Tracer> tracer;
    std::optional<TimelineSampler> timeline;
    if (oc.tracing())
        tracer.emplace();
    if (oc.timelining())
        timeline.emplace(oc.timelineInterval);
    int nextPid = 1;
    auto addRow = [&](const FleetCase &c,
                      std::optional<RouterPolicy> router) {
        FleetReport r;
        ServingMetrics m;
        if (oc.enabled()) {
            FleetObservers fo;
            fo.labelPrefix =
                c.label + " [" +
                routerName(router ? *router : c.fleet.router) + "] ";
            fo.tracer = tracer ? &*tracer : nullptr;
            fo.timeline = timeline ? &*timeline : nullptr;
            fo.pidBase = nextPid;
            fo.interconnectPid =
                nextPid + static_cast<int>(c.fleet.replicas.size());
            nextPid += static_cast<int>(c.fleet.replicas.size()) + 1;
            if (oc.streamMetrics) {
                // Control-plane fleets are colocated by construction
                // (validateFleetConfig), so the bounded-memory shape is
                // always available.
                StreamingMetrics stream(c.fleet.slo);
                r = runFleetCaseStreamed(sc, c, router, fo, stream);
                m = r.metrics;
            } else {
                r = runFleetCase(sc, c, router, fo);
                m = r.metrics;
            }
        } else {
            r = runFleetCase(sc, c, router);
            m = r.metrics;
        }
        size_t minProv = c.fleet.replicas.size();
        size_t maxProv = minProv;
        double replicaSec =
            static_cast<double>(c.fleet.replicas.size()) *
            r.makespan.value();
        if (r.controlPlane.enabled &&
            !r.controlPlane.trajectory.empty()) {
            minProv = maxProv = r.controlPlane.trajectory[0].provisioned;
            for (const ScaleEvent &e : r.controlPlane.trajectory) {
                minProv = std::min(minProv, e.provisioned);
                maxProv = std::max(maxProv, e.provisioned);
            }
            replicaSec = r.controlPlane.replicaSeconds.value();
        }
        const double attainment =
            m.requests > 0
                ? static_cast<double>(m.requests - m.sloViolations) /
                      static_cast<double>(m.requests)
                : 0.0;
        t.addRow({c.label,
                  routerName(router ? *router : c.fleet.router),
                  fmt(m.goodput.value(), 2), fmt(m.ttft.p50, 3),
                  fmt(m.ttft.p95, 3), fmt(m.tpot.p50, 4),
                  fmt(m.tpot.p95, 4), fmtPercent(attainment),
                  fmt(static_cast<double>(m.cancelledRequests), 0),
                  fmt(static_cast<double>(m.wastedTokens), 0),
                  std::to_string(minProv) + ".." +
                      std::to_string(maxProv),
                  fmt(replicaSec, 1)});
    };
    for (const FleetCase &c : sc.cases) {
        if (sc.routers.empty()) {
            addRow(c, {});
        } else {
            for (RouterPolicy router : sc.routers)
                addRow(c, router);
        }
        if (!quiet)
            fprintf(stderr, "  %s done\n", c.label.c_str());
    }
    ReportSection sec{"", std::move(t), {}};
    sec.lines.push_back(
        "\"replica-sec\": replica-seconds billed — the autoscaler's "
        "trajectory integral, or replicas x makespan for a static "
        "fleet.");
    rep.sections.push_back(std::move(sec));
    emitObsOutputs(oc, tracer ? &*tracer : nullptr,
                   timeline ? &*timeline : nullptr, rep);
    return rep;
}

// ------------------------------------------------- saturation search

ServingMetrics
saturationPoint(const SaturationScenario &sc, SystemKind kind,
                SchedulerPolicy policy, double rate)
{
    ServingScenario point;
    point.systems = {kind};
    point.model = sc.model;
    point.engine = sc.engine;
    point.trace = sc.trace;
    return runServingPoint(point, kind, policy,
                           sc.engine.executionMode.value_or(
                               ExecutionMode::Blocked),
                           rate)
        .metrics;
}

/// Highest rate in [startRate, maxRate] sustaining the SLO fraction:
/// geometric gallop up from startRate, then bisect the knee.
double
saturationRate(const SaturationScenario &sc, SystemKind kind,
               SchedulerPolicy policy, ServingMetrics &at_knee)
{
    double lo = sc.startRate;
    ServingMetrics m = saturationPoint(sc, kind, policy, lo);
    if (!sustainsSlo(m, sc.sloFraction)) {
        at_knee = m;
        return 0.0;
    }
    double hi = lo;
    while (hi < sc.maxRate) {
        // Clamp the gallop so no probe (and no reported rate) ever
        // exceeds the configured search ceiling.
        hi = std::min(hi * 2.0, sc.maxRate);
        if (!sustainsSlo(saturationPoint(sc, kind, policy, hi),
                         sc.sloFraction))
            break;
        lo = hi;
    }
    for (int i = 0; i < sc.bisectSteps; ++i) {
        double mid = 0.5 * (lo + hi);
        if (sustainsSlo(saturationPoint(sc, kind, policy, mid),
                        sc.sloFraction))
            lo = mid;
        else
            hi = mid;
    }
    at_knee = saturationPoint(sc, kind, policy, lo);
    return lo;
}

ScenarioReport
runSaturation(const Scenario &scenario, bool quiet)
{
    const auto &sc = std::get<SaturationScenario>(scenario.spec);
    ScenarioReport rep;
    Table t({"system", "policy", "saturation req/s", "tok/s",
             "TTFT p95", "TPOT p95"});
    double gpu_fcfs_rate = 0.0;
    for (SystemKind kind : sc.systems) {
        for (SchedulerPolicy policy : sc.policies) {
            ServingMetrics knee;
            double rate = saturationRate(sc, kind, policy, knee);
            if (kind == SystemKind::GPU &&
                policy == SchedulerPolicy::FCFS)
                gpu_fcfs_rate = rate;
            t.addRow({systemName(kind), policyName(policy),
                      fmt(rate, 2), fmt(knee.tokensPerSec.value(), 0),
                      fmt(knee.ttft.p95, 3), fmt(knee.tpot.p95, 4)});
        }
        if (!quiet)
            fprintf(stderr, "  %s done\n", systemName(kind).c_str());
    }
    ReportSection sec{"", std::move(t), {}};
    if (gpu_fcfs_rate > 0.0)
        sec.lines.push_back("(rates relative to GPU fcfs = 1.00x at " +
                            fmt(gpu_fcfs_rate, 2) + " req/s)");
    rep.sections.push_back(std::move(sec));
    return rep;
}

// ---------------------------------------------------- fleet planning

/// True if an n-replica homogeneous fleet of @p kind meets the SLO.
bool
plannerMeetsSlo(const PlannerScenario &sc, SystemKind kind, size_t n,
                const std::vector<Request> &trace)
{
    FleetConfig cfg = homogeneousFleet(kind, n, sc.engine);
    cfg.router = sc.router;
    FleetReport rep = Fleet(sc.model, cfg).run(trace);
    return sustainsSlo(rep.metrics, sc.sloFraction);
}

/// Smallest replica count in [1, maxReplicas] meeting the SLO, or 0.
size_t
plannerMinReplicas(const PlannerScenario &sc, SystemKind kind,
                   const std::vector<Request> &trace)
{
    // Gallop to a passing upper bound, clamped to maxReplicas so the
    // ceiling itself is probed even when it is not a power of two,
    // then bisect the first passing count in (last failure, hi].
    size_t lo = 1, hi = 1;
    bool found = false;
    while (true) {
        if (plannerMeetsSlo(sc, kind, hi, trace)) {
            found = true;
            break;
        }
        if (hi >= sc.maxReplicas)
            break;
        lo = hi + 1;
        hi = std::min(hi * 2, sc.maxReplicas);
    }
    if (!found)
        return 0;
    while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (plannerMeetsSlo(sc, kind, mid, trace))
            hi = mid;
        else
            lo = mid + 1;
    }
    return hi;
}

ScenarioReport
runPlanner(const Scenario &scenario, bool quiet)
{
    const auto &sc = std::get<PlannerScenario>(scenario.spec);
    ScenarioReport rep;
    std::vector<Request> trace = generateTrace(sc.trace);

    Table t({"system", "min replicas", "goodput", "TTFT p95",
             "vs Pimba"});
    size_t pimba_count = 0;
    std::vector<std::pair<SystemKind, size_t>> results;
    for (SystemKind kind : sc.systems) {
        size_t n = plannerMinReplicas(sc, kind, trace);
        if (kind == SystemKind::PIMBA)
            pimba_count = n;
        results.emplace_back(kind, n);
        if (!quiet)
            fprintf(stderr, "  %s done\n", systemName(kind).c_str());
    }
    for (auto [kind, n] : results) {
        if (n == 0) {
            t.addRow({systemName(kind),
                      "> " + std::to_string(sc.maxReplicas), "-", "-",
                      "-"});
            continue;
        }
        FleetConfig cfg = homogeneousFleet(kind, n, sc.engine);
        cfg.router = sc.router;
        FleetReport r = Fleet(sc.model, cfg).run(trace);
        t.addRow({systemName(kind), fmt(static_cast<double>(n), 0),
                  fmt(r.metrics.goodput.value(), 2),
                  fmt(r.metrics.ttft.p95, 3),
                  pimba_count > 0
                      ? fmtRatio(static_cast<double>(n) /
                                 static_cast<double>(pimba_count))
                      : "-"});
    }
    ReportSection sec{"", std::move(t), {}};
    sec.lines.push_back(
        "\"vs Pimba\": replica-count ratio against the Pimba fleet — "
        "the devices one Pimba device replaces at equal SLO.");
    rep.sections.push_back(std::move(sec));
    return rep;
}

} // namespace

ScenarioReport
runScenario(const Scenario &sc, bool quiet)
{
    ScenarioReport rep;
    switch (sc.kind) {
      case ScenarioKind::Throughput:
        rep = runThroughput(sc, quiet);
        break;
      case ScenarioKind::Serving:
        rep = runServing(sc, quiet);
        break;
      case ScenarioKind::Fleet:
        rep = runFleet(sc, quiet);
        break;
      case ScenarioKind::Saturation:
        rep = runSaturation(sc, quiet);
        break;
      case ScenarioKind::Planner:
        rep = runPlanner(sc, quiet);
        break;
      case ScenarioKind::ControlPlane:
        rep = runControlPlane(sc, quiet);
        break;
    }
    rep.title = sc.description.empty() ? sc.name : sc.description;
    return rep;
}

} // namespace pimba
