/**
 * @file
 * Parameter sweeps over scenarios, fanned across a thread pool.
 *
 * A grid spec names one scenario parameter and the values to sweep:
 *
 *     rate=1..8        -> 1, 2, ..., 8        (linear, step 1)
 *     rate=4..16:4     -> 4, 8, 12, 16        (linear, given step)
 *     rate=1..32:x2    -> 1, 2, 4, 8, 16, 32  (geometric, given factor)
 *     rate=1,3,7       -> explicit list
 *
 * Each grid point runs a private copy of the scenario (engines and
 * fleets are deterministic, self-contained values, so per-point
 * isolation is free) on a worker pool; results are committed into a
 * pre-sized slot array by grid index and merged in grid order after the
 * join. The merged report is therefore byte-identical at any thread
 * count — the pinned determinism guarantee the sweep tests enforce.
 */

#ifndef PIMBA_CONFIG_SWEEP_H
#define PIMBA_CONFIG_SWEEP_H

#include <string>
#include <vector>

#include "config/runner.h"
#include "config/scenario.h"

namespace pimba {

/// One sweep axis: the parameter name and its grid values, in order.
struct GridAxis
{
    std::string param;
    std::vector<double> values;
};

/// Parse "param=spec" (see file comment). Throws ConfigError on a
/// malformed spec, an empty grid, or a non-positive geometric factor.
GridAxis parseGridSpec(const std::string &spec);

/**
 * Set @p param to @p value on a scenario copy. Supported parameters:
 * `rate` (arrival rate; replaces a serving scenario's rate list),
 * `requests` (trace length), `seed` (trace seed), `maxBatch` (engine
 * batch cap; serving/saturation/planner kinds), and `replicas` (fleet
 * kind: resize every case to N by replicating its first replica).
 * Throws ConfigError when the parameter does not apply to the kind.
 */
void applyGridParam(Scenario &sc, const std::string &param,
                    double value);

/**
 * Run one scenario per grid value across @p threads workers
 * (threads < 1 selects the hardware concurrency) and merge the
 * per-point reports in grid order. Same scenario + axis => identical
 * bytes at any thread count.
 */
ScenarioReport runSweep(const Scenario &sc, const GridAxis &axis,
                        int threads = 1);

} // namespace pimba

#endif // PIMBA_CONFIG_SWEEP_H
