#include "config/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace pimba {

ConfigError::ConfigError(const std::string &msg, int line, int col)
    : std::runtime_error(line > 0 ? "line " + std::to_string(line) +
                                        ", column " +
                                        std::to_string(col) + ": " + msg
                                  : msg),
      srcLine(line), srcCol(col)
{
}

std::string
JsonValue::typeName() const
{
    switch (k) {
      case Kind::Null: return "null";
      case Kind::Bool: return "bool";
      case Kind::Number: return "number";
      case Kind::String: return "string";
      case Kind::Array: return "array";
      case Kind::Object: return "object";
    }
    return "unknown";
}

namespace {

[[noreturn]] void
wrongType(const JsonValue &v, const char *wanted)
{
    throw ConfigError(std::string("expected ") + wanted + ", got " +
                          v.typeName(),
                      v.line(), v.column());
}

} // namespace

bool
JsonValue::asBool() const
{
    if (k != Kind::Bool)
        wrongType(*this, "bool");
    return boolValue;
}

double
JsonValue::asNumber() const
{
    if (k != Kind::Number)
        wrongType(*this, "number");
    return numValue;
}

int64_t
JsonValue::asInt() const
{
    double v = asNumber();
    double rounded = std::nearbyint(v);
    if (rounded != v)
        throw ConfigError("expected an integer, got " +
                              std::to_string(v),
                          srcLine, srcCol);
    // Casting a double beyond int64's range is undefined behavior;
    // 9.0e18 < 2^63 keeps the cast safe and the limit honest.
    if (std::abs(rounded) > 9.0e18)
        throw ConfigError("integer out of range: " +
                              std::to_string(v),
                          srcLine, srcCol);
    return static_cast<int64_t>(rounded);
}

const std::string &
JsonValue::asString() const
{
    if (k != Kind::String)
        wrongType(*this, "string");
    return strValue;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (k != Kind::Array)
        wrongType(*this, "array");
    return arr;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (k != Kind::Object)
        wrongType(*this, "object");
    return obj;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[name, value] : members())
        if (name == key)
            return &value;
    return nullptr;
}

/// Recursive-descent JSON parser tracking 1-based line/column.
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text_) : text(text_) {}

    JsonValue parseDocument()
    {
        skipSpace();
        JsonValue v = parseValue();
        skipSpace();
        if (pos != text.size())
            fail("trailing content after the JSON document");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &msg)
    {
        throw ConfigError(msg, line, col);
    }

    bool atEnd() const { return pos >= text.size(); }

    char peek() const { return text[pos]; }

    char advance()
    {
        char c = text[pos++];
        if (c == '\n') {
            ++line;
            col = 1;
        } else {
            ++col;
        }
        return c;
    }

    void skipSpace()
    {
        while (!atEnd()) {
            char c = peek();
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
                advance();
            } else if (c == '/' && pos + 1 < text.size() &&
                       text[pos + 1] == '/') {
                while (!atEnd() && peek() != '\n')
                    advance();
            } else {
                break;
            }
        }
    }

    void expect(char c)
    {
        if (atEnd())
            fail(std::string("unexpected end of input, expected '") +
                 c + "'");
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + peek() +
                 "'");
        advance();
    }

    JsonValue located() const
    {
        JsonValue v;
        v.srcLine = line;
        v.srcCol = col;
        return v;
    }

    JsonValue parseValue()
    {
        if (atEnd())
            fail("unexpected end of input, expected a value");
        char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't':
          case 'f': return parseBool();
          case 'n': return parseNull();
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber();
            fail(std::string("unexpected character '") + c + "'");
        }
    }

    void parseKeyword(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (atEnd() || peek() != *p)
                fail(std::string("invalid token, expected '") + word +
                     "'");
            advance();
        }
    }

    JsonValue parseNull()
    {
        JsonValue v = located();
        parseKeyword("null");
        return v;
    }

    JsonValue parseBool()
    {
        JsonValue v = located();
        v.k = JsonValue::Kind::Bool;
        if (peek() == 't') {
            parseKeyword("true");
            v.boolValue = true;
        } else {
            parseKeyword("false");
            v.boolValue = false;
        }
        return v;
    }

    JsonValue parseNumber()
    {
        JsonValue v = located();
        v.k = JsonValue::Kind::Number;
        size_t start = pos;
        if (!atEnd() && peek() == '-')
            advance();
        while (!atEnd() && std::isdigit(
                               static_cast<unsigned char>(peek())))
            advance();
        if (!atEnd() && peek() == '.') {
            advance();
            while (!atEnd() && std::isdigit(
                                   static_cast<unsigned char>(peek())))
                advance();
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            advance();
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                advance();
            while (!atEnd() && std::isdigit(
                                   static_cast<unsigned char>(peek())))
                advance();
        }
        std::string num = text.substr(start, pos - start);
        try {
            size_t used = 0;
            v.numValue = std::stod(num, &used);
            if (used != num.size())
                throw std::invalid_argument(num);
        } catch (const std::exception &) {
            throw ConfigError("malformed number '" + num + "'",
                              v.srcLine, v.srcCol);
        }
        return v;
    }

    JsonValue parseString()
    {
        JsonValue v = located();
        v.k = JsonValue::Kind::String;
        expect('"');
        std::string out;
        while (true) {
            if (atEnd())
                fail("unterminated string");
            char c = advance();
            if (c == '"')
                break;
            if (c == '\\') {
                if (atEnd())
                    fail("unterminated escape sequence");
                char e = advance();
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        if (atEnd())
                            fail("unterminated \\u escape");
                        char h = advance();
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            fail("invalid \\u escape digit");
                    }
                    // UTF-8 encode the BMP code point (surrogate
                    // pairs are not needed for scenario files).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(
                            0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    fail(std::string("unknown escape '\\") + e + "'");
                }
            } else {
                out += c;
            }
        }
        v.strValue = std::move(out);
        return v;
    }

    JsonValue parseArray()
    {
        JsonValue v = located();
        v.k = JsonValue::Kind::Array;
        expect('[');
        skipSpace();
        if (!atEnd() && peek() == ']') {
            advance();
            return v;
        }
        while (true) {
            skipSpace();
            v.arr.push_back(parseValue());
            skipSpace();
            if (atEnd())
                fail("unterminated array, expected ',' or ']'");
            if (peek() == ',') {
                advance();
                continue;
            }
            expect(']');
            break;
        }
        return v;
    }

    JsonValue parseObject()
    {
        JsonValue v = located();
        v.k = JsonValue::Kind::Object;
        expect('{');
        skipSpace();
        if (!atEnd() && peek() == '}') {
            advance();
            return v;
        }
        while (true) {
            skipSpace();
            if (atEnd())
                fail("unterminated object, expected a key");
            if (peek() != '"')
                fail("object keys must be strings");
            int key_line = line, key_col = col;
            JsonValue key = parseString();
            for (const auto &[name, value] : v.obj)
                if (name == key.strValue)
                    throw ConfigError("duplicate key \"" +
                                          key.strValue + "\"",
                                      key_line, key_col);
            skipSpace();
            expect(':');
            skipSpace();
            v.obj.emplace_back(key.strValue, parseValue());
            skipSpace();
            if (atEnd())
                fail("unterminated object, expected ',' or '}'");
            if (peek() == ',') {
                advance();
                continue;
            }
            expect('}');
            break;
        }
        return v;
    }

    const std::string &text;
    size_t pos = 0;
    int line = 1;
    int col = 1;
};

JsonValue
parseJson(const std::string &text)
{
    return JsonParser(text).parseDocument();
}

JsonValue
loadJsonFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw ConfigError("cannot open '" + path + "'");
    std::ostringstream oss;
    oss << in.rdbuf();
    return parseJson(oss.str());
}

JsonValue
mergeJson(const JsonValue &base, const JsonValue &overlay)
{
    if (!base.isObject() || !overlay.isObject())
        return overlay;
    JsonValue merged = base;
    for (const auto &[key, value] : overlay.members()) {
        bool found = false;
        for (auto &[name, existing] : merged.obj) {
            if (name == key) {
                existing = mergeJson(existing, value);
                found = true;
                break;
            }
        }
        if (!found)
            merged.obj.emplace_back(key, value);
    }
    return merged;
}

} // namespace pimba
