/**
 * @file
 * Dependency-free JSON loader for the scenario subsystem.
 *
 * A small recursive-descent parser producing an immutable JsonValue
 * tree. Every value remembers the 1-based line/column of its first
 * character in the source text, so schema errors raised while mapping
 * JSON onto typed configs point at the offending spot of the file, not
 * just at a key name. Strict JSON plus one affordance for hand-written
 * scenario files: `//` line comments are skipped as whitespace.
 * Duplicate object keys and trailing garbage after the document are
 * errors — both are almost always authoring mistakes.
 */

#ifndef PIMBA_CONFIG_JSON_H
#define PIMBA_CONFIG_JSON_H

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace pimba {

/// Malformed JSON or a schema violation, located in the source text.
class ConfigError : public std::runtime_error
{
  public:
    /// @param line,col 1-based source location (0 when unknown).
    ConfigError(const std::string &msg, int line = 0, int col = 0);

    int line() const { return srcLine; }
    int column() const { return srcCol; }

  private:
    int srcLine;
    int srcCol;
};

/// One parsed JSON value (and, recursively, its children).
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    Kind kind() const { return k; }
    /// Lower-case kind name ("object", "number", ...) for messages.
    std::string typeName() const;

    /// 1-based source line of the value's first character.
    int line() const { return srcLine; }
    /// 1-based source column of the value's first character.
    int column() const { return srcCol; }

    bool isNull() const { return k == Kind::Null; }
    bool isObject() const { return k == Kind::Object; }
    bool isArray() const { return k == Kind::Array; }
    bool isString() const { return k == Kind::String; }
    bool isNumber() const { return k == Kind::Number; }

    /// The boolean payload; throws ConfigError when not a bool.
    bool asBool() const;
    /// The numeric payload; throws ConfigError when not a number.
    double asNumber() const;
    /// The numeric payload as an integer; throws when fractional.
    int64_t asInt() const;
    /// The string payload; throws ConfigError when not a string.
    const std::string &asString() const;

    /// Array elements in source order; throws when not an array.
    const std::vector<JsonValue> &items() const;
    /// Object members in source order; throws when not an object.
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;
    /// Member lookup; nullptr when absent. Throws when not an object.
    const JsonValue *find(const std::string &key) const;

  private:
    friend class JsonParser;
    friend JsonValue mergeJson(const JsonValue &, const JsonValue &);

    Kind k = Kind::Null;
    bool boolValue = false;
    double numValue = 0.0;
    std::string strValue;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;
    int srcLine = 0;
    int srcCol = 0;
};

/**
 * Parse one complete JSON document from @p text. Trailing non-space
 * content after the document is an error. Throws ConfigError with the
 * source location on any syntax problem (including truncated input).
 */
JsonValue parseJson(const std::string &text);

/// Read @p path and parse it; file errors also raise ConfigError.
JsonValue loadJsonFile(const std::string &path);

/**
 * Deep-merge @p overlay into @p base: object members are merged
 * recursively, any other overlay value (including arrays) replaces the
 * base value wholesale. Used to apply a scenario's `"smoke"` overrides.
 */
JsonValue mergeJson(const JsonValue &base, const JsonValue &overlay);

} // namespace pimba

#endif // PIMBA_CONFIG_JSON_H
