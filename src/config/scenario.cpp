#include "config/scenario.h"

#include <algorithm>
#include <cctype>
#include <initializer_list>
#include <limits>

#include "cluster/workload.h"

namespace pimba {

std::string
scenarioKindName(ScenarioKind kind)
{
    switch (kind) {
      case ScenarioKind::Throughput: return "throughput";
      case ScenarioKind::Serving: return "serving";
      case ScenarioKind::Fleet: return "fleet";
      case ScenarioKind::Saturation: return "saturation";
      case ScenarioKind::Planner: return "planner";
      case ScenarioKind::ControlPlane: return "control";
    }
    return "unknown";
}

namespace {

[[noreturn]] void
failAt(const JsonValue &v, const std::string &msg)
{
    throw ConfigError(msg, v.line(), v.column());
}

std::string
lowered(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    return out;
}

/// Reject members outside @p allowed so typos are caught, not ignored.
void
checkKeys(const JsonValue &obj,
          std::initializer_list<const char *> allowed)
{
    for (const auto &[key, value] : obj.members()) {
        bool ok = false;
        for (const char *name : allowed)
            if (key == name)
                ok = true;
        if (!ok) {
            std::string names;
            for (const char *name : allowed)
                names += std::string(names.empty() ? "" : ", ") + name;
            failAt(value, "unknown key \"" + key +
                              "\" (expected one of: " + names + ")");
        }
    }
}

double
getNumber(const JsonValue &obj, const char *key, double fallback)
{
    const JsonValue *v = obj.find(key);
    return v ? v->asNumber() : fallback;
}

int64_t
getInt(const JsonValue &obj, const char *key, int64_t fallback)
{
    const JsonValue *v = obj.find(key);
    return v ? v->asInt() : fallback;
}

/// Integer member destined for an unsigned config field: a negative
/// value must fail here, located — a static_cast would wrap it past
/// every downstream validator.
uint64_t
getUint(const JsonValue &obj, const char *key, uint64_t fallback)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return fallback;
    int64_t n = v->asInt();
    if (n < 0)
        failAt(*v, std::string("\"") + key +
                       "\" must be >= 0, got " + std::to_string(n));
    return static_cast<uint64_t>(n);
}

std::string
getString(const JsonValue &obj, const char *key,
          const std::string &fallback)
{
    const JsonValue *v = obj.find(key);
    return v ? v->asString() : fallback;
}

/// 32-bit seed member: values past 2^32 - 1 must fail here, located —
/// truncation would silently alias distinct seeds onto one stream.
uint32_t
getSeed(const JsonValue &obj, const char *key, uint32_t fallback)
{
    uint64_t n = getUint(obj, key, fallback);
    if (n > 0xFFFFFFFFull)
        failAt(*obj.find(key),
               std::string("\"") + key +
                   "\" must fit in 32 bits, got " + std::to_string(n));
    return static_cast<uint32_t>(n);
}

/// Integer member destined for an `int` field: values outside int's
/// range must fail here, located — a static_cast would silently wrap.
int
getInt32(const JsonValue &obj, const char *key, int fallback)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return fallback;
    int64_t n = v->asInt();
    if (n < std::numeric_limits<int>::min() ||
        n > std::numeric_limits<int>::max())
        failAt(*v, std::string("\"") + key + "\" is out of int range: " +
                       std::to_string(n));
    return static_cast<int>(n);
}

bool
getBool(const JsonValue &obj, const char *key, bool fallback)
{
    const JsonValue *v = obj.find(key);
    return v ? v->asBool() : fallback;
}

/// The optional "observability" block of serving and fleet scenarios
/// (docs/scenarios.md): telemetry switches, all off when absent.
ObservabilityConfig
parseObservability(const JsonValue &doc)
{
    ObservabilityConfig obs;
    const JsonValue *v = doc.find("observability");
    if (!v)
        return obs;
    if (!v->isObject())
        failAt(*v, "\"observability\" must be an object");
    checkKeys(*v, {"streamMetrics", "trace", "timeline",
                   "timelineFormat", "timelineInterval"});
    obs.streamMetrics = getBool(*v, "streamMetrics", false);
    obs.tracePath = getString(*v, "trace", "");
    obs.timelinePath = getString(*v, "timeline", "");
    if (const JsonValue *fmt = v->find("timelineFormat")) {
        std::string name = lowered(fmt->asString());
        if (name == "csv")
            obs.timelineFormat = TimelineFormat::Csv;
        else if (name == "json")
            obs.timelineFormat = TimelineFormat::Json;
        else
            failAt(*fmt, "unknown timeline format \"" + fmt->asString() +
                             "\" (expected csv, json)");
    }
    obs.timelineInterval =
        Seconds(getNumber(*v, "timelineInterval",
                          obs.timelineInterval.value()));
    if (obs.timelineInterval < Seconds(0.0))
        failAt(*v->find("timelineInterval"),
               "\"timelineInterval\" must be >= 0 seconds (0 samples "
               "every iteration)");
    return obs;
}

SystemKind
parseSystemKind(const JsonValue &v)
{
    std::string name = lowered(v.asString());
    if (name == "gpu")
        return SystemKind::GPU;
    if (name == "gpu+q" || name == "gpu_q")
        return SystemKind::GPU_Q;
    if (name == "gpu+pim" || name == "gpu_pim")
        return SystemKind::GPU_PIM;
    if (name == "pimba")
        return SystemKind::PIMBA;
    if (name == "neupims")
        return SystemKind::NEUPIMS;
    failAt(v, "unknown system \"" + v.asString() +
                  "\" (expected gpu, gpu+q, gpu+pim, pimba, neupims)");
}

std::vector<SystemKind>
parseSystems(const JsonValue &obj, const JsonValue &root)
{
    const JsonValue *v = obj.find("systems");
    if (!v)
        failAt(root, "missing required key \"systems\"");
    std::vector<SystemKind> out;
    for (const JsonValue &item : v->items())
        out.push_back(parseSystemKind(item));
    if (out.empty())
        failAt(*v, "\"systems\" must name at least one system");
    return out;
}

SchedulerPolicy
parsePolicy(const JsonValue &v)
{
    std::string name = lowered(v.asString());
    if (name == "fcfs")
        return SchedulerPolicy::FCFS;
    if (name == "sjf")
        return SchedulerPolicy::SJF;
    if (name == "sarathi")
        return SchedulerPolicy::Sarathi;
    failAt(v, "unknown scheduler policy \"" + v.asString() +
                  "\" (expected fcfs, sjf, sarathi)");
}

RouterPolicy
parseRouter(const JsonValue &v)
{
    std::string name = lowered(v.asString());
    if (name == "rr" || name == "round-robin")
        return RouterPolicy::RoundRobin;
    if (name == "jsq")
        return RouterPolicy::JoinShortestQueue;
    if (name == "lot")
        return RouterPolicy::LeastOutstandingTokens;
    if (name == "p2c")
        return RouterPolicy::PowerOfTwoChoices;
    if (name == "cache-affinity" || name == "cache")
        return RouterPolicy::CacheAffinity;
    failAt(v, "unknown router \"" + v.asString() +
                  "\" (expected rr, jsq, lot, p2c, cache-affinity)");
}

ExecutionMode
parseMode(const JsonValue &v)
{
    std::string name = lowered(v.asString());
    if (name == "blocked")
        return ExecutionMode::Blocked;
    if (name == "overlapped")
        return ExecutionMode::Overlapped;
    failAt(v, "unknown execution mode \"" + v.asString() +
                  "\" (expected blocked, overlapped)");
}

/// One model entry: a preset name or {"base", "scaleTo", "name"}.
ModelConfig
parseModelValue(const JsonValue &v)
{
    if (v.isString()) {
        try {
            return modelPreset(v.asString());
        } catch (const ConfigError &e) {
            failAt(v, e.what());
        }
    }
    if (!v.isObject())
        failAt(v, "expected a model name or object");
    checkKeys(v, {"base", "scaleTo", "name"});
    const JsonValue *base = v.find("base");
    if (!base)
        failAt(v, "a model object needs a \"base\" preset name");
    ModelConfig m;
    try {
        m = modelPreset(base->asString());
    } catch (const ConfigError &e) {
        failAt(*base, e.what());
    }
    if (const JsonValue *scale = v.find("scaleTo")) {
        std::string base_name = m.name;
        m = scaleModel(m, scale->asNumber());
        m.name = base_name; // keep the family name, as the figures do
    }
    m.name = getString(v, "name", m.name);
    return m;
}

ModelConfig
parseModel(const JsonValue &obj, const JsonValue &root)
{
    const JsonValue *v = obj.find("model");
    if (!v)
        failAt(root, "missing required key \"model\"");
    return parseModelValue(*v);
}

LengthDistribution
parseLengthDistribution(const JsonValue &v)
{
    std::string name = lowered(v.asString());
    if (name == "fixed")
        return LengthDistribution::Fixed;
    if (name == "uniform")
        return LengthDistribution::Uniform;
    failAt(v, "unknown length distribution \"" + v.asString() +
                  "\" (expected fixed, uniform)");
}

/**
 * @param allowReplayFile fleet scenarios may name a pimba-trace-v1
 *        replay file; the sweep kinds re-generate the trace per swept
 *        rate, so a fixed file would silently ignore the sweep variable
 *        — rejected up front instead.
 */
TraceConfig
parseTrace(const JsonValue &obj, const JsonValue &root,
           bool require = true, bool allowReplayFile = false)
{
    TraceConfig tc;
    const JsonValue *v = obj.find("trace");
    if (!v) {
        if (require)
            failAt(root, "missing required key \"trace\"");
        return tc;
    }
    checkKeys(*v, {"arrivals", "rate", "numRequests", "lengths",
                   "inputLen", "inputLenMax", "outputLen",
                   "outputLenMax", "seed", "diurnal", "mmpp", "classes",
                   "file"});
    if (const JsonValue *a = v->find("arrivals")) {
        std::string name = lowered(a->asString());
        if (name == "poisson")
            tc.arrivals = ArrivalProcess::Poisson;
        else if (name == "fixed")
            tc.arrivals = ArrivalProcess::Fixed;
        else if (name == "diurnal")
            tc.arrivals = ArrivalProcess::Diurnal;
        else if (name == "mmpp")
            tc.arrivals = ArrivalProcess::Mmpp;
        else
            failAt(*a, "unknown arrival process \"" + a->asString() +
                           "\" (expected poisson, fixed, diurnal, "
                           "mmpp)");
    }
    tc.ratePerSec = getNumber(*v, "rate", tc.ratePerSec);
    tc.numRequests = getInt32(*v, "numRequests", tc.numRequests);
    tc.inputLen = getUint(*v, "inputLen", tc.inputLen);
    tc.outputLen = getUint(*v, "outputLen", tc.outputLen);
    tc.inputLenMax = getUint(*v, "inputLenMax", 0);
    tc.outputLenMax = getUint(*v, "outputLenMax", 0);
    tc.seed = getSeed(*v, "seed", tc.seed);
    if (const JsonValue *l = v->find("lengths")) {
        tc.lengths = parseLengthDistribution(*l);
    } else if (tc.inputLenMax > 0 || tc.outputLenMax > 0) {
        tc.lengths = LengthDistribution::Uniform;
    }
    if (const JsonValue *d = v->find("diurnal")) {
        checkKeys(*d, {"periodSec", "peakToTrough"});
        tc.diurnal.period = Seconds(
            getNumber(*d, "periodSec", tc.diurnal.period.value()));
        tc.diurnal.peakToTrough =
            getNumber(*d, "peakToTrough", tc.diurnal.peakToTrough);
    }
    if (const JsonValue *m = v->find("mmpp")) {
        checkKeys(*m, {"burstMultiplier", "burstMeanSec",
                       "idleMeanSec"});
        tc.mmpp.burstMultiplier = getNumber(*m, "burstMultiplier",
                                            tc.mmpp.burstMultiplier);
        tc.mmpp.burstMean = Seconds(
            getNumber(*m, "burstMeanSec", tc.mmpp.burstMean.value()));
        tc.mmpp.idleMean = Seconds(
            getNumber(*m, "idleMeanSec", tc.mmpp.idleMean.value()));
    }
    if (const JsonValue *cs = v->find("classes")) {
        for (const JsonValue &cv : cs->items()) {
            checkKeys(cv, {"name", "weight", "lengths", "inputLen",
                           "inputLenMax", "outputLen", "outputLenMax"});
            TraceClass c;
            c.name = getString(cv, "name", "");
            c.weight = getNumber(cv, "weight", c.weight);
            c.inputLen = getUint(cv, "inputLen", c.inputLen);
            c.outputLen = getUint(cv, "outputLen", c.outputLen);
            c.inputLenMax = getUint(cv, "inputLenMax", 0);
            c.outputLenMax = getUint(cv, "outputLenMax", 0);
            if (const JsonValue *l = cv.find("lengths"))
                c.lengths = parseLengthDistribution(*l);
            else if (c.inputLenMax > 0 || c.outputLenMax > 0)
                c.lengths = LengthDistribution::Uniform;
            tc.classes.push_back(std::move(c));
        }
        if (tc.classes.empty())
            failAt(*cs, "\"classes\" must hold at least one class "
                        "(omit the key for a single-class trace)");
    }
    if (const JsonValue *f = v->find("file")) {
        if (!allowReplayFile)
            failAt(*f, "\"file\" replay is supported for fleet "
                       "scenarios only (rate sweeps re-generate their "
                       "trace per swept rate)");
        tc.file = f->asString();
        if (tc.file.empty())
            failAt(*f, "\"file\" must name a pimba-trace-v1 file "
                       "(omit the key to generate the trace)");
        // For a replay numRequests is the prefix cap, not the trace
        // size; left unset it means "all of the file", not the
        // generator's default 64.
        if (!v->find("numRequests"))
            tc.numRequests = 0;
    }
    if (std::string err = validateTraceConfig(tc); !err.empty())
        failAt(*v, err);
    return tc;
}

SloConfig
parseSlo(const JsonValue &obj, SloConfig fallback)
{
    const JsonValue *v = obj.find("slo");
    if (!v)
        return fallback;
    checkKeys(*v, {"ttft", "tpot"});
    SloConfig slo = fallback;
    slo.ttft = Seconds(getNumber(*v, "ttft", slo.ttft.value()));
    slo.tpot = Seconds(getNumber(*v, "tpot", slo.tpot.value()));
    return slo;
}

EngineConfig
parseEngine(const JsonValue &obj)
{
    EngineConfig ec;
    const JsonValue *v = obj.find("engine");
    if (!v)
        return ec;
    checkKeys(*v, {"maxBatch", "prefillChunk", "memoryBudget",
                   "blockTokens", "iterTokenBudget", "policy",
                   "executionMode", "slo"});
    ec.maxBatch = getInt32(*v, "maxBatch", ec.maxBatch);
    ec.prefillChunk =
        Tokens(getUint(*v, "prefillChunk", ec.prefillChunk.value()));
    ec.memoryBudget =
        Bytes(getNumber(*v, "memoryBudget", ec.memoryBudget.value()));
    ec.blockTokens =
        Tokens(getUint(*v, "blockTokens", ec.blockTokens.value()));
    ec.iterTokenBudget = Tokens(
        getUint(*v, "iterTokenBudget", ec.iterTokenBudget.value()));
    if (const JsonValue *p = v->find("policy"))
        ec.policy = parsePolicy(*p);
    if (const JsonValue *m = v->find("executionMode"))
        ec.executionMode = parseMode(*m);
    ec.slo = parseSlo(*v, ec.slo);
    if (std::string err = validateEngineConfig(ec); !err.empty())
        failAt(*v, err);
    return ec;
}

LinkConfig
parseLink(const JsonValue &v)
{
    if (v.isString()) {
        std::string name = lowered(v.asString());
        if (name == "nvlink")
            return nvlinkLink();
        if (name == "infiniband")
            return infinibandLink();
        failAt(v, "unknown link preset \"" + v.asString() +
                      "\" (expected nvlink, infiniband, or an object)");
    }
    checkKeys(v, {"name", "bandwidth", "efficiency", "setupLatency",
                  "energyPerBit"});
    LinkConfig link;
    link.name = getString(v, "name", link.name);
    link.bandwidth = BytesPerSecond(
        getNumber(v, "bandwidth", link.bandwidth.value()));
    link.efficiency = getNumber(v, "efficiency", link.efficiency);
    link.setupLatency = Seconds(
        getNumber(v, "setupLatency", link.setupLatency.value()));
    link.energyPerBit = getNumber(v, "energyPerBit", link.energyPerBit);
    return link;
}

std::vector<ReplicaConfig>
parseReplicas(const JsonValue &v)
{
    std::vector<ReplicaConfig> out;
    for (const JsonValue &item : v.items()) {
        checkKeys(item, {"system", "count", "nGpus", "engine"});
        const JsonValue *sys = item.find("system");
        if (!sys)
            failAt(item, "a replica entry needs a \"system\"");
        ReplicaConfig rc;
        rc.kind = parseSystemKind(*sys);
        rc.nGpus = getInt32(item, "nGpus", rc.nGpus);
        rc.engine = parseEngine(item);
        int64_t count = getInt(item, "count", 1);
        if (count < 1 || count > (1 << 16))
            failAt(item, "replica \"count\" must be in [1, 65536], "
                         "got " +
                             std::to_string(count));
        for (int64_t i = 0; i < count; ++i)
            out.push_back(rc);
    }
    return out;
}

/// The per-fleet "controlPlane" block (docs/control-plane.md): the
/// autoscaler knobs plus per-class synthetic prefix lengths. The
/// priority/deadline arrays live beside it at the fleet level
/// ("priorities", "deadlines") since they are per request class, not
/// autoscaler policy.
void
parseControlPlane(const JsonValue &v, ControlPlaneConfig &cp)
{
    checkKeys(v, {"enabled", "minReplicas", "maxReplicas",
                  "initialReplicas", "intervalSec", "scaleUpQueueDepth",
                  "scaleDownQueueDepth", "scaleUpWaitSec", "warmupSec",
                  "prefixTokens"});
    AutoscalerConfig &as = cp.autoscaler;
    as.enabled = getBool(v, "enabled", as.enabled);
    as.minReplicas =
        static_cast<size_t>(getUint(v, "minReplicas", as.minReplicas));
    as.maxReplicas =
        static_cast<size_t>(getUint(v, "maxReplicas", as.maxReplicas));
    as.initialReplicas = static_cast<size_t>(
        getUint(v, "initialReplicas", as.initialReplicas));
    as.interval =
        Seconds(getNumber(v, "intervalSec", as.interval.value()));
    as.scaleUpQueueDepth =
        getNumber(v, "scaleUpQueueDepth", as.scaleUpQueueDepth);
    as.scaleDownQueueDepth =
        getNumber(v, "scaleDownQueueDepth", as.scaleDownQueueDepth);
    as.scaleUpWait =
        Seconds(getNumber(v, "scaleUpWaitSec", as.scaleUpWait.value()));
    as.warmup = Seconds(getNumber(v, "warmupSec", as.warmup.value()));
    if (const JsonValue *pt = v.find("prefixTokens"))
        for (const JsonValue &item : pt->items()) {
            int64_t n = item.asInt();
            if (n < 0)
                failAt(item, "\"prefixTokens\" entries must be >= 0 "
                             "tokens (0 = no shared prefix)");
            cp.prefixTokensByClass.push_back(
                static_cast<uint64_t>(n));
        }
}

FleetConfig
parseFleetConfig(const JsonValue &v)
{
    checkKeys(v, {"label", "router", "routerSeed", "mode",
                  "prefillReplicas", "link", "slo", "replicas",
                  "controlPlane", "priorities", "deadlines"});
    FleetConfig cfg;
    const JsonValue *reps = v.find("replicas");
    if (!reps)
        failAt(v, "a fleet needs a \"replicas\" array");
    cfg.replicas = parseReplicas(*reps);
    if (const JsonValue *r = v.find("router"))
        cfg.router = parseRouter(*r);
    cfg.routerSeed = getSeed(v, "routerSeed", cfg.routerSeed);
    if (const JsonValue *cp = v.find("controlPlane"))
        parseControlPlane(*cp, cfg.controlPlane);
    if (const JsonValue *p = v.find("priorities"))
        for (const JsonValue &item : p->items()) {
            int64_t tier = item.asInt();
            if (tier < 0 || tier > 255)
                failAt(item, "\"priorities\" tiers must be in "
                             "[0, 255], got " +
                                 std::to_string(tier));
            cfg.controlPlane.tierByClass.push_back(
                static_cast<int>(tier));
        }
    if (const JsonValue *ds = v.find("deadlines"))
        for (const JsonValue &item : ds->items()) {
            checkKeys(item, {"ttftSec", "totalSec"});
            ClassDeadline d;
            d.ttft = Seconds(getNumber(item, "ttftSec", d.ttft.value()));
            d.total =
                Seconds(getNumber(item, "totalSec", d.total.value()));
            cfg.controlPlane.deadlines.push_back(d);
        }
    if (const JsonValue *m = v.find("mode")) {
        std::string name = lowered(m->asString());
        if (name == "colocated")
            cfg.mode = FleetMode::Colocated;
        else if (name == "disaggregated")
            cfg.mode = FleetMode::Disaggregated;
        else
            failAt(*m, "unknown fleet mode \"" + m->asString() +
                           "\" (expected colocated, disaggregated)");
    }
    cfg.prefillReplicas = static_cast<size_t>(
        getUint(v, "prefillReplicas", cfg.prefillReplicas));
    if (const JsonValue *l = v.find("link"))
        cfg.link = parseLink(*l);
    cfg.slo = parseSlo(v, cfg.slo);
    if (std::string err = validateFleetConfig(cfg); !err.empty())
        failAt(v, err);
    return cfg;
}

GpuConfig
parseGpuPreset(const JsonValue &v, HbmConfig &hbm)
{
    std::string name = lowered(v.asString());
    if (name == "a100") {
        hbm = hbm2eConfig();
        return a100Config();
    }
    if (name == "h100") {
        hbm = hbm3Config();
        return h100Config();
    }
    failAt(v, "unknown GPU preset \"" + v.asString() +
                  "\" (expected a100, h100)");
}

std::vector<ModelConfig>
parseModelList(const JsonValue &v)
{
    std::vector<ModelConfig> out;
    for (const JsonValue &item : v.items())
        out.push_back(parseModelValue(item));
    return out;
}

ThroughputScenario
parseThroughput(const JsonValue &root)
{
    ThroughputScenario ts;
    ts.systems = parseSystems(root, root);
    ts.inputLen = getUint(root, "inputLen", ts.inputLen);
    ts.outputLen = getUint(root, "outputLen", ts.outputLen);
    if (const JsonValue *m = root.find("executionMode"))
        ts.executionMode = parseMode(*m);
    const JsonValue *grids = root.find("grids");
    if (!grids)
        failAt(root, "a throughput scenario needs a \"grids\" array");
    for (const JsonValue &g : grids->items()) {
        checkKeys(g, {"label", "gpu", "nGpus", "models", "batches"});
        ThroughputGrid grid;
        grid.label = getString(g, "label", "");
        grid.hbm = hbm2eConfig();
        grid.gpu = a100Config();
        if (const JsonValue *gpu = g.find("gpu"))
            grid.gpu = parseGpuPreset(*gpu, grid.hbm);
        grid.nGpus = getInt32(g, "nGpus", 1);
        if (grid.nGpus < 1)
            failAt(g, "\"nGpus\" must be >= 1, got " +
                          std::to_string(grid.nGpus));
        const JsonValue *models = g.find("models");
        if (!models)
            failAt(g, "a grid needs a \"models\" array");
        grid.models = parseModelList(*models);
        const JsonValue *batches = g.find("batches");
        if (!batches)
            failAt(g, "a grid needs a \"batches\" array");
        for (const JsonValue &b : batches->items()) {
            int64_t batch = b.asInt();
            if (batch < 1 || batch > (1 << 20))
                failAt(b, "batch sizes must be in [1, 1048576], got " +
                              std::to_string(batch));
            grid.batches.push_back(static_cast<int>(batch));
        }
        if (grid.models.empty() || grid.batches.empty())
            failAt(g, "a grid needs at least one model and one batch");
        ts.grids.push_back(std::move(grid));
    }
    if (ts.grids.empty())
        failAt(*grids, "\"grids\" must hold at least one grid");
    if (const JsonValue *sums = root.find("summaries")) {
        for (const JsonValue &s : sums->items()) {
            checkKeys(s, {"system", "versus", "note"});
            ThroughputSummary sum;
            if (const JsonValue *sys = s.find("system"))
                sum.system = parseSystemKind(*sys);
            if (const JsonValue *vs = s.find("versus"))
                sum.versus = parseSystemKind(*vs);
            sum.note = getString(s, "note", "");
            ts.summaries.push_back(std::move(sum));
        }
    }
    return ts;
}

ServingScenario
parseServing(const JsonValue &root)
{
    ServingScenario sc;
    sc.systems = parseSystems(root, root);
    sc.nGpus = getInt32(root, "nGpus", sc.nGpus);
    if (sc.nGpus < 1)
        failAt(root, "\"nGpus\" must be >= 1, got " +
                         std::to_string(sc.nGpus));
    if (const JsonValue *p = root.find("policies")) {
        sc.policies.clear();
        for (const JsonValue &item : p->items())
            sc.policies.push_back(parsePolicy(item));
        if (sc.policies.empty())
            failAt(*p, "\"policies\" must name at least one policy");
    }
    if (const JsonValue *m = root.find("modes")) {
        if (m->isString()) {
            if (lowered(m->asString()) != "auto")
                failAt(*m, "\"modes\" must be \"auto\" or an array of "
                           "mode names");
            sc.autoModes = true;
        } else {
            sc.modes.clear();
            for (const JsonValue &item : m->items())
                sc.modes.push_back(parseMode(item));
            if (sc.modes.empty())
                failAt(*m, "\"modes\" must name at least one mode");
        }
    }
    if (const JsonValue *r = root.find("rates")) {
        // Accepting both and silently preferring one would break the
        // schema's no-silent-behavior posture.
        if (const JsonValue *r1 = root.find("rate"))
            failAt(*r1, "\"rate\" and \"rates\" are mutually "
                        "exclusive — keep only one");
        for (const JsonValue &item : r->items()) {
            double rate = item.asNumber();
            if (!(rate > 0.0))
                failAt(item, "rates must be positive req/s");
            sc.rates.push_back(rate);
        }
        if (sc.rates.empty())
            failAt(*r, "\"rates\" must hold at least one rate");
    } else if (const JsonValue *r1 = root.find("rate")) {
        double rate = r1->asNumber();
        if (!(rate > 0.0))
            failAt(*r1, "\"rate\" must be positive req/s");
        sc.rates.push_back(rate);
    } else {
        failAt(root, "a serving scenario needs \"rates\" or \"rate\"");
    }
    sc.model = parseModel(root, root);
    sc.engine = parseEngine(root);
    sc.trace = parseTrace(root, root);
    if (std::string err =
            validateEngineAcrossPolicies(sc.engine, sc.policies);
        !err.empty()) {
        const JsonValue *ev = root.find("engine");
        failAt(ev ? *ev : root, err);
    }
    return sc;
}

FleetScenario
parseFleet(const JsonValue &root)
{
    FleetScenario sc;
    sc.model = parseModel(root, root);
    sc.trace = parseTrace(root, root, /*require=*/true,
                          /*allowReplayFile=*/true);
    if (const JsonValue *r = root.find("routers")) {
        for (const JsonValue &item : r->items())
            sc.routers.push_back(parseRouter(item));
        if (sc.routers.empty())
            failAt(*r, "\"routers\" must name at least one router "
                       "(omit the key to use each fleet's own)");
    }
    if (const JsonValue *fleets = root.find("fleets")) {
        for (const JsonValue &f : fleets->items()) {
            FleetCase c;
            c.label = getString(f, "label",
                                "fleet " +
                                    std::to_string(sc.cases.size()));
            c.fleet = parseFleetConfig(f);
            sc.cases.push_back(std::move(c));
        }
    } else if (const JsonValue *fleet = root.find("fleet")) {
        FleetCase c;
        c.label = getString(*fleet, "label", "fleet");
        c.fleet = parseFleetConfig(*fleet);
        sc.cases.push_back(std::move(c));
    } else {
        failAt(root, "a fleet scenario needs \"fleet\" or \"fleets\"");
    }
    if (sc.cases.empty())
        failAt(root, "\"fleets\" must hold at least one fleet");
    return sc;
}

SaturationScenario
parseSaturation(const JsonValue &root)
{
    SaturationScenario sc;
    sc.systems = parseSystems(root, root);
    if (const JsonValue *p = root.find("policies")) {
        sc.policies.clear();
        for (const JsonValue &item : p->items())
            sc.policies.push_back(parsePolicy(item));
        if (sc.policies.empty())
            failAt(*p, "\"policies\" must name at least one policy");
    }
    sc.model = parseModel(root, root);
    sc.engine = parseEngine(root);
    sc.trace = parseTrace(root, root);
    if (std::string err =
            validateEngineAcrossPolicies(sc.engine, sc.policies);
        !err.empty()) {
        const JsonValue *ev = root.find("engine");
        failAt(ev ? *ev : root, err);
    }
    sc.startRate = getNumber(root, "startRate", sc.startRate);
    sc.maxRate = getNumber(root, "maxRate", sc.maxRate);
    sc.bisectSteps = getInt32(root, "bisectSteps", sc.bisectSteps);
    sc.sloFraction = getNumber(root, "sloFraction", sc.sloFraction);
    if (!(sc.startRate > 0.0) || sc.maxRate < sc.startRate)
        failAt(root, "saturation search needs 0 < startRate <= "
                     "maxRate");
    if (sc.bisectSteps < 0)
        failAt(root, "\"bisectSteps\" must be >= 0");
    if (!(sc.sloFraction > 0.0) || sc.sloFraction > 1.0)
        failAt(root, "\"sloFraction\" must be in (0, 1]");
    return sc;
}

PlannerScenario
parsePlanner(const JsonValue &root)
{
    PlannerScenario sc;
    sc.systems = parseSystems(root, root);
    sc.model = parseModel(root, root);
    sc.engine = parseEngine(root);
    sc.trace = parseTrace(root, root);
    if (const JsonValue *r = root.find("router"))
        sc.router = parseRouter(*r);
    sc.sloFraction = getNumber(root, "sloFraction", sc.sloFraction);
    int64_t max_replicas = getInt(
        root, "maxReplicas", static_cast<int64_t>(sc.maxReplicas));
    if (max_replicas < 1)
        failAt(root, "\"maxReplicas\" must be >= 1");
    sc.maxReplicas = static_cast<size_t>(max_replicas);
    if (!(sc.sloFraction > 0.0) || sc.sloFraction > 1.0)
        failAt(root, "\"sloFraction\" must be in (0, 1]");
    return sc;
}

} // namespace

std::string
validateEngineAcrossPolicies(const EngineConfig &engine,
                             const std::vector<SchedulerPolicy> &policies)
{
    for (SchedulerPolicy policy : policies) {
        EngineConfig ec = engine;
        ec.policy = policy;
        if (std::string err = validateEngineConfig(ec); !err.empty())
            return err + " (with policy " + policyName(policy) + ")";
    }
    return "";
}

ModelConfig
modelPreset(const std::string &name)
{
    std::string key = lowered(name);
    if (key == "retnet-2.7b")
        return retnet2p7b();
    if (key == "gla-2.7b")
        return gla2p7b();
    if (key == "hgrn2-2.7b")
        return hgrn2_2p7b();
    if (key == "mamba2-2.7b")
        return mamba2_2p7b();
    if (key == "zamba2-7b")
        return zamba2_7b();
    if (key == "opt-7b")
        return opt7b();
    if (key == "opt-2.7b")
        return opt2p7b();
    throw ConfigError(
        "unknown model preset \"" + name +
        "\" (expected retnet-2.7b, gla-2.7b, hgrn2-2.7b, mamba2-2.7b, "
        "zamba2-7b, opt-7b, opt-2.7b)");
}

Scenario
parseScenario(const JsonValue &root, bool smoke)
{
    if (!root.isObject())
        failAt(root, "a scenario must be a JSON object");
    JsonValue doc = root;
    if (smoke) {
        if (const JsonValue *overlay = root.find("smoke"))
            doc = mergeJson(root, *overlay);
    }
    // The merged document still carries the "smoke" member; it is an
    // allowed (and already consumed) key for every kind.
    static const std::initializer_list<const char *> kByKind[] = {
        /* throughput */
        {"name", "description", "kind", "smoke", "systems", "inputLen",
         "outputLen", "executionMode", "grids", "summaries"},
        /* serving */
        {"name", "description", "kind", "smoke", "systems", "nGpus",
         "policies", "modes", "rates", "rate", "model", "engine",
         "trace", "observability"},
        /* fleet */
        {"name", "description", "kind", "smoke", "model", "trace",
         "routers", "fleet", "fleets", "observability"},
        /* saturation */
        {"name", "description", "kind", "smoke", "systems", "policies",
         "model", "engine", "trace", "startRate", "maxRate",
         "bisectSteps", "sloFraction"},
        /* planner */
        {"name", "description", "kind", "smoke", "systems", "model",
         "engine", "trace", "router", "sloFraction", "maxReplicas"},
        /* control (fleet schema; control-plane keys live per fleet) */
        {"name", "description", "kind", "smoke", "model", "trace",
         "routers", "fleet", "fleets", "observability"},
    };

    Scenario sc;
    sc.name = getString(doc, "name", "scenario");
    sc.description = getString(doc, "description", "");
    const JsonValue *kind = doc.find("kind");
    if (!kind)
        failAt(doc, "missing required key \"kind\" (throughput, "
                    "serving, fleet, saturation, planner, control)");
    std::string kind_name = lowered(kind->asString());
    if (kind_name == "throughput")
        sc.kind = ScenarioKind::Throughput;
    else if (kind_name == "serving")
        sc.kind = ScenarioKind::Serving;
    else if (kind_name == "fleet")
        sc.kind = ScenarioKind::Fleet;
    else if (kind_name == "saturation")
        sc.kind = ScenarioKind::Saturation;
    else if (kind_name == "planner")
        sc.kind = ScenarioKind::Planner;
    else if (kind_name == "control")
        sc.kind = ScenarioKind::ControlPlane;
    else
        failAt(*kind, "unknown scenario kind \"" + kind->asString() +
                          "\" (expected throughput, serving, fleet, "
                          "saturation, planner, control)");
    checkKeys(doc, kByKind[static_cast<size_t>(sc.kind)]);
    switch (sc.kind) {
      case ScenarioKind::Throughput:
        sc.spec = parseThroughput(doc);
        break;
      case ScenarioKind::Serving:
        sc.spec = parseServing(doc);
        sc.obs = parseObservability(doc);
        break;
      case ScenarioKind::Fleet:
        sc.spec = parseFleet(doc);
        sc.obs = parseObservability(doc);
        break;
      case ScenarioKind::Saturation:
        sc.spec = parseSaturation(doc);
        break;
      case ScenarioKind::Planner:
        sc.spec = parsePlanner(doc);
        break;
      case ScenarioKind::ControlPlane:
        sc.spec = parseFleet(doc);
        sc.obs = parseObservability(doc);
        break;
    }
    return sc;
}

Scenario
parseScenarioText(const std::string &text, bool smoke)
{
    return parseScenario(parseJson(text), smoke);
}

Scenario
loadScenarioFile(const std::string &path, bool smoke)
{
    try {
        return parseScenario(loadJsonFile(path), smoke);
    } catch (const ConfigError &e) {
        throw ConfigError(path + ": " + e.what());
    }
}

// ---------------------------------------------------- built-in studies

Scenario
fig12Scenario(bool smoke)
{
    Scenario sc;
    sc.name = "fig12_throughput";
    sc.description = "Figure 12: normalized generation throughput";
    sc.kind = ScenarioKind::Throughput;
    ThroughputScenario ts;
    ts.systems = mainSystems();
    ts.inputLen = 2048;
    ts.outputLen = 2048;

    ThroughputGrid small;
    small.label = "Small scale (2.7B, 7B) - 1x A100";
    small.gpu = a100Config();
    small.hbm = hbm2eConfig();
    small.nGpus = 1;
    small.models = evaluationModels();
    small.batches = {32, 64, 128};

    ThroughputGrid large;
    large.label = "Large scale (70B) - 8x A100";
    large.gpu = a100Config();
    large.hbm = hbm2eConfig();
    large.nGpus = 8;
    large.models = evaluationModels70b();
    large.batches = {32, 64, 128};

    if (smoke) {
        small.models.resize(2);
        small.batches = {32};
        large.models.resize(2);
        large.batches = {32};
    }
    ts.grids = {std::move(small), std::move(large)};
    ts.summaries = {
        {SystemKind::PIMBA, SystemKind::GPU,
         "paper: avg 1.9x, up to 4.1x"},
        {SystemKind::PIMBA, SystemKind::GPU_PIM,
         "paper: avg 1.4x, up to 2.1x"},
    };
    sc.spec = std::move(ts);
    return sc;
}

Scenario
fig16Scenario(bool smoke)
{
    Scenario sc;
    sc.name = "fig16_h100";
    sc.description = "Figure 16: throughput on H100 (70B, 8 GPUs)";
    sc.kind = ScenarioKind::Throughput;
    ThroughputScenario ts;
    ts.systems = mainSystems();
    ts.inputLen = 2048;
    ts.outputLen = 2048;

    ThroughputGrid grid;
    grid.gpu = h100Config();
    grid.hbm = hbm3Config();
    grid.nGpus = 8;
    grid.models = evaluationModels70b();
    grid.batches = {32, 64, 128};
    if (smoke) {
        grid.models.resize(2);
        grid.batches = {32};
    }
    ts.grids = {std::move(grid)};
    ts.summaries = {
        {SystemKind::PIMBA, SystemKind::GPU, "paper: 1.8x"},
        {SystemKind::PIMBA, SystemKind::GPU_PIM, "paper: 1.3x"},
    };
    sc.spec = std::move(ts);
    return sc;
}

Scenario
servingRateSweepScenario(const ModelConfig &model, bool smoke)
{
    Scenario sc;
    sc.name = "serving_rate_sweep";
    sc.description = model.name +
                     ", Poisson arrivals, input 512 / output 256, "
                     "batch cap 64";
    sc.kind = ScenarioKind::Serving;
    ServingScenario ss;
    ss.systems = {SystemKind::GPU, SystemKind::GPU_Q,
                  SystemKind::GPU_PIM, SystemKind::PIMBA,
                  SystemKind::NEUPIMS};
    ss.rates = {1, 2, 4, 8, 16, 32, 64};
    ss.model = model;
    ss.engine.maxBatch = 64;
    ss.trace.arrivals = ArrivalProcess::Poisson;
    ss.trace.numRequests = 64;
    ss.trace.inputLen = 512;
    ss.trace.outputLen = 256;
    ss.trace.seed = 0x5EED0001u;
    if (smoke) {
        ss.rates = {2, 8, 32};
        ss.trace.numRequests = 24;
    }
    sc.spec = std::move(ss);
    return sc;
}

Scenario
policyShootoutScenario(const ModelConfig &model, bool smoke)
{
    Scenario sc;
    sc.name = "policy_shootout";
    sc.description = model.name +
                     ", policy comparison at 32 req/s (saturating), "
                     "uniform lengths";
    sc.kind = ScenarioKind::Serving;
    ServingScenario ss;
    ss.systems = {SystemKind::GPU, SystemKind::PIMBA};
    ss.policies = allPolicies();
    ss.autoModes = true;
    ss.rates = {32};
    ss.model = model;
    ss.engine.maxBatch = 64;
    ss.trace.arrivals = ArrivalProcess::Poisson;
    ss.trace.numRequests = 64;
    ss.trace.lengths = LengthDistribution::Uniform;
    ss.trace.inputLen = 256;
    ss.trace.inputLenMax = 768; // uniform, mean 512
    ss.trace.outputLen = 128;
    ss.trace.outputLenMax = 384; // uniform, mean 256
    ss.trace.seed = 0x5EED0001u;
    if (smoke)
        ss.trace.numRequests = 24;
    sc.spec = std::move(ss);
    return sc;
}

namespace {

/// The canonical cluster trace of cluster/workload.h, as a TraceConfig.
TraceConfig
clusterTraceConfig(double rate, int num_requests)
{
    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Poisson;
    tc.ratePerSec = rate;
    tc.numRequests = num_requests;
    tc.lengths = LengthDistribution::Uniform;
    tc.inputLen = 256;
    tc.inputLenMax = 768;
    tc.outputLen = 128;
    tc.outputLenMax = 384;
    tc.seed = 0x5EEDC0DEu;
    return tc;
}

} // namespace

Scenario
routerShootoutScenario(bool smoke)
{
    Scenario sc;
    sc.name = "cluster_routers";
    sc.description =
        "Router shootout: 2x Pimba + 2x GPU, Mamba-2 2.7B";
    sc.kind = ScenarioKind::Fleet;
    FleetScenario fs;
    fs.model = mamba2_2p7b();
    fs.trace = clusterTraceConfig(48.0, smoke ? 48 : 192);
    fs.routers = allRouterPolicies();
    FleetCase c;
    c.label = "2x Pimba + 2x GPU";
    c.fleet = heterogeneousFleet();
    fs.cases = {std::move(c)};
    sc.spec = std::move(fs);
    return sc;
}

Scenario
disaggregationScenario(bool smoke)
{
    Scenario sc;
    sc.name = "cluster_disaggregation";
    sc.description =
        "Prefill/decode disaggregation: 4x Pimba, Mamba-2 2.7B";
    sc.kind = ScenarioKind::Fleet;
    FleetScenario fs;
    fs.model = mamba2_2p7b();
    fs.trace = clusterTraceConfig(24.0, smoke ? 48 : 192);
    FleetCase colo;
    colo.label = "colocated 4";
    colo.fleet = colocatedPimbaFleet();
    fs.cases.push_back(std::move(colo));
    for (const LinkConfig &link : {nvlinkLink(), infinibandLink()}) {
        FleetCase c;
        c.label = "2p+2d " + link.name;
        c.fleet = disaggregatedPimbaFleet(link);
        fs.cases.push_back(std::move(c));
    }
    sc.spec = std::move(fs);
    return sc;
}

Scenario
executionModeScenario(bool smoke)
{
    Scenario sc;
    sc.name = "cluster_execution_modes";
    sc.description =
        "Execution modes: 4x Pimba colocated, Mamba-2 2.7B";
    sc.kind = ScenarioKind::Fleet;
    FleetScenario fs;
    fs.model = mamba2_2p7b();
    fs.trace = clusterTraceConfig(48.0, smoke ? 48 : 192);
    FleetCase blocked;
    blocked.label = "blocked x4";
    blocked.fleet = colocatedPimbaFleet(4, ExecutionMode::Blocked);
    FleetCase overlapped;
    overlapped.label = "overlapped x4";
    overlapped.fleet = colocatedPimbaFleet(4, ExecutionMode::Overlapped);
    FleetCase mixed;
    mixed.label = "mixed 2+2";
    mixed.fleet = mixedModePimbaFleet(4);
    fs.cases = {std::move(blocked), std::move(overlapped),
                std::move(mixed)};
    sc.spec = std::move(fs);
    return sc;
}

Scenario
saturationScenario(bool smoke)
{
    Scenario sc;
    sc.name = "saturation_search";
    sc.description = "Saturation sweep: Mamba-2 2.7B, Poisson, "
                     "uniform input 256..768 / output 128..384";
    sc.kind = ScenarioKind::Saturation;
    SaturationScenario ss;
    ss.systems = {SystemKind::GPU, SystemKind::GPU_Q,
                  SystemKind::GPU_PIM, SystemKind::PIMBA,
                  SystemKind::NEUPIMS};
    ss.policies = allPolicies();
    ss.model = mamba2_2p7b();
    ss.engine.maxBatch = 64;
    ss.trace.arrivals = ArrivalProcess::Poisson;
    ss.trace.numRequests = smoke ? 32 : 96;
    ss.trace.lengths = LengthDistribution::Uniform;
    ss.trace.inputLen = 256;
    ss.trace.inputLenMax = 768;
    ss.trace.outputLen = 128;
    ss.trace.outputLenMax = 384;
    ss.trace.seed = 0x5EED0001u;
    ss.bisectSteps = smoke ? 2 : 6;
    sc.spec = std::move(ss);
    return sc;
}

Scenario
plannerScenario(bool smoke)
{
    Scenario sc;
    sc.name = "fleet_planner";
    sc.description =
        "Fleet planner: min replicas for >= 90% SLO attainment";
    sc.kind = ScenarioKind::Planner;
    PlannerScenario ps;
    ps.systems = mainSystems();
    ps.model = mamba2_2p7b();
    ps.trace.arrivals = ArrivalProcess::Poisson;
    ps.trace.ratePerSec = smoke ? 24.0 : 48.0;
    ps.trace.numRequests = smoke ? 64 : 192;
    ps.trace.inputLen = 512;
    ps.trace.outputLen = 256;
    ps.trace.seed = 0x5EEDF1EEu;
    ps.router = RouterPolicy::JoinShortestQueue;
    ps.sloFraction = 0.9;
    ps.maxReplicas = 32;
    sc.spec = std::move(ps);
    return sc;
}

Scenario
autoscaleScenario(bool smoke)
{
    Scenario sc;
    sc.name = "autoscale_diurnal";
    sc.description = "Autoscaler vs. static provisioning on a diurnal "
                     "trace: 4x Pimba, Mamba-2 2.7B";
    sc.kind = ScenarioKind::ControlPlane;
    FleetScenario fs;
    fs.model = mamba2_2p7b();
    fs.trace.arrivals = ArrivalProcess::Diurnal;
    fs.trace.ratePerSec = 24.0;
    fs.trace.diurnal.period = Seconds(120.0);
    fs.trace.diurnal.peakToTrough = 3.0;
    fs.trace.numRequests = smoke ? 200 : 2000;
    fs.trace.inputLen = smoke ? 256 : 512;
    fs.trace.outputLen = smoke ? 128 : 256;
    fs.trace.seed = 0x5EEDBE4Cu;

    // The autoscaler case leads (tools/check_replay.py reads the first
    // data row); the statics it must beat on replica-seconds follow.
    FleetCase scaled;
    scaled.label = "autoscale 1..4";
    scaled.fleet = colocatedPimbaFleet(4);
    scaled.fleet.router = RouterPolicy::JoinShortestQueue;
    AutoscalerConfig &as = scaled.fleet.controlPlane.autoscaler;
    as.enabled = true;
    as.minReplicas = 1;
    as.maxReplicas = 4;
    as.initialReplicas = 1;
    as.interval = Seconds(2.0);
    as.scaleUpQueueDepth = 6.0;
    as.scaleDownQueueDepth = 1.0;
    as.warmup = Seconds(2.0);
    fs.cases.push_back(std::move(scaled));

    for (size_t n : {4, 2}) {
        FleetCase stat;
        stat.label = "static " + std::to_string(n);
        stat.fleet = colocatedPimbaFleet(n);
        stat.fleet.router = RouterPolicy::JoinShortestQueue;
        fs.cases.push_back(std::move(stat));
    }
    sc.spec = std::move(fs);
    return sc;
}

} // namespace pimba
