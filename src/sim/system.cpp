#include "sim/system.h"

#include "core/logging.h"

namespace pimba {

std::string
systemName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::GPU: return "GPU";
      case SystemKind::GPU_Q: return "GPU+Q";
      case SystemKind::GPU_PIM: return "GPU+PIM";
      case SystemKind::PIMBA: return "Pimba";
      case SystemKind::NEUPIMS: return "NeuPIMs";
    }
    PIMBA_PANIC("unknown system kind");
}

std::string
executionModeName(ExecutionMode mode)
{
    switch (mode) {
      case ExecutionMode::Blocked: return "blocked";
      case ExecutionMode::Overlapped: return "overlapped";
    }
    PIMBA_PANIC("unknown execution mode");
}

std::optional<PimDesign>
SystemConfig::pim() const
{
    switch (kind) {
      case SystemKind::GPU:
      case SystemKind::GPU_Q:
        return std::nullopt;
      case SystemKind::GPU_PIM:
        return hbmPimDesign();
      case SystemKind::PIMBA:
        return pimbaDesign();
      case SystemKind::NEUPIMS:
        return neupimsDesign();
    }
    PIMBA_PANIC("unknown system kind");
}

NumberFormat
SystemConfig::stateFormat() const
{
    switch (kind) {
      case SystemKind::GPU: return NumberFormat::FP16;
      case SystemKind::GPU_Q: return NumberFormat::INT8;
      case SystemKind::GPU_PIM: return NumberFormat::FP16;
      case SystemKind::PIMBA: return NumberFormat::MX8;
      case SystemKind::NEUPIMS: return NumberFormat::FP16;
    }
    PIMBA_PANIC("unknown system kind");
}

NumberFormat
SystemConfig::kvFormat() const
{
    switch (kind) {
      case SystemKind::GPU: return NumberFormat::FP16;
      case SystemKind::GPU_Q: return NumberFormat::INT8;
      case SystemKind::GPU_PIM: return NumberFormat::FP16;
      case SystemKind::PIMBA: return NumberFormat::MX8;
      case SystemKind::NEUPIMS: return NumberFormat::FP16;
    }
    PIMBA_PANIC("unknown system kind");
}

bool
SystemConfig::stateUpdateOnPim() const
{
    auto design = pim();
    return design && design->supportsStateUpdate;
}

bool
SystemConfig::attentionOnPim() const
{
    auto design = pim();
    return design && design->supportsAttention;
}

SystemConfig
makeSystem(SystemKind kind, int n_gpus, const GpuConfig &gpu,
           const HbmConfig &hbm)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.gpu = gpu;
    cfg.hbm = hbm;
    cfg.nGpus = n_gpus;
    return cfg;
}

std::vector<SystemKind>
mainSystems()
{
    return {SystemKind::GPU, SystemKind::GPU_Q, SystemKind::GPU_PIM,
            SystemKind::PIMBA};
}

} // namespace pimba
