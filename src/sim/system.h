/**
 * @file
 * Evaluated serving-system configurations (paper Section 6.1):
 * GPU, GPU+Q (int8 state/KV on the GPU), GPU+PIM (HBM-PIM),
 * Pimba, and the NeuPIMs-like attention-only PIM baseline (Fig. 15).
 */

#ifndef PIMBA_SIM_SYSTEM_H
#define PIMBA_SIM_SYSTEM_H

#include <optional>
#include <string>

#include "dram/hbm_config.h"
#include "gpu/gpu_config.h"
#include "pim/pim_compute.h"
#include "quant/format.h"

namespace pimba {

/** The serving systems compared in the evaluation. */
enum class SystemKind
{
    GPU,     ///< plain GPU, fp16 state and KV cache
    GPU_Q,   ///< GPU with int8-quantized state/KV (Pimba's bit width)
    GPU_PIM, ///< GPU + HBM-PIM (time-multiplexed fp16 PIM)
    PIMBA,   ///< GPU + Pimba PIM (interleaved SPUs, MX8)
    NEUPIMS, ///< GPU + per-bank attention-only PIM, fp16
};

/** Display name matching the paper's figure legends. */
std::string systemName(SystemKind kind);

/** Full system description. */
struct SystemConfig
{
    SystemKind kind = SystemKind::GPU;
    GpuConfig gpu;
    HbmConfig hbm;
    int nGpus = 1; ///< tensor-parallel degree (one PIM device per GPU)

    /** PIM design used by this system (nullopt for GPU-only systems). */
    std::optional<PimDesign> pim() const;

    /** Storage format of the recurrent state. */
    NumberFormat stateFormat() const;
    /** Storage format of the KV cache. */
    NumberFormat kvFormat() const;

    /** True if state updates execute on the PIM. */
    bool stateUpdateOnPim() const;
    /** True if attention executes on the PIM. */
    bool attentionOnPim() const;
};

/** Build a system around the A100/HBM2E (or given) platform. */
SystemConfig makeSystem(SystemKind kind, int n_gpus = 1,
                        const GpuConfig &gpu = a100Config(),
                        const HbmConfig &hbm = hbm2eConfig());

/** All four systems of Figs. 12-14. */
std::vector<SystemKind> mainSystems();

} // namespace pimba

#endif // PIMBA_SIM_SYSTEM_H
