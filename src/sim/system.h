/**
 * @file
 * Evaluated serving-system configurations (paper Section 6.1):
 * GPU, GPU+Q (int8 state/KV on the GPU), GPU+PIM (HBM-PIM),
 * Pimba, and the NeuPIMs-like attention-only PIM baseline (Fig. 15).
 */

#ifndef PIMBA_SIM_SYSTEM_H
#define PIMBA_SIM_SYSTEM_H

#include <optional>
#include <string>

#include "dram/hbm_config.h"
#include "gpu/gpu_config.h"
#include "pim/pim_compute.h"
#include "quant/format.h"

namespace pimba {

/// The serving systems compared in the evaluation.
enum class SystemKind
{
    GPU,     ///< plain GPU, fp16 state and KV cache
    GPU_Q,   ///< GPU with int8-quantized state/KV (Pimba's bit width)
    GPU_PIM, ///< GPU + HBM-PIM (time-multiplexed fp16 PIM)
    PIMBA,   ///< GPU + Pimba PIM (interleaved SPUs, MX8)
    NEUPIMS, ///< GPU + per-bank attention-only PIM, fp16
};

/// Display name matching the paper's figure legends.
std::string systemName(SystemKind kind);

/// How GPU and PIM phases of one step are scheduled against each other.
///
/// Blocked is the paper's Section 5.6 model: every PIM kernel serializes
/// against the GPU stream, so step latency is the sum of all phase
/// latencies. Overlapped is the NeuPIMs-style sub-batch pipeline of
/// Figure 15: the decode batch splits into two sub-batches and one
/// sub-batch's PIM phases (state update, attention score/attend) run
/// concurrently with the other's GPU phases (GEMMs, softmax), so each
/// pipeline stage costs max(gpu, pim) instead of gpu + pim, plus the
/// non-overlappable softmax sync between the PIM score and attend
/// phases. Energy is unaffected — the same work runs either way.
enum class ExecutionMode
{
    Blocked,    ///< PIM ops serialize against the GPU stream (Sec. 5.6)
    Overlapped, ///< two-sub-batch GPU<->PIM pipeline (Fig. 15)
};

/// Lower-case mode name ("blocked" / "overlapped") for tables.
std::string executionModeName(ExecutionMode mode);

/// Full system description.
struct SystemConfig
{
    SystemKind kind = SystemKind::GPU;
    GpuConfig gpu;
    HbmConfig hbm;
    int nGpus = 1; ///< tensor-parallel degree (one PIM device per GPU)
    /// GPU<->PIM phase scheduling; no effect on GPU-only systems.
    ExecutionMode executionMode = ExecutionMode::Blocked;

    /// PIM design used by this system (nullopt for GPU-only systems).
    std::optional<PimDesign> pim() const;

    /// Storage format of the recurrent state.
    NumberFormat stateFormat() const;
    /// Storage format of the KV cache.
    NumberFormat kvFormat() const;

    /// True if state updates execute on the PIM.
    bool stateUpdateOnPim() const;
    /// True if attention executes on the PIM.
    bool attentionOnPim() const;
};

/// Build a system around the A100/HBM2E (or given) platform.
SystemConfig makeSystem(SystemKind kind, int n_gpus = 1,
                        const GpuConfig &gpu = a100Config(),
                        const HbmConfig &hbm = hbm2eConfig());

/// All four systems of Figs. 12-14.
std::vector<SystemKind> mainSystems();

} // namespace pimba

#endif // PIMBA_SIM_SYSTEM_H
