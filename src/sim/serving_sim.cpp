#include "sim/serving_sim.h"

#include <cmath>

#include "core/logging.h"

namespace pimba {

namespace {

constexpr const char *kEnergySuIo = "State update (I/O)";
constexpr const char *kEnergySuCompute = "State update (Compute)";
constexpr const char *kEnergyAttnIo = "Attention (I/O)";
constexpr const char *kEnergyAttnCompute = "Attention (Compute)";
constexpr const char *kEnergyGemm = "GEMM";
constexpr const char *kEnergyOthers = "Others";

} // namespace

ServingSimulator::ServingSimulator(const SystemConfig &system)
    : sys(system), gpuModel(system.gpu)
{
    if (auto design = sys.pim())
        pimModel.emplace(sys.hbm, *design);
}

void
ServingSimulator::addGpuCost(OpClass cls, const GpuKernelCost &cost,
                             StepResult &acc) const
{
    acc.seconds += cost.seconds;
    acc.gpuSeconds += cost.seconds;
    acc.latency.add(opClassName(cls), cost.seconds.value());
    if (cls == OpClass::GEMM)
        acc.energy.add(kEnergyGemm, cost.energyJ.value());
    else
        acc.energy.add(kEnergyOthers, cost.energyJ.value());
}

void
ServingSimulator::runOp(const OpSpec &op, StepResult &acc) const
{
    const auto &gpu = sys.gpu;
    switch (op.cls) {
      case OpClass::GEMM:
      case OpClass::CausalConv:
      case OpClass::Discretization:
      case OpClass::Others: {
        addGpuCost(op.cls, gpuModel.kernel(op.flops, op.memBytes.value()), acc);
        return;
      }
      case OpClass::Communication: {
        GpuKernelCost cost = gpuModel.allReduce(op.memBytes.value(), sys.nGpus);
        acc.seconds += cost.seconds;
        acc.gpuSeconds += cost.seconds;
        acc.latency.add(opClassName(op.cls), cost.seconds.value());
        acc.energy.add(kEnergyOthers, cost.energyJ.value());
        return;
      }
      case OpClass::StateUpdate: {
        if (sys.stateUpdateOnPim()) {
            PimKernelResult r = pimModel->stateUpdate(op.su);
            Seconds secs = r.seconds + Seconds(gpu.kernelLaunchOverhead);
            acc.seconds += secs;
            // The launch rides the GPU stream; the kernel itself can
            // overlap another sub-batch's GPU phase.
            acc.pimSeconds += r.seconds;
            acc.gpuSeconds += Seconds(gpu.kernelLaunchOverhead);
            acc.latency.add(opClassName(op.cls), secs.value());
            Joules io = (r.energy.activation + r.energy.column +
                         r.energy.io) *
                        sys.nGpus;
            acc.energy.add(kEnergySuIo, io.value());
            acc.energy.add(kEnergySuCompute,
                           (r.energy.compute * sys.nGpus).value());
            return;
        }
        // GPU execution: the state is stored in this system's state
        // format; operands/outputs move in fp16. S = d (.) S + k v^T is
        // a read-modify-write of the whole state — the full state is
        // read once and the updated state written back once.
        double state_vals = static_cast<double>(op.su.instances) *
                            op.su.dimHead * op.su.dimState;
        double state_read =
            state_vals * bitsPerValue(sys.stateFormat()) / 8.0;
        double state_write = state_read;
        double opnd_bytes = static_cast<double>(op.su.instances) *
                            (3.0 * op.su.dimHead + 2.0 * op.su.dimState) *
                            2.0;
        double su_bytes = state_read + state_write + opnd_bytes;
        GpuKernelCost cost = gpuModel.kernel(op.flops, su_bytes);
        acc.seconds += cost.seconds;
        acc.gpuSeconds += cost.seconds;
        acc.latency.add(opClassName(op.cls), cost.seconds.value());
        acc.energy.add(kEnergySuIo, su_bytes * 8.0 *
                                        gpu.dramEnergyPerBit * sys.nGpus);
        acc.energy.add(kEnergySuCompute,
                       op.flops * gpu.computeEnergyPerFlop * sys.nGpus);
        return;
      }
      case OpClass::Attention: {
        // Softmax (and score normalization) always runs on the GPU,
        // blocking between the score and attend phases (Section 5.6).
        GpuKernelCost softmax = gpuModel.kernel(op.hostFlops,
                                                op.hostBytes.value());
        if (sys.attentionOnPim()) {
            PimKernelResult score = pimModel->attentionScore(op.attn);
            PimKernelResult attend = pimModel->attentionAttend(op.attn);
            Seconds secs = score.seconds + attend.seconds +
                           softmax.seconds +
                           Seconds(gpu.kernelLaunchOverhead);
            acc.seconds += secs;
            acc.pimSeconds += score.seconds + attend.seconds;
            // The softmax sits between the two PIM phases of the *same*
            // sub-batch, so it cannot be hidden behind the other
            // sub-batch's work — it is the pipeline's sync bubble.
            acc.syncSeconds += softmax.seconds;
            acc.gpuSeconds += Seconds(gpu.kernelLaunchOverhead);
            acc.latency.add(opClassName(op.cls), secs.value());
            Joules io = (score.energy.activation + score.energy.column +
                         score.energy.io + attend.energy.activation +
                         attend.energy.column + attend.energy.io) *
                        sys.nGpus;
            Joules cmp = (score.energy.compute + attend.energy.compute) *
                         sys.nGpus;
            acc.energy.add(kEnergyAttnIo, io.value());
            acc.energy.add(kEnergyAttnCompute,
                           (cmp + softmax.energyJ * sys.nGpus).value());
            return;
        }
        double kv_vals = static_cast<double>(op.attn.instances) *
                         static_cast<double>(op.attn.seqLen) *
                         op.attn.dimHead;
        double kv_read = 2.0 * kv_vals * bitsPerValue(sys.kvFormat()) /
                         8.0;
        // Each step appends the new token's K and V to the cache before
        // reading it — one dimHead-wide write per instance per matrix.
        double kv_write = 2.0 * static_cast<double>(op.attn.instances) *
                          op.attn.dimHead *
                          bitsPerValue(sys.kvFormat()) / 8.0;
        double kv_bytes = kv_read + kv_write;
        GpuKernelCost cost = gpuModel.kernel(op.flops, kv_bytes);
        Seconds secs = cost.seconds + softmax.seconds;
        acc.seconds += secs;
        acc.gpuSeconds += secs;
        acc.latency.add(opClassName(op.cls), secs.value());
        acc.energy.add(kEnergyAttnIo,
                       kv_bytes * 8.0 * gpu.dramEnergyPerBit * sys.nGpus);
        acc.energy.add(kEnergyAttnCompute,
                       ((Joules(op.flops * gpu.computeEnergyPerFlop) +
                         softmax.energyJ) * sys.nGpus).value());
        return;
      }
    }
    PIMBA_PANIC("unknown op class");
}

StepResult
ServingSimulator::generationStep(const ModelConfig &model, int batch,
                                 uint64_t seq_len) const
{
    StepResult acc;
    // One op buffer per thread, reused across steps: the op graph is
    // rebuilt every step but its capacity is stable, so the steady
    // state allocates nothing (sweep workers each get their own).
    static thread_local std::vector<OpSpec> ops;
    generationStepOpsInto(model, batch, seq_len, sys.nGpus, ops);
    for (const auto &op : ops)
        runOp(op, acc);
    // The two-sub-batch pipeline needs two sub-batches to fill both
    // stages and a PIM to overlap against; otherwise the step degrades
    // to the blocked schedule. Energy is untouched either way.
    if (sys.executionMode == ExecutionMode::Overlapped && batch >= 2 &&
        acc.pimSeconds > Seconds(0.0))
        acc.seconds = acc.overlappedSeconds();
    return acc;
}

StepResult
ServingSimulator::averagedStep(const ModelConfig &model, int batch,
                               uint64_t input_len,
                               uint64_t output_len) const
{
    PIMBA_ASSERT(output_len > 0, "empty decode window");
    // Attention latency/energy is affine in cache length; the average
    // over the decode positions [input_len, input_len + output_len) is
    // the step at their mean, input_len + (output_len - 1) / 2. The
    // integer midpoint floors that mean (exact for odd windows, half a
    // position low for even ones — the seed's output_len / 2 ceiled
    // it, overcharging even windows by the same half position).
    uint64_t mid = input_len + (output_len - 1) / 2;
    return generationStep(model, batch, mid);
}

StepResult
ServingSimulator::prefillStep(const ModelConfig &model, uint64_t tokens,
                              uint64_t seq_pos) const
{
    PIMBA_ASSERT(tokens > 0, "empty prefill chunk");
    // Token i of the chunk attends a cache of length seq_pos + i, so
    // the chunk's mean cache position is seq_pos + (tokens - 1) / 2,
    // floored for even chunk sizes (the seed's tokens / 2 ceiled it).
    return generationStep(model, static_cast<int>(tokens),
                          seq_pos + (tokens - 1) / 2);
}

StepResult
ServingSimulator::mixedStep(const ModelConfig &model, int decode_batch,
                            uint64_t decode_seq, uint64_t prefill_tokens,
                            uint64_t prefill_pos) const
{
    PIMBA_ASSERT(decode_batch >= 0, "negative decode batch");
    uint64_t total = static_cast<uint64_t>(decode_batch) + prefill_tokens;
    PIMBA_ASSERT(total > 0, "empty fused iteration");
    // Token-weighted mean cache position of the fused batch; prefill
    // callers pass the midpoint position of their chunk(s).
    uint64_t mean =
        (static_cast<uint64_t>(decode_batch) * decode_seq +
         prefill_tokens * prefill_pos) / total;
    return generationStep(model, static_cast<int>(total), mean);
}

TokensPerSecond
ServingSimulator::generationThroughput(const ModelConfig &model, int batch,
                                       uint64_t input_len,
                                       uint64_t output_len) const
{
    StepResult step = averagedStep(model, batch, input_len, output_len);
    PIMBA_ASSERT(step.seconds > Seconds(0.0), "zero step latency");
    return Tokens(batch) / step.seconds;
}

MemoryUsage
ServingSimulator::memoryUsage(const ModelConfig &model, int batch,
                              uint64_t seq_len) const
{
    MemoryUsage mem;
    mem.weights = Bytes(model.paramCount() * 2.0);
    mem.state = Bytes(batch * model.stateBytes(
        bitsPerValue(sys.stateFormat()) / 8.0));
    mem.kvCache = Bytes(
        batch * static_cast<double>(seq_len) *
        model.kvBytesPerToken(bitsPerValue(sys.kvFormat()) / 8.0));
    // Transient activations: a few residual-width buffers per request.
    mem.activations = Bytes(static_cast<double>(batch) * model.dModel *
                            16.0 * 2.0);
    return mem;
}

Bytes
ServingSimulator::weightFootprint(const ModelConfig &model) const
{
    // paramCount() counts the embedding table once; each extra
    // tensor-parallel shard keeps its own replica of it.
    double embedBytes =
        static_cast<double>(model.vocab) * model.dModel * 2.0;
    return Bytes(model.paramCount() * 2.0 +
                 static_cast<double>(sys.nGpus - 1) * embedBytes);
}

Bytes
ServingSimulator::requestFootprint(const ModelConfig &model,
                                   uint64_t seq_len) const
{
    MemoryUsage one = memoryUsage(model, 1, seq_len);
    return one.state + one.kvCache + one.activations;
}

} // namespace pimba
