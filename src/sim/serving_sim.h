/**
 * @file
 * Generation-phase serving simulator: maps each operation of a model's
 * per-token operator graph onto the GPU roofline model or the PIM cycle
 * model according to the system configuration, accumulating the latency
 * and energy breakdowns the paper's Figures 3 and 12-16 report.
 *
 * Two execution modes (SystemConfig::executionMode):
 *
 *  - Blocked (Section 5.6): GPU and PIM serialize; per-token latency is
 *    the sum of the per-operation latencies, with the softmax between
 *    the attention score and attend phases charged to the GPU.
 *  - Overlapped (the NeuPIMs-style sub-batch pipeline of Figure 15):
 *    the batch splits into two sub-batches whose GPU and PIM phases run
 *    concurrently, so the step costs max(gpu, pim) per pipeline stage
 *    plus the non-overlappable softmax sync. Energy is identical to
 *    Blocked — the same kernels run either way.
 */

#ifndef PIMBA_SIM_SERVING_SIM_H
#define PIMBA_SIM_SERVING_SIM_H

#include <algorithm>

#include "core/stats.h"
#include "gpu/gpu_kernels.h"
#include "models/model_config.h"
#include "pim/pim_compute.h"
#include "sim/system.h"

namespace pimba {

/** Latency/energy outcome of one generation step (one token x batch). */
struct StepResult
{
    Seconds seconds;        ///< per-token step latency (mode-dependent)
    Breakdown latency;      ///< seconds per OpClass, blocked phase times
    Breakdown energy;       ///< joules per Fig. 14 category

    // Phase decomposition of the step. The three always sum to the
    // blocked-mode latency; under ExecutionMode::Overlapped the step's
    // `seconds` is max(gpuSeconds, pimSeconds) + syncSeconds instead
    // (and the per-OpClass latency breakdown keeps the blocked phase
    // times, so it sums to more than `seconds`).
    Seconds gpuSeconds;  ///< GPU-stream work (overlappable)
    Seconds pimSeconds;  ///< PIM kernel work (overlappable)
    Seconds syncSeconds; ///< GPU<->PIM sync (softmax between the
                         ///  PIM score and attend phases)

    /** Step latency if GPU and PIM phases serialize (Section 5.6). */
    Seconds blockedSeconds() const
    {
        return gpuSeconds + pimSeconds + syncSeconds;
    }
    /** Step latency under the two-sub-batch GPU<->PIM pipeline. */
    Seconds overlappedSeconds() const
    {
        return std::max(gpuSeconds, pimSeconds) + syncSeconds;
    }
};

/** Memory-footprint split of a serving configuration. */
struct MemoryUsage
{
    Bytes weights;
    Bytes state;
    Bytes kvCache;
    Bytes activations;

    Bytes total() const
    {
        return weights + state + kvCache + activations;
    }
};

/** Serving simulator for one system configuration. */
class ServingSimulator
{
  public:
    explicit ServingSimulator(const SystemConfig &system);

    /**
     * Simulate one generation step at sequence position @p seq_len.
     * All tensor-parallel shards run the same program; the returned
     * numbers are per-token wall latency and whole-system energy.
     */
    StepResult generationStep(const ModelConfig &model, int batch,
                              uint64_t seq_len) const;

    /**
     * Average generation step over the decode window. Both the GPU and
     * PIM attention costs are affine in the cache length, so the window
     * average equals the step at the mean position of
     * [input_len, input_len + output_len), i.e.
     * input_len + (output_len - 1) / 2 (floored for even windows).
     */
    StepResult averagedStep(const ModelConfig &model, int batch,
                            uint64_t input_len, uint64_t output_len) const;

    /**
     * Simulate one prefill chunk: @p tokens prompt tokens of a single
     * request whose cache already holds @p seq_pos tokens. The chunk's
     * tokens flow through the same operator graph as a decode batch of
     * the same size (identical GEMM/state-update work per token), and
     * causal attention inside the chunk is affine in cache length, so
     * the chunk costs one generation step of batch @p tokens at the
     * chunk's mean cache position seq_pos + (tokens - 1) / 2, floored
     * for even chunks (token i of the chunk attends a cache of length
     * seq_pos + i).
     */
    StepResult prefillStep(const ModelConfig &model, uint64_t tokens,
                           uint64_t seq_pos) const;

    /**
     * Simulate one fused iteration that runs @p decode_batch decode
     * tokens (mean cache length @p decode_seq) together with
     * @p prefill_tokens prompt tokens (token-weighted mean cache
     * position @p prefill_pos) in the same operator launches, the
     * Sarathi-style chunked-prefill piggyback. The fused step pays the
     * per-step weight pass and launch overheads once, which is exactly
     * where it beats running a decode step and a prefill chunk
     * back-to-back; per-token attention/state costs are affine in the
     * cache position, so the fused step is costed at the token-weighted
     * mean position of its constituents.
     */
    StepResult mixedStep(const ModelConfig &model, int decode_batch,
                         uint64_t decode_seq, uint64_t prefill_tokens,
                         uint64_t prefill_pos) const;

    /** Generation throughput in tokens (words) per second. */
    TokensPerSecond generationThroughput(const ModelConfig &model,
                                         int batch, uint64_t input_len,
                                         uint64_t output_len) const;

    /** Whole-system memory footprint at @p seq_len cached tokens. */
    MemoryUsage memoryUsage(const ModelConfig &model, int batch,
                            uint64_t seq_len) const;

    /**
     * Weight bytes the whole tensor-parallel group pins in HBM. Body
     * weights (projections, FFNs, and the vocab-sharded LM head)
     * partition across the shards, so their group total is independent
     * of the degree; the token-embedding table is replicated on every
     * shard (the lookup must be local), so its bytes scale with nGpus.
     * This — not the raw once-counted parameter bytes — is what the
     * serving engine subtracts from the HBM budget before carving the
     * block pool, so nGpus > 1 replicas do not over-pledge.
     */
    Bytes weightFootprint(const ModelConfig &model) const;

    /**
     * Memory a single request pins at @p seq_len cached tokens:
     * recurrent state + KV cache + transient activations, excluding the
     * (request-independent) weights. This is the unit the serving
     * engine's admission control reserves against the HBM budget.
     */
    Bytes requestFootprint(const ModelConfig &model,
                           uint64_t seq_len) const;

    const SystemConfig &system() const { return sys; }

    /**
     * Switch the GPU<->PIM execution mode. The serving engine calls
     * this when EngineConfig overrides the replica's mode; all
     * subsequent step costs use the new mode.
     */
    void setExecutionMode(ExecutionMode mode) { sys.executionMode = mode; }

  private:
    void runOp(const OpSpec &op, StepResult &acc) const;
    void addGpuCost(OpClass cls, const GpuKernelCost &cost,
                    StepResult &acc) const;

    SystemConfig sys;
    GpuKernelModel gpuModel;
    std::optional<PimComputeModel> pimModel;
};

} // namespace pimba

#endif // PIMBA_SIM_SERVING_SIM_H
