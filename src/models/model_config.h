/**
 * @file
 * Model zoo: the six evaluated LLM architectures (Section 6.1) with
 * small-scale presets and the paper's 70B scaling rule, plus per-token
 * operator-graph generation for the generation (decode) phase.
 *
 * Architectures: RetNet, GLA, HGRN2, Mamba-2 (SU-LLMs, 2.7B), Zamba2
 * (7B hybrid, one attention layer per six Mamba-2 layers) and OPT
 * (attention-based, 6.7B "7B"). Hyper-parameters follow the public
 * checkpoints where the paper names them and standard conventions where
 * it does not; parameter counts land within a few percent of nominal.
 */

#ifndef PIMBA_MODELS_MODEL_CONFIG_H
#define PIMBA_MODELS_MODEL_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/units.h"
#include "pim/data_layout.h"

namespace pimba {

/** Layer families a model can stack. */
enum class LayerKind
{
    StateUpdateLayer, ///< linear attention / SSM / gated RNN block
    AttentionLayer,   ///< softmax attention block
};

/** Sub-families of the state-update layer (affects extra ops). */
enum class SuVariant
{
    RetNet, ///< scalar decay, swiglu FFN
    GLA,    ///< gating vector (low-rank), swiglu FFN
    HGRN2,  ///< forget-gate vector RNN, swiglu FFN
    Mamba2, ///< selective SSM: causal conv + discretization, no FFN
    None,   ///< attention-only model
};

/** Operation classes of the paper's latency/energy breakdowns. */
enum class OpClass
{
    StateUpdate,
    Attention,
    Discretization,
    CausalConv,
    GEMM,
    Communication,
    Others,
};

/** Breakdown label matching the paper's figure legends. */
std::string opClassName(OpClass cls);

/** One operation of a generation step (per token, whole model shard). */
struct OpSpec
{
    OpClass cls;
    double flops = 0.0;    ///< floating point work
    Bytes memBytes{0.0}; ///< HBM traffic when executed on the GPU
    /** Valid when cls == StateUpdate. */
    StateUpdateShape su{};
    /** Valid when cls == Attention. */
    AttentionShape attn{};
    /** Softmax / accumulation GPU work between PIM attention phases. */
    double hostFlops = 0.0;
    Bytes hostBytes{0.0};
};

/** Full architectural description of one model. */
struct ModelConfig
{
    std::string name;
    SuVariant variant = SuVariant::None;

    int layers = 32;        ///< total blocks
    int attnEvery = 0;      ///< 0: none; 1: all attention; k: every k-th
    int dModel = 2560;

    // State-update path geometry.
    int suHeads = 0;
    int dimHead = 0;   ///< per-head q/k/decay dimension
    int dimState = 0;  ///< per-head value/state dimension

    // Attention path geometry.
    int attnHeads = 0;
    int attnDimHead = 0;

    int ffnDim = 0;        ///< swiglu inner dim (0: no FFN, e.g. Mamba-2)
    int convKernel = 0;    ///< causal conv width (Mamba-2 family)
    int nGroups = 8;       ///< Mamba-2 B/C groups
    int vocab = 50272;

    /** Number of attention blocks in the stack. */
    int attentionLayers() const;
    /** Number of state-update blocks in the stack. */
    int stateUpdateLayers() const;

    /** Weight parameter count (embeddings included once). */
    double paramCount() const;

    /** Per-layer weight count of the state-update block. */
    double suLayerParams() const;
    /** Per-layer weight count of the attention block. */
    double attnLayerParams() const;

    /** Per-request state bytes at the given storage width. */
    double stateBytes(double bytes_per_value) const;
    /** Per-request, per-token KV-cache bytes at the given width. */
    double kvBytesPerToken(double bytes_per_value) const;
};

/** 2.7B-class presets (Section 6.1). */
ModelConfig retnet2p7b();
ModelConfig gla2p7b();
ModelConfig hgrn2_2p7b();
ModelConfig mamba2_2p7b();
/** 7B-class presets. */
ModelConfig zamba2_7b();
ModelConfig opt7b();
/** 2.7B transformer used by Fig. 1(a). */
ModelConfig opt2p7b();

/**
 * Scale a model to ~@p target_params following Section 6.1: scale layers
 * and hidden dimension proportionally, keep the head count, and realign
 * dimHead (and attention head dim) with the scaled hidden size.
 */
ModelConfig scaleModel(const ModelConfig &base, double target_params);

/** The six models of Figs. 12-14, small scale. */
std::vector<ModelConfig> evaluationModels();
/** The same six models scaled to ~70B. */
std::vector<ModelConfig> evaluationModels70b();

/**
 * Operator graph of one generation step (one token for every request in
 * the batch) on one tensor-parallel shard.
 *
 * @param batch Requests in the batch.
 * @param seq_len Current sequence position (attention cache length).
 * @param tp_degree Tensor-parallel shard count (heads are split).
 */
std::vector<OpSpec> generationStepOps(const ModelConfig &model,
                                      int batch, uint64_t seq_len,
                                      int tp_degree = 1);

/**
 * generationStepOps() into a caller-owned vector (cleared first), so a
 * hot caller can reuse one buffer across steps. The per-layer op
 * sequence of a stack is independent of the layer index, so the body is
 * built once per layer family and replicated — identical OpSpecs, not
 * re-derived ones — for the remaining layers.
 */
void generationStepOpsInto(const ModelConfig &model, int batch,
                           uint64_t seq_len, int tp_degree,
                           std::vector<OpSpec> &ops);

} // namespace pimba

#endif // PIMBA_MODELS_MODEL_CONFIG_H
