#include "models/model_config.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"
#include "core/units.h"

namespace pimba {

std::string
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::StateUpdate: return "StateUpdate";
      case OpClass::Attention: return "Attention";
      case OpClass::Discretization: return "Discretization";
      case OpClass::CausalConv: return "CausalConv";
      case OpClass::GEMM: return "GEMM";
      case OpClass::Communication: return "Communication";
      case OpClass::Others: return "Others";
    }
    PIMBA_PANIC("unknown op class");
}

int
ModelConfig::attentionLayers() const
{
    if (attnEvery == 0)
        return 0;
    if (attnEvery == 1)
        return layers;
    return layers / attnEvery;
}

int
ModelConfig::stateUpdateLayers() const
{
    return layers - attentionLayers();
}

double
ModelConfig::suLayerParams() const
{
    if (variant == SuVariant::None)
        return 0.0;
    double d = dModel;
    double qk_dim = static_cast<double>(suHeads) * dimHead;
    double v_dim = static_cast<double>(suHeads) * dimState;
    double ffn = 3.0 * d * ffnDim; // swiglu: gate/up/down

    switch (variant) {
      case SuVariant::RetNet:
        // Q, K projections; V and G (output gate) at the value width;
        // output projection; swiglu FFN.
        return 2.0 * d * qk_dim + 2.0 * d * v_dim + v_dim * d + ffn;
      case SuVariant::GLA:
        // Q, K; V; low-rank (rank 16) gate; output projection; FFN.
        return 2.0 * d * qk_dim + d * v_dim + (d * 16.0 + 16.0 * qk_dim) +
               v_dim * d + ffn;
      case SuVariant::HGRN2:
        // Forget gate and input at qk width, output gate and value at
        // value width, output projection; FFN.
        return 2.0 * d * qk_dim + 2.0 * d * v_dim + v_dim * d + ffn;
      case SuVariant::Mamba2: {
        // Merged in_proj -> (z, x, B, C, dt), depthwise conv, out_proj.
        double d_inner = static_cast<double>(suHeads) * dimHead;
        double conv_ch = d_inner + 2.0 * nGroups * dimState;
        double in_proj = d * (2.0 * d_inner + 2.0 * nGroups * dimState +
                              suHeads);
        return in_proj + conv_ch * convKernel + d_inner * d;
      }
      case SuVariant::None:
        break;
    }
    return 0.0;
}

double
ModelConfig::attnLayerParams() const
{
    if (attentionLayers() == 0)
        return 0.0;
    double d = dModel;
    double proj = 4.0 * d * static_cast<double>(attnHeads) * attnDimHead;
    // OPT uses a 2-matrix ReLU FFN; hybrid blocks use swiglu.
    double ffn_mats = (variant == SuVariant::None) ? 2.0 : 3.0;
    return proj + ffn_mats * d * ffnDim;
}

double
ModelConfig::paramCount() const
{
    return stateUpdateLayers() * suLayerParams() +
           attentionLayers() * attnLayerParams() +
           static_cast<double>(vocab) * dModel;
}

double
ModelConfig::stateBytes(double bytes_per_value) const
{
    return static_cast<double>(stateUpdateLayers()) * suHeads * dimHead *
           dimState * bytes_per_value;
}

double
ModelConfig::kvBytesPerToken(double bytes_per_value) const
{
    return static_cast<double>(attentionLayers()) * attnHeads *
           attnDimHead * 2.0 * bytes_per_value;
}

ModelConfig
retnet2p7b()
{
    ModelConfig m;
    m.name = "RetNet";
    m.variant = SuVariant::RetNet;
    m.layers = 32;
    m.dModel = 2560;
    m.suHeads = 10;
    m.dimHead = 256;  // qk head dim
    m.dimState = 512; // v head dim (2x qk in RetNet)
    m.ffnDim = 4352;
    return m;
}

ModelConfig
gla2p7b()
{
    ModelConfig m;
    m.name = "GLA";
    m.variant = SuVariant::GLA;
    m.layers = 32;
    m.dModel = 2560;
    m.suHeads = 4;
    m.dimHead = 320;  // dk = d/2 across 4 heads
    m.dimState = 640; // dv = d across 4 heads
    m.ffnDim = 6912;
    return m;
}

ModelConfig
hgrn2_2p7b()
{
    ModelConfig m;
    m.name = "HGRN2";
    m.variant = SuVariant::HGRN2;
    m.layers = 32;
    m.dModel = 2560;
    m.suHeads = 20;
    m.dimHead = 128;  // state expansion 128
    m.dimState = 128;
    m.ffnDim = 6912;
    return m;
}

ModelConfig
mamba2_2p7b()
{
    ModelConfig m;
    m.name = "Mamba-2";
    m.variant = SuVariant::Mamba2;
    m.layers = 64;
    m.dModel = 2560;
    m.suHeads = 80;   // d_inner = 2 * dModel, headdim 64
    m.dimHead = 64;
    m.dimState = 128;
    m.convKernel = 4;
    m.nGroups = 8;
    m.ffnDim = 0;     // Mamba-2 stacks have no separate FFN
    return m;
}

ModelConfig
zamba2_7b()
{
    ModelConfig m;
    m.name = "Zamba2";
    m.variant = SuVariant::Mamba2;
    m.layers = 77;
    m.attnEvery = 7;  // one attention block per six Mamba-2 blocks
    m.dModel = 3712;
    m.suHeads = 116;  // d_inner = 2 * dModel, headdim 64
    m.dimHead = 64;
    m.dimState = 128;
    m.convKernel = 4;
    m.nGroups = 8;
    m.attnHeads = 29;
    m.attnDimHead = 128;
    m.ffnDim = 9984;  // swiglu FFN of the attention blocks
    return m;
}

ModelConfig
opt7b()
{
    ModelConfig m;
    m.name = "OPT";
    m.variant = SuVariant::None;
    m.layers = 32;
    m.attnEvery = 1;
    m.dModel = 4096;
    m.attnHeads = 32;
    m.attnDimHead = 128;
    m.ffnDim = 16384;
    return m;
}

ModelConfig
opt2p7b()
{
    ModelConfig m = opt7b();
    m.name = "Transformer";
    m.dModel = 2560;
    m.attnHeads = 32;
    m.attnDimHead = 80;
    m.ffnDim = 10240;
    return m;
}

ModelConfig
scaleModel(const ModelConfig &base, double target_params)
{
    ModelConfig m = base;
    double params = base.paramCount();
    PIMBA_ASSERT(params > 0, "cannot scale an empty model");
    // params ~ layers * d^2; proportional scaling of layers and d gives
    // params ~ s^3 (Section 6.1, following scaling-law practice [34]).
    double s = std::cbrt(target_params / params);

    auto round_to = [](double v, int mult) {
        return std::max(mult, static_cast<int>(
            std::round(v / mult) * mult));
    };

    m.dModel = round_to(base.dModel * s, 128);
    double ds = static_cast<double>(m.dModel) / base.dModel;
    // Head counts stay fixed (increasing them can hurt perplexity,
    // Section 6.1 [80]); head and state dims realign with the hidden
    // size so each head widens proportionally.
    if (base.suHeads > 0) {
        m.dimHead = round_to(base.dimHead * ds, 16);
        m.dimState = round_to(base.dimState * ds, 16);
    }
    if (base.attnHeads > 0)
        m.attnDimHead = round_to(base.attnDimHead * ds, 16);
    if (base.ffnDim > 0)
        m.ffnDim = round_to(base.ffnDim * ds, 128);

    // Solve the layer count against the widened per-layer weights so
    // the total lands on the target (keeping the hybrid block ratio).
    double body = target_params - static_cast<double>(m.vocab) * m.dModel;
    if (base.attnEvery == 0) {
        m.layers = std::max(1, static_cast<int>(
            std::round(body / m.suLayerParams())));
    } else if (base.attnEvery == 1) {
        m.layers = std::max(1, static_cast<int>(
            std::round(body / m.attnLayerParams())));
    } else {
        double period = (base.attnEvery - 1) * m.suLayerParams() +
                        m.attnLayerParams();
        int periods = std::max(1, static_cast<int>(
            std::round(body / period)));
        m.layers = periods * base.attnEvery;
    }
    return m;
}

std::vector<ModelConfig>
evaluationModels()
{
    return {retnet2p7b(), gla2p7b(), hgrn2_2p7b(), mamba2_2p7b(),
            zamba2_7b(), opt7b()};
}

std::vector<ModelConfig>
evaluationModels70b()
{
    std::vector<ModelConfig> out;
    for (const auto &m : evaluationModels()) {
        ModelConfig big = scaleModel(m, 70e9);
        big.name = m.name;
        out.push_back(big);
    }
    return out;
}

namespace {

/** Append a GEMM op with weight streaming and activation traffic. */
void
addGemm(std::vector<OpSpec> &ops, double batch, double weights,
        double in_dim, double out_dim)
{
    OpSpec op;
    op.cls = OpClass::GEMM;
    op.flops = 2.0 * batch * weights;
    op.memBytes = Bytes(weights * 2.0 + batch * (in_dim + out_dim) * 2.0);
    ops.push_back(op);
}

} // namespace

std::vector<OpSpec>
generationStepOps(const ModelConfig &model, int batch, uint64_t seq_len,
                  int tp_degree)
{
    std::vector<OpSpec> ops;
    generationStepOpsInto(model, batch, seq_len, tp_degree, ops);
    return ops;
}

namespace {

/** Append @p copies copies of the ops from @p first to the end. */
void
replicateOps(std::vector<OpSpec> &ops, size_t first, int copies)
{
    size_t per_layer = ops.size() - first;
    ops.reserve(ops.size() + per_layer * static_cast<size_t>(copies));
    for (int c = 0; c < copies; ++c)
        for (size_t i = 0; i < per_layer; ++i)
            ops.push_back(ops[first + i]);
}

} // namespace

void
generationStepOpsInto(const ModelConfig &model, int batch,
                      uint64_t seq_len, int tp_degree,
                      std::vector<OpSpec> &ops)
{
    ops.clear();
    const double b = batch;
    const double d = model.dModel;
    const int tp = std::max(1, tp_degree);

    const int su_layers = model.stateUpdateLayers();
    const int attn_layers = model.attentionLayers();

    // --- State-update blocks ---
    if (su_layers > 0) {
        double heads = static_cast<double>(model.suHeads) / tp;
        uint64_t inst = ceilDiv<uint64_t>(
            static_cast<uint64_t>(batch) * model.suHeads,
            static_cast<uint64_t>(tp));
        double qk_dim = heads * model.dimHead;
        double v_dim = heads * model.dimState;
        double d_inner = qk_dim; // Mamba-2 naming

        // The block's op sequence does not depend on the layer index —
        // every stacked block is architecturally identical — so one
        // layer is built and the rest are copies (replicateOps below).
        size_t first = ops.size();
        {
            // Input projections (q/k/v/decay or merged in_proj).
            double proj_w = 0.0;
            double out_w = 0.0;
            switch (model.variant) {
              case SuVariant::RetNet:
              case SuVariant::HGRN2:
                proj_w = 2.0 * d * qk_dim + 2.0 * d * v_dim;
                out_w = v_dim * d;
                break;
              case SuVariant::GLA:
                proj_w = 2.0 * d * qk_dim + d * v_dim +
                         (d * 16.0 + 16.0 * qk_dim);
                out_w = v_dim * d;
                break;
              case SuVariant::Mamba2:
                proj_w = d * (2.0 * d_inner +
                              2.0 * model.nGroups * model.dimState +
                              heads);
                out_w = d_inner * d;
                break;
              case SuVariant::None:
                PIMBA_PANIC("state-update layer in attention-only model");
            }
            addGemm(ops, b, proj_w, d, proj_w / d);

            if (model.variant == SuVariant::Mamba2) {
                // Depthwise causal conv over x/B/C channels: the rolling
                // conv window is read and written per token.
                double ch = d_inner + 2.0 * model.nGroups * model.dimState;
                OpSpec conv;
                conv.cls = OpClass::CausalConv;
                conv.flops = 2.0 * b * ch * model.convKernel;
                conv.memBytes = Bytes(b * ch * 2.0 * model.convKernel + b * ch * 4.0);
                ops.push_back(conv);

                // Discretization: dt softplus, a = exp(dt * A), dt * x.
                OpSpec disc;
                disc.cls = OpClass::Discretization;
                disc.flops = 8.0 * b * d_inner;
                disc.memBytes = Bytes(4.0 * b * d_inner * 2.0);
                ops.push_back(disc);
            }

            // The state update itself (Eq. 2).
            OpSpec su;
            su.cls = OpClass::StateUpdate;
            su.su.instances = inst;
            su.su.dimHead = model.dimHead;
            su.su.dimState = model.dimState;
            double state_vals = static_cast<double>(inst) *
                                model.dimHead * model.dimState;
            su.flops = 6.0 * state_vals;
            su.memBytes = Bytes(2.0 * state_vals * 2.0 +
                          static_cast<double>(inst) *
                              (3.0 * model.dimHead +
                               2.0 * model.dimState) * 2.0);
            ops.push_back(su);

            // Output projection + FFN.
            addGemm(ops, b, out_w, v_dim, d);
            if (model.ffnDim > 0) {
                double ffn_w = 3.0 * d * (model.ffnDim / tp);
                addGemm(ops, b, ffn_w, d, model.ffnDim / tp);
            }

            // Norms, residuals, activation glue.
            OpSpec others;
            others.cls = OpClass::Others;
            others.flops = 10.0 * b * d;
            others.memBytes = Bytes(6.0 * b * d * 2.0);
            ops.push_back(others);

            if (tp > 1) {
                OpSpec comm;
                comm.cls = OpClass::Communication;
                // All-reduce after the mixer and (if present) the FFN.
                comm.memBytes = Bytes((model.ffnDim > 0 ? 2.0 : 1.0) * b * d * 2.0);
                ops.push_back(comm);
            }
        }
        replicateOps(ops, first, su_layers - 1);
    }

    // --- Attention blocks ---
    if (attn_layers > 0) {
        double heads = static_cast<double>(model.attnHeads) / tp;
        uint64_t inst = ceilDiv<uint64_t>(
            static_cast<uint64_t>(batch) * model.attnHeads,
            static_cast<uint64_t>(tp));
        double attn_dim = heads * model.attnDimHead;

        size_t first = ops.size();
        {
            addGemm(ops, b, 3.0 * d * attn_dim, d, 3.0 * attn_dim);

            OpSpec at;
            at.cls = OpClass::Attention;
            at.attn.instances = inst;
            at.attn.dimHead = model.attnDimHead;
            at.attn.seqLen = seq_len;
            double kv_vals = static_cast<double>(at.attn.instances) *
                             static_cast<double>(seq_len) *
                             model.attnDimHead;
            at.flops = 4.0 * kv_vals;          // score + attend MACs
            at.memBytes = Bytes(2.0 * kv_vals * 2.0); // K and V reads (fp16)
            at.hostFlops = 5.0 *
                           static_cast<double>(at.attn.instances) *
                           static_cast<double>(seq_len); // softmax
            at.hostBytes =
                Bytes(4.0 * static_cast<double>(at.attn.instances) *
                      static_cast<double>(seq_len));
            ops.push_back(at);

            addGemm(ops, b, attn_dim * d, attn_dim, d);
            if (model.ffnDim > 0) {
                double mats = (model.variant == SuVariant::None) ? 2.0
                                                                 : 3.0;
                double ffn_w = mats * d * (model.ffnDim / tp);
                addGemm(ops, b, ffn_w, d, model.ffnDim / tp);
            }

            OpSpec others;
            others.cls = OpClass::Others;
            others.flops = 10.0 * b * d;
            others.memBytes = Bytes(6.0 * b * d * 2.0);
            ops.push_back(others);

            if (tp > 1) {
                OpSpec comm;
                comm.cls = OpClass::Communication;
                comm.memBytes = Bytes(2.0 * b * d * 2.0);
                ops.push_back(comm);
            }
        }
        replicateOps(ops, first, attn_layers - 1);
    }

    // LM head (sharded along vocab) + embedding glue.
    addGemm(ops, b, static_cast<double>(model.vocab) * d / tp, d,
            static_cast<double>(model.vocab) / tp);
    OpSpec embed;
    embed.cls = OpClass::Others;
    embed.flops = b * d;
    embed.memBytes = Bytes(b * d * 4.0);
    ops.push_back(embed);
}

} // namespace pimba
