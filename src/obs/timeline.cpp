#include "obs/timeline.h"

#include <cstdio>

#include "core/logging.h"

namespace pimba {

namespace {

std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

std::string
csvEscape(const std::string &s)
{
    // Track labels are simple run descriptions; commas are the only
    // character that could break the column structure.
    std::string out;
    out.reserve(s.size());
    for (char c : s)
        out.push_back(c == ',' ? ';' : c);
    return out;
}

} // namespace

int
TimelineSampler::registerTrack(const std::string &label)
{
    labels.push_back(label);
    nextDue.push_back(Seconds(0.0));
    return static_cast<int>(labels.size()) - 1;
}

void
TimelineSampler::sample(int track, Seconds now, uint64_t queueDepth,
                        uint64_t outstandingTokens, uint64_t running,
                        double blockUtil)
{
    PIMBA_ASSERT(track >= 0 &&
                     static_cast<size_t>(track) < labels.size(),
                 "timeline sample on unregistered track ", track);
    if (now < nextDue[static_cast<size_t>(track)])
        return;
    record(track, now, queueDepth, outstandingTokens, running,
           blockUtil);
    nextDue[static_cast<size_t>(track)] =
        interval > Seconds(0.0) ? now + interval : now;
}

void
TimelineSampler::record(int track, Seconds now, uint64_t queueDepth,
                        uint64_t outstandingTokens, uint64_t running,
                        double blockUtil)
{
    PIMBA_ASSERT(track >= 0 &&
                     static_cast<size_t>(track) < labels.size(),
                 "timeline record on unregistered track ", track);
    TimelineRow row;
    row.track = track;
    row.time = now;
    row.queueDepth = queueDepth;
    row.outstandingTokens = outstandingTokens;
    row.running = running;
    row.blockUtil = blockUtil;
    samples.push_back(row);
}

std::string
TimelineSampler::renderCsv() const
{
    std::string out = "time_s,track,label,queue_depth,"
                      "outstanding_tokens,running,block_util\n";
    for (const TimelineRow &r : samples) {
        out += num(r.time.value());
        out += ",";
        out += std::to_string(r.track);
        out += ",";
        out += csvEscape(labels[static_cast<size_t>(r.track)]);
        out += ",";
        out += std::to_string(r.queueDepth);
        out += ",";
        out += std::to_string(r.outstandingTokens);
        out += ",";
        out += std::to_string(r.running);
        out += ",";
        out += num(r.blockUtil);
        out += "\n";
    }
    return out;
}

std::string
TimelineSampler::renderJson() const
{
    std::string out = "[\n";
    for (size_t i = 0; i < samples.size(); ++i) {
        const TimelineRow &r = samples[i];
        std::string label = labels[static_cast<size_t>(r.track)];
        std::string escaped;
        for (char c : label) {
            if (c == '"' || c == '\\')
                escaped.push_back('\\');
            escaped.push_back(c);
        }
        out += "{\"time_s\":" + num(r.time.value()) +
               ",\"track\":" + std::to_string(r.track) + ",\"label\":\"" +
               escaped + "\",\"queue_depth\":" +
               std::to_string(r.queueDepth) + ",\"outstanding_tokens\":" +
               std::to_string(r.outstandingTokens) + ",\"running\":" +
               std::to_string(r.running) + ",\"block_util\":" +
               num(r.blockUtil) + "}";
        out += i + 1 < samples.size() ? ",\n" : "\n";
    }
    out += "]\n";
    return out;
}

} // namespace pimba
