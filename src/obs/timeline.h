/**
 * @file
 * Periodic timeline sampler: records queue depth, outstanding tokens,
 * resident batch size, and block-pool utilization per engine (replica)
 * at a configurable simulated-time cadence, and renders the series as
 * CSV or JSON — the observed load/SLO signal series the roadmap's
 * autoscaler studies will train and act on.
 *
 * Like the tracer, the sampler is passive: call sites hold a
 * `TimelineSampler *` and skip sampling entirely when it is null, so
 * a disabled timeline costs nothing on the engine's hot path. Each
 * engine registers one track (a label + dense id) and the sampler
 * gates recording per track, so interleaved fleets sample cleanly on
 * one shared sampler.
 */

#ifndef PIMBA_OBS_TIMELINE_H
#define PIMBA_OBS_TIMELINE_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/units.h"

namespace pimba {

/** One sampled point of one track. */
struct TimelineRow
{
    int track = 0;           ///< dense track id (registration order)
    Seconds time;            ///< simulated time of the sample
    uint64_t queueDepth = 0; ///< waiting + resident requests
    uint64_t outstandingTokens = 0; ///< unserved prompt+output tokens
    uint64_t running = 0;    ///< requests resident in the batch
    double blockUtil = 0.0;  ///< fraction of the block pool allocated
};

/** Cadence-gated multi-track load sampler (see file comment). */
class TimelineSampler
{
  public:
    /** @p interval_ minimum simulated time between samples per track
     *  (non-positive records every offered sample). */
    explicit TimelineSampler(Seconds interval_) : interval(interval_) {}

    /** Register a track (an engine / replica). @p label lands in the
     *  rendered output; returns the dense track id to sample with. */
    int registerTrack(const std::string &label);

    /** Offer one sample for @p track at simulated time @p now; it is
     *  recorded when the track's cadence is due. Engines call this
     *  once per iteration — the gate keeps the series at the
     *  configured density regardless of iteration length. */
    void sample(int track, Seconds now, uint64_t queueDepth,
                uint64_t outstandingTokens, uint64_t running,
                double blockUtil);

    /** Record unconditionally (run-final state, cadence ignored). */
    void record(int track, Seconds now, uint64_t queueDepth,
                uint64_t outstandingTokens, uint64_t running,
                double blockUtil);

    const std::vector<TimelineRow> &rows() const { return samples; }
    const std::string &trackLabel(int track) const
    {
        return labels[static_cast<size_t>(track)];
    }
    size_t trackCount() const { return labels.size(); }
    Seconds sampleInterval() const { return interval; }

    /** time_s,track,label,queue_depth,outstanding_tokens,running,
     *  block_util — one row per sample, recording order. */
    std::string renderCsv() const;
    /** The same series as a JSON array of objects. */
    std::string renderJson() const;

  private:
    Seconds interval;
    std::vector<std::string> labels;
    std::vector<Seconds> nextDue; ///< per track
    std::vector<TimelineRow> samples;
};

} // namespace pimba

#endif // PIMBA_OBS_TIMELINE_H
