/**
 * @file
 * Event tracer for the observability subsystem: records per-request
 * lifecycle events and per-iteration phase slices from the serving
 * engine and the cluster fleet, and exports them as Chrome trace-event
 * JSON (the `traceEvents` array format) loadable in Perfetto or
 * chrome://tracing.
 *
 * Track layout convention (docs/observability.md):
 *
 *  - pid: one "process" per engine run — a replica in a fleet, or one
 *    (system, policy, mode, rate) run of a serving study. pid 0 is
 *    reserved for fleet-global tracks (the interconnect).
 *  - tid: tracks inside a process. The engine uses tid 1 for the
 *    iteration slices, tids 2/3/4 for the gpu/pim/sync phase lanes
 *    (overlapped mode runs gpu and pim concurrently, so they need
 *    separate lanes), and one lane per request above
 *    kRequestLaneBase.
 *
 * The tracer itself is a passive recorder: the zero-overhead-when-
 * disabled guarantee lives at the call sites, which hold a `Tracer *`
 * and skip every recording (and every phase-decomposition lookup)
 * when it is null. Timestamps are microseconds of simulated time.
 *
 * Event kinds map 1:1 onto trace-event phases: complete() -> "X",
 * begin()/end() -> "B"/"E" (must nest per (pid, tid)), instant() ->
 * "i", counter() -> "C", and the process/thread name metadata -> "M".
 * renderJson() emits metadata first, then all events stably sorted by
 * timestamp, so the output is globally monotonic — the property the
 * CI trace validator (tools/check_trace.py) checks.
 */

#ifndef PIMBA_OBS_TRACER_H
#define PIMBA_OBS_TRACER_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/units.h"

namespace pimba {

/// Engine-internal trace tracks (tids) within one engine's pid.
constexpr int kTraceIterTid = 1; ///< iteration slices
constexpr int kTraceGpuTid = 2;  ///< GPU phase of each substep
constexpr int kTracePimTid = 3;  ///< PIM phase of each substep
constexpr int kTraceSyncTid = 4; ///< GPU<->PIM synchronization phase

/// First tid of the per-request lanes (below it: engine phase tracks).
constexpr int kRequestLaneBase = 100;

/// Lane tid of one request id (one Perfetto track per request).
constexpr int
requestLane(uint64_t id)
{
    return kRequestLaneBase + static_cast<int>(id);
}

/** Chrome-trace-event recorder (see file comment for the layout). */
class Tracer
{
  public:
    /// Small named-number argument list attached to an event.
    using Args = std::vector<std::pair<std::string, double>>;

    /// "M" process_name metadata for @p pid.
    void processName(int pid, const std::string &name);
    /// "M" thread_name metadata for (@p pid, @p tid).
    void threadName(int pid, int tid, const std::string &name);

    /// "X" complete slice of @p dur at @p ts.
    void complete(int pid, int tid, Seconds ts, Seconds dur,
                  const std::string &name, const std::string &cat,
                  Args args = {});
    /// "B" begin; every begin must be closed by end() on the same
    /// (pid, tid), nested like a call stack.
    void begin(int pid, int tid, Seconds ts, const std::string &name,
               const std::string &cat, Args args = {});
    /// "E" end of the innermost open begin() on (pid, tid).
    void end(int pid, int tid, Seconds ts);
    /// "i" instant (thread scope).
    void instant(int pid, int tid, Seconds ts, const std::string &name,
                 const std::string &cat, Args args = {});
    /// "C" counter sample; each @p name renders as a counter track.
    void counter(int pid, Seconds ts, const std::string &name,
                 double value);

    /// Events recorded so far (name metadata not counted).
    size_t eventCount() const { return events.size(); }

    /// The trace document: {"traceEvents": [...], "displayTimeUnit"}.
    /// Metadata first, then events stably sorted by timestamp.
    std::string renderJson() const;

    /// renderJson() to @p path; false when the file cannot be written.
    bool writeFile(const std::string &path) const;

  private:
    struct Event
    {
        char ph = 'X';
        int pid = 0;
        int tid = 0;
        double tsUs = 0.0;  ///< microseconds of simulated time
        double durUs = 0.0; ///< "X" only
        std::string name;
        std::string cat;
        std::string argsJson; ///< pre-rendered {"k":v,...}, may be empty
    };

    void push(Event e);
    static std::string renderArgs(const Args &args);

    std::vector<Event> events;   ///< non-metadata, insertion order
    std::vector<Event> metadata; ///< "M" events
};

} // namespace pimba

#endif // PIMBA_OBS_TRACER_H
