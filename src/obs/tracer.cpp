#include "obs/tracer.h"

#include <algorithm>
#include <cstdio>

namespace pimba {

namespace {

/** Minimal JSON string escaping (names are ASCII by construction). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

std::string
jsonNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

double
toUs(Seconds s)
{
    return s.value() * 1e6;
}

} // namespace

std::string
Tracer::renderArgs(const Args &args)
{
    if (args.empty())
        return "";
    std::string out = "{";
    for (size_t i = 0; i < args.size(); ++i) {
        if (i)
            out += ",";
        out += "\"" + jsonEscape(args[i].first) +
               "\":" + jsonNumber(args[i].second);
    }
    out += "}";
    return out;
}

void
Tracer::push(Event e)
{
    events.push_back(std::move(e));
}

void
Tracer::processName(int pid, const std::string &name)
{
    Event e;
    e.ph = 'M';
    e.pid = pid;
    e.tid = 0;
    e.name = "process_name";
    e.argsJson = "{\"name\":\"" + jsonEscape(name) + "\"}";
    metadata.push_back(std::move(e));
}

void
Tracer::threadName(int pid, int tid, const std::string &name)
{
    Event e;
    e.ph = 'M';
    e.pid = pid;
    e.tid = tid;
    e.name = "thread_name";
    e.argsJson = "{\"name\":\"" + jsonEscape(name) + "\"}";
    metadata.push_back(std::move(e));
}

void
Tracer::complete(int pid, int tid, Seconds ts, Seconds dur,
                 const std::string &name, const std::string &cat,
                 Args args)
{
    Event e;
    e.ph = 'X';
    e.pid = pid;
    e.tid = tid;
    e.tsUs = toUs(ts);
    e.durUs = toUs(dur);
    e.name = name;
    e.cat = cat;
    e.argsJson = renderArgs(args);
    push(std::move(e));
}

void
Tracer::begin(int pid, int tid, Seconds ts, const std::string &name,
              const std::string &cat, Args args)
{
    Event e;
    e.ph = 'B';
    e.pid = pid;
    e.tid = tid;
    e.tsUs = toUs(ts);
    e.name = name;
    e.cat = cat;
    e.argsJson = renderArgs(args);
    push(std::move(e));
}

void
Tracer::end(int pid, int tid, Seconds ts)
{
    Event e;
    e.ph = 'E';
    e.pid = pid;
    e.tid = tid;
    e.tsUs = toUs(ts);
    push(std::move(e));
}

void
Tracer::instant(int pid, int tid, Seconds ts, const std::string &name,
                const std::string &cat, Args args)
{
    Event e;
    e.ph = 'i';
    e.pid = pid;
    e.tid = tid;
    e.tsUs = toUs(ts);
    e.name = name;
    e.cat = cat;
    e.argsJson = renderArgs(args);
    push(std::move(e));
}

void
Tracer::counter(int pid, Seconds ts, const std::string &name,
                double value)
{
    Event e;
    e.ph = 'C';
    e.pid = pid;
    e.tid = 0;
    e.tsUs = toUs(ts);
    e.name = name;
    e.argsJson = "{\"value\":" + jsonNumber(value) + "}";
    push(std::move(e));
}

std::string
Tracer::renderJson() const
{
    // Stable sort by timestamp: per-(pid, tid) insertion order is
    // preserved, so B/E nesting survives while the stream becomes
    // globally monotonic (what the CI validator checks).
    std::vector<const Event *> ordered;
    ordered.reserve(events.size());
    for (const Event &e : events)
        ordered.push_back(&e);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const Event *a, const Event *b) {
                         return a->tsUs < b->tsUs;
                     });

    std::string out = "{\n\"displayTimeUnit\": \"ms\",\n"
                      "\"traceEvents\": [\n";
    bool first = true;
    auto emit = [&](const Event &e, bool meta) {
        if (!first)
            out += ",\n";
        first = false;
        out += "{\"ph\":\"";
        out.push_back(e.ph);
        out += "\",\"pid\":" + std::to_string(e.pid) +
               ",\"tid\":" + std::to_string(e.tid);
        if (!meta) {
            out += ",\"ts\":" + jsonNumber(e.tsUs);
            if (e.ph == 'X')
                out += ",\"dur\":" + jsonNumber(e.durUs);
        }
        if (!e.name.empty())
            out += ",\"name\":\"" + jsonEscape(e.name) + "\"";
        if (!e.cat.empty())
            out += ",\"cat\":\"" + jsonEscape(e.cat) + "\"";
        if (e.ph == 'i')
            out += ",\"s\":\"t\"";
        if (!e.argsJson.empty())
            out += ",\"args\":" + e.argsJson;
        out += "}";
    };
    for (const Event &e : metadata)
        emit(e, /*meta=*/true);
    for (const Event *e : ordered)
        emit(*e, /*meta=*/false);
    out += "\n]\n}\n";
    return out;
}

bool
Tracer::writeFile(const std::string &path) const
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::string json = renderJson();
    size_t written = std::fwrite(json.data(), 1, json.size(), f);
    int rc = std::fclose(f);
    return written == json.size() && rc == 0;
}

} // namespace pimba
