/**
 * @file
 * Observability configuration: which of the three telemetry surfaces
 * (event tracer, timeline sampler, streaming metrics) a run enables
 * and where file-emitting surfaces write. Carried on a Scenario
 * (parsed from the `"observability"` JSON block of serving and fleet
 * scenarios — docs/scenarios.md) and overridable from the pimba CLI
 * (`--trace`, `--timeline`, `--stream-metrics`).
 *
 * The default-constructed config disables everything; with it, runs
 * are byte-identical to a build without the observability layer (the
 * goldens in tests/golden/ pin this).
 */

#ifndef PIMBA_OBS_OBSERVABILITY_H
#define PIMBA_OBS_OBSERVABILITY_H

#include <string>

#include "core/units.h"

namespace pimba {

/// Timeline file format.
enum class TimelineFormat
{
    Csv,
    Json,
};

/// Per-run observability switches (all off by default).
struct ObservabilityConfig
{
    /// Derive the report's displayed metrics through the streaming
    /// sketch collectors instead of the exact sample-vector path.
    bool streamMetrics = false;
    /// Non-empty: write a Chrome trace-event JSON file here.
    std::string tracePath;
    /// Non-empty: write the sampled load timeline here.
    std::string timelinePath;
    TimelineFormat timelineFormat = TimelineFormat::Csv;
    /// Minimum simulated time between timeline samples per replica.
    Seconds timelineInterval{0.05};

    bool tracing() const { return !tracePath.empty(); }
    bool timelining() const { return !timelinePath.empty(); }
    bool enabled() const
    {
        return streamMetrics || tracing() || timelining();
    }
};

} // namespace pimba

#endif // PIMBA_OBS_OBSERVABILITY_H
