/**
 * @file
 * Experiment drivers for the accuracy studies: WikiText-2-style
 * perplexity (Fig. 4, Fig. 6, Table 2 first column) and the
 * multiple-choice task suite (Table 2).
 */

#ifndef PIMBA_ACCURACY_EVALUATE_H
#define PIMBA_ACCURACY_EVALUATE_H

#include <string>
#include <vector>

#include "accuracy/tiny_lm.h"

namespace pimba {

/** Models evaluated in the accuracy studies, in paper order. */
struct AccuracyModel
{
    std::string name;
    TinyLmConfig cfg;
};

/** RetNet, GLA, HGRN2, Mamba-2, Zamba2, OPT (plus LLaMA for Fig. 4). */
std::vector<AccuracyModel> accuracyModels();

/** Perplexity of @p model's synthetic WikiText-2 stand-in under @p spec.
 *  @param seq_len Evaluated stream length (default mirrors one context
 *  window; longer streams sharpen the swamping separation). */
double evalPerplexity(const AccuracyModel &model, const QuantSpec &spec,
                      size_t seq_len = 384);

/** One multiple-choice benchmark's synthetic stand-in. */
struct TaskSpec
{
    std::string name;
    int numOptions = 4;   ///< candidate continuations per question
    int promptLen = 24;   ///< prompt tokens
    int contLen = 8;      ///< continuation tokens
    double distractorTemp = 1.6; ///< higher = easier distractors
    int trials = 60;      ///< questions per evaluation
};

/** Piqa, Lambada, HellaSwag, ARC-E, ARC-C, WinoGrande stand-ins. */
std::vector<TaskSpec> accuracyTasks();

/**
 * Accuracy (%) of @p model on @p task: the true continuation is sampled
 * from the teacher at low temperature, distractors at high temperature;
 * the model under @p spec must rank the true one highest by total
 * log-probability.
 */
double evalTaskAccuracy(const AccuracyModel &model, const TaskSpec &task,
                        const QuantSpec &spec);

/** Geometric mean of task accuracies (the paper's Geomean column). */
double geomean(const std::vector<double> &values);

} // namespace pimba

#endif // PIMBA_ACCURACY_EVALUATE_H
