#include "accuracy/evaluate.h"

#include <cmath>

#include "core/logging.h"

namespace pimba {

std::vector<AccuracyModel>
accuracyModels()
{
    std::vector<AccuracyModel> out;
    out.push_back({"RetNet",
                   TinyLmConfig::forModel(SuVariant::RetNet)});
    out.push_back({"GLA", TinyLmConfig::forModel(SuVariant::GLA)});
    out.push_back({"HGRN2", TinyLmConfig::forModel(SuVariant::HGRN2)});
    out.push_back({"Mamba-2",
                   TinyLmConfig::forModel(SuVariant::Mamba2)});
    out.push_back({"Zamba2",
                   TinyLmConfig::forModel(SuVariant::Mamba2, true)});
    out.push_back({"OPT",
                   TinyLmConfig::forModel(SuVariant::None, false, true)});
    // Distinct seeds so the "models" are independent draws.
    for (size_t i = 0; i < out.size(); ++i)
        out[i].cfg.seed = static_cast<uint32_t>(17 + 13 * i);
    return out;
}

double
evalPerplexity(const AccuracyModel &model, const QuantSpec &spec,
               size_t seq_len)
{
    TinyLm lm(model.cfg);
    std::vector<int> stream = lm.sampleStream(seq_len, 0.7,
                                              model.cfg.seed + 100);
    return lm.perplexity(stream, spec);
}

std::vector<TaskSpec>
accuracyTasks()
{
    // Option counts / lengths loosely mirror the real benchmarks
    // (Piqa 2-way, Lambada last-word, HellaSwag 4-way endings,
    // ARC 4-way, WinoGrande 2-way); difficulty is set via the
    // distractor temperature so the fp64 baselines land in the
    // 45-80 % band the paper reports.
    return {
        {"Piqa", 2, 24, 8, 1.8, 40},
        {"Lambada", 4, 32, 2, 1.6, 40},
        {"HellaSwag", 4, 24, 10, 1.4, 40},
        {"ARC-E", 4, 16, 6, 2.0, 40},
        {"ARC-C", 4, 16, 6, 1.1, 40},
        {"WinoGrande", 2, 20, 6, 1.3, 40},
    };
}

double
evalTaskAccuracy(const AccuracyModel &model, const TaskSpec &task,
                 const QuantSpec &spec)
{
    TinyLm lm(model.cfg);
    int correct = 0;
    for (int trial = 0; trial < task.trials; ++trial) {
        uint32_t base = model.cfg.seed * 1000 + trial * 7 + 3;
        // One long teacher sample provides the prompt plus the true
        // continuation; distractors are independent high-temperature
        // continuations of the same prompt re-sampled from scratch.
        std::vector<int> full = lm.sampleStream(
            static_cast<size_t>(task.promptLen + task.contLen), 0.5,
            base);
        std::vector<int> prompt(full.begin(),
                                full.begin() + task.promptLen);
        std::vector<int> truth(full.begin() + task.promptLen, full.end());

        double best = lm.continuationLogProb(prompt, truth, spec);
        bool truth_wins = true;
        Lfsr32 rng(base * 2246822519u + 5u);
        // Distractors are near-miss perturbations of the true
        // continuation: a few token positions replaced. Harder tasks
        // (lower distractorTemp) perturb fewer positions, so the model
        // must resolve finer log-probability differences — which is
        // exactly what a corrupted state blurs.
        int swaps = std::max(1, static_cast<int>(std::round(
            static_cast<double>(truth.size()) * task.distractorTemp /
            4.0)));
        for (int o = 1; o < task.numOptions; ++o) {
            std::vector<int> distractor = truth;
            for (int sw = 0; sw < swaps; ++sw) {
                // Replace with an in-distribution token drawn from the
                // same teacher stream, so distractors are plausible and
                // only resolvable through the context in the state.
                size_t pos = rng.next() % distractor.size();
                distractor[pos] = full[rng.next() % full.size()];
            }
            double lp = lm.continuationLogProb(prompt, distractor, spec);
            if (lp >= best) {
                truth_wins = false;
                break;
            }
        }
        if (truth_wins)
            ++correct;
    }
    return 100.0 * correct / static_cast<double>(task.trials);
}

double
geomean(const std::vector<double> &values)
{
    PIMBA_ASSERT(!values.empty(), "geomean of nothing");
    double acc = 0.0;
    for (double v : values)
        acc += std::log(std::max(v, 1e-9));
    return std::exp(acc / static_cast<double>(values.size()));
}

} // namespace pimba
