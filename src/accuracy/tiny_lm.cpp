#include "accuracy/tiny_lm.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace pimba {

namespace {

/** Scale applied to the tied-embedding logits (sharpens the softmax so
 *  teacher streams are predictable and baseline perplexity is low). */
constexpr double kLogitScale = 6.0;

/** RMS-normalize a vector in place. */
void
rmsNorm(std::vector<double> &x)
{
    double ss = 0.0;
    for (double v : x)
        ss += v * v;
    double rms = std::sqrt(ss / static_cast<double>(x.size())) + 1e-8;
    for (double &v : x)
        v /= rms;
}

double
sigmoid(double x)
{
    return 1.0 / (1.0 + std::exp(-x));
}

double
softplus(double x)
{
    if (x > 20.0)
        return x;
    return std::log1p(std::exp(x));
}

/** Fill a matrix with N(0, 1/sqrt(fan_in)) entries. */
void
randInit(Matrix &m, Lfsr32 &rng)
{
    double scale = 1.0 / std::sqrt(static_cast<double>(m.cols()));
    for (size_t r = 0; r < m.rows(); ++r)
        for (size_t c = 0; c < m.cols(); ++c)
            m(r, c) = rng.nextGaussian() * scale;
}

} // namespace

TinyLmConfig
TinyLmConfig::forModel(SuVariant variant, bool hybrid, bool attention_only)
{
    TinyLmConfig cfg;
    cfg.variant = variant;
    cfg.hybridAttention = hybrid;
    cfg.attentionOnly = attention_only;
    if (attention_only)
        cfg.variant = SuVariant::None;
    if (hybrid)
        cfg.layers = 4; // one attention layer per four blocks
    return cfg;
}

TinyLm::TinyLm(const TinyLmConfig &config)
    : cfg(config)
{
    Lfsr32 rng(cfg.seed * 2654435761u + 1u);

    embedding = Matrix(cfg.vocab, cfg.dModel);
    randInit(embedding, rng);

    int qk_dim = cfg.heads * cfg.dimHead;
    int v_dim = cfg.heads * cfg.dimState;

    weights.resize(cfg.layers);
    for (auto &lw : weights) {
        lw.wq = Matrix(qk_dim, cfg.dModel);
        lw.wk = Matrix(qk_dim, cfg.dModel);
        lw.wv = Matrix(v_dim, cfg.dModel);
        lw.wd = Matrix(qk_dim, cfg.dModel);
        lw.wo = Matrix(cfg.dModel, v_dim);
        randInit(lw.wq, rng);
        randInit(lw.wk, rng);
        randInit(lw.wv, rng);
        randInit(lw.wd, rng);
        randInit(lw.wo, rng);
        lw.headDecay.resize(cfg.heads);
        for (int h = 0; h < cfg.heads; ++h) {
            // Log-spaced decays (RetNet recipe): long- and short-memory
            // heads. The range [0.96, 0.994] puts the equilibrium
            // state-to-increment ratio between 2^4 and 2^7, i.e. beyond
            // the half-ulp of 2- and 3-bit mantissas (which swamp) but
            // within reach of the 6/7-bit mantissas of MX8 and int8 —
            // the regime Section 3.2 describes.
            double t = (h + 1.0) / (cfg.heads + 1.0);
            lw.headDecay[h] = 1.0 - std::pow(2.0, -4.6 - 2.8 * t);
        }
        // Persistent input statistics: trained models' key/value
        // projections have strong mean components per channel, so the
        // state accumulates like a long summation — the setting in
        // which swamping was originally characterized [29, 76].
        lw.biasK.resize(qk_dim);
        lw.biasV.resize(v_dim);
        for (auto &b : lw.biasK)
            b = rng.nextGaussian();
        for (auto &b : lw.biasV)
            b = rng.nextGaussian();
    }
}

bool
TinyLm::isAttentionLayer(int layer) const
{
    if (cfg.attentionOnly)
        return true;
    if (cfg.hybridAttention)
        return (layer % 4) == 3;
    return false;
}

void
TinyLm::initState(RunState &rs) const
{
    rs.state.assign(cfg.layers, {});
    rs.kCache.assign(cfg.layers, {});
    rs.vCache.assign(cfg.layers, {});
    for (int l = 0; l < cfg.layers; ++l) {
        if (!isAttentionLayer(l)) {
            rs.state[l].assign(cfg.heads,
                               Matrix(cfg.dimHead, cfg.dimState));
        }
    }
}

void
TinyLm::suBlock(int layer, const QuantSpec &spec, RunState &rs,
                std::vector<double> &x) const
{
    const auto &lw = weights[layer];
    std::vector<double> xn = x;
    rmsNorm(xn);

    std::vector<double> q, k, v, g;
    matVec(lw.wq, xn, q);
    matVec(lw.wk, xn, k);
    matVec(lw.wv, xn, v);
    matVec(lw.wd, xn, g);

    double q_scale = 1.0 / std::sqrt(static_cast<double>(cfg.dimHead));
    std::vector<double> y(static_cast<size_t>(cfg.heads) * cfg.dimState);

    for (int h = 0; h < cfg.heads; ++h) {
        Matrix &s = rs.state[layer][h];
        const double *qh = q.data() + static_cast<size_t>(h) * cfg.dimHead;
        const double *kh = k.data() + static_cast<size_t>(h) * cfg.dimHead;
        const double *vh = v.data() +
                           static_cast<size_t>(h) * cfg.dimState;
        const double *gh = g.data() + static_cast<size_t>(h) * cfg.dimHead;

        // Per-variant decay vector over dimHead.
        std::vector<double> decay(cfg.dimHead);
        std::vector<double> in_gate(cfg.dimHead, 1.0);
        switch (cfg.variant) {
          case SuVariant::RetNet:
            std::fill(decay.begin(), decay.end(), lw.headDecay[h]);
            break;
          case SuVariant::GLA:
            // Input-dependent per-channel gate, pushed toward 1 the way
            // GLA's temperature trick does.
            for (int i = 0; i < cfg.dimHead; ++i)
                decay[i] = 0.96 + 0.034 * sigmoid(gh[i]);
            break;
          case SuVariant::HGRN2: {
            // Lower-bounded forget gate with complementary input gate.
            double lb = lw.headDecay[h];
            for (int i = 0; i < cfg.dimHead; ++i) {
                decay[i] = lb + (1.0 - lb) * 0.8 * sigmoid(gh[i]);
                in_gate[i] = 8.0 * (1.0 - decay[i]);
            }
            break;
          }
          case SuVariant::Mamba2: {
            // Selective scalar decay a = exp(-dt * A), dt input-driven.
            double dt = softplus(gh[0]);
            double a = std::exp(-0.005 - 0.03 * sigmoid(dt) -
                                0.002 * h);
            std::fill(decay.begin(), decay.end(), a);
            break;
          }
          case SuVariant::None:
            PIMBA_PANIC("SU block in attention-only model");
        }

        // S = decay ⊙ S + (in_gate ⊙ (k + b_k)) (v + b_v)^T
        const double *bk = lw.biasK.data() +
                           static_cast<size_t>(h) * cfg.dimHead;
        const double *bv = lw.biasV.data() +
                           static_cast<size_t>(h) * cfg.dimState;
        for (int i = 0; i < cfg.dimHead; ++i) {
            double ki = in_gate[i] * (kh[i] + bk[i]);
            double di = decay[i];
            double *row = s.row(i);
            for (int j = 0; j < cfg.dimState; ++j)
                row[j] = di * row[j] + ki * (vh[j] + bv[j]);
        }

        // Project onto the representable grid of the state format —
        // the step the Pimba hardware performs on write-back.
        quantizeSpan(s.data(), s.size(), spec, rs.lfsr);

        // y = S^T q
        for (int j = 0; j < cfg.dimState; ++j) {
            double acc = 0.0;
            for (int i = 0; i < cfg.dimHead; ++i)
                acc += s(i, j) * qh[i] * q_scale;
            y[static_cast<size_t>(h) * cfg.dimState + j] = acc;
        }
    }

    // No normalization on y: the state's magnitude and direction carry
    // the context signal into the logits, so state corruption (swamping,
    // saturation) is visible downstream — as it is in trained models.
    std::vector<double> out;
    matVec(weights[layer].wo, y, out);
    for (size_t i = 0; i < x.size(); ++i)
        x[i] += 1.5 * out[i];
}

void
TinyLm::attnBlock(int layer, const QuantSpec &spec, RunState &rs,
                  std::vector<double> &x) const
{
    const auto &lw = weights[layer];
    std::vector<double> xn = x;
    rmsNorm(xn);

    std::vector<double> q, k, v;
    matVec(lw.wq, xn, q);
    matVec(lw.wk, xn, k);
    matVec(lw.wv, xn, v);

    // Quantize the freshly appended K/V rows (write-once: this is the
    // only rounding the KV cache ever sees, unlike the state).
    quantizeSpan(k.data(), k.size(), spec, rs.lfsr);
    quantizeSpan(v.data(), v.size(), spec, rs.lfsr);
    rs.kCache[layer].push_back(k);
    rs.vCache[layer].push_back(v);

    const auto &kc = rs.kCache[layer];
    const auto &vc = rs.vCache[layer];
    size_t t_len = kc.size();
    double q_scale = 1.0 / std::sqrt(static_cast<double>(cfg.dimHead));

    std::vector<double> y(static_cast<size_t>(cfg.heads) * cfg.dimState,
                          0.0);
    std::vector<double> scores(t_len);
    for (int h = 0; h < cfg.heads; ++h) {
        const double *qh = q.data() + static_cast<size_t>(h) * cfg.dimHead;
        double maxs = -1e300;
        for (size_t t = 0; t < t_len; ++t) {
            const double *kh = kc[t].data() +
                               static_cast<size_t>(h) * cfg.dimHead;
            double dot = 0.0;
            for (int i = 0; i < cfg.dimHead; ++i)
                dot += qh[i] * kh[i];
            scores[t] = dot * q_scale;
            maxs = std::max(maxs, scores[t]);
        }
        double z = 0.0;
        for (size_t t = 0; t < t_len; ++t) {
            scores[t] = std::exp(scores[t] - maxs);
            z += scores[t];
        }
        double *yh = y.data() + static_cast<size_t>(h) * cfg.dimState;
        for (size_t t = 0; t < t_len; ++t) {
            double p = scores[t] / z;
            const double *vh = vc[t].data() +
                               static_cast<size_t>(h) * cfg.dimState;
            for (int j = 0; j < cfg.dimState; ++j)
                yh[j] += p * vh[j];
        }
    }

    rmsNorm(y);
    std::vector<double> out;
    matVec(lw.wo, y, out);
    for (size_t i = 0; i < x.size(); ++i)
        x[i] += out[i];
}

void
TinyLm::step(int token, const QuantSpec &spec, RunState &rs,
             std::vector<double> &logits) const
{
    PIMBA_ASSERT(token >= 0 && token < cfg.vocab, "token out of range");
    std::vector<double> x(embedding.row(token),
                          embedding.row(token) + cfg.dModel);

    for (int l = 0; l < cfg.layers; ++l) {
        if (isAttentionLayer(l))
            attnBlock(l, spec, rs, x);
        else
            suBlock(l, spec, rs, x);
    }

    rmsNorm(x);
    logits.assign(cfg.vocab, 0.0);
    double scale = kLogitScale / std::sqrt(static_cast<double>(cfg.dModel));
    for (int t = 0; t < cfg.vocab; ++t) {
        const double *er = embedding.row(t);
        double acc = 0.0;
        for (int i = 0; i < cfg.dModel; ++i)
            acc += er[i] * x[i];
        logits[t] = acc * scale;
    }
}

namespace {

/** log softmax probability of @p target under @p logits. */
double
logProb(const std::vector<double> &logits, int target)
{
    double maxv = *std::max_element(logits.begin(), logits.end());
    double z = 0.0;
    for (double v : logits)
        z += std::exp(v - maxv);
    return (logits[target] - maxv) - std::log(z);
}

} // namespace

std::vector<int>
TinyLm::sampleStream(size_t len, double temperature,
                     uint32_t stream_seed) const
{
    Lfsr32 rng(stream_seed * 747796405u + 11u);
    RunState rs;
    initState(rs);
    QuantSpec exact; // fp64: the teacher runs unquantized

    std::vector<int> tokens;
    tokens.reserve(len);
    int tok = static_cast<int>(rng.next() % cfg.vocab);
    tokens.push_back(tok);

    std::vector<double> logits;
    while (tokens.size() < len) {
        step(tok, exact, rs, logits);
        // Temperature sampling.
        double maxv = *std::max_element(logits.begin(), logits.end());
        std::vector<double> p(cfg.vocab);
        double z = 0.0;
        for (int t = 0; t < cfg.vocab; ++t) {
            p[t] = std::exp((logits[t] - maxv) / temperature);
            z += p[t];
        }
        double u = rng.nextUnit() * z;
        int pick = 0;
        double acc = 0.0;
        for (int t = 0; t < cfg.vocab; ++t) {
            acc += p[t];
            if (u <= acc) {
                pick = t;
                break;
            }
        }
        tok = pick;
        tokens.push_back(tok);
    }
    return tokens;
}

double
TinyLm::crossEntropy(const std::vector<int> &tokens,
                     const QuantSpec &spec) const
{
    PIMBA_ASSERT(tokens.size() >= 2, "need at least two tokens");
    RunState rs;
    initState(rs);
    std::vector<double> logits;
    double total = 0.0;
    size_t n = 0;
    for (size_t i = 0; i + 1 < tokens.size(); ++i) {
        step(tokens[i], spec, rs, logits);
        total += -logProb(logits, tokens[i + 1]);
        ++n;
    }
    return total / static_cast<double>(n);
}

double
TinyLm::perplexity(const std::vector<int> &tokens,
                   const QuantSpec &spec) const
{
    return std::exp(std::min(crossEntropy(tokens, spec), 12.0));
}

double
TinyLm::continuationLogProb(const std::vector<int> &prompt,
                            const std::vector<int> &continuation,
                            const QuantSpec &spec) const
{
    PIMBA_ASSERT(!prompt.empty() && !continuation.empty(),
                 "empty prompt/continuation");
    RunState rs;
    initState(rs);
    std::vector<double> logits;
    for (size_t i = 0; i + 1 < prompt.size(); ++i)
        step(prompt[i], spec, rs, logits);

    double total = 0.0;
    int prev = prompt.back();
    for (int tok : continuation) {
        step(prev, spec, rs, logits);
        total += logProb(logits, tok);
        prev = tok;
    }
    return total;
}

} // namespace pimba
