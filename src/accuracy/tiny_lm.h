/**
 * @file
 * Synthetic language models for the quantization-accuracy experiments
 * (paper Section 3.2, Figures 4 and 6, Table 2).
 *
 * The paper evaluates real pretrained checkpoints; offline we substitute
 * small randomly-initialized models with the same layer mathematics:
 * the quantization phenomenon under study is numerical (swamping during
 * the state "update" accumulation) and depends on the recurrence
 * statistics, not on trained weights. Perplexity is measured on token
 * streams sampled from the fp64 teacher, so the unquantized model has a
 * low baseline perplexity and state corruption shows up as divergence
 * from the teacher's distribution — mirroring how WikiText-2 perplexity
 * behaves in the paper.
 *
 * The recurrent state (SU-LLMs) or the KV cache (transformers) is
 * re-quantized to the format under test after every update/append,
 * exactly the projection the Pimba SPE applies in hardware.
 */

#ifndef PIMBA_ACCURACY_TINY_LM_H
#define PIMBA_ACCURACY_TINY_LM_H

#include <cstdint>
#include <vector>

#include "core/lfsr.h"
#include "core/matrix.h"
#include "models/model_config.h"
#include "quant/format.h"

namespace pimba {

/** Hyper-parameters of a synthetic model. */
struct TinyLmConfig
{
    SuVariant variant = SuVariant::RetNet;
    bool hybridAttention = false; ///< Zamba2-style: attention every 4th
    bool attentionOnly = false;   ///< OPT-style transformer
    int layers = 3;
    int dModel = 64;
    int heads = 4;
    int dimHead = 32;  ///< multiple of the MX group size
    int dimState = 32;
    int vocab = 128;
    uint32_t seed = 7;

    /** Preset mirroring one of the paper's evaluated models. */
    static TinyLmConfig forModel(SuVariant variant, bool hybrid = false,
                                 bool attention_only = false);
};

/**
 * A runnable synthetic LLM with per-step state/KV quantization.
 *
 * The object owns random weights (deterministic in the seed) and
 * per-evaluation mutable state; evaluations are independent.
 */
class TinyLm
{
  public:
    explicit TinyLm(const TinyLmConfig &cfg);

    /**
     * Teacher-sample a token stream of @p len tokens from the fp64 model
     * at the given softmax temperature.
     */
    std::vector<int> sampleStream(size_t len, double temperature,
                                  uint32_t stream_seed) const;

    /**
     * Average next-token cross entropy (nats) of the model on @p tokens
     * with its state/KV stored in @p spec.
     */
    double crossEntropy(const std::vector<int> &tokens,
                        const QuantSpec &spec) const;

    /** Perplexity = exp(crossEntropy). */
    double perplexity(const std::vector<int> &tokens,
                      const QuantSpec &spec) const;

    /**
     * Total log-probability the model assigns to @p continuation after
     * consuming @p prompt (used by the multiple-choice tasks).
     */
    double continuationLogProb(const std::vector<int> &prompt,
                               const std::vector<int> &continuation,
                               const QuantSpec &spec) const;

    const TinyLmConfig &config() const { return cfg; }

  private:
    struct LayerWeights
    {
        Matrix wq, wk, wv, wd; ///< projections (decay/gate where used)
        Matrix wo;             ///< output projection
        std::vector<double> headDecay; ///< fixed per-head decay / bound
        std::vector<double> biasK;     ///< persistent key-channel means
        std::vector<double> biasV;     ///< persistent value-channel means
    };

    /** Mutable per-evaluation recurrent state. */
    struct RunState
    {
        // Per layer, per head: dimHead x dimState state matrices.
        std::vector<std::vector<Matrix>> state;
        // Per attention layer: appended (quantized) K/V rows.
        std::vector<std::vector<std::vector<double>>> kCache;
        std::vector<std::vector<std::vector<double>>> vCache;
        Lfsr16 lfsr{0x1ABCu};
    };

    bool isAttentionLayer(int layer) const;
    void initState(RunState &rs) const;
    /** Run one token; returns the output logits. */
    void step(int token, const QuantSpec &spec, RunState &rs,
              std::vector<double> &logits) const;
    void suBlock(int layer, const QuantSpec &spec, RunState &rs,
                 std::vector<double> &x) const;
    void attnBlock(int layer, const QuantSpec &spec, RunState &rs,
                   std::vector<double> &x) const;

    TinyLmConfig cfg;
    Matrix embedding; ///< vocab x dModel (tied with the LM head)
    std::vector<LayerWeights> weights;
};

} // namespace pimba

#endif // PIMBA_ACCURACY_TINY_LM_H
