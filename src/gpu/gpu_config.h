/**
 * @file
 * GPU device configurations and the roofline kernel model constants.
 *
 * The paper's Fig. 1(b) shows every relevant serving operation is either
 * memory-bandwidth-bound (attention, state update) or compute-bound
 * (GEMM) on a roofline; we model GPU kernels accordingly:
 * time = max(flops / (peak * eff_c), bytes / (bw * eff_m)) + launch.
 */

#ifndef PIMBA_GPU_GPU_CONFIG_H
#define PIMBA_GPU_GPU_CONFIG_H

#include <string>

namespace pimba {

/** One GPU's performance/energy parameters. */
struct GpuConfig
{
    std::string name = "A100";
    double peakFp16Flops = 312e12;  ///< dense fp16 tensor core FLOP/s
    double peakInt8Ops = 624e12;    ///< dense int8 tensor core OP/s
    double memBandwidth = 2.039e12; ///< HBM bytes/s
    double memCapacity = 80e9;      ///< HBM bytes
    double flopsEfficiency = 0.75;  ///< achievable fraction of peak FLOPs
    double bwEfficiency = 0.80;     ///< achievable fraction of peak BW
    double kernelLaunchOverhead = 5e-6; ///< per-kernel seconds
    double nvlinkBandwidth = 600e9; ///< per-GPU interconnect bytes/s
    double computeEnergyPerFlop = 0.6e-12; ///< joules per fp16 FLOP
    double dramEnergyPerBit = 3.9e-12;     ///< joules per HBM bit moved
    double nvlinkEnergyPerBit = 1.3e-12;   ///< joules per link bit moved
};

/** NVIDIA A100 80GB SXM (the paper's primary baseline, Section 6.1). */
inline GpuConfig
a100Config()
{
    return GpuConfig{};
}

/** NVIDIA H100 SXM (Section 6.2 "General adoption", Fig. 16). */
inline GpuConfig
h100Config()
{
    GpuConfig cfg;
    cfg.name = "H100";
    cfg.peakFp16Flops = 989e12;
    cfg.peakInt8Ops = 1979e12;
    cfg.memBandwidth = 3.352e12;
    cfg.memCapacity = 80e9;
    cfg.nvlinkBandwidth = 900e9; // NVLink4
    return cfg;
}

} // namespace pimba

#endif // PIMBA_GPU_GPU_CONFIG_H
