/**
 * @file
 * Point-to-point interconnect cost model for cross-replica transfers.
 *
 * The cluster layer ships a request's cached KV/state blocks from a
 * prefill replica to a decode replica (DistServe-style disaggregation).
 * A transfer is modeled as a fixed setup latency plus a
 * bandwidth-limited payload pass, with energy charged per bit moved —
 * the same shape as the NVLink collective model in gpu_kernels, but for
 * a one-way bulk copy between replicas rather than an all-reduce inside
 * one tensor-parallel group.
 */

#ifndef PIMBA_GPU_INTERCONNECT_H
#define PIMBA_GPU_INTERCONNECT_H

#include <string>

#include "core/units.h"
#include "gpu/gpu_config.h"

namespace pimba {

/** One point-to-point link's performance/energy parameters. */
struct LinkConfig
{
    std::string name = "NVLink";
    BytesPerSecond bandwidth{600e9}; ///< peak per direction
    double efficiency = 0.80;        ///< achievable fraction of peak
    Seconds setupLatency{2e-6};      ///< per-transfer fixed cost
    double energyPerBit = 1.3e-12;   ///< joules per bit moved
};

/** Intra-node link built from a GPU's NVLink parameters. */
LinkConfig nvlinkLink(const GpuConfig &gpu = a100Config());

/** Cross-node 400 Gb/s InfiniBand NDR link (RDMA, one hop). */
LinkConfig infinibandLink();

/** Latency and energy of one bulk transfer. */
struct LinkCost
{
    Seconds seconds;
    Joules energyJ;
};

/** Cost model over one link configuration. */
class LinkModel
{
  public:
    explicit LinkModel(LinkConfig cfg);

    /** One-way bulk copy of @p bytes over the link. A zero-byte
     *  transfer moves nothing and costs exactly {0 s, 0 J} — the setup
     *  latency is only paid when a payload actually crosses. */
    LinkCost transfer(Bytes bytes) const;

    const LinkConfig &config() const { return link; }

  private:
    LinkConfig link;
};

} // namespace pimba

#endif // PIMBA_GPU_INTERCONNECT_H
