#include "gpu/gpu_kernels.h"

#include <algorithm>

namespace pimba {

GpuKernelCost
GpuKernelModel::kernel(double flops, double bytes) const
{
    GpuKernelCost cost;
    double compute_time = flops / (gpu.peakFp16Flops *
                                   gpu.flopsEfficiency);
    double memory_time = bytes / (gpu.memBandwidth * gpu.bwEfficiency);
    cost.seconds = Seconds(std::max(compute_time, memory_time) +
                           gpu.kernelLaunchOverhead);
    cost.energyJ = Joules(flops * gpu.computeEnergyPerFlop +
                          bytes * 8.0 * gpu.dramEnergyPerBit);
    return cost;
}

GpuKernelCost
GpuKernelModel::gemm(double m, double n, double k,
                     double bytes_per_weight) const
{
    double flops = 2.0 * m * n * k;
    double weight_bytes = n * k * bytes_per_weight;
    double act_bytes = (m * k + m * n) * 2.0;
    return kernel(flops, weight_bytes + act_bytes);
}

GpuKernelCost
GpuKernelModel::memBound(double bytes) const
{
    return kernel(0.0, bytes);
}

GpuKernelCost
GpuKernelModel::allReduce(double bytes, int n_gpus) const
{
    GpuKernelCost cost;
    if (n_gpus <= 1)
        return cost;
    double factor = 2.0 * (n_gpus - 1) / static_cast<double>(n_gpus);
    double moved = bytes * factor;
    cost.seconds = Seconds(moved / gpu.nvlinkBandwidth +
                           gpu.kernelLaunchOverhead);
    cost.energyJ = Joules(moved * 8.0 * gpu.nvlinkEnergyPerBit);
    return cost;
}

double
GpuKernelModel::ridgeIntensity() const
{
    return (gpu.peakFp16Flops * gpu.flopsEfficiency) /
           (gpu.memBandwidth * gpu.bwEfficiency);
}

} // namespace pimba
