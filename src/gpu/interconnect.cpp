#include "gpu/interconnect.h"

#include "core/logging.h"

namespace pimba {

LinkConfig
nvlinkLink(const GpuConfig &gpu)
{
    LinkConfig cfg;
    cfg.name = "NVLink (" + gpu.name + ")";
    cfg.bandwidth = BytesPerSecond(gpu.nvlinkBandwidth);
    cfg.efficiency = 0.80;
    cfg.setupLatency = Seconds(2e-6);
    cfg.energyPerBit = gpu.nvlinkEnergyPerBit;
    return cfg;
}

LinkConfig
infinibandLink()
{
    LinkConfig cfg;
    cfg.name = "InfiniBand NDR";
    cfg.bandwidth = BytesPerSecond(50e9); // 400 Gb/s
    cfg.efficiency = 0.90;
    cfg.setupLatency = Seconds(5e-6);
    // NIC + switch traversal costs more per bit than an on-package link.
    cfg.energyPerBit = 5.0e-12;
    return cfg;
}

LinkModel::LinkModel(LinkConfig cfg) : link(std::move(cfg))
{
    PIMBA_ASSERT(link.bandwidth > BytesPerSecond(0.0),
                 "link bandwidth must be positive");
    PIMBA_ASSERT(link.efficiency > 0.0 && link.efficiency <= 1.0,
                 "link efficiency must be in (0, 1]");
    PIMBA_ASSERT(link.setupLatency >= Seconds(0.0),
                 "negative link setup latency");
}

LinkCost
LinkModel::transfer(Bytes bytes) const
{
    PIMBA_ASSERT(bytes >= Bytes(0.0), "negative transfer size");
    LinkCost cost;
    // Nothing crosses the link for an empty payload, so no setup is
    // paid: a 0-byte ship costs exactly {0 s, 0 J}.
    if (bytes == Bytes(0.0))
        return cost;
    cost.seconds = link.setupLatency +
                   bytes / (link.bandwidth * link.efficiency);
    cost.energyJ = Joules(bytes.value() * 8.0 * link.energyPerBit);
    return cost;
}

} // namespace pimba
