/**
 * @file
 * Analytic GPU kernel latency/energy model (roofline with efficiency
 * factors and launch overhead) plus NVLink collective costs.
 */

#ifndef PIMBA_GPU_GPU_KERNELS_H
#define PIMBA_GPU_GPU_KERNELS_H

#include "core/units.h"
#include "gpu/gpu_config.h"

namespace pimba {

/** Latency and energy of one kernel invocation. */
struct GpuKernelCost
{
    Seconds seconds;
    Joules energyJ;
};

/** Roofline kernel model for one GPU. */
class GpuKernelModel
{
  public:
    explicit GpuKernelModel(const GpuConfig &cfg) : gpu(cfg) {}

    /**
     * Generic kernel: @p flops floating point operations touching
     * @p bytes of HBM traffic.
     */
    GpuKernelCost kernel(double flops, double bytes) const;

    /**
     * GEMM of (m x k) by (k x n): weights streamed from HBM once,
     * activations read/written.
     *
     * @param bytes_per_weight 2 for fp16 weights.
     */
    GpuKernelCost gemm(double m, double n, double k,
                       double bytes_per_weight = 2.0) const;

    /** Purely bandwidth-bound kernel moving @p bytes. */
    GpuKernelCost memBound(double bytes) const;

    /**
     * Ring all-reduce of @p bytes across @p n_gpus over NVLink:
     * 2 (n-1)/n passes of the payload per GPU.
     */
    GpuKernelCost allReduce(double bytes, int n_gpus) const;

    const GpuConfig &config() const { return gpu; }

    /** Arithmetic intensity at which the roofline ridges (flops/byte). */
    double ridgeIntensity() const;

  private:
    GpuConfig gpu;
};

} // namespace pimba

#endif // PIMBA_GPU_GPU_KERNELS_H
