#include "core/sketch.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace pimba {

QuantileSketch::QuantileSketch(double relativeAccuracy)
    : alpha(relativeAccuracy)
{
    PIMBA_ASSERT(alpha > 0.0 && alpha < 1.0,
                 "sketch relative accuracy must be in (0, 1), got ",
                 alpha);
    gamma = (1.0 + alpha) / (1.0 - alpha);
    lnGamma = std::log(gamma);
}

int32_t
QuantileSketch::bucketIndex(double x) const
{
    // Bucket i covers (gamma^(i-1), gamma^i]; ceil puts an exact power
    // of gamma into its own bucket's upper edge.
    return static_cast<int32_t>(std::ceil(std::log(x) / lnGamma));
}

void
QuantileSketch::add(double x)
{
    ++n;
    total += x;
    if (n == 1) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    if (!(x > 0.0)) {
        // Non-positive (or NaN) samples have no log bucket. Latency
        // populations are non-negative by construction; preemption
        // counts are frequently exactly zero.
        ++zeroCount;
        return;
    }
    int32_t idx = bucketIndex(x);
    if (counts.empty()) {
        base = idx;
        counts.push_back(1);
        return;
    }
    if (idx < base) {
        counts.insert(counts.begin(),
                      static_cast<size_t>(base - idx), 0);
        base = idx;
    } else if (idx >= base + static_cast<int32_t>(counts.size())) {
        counts.resize(static_cast<size_t>(idx - base) + 1, 0);
    }
    ++counts[static_cast<size_t>(idx - base)];
}

void
QuantileSketch::merge(const QuantileSketch &other)
{
    PIMBA_ASSERT(alpha == other.alpha,
                 "merging sketches of different accuracy (", alpha,
                 " vs ", other.alpha, ")");
    if (other.n == 0)
        return;
    if (n == 0) {
        lo = other.lo;
        hi = other.hi;
    } else {
        lo = std::min(lo, other.lo);
        hi = std::max(hi, other.hi);
    }
    n += other.n;
    total += other.total;
    zeroCount += other.zeroCount;
    if (other.counts.empty())
        return;
    if (counts.empty()) {
        counts = other.counts;
        base = other.base;
        return;
    }
    int32_t newBase = std::min(base, other.base);
    int32_t newEnd =
        std::max(base + static_cast<int32_t>(counts.size()),
                 other.base + static_cast<int32_t>(other.counts.size()));
    if (newBase < base) {
        counts.insert(counts.begin(),
                      static_cast<size_t>(base - newBase), 0);
        base = newBase;
    }
    if (newEnd > base + static_cast<int32_t>(counts.size()))
        counts.resize(static_cast<size_t>(newEnd - base), 0);
    for (size_t i = 0; i < other.counts.size(); ++i)
        counts[static_cast<size_t>(other.base - base) + i] +=
            other.counts[i];
}

double
QuantileSketch::quantile(double q) const
{
    if (n == 0)
        return 0.0;
    if (q <= 0.0)
        return min();
    if (q >= 100.0)
        return max();
    // Target the order statistic percentileSorted() interpolates
    // around: zero-based rank q/100 * (n - 1), rounded to the nearest
    // whole sample.
    double rank = q / 100.0 * static_cast<double>(n - 1);
    uint64_t target = static_cast<uint64_t>(std::llround(rank));
    if (target < zeroCount)
        return 0.0;
    uint64_t cum = zeroCount;
    for (size_t i = 0; i < counts.size(); ++i) {
        cum += counts[i];
        if (cum > target) {
            int32_t idx = base + static_cast<int32_t>(i);
            // Bucket midpoint 2 * gamma^idx / (gamma + 1): within
            // alpha relative error of every sample in the bucket.
            double est = 2.0 * std::exp(static_cast<double>(idx) *
                                        lnGamma) /
                         (gamma + 1.0);
            return std::clamp(est, lo, hi);
        }
    }
    return max();
}

} // namespace pimba
