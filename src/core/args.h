/**
 * @file
 * Minimal shared command-line parser for the bench/example/tool mains.
 *
 * Every standalone binary in the tree registers its flags and options
 * here so all of them answer `--help` with a consistent usage text and
 * reject unknown arguments instead of silently ignoring them. The
 * parser is deliberately tiny: boolean flags (`--smoke`), valued
 * options (`--threads 4` or `--threads=4`), and ordered positionals —
 * enough for simulation harnesses, not a general getopt replacement.
 */

#ifndef PIMBA_CORE_ARGS_H
#define PIMBA_CORE_ARGS_H

#include <string>
#include <vector>

namespace pimba {

/// Declarative argv parser with generated `--help`.
class ArgParser
{
  public:
    /// @param program binary name shown in the usage line
    /// @param description one-line summary shown under the usage line
    ArgParser(std::string program, std::string description);

    /// Register a boolean flag (e.g. "--smoke"); presence sets *out.
    void flag(const std::string &name, const std::string &help,
              bool *out);

    /// Register a string-valued option ("--grid rate=1..32").
    void option(const std::string &name, const std::string &value_name,
                const std::string &help, std::string *out);

    /// Register an integer-valued option ("--threads 4").
    void option(const std::string &name, const std::string &value_name,
                const std::string &help, int *out);

    /// Register a real-valued option ("--decay 0.98").
    void option(const std::string &name, const std::string &value_name,
                const std::string &help, double *out);

    /// Register a required ordered positional argument.
    void positional(const std::string &name, const std::string &help,
                    std::string *out);

    /**
     * Parse argv. Returns true when the program should proceed; false
     * when it should exit immediately with exitCode() — either 0
     * (`--help` was answered) or 1 (a malformed or unknown argument
     * was diagnosed on stderr).
     */
    bool parse(int argc, char **argv);

    /// Process exit status to use when parse() returned false.
    int exitCode() const { return code; }

    /// The generated usage/help text.
    std::string usage() const;

  private:
    struct Flag
    {
        std::string name, help;
        bool *out = nullptr;
    };
    struct Option
    {
        std::string name, valueName, help;
        std::string *strOut = nullptr;
        int *intOut = nullptr;
        double *doubleOut = nullptr;
    };
    struct Positional
    {
        std::string name, help;
        std::string *out = nullptr;
    };

    const Flag *findFlag(const std::string &name) const;
    const Option *findOption(const std::string &name) const;

    std::string program;
    std::string description;
    std::vector<Flag> flags;
    std::vector<Option> options;
    std::vector<Positional> positionals;
    int code = 0;
};

} // namespace pimba

#endif // PIMBA_CORE_ARGS_H
