/**
 * @file
 * Plain-text table rendering used by the benchmark harnesses to print the
 * rows/series of each paper figure and table in a uniform format, plus a
 * CSV writer so results can be post-processed.
 */

#ifndef PIMBA_CORE_TABLE_H
#define PIMBA_CORE_TABLE_H

#include <string>
#include <vector>

namespace pimba {

/** Column-aligned text table with a header row. */
class Table
{
  public:
    /** @param header Column titles, one per column. */
    explicit Table(std::vector<std::string> header);

    /** Append a row of pre-rendered cells; must match the column count. */
    void addRow(std::vector<std::string> row);

    /** Render with aligned columns and a separator under the header. */
    std::string str() const;

    /** Render as CSV (no alignment, comma-separated). */
    std::string csv() const;

    size_t rows() const { return body.size(); }
    size_t cols() const { return head.size(); }

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> body;
};

/** Format a double with @p digits significant decimal places. */
std::string fmt(double v, int digits = 3);

/** Format a ratio as "N.NNx". */
std::string fmtRatio(double v, int digits = 2);

/** Format a fraction as a percentage string "NN.N%". */
std::string fmtPercent(double v, int digits = 1);

} // namespace pimba

#endif // PIMBA_CORE_TABLE_H
