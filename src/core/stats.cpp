#include "core/stats.h"

#include <algorithm>
#include <sstream>

namespace pimba {

void
Accumulator::add(double x)
{
    ++n;
    total += x;
    if (n == 1) {
        mu = lo = hi = x;
        m2 = 0.0;
        return;
    }
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
}

void
Breakdown::add(const std::string &key, double value)
{
    auto it = values.find(key);
    if (it == values.end()) {
        values.emplace(key, value);
        order.push_back(key);
    } else {
        it->second += value;
    }
}

double
Breakdown::get(const std::string &key) const
{
    auto it = values.find(key);
    return it == values.end() ? 0.0 : it->second;
}

double
Breakdown::total() const
{
    double sum = 0.0;
    for (const auto &kv : values)
        sum += kv.second;
    return sum;
}

double
Breakdown::fraction(const std::string &key) const
{
    double t = total();
    return t > 0.0 ? get(key) / t : 0.0;
}

void
Breakdown::scale(double s)
{
    for (auto &kv : values)
        kv.second *= s;
}

void
Breakdown::merge(const Breakdown &other)
{
    for (const auto &key : other.keys())
        add(key, other.get(key));
}

double
percentile(std::vector<double> samples, double q)
{
    std::sort(samples.begin(), samples.end());
    return percentileSorted(samples, q);
}

double
percentileSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    if (q <= 0.0)
        return sorted.front();
    if (q >= 100.0)
        return sorted.back();
    double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<size_t>(rank);
    double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted.size())
        return sorted.back();
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

void
StatSet::inc(const std::string &name, double v)
{
    counters[name] += v;
}

void
StatSet::set(const std::string &name, double v)
{
    counters[name] = v;
}

double
StatSet::get(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0.0 : it->second;
}

std::string
StatSet::dump() const
{
    std::ostringstream oss;
    for (const auto &kv : counters)
        oss << kv.first << " = " << kv.second << "\n";
    return oss.str();
}

void
StatSet::clear()
{
    counters.clear();
}

} // namespace pimba
