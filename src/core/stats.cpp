#include "core/stats.h"

#include <algorithm>
#include <sstream>

namespace pimba {

void
Accumulator::add(double x)
{
    ++n;
    total += x;
    if (n == 1) {
        mu = lo = hi = x;
        m2 = 0.0;
        return;
    }
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
}

void
Breakdown::add(const std::string &key, double value)
{
    auto it = values.find(key);
    if (it == values.end()) {
        values.emplace(key, value);
        order.push_back(key);
    } else {
        it->second += value;
    }
}

double
Breakdown::get(const std::string &key) const
{
    auto it = values.find(key);
    return it == values.end() ? 0.0 : it->second;
}

double
Breakdown::total() const
{
    double sum = 0.0;
    for (const auto &kv : values)
        sum += kv.second;
    return sum;
}

double
Breakdown::fraction(const std::string &key) const
{
    double t = total();
    return t > 0.0 ? get(key) / t : 0.0;
}

void
Breakdown::scale(double s)
{
    for (auto &kv : values)
        kv.second *= s;
}

void
Breakdown::merge(const Breakdown &other)
{
    for (const auto &key : other.keys())
        add(key, other.get(key));
}

double
percentile(std::vector<double> samples, double q)
{
    std::sort(samples.begin(), samples.end());
    return percentileSorted(samples, q);
}

double
percentileSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    if (q <= 0.0)
        return sorted.front();
    if (q >= 100.0)
        return sorted.back();
    double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<size_t>(rank);
    double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted.size())
        return sorted.back();
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

MetricRegistry::Entry &
MetricRegistry::entry(const std::string &name, bool gauge)
{
    auto it = index.find(name);
    if (it == index.end()) {
        index.emplace(name, entries.size());
        order.push_back(name);
        entries.push_back(Entry{0.0, gauge});
        return entries.back();
    }
    return entries[it->second];
}

void
MetricRegistry::count(const std::string &name, double delta)
{
    entry(name, /*gauge=*/false).value += delta;
}

void
MetricRegistry::gauge(const std::string &name, double value)
{
    entry(name, /*gauge=*/true).value = value;
}

double
MetricRegistry::value(const std::string &name) const
{
    auto it = index.find(name);
    return it == index.end() ? 0.0 : entries[it->second].value;
}

bool
MetricRegistry::isGauge(const std::string &name) const
{
    auto it = index.find(name);
    return it != index.end() && entries[it->second].gauge;
}

void
MetricRegistry::merge(const MetricRegistry &other)
{
    for (size_t i = 0; i < other.order.size(); ++i) {
        const std::string &name = other.order[i];
        const Entry &theirs = other.entries[i];
        Entry &ours = entry(name, theirs.gauge);
        if (ours.gauge != theirs.gauge) {
            // Kind conflict: the incoming registry's kind wins
            // wholesale rather than mixing sum and max semantics.
            ours.gauge = theirs.gauge;
            ours.value = theirs.value;
            continue;
        }
        if (theirs.gauge)
            ours.value = std::max(ours.value, theirs.value);
        else
            ours.value += theirs.value;
    }
}

std::string
MetricRegistry::render() const
{
    std::ostringstream oss;
    for (size_t i = 0; i < order.size(); ++i) {
        oss << order[i] << " = " << entries[i].value;
        if (entries[i].gauge)
            oss << " (gauge)";
        oss << "\n";
    }
    return oss.str();
}

void
StatSet::inc(const std::string &name, double v)
{
    counters[name] += v;
}

void
StatSet::set(const std::string &name, double v)
{
    counters[name] = v;
}

double
StatSet::get(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0.0 : it->second;
}

std::string
StatSet::dump() const
{
    std::ostringstream oss;
    for (const auto &kv : counters)
        oss << kv.first << " = " << kv.second << "\n";
    return oss.str();
}

void
StatSet::clear()
{
    counters.clear();
}

} // namespace pimba
