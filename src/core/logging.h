/**
 * @file
 * Error-reporting helpers in the gem5 style: panic() for internal
 * invariant violations, fatal() for user/configuration errors, and
 * warn()/inform() for status messages that do not stop the run.
 */

#ifndef PIMBA_CORE_LOGGING_H
#define PIMBA_CORE_LOGGING_H

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace pimba {

/** Print a message and abort; use for simulator bugs (impossible states). */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Print a message and exit(1); use for invalid user configuration. */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Print a non-fatal warning to stderr. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

namespace detail {

/** Fold a list of streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

} // namespace pimba

#define PIMBA_PANIC(...) \
    ::pimba::panicImpl(__FILE__, __LINE__, ::pimba::detail::concat(__VA_ARGS__))

#define PIMBA_FATAL(...) \
    ::pimba::fatalImpl(__FILE__, __LINE__, ::pimba::detail::concat(__VA_ARGS__))

#define PIMBA_WARN(...) \
    ::pimba::warnImpl(::pimba::detail::concat(__VA_ARGS__))

#define PIMBA_INFORM(...) \
    ::pimba::informImpl(::pimba::detail::concat(__VA_ARGS__))

/** Assert a simulator invariant; active in all build types. */
#define PIMBA_ASSERT(cond, ...)                                              \
    do {                                                                     \
        if (!(cond)) {                                                       \
            PIMBA_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__);      \
        }                                                                    \
    } while (0)

#endif // PIMBA_CORE_LOGGING_H
