/**
 * @file
 * Unit helpers and common scalar types shared across the library.
 *
 * The simulators mostly work in seconds / bytes / joules (double) and DRAM
 * cycles (uint64_t); these helpers keep the conversions explicit.
 */

#ifndef PIMBA_CORE_UNITS_H
#define PIMBA_CORE_UNITS_H

#include <cstdint>

namespace pimba {

/** DRAM-command-clock cycle count. */
using Cycles = uint64_t;

constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;
constexpr double kTera = 1e12;

constexpr double kMilli = 1e-3;
constexpr double kMicro = 1e-6;
constexpr double kNano = 1e-9;
constexpr double kPico = 1e-12;

constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * 1024.0;
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

/** Convert cycles at @p freq_hz to seconds. */
constexpr double
cyclesToSeconds(Cycles cycles, double freq_hz)
{
    return static_cast<double>(cycles) / freq_hz;
}

/** Convert seconds to whole cycles at @p freq_hz (rounded up). */
constexpr Cycles
secondsToCycles(double seconds, double freq_hz)
{
    double c = seconds * freq_hz;
    auto whole = static_cast<Cycles>(c);
    return (static_cast<double>(whole) < c) ? whole + 1 : whole;
}

/** Integer ceiling division for positive integers. */
template <typename T>
constexpr T
ceilDiv(T a, T b)
{
    return (a + b - 1) / b;
}

} // namespace pimba

#endif // PIMBA_CORE_UNITS_H
