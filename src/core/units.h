/**
 * @file
 * Strong quantity types and unit helpers shared across the library.
 *
 * Every fidelity bug the simulator has shipped so far (midpoint
 * off-by-half, uncharged append writes, zero-byte transfer costs, the
 * unsigned `generated - 1` wrap) was a *dimensional* or *invariant*
 * error in code that typed every quantity as a bare `double` or
 * `uint64_t`. This header makes those errors compile errors:
 *
 *  - Quantity<Tag, Rep> is a zero-overhead tagged wrapper. Same-unit
 *    addition/subtraction/comparison, scalar scaling, and same-unit
 *    ratios are allowed; `Seconds + Joules` (or passing a Bytes where a
 *    Tokens is expected) does not compile.
 *  - Cross-unit arithmetic is whitelisted through UnitQuotient /
 *    UnitProduct trait specializations (e.g. Joules / Seconds -> Watts,
 *    Bytes / BytesPerSecond -> Seconds), so dimensional analysis is
 *    checked by the compiler instead of by code review.
 *  - The wrappers compile away: every operation is a constexpr inline
 *    over the underlying representation, in the same order the bare
 *    arithmetic ran, so migrated cost paths are bit-identical (pinned
 *    by the golden-output tests).
 *
 * Crossing between the cycle domain and the wall-clock domain goes
 * through cyclesToSeconds()/secondsToCycles() only.
 */

#ifndef PIMBA_CORE_UNITS_H
#define PIMBA_CORE_UNITS_H

#include <compare>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace pimba {

// ------------------------------------------------------------- Quantity

/**
 * A value of one physical unit, tagged at compile time.
 *
 * @tparam Tag unique tag struct naming the unit (never instantiated)
 * @tparam Rep underlying representation (double for continuous
 *             quantities, uint64_t for counters)
 */
template <typename Tag, typename Rep = double>
class Quantity
{
  public:
    using tag = Tag;
    using rep = Rep;

    constexpr Quantity() = default;

    /** Construction from a raw number is always explicit: the one
     *  place a unit is (re)asserted rather than checked. */
    template <typename T,
              typename = std::enable_if_t<std::is_arithmetic_v<T>>>
    constexpr explicit Quantity(T v) : v_(static_cast<Rep>(v))
    {
    }

    /** The raw representation; the only way back to bare arithmetic. */
    constexpr Rep value() const { return v_; }

    // Same-unit arithmetic.
    constexpr Quantity operator+(Quantity o) const
    {
        return Quantity(v_ + o.v_);
    }
    constexpr Quantity operator-(Quantity o) const
    {
        return Quantity(v_ - o.v_);
    }
    constexpr Quantity operator-() const { return Quantity(-v_); }
    constexpr Quantity &operator+=(Quantity o)
    {
        v_ += o.v_;
        return *this;
    }
    constexpr Quantity &operator-=(Quantity o)
    {
        v_ -= o.v_;
        return *this;
    }

    // Dimensionless scaling.
    template <typename T,
              typename = std::enable_if_t<std::is_arithmetic_v<T>>>
    constexpr Quantity operator*(T s) const
    {
        return Quantity(v_ * static_cast<Rep>(s));
    }
    template <typename T,
              typename = std::enable_if_t<std::is_arithmetic_v<T>>>
    constexpr Quantity operator/(T s) const
    {
        return Quantity(v_ / static_cast<Rep>(s));
    }
    template <typename T,
              typename = std::enable_if_t<std::is_arithmetic_v<T>>>
    constexpr Quantity &operator*=(T s)
    {
        v_ *= static_cast<Rep>(s);
        return *this;
    }
    template <typename T,
              typename = std::enable_if_t<std::is_arithmetic_v<T>>>
    constexpr Quantity &operator/=(T s)
    {
        v_ /= static_cast<Rep>(s);
        return *this;
    }

    /** Ratio of two same-unit quantities is dimensionless. */
    constexpr double ratio(Quantity o) const
    {
        return static_cast<double>(v_) / static_cast<double>(o.v_);
    }

    constexpr bool operator==(const Quantity &) const = default;
    constexpr auto operator<=>(const Quantity &) const = default;

  private:
    Rep v_ = Rep{};
};

template <typename T, typename Tag, typename Rep,
          typename = std::enable_if_t<std::is_arithmetic_v<T>>>
constexpr Quantity<Tag, Rep>
operator*(T s, Quantity<Tag, Rep> q)
{
    return Quantity<Tag, Rep>(static_cast<Rep>(s) * q.value());
}

// ------------------------------------------------------------ unit tags

struct SecondTag;          ///< wall-clock time
struct JouleTag;           ///< energy
struct WattTag;            ///< power
struct ByteTag;            ///< memory / payload size
struct TokenTag;           ///< prompt or output tokens
struct BlockTag;           ///< paged-allocator KV/state blocks
struct CycleTag;           ///< DRAM-command-clock cycles
struct TokensPerSecondTag; ///< generation throughput
struct BytesPerSecondTag;  ///< bandwidth
struct RequestsPerSecondTag; ///< completion / goodput rate

using Seconds = Quantity<SecondTag>;
using Joules = Quantity<JouleTag>;
using Watts = Quantity<WattTag>;
using Bytes = Quantity<ByteTag>;
using Tokens = Quantity<TokenTag, uint64_t>;
using Blocks = Quantity<BlockTag, uint64_t>;
using Cycles = Quantity<CycleTag, uint64_t>;
using TokensPerSecond = Quantity<TokensPerSecondTag>;
using BytesPerSecond = Quantity<BytesPerSecondTag>;
using RequestsPerSecond = Quantity<RequestsPerSecondTag>;

// ------------------------------------------- cross-unit trait algebra

/** Whitelisted quotients: Quantity<Num> / Quantity<Den> -> type. */
template <typename Num, typename Den>
struct UnitQuotient
{
};

template <>
struct UnitQuotient<JouleTag, SecondTag>
{
    using type = Watts;
};
template <>
struct UnitQuotient<TokenTag, SecondTag>
{
    using type = TokensPerSecond;
};
template <>
struct UnitQuotient<ByteTag, SecondTag>
{
    using type = BytesPerSecond;
};
template <>
struct UnitQuotient<ByteTag, BytesPerSecondTag>
{
    using type = Seconds;
};
template <>
struct UnitQuotient<JouleTag, WattTag>
{
    using type = Seconds;
};

/** Whitelisted products: Quantity<A> * Quantity<B> -> type. */
template <typename A, typename B>
struct UnitProduct
{
};

template <>
struct UnitProduct<WattTag, SecondTag>
{
    using type = Joules;
};
template <>
struct UnitProduct<SecondTag, WattTag>
{
    using type = Joules;
};
template <>
struct UnitProduct<BytesPerSecondTag, SecondTag>
{
    using type = Bytes;
};
template <>
struct UnitProduct<SecondTag, BytesPerSecondTag>
{
    using type = Bytes;
};

/** Same-unit division is a dimensionless ratio. */
template <typename Tag, typename RepA, typename RepB>
constexpr double
operator/(Quantity<Tag, RepA> a, Quantity<Tag, RepB> b)
{
    return static_cast<double>(a.value()) / static_cast<double>(b.value());
}

/** Cross-unit division, whitelisted through UnitQuotient. */
template <typename TagN, typename RepN, typename TagD, typename RepD,
          typename Out = typename UnitQuotient<TagN, TagD>::type>
constexpr Out
operator/(Quantity<TagN, RepN> n, Quantity<TagD, RepD> d)
{
    return Out(static_cast<double>(n.value()) /
               static_cast<double>(d.value()));
}

/** Cross-unit multiplication, whitelisted through UnitProduct. */
template <typename TagA, typename RepA, typename TagB, typename RepB,
          typename Out = typename UnitProduct<TagA, TagB>::type>
constexpr Out
operator*(Quantity<TagA, RepA> a, Quantity<TagB, RepB> b)
{
    return Out(static_cast<double>(a.value()) *
               static_cast<double>(b.value()));
}

// ----------------------------------------------------- scalar prefixes

constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;
constexpr double kTera = 1e12;

constexpr double kMilli = 1e-3;
constexpr double kMicro = 1e-6;
constexpr double kNano = 1e-9;
constexpr double kPico = 1e-12;

constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * 1024.0;
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

// ------------------------------------------------- domain conversions

/** Convert cycles at @p freq_hz to wall-clock seconds. This and
 *  secondsToCycles() are the only sanctioned crossings between the
 *  cycle domain and the time domain. */
constexpr Seconds
cyclesToSeconds(Cycles cycles, double freq_hz)
{
    return Seconds(static_cast<double>(cycles.value()) / freq_hz);
}

/**
 * Convert seconds to whole cycles at @p freq_hz, rounded up.
 *
 * Saturating at the domain edges rather than invoking UB:
 *  - a negative duration (or negative/NaN product) clamps to 0 cycles —
 *    float-to-unsigned conversion of a negative value is UB, and no
 *    caller means "before the epoch";
 *  - a product at or beyond 2^64 (including +inf) clamps to the maximum
 *    representable cycle count — the old `whole + 1` round-up would
 *    first hit UB in the conversion and could then wrap to 0.
 */
constexpr Cycles
secondsToCycles(Seconds seconds, double freq_hz)
{
    constexpr double kMax =
        static_cast<double>(std::numeric_limits<uint64_t>::max());
    double c = seconds.value() * freq_hz;
    if (!(c > 0.0)) // negative, zero, or NaN
        return Cycles(0);
    if (c >= kMax)
        return Cycles(std::numeric_limits<uint64_t>::max());
    auto whole = static_cast<uint64_t>(c);
    return Cycles((static_cast<double>(whole) < c) ? whole + 1 : whole);
}

/**
 * Integer ceiling division for non-negative integers. Written as
 * quotient-plus-remainder-test so a near-max numerator cannot overflow
 * the way the textbook `(a + b - 1) / b` does.
 */
template <typename T>
constexpr T
ceilDiv(T a, T b)
{
    static_assert(std::is_integral_v<T>, "ceilDiv is integer division");
    return static_cast<T>(a / b + (a % b != 0 ? 1 : 0));
}

} // namespace pimba

#endif // PIMBA_CORE_UNITS_H
