/**
 * @file
 * Linear Feedback Shift Register random-number generators.
 *
 * The Pimba SPE uses an LFSR to supply the random bits consumed by
 * stochastic rounding (Section 4.2 of the paper cites FAST [60] for the
 * hardware recipe). We model the same generator in software so that the
 * accuracy harness exercises exactly the randomness the hardware would
 * produce, and so the area model can charge a register + XOR tree.
 */

#ifndef PIMBA_CORE_LFSR_H
#define PIMBA_CORE_LFSR_H

#include <cstdint>

namespace pimba {

/**
 * 16-bit Fibonacci LFSR with taps 16,15,13,4 (maximal length 2^16-1).
 *
 * Produces one pseudo-random bit per shift; nextBits() gathers several
 * shifts into an integer the way a hardware implementation would tap a
 * wider register over consecutive cycles.
 */
class Lfsr16
{
  public:
    /** @param seed Any non-zero 16-bit seed; zero is remapped to 0xACE1. */
    explicit Lfsr16(uint16_t seed = 0xACE1u)
        : state(seed == 0 ? 0xACE1u : seed)
    {}

    /** Advance one step and return the shifted-out bit. */
    uint16_t
    nextBit()
    {
        uint16_t bit = ((state >> 0) ^ (state >> 2) ^
                        (state >> 3) ^ (state >> 5)) & 1u;
        state = static_cast<uint16_t>((state >> 1) | (bit << 15));
        return bit;
    }

    /**
     * Gather @p n (1..32) successive bits into the low bits of a word.
     * @param n Number of bits to produce.
     */
    uint32_t
    nextBits(int n)
    {
        uint32_t out = 0;
        for (int i = 0; i < n; ++i)
            out = (out << 1) | nextBit();
        return out;
    }

    /** Uniform value in [0, 1) with @p bits of resolution (default 16). */
    double
    nextUnit(int bits = 16)
    {
        return static_cast<double>(nextBits(bits)) /
               static_cast<double>(1u << bits);
    }

    /** Current register contents (for tests). */
    uint16_t raw() const { return state; }

  private:
    uint16_t state;
};

/**
 * 32-bit Galois LFSR (taps 0x80200003), used where longer periods are
 * convenient in software, e.g. synthetic data generation.
 */
class Lfsr32
{
  public:
    explicit Lfsr32(uint32_t seed = 0xDEADBEEFu)
        : state(seed == 0 ? 0xDEADBEEFu : seed)
    {}

    /** Advance one step and return a mixed output word. */
    uint32_t
    next()
    {
        uint32_t lsb = state & 1u;
        state >>= 1;
        if (lsb)
            state ^= 0x80200003u;
        // Consecutive raw LFSR states differ by one shift; a finalizer
        // decorrelates the output stream (needed by nextGaussian's
        // 12-sum method).
        uint32_t x = state;
        x ^= x >> 16;
        x *= 0x7feb352du;
        x ^= x >> 15;
        x *= 0x846ca68bu;
        x ^= x >> 16;
        return x;
    }

    /** Uniform value in [0, 1). */
    double
    nextUnit()
    {
        return static_cast<double>(next()) / 4294967296.0;
    }

    /** Approximately standard-normal value (12-sum method). */
    double
    nextGaussian()
    {
        double acc = 0.0;
        for (int i = 0; i < 12; ++i)
            acc += nextUnit();
        return acc - 6.0;
    }

  private:
    uint32_t state;
};

} // namespace pimba

#endif // PIMBA_CORE_LFSR_H
