#include "core/logging.h"

namespace pimba {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " (" << file << ":" << line << ")\n";
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " (" << file << ":" << line << ")\n";
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << "\n";
}

void
informImpl(const std::string &msg)
{
    std::cerr << "info: " << msg << "\n";
}

} // namespace pimba
