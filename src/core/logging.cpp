#include "core/logging.h"

#include <mutex>

namespace pimba {

namespace {

/**
 * Serialize whole-line emission: warn()/inform() are called from the
 * sweep thread pool's workers, and separate stream insertions on the
 * shared std::cerr interleave mid-line under contention. Each message
 * is built into one string first and written with a single insertion
 * under this lock. panic()/fatal() route through the same lock so a
 * dying thread's last line stays intact too.
 */
std::mutex &
emitLock()
{
    static std::mutex m;
    return m;
}

void
emitLine(const char *prefix, const std::string &msg,
         const std::string &suffix = "")
{
    std::string line;
    line.reserve(std::char_traits<char>::length(prefix) + msg.size() +
                 suffix.size() + 1);
    line += prefix;
    line += msg;
    line += suffix;
    line += '\n';
    std::lock_guard<std::mutex> guard(emitLock());
    std::cerr << line;
}

} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    emitLine("panic: ", msg,
             " (" + std::string(file) + ":" + std::to_string(line) + ")");
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    emitLine("fatal: ", msg,
             " (" + std::string(file) + ":" + std::to_string(line) + ")");
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    emitLine("warn: ", msg);
}

void
informImpl(const std::string &msg)
{
    emitLine("info: ", msg);
}

} // namespace pimba
