#include "core/lfsr.h"

// Header-only implementations; this translation unit exists so the core
// library has a home for the class and future non-inline additions.
