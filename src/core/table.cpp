#include "core/table.h"

#include <iomanip>
#include <sstream>

#include "core/logging.h"

namespace pimba {

Table::Table(std::vector<std::string> header)
    : head(std::move(header))
{
    PIMBA_ASSERT(!head.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    PIMBA_ASSERT(row.size() == head.size(),
                 "row width ", row.size(), " != header width ", head.size());
    body.push_back(std::move(row));
}

std::string
Table::str() const
{
    std::vector<size_t> width(head.size());
    for (size_t c = 0; c < head.size(); ++c)
        width[c] = head[c].size();
    for (const auto &row : body)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            oss << std::left << std::setw(static_cast<int>(width[c]) + 2)
                << row[c];
        }
        oss << "\n";
    };
    emit(head);
    size_t total = 0;
    for (size_t w : width)
        total += w + 2;
    oss << std::string(total, '-') << "\n";
    for (const auto &row : body)
        emit(row);
    return oss.str();
}

std::string
Table::csv() const
{
    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c)
            oss << (c ? "," : "") << row[c];
        oss << "\n";
    };
    emit(head);
    for (const auto &row : body)
        emit(row);
    return oss.str();
}

std::string
fmt(double v, int digits)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(digits) << v;
    return oss.str();
}

std::string
fmtRatio(double v, int digits)
{
    return fmt(v, digits) + "x";
}

std::string
fmtPercent(double v, int digits)
{
    return fmt(v * 100.0, digits) + "%";
}

} // namespace pimba
