/**
 * @file
 * Discrete-event calendar: the min-heap the cluster fleet pumps instead
 * of broadcasting advanceTo() per arrival. Entries are ordered by
 * (time, class, tiebreak, insertion sequence):
 *
 *  - time      — the simulated instant the event is due;
 *  - class     — event kind priority at equal times (the fleet dispatches
 *                arrivals, class 0, before hand-offs, class 1, matching
 *                the lockstep loop's `arrival <= handoff` rule);
 *  - tiebreak  — caller-chosen order within a class (e.g. request id, so
 *                simultaneous hand-offs dispatch by id);
 *  - sequence  — automatic insertion counter, making equal keys FIFO.
 *
 * The total order is strict, so a calendar fed the same events always
 * pops the same sequence — determinism is structural, not incidental.
 */

#ifndef PIMBA_CORE_EVENT_QUEUE_H
#define PIMBA_CORE_EVENT_QUEUE_H

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "core/logging.h"
#include "core/units.h"

namespace pimba {

/** One scheduled entry of an EventQueue. */
template <typename Payload>
struct CalendarEntry
{
    Seconds time{0.0};
    uint32_t klass = 0; ///< lower dispatches first at equal time
    uint64_t tie = 0;   ///< within-class order at equal time
    uint64_t seq = 0;   ///< insertion order; final FIFO tiebreak
    Payload payload{};
};

/**
 * Min-first priority-queue calendar over CalendarEntry<Payload>. A
 * plain binary heap on a vector (std::push_heap/std::pop_heap) rather
 * than std::priority_queue so pop() can move the payload out.
 */
template <typename Payload>
class EventQueue
{
  public:
    /** Schedule @p payload at @p time. Events never run backward: a
     *  push earlier than the last pop would mean the simulation already
     *  committed past it, so it is a fatal logic error. */
    void
    push(Seconds time, uint32_t klass, uint64_t tie, Payload payload)
    {
        PIMBA_ASSERT(!(time < lastPopped),
                     "event scheduled at ", time.value(),
                     "s, before the already-dispatched ",
                     lastPopped.value(), "s");
        heap.push_back(CalendarEntry<Payload>{time, klass, tie, nextSeq++,
                                              std::move(payload)});
        std::push_heap(heap.begin(), heap.end(), Later{});
    }

    bool empty() const { return heap.empty(); }
    size_t size() const { return heap.size(); }

    /** Due time of the earliest event; +inf on an empty calendar. */
    Seconds
    nextTime() const
    {
        return heap.empty()
                   ? Seconds(std::numeric_limits<double>::infinity())
                   : heap.front().time;
    }

    const CalendarEntry<Payload> &
    top() const
    {
        PIMBA_ASSERT(!heap.empty(), "top() on an empty calendar");
        return heap.front();
    }

    /** Remove and return the earliest event. */
    CalendarEntry<Payload>
    pop()
    {
        PIMBA_ASSERT(!heap.empty(), "pop() on an empty calendar");
        std::pop_heap(heap.begin(), heap.end(), Later{});
        CalendarEntry<Payload> e = std::move(heap.back());
        heap.pop_back();
        lastPopped = e.time;
        return e;
    }

  private:
    /** Reverse strict-weak order: a sorts after b. */
    struct Later
    {
        bool
        operator()(const CalendarEntry<Payload> &a,
                   const CalendarEntry<Payload> &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            if (a.klass != b.klass)
                return a.klass > b.klass;
            if (a.tie != b.tie)
                return a.tie > b.tie;
            return a.seq > b.seq;
        }
    };

    std::vector<CalendarEntry<Payload>> heap;
    uint64_t nextSeq = 0;
    Seconds lastPopped{-std::numeric_limits<double>::infinity()};
};

} // namespace pimba

#endif // PIMBA_CORE_EVENT_QUEUE_H
