/**
 * @file
 * Mergeable streaming quantile sketch (DDSketch-style logarithmic
 * buckets) for the observability layer: percentile estimates with a
 * bounded *relative* error guarantee in O(buckets) memory, so metric
 * pipelines can stream per-request samples instead of buffering every
 * one of them (ROADMAP: million-request replays).
 *
 * Guarantees, for a sketch built with relative accuracy alpha:
 *
 *  - quantile(q) returns a value within alpha relative error of some
 *    sample whose rank matches q's (rounded) order statistic — the
 *    same rank convention percentileSorted() interpolates around.
 *  - merge() is exact: merging sketches bucket-wise is associative and
 *    commutative, and the merged sketch is identical to the sketch of
 *    the concatenated sample streams (same alpha required).
 *  - count/min/max/sum/mean are exact, not estimates.
 *  - Non-positive samples land in a dedicated zero bucket (per-request
 *    preemption counts are frequently zero) and report as 0.0.
 *
 * An empty sketch answers 0 for every statistic, never UB.
 */

#ifndef PIMBA_CORE_SKETCH_H
#define PIMBA_CORE_SKETCH_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pimba {

/** Streaming quantile sketch with bounded relative error. */
class QuantileSketch
{
  public:
    /** Default relative accuracy: 0.1%, comfortably inside the 1%
     *  equivalence budget the streaming-metrics mode is held to. */
    static constexpr double kDefaultAccuracy = 0.001;

    explicit QuantileSketch(double relativeAccuracy = kDefaultAccuracy);

    /** Record one sample. Non-positive samples count into the zero
     *  bucket (they have no logarithm) and surface as 0.0. */
    void add(double x);

    /** Fold @p other into this sketch (bucket-wise, exact). Both
     *  sketches must share the same relative accuracy. */
    void merge(const QuantileSketch &other);

    /**
     * Estimate the @p q-th percentile, @p q in [0, 100]. The estimate
     * targets the order statistic percentileSorted() interpolates
     * around (rank q/100 * (count-1), rounded to the nearest sample)
     * and is clamped into [min, max]. Returns 0 when empty.
     */
    double quantile(double q) const;

    uint64_t count() const { return n; }
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    double sum() const { return total; }
    double mean() const { return n ? total / static_cast<double>(n) : 0.0; }
    double relativeAccuracy() const { return alpha; }
    bool empty() const { return n == 0; }

    /** Log-buckets currently allocated (memory-footprint telemetry). */
    size_t bucketCount() const { return counts.size(); }

  private:
    int32_t bucketIndex(double x) const;

    double alpha;    ///< guaranteed relative accuracy
    double gamma;    ///< bucket base, (1 + alpha) / (1 - alpha)
    double lnGamma;  ///< cached log(gamma)
    uint64_t n = 0;
    uint64_t zeroCount = 0; ///< samples <= 0
    double lo = 0.0;
    double hi = 0.0;
    double total = 0.0;
    /** counts[i] holds bucket (base + i): samples in
     *  (gamma^(base+i-1), gamma^(base+i)]. Contiguous, grown on
     *  demand toward whichever side a new sample lands. */
    std::vector<uint64_t> counts;
    int32_t base = 0;
};

} // namespace pimba

#endif // PIMBA_CORE_SKETCH_H
