/**
 * @file
 * Lightweight statistics collection: named scalar counters, running
 * accumulators, and breakdown maps used by the simulators to report the
 * per-operation latency/energy splits the paper's figures show.
 */

#ifndef PIMBA_CORE_STATS_H
#define PIMBA_CORE_STATS_H

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pimba {

/** Running mean/min/max/variance accumulator (Welford). */
class Accumulator
{
  public:
    /** Record one sample. */
    void add(double x);

    uint64_t count() const { return n; }
    double mean() const { return n ? mu : 0.0; }
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    /** Population variance of the recorded samples. */
    double variance() const { return n ? m2 / static_cast<double>(n) : 0.0; }
    double stddev() const { return std::sqrt(variance()); }
    double sum() const { return total; }

  private:
    uint64_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    double total = 0.0;
};

/**
 * Named-category breakdown (e.g. latency per operation class).
 *
 * Categories keep insertion order so reports match the paper's legends.
 */
class Breakdown
{
  public:
    /** Add @p value to category @p key, creating it if necessary. */
    void add(const std::string &key, double value);

    /** Value of @p key, or 0 if absent. */
    double get(const std::string &key) const;

    /** Sum over all categories. */
    double total() const;

    /** Fraction of the total in @p key (0 if total is 0). */
    double fraction(const std::string &key) const;

    /** Categories in insertion order. */
    const std::vector<std::string> &keys() const { return order; }

    /** Scale every category by @p s (e.g. per-token normalization). */
    void scale(double s);

    /** Merge another breakdown into this one. */
    void merge(const Breakdown &other);

    bool empty() const { return order.empty(); }

  private:
    std::map<std::string, double> values;
    std::vector<std::string> order;
};

/**
 * Percentile of a sample set with linear interpolation between order
 * statistics. @p q is in [0, 100]; the samples need not be sorted.
 * Returns 0 for an empty sample set.
 */
double percentile(std::vector<double> samples, double q);

/** percentile() for samples already sorted ascending (no copy/sort). */
double percentileSorted(const std::vector<double> &sorted, double q);

/**
 * Mergeable counter/gauge registry for the streaming-metrics layer.
 *
 * Counters are monotonic sums (merge adds), gauges are
 * last-write-wins samples of instantaneous state (merge keeps the
 * larger magnitude as the fleet-wide high-water mark). Names keep
 * insertion order so rendered registries diff cleanly across runs.
 * Unlike StatSet this is built to be carried per-replica and folded
 * into one fleet-wide registry without re-walking sample vectors.
 */
class MetricRegistry
{
  public:
    /** Add @p delta to the named counter, creating it at 0. */
    void count(const std::string &name, double delta = 1.0);

    /** Overwrite the named gauge (instantaneous sample). */
    void gauge(const std::string &name, double value);

    /** Current value of a counter or gauge (0 if never touched). */
    double value(const std::string &name) const;

    /** True when @p name was registered as a gauge. */
    bool isGauge(const std::string &name) const;

    /** Fold @p other in: counters sum, gauges keep the max. A name
     *  must not be a counter in one registry and a gauge in the
     *  other. */
    void merge(const MetricRegistry &other);

    /** "name = value" lines, insertion order, gauges marked. */
    std::string render() const;

    /** Registered names in insertion order. */
    const std::vector<std::string> &names() const { return order; }

    bool empty() const { return order.empty(); }

  private:
    struct Entry
    {
        double value = 0.0;
        bool gauge = false;
    };
    Entry &entry(const std::string &name, bool gauge);

    std::map<std::string, size_t> index;
    std::vector<std::string> order;
    std::vector<Entry> entries;
};

/** Registry of named scalar statistics with dump support. */
class StatSet
{
  public:
    /** Add @p v to the named counter. */
    void inc(const std::string &name, double v = 1.0);

    /** Overwrite the named counter. */
    void set(const std::string &name, double v);

    /** Read a counter (0 if never touched). */
    double get(const std::string &name) const;

    /** Render "name = value" lines. */
    std::string dump() const;

    /** Reset all counters to zero. */
    void clear();

  private:
    std::map<std::string, double> counters;
};

} // namespace pimba

#endif // PIMBA_CORE_STATS_H
