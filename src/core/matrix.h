/**
 * @file
 * Minimal row-major dense matrix of doubles used by the functional model
 * implementations and the accuracy harness. Deliberately simple: the
 * numerics we study live in src/quant, not in a BLAS.
 */

#ifndef PIMBA_CORE_MATRIX_H
#define PIMBA_CORE_MATRIX_H

#include <cstddef>
#include <vector>

#include "core/logging.h"

namespace pimba {

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** Zero-initialized @p r x @p c matrix. */
    Matrix(size_t r, size_t c)
        : nRows(r), nCols(c), buf(r * c, 0.0)
    {}

    size_t rows() const { return nRows; }
    size_t cols() const { return nCols; }
    size_t size() const { return buf.size(); }

    double &operator()(size_t r, size_t c) { return buf[r * nCols + c]; }
    double operator()(size_t r, size_t c) const { return buf[r * nCols + c]; }

    double *data() { return buf.data(); }
    const double *data() const { return buf.data(); }

    /** Pointer to the start of row @p r. */
    double *row(size_t r) { return buf.data() + r * nCols; }
    const double *row(size_t r) const { return buf.data() + r * nCols; }

    /** Set every element to @p v. */
    void
    fill(double v)
    {
        for (auto &x : buf)
            x = v;
    }

    /** this += other (same shape required). */
    void
    add(const Matrix &other)
    {
        PIMBA_ASSERT(nRows == other.nRows && nCols == other.nCols,
                     "shape mismatch in Matrix::add");
        for (size_t i = 0; i < buf.size(); ++i)
            buf[i] += other.buf[i];
    }

    /** this *= s elementwise. */
    void
    scale(double s)
    {
        for (auto &x : buf)
            x *= s;
    }

  private:
    size_t nRows = 0;
    size_t nCols = 0;
    std::vector<double> buf;
};

/** y = M^T x where M is (rows x cols), x has rows elements, y cols. */
void matTVec(const Matrix &m, const std::vector<double> &x,
             std::vector<double> &y);

/** y = M x where M is (rows x cols), x has cols elements, y rows. */
void matVec(const Matrix &m, const std::vector<double> &x,
            std::vector<double> &y);

inline void
matTVec(const Matrix &m, const std::vector<double> &x, std::vector<double> &y)
{
    PIMBA_ASSERT(x.size() == m.rows(), "matTVec shape mismatch");
    y.assign(m.cols(), 0.0);
    for (size_t r = 0; r < m.rows(); ++r) {
        double xr = x[r];
        const double *mr = m.row(r);
        for (size_t c = 0; c < m.cols(); ++c)
            y[c] += mr[c] * xr;
    }
}

inline void
matVec(const Matrix &m, const std::vector<double> &x, std::vector<double> &y)
{
    PIMBA_ASSERT(x.size() == m.cols(), "matVec shape mismatch");
    y.assign(m.rows(), 0.0);
    for (size_t r = 0; r < m.rows(); ++r) {
        const double *mr = m.row(r);
        double acc = 0.0;
        for (size_t c = 0; c < m.cols(); ++c)
            acc += mr[c] * x[c];
        y[r] = acc;
    }
}

} // namespace pimba

#endif // PIMBA_CORE_MATRIX_H
