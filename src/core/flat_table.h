/**
 * @file
 * Open-addressing hash table from a packed uint64 key to a small value
 * type — the flat replacement for the node-based
 * `std::unordered_map<uint64_t, V>` memos on the simulator's hot paths
 * (the serving engine's step-cost memos, the PIM kernel-shape cache).
 *
 * Design constraints, in order:
 *  - Exactness: a lookup either misses or returns the value stored for
 *    that exact key (full keys are stored; collisions only lengthen the
 *    probe chain). Memoization through this table is therefore
 *    bit-identical to recomputation, which the scenario layer's
 *    byte-determinism guarantee depends on.
 *  - Lookup speed: power-of-two capacity, a strong 64-bit finalizer for
 *    the hash, linear probing, and keys in one contiguous array keep a
 *    hit to ~one cache line, versus the pointer chase of the node-based
 *    map.
 *  - Simplicity: no erase (memos only grow), load factor capped at 1/2,
 *    key 0 reserved as the empty sentinel (every packed memo key in the
 *    tree is nonzero by construction — callers assert it).
 */

#ifndef PIMBA_CORE_FLAT_TABLE_H
#define PIMBA_CORE_FLAT_TABLE_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pimba {

/** Finalizer of splitmix64: a fast, well-mixed 64-bit hash. */
constexpr uint64_t
mix64(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

/** Insert-only open-addressing map from nonzero uint64 keys to V. */
template <typename V> class FlatTable
{
  public:
    /** @p capacity_hint is rounded up to a power of two >= 16. */
    explicit FlatTable(size_t capacity_hint = 64)
    {
        size_t cap = 16;
        while (cap < capacity_hint * 2)
            cap *= 2;
        keys.assign(cap, kEmpty);
        vals.resize(cap);
    }

    /** Pointer to the value stored under @p key, or nullptr. */
    const V *
    find(uint64_t key) const
    {
        size_t mask = keys.size() - 1;
        for (size_t i = mix64(key) & mask;; i = (i + 1) & mask) {
            if (keys[i] == key)
                return &vals[i];
            if (keys[i] == kEmpty)
                return nullptr;
        }
    }

    /**
     * Store @p value under @p key (nonzero, not already present) and
     * return a reference to the stored copy.
     */
    const V &
    insert(uint64_t key, V value)
    {
        if ((count + 1) * 2 > keys.size())
            grow();
        size_t mask = keys.size() - 1;
        size_t i = mix64(key) & mask;
        while (keys[i] != kEmpty)
            i = (i + 1) & mask;
        keys[i] = key;
        vals[i] = std::move(value);
        ++count;
        return vals[i];
    }

    size_t size() const { return count; }
    size_t capacity() const { return keys.size(); }

  private:
    static constexpr uint64_t kEmpty = 0;

    void
    grow()
    {
        std::vector<uint64_t> old_keys = std::move(keys);
        std::vector<V> old_vals = std::move(vals);
        keys.assign(old_keys.size() * 2, kEmpty);
        vals.assign(old_keys.size() * 2, V{});
        size_t mask = keys.size() - 1;
        for (size_t i = 0; i < old_keys.size(); ++i) {
            if (old_keys[i] == kEmpty)
                continue;
            size_t j = mix64(old_keys[i]) & mask;
            while (keys[j] != kEmpty)
                j = (j + 1) & mask;
            keys[j] = old_keys[i];
            vals[j] = std::move(old_vals[i]);
        }
    }

    std::vector<uint64_t> keys;
    std::vector<V> vals;
    size_t count = 0;
};

} // namespace pimba

#endif // PIMBA_CORE_FLAT_TABLE_H
