#include "core/args.h"

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace pimba {

ArgParser::ArgParser(std::string program_, std::string description_)
    : program(std::move(program_)), description(std::move(description_))
{
}

void
ArgParser::flag(const std::string &name, const std::string &help,
                bool *out)
{
    flags.push_back(Flag{name, help, out});
}

void
ArgParser::option(const std::string &name, const std::string &value_name,
                  const std::string &help, std::string *out)
{
    options.push_back(Option{name, value_name, help, out, nullptr,
                             nullptr});
}

void
ArgParser::option(const std::string &name, const std::string &value_name,
                  const std::string &help, int *out)
{
    options.push_back(Option{name, value_name, help, nullptr, out,
                             nullptr});
}

void
ArgParser::option(const std::string &name, const std::string &value_name,
                  const std::string &help, double *out)
{
    options.push_back(Option{name, value_name, help, nullptr, nullptr,
                             out});
}

void
ArgParser::positional(const std::string &name, const std::string &help,
                      std::string *out)
{
    positionals.push_back(Positional{name, help, out});
}

const ArgParser::Flag *
ArgParser::findFlag(const std::string &name) const
{
    for (const Flag &f : flags)
        if (f.name == name)
            return &f;
    return nullptr;
}

const ArgParser::Option *
ArgParser::findOption(const std::string &name) const
{
    for (const Option &o : options)
        if (o.name == name)
            return &o;
    return nullptr;
}

std::string
ArgParser::usage() const
{
    std::ostringstream oss;
    oss << "usage: " << program;
    for (const Positional &p : positionals)
        oss << " <" << p.name << ">";
    if (!flags.empty() || !options.empty())
        oss << " [options]";
    oss << "\n\n" << description << "\n";
    if (!positionals.empty()) {
        oss << "\narguments:\n";
        for (const Positional &p : positionals)
            oss << "  " << p.name << "  " << p.help << "\n";
    }
    oss << "\noptions:\n";
    for (const Option &o : options)
        oss << "  " << o.name << " <" << o.valueName << ">  " << o.help
            << "\n";
    for (const Flag &f : flags)
        oss << "  " << f.name << "  " << f.help << "\n";
    oss << "  --help  show this message and exit\n";
    return oss.str();
}

bool
ArgParser::parse(int argc, char **argv)
{
    size_t next_positional = 0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            fputs(usage().c_str(), stdout);
            code = 0;
            return false;
        }
        // Split "--opt=value" into name + inline value.
        std::string name = arg, inline_value;
        bool has_inline = false;
        if (size_t eq = arg.find('=');
            arg.rfind("--", 0) == 0 && eq != std::string::npos) {
            name = arg.substr(0, eq);
            inline_value = arg.substr(eq + 1);
            has_inline = true;
        }
        if (const Flag *f = findFlag(name)) {
            if (has_inline) {
                fprintf(stderr, "%s: flag %s takes no value\n",
                        program.c_str(), name.c_str());
                code = 1;
                return false;
            }
            *f->out = true;
            continue;
        }
        if (const Option *o = findOption(name)) {
            std::string value;
            if (has_inline) {
                value = inline_value;
            } else if (i + 1 < argc) {
                value = argv[++i];
            } else {
                fprintf(stderr, "%s: option %s needs a <%s> value\n",
                        program.c_str(), name.c_str(),
                        o->valueName.c_str());
                code = 1;
                return false;
            }
            if (o->strOut) {
                *o->strOut = value;
            } else if (o->intOut) {
                char *end = nullptr;
                errno = 0;
                long v = std::strtol(value.c_str(), &end, 10);
                if (end == value.c_str() || *end != '\0' ||
                    errno == ERANGE || v < INT_MIN || v > INT_MAX) {
                    fprintf(stderr,
                            "%s: option %s expects an int-range "
                            "integer, got '%s'\n",
                            program.c_str(), name.c_str(),
                            value.c_str());
                    code = 1;
                    return false;
                }
                *o->intOut = static_cast<int>(v);
            } else {
                char *end = nullptr;
                errno = 0;
                double v = std::strtod(value.c_str(), &end);
                if (end == value.c_str() || *end != '\0' ||
                    errno == ERANGE) {
                    fprintf(stderr,
                            "%s: option %s expects a number, got "
                            "'%s'\n",
                            program.c_str(), name.c_str(),
                            value.c_str());
                    code = 1;
                    return false;
                }
                *o->doubleOut = v;
            }
            continue;
        }
        if (arg.rfind("-", 0) != 0 &&
            next_positional < positionals.size()) {
            *positionals[next_positional++].out = arg;
            continue;
        }
        fprintf(stderr, "%s: unknown argument '%s' (try --help)\n",
                program.c_str(), arg.c_str());
        code = 1;
        return false;
    }
    if (next_positional < positionals.size()) {
        fprintf(stderr, "%s: missing <%s> argument (try --help)\n",
                program.c_str(),
                positionals[next_positional].name.c_str());
        code = 1;
        return false;
    }
    return true;
}

} // namespace pimba
