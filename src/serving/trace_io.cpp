#include "serving/trace_io.h"

#include <cerrno>
#include <cinttypes>
#include <cstdlib>
#include <cstring>

// The located-rejection type of the config layer. The trace loader is
// the config surface of trace files — a malformed file is a user
// configuration error, reported exactly like a malformed scenario.
#include "config/json.h"
#include "core/logging.h"

namespace pimba {

namespace {

/// 17 significant digits: the shortest precision that round-trips
/// every binary64 through decimal text.
void
appendDouble(std::string &out, double v)
{
    char buf[64];
    snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

void
appendU64(std::string &out, uint64_t v)
{
    char buf[32];
    snprintf(buf, sizeof buf, "%" PRIu64, v);
    out += buf;
}

/// Parse one full uint64 token; false on any trailing garbage.
bool
parseU64(const std::string &tok, uint64_t &out)
{
    if (tok.empty() || tok[0] == '-')
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = strtoull(tok.c_str(), &end, 10);
    if (errno != 0 || end != tok.c_str() + tok.size())
        return false;
    out = v;
    return true;
}

/// Parse one full double token; false on any trailing garbage.
bool
parseDouble(const std::string &tok, double &out)
{
    if (tok.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    double v = strtod(tok.c_str(), &end);
    if (errno != 0 || end != tok.c_str() + tok.size())
        return false;
    out = v;
    return true;
}

/// Split @p line on commas into @p fields (no quoting in this format).
void
splitCsv(const std::string &line, std::vector<std::string> &fields)
{
    fields.clear();
    size_t start = 0;
    for (;;) {
        size_t comma = line.find(',', start);
        if (comma == std::string::npos) {
            fields.push_back(line.substr(start));
            return;
        }
        fields.push_back(line.substr(start, comma - start));
        start = comma + 1;
    }
}

} // namespace

std::string
renderTrace(const std::vector<Request> &trace)
{
    std::string out;
    // ~40 bytes per row in practice; the reserve keeps the append loop
    // from reallocating log(n) times on million-request traces.
    out.reserve(96 + trace.size() * 40);
    out += "# ";
    out += kTraceFormatV1;
    out += "\n# requests: ";
    appendU64(out, trace.size());
    out += "\n# columns: id,arrival_seconds,input_tokens,output_tokens,"
           "class\n";
    for (size_t i = 0; i < trace.size(); ++i) {
        const Request &r = trace[i];
        if (i > 0) {
            PIMBA_ASSERT(r.id > trace[i - 1].id,
                         "renderTrace: ids must be strictly increasing "
                         "(request ", i, " has id ", r.id, " after ",
                         trace[i - 1].id, ")");
            PIMBA_ASSERT(!(r.arrival < trace[i - 1].arrival),
                         "renderTrace: arrivals must be non-decreasing "
                         "(request ", i, " arrives at ",
                         r.arrival.value(), "s after ",
                         trace[i - 1].arrival.value(), "s)");
        }
        appendU64(out, r.id);
        out += ',';
        appendDouble(out, r.arrival.value());
        out += ',';
        appendU64(out, r.inputLen);
        out += ',';
        appendU64(out, r.outputLen);
        out += ',';
        appendU64(out, r.classId);
        out += '\n';
    }
    return out;
}

void
saveTrace(const std::string &path, const std::vector<Request> &trace)
{
    std::string body = renderTrace(trace);
    FILE *f = fopen(path.c_str(), "w");
    if (!f)
        throw ConfigError(path + ": cannot create trace file: " +
                          strerror(errno));
    size_t wrote = fwrite(body.data(), 1, body.size(), f);
    bool ok = wrote == body.size() && fclose(f) == 0;
    if (!ok)
        throw ConfigError(path + ": short write saving trace (" +
                          strerror(errno) + ")");
}

TraceFileReader::TraceFileReader(const std::string &path_, int limit_)
    : path(path_), limit(limit_ > 0 ? static_cast<uint64_t>(limit_) : 0)
{
    file = fopen(path.c_str(), "r");
    if (!file)
        throw ConfigError(path + ": cannot open trace file: " +
                          strerror(errno));
    if (!readLine())
        fail("empty file (expected the '# pimba-trace-v1' header)");
    if (lineBuf != std::string("# ") + kTraceFormatV1)
        fail("bad format header \"" + lineBuf + "\" (expected \"# " +
             std::string(kTraceFormatV1) +
             "\"; is this a trace from a newer pimba?)");
    if (!readLine())
        fail("file ends before the '# requests: N' count line");
    const std::string prefix = "# requests: ";
    if (lineBuf.rfind(prefix, 0) != 0 ||
        !parseU64(lineBuf.substr(prefix.size()), declared))
        fail("bad request-count line \"" + lineBuf +
             "\" (expected \"# requests: N\")");
}

TraceFileReader::~TraceFileReader()
{
    if (file)
        fclose(file);
}

void
TraceFileReader::fail(const std::string &msg) const
{
    throw ConfigError(path + ": " + msg, lineNo, 1);
}

bool
TraceFileReader::readLine()
{
    lineBuf.clear();
    char buf[512];
    bool any = false;
    while (fgets(buf, sizeof buf, file)) {
        any = true;
        lineBuf += buf;
        if (!lineBuf.empty() && lineBuf.back() == '\n') {
            lineBuf.pop_back();
            break;
        }
    }
    if (any)
        ++lineNo;
    return any;
}

bool
TraceFileReader::next(Request &out)
{
    if (limit > 0 && emitted >= limit)
        return false;
    std::vector<std::string> fields;
    for (;;) {
        if (!readLine()) {
            if (emitted < declared)
                fail("truncated: file ends after " +
                     std::to_string(emitted) + " of " +
                     std::to_string(declared) + " declared requests");
            return false;
        }
        if (lineBuf.empty() || lineBuf[0] == '#')
            continue; // blank lines and comments are fine anywhere
        if (emitted >= declared)
            fail("more data rows than the declared " +
                 std::to_string(declared) + " requests");
        splitCsv(lineBuf, fields);
        if (fields.size() != 5)
            fail("expected 5 comma-separated fields "
                 "(id,arrival,input,output,class), got " +
                 std::to_string(fields.size()));
        Request r;
        double arrival = 0.0;
        uint64_t classId = 0;
        if (!parseU64(fields[0], r.id))
            fail("bad request id \"" + fields[0] + "\"");
        if (!parseDouble(fields[1], arrival))
            fail("bad arrival time \"" + fields[1] + "\"");
        if (!parseU64(fields[2], r.inputLen))
            fail("bad input length \"" + fields[2] + "\"");
        if (!parseU64(fields[3], r.outputLen))
            fail("bad output length \"" + fields[3] + "\"");
        if (!parseU64(fields[4], classId) ||
            classId > 0xFFFFFFFFull)
            fail("bad class id \"" + fields[4] + "\"");
        if (!(arrival >= 0.0)) // also rejects NaN
            fail("arrival time must be a finite non-negative number, "
                 "got \"" + fields[1] + "\"");
        if (r.inputLen < 1)
            fail("input length must be >= 1 (requests need a "
                 "non-empty prompt)");
        if (r.outputLen < 1)
            fail("output length must be >= 1 (requests must generate "
                 "a token)");
        r.arrival = Seconds(arrival);
        r.classId = static_cast<uint32_t>(classId);
        if (haveLast) {
            if (r.id <= lastId)
                fail("request ids must be strictly increasing, got " +
                     std::to_string(r.id) + " after " +
                     std::to_string(lastId));
            if (r.arrival < lastArrival)
                fail("arrival times must be non-decreasing, got " +
                     std::to_string(arrival) + "s after " +
                     std::to_string(lastArrival.value()) + "s");
        }
        haveLast = true;
        lastId = r.id;
        lastArrival = r.arrival;
        ++emitted;
        out = r;
        return true;
    }
}

std::vector<Request>
loadTrace(const std::string &path, int limit)
{
    TraceFileReader reader(path, limit);
    std::vector<Request> trace;
    if (reader.declaredRequests() > 0)
        trace.reserve(limit > 0
                          ? std::min<uint64_t>(
                                static_cast<uint64_t>(limit),
                                reader.declaredRequests())
                          : reader.declaredRequests());
    Request r;
    while (reader.next(r))
        trace.push_back(r);
    return trace;
}

std::vector<Request>
materializeTrace(const TraceConfig &cfg)
{
    if (!cfg.file.empty())
        return loadTrace(cfg.file, cfg.numRequests);
    return generateTrace(cfg);
}

std::unique_ptr<ArrivalSource>
openArrivalSource(const TraceConfig &cfg)
{
    if (!cfg.file.empty())
        return std::make_unique<TraceFileReader>(cfg.file,
                                                 cfg.numRequests);
    return std::make_unique<ArrivalStream>(cfg);
}

} // namespace pimba
