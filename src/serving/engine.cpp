#include "serving/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/logging.h"
#include "serving/step_memo.h"

namespace pimba {

namespace {

StepPhases
phasesOf(const StepResult &r)
{
    StepPhases p;
    p.gpu = r.gpuSeconds.value();
    p.pim = r.pimSeconds.value();
    p.sync = r.syncSeconds.value();
    return p;
}

} // namespace

Tokens
resolvedIterTokenBudget(const EngineConfig &cfg)
{
    return cfg.iterTokenBudget != Tokens(0)
               ? cfg.iterTokenBudget
               : Tokens(static_cast<uint64_t>(cfg.maxBatch)) +
                     cfg.prefillChunk;
}

std::string
validateEngineConfig(const EngineConfig &cfg)
{
    if (cfg.maxBatch < 1)
        return "engine: maxBatch must be >= 1, got " +
               std::to_string(cfg.maxBatch);
    if (cfg.prefillChunk < Tokens(1))
        return "engine: prefillChunk must be >= 1 (a chunk of zero "
               "prompt tokens never finishes a prefill)";
    if (cfg.blockTokens < Tokens(1))
        return "engine: blockTokens must be >= 1 (the paged allocator "
               "cannot carve zero-token blocks)";
    if (cfg.memoryBudget < Bytes(0.0))
        return "engine: memoryBudget must be >= 0 bytes (0 selects the "
               "system's HBM capacity), got " +
               std::to_string(cfg.memoryBudget.value());
    if (!(cfg.slo.ttft > Seconds(0.0)) || !(cfg.slo.tpot > Seconds(0.0)))
        return "engine: SLO targets must be positive seconds (ttft " +
               std::to_string(cfg.slo.ttft.value()) + ", tpot " +
               std::to_string(cfg.slo.tpot.value()) + ")";
    if (cfg.policy == SchedulerPolicy::Sarathi) {
        // The fused-step memo packs (decode batch, prefill tokens) into
        // its key; reject configs that could overflow it mid-run.
        Tokens budget = resolvedIterTokenBudget(cfg);
        if (cfg.maxBatch >= (1 << 12))
            return "engine: the Sarathi policy requires maxBatch < "
                   "4096, got " +
                   std::to_string(cfg.maxBatch);
        if (budget >= Tokens(1ull << 16))
            return "engine: the Sarathi policy requires an iteration "
                   "token budget < 65536, got " +
                   std::to_string(budget.value());
    }
    return "";
}

ServingEngine::ServingEngine(const ServingSimulator &sim_,
                             const ModelConfig &model_, EngineConfig cfg_)
    : sim(sim_), model(model_), cfg(cfg_)
{
    if (std::string err = validateEngineConfig(cfg); !err.empty())
        PIMBA_FATAL(err);
    cfg.iterTokenBudget = resolvedIterTokenBudget(cfg);
    if (cfg.executionMode)
        sim.setExecutionMode(*cfg.executionMode);
    sched = makeScheduler(cfg.policy, cfg.prefillChunk,
                          cfg.iterTokenBudget);
}

double
ServingEngine::decodeSeconds(int batch, uint64_t mean_seq)
{
    uint64_t key = decodeMemoKey(batch, mean_seq);
    if (const double *hit = decodeCache.find(key))
        return *hit;
    double secs = sim.generationStep(model, batch, bucketCenter(mean_seq))
                      .seconds.value();
    return decodeCache.insert(key, secs);
}

double
ServingEngine::prefillSeconds(uint64_t chunk, uint64_t seq_pos)
{
    // Attention inside a prefill chunk is affine in the base cache
    // position, so bucketing the position mirrors the decode memo —
    // including evaluating at the bucket *center*, matching
    // decodeSeconds (the seed evaluated this memo at the bucket floor,
    // biasing prefill cost low by half a bucket).
    uint64_t key = prefillMemoKey(chunk, seq_pos);
    if (const double *hit = prefillCache.find(key))
        return *hit;
    double secs = sim.prefillStep(model, chunk, bucketCenter(seq_pos))
                      .seconds.value();
    return prefillCache.insert(key, secs);
}

double
ServingEngine::mixedSeconds(int decode_batch, uint64_t decode_seq,
                            uint64_t prefill_tokens, uint64_t prefill_pos)
{
    PIMBA_ASSERT(static_cast<uint64_t>(decode_batch) < kMixedMaxBatch &&
                     prefill_tokens < kMixedMaxPrefillTokens &&
                     seqBucket(decode_seq) < kMixedMaxBucket &&
                     seqBucket(prefill_pos) < kMixedMaxBucket,
                 "fused-step memo key overflow");
    uint64_t key = mixedMemoKey(decode_batch, decode_seq, prefill_tokens,
                                prefill_pos);
    if (const double *hit = mixedCache.find(key))
        return *hit;
    double secs = sim.mixedStep(model, decode_batch,
                                bucketCenter(decode_seq), prefill_tokens,
                                bucketCenter(prefill_pos))
                      .seconds.value();
    return mixedCache.insert(key, secs);
}

StepPhases
ServingEngine::decodePhases(int batch, uint64_t mean_seq)
{
    uint64_t key = decodeMemoKey(batch, mean_seq);
    if (const StepPhases *hit = decodePhaseCache.find(key))
        return *hit;
    return decodePhaseCache.insert(
        key,
        phasesOf(sim.generationStep(model, batch, bucketCenter(mean_seq))));
}

StepPhases
ServingEngine::prefillPhases(uint64_t chunk, uint64_t seq_pos)
{
    uint64_t key = prefillMemoKey(chunk, seq_pos);
    if (const StepPhases *hit = prefillPhaseCache.find(key))
        return *hit;
    return prefillPhaseCache.insert(
        key, phasesOf(sim.prefillStep(model, chunk, bucketCenter(seq_pos))));
}

StepPhases
ServingEngine::mixedPhases(int decode_batch, uint64_t decode_seq,
                           uint64_t prefill_tokens, uint64_t prefill_pos)
{
    // Bounds were already asserted by the mixedSeconds call that costed
    // this same iteration.
    uint64_t key = mixedMemoKey(decode_batch, decode_seq, prefill_tokens,
                                prefill_pos);
    if (const StepPhases *hit = mixedPhaseCache.find(key))
        return *hit;
    return mixedPhaseCache.insert(
        key, phasesOf(sim.mixedStep(model, decode_batch,
                                    bucketCenter(decode_seq),
                                    prefill_tokens,
                                    bucketCenter(prefill_pos))));
}

void
ServingEngine::attachObservers(const EngineObservers &o)
{
    obs = o;
    if (obs.tracer) {
        obs.tracer->threadName(obs.pid, kTraceIterTid, "iterations");
        obs.tracer->threadName(obs.pid, kTraceGpuTid, "gpu");
        obs.tracer->threadName(obs.pid, kTracePimTid, "pim");
        obs.tracer->threadName(obs.pid, kTraceSyncTid, "sync");
    }
}

void
ServingEngine::tracePhaseSlices(Seconds start, const StepPhases &ph,
                                const std::string &name)
{
    Tracer &t = *obs.tracer;
    const bool overlapped =
        sim.system().executionMode == ExecutionMode::Overlapped;
    // Blocked mode runs gpu -> pim -> sync back-to-back; overlapped
    // mode launches gpu and pim together and syncs after the longer
    // one — matching StepResult::blockedSeconds/overlappedSeconds.
    Seconds pimStart = overlapped ? start : start + Seconds(ph.gpu);
    Seconds syncStart = overlapped
                            ? start + Seconds(std::max(ph.gpu, ph.pim))
                            : start + Seconds(ph.gpu + ph.pim);
    if (ph.gpu > 0.0)
        t.complete(obs.pid, kTraceGpuTid, start, Seconds(ph.gpu), name,
                   "gpu");
    if (ph.pim > 0.0)
        t.complete(obs.pid, kTracePimTid, pimStart, Seconds(ph.pim),
                   name, "pim");
    if (ph.sync > 0.0)
        t.complete(obs.pid, kTraceSyncTid, syncStart, Seconds(ph.sync),
                   name, "sync");
}

void
ServingEngine::traceIteration(Seconds start, Seconds dur, int decodeBatch,
                              uint64_t decodeMean, uint64_t prefillTokens,
                              uint64_t prefillMean)
{
    const char *kind = plan.fused ? "fused"
                       : decodeBatch > 0
                           ? (plan.prefill.empty() ? "decode"
                                                   : "decode+prefill")
                           : "prefill";
    obs.tracer->complete(
        obs.pid, kTraceIterTid, start, dur, kind, "iteration",
        {{"batch", static_cast<double>(running.size())},
         {"decode_batch", static_cast<double>(decodeBatch)},
         {"prefill_tokens", static_cast<double>(prefillTokens)}});
    if (plan.fused) {
        tracePhaseSlices(start,
                         mixedPhases(decodeBatch, decodeMean,
                                     prefillTokens, prefillMean),
                         "fused");
        return;
    }
    // Unfused substeps run sequentially (seed behavior): the decode
    // step first, then each prefill chunk, each internally split into
    // its gpu/pim/sync phases.
    Seconds cursor = start;
    if (decodeBatch > 0) {
        tracePhaseSlices(cursor, decodePhases(decodeBatch, decodeMean),
                         "decode");
        cursor += Seconds(decodeSeconds(decodeBatch, decodeMean));
    }
    for (const PrefillSlice &s : plan.prefill) {
        uint64_t pos = running[s.idx].prefilled;
        tracePhaseSlices(cursor, prefillPhases(s.tokens.value(), pos),
                         "prefill");
        cursor += Seconds(prefillSeconds(s.tokens.value(), pos));
    }
}

void
ServingEngine::begin()
{
    PIMBA_ASSERT(!active, "begin() inside an open session");
    report = ServingReport{};
    report.policy = cfg.policy;
    report.executionMode = sim.system().executionMode;
    report.memoryBudget = cfg.memoryBudget > Bytes(0.0)
                              ? cfg.memoryBudget
                              : Bytes(sim.system().gpu.memCapacity *
                                      sim.system().nGpus);
    weightBytes = sim.weightFootprint(model);
    PIMBA_ASSERT(weightBytes < report.memoryBudget,
                 "model weights alone exceed the memory budget");

    // Carve the post-weights pool into blocks. The mapper quantizes a
    // request's fixed (state + activation) and per-token KV demand.
    const Bytes fixedBytes = sim.requestFootprint(model, 0);
    const Bytes perTokenBytes =
        sim.requestFootprint(model, 1) - fixedBytes;
    mapper = BlockMapper::make(fixedBytes, perTokenBytes, cfg.blockTokens);
    const uint64_t totalBlocks = static_cast<uint64_t>(
        (report.memoryBudget - weightBytes) / mapper.blockBytes);
    if (totalBlocks == 0)
        PIMBA_FATAL("budget of ", report.memoryBudget.value(),
                    " bytes leaves no room for a single ",
                    mapper.blockBytes.value(),
                    "-byte block past the weights");
    blocks.emplace(Blocks(totalBlocks));
    report.totalBlocks = Blocks(totalBlocks);

    clock = Seconds(0.0);
    utilSum = 0.0;
    submitted = 0;
    pendingArrivals.clear();
    waiting.clear();
    running.clear();
    preloadedIds.clear();
    life.clear();
    prefixCache.clear();
    active = true;
}

void
ServingEngine::submit(const Request &r)
{
    PIMBA_ASSERT(active, "submit() outside a session");
    PIMBA_ASSERT(r.inputLen >= 1 && r.outputLen >= 1, "request ", r.id,
                 " has empty prompt or output");
    PIMBA_ASSERT(pendingArrivals.empty() ||
                     r.arrival >= pendingArrivals.back().arrival,
                 "arrivals must be submitted in non-decreasing order");
    pendingArrivals.push_back(r);
    ++submitted;
    if (obs.tracer) {
        // One lane per request: open its span at arrival time; the
        // retire path closes it at completion.
        int lane = requestLane(r.id);
        obs.tracer->threadName(obs.pid, lane,
                               "req " + std::to_string(r.id));
        obs.tracer->begin(
            obs.pid, lane, r.arrival, "req " + std::to_string(r.id),
            "request",
            {{"input_len", static_cast<double>(r.inputLen)},
             {"output_len", static_cast<double>(r.outputLen)}});
    }
}

void
ServingEngine::submitPrefilled(const Request &r)
{
    PIMBA_ASSERT(r.outputLen >= 2, "prefilled request ", r.id,
                 " has nothing left to decode — single-token requests "
                 "complete at the prefill stage");
    submit(r);
    preloadedIds.insert(r.id);
}

int
ServingEngine::tierOf(uint32_t classId) const
{
    return classId < cfg.tierByClass.size() ? cfg.tierByClass[classId]
                                            : 0;
}

void
ServingEngine::enqueueWaiting(const Request &r, bool atSegmentFront)
{
    if (cfg.tierByClass.empty()) {
        // Untiered: the exact FIFO (and eviction push_front) the
        // engine has always had, byte-identical.
        if (atSegmentFront)
            waiting.push_front(r);
        else
            waiting.push_back(r);
        return;
    }
    // The queue is kept ordered by tier, highest first, FIFO within a
    // tier. A new arrival joins the *back* of its tier segment; an
    // evicted request rejoins the *front* of its segment (it keeps its
    // recompute-next priority among peers but never jumps a higher
    // tier).
    const int tier = tierOf(r.classId);
    size_t pos = 0;
    if (atSegmentFront) {
        while (pos < waiting.size() &&
               tierOf(waiting[pos].classId) > tier)
            ++pos;
    } else {
        while (pos < waiting.size() &&
               tierOf(waiting[pos].classId) >= tier)
            ++pos;
    }
    waiting.insert(waiting.begin() + static_cast<std::ptrdiff_t>(pos),
                   r);
}

void
ServingEngine::revealArrivals()
{
    while (!pendingArrivals.empty() &&
           pendingArrivals.front().arrival <= clock) {
        enqueueWaiting(pendingArrivals.front(), /*atSegmentFront=*/false);
        pendingArrivals.pop_front();
    }
}

Seconds
ServingEngine::advanceTo(Seconds t)
{
    PIMBA_ASSERT(active, "advanceTo() outside a session");
    while (true) {
        revealArrivals();
        if (running.empty() && waiting.empty()) {
            // Idle: jump to the next arrival if it is due by t.
            if (!pendingArrivals.empty() &&
                pendingArrivals.front().arrival <= t) {
                clock = std::max(clock, pendingArrivals.front().arrival);
                continue;
            }
            break;
        }
        if (clock >= t)
            break;
        iterate();
    }
    return clock;
}

void
ServingEngine::drain()
{
    advanceTo(Seconds(std::numeric_limits<double>::infinity()));
    PIMBA_ASSERT(report.completedRequests + report.cancelledRequests ==
                     submitted,
                 "drain left ",
                 submitted - report.completedRequests -
                     report.cancelledRequests,
                 " requests unserved");
}

ServingReport
ServingEngine::finish()
{
    PIMBA_ASSERT(active, "finish() outside a session");
    PIMBA_ASSERT(report.completedRequests + report.cancelledRequests ==
                     submitted,
                 "finish() before drain: ",
                 submitted - report.completedRequests -
                     report.cancelledRequests,
                 " requests in flight");
    PIMBA_ASSERT(blocks->usedBlocks() == Blocks(0),
                 "block pool leaked at drain: ",
                 blocks->usedBlocks().value(),
                 " blocks still allocated");
    report.makespan = clock;
    report.avgBlockUtil =
        report.iterations > 0
            ? utilSum / static_cast<double>(report.iterations)
            : 0.0;
    report.metrics = computeMetrics(report.completed, report.makespan,
                                    cfg.slo);
    // computeMetrics credits each completion with its full outputLen,
    // but an imported (submitPrefilled) request's first token was
    // delivered by its prefill replica — this replica's delivered
    // counter is authoritative. Identical for ordinary runs.
    report.metrics.generatedTokens = report.generatedTokens;
    report.metrics.tokensPerSec =
        report.makespan > Seconds(0.0)
            ? Tokens(report.generatedTokens) / report.makespan
            : TokensPerSecond(0.0);
    report.metrics.cancelledRequests = report.cancelledRequests;
    report.metrics.wastedTokens = report.wastedTokens;
    // Under streamOnly the per-request records were never retained, so
    // computeMetrics saw an empty vector; the counters are still exact.
    // Percentile summaries live in the attached StreamingMetrics.
    if (obs.streamOnly && obs.stream) {
        report.metrics.requests = report.completedRequests;
        report.metrics.requestsPerSec =
            report.makespan > Seconds(0.0)
                ? RequestsPerSecond(
                      static_cast<double>(report.completedRequests) /
                      report.makespan.value())
                : RequestsPerSecond(0.0);
    }
    active = false;
    return std::move(report);
}

size_t
ServingEngine::waitingCount() const
{
    return waiting.size() + pendingArrivals.size();
}

Seconds
ServingEngine::nextEventTime() const
{
    if (!running.empty() || !waiting.empty())
        return clock; // resident or revealed work: actionable now
    if (!pendingArrivals.empty())
        return pendingArrivals.front().arrival;
    return Seconds(std::numeric_limits<double>::infinity());
}

size_t
ServingEngine::queueDepth() const
{
    return waitingCount() + running.size();
}

uint64_t
ServingEngine::outstandingTokens() const
{
    uint64_t total = 0;
    auto queued = [&](const Request &r) {
        // A preloaded prompt is already computed; only its remaining
        // decode steps are outstanding work.
        total += preloadedIds.count(r.id) ? r.outputLen - 1
                                          : r.inputLen + r.outputLen;
    };
    for (const Request &r : waiting)
        queued(r);
    for (const Request &r : pendingArrivals)
        queued(r);
    for (const RequestState &rs : running)
        total += (rs.req.inputLen - rs.prefilled) +
                 (rs.req.outputLen - rs.generated);
    return total;
}

uint64_t
ServingEngine::tierPressure() const
{
    if (cfg.tierByClass.empty())
        return 0;
    uint64_t total = 0;
    auto weight = [&](uint32_t classId) {
        total += static_cast<uint64_t>(tierOf(classId)) + 1;
    };
    for (const Request &r : waiting)
        weight(r.classId);
    for (const Request &r : pendingArrivals)
        weight(r.classId);
    for (const RequestState &rs : running)
        weight(rs.req.classId);
    return total;
}

uint64_t
ServingEngine::cachedPrefixBlocks(uint32_t classId) const
{
    if (classId >= prefixCache.size() || prefixCache[classId] == 0)
        return 0;
    const uint64_t bt = cfg.blockTokens.value();
    return (prefixCache[classId] + bt - 1) / bt;
}

Seconds
ServingEngine::oldestQueuedArrival() const
{
    Seconds oldest{std::numeric_limits<double>::infinity()};
    for (const Request &r : waiting)
        oldest = std::min(oldest, r.arrival);
    return oldest;
}

bool
ServingEngine::cancel(uint64_t id, Seconds now, bool onlyIfNoFirstToken)
{
    PIMBA_ASSERT(active, "cancel() outside a session");
    auto closeLane = [&] {
        if (obs.tracer)
            obs.tracer->end(obs.pid, requestLane(id),
                            std::max(now, clock));
    };
    // Queued (never admitted, or evicted back to the queue): nothing
    // was computed since the last eviction — the eviction path already
    // billed any discarded work as recompute debt — so only the
    // bookkeeping goes.
    auto dropQueued = [&](std::deque<Request> &q) {
        for (auto it = q.begin(); it != q.end(); ++it) {
            if (it->id != id)
                continue;
            q.erase(it);
            ++report.cancelledRequests;
            life.erase(id);
            preloadedIds.erase(id);
            closeLane();
            return true;
        }
        return false;
    };
    if (dropQueued(waiting) || dropQueued(pendingArrivals))
        return true;

    for (size_t i = 0; i < running.size(); ++i) {
        RequestState &rs = running[i];
        if (rs.req.id != id)
            continue;
        if (onlyIfNoFirstToken && rs.firstToken >= Seconds(0.0))
            return false; // TTFT deadline already met
        // Locally computed work becomes waste and leaves the delivered
        // counter. A preloaded request's prompt and first token were
        // produced (and counted) on its prefill replica; only local
        // decode steps are this replica's to un-count — with the same
        // wrap clamp the eviction path needs. Prefix-cache-skipped
        // prompt tokens were never computed, so they are not waste.
        uint64_t undelivered = 0;
        uint64_t wasted = 0;
        if (rs.preloaded) {
            undelivered = rs.generated > 0 ? rs.generated - 1 : 0;
            wasted = undelivered;
        } else {
            PIMBA_ASSERT(rs.prefilled >= rs.prefixSkipped,
                         "prefix-skip accounting underflow on cancel");
            undelivered = rs.generated;
            wasted = (rs.prefilled - rs.prefixSkipped) + rs.generated;
        }
        PIMBA_ASSERT(report.generatedTokens >= undelivered,
                     "delivered-token counter underflow on cancel");
        report.generatedTokens -= undelivered;
        report.wastedTokens += wasted;
        ++report.cancelledRequests;
        blocks->release(id);
        life.erase(id);
        preloadedIds.erase(id);
        closeLane();
        running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
    }
    return false; // already completed or cancelled — stale timer
}

void
ServingEngine::iterate()
{
    PIMBA_ASSERT(!running.empty() || !waiting.empty(),
                 "iterate() with no work");

    // Policy-ordered admission. A request is admitted when its whole
    // prompt (plus the first output token) could be cached into the
    // free blocks *after* honoring the pledges already made to resident
    // prompts — a watermark that keeps co-resident prefills from
    // evicting each other. Only the fixed state blocks are allocated up
    // front; KV blocks follow the tokens as they are actually cached,
    // and decode growth past the pledge is what eviction handles. A
    // preloaded (disaggregated) request's prompt blocks all land at
    // once, so admission allocates its full pledge immediately.
    while (!waiting.empty() &&
           running.size() < static_cast<size_t>(cfg.maxBatch)) {
        size_t pick = sched->pickAdmission(waiting);
        const Request &r = waiting[pick];
        Blocks outstanding{0};
        for (const RequestState &rs : running) {
            Blocks held = blocks->holding(rs.req.id);
            if (rs.pledgedBlocks > held)
                outstanding += rs.pledgedBlocks - held;
        }
        const bool preloaded = preloadedIds.count(r.id) > 0;
        Blocks pledge = mapper.blocksFor(Tokens(r.inputLen + 1));
        if (outstanding + pledge > blocks->freeBlocks())
            break;
        bool ok = blocks->allocate(
            r.id, preloaded ? pledge : mapper.blocksFor(Tokens(0)));
        PIMBA_ASSERT(ok, "admission allocation failed");
        RequestState rs;
        rs.req = r;
        rs.preloaded = preloaded;
        rs.pledgedBlocks = pledge;
        rs.admitted = clock;
        if (preloaded) {
            // Prompt cached elsewhere and shipped in; first token was
            // already delivered by the prefill replica.
            rs.phase = RequestPhase::Decode;
            rs.prefilled = r.inputLen;
            rs.generated = 1;
            rs.firstToken = clock;
        } else {
            rs.phase = RequestPhase::Prefill;
            if (r.prefixLen > 0 && r.classId < prefixCache.size()) {
                // Warm per-class prefix cache: skip the shared leading
                // tokens, capped so at least one prompt token is
                // prefilled locally (the final chunk is what emits the
                // first output token).
                uint64_t hit = std::min(
                    {prefixCache[r.classId], r.prefixLen,
                     r.inputLen - 1});
                rs.prefilled = hit;
                rs.prefixSkipped = hit;
            }
        }
        Lifecycle &lc = life[r.id];
        if (lc.firstAdmitted < Seconds(0.0))
            lc.firstAdmitted = clock;
        if (obs.tracer)
            obs.tracer->instant(
                obs.pid, requestLane(rs.req.id), clock,
                lc.preemptions > 0 ? "readmitted (recompute)"
                : preloaded        ? "admitted (preloaded)"
                                   : "admitted",
                "request",
                {{"queueing", (clock - rs.req.arrival).value()},
                 {"preemptions",
                  static_cast<double>(lc.preemptions)}});
        running.push_back(rs);
        waiting.erase(waiting.begin() +
                      static_cast<std::ptrdiff_t>(pick));
    }
    if (running.empty()) {
        const Request &r = waiting[sched->pickAdmission(waiting)];
        PIMBA_FATAL("request ", r.id, " needs ",
                    mapper.blocksFor(Tokens(r.inputLen + 1)).value(),
                    " blocks and can never fit the pool of ",
                    blocks->totalBlocks().value(),
                    " blocks under the budget of ",
                    report.memoryBudget.value(), " bytes");
    }
    report.peakBatch = std::max(report.peakBatch,
                                static_cast<int>(running.size()));

    // Let the policy compose the iteration, then allocate the blocks
    // its token production needs. Under memory pressure the most
    // recently admitted resident is preempted by eviction — blocks
    // freed, cached tokens discarded, re-queued at the head of the
    // waiting line to recompute — and the iteration is re-planned over
    // the survivors.
    while (true) {
        sched->planInto(running, plan);
        PIMBA_ASSERT(!plan.empty(), "iteration made no progress");

        Blocks extra{0};
        growScratch.clear();
        auto demand = [&](const RequestState &rs, uint64_t cached) {
            Blocks target = mapper.blocksFor(Tokens(cached));
            Blocks cur = blocks->holding(rs.req.id);
            if (target > cur) {
                growScratch.emplace_back(rs.req.id, target.value());
                extra += target - cur;
            }
        };
        for (size_t i : plan.decodeIdx)
            demand(running[i], running[i].cachedTokens() + 1);
        for (const PrefillSlice &s : plan.prefill) {
            const RequestState &rs = running[s.idx];
            uint64_t cached = rs.prefilled + s.tokens.value();
            if (cached >= rs.req.inputLen)
                cached = rs.req.inputLen + 1; // first output token
            demand(rs, cached);
        }
        if (extra <= blocks->freeBlocks()) {
            for (const auto &[id, target] : growScratch) {
                bool ok = blocks->growTo(id, Blocks(target));
                PIMBA_ASSERT(ok, "planned growth failed");
            }
            break;
        }

        if (running.size() == 1)
            PIMBA_FATAL("request ", running[0].req.id,
                        " can never fit: it alone outgrows the pool "
                        "of ", blocks->totalBlocks().value(),
                        " blocks under the budget of ",
                        report.memoryBudget.value(), " bytes");
        // running is kept in admission order, so the back is the most
        // recently admitted resident (lowest priority). With priority
        // tiers, victimize the lowest resident tier first and only
        // break ties by recency — the last (most recent) occurrence of
        // the minimum tier, which degenerates to exactly the back when
        // every class sits at tier 0.
        size_t victimIdx = running.size() - 1;
        if (!cfg.tierByClass.empty()) {
            int victimTier = tierOf(running[victimIdx].req.classId);
            for (size_t i = running.size() - 1; i-- > 0;) {
                int t = tierOf(running[i].req.classId);
                if (t < victimTier) {
                    victimTier = t;
                    victimIdx = i;
                }
            }
        }
        RequestState victim = running[victimIdx];
        running.erase(running.begin() +
                      static_cast<std::ptrdiff_t>(victimIdx));
        blocks->release(victim.req.id);
        ++report.preemptions;
        ++life[victim.req.id].preemptions;
        if (obs.tracer)
            obs.tracer->instant(
                obs.pid, requestLane(victim.req.id), clock, "evicted",
                "request",
                {{"prefilled", static_cast<double>(victim.prefilled)},
                 {"generated", static_cast<double>(victim.generated)}});
        // A preloaded victim's prompt and first token were produced
        // (and counted) by its prefill replica, not here: only locally
        // decoded tokens net out of the delivered count and become
        // recompute debt. The shipped blocks themselves are assumed to
        // be retained in the transfer staging buffer until completion,
        // so re-admission re-materializes them without a second link
        // transfer (re-fetch cost is not modeled).
        if (victim.preloaded) {
            // Clamp: a preloaded victim evicted before its first local
            // decode step still sits at generated == 1 (the imported
            // first token) — and must never go below. Subtracting an
            // unclamped `generated - 1` would wrap the unsigned counter
            // if a zero-generated state ever reached here, corrupting
            // both counters for the rest of the run.
            uint64_t locallyDecoded =
                victim.generated > 0 ? victim.generated - 1 : 0;
            PIMBA_ASSERT(report.generatedTokens >= locallyDecoded,
                         "delivered-token counter underflow on "
                         "preloaded eviction");
            report.recomputedTokens += locallyDecoded;
            report.generatedTokens -= locallyDecoded;
        } else {
            // Prefix-cache-skipped prompt tokens were never computed
            // here, so they are not recompute debt — re-admission will
            // skip them again from the still-warm cache.
            PIMBA_ASSERT(victim.prefilled >= victim.prefixSkipped,
                         "prefix-skip accounting underflow on eviction");
            PIMBA_ASSERT(report.generatedTokens >= victim.generated,
                         "delivered-token counter underflow on eviction");
            report.recomputedTokens +=
                (victim.prefilled - victim.prefixSkipped) +
                victim.generated;
            report.generatedTokens -= victim.generated;
        }
        enqueueWaiting(victim.req, /*atSegmentFront=*/true);
    }

    // Cost the iteration: either a fused step (Sarathi) or decode and
    // prefill steps run blocked back-to-back (seed behavior).
    int decodeBatch = static_cast<int>(plan.decodeIdx.size());
    uint64_t decodeMean = 0;
    if (decodeBatch > 0) {
        uint64_t seqSum = 0;
        for (size_t i : plan.decodeIdx)
            seqSum += running[i].cachedTokens();
        decodeMean = seqSum / static_cast<uint64_t>(decodeBatch);
    }
    uint64_t prefillTokens = 0;
    uint64_t prefillPosWeighted = 0;
    for (const PrefillSlice &s : plan.prefill) {
        uint64_t tokens = s.tokens.value();
        prefillTokens += tokens;
        // Exact sum of the chunk's cache positions: token i of the
        // chunk sits at prefilled + i, so the chunk contributes
        // tokens * prefilled + tokens * (tokens - 1) / 2.
        prefillPosWeighted += tokens * running[s.idx].prefilled +
                              tokens * (tokens - 1) / 2;
    }

    double iterSeconds = 0.0;
    if (plan.fused) {
        uint64_t prefillMean =
            prefillTokens > 0 ? prefillPosWeighted / prefillTokens : 0;
        iterSeconds = mixedSeconds(decodeBatch, decodeMean,
                                   prefillTokens, prefillMean);
    } else {
        if (decodeBatch > 0)
            iterSeconds += decodeSeconds(decodeBatch, decodeMean);
        for (const PrefillSlice &s : plan.prefill)
            iterSeconds += prefillSeconds(s.tokens.value(),
                                          running[s.idx].prefilled);
    }
    report.prefillChunks += plan.prefill.size();

    PIMBA_ASSERT(iterSeconds > 0.0, "iteration made no progress");
    clock += Seconds(iterSeconds);
    ++report.iterations;
    if (obs.tracer)
        traceIteration(clock - Seconds(iterSeconds), Seconds(iterSeconds),
                       decodeBatch, decodeMean, prefillTokens,
                       prefillTokens > 0
                           ? prefillPosWeighted / prefillTokens
                           : 0);

    // Apply the iteration's token production.
    for (size_t i : plan.decodeIdx) {
        ++running[i].generated;
        ++report.generatedTokens;
    }
    for (const PrefillSlice &s : plan.prefill) {
        RequestState &rs = running[s.idx];
        rs.prefilled += s.tokens.value();
        if (obs.tracer)
            obs.tracer->instant(
                obs.pid, requestLane(rs.req.id), clock, "prefill chunk",
                "request",
                {{"tokens", static_cast<double>(s.tokens.value())},
                 {"prefilled", static_cast<double>(rs.prefilled)}});
        if (rs.prefillDone()) {
            // The final prefill chunk emits the first output token.
            rs.generated = 1;
            rs.firstToken = clock;
            rs.phase = RequestPhase::Decode;
            ++report.generatedTokens;
            if (rs.req.prefixLen > 0) {
                // This class's shared prefix is now cached here: later
                // arrivals of the class skip it at admission.
                uint64_t warm = std::min(rs.req.prefixLen,
                                         rs.req.inputLen - 1);
                if (rs.req.classId >= prefixCache.size())
                    prefixCache.resize(rs.req.classId + 1, 0);
                prefixCache[rs.req.classId] =
                    std::max(prefixCache[rs.req.classId], warm);
            }
            if (obs.tracer)
                obs.tracer->instant(
                    obs.pid, requestLane(rs.req.id), clock,
                    "first token", "request",
                    {{"ttft", (clock - rs.req.arrival).value()}});
        }
    }

    // Block-pool and memory high-water marks for this iteration.
    double util = blocks->utilization();
    utilSum += util;
    report.peakBlockUtil = std::max(report.peakBlockUtil, util);
    Bytes usage = weightBytes +
                  static_cast<double>(blocks->usedBlocks().value()) *
                      mapper.blockBytes;
    report.peakMemory = std::max(report.peakMemory, usage);
    PIMBA_ASSERT(usage <= report.memoryBudget + Bytes(1.0),
                 "memory budget exceeded: ", usage.value(), " > ",
                 report.memoryBudget.value());

    // Retire completed requests and free their blocks.
    for (size_t i = 0; i < running.size();) {
        RequestState &rs = running[i];
        if (!rs.done()) {
            ++i;
            continue;
        }
        rs.finished = clock;
        Lifecycle &lc = life[rs.req.id];
        CompletedRequest done;
        done.req = rs.req;
        done.ttft = rs.firstToken - rs.req.arrival;
        done.latency = rs.finished - rs.req.arrival;
        done.tpot = rs.req.outputLen > 1
                        ? (rs.finished - rs.firstToken) /
                              static_cast<double>(rs.req.outputLen - 1)
                        : Seconds(0.0);
        done.queueing = lc.firstAdmitted - rs.req.arrival;
        done.preemptions = lc.preemptions;
        if (obs.tracer)
            obs.tracer->end(obs.pid, requestLane(rs.req.id), clock);
        if (obs.stream)
            obs.stream->observe(done);
        ++report.completedRequests;
        // streamOnly without a collector would drop the record on the
        // floor; keep it unless someone is actually aggregating.
        if (!(obs.streamOnly && obs.stream))
            report.completed.push_back(done);
        life.erase(rs.req.id);
        preloadedIds.erase(rs.req.id);
        blocks->release(rs.req.id);
        running.erase(running.begin() +
                      static_cast<std::ptrdiff_t>(i));
    }

    // Load counters and the periodic timeline sample, on the
    // post-retire state of this iteration. queueDepth() and
    // outstandingTokens() walk the queues, so they run only with an
    // observer attached.
    if (obs.tracer) {
        double liveUtil = blocks->utilization();
        obs.tracer->counter(obs.pid, clock, "queue depth",
                            static_cast<double>(queueDepth()));
        obs.tracer->counter(obs.pid, clock, "outstanding tokens",
                            static_cast<double>(outstandingTokens()));
        obs.tracer->counter(obs.pid, clock, "running",
                            static_cast<double>(running.size()));
        obs.tracer->counter(obs.pid, clock, "block util", liveUtil);
    }
    if (obs.timeline)
        obs.timeline->sample(obs.timelineTrack, clock, queueDepth(),
                             outstandingTokens(), running.size(),
                             blocks->utilization());
}

ServingReport
ServingEngine::run(const std::vector<Request> &trace)
{
    std::vector<Request> sorted = trace;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Request &a, const Request &b) {
                         return a.arrival < b.arrival;
                     });
    begin();
    for (const Request &r : sorted)
        submit(r);
    drain();
    return finish();
}

} // namespace pimba
