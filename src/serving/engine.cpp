#include "serving/engine.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "core/logging.h"

namespace pimba {

namespace {

/// Cache-length bucket width for the step memos. Attention cost is
/// affine in cache length, so quantizing to the bucket center bounds the
/// per-step error at half a bucket of KV traffic while making rate
/// sweeps O(distinct buckets) instead of O(iterations) model walks.
constexpr uint64_t kSeqBucket = 64;

/// Evaluation point of a memo bucket: its center, used uniformly by the
/// decode, prefill, and fused memos so the three stay comparable.
uint64_t
bucketCenter(uint64_t seq)
{
    return (seq / kSeqBucket) * kSeqBucket + kSeqBucket / 2;
}

} // namespace

ServingEngine::ServingEngine(const ServingSimulator &sim_,
                             const ModelConfig &model_, EngineConfig cfg_)
    : sim(sim_), model(model_), cfg(cfg_)
{
    PIMBA_ASSERT(cfg.maxBatch >= 1, "batch cap must be positive");
    PIMBA_ASSERT(cfg.prefillChunk >= 1, "prefill chunk must be positive");
    PIMBA_ASSERT(cfg.blockTokens >= 1, "block size must be positive");
    if (cfg.iterTokenBudget == 0)
        cfg.iterTokenBudget =
            static_cast<uint64_t>(cfg.maxBatch) + cfg.prefillChunk;
    if (cfg.policy == SchedulerPolicy::Sarathi) {
        // The fused-step memo packs (decode batch, prefill tokens) into
        // its key; reject configs that could overflow it mid-run.
        PIMBA_ASSERT(cfg.maxBatch < (1 << 12),
                     "Sarathi requires maxBatch < 4096");
        PIMBA_ASSERT(cfg.iterTokenBudget < (1ull << 16),
                     "Sarathi requires an iteration token budget "
                     "< 65536");
    }
    sched = makeScheduler(cfg.policy, cfg.prefillChunk,
                          cfg.iterTokenBudget);
}

double
ServingEngine::decodeSeconds(int batch, uint64_t mean_seq)
{
    uint64_t bucket = mean_seq / kSeqBucket;
    uint64_t key = (static_cast<uint64_t>(batch) << 32) | bucket;
    auto it = decodeCache.find(key);
    if (it != decodeCache.end())
        return it->second;
    double secs =
        sim.generationStep(model, batch, bucketCenter(mean_seq)).seconds;
    decodeCache.emplace(key, secs);
    return secs;
}

double
ServingEngine::prefillSeconds(uint64_t chunk, uint64_t seq_pos)
{
    // Attention inside a prefill chunk is affine in the base cache
    // position, so bucketing the position mirrors the decode memo —
    // including evaluating at the bucket *center*, matching
    // decodeSeconds (the seed evaluated this memo at the bucket floor,
    // biasing prefill cost low by half a bucket).
    uint64_t bucket = seq_pos / kSeqBucket;
    uint64_t key = (chunk << 32) | bucket;
    auto it = prefillCache.find(key);
    if (it != prefillCache.end())
        return it->second;
    double secs =
        sim.prefillStep(model, chunk, bucketCenter(seq_pos)).seconds;
    prefillCache.emplace(key, secs);
    return secs;
}

double
ServingEngine::mixedSeconds(int decode_batch, uint64_t decode_seq,
                            uint64_t prefill_tokens, uint64_t prefill_pos)
{
    uint64_t db = static_cast<uint64_t>(decode_batch);
    uint64_t dbucket = decode_seq / kSeqBucket;
    uint64_t pbucket = prefill_pos / kSeqBucket;
    PIMBA_ASSERT(db < (1ull << 12) && prefill_tokens < (1ull << 16) &&
                     dbucket < (1ull << 18) && pbucket < (1ull << 18),
                 "fused-step memo key overflow");
    uint64_t key = (db << 52) | (prefill_tokens << 36) |
                   (dbucket << 18) | pbucket;
    auto it = mixedCache.find(key);
    if (it != mixedCache.end())
        return it->second;
    double secs = sim.mixedStep(model, decode_batch,
                                bucketCenter(decode_seq), prefill_tokens,
                                bucketCenter(prefill_pos))
                      .seconds;
    mixedCache.emplace(key, secs);
    return secs;
}

ServingReport
ServingEngine::run(const std::vector<Request> &trace)
{
    std::vector<Request> sorted = trace;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Request &a, const Request &b) {
                         return a.arrival < b.arrival;
                     });

    ServingReport report;
    report.policy = cfg.policy;
    report.memoryBudget = cfg.memoryBudget > 0.0
                              ? cfg.memoryBudget
                              : sim.system().gpu.memCapacity *
                                    sim.system().nGpus;
    const double weights = sim.memoryUsage(model, 1, 0).weights;
    PIMBA_ASSERT(weights < report.memoryBudget,
                 "model weights alone exceed the memory budget");

    // Carve the post-weights pool into blocks. The mapper quantizes a
    // request's fixed (state + activation) and per-token KV demand.
    const double fixedBytes = sim.requestFootprint(model, 0);
    const double perTokenBytes =
        sim.requestFootprint(model, 1) - fixedBytes;
    const BlockMapper mapper =
        BlockMapper::make(fixedBytes, perTokenBytes, cfg.blockTokens);
    const uint64_t totalBlocks = static_cast<uint64_t>(
        (report.memoryBudget - weights) / mapper.blockBytes);
    if (totalBlocks == 0)
        PIMBA_FATAL("budget of ", report.memoryBudget,
                    " bytes leaves no room for a single ",
                    mapper.blockBytes, "-byte block past the weights");
    BlockManager blocks(totalBlocks);
    report.totalBlocks = totalBlocks;

    size_t next = 0;
    double now = 0.0;
    double utilSum = 0.0;
    std::deque<Request> waiting;
    std::vector<RequestState> running; // kept in admission order

    while (report.completed.size() < sorted.size()) {
        // Reveal arrivals up to the current simulated time.
        while (next < sorted.size() && sorted[next].arrival <= now)
            waiting.push_back(sorted[next++]);

        if (running.empty() && waiting.empty()) {
            // Idle: jump to the next arrival.
            now = sorted[next].arrival;
            continue;
        }

        // Policy-ordered admission. A request is admitted when its
        // whole prompt (plus the first output token) could be cached
        // into the free blocks *after* honoring the pledges already
        // made to resident prompts — a watermark that keeps co-resident
        // prefills from evicting each other. Only the fixed state
        // blocks are allocated up front; KV blocks follow the tokens as
        // they are actually cached, and decode growth past the pledge
        // is what eviction handles.
        while (!waiting.empty() &&
               running.size() < static_cast<size_t>(cfg.maxBatch)) {
            size_t pick = sched->pickAdmission(waiting);
            const Request &r = waiting[pick];
            PIMBA_ASSERT(r.inputLen >= 1 && r.outputLen >= 1,
                         "request ", r.id, " has empty prompt or output");
            uint64_t outstanding = 0;
            for (const RequestState &rs : running) {
                uint64_t held = blocks.holding(rs.req.id);
                if (rs.pledgedBlocks > held)
                    outstanding += rs.pledgedBlocks - held;
            }
            uint64_t pledge = mapper.blocksFor(r.inputLen + 1);
            if (outstanding + pledge > blocks.freeBlocks())
                break;
            bool ok = blocks.allocate(r.id, mapper.blocksFor(0));
            PIMBA_ASSERT(ok, "admission allocation failed");
            RequestState rs;
            rs.req = r;
            rs.phase = RequestPhase::Prefill;
            rs.pledgedBlocks = pledge;
            rs.admitted = now;
            running.push_back(rs);
            waiting.erase(waiting.begin() +
                          static_cast<std::ptrdiff_t>(pick));
        }
        if (running.empty()) {
            const Request &r = waiting[sched->pickAdmission(waiting)];
            PIMBA_FATAL("request ", r.id, " needs ",
                        mapper.blocksFor(r.inputLen + 1),
                        " blocks and can never fit the pool of ",
                        totalBlocks, " blocks under the budget of ",
                        report.memoryBudget, " bytes");
        }
        report.peakBatch = std::max(report.peakBatch,
                                    static_cast<int>(running.size()));

        // Let the policy compose the iteration, then allocate the
        // blocks its token production needs. Under memory pressure the
        // most recently admitted resident is preempted by eviction —
        // blocks freed, cached tokens discarded, re-queued at the head
        // of the waiting line to recompute — and the iteration is
        // re-planned over the survivors.
        IterationPlan plan;
        while (true) {
            plan = sched->planIteration(running);
            PIMBA_ASSERT(!plan.empty(), "iteration made no progress");

            uint64_t extra = 0;
            std::vector<std::pair<uint64_t, uint64_t>> grows;
            auto demand = [&](const RequestState &rs, uint64_t cached) {
                uint64_t target = mapper.blocksFor(cached);
                uint64_t cur = blocks.holding(rs.req.id);
                if (target > cur) {
                    grows.emplace_back(rs.req.id, target);
                    extra += target - cur;
                }
            };
            for (size_t i : plan.decodeIdx)
                demand(running[i], running[i].cachedTokens() + 1);
            for (const PrefillSlice &s : plan.prefill) {
                const RequestState &rs = running[s.idx];
                uint64_t cached = rs.prefilled + s.tokens;
                if (cached >= rs.req.inputLen)
                    cached = rs.req.inputLen + 1; // first output token
                demand(rs, cached);
            }
            if (extra <= blocks.freeBlocks()) {
                for (const auto &[id, target] : grows) {
                    bool ok = blocks.growTo(id, target);
                    PIMBA_ASSERT(ok, "planned growth failed");
                }
                break;
            }

            if (running.size() == 1)
                PIMBA_FATAL("request ", running[0].req.id,
                            " can never fit: it alone outgrows the pool "
                            "of ", totalBlocks, " blocks under the "
                            "budget of ", report.memoryBudget, " bytes");
            // running is kept in admission order, so the back is the
            // most recently admitted resident (lowest priority).
            RequestState victim = running.back();
            running.pop_back();
            blocks.release(victim.req.id);
            ++report.preemptions;
            report.recomputedTokens +=
                victim.prefilled + victim.generated;
            // Its generated tokens are discarded and will be recomputed;
            // report.generatedTokens counts delivered tokens only.
            report.generatedTokens -= victim.generated;
            waiting.push_front(victim.req);
        }

        // Cost the iteration: either a fused step (Sarathi) or decode
        // and prefill steps run blocked back-to-back (seed behavior).
        int decodeBatch = static_cast<int>(plan.decodeIdx.size());
        uint64_t decodeMean = 0;
        if (decodeBatch > 0) {
            uint64_t seqSum = 0;
            for (size_t i : plan.decodeIdx)
                seqSum += running[i].cachedTokens();
            decodeMean = seqSum / static_cast<uint64_t>(decodeBatch);
        }
        uint64_t prefillTokens = 0;
        uint64_t prefillPosWeighted = 0;
        for (const PrefillSlice &s : plan.prefill) {
            prefillTokens += s.tokens;
            prefillPosWeighted +=
                s.tokens * (running[s.idx].prefilled + s.tokens / 2);
        }

        double iterSeconds = 0.0;
        if (plan.fused) {
            uint64_t prefillMean =
                prefillTokens > 0 ? prefillPosWeighted / prefillTokens
                                  : 0;
            iterSeconds = mixedSeconds(decodeBatch, decodeMean,
                                       prefillTokens, prefillMean);
        } else {
            if (decodeBatch > 0)
                iterSeconds += decodeSeconds(decodeBatch, decodeMean);
            for (const PrefillSlice &s : plan.prefill)
                iterSeconds +=
                    prefillSeconds(s.tokens, running[s.idx].prefilled);
        }
        report.prefillChunks += plan.prefill.size();

        PIMBA_ASSERT(iterSeconds > 0.0, "iteration made no progress");
        now += iterSeconds;
        ++report.iterations;

        // Apply the iteration's token production.
        for (size_t i : plan.decodeIdx) {
            ++running[i].generated;
            ++report.generatedTokens;
        }
        for (const PrefillSlice &s : plan.prefill) {
            RequestState &rs = running[s.idx];
            rs.prefilled += s.tokens;
            if (rs.prefillDone()) {
                // The final prefill chunk emits the first output token.
                rs.generated = 1;
                rs.firstToken = now;
                rs.phase = RequestPhase::Decode;
                ++report.generatedTokens;
            }
        }

        // Block-pool and memory high-water marks for this iteration.
        double util = blocks.utilization();
        utilSum += util;
        report.peakBlockUtil = std::max(report.peakBlockUtil, util);
        double usage =
            weights + static_cast<double>(blocks.usedBlocks()) *
                          mapper.blockBytes;
        report.peakMemory = std::max(report.peakMemory, usage);
        PIMBA_ASSERT(usage <= report.memoryBudget + 1.0,
                     "memory budget exceeded: ", usage, " > ",
                     report.memoryBudget);

        // Retire completed requests and free their blocks.
        for (size_t i = 0; i < running.size();) {
            RequestState &rs = running[i];
            if (!rs.done()) {
                ++i;
                continue;
            }
            rs.finished = now;
            CompletedRequest done;
            done.req = rs.req;
            done.ttft = rs.firstToken - rs.req.arrival;
            done.latency = rs.finished - rs.req.arrival;
            done.tpot = rs.req.outputLen > 1
                            ? (rs.finished - rs.firstToken) /
                                  static_cast<double>(rs.req.outputLen - 1)
                            : 0.0;
            report.completed.push_back(done);
            blocks.release(rs.req.id);
            running.erase(running.begin() +
                          static_cast<std::ptrdiff_t>(i));
        }
    }

    PIMBA_ASSERT(blocks.usedBlocks() == 0,
                 "block pool leaked at drain: ", blocks.usedBlocks(),
                 " blocks still allocated");
    report.makespan = now;
    report.avgBlockUtil =
        report.iterations > 0
            ? utilSum / static_cast<double>(report.iterations)
            : 0.0;
    report.metrics = computeMetrics(report.completed, report.makespan,
                                    cfg.slo);
    return report;
}

} // namespace pimba
