#include "serving/engine.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "core/logging.h"

namespace pimba {

namespace {

/// Cache-length bucket width for the decode-step memo. Attention cost is
/// affine in cache length, so quantizing to the bucket center bounds the
/// per-step error at half a bucket of KV traffic while making rate
/// sweeps O(distinct buckets) instead of O(iterations) model walks.
constexpr uint64_t kSeqBucket = 64;

} // namespace

ServingEngine::ServingEngine(const ServingSimulator &sim_,
                             const ModelConfig &model_, EngineConfig cfg_)
    : sim(sim_), model(model_), cfg(cfg_)
{
    PIMBA_ASSERT(cfg.maxBatch >= 1, "batch cap must be positive");
    PIMBA_ASSERT(cfg.prefillChunk >= 1, "prefill chunk must be positive");
}

double
ServingEngine::decodeSeconds(int batch, uint64_t mean_seq)
{
    uint64_t bucket = mean_seq / kSeqBucket;
    uint64_t key = (static_cast<uint64_t>(batch) << 32) | bucket;
    auto it = decodeCache.find(key);
    if (it != decodeCache.end())
        return it->second;
    uint64_t seq = bucket * kSeqBucket + kSeqBucket / 2;
    double secs = sim.generationStep(model, batch, seq).seconds;
    decodeCache.emplace(key, secs);
    return secs;
}

double
ServingEngine::prefillSeconds(uint64_t chunk, uint64_t seq_pos)
{
    // Attention inside a prefill chunk is affine in the base cache
    // position, so bucketing the position mirrors the decode memo.
    uint64_t bucket = seq_pos / kSeqBucket;
    uint64_t key = (chunk << 32) | bucket;
    auto it = prefillCache.find(key);
    if (it != prefillCache.end())
        return it->second;
    double secs =
        sim.prefillStep(model, chunk, bucket * kSeqBucket).seconds;
    prefillCache.emplace(key, secs);
    return secs;
}

ServingReport
ServingEngine::run(const std::vector<Request> &trace)
{
    std::vector<Request> sorted = trace;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Request &a, const Request &b) {
                         return a.arrival < b.arrival;
                     });

    ServingReport report;
    report.memoryBudget = cfg.memoryBudget > 0.0
                              ? cfg.memoryBudget
                              : sim.system().gpu.memCapacity *
                                    sim.system().nGpus;
    const double weights = sim.memoryUsage(model, 1, 0).weights;
    PIMBA_ASSERT(weights < report.memoryBudget,
                 "model weights alone exceed the memory budget");

    size_t next = 0;
    double now = 0.0;
    double reserved = 0.0;
    std::deque<Request> waiting;
    std::vector<RequestState> running;

    while (report.completed.size() < sorted.size()) {
        // Reveal arrivals up to the current simulated time.
        while (next < sorted.size() && sorted[next].arrival <= now)
            waiting.push_back(sorted[next++]);

        if (running.empty() && waiting.empty()) {
            // Idle: jump to the next arrival.
            now = sorted[next].arrival;
            continue;
        }

        // FCFS admission under the reservation budget.
        while (!waiting.empty() &&
               running.size() < static_cast<size_t>(cfg.maxBatch)) {
            const Request &r = waiting.front();
            PIMBA_ASSERT(r.inputLen >= 1 && r.outputLen >= 1,
                         "request ", r.id, " has empty prompt or output");
            double peak =
                sim.requestFootprint(model, r.inputLen + r.outputLen);
            if (weights + reserved + peak > report.memoryBudget)
                break;
            RequestState rs;
            rs.req = r;
            rs.phase = RequestPhase::Prefill;
            rs.reservedBytes = peak;
            rs.admitted = now;
            reserved += peak;
            running.push_back(rs);
            waiting.pop_front();
        }
        if (running.empty()) {
            PIMBA_FATAL("request ", waiting.front().id, " needs ",
                        sim.requestFootprint(
                            model, waiting.front().inputLen +
                                       waiting.front().outputLen),
                        " bytes and can never fit the budget of ",
                        report.memoryBudget, " bytes");
        }
        report.peakReserved = std::max(report.peakReserved,
                                       weights + reserved);
        report.peakBatch = std::max(report.peakBatch,
                                    static_cast<int>(running.size()));

        // Build one iteration: a decode step over every decode-resident
        // request plus at most one prefill chunk (oldest first), run
        // blocked back-to-back like the step simulator's GPU/PIM phases.
        double iterSeconds = 0.0;

        std::vector<size_t> decodeIdx;
        uint64_t seqSum = 0;
        for (size_t i = 0; i < running.size(); ++i) {
            if (running[i].phase == RequestPhase::Decode) {
                decodeIdx.push_back(i);
                seqSum += running[i].cachedTokens();
            }
        }
        if (!decodeIdx.empty()) {
            uint64_t meanSeq = seqSum / decodeIdx.size();
            iterSeconds += decodeSeconds(
                static_cast<int>(decodeIdx.size()), meanSeq);
        }

        size_t prefillIdx = running.size();
        uint64_t chunk = 0;
        for (size_t i = 0; i < running.size(); ++i) {
            if (running[i].phase == RequestPhase::Prefill) {
                prefillIdx = i;
                chunk = std::min<uint64_t>(
                    cfg.prefillChunk,
                    running[i].req.inputLen - running[i].prefilled);
                iterSeconds += prefillSeconds(chunk,
                                              running[i].prefilled);
                ++report.prefillChunks;
                break;
            }
        }

        PIMBA_ASSERT(iterSeconds > 0.0, "iteration made no progress");
        now += iterSeconds;
        ++report.iterations;

        // Apply the iteration's token production.
        for (size_t i : decodeIdx) {
            ++running[i].generated;
            ++report.generatedTokens;
        }
        if (prefillIdx < running.size()) {
            RequestState &rs = running[prefillIdx];
            rs.prefilled += chunk;
            if (rs.prefillDone()) {
                // The final prefill chunk emits the first output token.
                rs.generated = 1;
                rs.firstToken = now;
                rs.phase = RequestPhase::Decode;
                ++report.generatedTokens;
            }
        }

        // Memory high-water mark at the end of the iteration, before
        // completions release their reservations.
        double usage = weights;
        for (const auto &rs : running)
            usage += sim.requestFootprint(model, rs.cachedTokens());
        report.peakMemory = std::max(report.peakMemory, usage);
        PIMBA_ASSERT(usage <= report.memoryBudget + 1.0,
                     "memory budget exceeded: ", usage, " > ",
                     report.memoryBudget);

        // Retire completed requests and free their reservations.
        for (size_t i = 0; i < running.size();) {
            RequestState &rs = running[i];
            if (!rs.done()) {
                ++i;
                continue;
            }
            rs.finished = now;
            CompletedRequest done;
            done.req = rs.req;
            done.ttft = rs.firstToken - rs.req.arrival;
            done.latency = rs.finished - rs.req.arrival;
            done.tpot = rs.req.outputLen > 1
                            ? (rs.finished - rs.firstToken) /
                                  static_cast<double>(rs.req.outputLen - 1)
                            : 0.0;
            report.completed.push_back(done);
            reserved -= rs.reservedBytes;
            running.erase(running.begin() + i);
        }
    }

    report.makespan = now;
    report.metrics = computeMetrics(report.completed, report.makespan,
                                    cfg.slo);
    return report;
}

} // namespace pimba
