#include "serving/metrics.h"

#include <algorithm>

#include "core/stats.h"

namespace pimba {

LatencySummary
summarizeLatency(const std::vector<double> &samples)
{
    // Single pass over one sorted copy: the sort gives the percentiles
    // and the max for free, and the mean accumulates from the sorted
    // vector — this runs once per metric per grid point, so the
    // previous extra Welford walk over the unsorted samples was pure
    // overhead.
    LatencySummary s;
    if (samples.empty())
        return s;
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0.0;
    for (double x : sorted)
        sum += x;
    s.count = sorted.size();
    s.mean = sum / static_cast<double>(sorted.size());
    s.min = sorted.front();
    s.max = sorted.back();
    s.p50 = percentileSorted(sorted, 50.0);
    s.p95 = percentileSorted(sorted, 95.0);
    s.p99 = percentileSorted(sorted, 99.0);
    return s;
}

ServingMetrics
computeMetrics(const std::vector<CompletedRequest> &done, Seconds makespan,
               const SloConfig &slo)
{
    ServingMetrics m;
    m.requests = done.size();
    m.makespan = makespan;

    std::vector<double> ttft, tpot, latency, queueing, preemptions;
    ttft.reserve(done.size());
    tpot.reserve(done.size());
    latency.reserve(done.size());
    queueing.reserve(done.size());
    preemptions.reserve(done.size());
    uint64_t good = 0;
    for (const auto &c : done) {
        m.generatedTokens += c.req.outputLen;
        ttft.push_back(c.ttft.value());
        // Single-token requests have no inter-token gap; their tpot of
        // 0.0 would drag the TPOT percentiles down, so they are
        // excluded from the summary sample.
        if (c.req.outputLen > 1)
            tpot.push_back(c.tpot.value());
        latency.push_back(c.latency.value());
        queueing.push_back(c.queueing.value());
        preemptions.push_back(static_cast<double>(c.preemptions));
        // The SLO's TPOT clause is vacuous for a single-token request —
        // with no decode steps there is no inter-token time to violate —
        // so it is skipped *explicitly*, not by relying on the record's
        // incidental 0.0 sentinel passing the comparison.
        bool tpotOk = c.req.outputLen <= 1 || c.tpot <= slo.tpot;
        if (c.ttft <= slo.ttft && tpotOk)
            ++good;
    }
    m.sloViolations = m.requests - good;
    m.ttft = summarizeLatency(ttft);
    m.tpot = summarizeLatency(tpot);
    m.latency = summarizeLatency(latency);
    m.queueing = summarizeLatency(queueing);
    m.preemptions = summarizeLatency(preemptions);
    if (makespan > Seconds(0.0)) {
        m.tokensPerSec = Tokens(m.generatedTokens) / makespan;
        m.requestsPerSec = RequestsPerSecond(
            static_cast<double>(m.requests) / makespan.value());
        m.goodput = RequestsPerSecond(static_cast<double>(good) /
                                      makespan.value());
    }
    return m;
}

std::vector<std::string>
metricsHeader()
{
    return {"",          "n",        "tok/s",    "req/s",
            "goodput",   "TTFT min", "TTFT p50", "TTFT p95",
            "TPOT p95",  "lat p99"};
}

std::vector<std::string>
metricsRow(const std::string &label, const ServingMetrics &m)
{
    return {label,
            std::to_string(m.ttft.count),
            fmt(m.tokensPerSec.value(), 1),
            fmt(m.requestsPerSec.value(), 2),
            fmt(m.goodput.value(), 2),
            fmt(m.ttft.min, 3),
            fmt(m.ttft.p50, 3),
            fmt(m.ttft.p95, 3),
            fmt(m.tpot.p95, 4),
            fmt(m.latency.p99, 2)};
}

StreamingMetrics::StreamingMetrics(SloConfig slo_, double accuracy)
    : slo(slo_), ttft(accuracy), tpot(accuracy), latency(accuracy),
      queueing(accuracy), preemptions(accuracy)
{}

void
StreamingMetrics::observe(const CompletedRequest &c)
{
    ++requests;
    generatedTokens += c.req.outputLen;
    ttft.add(c.ttft.value());
    // Same exclusion rule as computeMetrics(): single-token requests
    // have no inter-token gap and would skew TPOT toward zero.
    if (c.req.outputLen > 1)
        tpot.add(c.tpot.value());
    latency.add(c.latency.value());
    queueing.add(c.queueing.value());
    preemptions.add(static_cast<double>(c.preemptions));
    bool tpotOk = c.req.outputLen <= 1 || c.tpot <= slo.tpot;
    if (c.ttft <= slo.ttft && tpotOk)
        ++good;
    lastFinish = std::max(lastFinish, c.req.arrival + c.latency);
}

void
StreamingMetrics::merge(const StreamingMetrics &other)
{
    requests += other.requests;
    generatedTokens += other.generatedTokens;
    good += other.good;
    ttft.merge(other.ttft);
    tpot.merge(other.tpot);
    latency.merge(other.latency);
    queueing.merge(other.queueing);
    preemptions.merge(other.preemptions);
    lastFinish = std::max(lastFinish, other.lastFinish);
}

namespace {

/** LatencySummary fields out of one sketch: percentiles estimated,
 *  count/mean/min/max exact. */
LatencySummary
sketchSummary(const QuantileSketch &s)
{
    LatencySummary out;
    out.count = s.count();
    out.mean = s.mean();
    out.min = s.min();
    out.p50 = s.quantile(50.0);
    out.p95 = s.quantile(95.0);
    out.p99 = s.quantile(99.0);
    out.max = s.max();
    return out;
}

} // namespace

ServingMetrics
StreamingMetrics::finalize(Seconds makespan) const
{
    ServingMetrics m;
    m.requests = requests;
    m.generatedTokens = generatedTokens;
    m.makespan = makespan;
    m.sloViolations = requests - good;
    m.ttft = sketchSummary(ttft);
    m.tpot = sketchSummary(tpot);
    m.latency = sketchSummary(latency);
    m.queueing = sketchSummary(queueing);
    m.preemptions = sketchSummary(preemptions);
    if (makespan > Seconds(0.0)) {
        m.tokensPerSec = Tokens(m.generatedTokens) / makespan;
        m.requestsPerSec = RequestsPerSecond(
            static_cast<double>(m.requests) / makespan.value());
        m.goodput = RequestsPerSecond(static_cast<double>(good) /
                                      makespan.value());
    }
    return m;
}

} // namespace pimba
