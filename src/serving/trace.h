/**
 * @file
 * Synthetic request-trace generators. Arrival processes: Poisson (the
 * standard open-loop serving-traffic model) and fixed-rate; length
 * distributions: fixed and uniform. All randomness flows through the
 * repo's seeded Lfsr32, so every trace is a pure function of its
 * TraceConfig — the same config always reproduces the same trace.
 */

#ifndef PIMBA_SERVING_TRACE_H
#define PIMBA_SERVING_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "serving/request.h"

namespace pimba {

/** Inter-arrival process of the synthetic trace. */
enum class ArrivalProcess
{
    Poisson, ///< exponential inter-arrival times at the given mean rate
    Fixed,   ///< deterministic 1/rate spacing
};

/** Prompt/output length distribution. */
enum class LengthDistribution
{
    Fixed,   ///< every request uses inputLen / outputLen exactly
    Uniform, ///< integer-uniform in [len, lenMax] per request
};

/** Full description of a synthetic trace. */
struct TraceConfig
{
    ArrivalProcess arrivals = ArrivalProcess::Poisson;
    double ratePerSec = 1.0; ///< mean request arrival rate
    int numRequests = 64;

    LengthDistribution lengths = LengthDistribution::Fixed;
    uint64_t inputLen = 2048;    ///< fixed value or uniform lower bound
    uint64_t outputLen = 2048;   ///< fixed value or uniform lower bound
    uint64_t inputLenMax = 0;    ///< uniform upper bound (0: == inputLen)
    uint64_t outputLenMax = 0;   ///< uniform upper bound (0: == outputLen)

    uint32_t seed = 0x5EED0001u; ///< LFSR seed; same seed, same trace
};

/**
 * Validate @p cfg. Returns the empty string when it is serveable, else
 * one actionable message naming the bad field (non-positive rate, empty
 * trace, zero-length prompts/outputs, inverted uniform bounds).
 */
std::string validateTraceConfig(const TraceConfig &cfg);

/**
 * Generate the trace described by @p cfg: requests with ids 0..n-1 in
 * non-decreasing arrival order starting at time 0. An invalid config
 * (see validateTraceConfig) is a fatal error.
 */
std::vector<Request> generateTrace(const TraceConfig &cfg);

} // namespace pimba

#endif // PIMBA_SERVING_TRACE_H
