/**
 * @file
 * Synthetic request-trace generators. Arrival processes: Poisson (the
 * standard open-loop serving-traffic model), fixed-rate, diurnal (a
 * sinusoidal day/night rate curve sampled by Lewis-Shedler thinning),
 * and MMPP (a two-state Markov-modulated Poisson process modeling
 * flash-crowd bursts). Length distributions: fixed and uniform, either
 * trace-wide or per request class (multi-tenant mixes). All randomness
 * flows through the repo's seeded Lfsr32, so every trace is a pure
 * function of its TraceConfig — the same config always reproduces the
 * same trace.
 *
 * Traces can be materialized eagerly (generateTrace) or consumed one
 * request at a time through the ArrivalSource interface (ArrivalStream)
 * — the shape the fleet's bounded-memory replay path needs, where the
 * whole trace must never be resident at once. The arrival clock uses
 * compensated (Kahan) summation: a naive running double accumulates
 * rounding error over millions of inter-arrival increments.
 */

#ifndef PIMBA_SERVING_TRACE_H
#define PIMBA_SERVING_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/lfsr.h"
#include "serving/request.h"

namespace pimba {

/** Inter-arrival process of the synthetic trace. */
enum class ArrivalProcess
{
    Poisson, ///< exponential inter-arrival times at the given mean rate
    Fixed,   ///< deterministic 1/rate spacing
    Diurnal, ///< Poisson with a sinusoidal rate curve (day/night load)
    Mmpp,    ///< 2-state Markov-modulated Poisson (baseline + bursts)
};

/** Prompt/output length distribution. */
enum class LengthDistribution
{
    Fixed,   ///< every request uses inputLen / outputLen exactly
    Uniform, ///< integer-uniform in [len, lenMax] per request
};

/** Sinusoidal rate curve of ArrivalProcess::Diurnal: the instantaneous
 *  rate swings around ratePerSec (which stays the long-run mean) with
 *  peak/trough ratio @c peakToTrough once per @c period. */
struct DiurnalShape
{
    Seconds period{3600.0};   ///< one full day/night cycle
    double peakToTrough = 4.0; ///< peak rate / trough rate (>= 1)
};

/** Burst regime of ArrivalProcess::Mmpp: exponential dwell times
 *  alternate between a baseline state at ratePerSec and a burst state
 *  at ratePerSec x burstMultiplier (flash crowds). */
struct MmppBursts
{
    double burstMultiplier = 8.0; ///< burst rate / baseline rate (>= 1)
    Seconds burstMean{5.0};       ///< mean burst dwell
    Seconds idleMean{45.0};       ///< mean baseline dwell
};

/** One tenant class of a multi-class trace: a sampling weight plus its
 *  own length distribution. Requests carry the class index sampled for
 *  them (Request::classId). */
struct TraceClass
{
    std::string name;          ///< label for docs/telemetry
    double weight = 1.0;       ///< relative sampling weight (> 0)
    LengthDistribution lengths = LengthDistribution::Fixed;
    uint64_t inputLen = 2048;  ///< fixed value or uniform lower bound
    uint64_t outputLen = 2048; ///< fixed value or uniform lower bound
    uint64_t inputLenMax = 0;  ///< uniform upper bound (0: == inputLen)
    uint64_t outputLenMax = 0; ///< uniform upper bound (0: == outputLen)
};

/** Full description of a synthetic trace. */
struct TraceConfig
{
    ArrivalProcess arrivals = ArrivalProcess::Poisson;
    double ratePerSec = 1.0; ///< mean (Diurnal) / baseline (Mmpp) rate
    int numRequests = 64;

    LengthDistribution lengths = LengthDistribution::Fixed;
    uint64_t inputLen = 2048;    ///< fixed value or uniform lower bound
    uint64_t outputLen = 2048;   ///< fixed value or uniform lower bound
    uint64_t inputLenMax = 0;    ///< uniform upper bound (0: == inputLen)
    uint64_t outputLenMax = 0;   ///< uniform upper bound (0: == outputLen)

    DiurnalShape diurnal; ///< ArrivalProcess::Diurnal only
    MmppBursts mmpp;      ///< ArrivalProcess::Mmpp only

    /** Tenant classes; empty means one implicit class using the
     *  trace-wide length fields above (and no class-RNG draws, so
     *  classless configs reproduce their historical traces). */
    std::vector<TraceClass> classes;

    /** Non-empty: replay this pimba-trace-v1 file instead of
     *  generating (serving/trace_io.h). Generation fields are then
     *  ignored except numRequests = 0 meaning "all of the file". */
    std::string file;

    uint32_t seed = 0x5EED0001u; ///< LFSR seed; same seed, same trace
};

/**
 * Compensated (Kahan) accumulator for the arrival clock: adding
 * millions of small inter-arrival gaps to a naive running double loses
 * low-order bits each step and the trace tail drifts from the analytic
 * mean. The compensation term recaptures the rounding residue, keeping
 * the clock exact to within one ulp of the true sum.
 */
class KahanClock
{
  public:
    void
    add(double gap)
    {
        double y = gap - comp;
        double t = total + y;
        comp = (t - total) - y;
        total = t;
    }

    double value() const { return total; }

  private:
    double total = 0.0;
    double comp = 0.0;
};

/**
 * Pull-based request producer in non-decreasing arrival order. The
 * fleet's replay path consumes one request at a time so its memory
 * stays bounded independently of trace length; eager callers collect
 * into a vector (generateTrace).
 */
class ArrivalSource
{
  public:
    virtual ~ArrivalSource() = default;
    /** Produce the next request into @p out. Returns false when the
     *  source is exhausted (@p out is then left untouched). */
    virtual bool next(Request &out) = 0;
};

/** Streaming generator: the trace described by a TraceConfig, one
 *  request at a time. Identical requests to generateTrace(), without
 *  the O(requests) vector. */
class ArrivalStream : public ArrivalSource
{
  public:
    /** An invalid config (validateTraceConfig) or one naming a replay
     *  file (this is the generator) is a fatal error. */
    explicit ArrivalStream(const TraceConfig &cfg);

    bool next(Request &out) override;

    /** Requests produced so far. */
    int produced() const { return emitted; }

  private:
    /** Advance the clock by one inter-arrival gap. */
    void advanceClock();
    /** One exponential variate at @p rate from the arrival stream. */
    double sampleExp(double rate);

    TraceConfig cfg;
    Lfsr32 arrivalRng;
    Lfsr32 lengthRng;
    Lfsr32 classRng;
    std::vector<double> classCdf; ///< cumulative weights, normalized
    KahanClock clock;
    int emitted = 0;
    double diurnalAmp = 0.0;  ///< sine amplitude from peakToTrough
    bool inBurst = false;     ///< MMPP state (starts at baseline)
    double dwellLeft = -1.0;  ///< MMPP time left in state (< 0: draw)
};

/** ArrivalSource over an in-memory trace, which must already be in
 *  non-decreasing arrival order. Does not own the vector. */
class VectorArrivalSource : public ArrivalSource
{
  public:
    explicit VectorArrivalSource(const std::vector<Request> &trace_)
        : trace(&trace_)
    {}

    bool
    next(Request &out) override
    {
        if (idx >= trace->size())
            return false;
        out = (*trace)[idx++];
        return true;
    }

  private:
    const std::vector<Request> *trace;
    size_t idx = 0;
};

/**
 * Validate @p cfg. Returns the empty string when it is serveable, else
 * one actionable message naming the bad field (non-positive rate, empty
 * trace, zero-length prompts/outputs, inverted uniform bounds, bad
 * diurnal/MMPP shape, a bad tenant class).
 */
std::string validateTraceConfig(const TraceConfig &cfg);

/**
 * Generate the trace described by @p cfg: requests with ids 0..n-1 in
 * non-decreasing arrival order starting at time 0. An invalid config
 * (see validateTraceConfig) or one naming a replay file (use
 * materializeTrace() from serving/trace_io.h) is a fatal error.
 */
std::vector<Request> generateTrace(const TraceConfig &cfg);

} // namespace pimba

#endif // PIMBA_SERVING_TRACE_H
