#include "serving/trace.h"

#include <algorithm>
#include <cmath>

#include "core/lfsr.h"
#include "core/logging.h"

namespace pimba {

namespace {

uint64_t
sampleLength(LengthDistribution dist, uint64_t lo, uint64_t hi,
             Lfsr32 &rng)
{
    if (dist == LengthDistribution::Fixed || hi <= lo)
        return lo;
    uint64_t span = hi - lo + 1;
    uint64_t idx = static_cast<uint64_t>(rng.nextUnit() *
                                         static_cast<double>(span));
    // nextUnit() < 1.0, but the double product can still round up to
    // span (yielding hi + 1); clamp the index into the span.
    return lo + std::min(idx, span - 1);
}

} // namespace

std::string
validateTraceConfig(const TraceConfig &cfg)
{
    if (!(cfg.ratePerSec > 0.0))
        return "trace: ratePerSec must be positive, got " +
               std::to_string(cfg.ratePerSec);
    if (cfg.numRequests < 1)
        return "trace: numRequests must be >= 1, got " +
               std::to_string(cfg.numRequests);
    if (cfg.inputLen < 1)
        return "trace: inputLen must be >= 1 (requests need a "
               "non-empty prompt)";
    if (cfg.outputLen < 1)
        return "trace: outputLen must be >= 1 (requests must generate "
               "a token)";
    if (cfg.lengths == LengthDistribution::Uniform) {
        if (cfg.inputLenMax != 0 && cfg.inputLenMax < cfg.inputLen)
            return "trace: uniform input-length bounds are inverted "
                   "(inputLenMax " +
                   std::to_string(cfg.inputLenMax) + " < inputLen " +
                   std::to_string(cfg.inputLen) + ")";
        if (cfg.outputLenMax != 0 && cfg.outputLenMax < cfg.outputLen)
            return "trace: uniform output-length bounds are inverted "
                   "(outputLenMax " +
                   std::to_string(cfg.outputLenMax) + " < outputLen " +
                   std::to_string(cfg.outputLen) + ")";
    }
    return "";
}

std::vector<Request>
generateTrace(const TraceConfig &cfg)
{
    if (std::string err = validateTraceConfig(cfg); !err.empty())
        PIMBA_FATAL(err);

    // Separate streams so changing the length distribution does not
    // perturb the arrival times (and vice versa).
    Lfsr32 arrivalRng(cfg.seed);
    Lfsr32 lengthRng(cfg.seed ^ 0x9E3779B9u);

    std::vector<Request> trace;
    trace.reserve(cfg.numRequests);
    double clock = 0.0;
    for (int i = 0; i < cfg.numRequests; ++i) {
        Request r;
        r.id = static_cast<uint64_t>(i);
        if (i > 0) {
            double gap = 1.0 / cfg.ratePerSec;
            if (cfg.arrivals == ArrivalProcess::Poisson) {
                // Inverse-CDF exponential; clamp the uniform away from
                // 1.0 so the log stays finite.
                double u = std::min(arrivalRng.nextUnit(),
                                    1.0 - 1e-12);
                gap = -std::log(1.0 - u) / cfg.ratePerSec;
            }
            clock += gap;
        }
        r.arrival = Seconds(clock);
        r.inputLen = sampleLength(cfg.lengths, cfg.inputLen,
                                  cfg.inputLenMax, lengthRng);
        r.outputLen = sampleLength(cfg.lengths, cfg.outputLen,
                                   cfg.outputLenMax, lengthRng);
        PIMBA_ASSERT(r.outputLen >= 1, "sampled zero output length");
        trace.push_back(r);
    }
    return trace;
}

} // namespace pimba
