#include "serving/trace.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace pimba {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

uint64_t
sampleLength(LengthDistribution dist, uint64_t lo, uint64_t hi,
             Lfsr32 &rng)
{
    if (dist == LengthDistribution::Fixed || hi <= lo)
        return lo;
    uint64_t span = hi - lo + 1;
    uint64_t idx = static_cast<uint64_t>(rng.nextUnit() *
                                         static_cast<double>(span));
    // nextUnit() < 1.0, but the double product can still round up to
    // span (yielding hi + 1); clamp the index into the span.
    return lo + std::min(idx, span - 1);
}

/** Sine amplitude giving the requested peak/trough rate ratio:
 *  (1 + a) / (1 - a) = ptt  =>  a = (ptt - 1) / (ptt + 1). */
double
diurnalAmplitude(double peakToTrough)
{
    return (peakToTrough - 1.0) / (peakToTrough + 1.0);
}

std::string
validateLengths(LengthDistribution dist, uint64_t inLo, uint64_t inHi,
                uint64_t outLo, uint64_t outHi, const std::string &where)
{
    if (inLo < 1)
        return where + "inputLen must be >= 1 (requests need a "
                       "non-empty prompt)";
    if (outLo < 1)
        return where + "outputLen must be >= 1 (requests must generate "
                       "a token)";
    if (dist == LengthDistribution::Uniform) {
        if (inHi != 0 && inHi < inLo)
            return where + "uniform input-length bounds are inverted "
                           "(inputLenMax " +
                   std::to_string(inHi) + " < inputLen " +
                   std::to_string(inLo) + ")";
        if (outHi != 0 && outHi < outLo)
            return where + "uniform output-length bounds are inverted "
                           "(outputLenMax " +
                   std::to_string(outHi) + " < outputLen " +
                   std::to_string(outLo) + ")";
    }
    return "";
}

} // namespace

std::string
validateTraceConfig(const TraceConfig &cfg)
{
    if (!cfg.file.empty()) {
        // Replay: the file's loader validates its own contents; the
        // generation fields are ignored. numRequests < 0 is still
        // nonsense (0 means "all of the file").
        if (cfg.numRequests < 0)
            return "trace: numRequests must be >= 0 when replaying a "
                   "file (0 replays all of it), got " +
                   std::to_string(cfg.numRequests);
        return "";
    }
    if (!(cfg.ratePerSec > 0.0))
        return "trace: ratePerSec must be positive, got " +
               std::to_string(cfg.ratePerSec);
    if (cfg.numRequests < 1)
        return "trace: numRequests must be >= 1, got " +
               std::to_string(cfg.numRequests);
    if (std::string err =
            validateLengths(cfg.lengths, cfg.inputLen, cfg.inputLenMax,
                            cfg.outputLen, cfg.outputLenMax, "trace: ");
        !err.empty())
        return err;
    if (cfg.arrivals == ArrivalProcess::Diurnal) {
        if (!(cfg.diurnal.period > Seconds(0.0)))
            return "trace: diurnal period must be positive seconds, "
                   "got " +
                   std::to_string(cfg.diurnal.period.value());
        if (!(cfg.diurnal.peakToTrough >= 1.0))
            return "trace: diurnal peakToTrough must be >= 1 (peak "
                   "rate over trough rate), got " +
                   std::to_string(cfg.diurnal.peakToTrough);
    }
    if (cfg.arrivals == ArrivalProcess::Mmpp) {
        if (!(cfg.mmpp.burstMultiplier >= 1.0))
            return "trace: mmpp burstMultiplier must be >= 1 (bursts "
                   "add load), got " +
                   std::to_string(cfg.mmpp.burstMultiplier);
        if (!(cfg.mmpp.burstMean > Seconds(0.0)) ||
            !(cfg.mmpp.idleMean > Seconds(0.0)))
            return "trace: mmpp dwell means must be positive seconds "
                   "(burstMeanSec " +
                   std::to_string(cfg.mmpp.burstMean.value()) +
                   ", idleMeanSec " +
                   std::to_string(cfg.mmpp.idleMean.value()) + ")";
    }
    for (size_t i = 0; i < cfg.classes.size(); ++i) {
        const TraceClass &tc = cfg.classes[i];
        std::string where = "trace: class " + std::to_string(i) +
                            (tc.name.empty() ? "" : " (" + tc.name + ")") +
                            ": ";
        if (tc.name.empty())
            return where + "needs a name (labels the tenant in docs "
                           "and telemetry)";
        if (!(tc.weight > 0.0))
            return where + "weight must be positive, got " +
                   std::to_string(tc.weight);
        if (std::string err =
                validateLengths(tc.lengths, tc.inputLen, tc.inputLenMax,
                                tc.outputLen, tc.outputLenMax, where);
            !err.empty())
            return err;
    }
    return "";
}

ArrivalStream::ArrivalStream(const TraceConfig &cfg_)
    : cfg(cfg_),
      // Separate streams so changing the length distribution does not
      // perturb the arrival times (and vice versa); the class stream is
      // separate again so adding classes never shifts the lengths an
      // existing class samples.
      arrivalRng(cfg_.seed),
      lengthRng(cfg_.seed ^ 0x9E3779B9u),
      classRng(cfg_.seed ^ 0x7F4A7C15u)
{
    if (std::string err = validateTraceConfig(cfg); !err.empty())
        PIMBA_FATAL(err);
    PIMBA_ASSERT(cfg.file.empty(),
                 "ArrivalStream generates traces; replay files go "
                 "through materializeTrace() (serving/trace_io.h)");
    diurnalAmp = diurnalAmplitude(cfg.diurnal.peakToTrough);
    double weightSum = 0.0;
    for (const TraceClass &tc : cfg.classes) {
        weightSum += tc.weight;
        classCdf.push_back(weightSum);
    }
    for (double &w : classCdf)
        w /= weightSum;
}

double
ArrivalStream::sampleExp(double rate)
{
    // Inverse-CDF exponential; clamp the uniform away from 1.0 so the
    // log stays finite.
    double u = std::min(arrivalRng.nextUnit(), 1.0 - 1e-12);
    return -std::log(1.0 - u) / rate;
}

void
ArrivalStream::advanceClock()
{
    switch (cfg.arrivals) {
    case ArrivalProcess::Fixed:
        clock.add(1.0 / cfg.ratePerSec);
        return;
    case ArrivalProcess::Poisson:
        clock.add(sampleExp(cfg.ratePerSec));
        return;
    case ArrivalProcess::Diurnal: {
        // Lewis-Shedler thinning: candidates arrive at the curve's
        // peak rate; each is accepted with probability rate(t)/peak,
        // leaving a non-homogeneous Poisson process whose long-run
        // mean is exactly ratePerSec.
        double peak = cfg.ratePerSec * (1.0 + diurnalAmp);
        for (;;) {
            clock.add(sampleExp(peak));
            double phase = kTwoPi * clock.value() /
                           cfg.diurnal.period.value();
            double rateNow =
                cfg.ratePerSec * (1.0 + diurnalAmp * std::sin(phase));
            if (arrivalRng.nextUnit() * peak <= rateNow)
                return;
        }
    }
    case ArrivalProcess::Mmpp: {
        // Alternate exponential dwells between the baseline and burst
        // regimes. A candidate gap beyond the dwell's end is discarded
        // and redrawn in the next regime — valid because exponential
        // inter-arrivals are memoryless.
        for (;;) {
            if (dwellLeft < 0.0) {
                double mean = inBurst ? cfg.mmpp.burstMean.value()
                                      : cfg.mmpp.idleMean.value();
                dwellLeft = sampleExp(1.0 / mean);
            }
            double rate = inBurst
                              ? cfg.ratePerSec * cfg.mmpp.burstMultiplier
                              : cfg.ratePerSec;
            double cand = sampleExp(rate);
            if (cand <= dwellLeft) {
                clock.add(cand);
                dwellLeft -= cand;
                return;
            }
            clock.add(dwellLeft);
            dwellLeft = -1.0;
            inBurst = !inBurst;
        }
    }
    }
    PIMBA_PANIC("unhandled arrival process");
}

bool
ArrivalStream::next(Request &out)
{
    if (emitted >= cfg.numRequests)
        return false;
    Request r;
    r.id = static_cast<uint64_t>(emitted);
    // The first request opens the trace at t = 0 with no draw; only
    // the gaps between requests are stochastic.
    if (emitted > 0)
        advanceClock();
    r.arrival = Seconds(clock.value());
    if (classCdf.empty()) {
        r.inputLen = sampleLength(cfg.lengths, cfg.inputLen,
                                  cfg.inputLenMax, lengthRng);
        r.outputLen = sampleLength(cfg.lengths, cfg.outputLen,
                                   cfg.outputLenMax, lengthRng);
    } else {
        double u = classRng.nextUnit();
        size_t k = static_cast<size_t>(
            std::lower_bound(classCdf.begin(), classCdf.end(), u) -
            classCdf.begin());
        k = std::min(k, classCdf.size() - 1);
        const TraceClass &tc = cfg.classes[k];
        r.classId = static_cast<uint32_t>(k);
        r.inputLen = sampleLength(tc.lengths, tc.inputLen,
                                  tc.inputLenMax, lengthRng);
        r.outputLen = sampleLength(tc.lengths, tc.outputLen,
                                   tc.outputLenMax, lengthRng);
    }
    PIMBA_ASSERT(r.outputLen >= 1, "sampled zero output length");
    ++emitted;
    out = r;
    return true;
}

std::vector<Request>
generateTrace(const TraceConfig &cfg)
{
    ArrivalStream stream(cfg); // validates; rejects replay-file configs
    std::vector<Request> trace;
    trace.reserve(static_cast<size_t>(cfg.numRequests));
    Request r;
    while (stream.next(r))
        trace.push_back(r);
    return trace;
}

} // namespace pimba
