/**
 * @file
 * Versioned on-disk trace format (`pimba-trace-v1`): a CSV body under a
 * comment header carrying the format id and the declared request count.
 *
 *     # pimba-trace-v1
 *     # requests: 3
 *     # columns: id,arrival_seconds,input_tokens,output_tokens,class
 *     0,0,512,128,0
 *     1,0.21808950821976997,512,128,1
 *     2,0.4247630545365003,256,64,0
 *
 * Arrival seconds print with 17 significant digits, so a save/load
 * round trip reproduces every binary64 arrival bit-for-bit — a replayed
 * trace runs byte-identically to the generated one. The declared count
 * makes truncation detectable: a file that ends early is a hard error,
 * not a silently shorter workload. The loader enforces strictly
 * increasing ids (uniqueness without O(n) memory) and non-decreasing
 * arrivals, and reports every rejection with the file name and
 * 1-based line in the config-layer ConfigError style.
 *
 * TraceFileReader streams one request at a time (the fleet replay
 * path's bounded-memory shape); loadTrace/materializeTrace are the
 * eager wrappers.
 */

#ifndef PIMBA_SERVING_TRACE_IO_H
#define PIMBA_SERVING_TRACE_IO_H

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "serving/trace.h"

namespace pimba {

/// Format id on the first line of every trace file this repo writes.
inline constexpr const char kTraceFormatV1[] = "pimba-trace-v1";

/// Render @p trace in the pimba-trace-v1 format. The trace must be in
/// non-decreasing arrival order with strictly increasing ids (what
/// generateTrace produces); anything else is a fatal error, because
/// the emitted file would be rejected by its own loader.
std::string renderTrace(const std::vector<Request> &trace);

/// renderTrace() to @p path. Throws ConfigError when the file cannot
/// be created or written.
void saveTrace(const std::string &path, const std::vector<Request> &trace);

/**
 * Streaming pimba-trace-v1 reader: one Request per next() call, O(1)
 * memory regardless of file length. The constructor validates the
 * header; each next() validates its row (field count, numeric fields,
 * strictly increasing ids, non-decreasing arrivals, lengths >= 1) and
 * throws a located ConfigError on the first malformed byte. Reaching
 * end-of-file before the declared request count is a truncation error.
 */
class TraceFileReader : public ArrivalSource
{
  public:
    /// Open @p path and parse the header. @p limit > 0 stops after
    /// that many requests (replay prefixes); 0 reads the whole file.
    explicit TraceFileReader(const std::string &path, int limit = 0);
    ~TraceFileReader() override;

    TraceFileReader(const TraceFileReader &) = delete;
    TraceFileReader &operator=(const TraceFileReader &) = delete;

    bool next(Request &out) override;

    /// Request count the header declares.
    uint64_t declaredRequests() const { return declared; }
    /// Requests produced so far.
    uint64_t produced() const { return emitted; }

  private:
    [[noreturn]] void fail(const std::string &msg) const;
    /// Read the next line into @c lineBuf; false on EOF.
    bool readLine();

    std::string path;
    FILE *file = nullptr;
    std::string lineBuf;
    int lineNo = 0;
    uint64_t declared = 0;
    uint64_t emitted = 0;
    uint64_t limit = 0; ///< 0: no cap
    bool haveLast = false;
    uint64_t lastId = 0;
    Seconds lastArrival{0.0};
};

/// Read a whole trace file eagerly. @p limit as in TraceFileReader.
std::vector<Request> loadTrace(const std::string &path, int limit = 0);

/// The trace a TraceConfig denotes: loadTrace(cfg.file) when a replay
/// file is named (cfg.numRequests > 0 limits the prefix), else
/// generateTrace(cfg). Throws ConfigError for replay-file problems;
/// generation-side validation stays fatal as in generateTrace.
std::vector<Request> materializeTrace(const TraceConfig &cfg);

/// The ArrivalSource a TraceConfig denotes, for streaming consumers:
/// a TraceFileReader when a replay file is named, else an
/// ArrivalStream generator.
std::unique_ptr<ArrivalSource> openArrivalSource(const TraceConfig &cfg);

} // namespace pimba

#endif // PIMBA_SERVING_TRACE_IO_H
