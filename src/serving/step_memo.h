/**
 * @file
 * Bucket and key math of the serving engine's step-cost memos, shared
 * between the engine and the tests that pin bucket-boundary behavior.
 *
 * Attention cost is affine in cache length, so the memos quantize the
 * cache position to kSeqBucket-wide buckets and evaluate the model at
 * the bucket *center*: the per-step error is bounded by half a bucket
 * of KV traffic while rate sweeps become O(distinct buckets) instead of
 * O(iterations) model walks. All three memos (decode, prefill, fused)
 * use the same bucketing so their costs stay comparable.
 *
 * Every key packer leaves key 0 unreachable (the batch / chunk / token
 * fields are >= 1 in any planned iteration), which is what lets the
 * engine store the memos in FlatTable with 0 as the empty sentinel.
 */

#ifndef PIMBA_SERVING_STEP_MEMO_H
#define PIMBA_SERVING_STEP_MEMO_H

#include <cstdint>

namespace pimba {

/// Cache-length bucket width of the step memos.
inline constexpr uint64_t kSeqBucket = 64;

/// Bucket index of cache position @p seq: [0, 64) -> 0, [64, 128) -> 1…
constexpr uint64_t
seqBucket(uint64_t seq)
{
    return seq / kSeqBucket;
}

/// Evaluation point of @p seq's bucket: its center, used uniformly by
/// the decode, prefill, and fused memos.
constexpr uint64_t
bucketCenter(uint64_t seq)
{
    return seqBucket(seq) * kSeqBucket + kSeqBucket / 2;
}

/// Decode memo key: (batch, cache-length bucket). batch >= 1 keeps the
/// key nonzero.
constexpr uint64_t
decodeMemoKey(int batch, uint64_t mean_seq)
{
    return (static_cast<uint64_t>(batch) << 32) | seqBucket(mean_seq);
}

/// Prefill memo key: (chunk tokens, base-position bucket). chunk >= 1
/// keeps the key nonzero.
constexpr uint64_t
prefillMemoKey(uint64_t chunk, uint64_t seq_pos)
{
    return (chunk << 32) | seqBucket(seq_pos);
}

/// Field bounds of the fused-iteration memo key (checked by the engine
/// at use and by validateEngineConfig up front for the Sarathi policy).
inline constexpr uint64_t kMixedMaxBatch = 1ull << 12;
inline constexpr uint64_t kMixedMaxPrefillTokens = 1ull << 16;
inline constexpr uint64_t kMixedMaxBucket = 1ull << 18;

/// Fused memo key: (decode batch, prefill tokens, decode bucket,
/// prefill bucket). A planned fused iteration has decode_batch +
/// prefill_tokens >= 1, so the key is nonzero. Callers must check the
/// kMixed* bounds first.
constexpr uint64_t
mixedMemoKey(int decode_batch, uint64_t decode_seq,
             uint64_t prefill_tokens, uint64_t prefill_pos)
{
    return (static_cast<uint64_t>(decode_batch) << 52) |
           (prefill_tokens << 36) | (seqBucket(decode_seq) << 18) |
           seqBucket(prefill_pos);
}

} // namespace pimba

#endif // PIMBA_SERVING_STEP_MEMO_H
