/**
 * @file
 * Request model of the request-level serving engine: one trace entry per
 * inference request (arrival time plus prompt/output lengths), the
 * engine-side lifecycle bookkeeping, and the per-request latency record
 * emitted on completion. This is the request-level regime the paper's
 * throughput studies (Figs. 12-16) and the NeuPIMs baseline assume, as
 * opposed to the steady-state per-step model of ServingSimulator.
 */

#ifndef PIMBA_SERVING_REQUEST_H
#define PIMBA_SERVING_REQUEST_H

#include <cstdint>

#include "core/units.h"

namespace pimba {

/** One inference request of a serving trace. */
struct Request
{
    uint64_t id = 0;
    Seconds arrival;        ///< since trace start
    uint64_t inputLen = 0;  ///< prompt tokens (prefill)
    uint64_t outputLen = 1; ///< tokens to generate (>= 1)
    /** Tenant class the trace generator sampled this request from
     *  (index into TraceConfig::classes; 0 for classless traces). The
     *  engine treats all classes alike — the field rides along so
     *  replayed traces and per-class analyses keep the attribution. */
    uint32_t classId = 0;
    /** Leading prompt tokens shared with every other request of this
     *  class (a synthetic per-class prefix id, e.g. a common system
     *  prompt). 0 means no shared prefix. An engine whose prefix cache
     *  is warm for the class skips prefilling min(prefixLen,
     *  inputLen - 1) tokens; the cache-affinity router scores replicas
     *  by how much of this prefix they hold. */
    uint64_t prefixLen = 0;
};

/**
 * Phase of an *admitted* request. Waiting requests live in the engine's
 * arrival queue and finished ones leave the batch as CompletedRequest
 * records, so only the two resident phases need a state. A request
 * preempted by eviction leaves the batch entirely — its bookkeeping is
 * discarded and rebuilt from scratch (recompute) on re-admission.
 */
enum class RequestPhase
{
    Prefill, ///< admitted, prompt tokens still being processed
    Decode,  ///< generating output tokens
};

/** Engine-side bookkeeping for one admitted request. */
struct RequestState
{
    Request req;
    RequestPhase phase = RequestPhase::Prefill;
    /** Prompt was prefilled elsewhere and its cached blocks imported
     *  (disaggregated serving): admission allocates the whole prompt's
     *  blocks up front and the request enters directly in Decode. */
    bool preloaded = false;
    uint64_t prefilled = 0;  ///< prompt tokens already processed
    uint64_t generated = 0;  ///< output tokens already produced
    /** Of `prefilled`, the leading tokens satisfied from the engine's
     *  per-class prefix cache at admission — cached, never computed
     *  locally, so eviction/cancellation accounting must not bill them
     *  as recomputed or wasted compute. */
    uint64_t prefixSkipped = 0;
    /** Blocks admission promised this request (prompt + first token);
     *  outstanding pledges gate further admissions so co-resident
     *  prompts can always be cached without evicting each other. */
    Blocks pledgedBlocks;
    Seconds admitted{-1.0};  ///< absolute admission time (eviction order)
    Seconds firstToken{-1.0}; ///< absolute time of the first output token
    Seconds finished{-1.0};

    /** Tokens currently held in the cache (prompt + generated). */
    uint64_t cachedTokens() const { return prefilled + generated; }
    bool prefillDone() const { return prefilled >= req.inputLen; }
    bool done() const { return generated >= req.outputLen; }
};

/** Latency record of one completed request. */
struct CompletedRequest
{
    Request req;
    Seconds ttft;    ///< time to first token (includes queueing)
    Seconds tpot;    ///< mean inter-token time after the first
    Seconds latency; ///< arrival to last token
    /** Arrival to *first* admission. Re-admissions after an eviction do
     *  not reset it: the wait a preemption adds shows up in ttft (and
     *  in preemptions), not here. */
    Seconds queueing;
    uint64_t preemptions = 0; ///< evictions this request suffered
};

} // namespace pimba

#endif // PIMBA_SERVING_REQUEST_H
