/**
 * @file
 * Event-driven, request-level continuous-batching serving engine over a
 * paged block manager and a pluggable scheduling policy.
 *
 * The engine layers an iteration-level (Orca-style) scheduler on top of
 * the per-step analytic ServingSimulator. Every iteration it admits
 * waiting requests in the policy's order, lets the policy compose the
 * iteration (decode steps over every decode-resident request plus one
 * or more prefill chunks, optionally fused into a single launch),
 * advances the simulated clock by the modeled iteration latency, and
 * retires requests whose outputs are complete.
 *
 * Memory is paged, not reserved: admission only requires that the
 * request's prompt could be cached into the currently free blocks, and
 * blocks are then allocated on demand as tokens are actually cached
 * (vLLM-style). When growth outruns the pool, the engine preempts the
 * most recently admitted resident by eviction — its blocks are freed,
 * its cached tokens are discarded, and it re-queues at the head of the
 * waiting line to recompute from scratch on re-admission. Actual usage
 * therefore never exceeds the budget, without the seed engine's
 * peak-footprint over-reservation.
 */

#ifndef PIMBA_SERVING_ENGINE_H
#define PIMBA_SERVING_ENGINE_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "serving/block_manager.h"
#include "serving/metrics.h"
#include "serving/request.h"
#include "serving/scheduler.h"
#include "sim/serving_sim.h"

namespace pimba {

/** Scheduler/engine tunables. */
struct EngineConfig
{
    int maxBatch = 128;          ///< concurrently admitted request cap
                                 ///  (prefill- and decode-phase combined)
    uint64_t prefillChunk = 512; ///< prompt tokens per prefill chunk
    /** HBM budget in bytes; 0 selects memCapacity x nGpus of the system. */
    double memoryBudget = 0.0;
    /** Cached tokens per KV block of the paged allocator. */
    uint64_t blockTokens = 16;
    /**
     * Per-iteration new-token budget (decode + prefill) for the Sarathi
     * policy; 0 resolves to maxBatch + prefillChunk so a full decode
     * batch always leaves one chunk's worth of prefill budget. Decode
     * is never throttled — see makeScheduler(). The Sarathi policy's
     * fused-step memo requires maxBatch < 4096 and a resolved budget
     * < 65536 (checked at engine construction).
     */
    uint64_t iterTokenBudget = 0;
    SchedulerPolicy policy = SchedulerPolicy::FCFS;
    SloConfig slo;
};

/** Outcome of one engine run over a trace. */
struct ServingReport
{
    std::vector<CompletedRequest> completed; ///< in completion order
    ServingMetrics metrics;
    double makespan = 0.0;     ///< seconds, trace start to last token
    uint64_t iterations = 0;   ///< scheduler iterations executed
    uint64_t generatedTokens = 0; ///< delivered tokens (evictions net out)
    uint64_t prefillChunks = 0;
    uint64_t preemptions = 0;  ///< evictions under memory pressure
    /** Prompt + output tokens discarded by evictions (recompute debt). */
    uint64_t recomputedTokens = 0;
    double peakMemory = 0.0;   ///< max bytes resident at any iteration
    double memoryBudget = 0.0; ///< the budget the run enforced
    int peakBatch = 0;         ///< max concurrently admitted requests
    uint64_t totalBlocks = 0;  ///< block-pool size the run was given
    double peakBlockUtil = 0.0; ///< max fraction of the pool allocated
    double avgBlockUtil = 0.0;  ///< iteration-averaged pool allocation
    SchedulerPolicy policy = SchedulerPolicy::FCFS;
};

/** Request-level continuous-batching engine for one system + model. */
class ServingEngine
{
  public:
    ServingEngine(const ServingSimulator &sim, const ModelConfig &model,
                  EngineConfig cfg = {});

    /** Serve @p trace to completion and report fleet metrics. */
    ServingReport run(const std::vector<Request> &trace);

    const EngineConfig &config() const { return cfg; }

  private:
    /** Decode-step latency, memoized by (batch, cache-length bucket). */
    double decodeSeconds(int batch, uint64_t mean_seq);
    /** Prefill-chunk latency, memoized by (chunk, position bucket). */
    double prefillSeconds(uint64_t chunk, uint64_t seq_pos);
    /** Fused-iteration latency, memoized like the two above. */
    double mixedSeconds(int decode_batch, uint64_t decode_seq,
                        uint64_t prefill_tokens, uint64_t prefill_pos);

    ServingSimulator sim;
    ModelConfig model;
    EngineConfig cfg;
    std::unique_ptr<Scheduler> sched;
    std::unordered_map<uint64_t, double> decodeCache;
    std::unordered_map<uint64_t, double> prefillCache;
    std::unordered_map<uint64_t, double> mixedCache;
};

} // namespace pimba

#endif // PIMBA_SERVING_ENGINE_H
