/**
 * @file
 * Event-driven, request-level continuous-batching serving engine over a
 * paged block manager and a pluggable scheduling policy.
 *
 * The engine layers an iteration-level (Orca-style) scheduler on top of
 * the per-step analytic ServingSimulator. Every iteration it admits
 * waiting requests in the policy's order, lets the policy compose the
 * iteration (decode steps over every decode-resident request plus one
 * or more prefill chunks, optionally fused into a single launch),
 * advances the simulated clock by the modeled iteration latency, and
 * retires requests whose outputs are complete.
 *
 * Memory is paged, not reserved: admission only requires that the
 * request's prompt could be cached into the currently free blocks, and
 * blocks are then allocated on demand as tokens are actually cached
 * (vLLM-style). When growth outruns the pool, the engine preempts the
 * most recently admitted resident by eviction — its blocks are freed,
 * its cached tokens are discarded, and it re-queues at the head of the
 * waiting line to recompute from scratch on re-admission. Actual usage
 * therefore never exceeds the budget, without the seed engine's
 * peak-footprint over-reservation.
 *
 * Two driving modes share the same iteration loop:
 *  - run() serves a whole trace to completion (single-replica studies);
 *  - the begin()/submit()/advanceTo()/drain()/finish() session API lets
 *    an external driver (the cluster fleet) interleave many replicas on
 *    one global clock, query queue depth and outstanding tokens for
 *    routing, and import prefilled requests whose cached blocks were
 *    shipped from another replica (prefill/decode disaggregation).
 */

#ifndef PIMBA_SERVING_ENGINE_H
#define PIMBA_SERVING_ENGINE_H

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map> // pimba-lint: allow(node-container) cold lifecycle map
#include <unordered_set> // pimba-lint: allow(node-container) cold preload set
#include <utility>
#include <vector>

#include "core/flat_table.h"
#include "obs/timeline.h"
#include "obs/tracer.h"
#include "serving/block_manager.h"
#include "serving/metrics.h"
#include "serving/request.h"
#include "serving/scheduler.h"
#include "sim/serving_sim.h"

namespace pimba {

/// GPU/PIM/sync phase split of one memoized step, cached for the
/// tracer (raw seconds like the step-cost memos; populated only while
/// a tracer is attached, so the disabled path never computes it).
struct StepPhases
{
    double gpu = 0.0;
    double pim = 0.0;
    double sync = 0.0;
};

/// Observability sinks one engine reports into. All null/zero by
/// default: an engine without observers skips every recording on its
/// iteration path (zero overhead when disabled).
struct EngineObservers
{
    Tracer *tracer = nullptr;   ///< lifecycle + phase event sink
    int pid = 1;                ///< trace "process" of this engine
    TimelineSampler *timeline = nullptr; ///< periodic load sampler
    int timelineTrack = 0;      ///< registered track id on @c timeline
    /// Streaming metrics collector fed one CompletedRequest at a time
    /// (the sample-vector-free aggregation path).
    StreamingMetrics *stream = nullptr;
    /// With @c stream attached: drop per-request record retention too —
    /// ServingReport::completed stays empty and the engine's memory is
    /// bounded by the in-flight set, independent of trace length (the
    /// million-request replay shape). Counters and aggregate metrics
    /// stay exact; percentile summaries come from the stream's
    /// sketches. Ignored without a stream (silently dropping records
    /// with no collector would lose them entirely).
    bool streamOnly = false;
};

/// Scheduler/engine tunables.
struct EngineConfig
{
    int maxBatch = 128;          ///< concurrently admitted request cap
                                 ///  (prefill- and decode-phase combined)
    Tokens prefillChunk{512};    ///< prompt tokens per prefill chunk
    /// HBM budget in bytes across the whole tensor-parallel group; 0
    /// selects memCapacity x nGpus of the system. The block pool is
    /// carved from the budget minus ServingSimulator::weightFootprint(),
    /// which charges the (otherwise tensor-parallel-sharded) embedding
    /// table once per shard — subtracting the whole-model byte count
    /// instead would over-pledge the pool of an nGpus > 1 replica by
    /// nGpus - 1 embedding tables.
    Bytes memoryBudget{0.0};
    /// Cached tokens per KV block of the paged allocator.
    Tokens blockTokens{16};
    /// Per-iteration new-token budget (decode + prefill) for the Sarathi
    /// policy; 0 resolves to maxBatch + prefillChunk so a full decode
    /// batch always leaves one chunk's worth of prefill budget. Decode
    /// is never throttled — see makeScheduler(). The Sarathi policy's
    /// fused-step memo requires maxBatch < 4096 and a resolved budget
    /// < 65536 (checked at engine construction).
    Tokens iterTokenBudget{0};
    SchedulerPolicy policy = SchedulerPolicy::FCFS;
    /// GPU<->PIM execution mode override for this replica. nullopt
    /// inherits the mode of the SystemConfig the simulator was built
    /// with; setting it lets a fleet mix blocked and overlapped replicas
    /// of the same system kind (the override is applied to the engine's
    /// private simulator copy at construction).
    std::optional<ExecutionMode> executionMode;
    SloConfig slo;
    /// Priority tier per request class (index = Request::classId,
    /// higher = more important; classes beyond the vector default to
    /// tier 0). Empty — the default — disables tiering entirely: the
    /// queue stays strict FIFO and eviction picks the most recently
    /// admitted resident, byte-identical to the untiered engine. When
    /// set, revealed arrivals queue ahead of strictly lower tiers
    /// (FIFO within a tier) and eviction victimizes the lowest
    /// resident tier first (most recently admitted within it).
    std::vector<int> tierByClass;
};

/// The iteration token budget a config resolves to: the explicit value,
/// or maxBatch + prefillChunk when 0. Shared by validateEngineConfig
/// and the engine constructor so the Sarathi memo bound is always
/// checked against exactly the budget the engine will run with.
Tokens resolvedIterTokenBudget(const EngineConfig &cfg);

/// Validate @p cfg. Returns the empty string when the config is sane,
/// else one actionable message naming the offending field and bound
/// (non-positive batch cap, zero block size, negative memory budget,
/// non-positive SLO targets, Sarathi memo-key overflow). The engine
/// constructor enforces this; the scenario loader calls it up front so
/// JSON mistakes are reported with a file location instead of a fatal
/// abort mid-run.
std::string validateEngineConfig(const EngineConfig &cfg);

/// Outcome of one engine run over a trace.
struct ServingReport
{
    /// Per-request records in completion order. Empty under
    /// EngineObservers::streamOnly — completedRequests below is then
    /// the only (and authoritative) completion count.
    std::vector<CompletedRequest> completed;
    /// Requests retired this run. Always maintained, so counters keep
    /// working when streamOnly drops the per-request records.
    uint64_t completedRequests = 0;
    /// Requests removed by cancel() (deadline timeouts). A session is
    /// fully served when completed + cancelled == submitted.
    uint64_t cancelledRequests = 0;
    /// Tokens computed for later-cancelled requests (prefill chunks
    /// plus locally decoded output) — discarded work, distinct from
    /// recomputedTokens (eviction debt that is eventually redone).
    uint64_t wastedTokens = 0;
    ServingMetrics metrics;
    Seconds makespan;          ///< trace start to last token
    uint64_t iterations = 0;   ///< scheduler iterations executed
    uint64_t generatedTokens = 0; ///< delivered tokens (evictions net out)
    uint64_t prefillChunks = 0;
    uint64_t preemptions = 0;  ///< evictions under memory pressure
    /// Prompt + output tokens discarded by evictions (recompute debt).
    uint64_t recomputedTokens = 0;
    Bytes peakMemory{0.0};     ///< max bytes resident at any iteration
    Bytes memoryBudget{0.0};   ///< the budget the run enforced
    int peakBatch = 0;         ///< max concurrently admitted requests
    Blocks totalBlocks{0};     ///< block-pool size the run was given
    double peakBlockUtil = 0.0; ///< max fraction of the pool allocated
    double avgBlockUtil = 0.0;  ///< iteration-averaged pool allocation
    SchedulerPolicy policy = SchedulerPolicy::FCFS;
    /// Mode every iteration of the run was costed under.
    ExecutionMode executionMode = ExecutionMode::Blocked;
};

/// Request-level continuous-batching engine for one system + model.
class ServingEngine
{
  public:
    ServingEngine(const ServingSimulator &sim, const ModelConfig &model,
                  EngineConfig cfg = {});

    /// Serve @p trace to completion and report fleet metrics.
    ServingReport run(const std::vector<Request> &trace);

    // ------------------------------------------------- session API
    // The cluster fleet drives many engines on one global clock:
    // begin() opens a session, submit() feeds arrivals (non-decreasing
    // arrival times), advanceTo() runs the iteration loop up to a
    // global timestamp, drain() completes all submitted work, and
    // finish() closes the session and returns the report.

    /// Open a session: reset all run state and size the block pool.
    void begin();

    /// Feed one arrival. Arrival times must be non-decreasing.
    void submit(const Request &r);

    /// Feed one request whose prompt was prefilled on another replica
    /// and whose cached KV/state blocks have been shipped here
    /// (disaggregated serving). @p r.arrival is the time the blocks land
    /// on this replica; admission allocates the whole prompt's blocks up
    /// front and the request enters directly in Decode with its first
    /// output token already delivered upstream, so it must still need at
    /// least one decode step (outputLen >= 2). If memory pressure later
    /// evicts it, the shipped blocks are assumed retained in the
    /// transfer staging buffer: re-admission re-materializes the prompt
    /// without a second link transfer, and only locally decoded tokens
    /// count as recompute debt.
    void submitPrefilled(const Request &r);

    /// Run iterations until the clock reaches @p t or the engine idles
    /// with no submitted arrival due by @p t. An iteration in flight at
    /// @p t completes (and overshoots) — real schedulers do not preempt
    /// a launched step. Returns the clock after advancing.
    Seconds advanceTo(Seconds t);

    /// Serve every submitted request to completion.
    void drain();

    /// Close the session (must be drained) and return its report.
    ServingReport finish();

    /// Cancel request @p id (a deadline fired): remove it from the
    /// pending/waiting queue, or evict it from the running batch and
    /// free its blocks. With @p onlyIfNoFirstToken (a TTFT deadline), a
    /// request that has already delivered its first token is left
    /// alone. Cancelled requests emit no completion record; locally
    /// computed prefill/decode tokens are billed to
    /// ServingReport::wastedTokens and removed from generatedTokens.
    /// Returns false — harmlessly — when the request already completed,
    /// was cancelled earlier, or kept its first token: stale deadline
    /// timers need no bookkeeping on the calendar side.
    bool cancel(uint64_t id, Seconds now, bool onlyIfNoFirstToken);

    // --------------------------------------- router introspection
    /// Simulated clock of the open session.
    Seconds now() const { return clock; }
    /// Earliest time this replica has anything to do: the clock when
    /// work is resident or revealed, the next pending arrival when
    /// idle, +inf when fully drained. The fleet skips advanceTo()
    /// broadcasts to replicas whose next event lies beyond the target
    /// time — a pure no-op there — turning the per-request
    /// O(replicas) advance into O(replicas with due work).
    Seconds nextEventTime() const;
    /// Submitted requests not yet admitted (queued work).
    size_t waitingCount() const;
    /// Requests currently resident in the batch.
    size_t runningCount() const { return running.size(); }
    /// Submitted requests not yet completed (waiting + running).
    size_t queueDepth() const;
    /// Total tokens of work still to serve across queued and resident
    /// requests: unprocessed prompt tokens plus ungenerated output
    /// tokens. The least-outstanding-tokens router's load signal.
    uint64_t outstandingTokens() const;
    /// Priority-weighted unfinished work: sum of (tier + 1) over every
    /// queued and resident request. Routers use it to break load ties
    /// toward the replica hosting less important work. O(1) zero when
    /// tiering is disabled (EngineConfig::tierByClass empty).
    uint64_t tierPressure() const;
    /// Blocks of class @p classId's shared prefix this replica's prefix
    /// cache holds (warmed when a request of the class finishes
    /// prefill). The cache-affinity router's locality signal.
    uint64_t cachedPrefixBlocks(uint32_t classId) const;
    /// Arrival time of the oldest revealed-but-unadmitted request; +inf
    /// when the queue is empty. The autoscaler's head-of-line-wait SLO
    /// signal.
    Seconds oldestQueuedArrival() const;
    /// Requests completed so far in the open session.
    size_t completedCount() const { return report.completedRequests; }
    /// Completion records so far (the fleet polls for hand-offs).
    /// Empty under streamOnly — the disaggregated fleet, which needs
    /// these records to build transfer hand-offs, rejects the
    /// record-free mode up front.
    const std::vector<CompletedRequest> &completedSoFar() const
    {
        return report.completed;
    }

    const EngineConfig &config() const { return cfg; }
    /// The replica's simulator (footprint math for transfer sizing).
    const ServingSimulator &simulator() const { return sim; }

    // ------------------------------------------------ observability
    /// Attach (or with a default-constructed argument, detach) the
    /// observability sinks. Persists across begin()/finish() cycles so
    /// a fleet attaches once per replica. When a tracer is attached,
    /// its fixed engine tracks (iterations, gpu, pim, sync) are named
    /// immediately; the caller names the process (pid) itself, since
    /// only it knows the run's label.
    void attachObservers(const EngineObservers &o);
    const EngineObservers &observers() const { return obs; }

  private:
    /// Decode-step latency, memoized by (batch, cache-length bucket).
    double decodeSeconds(int batch, uint64_t mean_seq);
    /// Prefill-chunk latency, memoized by (chunk, position bucket).
    double prefillSeconds(uint64_t chunk, uint64_t seq_pos);
    /// Fused-iteration latency, memoized like the two above.
    double mixedSeconds(int decode_batch, uint64_t decode_seq,
                        uint64_t prefill_tokens, uint64_t prefill_pos);

    // GPU/PIM/sync splits of the same memoized steps, in parallel
    // tables keyed identically to the seconds memos. Touched only from
    // the tracer emission path, so the disabled hot path never pays
    // for the extra lookups (and the seconds memos stay byte-for-byte
    // what the untraced run computes).
    StepPhases decodePhases(int batch, uint64_t mean_seq);
    StepPhases prefillPhases(uint64_t chunk, uint64_t seq_pos);
    StepPhases mixedPhases(int decode_batch, uint64_t decode_seq,
                           uint64_t prefill_tokens, uint64_t prefill_pos);

    /// Emit one substep's gpu/pim/sync slices on the phase tracks.
    /// @p start is the substep's start time; under Blocked execution
    /// the phases run back-to-back, under Overlapped gpu and pim start
    /// together and sync follows the longer of the two.
    void tracePhaseSlices(Seconds start, const StepPhases &ph,
                          const std::string &name);
    /// The iteration slice plus its per-substep phase slices, emitted
    /// right after the clock advance (before token application, so the
    /// per-request prefill positions still match what the costing
    /// read). @p prefillMean is the fused step's mean prefill cache
    /// position (ignored for unfused iterations).
    void traceIteration(Seconds start, Seconds dur, int decodeBatch,
                        uint64_t decodeMean, uint64_t prefillTokens,
                        uint64_t prefillMean);

    /// Move pending arrivals with arrival <= clock into the queue.
    void revealArrivals();
    /// One scheduler iteration (admission, planning, costing, retire).
    void iterate();
    /// Priority tier of @p classId (0 when untiered / out of range).
    int tierOf(uint32_t classId) const;
    /// Queue @p r respecting tier order (plain push_back when
    /// untiered; see EngineConfig::tierByClass). Evicted requests
    /// re-queue at the *front* of their tier segment instead.
    void enqueueWaiting(const Request &r, bool atSegmentFront);

    ServingSimulator sim;
    ModelConfig model;
    EngineConfig cfg;
    std::unique_ptr<Scheduler> sched;
    // Step-cost memos: packed (batch, bucket) keys (see step_memo.h) to
    // modeled seconds, in flat open-addressing tables — the memo lookup
    // is the innermost operation of every sweep, and the node-based
    // unordered_map's hash + pointer chase dominated it.
    FlatTable<double> decodeCache;
    FlatTable<double> prefillCache;
    FlatTable<double> mixedCache;
    // Phase-split memos (tracing only; see decodePhases).
    FlatTable<StepPhases> decodePhaseCache;
    FlatTable<StepPhases> prefillPhaseCache;
    FlatTable<StepPhases> mixedPhaseCache;
    EngineObservers obs;

    // ------------------------------------------------ session state
    /// Queueing-delay / preemption bookkeeping that must survive
    /// evictions (RequestState is discarded on preemption).
    struct Lifecycle
    {
        Seconds firstAdmitted{-1.0};
        uint64_t preemptions = 0;
    };

    bool active = false;
    Seconds clock{0.0};
    double utilSum = 0.0;
    Bytes weightBytes{0.0};
    uint64_t submitted = 0;
    std::deque<Request> pendingArrivals; ///< submitted, arrival > clock
    std::deque<Request> waiting;         ///< revealed, not yet admitted
    std::vector<RequestState> running;   ///< kept in admission order
    // pimba-lint: allow(node-container) touched on admission only
    std::unordered_set<uint64_t> preloadedIds;
    // pimba-lint: allow(node-container) touched on admit/finish, not per step
    std::unordered_map<uint64_t, Lifecycle> life;
    std::optional<BlockManager> blocks;
    BlockMapper mapper;
    /// Per-class warmed shared-prefix tokens (index = classId, grown on
    /// demand). Warmed when a request of the class completes prefill;
    /// admission then skips the already-cached prefix of later
    /// requests of the same class. Synthetic: the prefix occupies no
    /// blocks of its own in the pool — reuse shows up purely as
    /// skipped prefill compute, which keeps the disabled path (no
    /// Request::prefixLen set anywhere) byte-identical.
    std::vector<uint64_t> prefixCache;
    ServingReport report;

    // Per-iteration scratch, reused across iterations so the inner loop
    // allocates nothing once capacities settle.
    IterationPlan plan;
    std::vector<std::pair<uint64_t, uint64_t>> growScratch;
};

} // namespace pimba

#endif // PIMBA_SERVING_ENGINE_H
