/**
 * @file
 * Event-driven, request-level continuous-batching serving engine.
 *
 * The engine layers an iteration-level (Orca-style) scheduler on top of
 * the per-step analytic ServingSimulator: every iteration it admits
 * waiting requests FCFS under an HBM memory budget, runs at most one
 * prefill chunk interleaved with one decode step over all
 * decode-resident requests (GPU and PIM execute blocked, matching the
 * step simulator), advances the simulated clock by the modeled iteration
 * latency, and retires requests whose outputs are complete, releasing
 * their memory reservation.
 *
 * Admission is reservation-based: a request is admitted only if its
 * *peak* footprint (recurrent state + KV cache at input+output tokens +
 * activations, via ServingSimulator::requestFootprint) fits under the
 * budget alongside the weights and every already-admitted reservation.
 * Admitted requests therefore never have to be preempted, and actual
 * usage can never exceed the budget.
 */

#ifndef PIMBA_SERVING_ENGINE_H
#define PIMBA_SERVING_ENGINE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "serving/metrics.h"
#include "serving/request.h"
#include "sim/serving_sim.h"

namespace pimba {

/** Scheduler/engine tunables. */
struct EngineConfig
{
    int maxBatch = 128;          ///< concurrently admitted request cap
                                 ///  (prefill- and decode-phase combined)
    uint64_t prefillChunk = 512; ///< prompt tokens per prefill iteration
    /** HBM budget in bytes; 0 selects memCapacity x nGpus of the system. */
    double memoryBudget = 0.0;
    SloConfig slo;
};

/** Outcome of one engine run over a trace. */
struct ServingReport
{
    std::vector<CompletedRequest> completed; ///< in completion order
    ServingMetrics metrics;
    double makespan = 0.0;     ///< seconds, trace start to last token
    uint64_t iterations = 0;   ///< scheduler iterations executed
    uint64_t generatedTokens = 0;
    uint64_t prefillChunks = 0;
    double peakMemory = 0.0;   ///< max bytes resident at any iteration
    double peakReserved = 0.0; ///< max bytes reserved by admission
    double memoryBudget = 0.0; ///< the budget the run enforced
    int peakBatch = 0;         ///< max concurrently admitted requests
};

/** Request-level continuous-batching engine for one system + model. */
class ServingEngine
{
  public:
    ServingEngine(const ServingSimulator &sim, const ModelConfig &model,
                  EngineConfig cfg = {});

    /** Serve @p trace to completion and report fleet metrics. */
    ServingReport run(const std::vector<Request> &trace);

    const EngineConfig &config() const { return cfg; }

  private:
    /** Decode-step latency, memoized by (batch, cache-length bucket). */
    double decodeSeconds(int batch, uint64_t mean_seq);
    /** Prefill-chunk latency, memoized by (chunk, position bucket). */
    double prefillSeconds(uint64_t chunk, uint64_t seq_pos);

    ServingSimulator sim;
    ModelConfig model;
    EngineConfig cfg;
    std::unordered_map<uint64_t, double> decodeCache;
    std::unordered_map<uint64_t, double> prefillCache;
};

} // namespace pimba

#endif // PIMBA_SERVING_ENGINE_H
