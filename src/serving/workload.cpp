#include "serving/workload.h"

namespace pimba {

ServingReport
servePoissonReport(SystemKind kind, const ModelConfig &model, double rate,
                   const OpenLoopWorkload &w)
{
    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Poisson;
    tc.ratePerSec = rate;
    tc.numRequests = w.numRequests;
    tc.inputLen = w.inputLen;
    tc.outputLen = w.outputLen;
    if (w.inputLenMax > 0 || w.outputLenMax > 0) {
        tc.lengths = LengthDistribution::Uniform;
        tc.inputLenMax = w.inputLenMax;
        tc.outputLenMax = w.outputLenMax;
    }
    tc.seed = w.seed;

    ServingSimulator sim(makeSystem(kind));
    EngineConfig ec;
    ec.maxBatch = w.maxBatch;
    ec.policy = w.policy;
    ec.executionMode = w.executionMode;
    ServingEngine engine(sim, model, ec);
    return engine.run(generateTrace(tc));
}

ServingMetrics
servePoisson(SystemKind kind, const ModelConfig &model, double rate,
             const OpenLoopWorkload &w)
{
    return servePoissonReport(kind, model, rate, w).metrics;
}

bool
sustainsSlo(const ServingMetrics &m, double fraction)
{
    if (m.requests == 0)
        return false;
    uint64_t good = m.requests - m.sloViolations;
    return static_cast<double>(good) >=
           fraction * static_cast<double>(m.requests);
}

} // namespace pimba
