#include "serving/workload.h"

namespace pimba {

ServingMetrics
servePoisson(SystemKind kind, const ModelConfig &model, double rate,
             const OpenLoopWorkload &w)
{
    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Poisson;
    tc.ratePerSec = rate;
    tc.numRequests = w.numRequests;
    tc.inputLen = w.inputLen;
    tc.outputLen = w.outputLen;
    tc.seed = w.seed;

    ServingSimulator sim(makeSystem(kind));
    EngineConfig ec;
    ec.maxBatch = w.maxBatch;
    ServingEngine engine(sim, model, ec);
    return engine.run(generateTrace(tc)).metrics;
}

bool
sustainsSlo(const ServingMetrics &m, double fraction)
{
    if (m.requests == 0)
        return false;
    uint64_t good = m.requests - m.sloViolations;
    return static_cast<double>(good) >=
           fraction * static_cast<double>(m.requests);
}

} // namespace pimba
