/**
 * @file
 * Canonical open-loop Poisson workload shared by the serving bench, the
 * traffic-sweep example, and the goodput regression tests, so all three
 * measure the same thing. Also defines the saturation criterion: a
 * system sustains a rate when (nearly) every request meets the SLO —
 * judged on the per-request compliance fraction, not on goodput vs the
 * offered rate, whose makespan denominator includes the post-arrival
 * drain of the final batch.
 */

#ifndef PIMBA_SERVING_WORKLOAD_H
#define PIMBA_SERVING_WORKLOAD_H

#include "serving/engine.h"
#include "serving/trace.h"

namespace pimba {

/** Shape of the canonical open-loop experiment. */
struct OpenLoopWorkload
{
    int numRequests = 64;
    uint64_t inputLen = 512;
    uint64_t outputLen = 256;
    /** Nonzero switches lengths to integer-uniform in [len, lenMax];
     *  the default 0 keeps the canonical fixed-length workload. Length
     *  variance is what separates SJF from FCFS. */
    uint64_t inputLenMax = 0;
    uint64_t outputLenMax = 0;
    int maxBatch = 64;
    uint32_t seed = 0x5EED0001u;
    SchedulerPolicy policy = SchedulerPolicy::FCFS;
    /** GPU<->PIM execution mode of the serving system under test. */
    ExecutionMode executionMode = ExecutionMode::Blocked;
};

/** Serve @p w at Poisson rate @p rate on @p kind, full report. */
ServingReport servePoissonReport(SystemKind kind,
                                 const ModelConfig &model, double rate,
                                 const OpenLoopWorkload &w = {});

/** Serve @p w at Poisson rate @p rate on @p kind and report metrics. */
ServingMetrics servePoisson(SystemKind kind, const ModelConfig &model,
                            double rate,
                            const OpenLoopWorkload &w = {});

/**
 * True if at least @p fraction of the completed requests met the SLO —
 * the saturation test used by the bench and the sweep example.
 */
bool sustainsSlo(const ServingMetrics &m, double fraction = 0.95);

} // namespace pimba

#endif // PIMBA_SERVING_WORKLOAD_H
