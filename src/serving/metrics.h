/**
 * @file
 * Fleet-level serving metrics: TTFT/TPOT/end-to-end latency percentile
 * summaries, sustained token throughput, and goodput under a per-request
 * SLO (a request counts toward goodput only if both its TTFT and its
 * TPOT meet the target, the criterion used by request-level serving
 * studies). Rendered through the core Table infrastructure.
 */

#ifndef PIMBA_SERVING_METRICS_H
#define PIMBA_SERVING_METRICS_H

#include <string>
#include <vector>

#include "core/sketch.h"
#include "core/table.h"
#include "serving/request.h"

namespace pimba {

/** Per-request latency service-level objective. */
struct SloConfig
{
    Seconds ttft{1.0};  ///< time to first token
    Seconds tpot{0.02}; ///< time per subsequent token
};

/** Percentile summary of one latency population (seconds). */
struct LatencySummary
{
    /** Samples the summary covers — percentiles of a population that
     *  never says how large it is are easy to over-trust. */
    uint64_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/** Summarize a sample vector into count/mean/min/p50/p95/p99/max. An
 *  empty sample vector (e.g. a saturated replica that completed
 *  nothing) yields the all-zero summary, never UB. */
LatencySummary summarizeLatency(const std::vector<double> &samples);

/** Fleet metrics over one engine run. */
struct ServingMetrics
{
    uint64_t requests = 0;        ///< completed requests
    uint64_t generatedTokens = 0; ///< output tokens produced
    Seconds makespan;             ///< first arrival to last completion
    TokensPerSecond tokensPerSec; ///< sustained generation throughput
    RequestsPerSecond requestsPerSec; ///< completion rate
    RequestsPerSecond goodput; ///< SLO-meeting completions per second
    uint64_t sloViolations = 0;   ///< completions missing the SLO
    /** Requests cancelled by deadline timers (docs/control-plane.md).
     *  Cancelled requests emit no completion record: they are outside
     *  every percentile population above and can never count toward
     *  goodput. Zero unless the control plane posts deadlines. */
    uint64_t cancelledRequests = 0;
    /** Tokens computed for requests that were later cancelled (prefill
     *  chunks plus locally-decoded output) — compute billed but never
     *  delivered. Eviction recompute is tracked separately (the work is
     *  redone, not discarded) in ServingReport::recomputedTokens. */
    uint64_t wastedTokens = 0;
    LatencySummary ttft;
    /** TPOT over requests with >= 2 output tokens only: single-token
     *  requests have no inter-token gap and would skew the percentiles
     *  toward zero. They still count for the SLO (trivially compliant —
     *  there is no decode step to miss the per-token target). */
    LatencySummary tpot;
    LatencySummary latency;
    /** Arrival-to-first-admission wait (seconds) — the part of TTFT the
     *  scheduler/router controls, as opposed to prefill compute. */
    LatencySummary queueing;
    /** Per-request eviction counts (dimensionless, summarized like a
     *  latency population so the tail is visible). */
    LatencySummary preemptions;
};

/** Aggregate completed-request records into fleet metrics. */
ServingMetrics computeMetrics(const std::vector<CompletedRequest> &done,
                              Seconds makespan, const SloConfig &slo);

/**
 * Streaming alternative to computeMetrics(): per-request records are
 * folded into mergeable quantile sketches (core/sketch.h) one at a
 * time, so the collector's memory footprint is O(sketch buckets)
 * instead of O(requests) sample vectors — the shape the roadmap's
 * million-request replays need. Percentiles come out within the
 * sketch's relative accuracy of the exact summaries; count, mean, min,
 * max, throughput, goodput and SLO-violation counts are exact.
 *
 * Collectors merge: per-replica collectors fold into one fleet-wide
 * collector without ever materializing the combined sample set.
 */
class StreamingMetrics
{
  public:
    explicit StreamingMetrics(
        SloConfig slo = {},
        double accuracy = QuantileSketch::kDefaultAccuracy);

    /** Fold one completion record in. */
    void observe(const CompletedRequest &c);

    /** Fold another collector in (same SLO and accuracy expected). */
    void merge(const StreamingMetrics &other);

    /** Completions observed so far. */
    uint64_t observed() const { return requests; }

    /** Completion instant (arrival + latency) of the latest-finishing
     *  observation — exact, so a streamed fleet run derives the same
     *  makespan the record-retaining path computes from its sorted
     *  completion list. Zero before any observation. */
    Seconds lastFinishTime() const { return lastFinish; }

    /** Snapshot the metrics over @p makespan. Identical field layout
     *  to computeMetrics() output: percentile members carry sketch
     *  estimates, everything else is exact. */
    ServingMetrics finalize(Seconds makespan) const;

  private:
    SloConfig slo;
    uint64_t requests = 0;
    uint64_t generatedTokens = 0;
    uint64_t good = 0;
    Seconds lastFinish{0.0};
    QuantileSketch ttft;
    QuantileSketch tpot;
    QuantileSketch latency;
    QuantileSketch queueing;
    QuantileSketch preemptions;
};

/** Header matching metricsRow() for rate/system sweep tables. */
std::vector<std::string> metricsHeader();

/** One sweep-table row: label column followed by the key metrics. */
std::vector<std::string> metricsRow(const std::string &label,
                                    const ServingMetrics &m);

} // namespace pimba

#endif // PIMBA_SERVING_METRICS_H
