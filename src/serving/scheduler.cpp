#include "serving/scheduler.h"

#include <algorithm>

#include "core/logging.h"

namespace pimba {

namespace {

/** Decode indices shared by every policy: all decode-phase residents. */
void
decodeResidents(const std::vector<RequestState> &running,
                std::vector<size_t> &idx)
{
    for (size_t i = 0; i < running.size(); ++i)
        if (running[i].phase == RequestPhase::Decode)
            idx.push_back(i);
}

/** Shared base holding the chunk/budget knobs. */
class SchedulerBase : public Scheduler
{
  public:
    SchedulerBase(Tokens chunk, Tokens budget)
        : chunk(chunk), budget(budget)
    {
        PIMBA_ASSERT(chunk >= Tokens(1), "prefill chunk must be positive");
    }

  protected:
    Tokens chunk;
    Tokens budget;
};

/**
 * One-prefill-chunk iteration shape shared by FCFS and SJF: every
 * decode-phase request steps, plus one chunk of the oldest-admitted
 * prefill-phase request, costed as separate back-to-back steps (the
 * seed engine's loop).
 */
class OneChunkScheduler : public SchedulerBase
{
  public:
    using SchedulerBase::SchedulerBase;

    void
    planInto(const std::vector<RequestState> &running,
             IterationPlan &plan) const override
    {
        plan.clear();
        decodeResidents(running, plan.decodeIdx);
        for (size_t i = 0; i < running.size(); ++i) {
            if (running[i].phase == RequestPhase::Prefill) {
                Tokens left = Tokens(running[i].req.inputLen -
                                     running[i].prefilled);
                plan.prefill.push_back({i, std::min(chunk, left)});
                break;
            }
        }
    }
};

class FcfsScheduler : public OneChunkScheduler
{
  public:
    using OneChunkScheduler::OneChunkScheduler;

    SchedulerPolicy policy() const override
    {
        return SchedulerPolicy::FCFS;
    }

    size_t
    pickAdmission(const std::deque<Request> &) const override
    {
        return 0; // arrival order: the queue head
    }
};

class SjfScheduler : public OneChunkScheduler
{
  public:
    using OneChunkScheduler::OneChunkScheduler;

    SchedulerPolicy policy() const override
    {
        return SchedulerPolicy::SJF;
    }

    size_t
    pickAdmission(const std::deque<Request> &waiting) const override
    {
        // Shortest total work first; ties fall to the earlier arrival
        // (waiting is kept in arrival order, evictions at the front).
        size_t best = 0;
        uint64_t best_len = waiting[0].inputLen + waiting[0].outputLen;
        for (size_t i = 1; i < waiting.size(); ++i) {
            uint64_t len = waiting[i].inputLen + waiting[i].outputLen;
            if (len < best_len) {
                best = i;
                best_len = len;
            }
        }
        return best;
    }
};

class SarathiScheduler : public SchedulerBase
{
  public:
    using SchedulerBase::SchedulerBase;

    SchedulerPolicy policy() const override
    {
        return SchedulerPolicy::Sarathi;
    }

    size_t
    pickAdmission(const std::deque<Request> &) const override
    {
        return 0; // FCFS admission; fairness comes from chunk packing
    }

    void
    planInto(const std::vector<RequestState> &running,
             IterationPlan &plan) const override
    {
        plan.clear();
        plan.fused = true;
        decodeResidents(running, plan.decodeIdx);
        // Decode tokens are never throttled (one per resident decode);
        // the leftover budget is packed with prefill chunks from as
        // many prompt-phase requests as fit, oldest admitted first.
        Tokens spent = Tokens(plan.decodeIdx.size());
        for (size_t i = 0; i < running.size() && spent < budget; ++i) {
            if (running[i].phase != RequestPhase::Prefill)
                continue;
            Tokens left = Tokens(running[i].req.inputLen -
                                 running[i].prefilled);
            Tokens grant = std::min({chunk, left, budget - spent});
            plan.prefill.push_back({i, grant});
            spent += grant;
        }
    }
};

} // namespace

std::string
policyName(SchedulerPolicy policy)
{
    switch (policy) {
      case SchedulerPolicy::FCFS:
        return "fcfs";
      case SchedulerPolicy::SJF:
        return "sjf";
      case SchedulerPolicy::Sarathi:
        return "sarathi";
    }
    PIMBA_PANIC("unknown scheduler policy");
}

const std::vector<SchedulerPolicy> &
allPolicies()
{
    static const std::vector<SchedulerPolicy> kAll = {
        SchedulerPolicy::FCFS, SchedulerPolicy::SJF,
        SchedulerPolicy::Sarathi};
    return kAll;
}

std::unique_ptr<Scheduler>
makeScheduler(SchedulerPolicy policy, Tokens prefill_chunk,
              Tokens token_budget)
{
    switch (policy) {
      case SchedulerPolicy::FCFS:
        return std::make_unique<FcfsScheduler>(prefill_chunk,
                                               token_budget);
      case SchedulerPolicy::SJF:
        return std::make_unique<SjfScheduler>(prefill_chunk,
                                              token_budget);
      case SchedulerPolicy::Sarathi:
        return std::make_unique<SarathiScheduler>(prefill_chunk,
                                                  token_budget);
    }
    PIMBA_PANIC("unknown scheduler policy");
}

} // namespace pimba
