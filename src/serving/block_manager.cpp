#include "serving/block_manager.h"

#include <cmath>

#include "core/logging.h"
#include "core/units.h"

namespace pimba {

BlockMapper
BlockMapper::make(double fixed_bytes, double bytes_per_token,
                  uint64_t block_tokens)
{
    PIMBA_ASSERT(fixed_bytes > 0.0 || bytes_per_token > 0.0,
                 "request footprint is zero");
    PIMBA_ASSERT(block_tokens >= 1, "block size must be positive");
    BlockMapper m;
    if (bytes_per_token > 0.0) {
        m.blockTokens = block_tokens;
        m.blockBytes = bytes_per_token * static_cast<double>(block_tokens);
        m.fixedBlocks = static_cast<uint64_t>(
            std::ceil(fixed_bytes / m.blockBytes));
    } else {
        // Pure SSM: the whole per-request footprint is length-independent
        // state, so one block holds exactly one request's state.
        m.blockTokens = 0;
        m.blockBytes = fixed_bytes;
        m.fixedBlocks = 1;
    }
    return m;
}

uint64_t
BlockMapper::blocksFor(uint64_t cached_tokens) const
{
    uint64_t kv = blockTokens > 0 ? ceilDiv(cached_tokens, blockTokens)
                                  : 0;
    return fixedBlocks + kv;
}

BlockManager::BlockManager(uint64_t total_blocks) : total(total_blocks)
{
    PIMBA_ASSERT(total >= 1, "empty block pool");
}

double
BlockManager::utilization() const
{
    return static_cast<double>(used) / static_cast<double>(total);
}

bool
BlockManager::resident(uint64_t req_id) const
{
    return held.find(req_id) != held.end();
}

uint64_t
BlockManager::holding(uint64_t req_id) const
{
    auto it = held.find(req_id);
    return it == held.end() ? 0 : it->second;
}

bool
BlockManager::allocate(uint64_t req_id, uint64_t blocks)
{
    PIMBA_ASSERT(!resident(req_id), "request ", req_id,
                 " allocated twice");
    PIMBA_ASSERT(blocks >= 1, "zero-block allocation");
    if (blocks > freeBlocks())
        return false;
    held.emplace(req_id, blocks);
    used += blocks;
    return true;
}

bool
BlockManager::growTo(uint64_t req_id, uint64_t target_blocks)
{
    auto it = held.find(req_id);
    PIMBA_ASSERT(it != held.end(), "growing non-resident request ",
                 req_id);
    PIMBA_ASSERT(target_blocks >= it->second,
                 "allocation shrink for request ", req_id);
    uint64_t extra = target_blocks - it->second;
    if (extra > freeBlocks())
        return false;
    it->second = target_blocks;
    used += extra;
    return true;
}

void
BlockManager::release(uint64_t req_id)
{
    auto it = held.find(req_id);
    PIMBA_ASSERT(it != held.end(), "double free of request ", req_id);
    used -= it->second;
    held.erase(it);
}

} // namespace pimba
