#include "serving/block_manager.h"

#include <cmath>

#include "core/logging.h"
#include "core/units.h"

namespace pimba {

BlockMapper
BlockMapper::make(Bytes fixed_bytes, Bytes bytes_per_token,
                  Tokens block_tokens)
{
    PIMBA_ASSERT(fixed_bytes > Bytes(0.0) ||
                     bytes_per_token > Bytes(0.0),
                 "request footprint is zero");
    PIMBA_ASSERT(block_tokens >= Tokens(1), "block size must be positive");
    BlockMapper m;
    if (bytes_per_token > Bytes(0.0)) {
        m.blockTokens = block_tokens;
        m.blockBytes =
            bytes_per_token * static_cast<double>(block_tokens.value());
        m.fixedBlocks = Blocks(static_cast<uint64_t>(
            std::ceil(fixed_bytes.value() / m.blockBytes.value())));
    } else {
        // Pure SSM: the whole per-request footprint is length-independent
        // state, so one block holds exactly one request's state.
        m.blockTokens = Tokens(0);
        m.blockBytes = fixed_bytes;
        m.fixedBlocks = Blocks(1);
    }
    return m;
}

Blocks
BlockMapper::blocksFor(Tokens cached_tokens) const
{
    Blocks kv{blockTokens > Tokens(0)
                  ? ceilDiv(cached_tokens.value(), blockTokens.value())
                  : 0};
    return fixedBlocks + kv;
}

BlockManager::BlockManager(Blocks total_blocks) : total(total_blocks)
{
    PIMBA_ASSERT(total >= Blocks(1), "empty block pool");
}

double
BlockManager::utilization() const
{
    return used / total;
}

bool
BlockManager::resident(uint64_t req_id) const
{
    return held.find(req_id) != held.end();
}

Blocks
BlockManager::holding(uint64_t req_id) const
{
    auto it = held.find(req_id);
    return Blocks(it == held.end() ? 0 : it->second);
}

bool
BlockManager::allocate(uint64_t req_id, Blocks blocks)
{
    PIMBA_ASSERT(!resident(req_id), "request ", req_id,
                 " allocated twice");
    PIMBA_ASSERT(blocks >= Blocks(1), "zero-block allocation");
    if (blocks > freeBlocks())
        return false;
    held.emplace(req_id, blocks.value());
    used += blocks;
    return true;
}

bool
BlockManager::growTo(uint64_t req_id, Blocks target_blocks)
{
    auto it = held.find(req_id);
    PIMBA_ASSERT(it != held.end(), "growing non-resident request ",
                 req_id);
    PIMBA_ASSERT(target_blocks >= Blocks(it->second),
                 "allocation shrink for request ", req_id);
    Blocks extra = target_blocks - Blocks(it->second);
    if (extra > freeBlocks())
        return false;
    it->second = target_blocks.value();
    used += extra;
    return true;
}

void
BlockManager::release(uint64_t req_id)
{
    auto it = held.find(req_id);
    PIMBA_ASSERT(it != held.end(), "double free of request ", req_id);
    used -= Blocks(it->second);
    held.erase(it);
}

} // namespace pimba
