/**
 * @file
 * Paged KV/state block manager for the serving engine.
 *
 * Instead of reserving each request's peak footprint at admission, the
 * engine allocates fixed-size memory blocks on demand as tokens are
 * cached (vLLM-style paged allocation). A BlockMapper translates a
 * request's cached-token count into a block demand for one model +
 * system — the per-request fixed bytes (recurrent state + transient
 * activations) plus per-token KV bytes, quantized to blocks — and the
 * BlockManager tracks which request holds how many blocks of the pool.
 *
 * The manager is pure bookkeeping (block counts, not addresses): the
 * simulator has no real memory, so fragmentation is not modeled and a
 * request either gets its blocks or triggers preemption in the engine.
 */

#ifndef PIMBA_SERVING_BLOCK_MANAGER_H
#define PIMBA_SERVING_BLOCK_MANAGER_H

#include <cstdint>
#include <unordered_map> // pimba-lint: allow(node-container) cold bookkeeping path

#include "core/units.h"

namespace pimba {

/** Token-count to block-demand mapping for one model + system. */
struct BlockMapper
{
    Bytes blockBytes;   ///< bytes of pool one block represents
    Tokens blockTokens; ///< KV tokens per block (0: no per-token cost)
    Blocks fixedBlocks; ///< state + activation blocks per request

    /**
     * Build a mapper from a request's fixed footprint (recurrent state +
     * transient activations, bytes) and its per-cached-token KV bytes.
     * Pure-SSM models have @p bytes_per_token == 0; their requests cost a
     * constant @c fixedBlocks regardless of sequence length.
     */
    static BlockMapper make(Bytes fixed_bytes, Bytes bytes_per_token,
                            Tokens block_tokens);

    /** Blocks a request needs with @p cached_tokens tokens resident. */
    Blocks blocksFor(Tokens cached_tokens) const;
};

/**
 * Counting allocator over a fixed pool of equally-sized blocks. Tracks
 * the per-request holdings so the engine can grow an allocation as a
 * request caches tokens and release it on completion or eviction.
 * Double allocation, shrink, and double release are invariant
 * violations (panic), not recoverable errors.
 */
class BlockManager
{
  public:
    explicit BlockManager(Blocks total_blocks);

    Blocks totalBlocks() const { return total; }
    Blocks usedBlocks() const { return used; }
    Blocks freeBlocks() const { return total - used; }
    /** Fraction of the pool currently allocated, in [0, 1]. */
    double utilization() const;

    bool resident(uint64_t req_id) const;
    /** Blocks currently held by @p req_id (0 if not resident). */
    Blocks holding(uint64_t req_id) const;

    /**
     * Admit @p req_id with @p blocks initial blocks. Returns false
     * (allocating nothing) when the pool cannot cover the demand.
     */
    bool allocate(uint64_t req_id, Blocks blocks);

    /**
     * Grow @p req_id's allocation to @p target_blocks (monotone; the
     * engine never shrinks a live request). Returns false, allocating
     * nothing, when the pool cannot cover the growth.
     */
    bool growTo(uint64_t req_id, Blocks target_blocks);

    /** Release every block @p req_id holds (completion or eviction). */
    void release(uint64_t req_id);

  private:
    Blocks total;
    Blocks used{0};
    // pimba-lint: allow(node-container) cold bookkeeping, not per-step hot path
    std::unordered_map<uint64_t, uint64_t> held;
};

} // namespace pimba

#endif // PIMBA_SERVING_BLOCK_MANAGER_H
