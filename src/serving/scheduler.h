/**
 * @file
 * Pluggable iteration-level scheduling policies for the serving engine.
 *
 * A Scheduler makes the two decisions that shape every engine
 * iteration: which waiting request to admit next, and how to compose
 * the iteration's batch out of the resident requests (which decode
 * steps run, which prefill chunks run, and whether the two are fused
 * into one launch). Three policies ship:
 *
 *  - FCFS: arrival-order admission, at most one prefill chunk per
 *    iteration run as a separate step — the seed engine's behavior.
 *  - SJF: shortest-job-first admission (by total input+output tokens,
 *    an oracle the simulator legitimately has); iteration composition
 *    as FCFS.
 *  - Sarathi: arrival-order admission, but each iteration packs
 *    multiple prefill chunks *together with* the decode batch under a
 *    per-iteration token budget and fuses them into a single step, so
 *    a long prompt neither stalls decodes nor head-of-line blocks the
 *    prompts behind it (Sarathi-style chunked-prefill piggybacking).
 */

#ifndef PIMBA_SERVING_SCHEDULER_H
#define PIMBA_SERVING_SCHEDULER_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/units.h"
#include "serving/request.h"

namespace pimba {

/** Selectable scheduling policy. */
enum class SchedulerPolicy
{
    FCFS,    ///< arrival order, one prefill chunk per iteration
    SJF,     ///< shortest total job first, one prefill chunk per iteration
    Sarathi, ///< fused decode + budgeted multi-request prefill chunks
};

/** Human-readable policy name ("fcfs", "sjf", "sarathi"). */
std::string policyName(SchedulerPolicy policy);

/** All policies, for sweeps and tests. */
const std::vector<SchedulerPolicy> &allPolicies();

/** One prefill chunk scheduled for the coming iteration. */
struct PrefillSlice
{
    size_t idx = 0; ///< index into the engine's running vector
    Tokens tokens;  ///< prompt tokens to process this iteration
};

/** Composition of one engine iteration. */
struct IterationPlan
{
    std::vector<size_t> decodeIdx;    ///< decode-phase running indices
    std::vector<PrefillSlice> prefill; ///< prefill chunks this iteration
    /** Cost decode + prefill as one fused step instead of separate
     *  back-to-back steps (amortizes the per-step weight pass). */
    bool fused = false;

    bool empty() const { return decodeIdx.empty() && prefill.empty(); }

    /** Reset to an empty plan, keeping the vectors' capacity. */
    void clear()
    {
        decodeIdx.clear();
        prefill.clear();
        fused = false;
    }
};

/** Iteration-level scheduling policy. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    virtual SchedulerPolicy policy() const = 0;

    /**
     * Index into @p waiting of the request to try admitting next.
     * Admission is head-of-line: if the picked request does not fit,
     * the engine stops admitting rather than skipping it.
     */
    virtual size_t pickAdmission(
        const std::deque<Request> &waiting) const = 0;

    /**
     * Compose the coming iteration over the resident requests into
     * @p out (cleared first). The out-param form is what the engine
     * calls: plan vectors are reused across iterations, so the steady
     * state of the inner loop allocates nothing.
     */
    virtual void planInto(const std::vector<RequestState> &running,
                          IterationPlan &out) const = 0;

    /** planInto() into a fresh plan (convenience for tests/tools). */
    IterationPlan
    planIteration(const std::vector<RequestState> &running) const
    {
        IterationPlan plan;
        planInto(running, plan);
        return plan;
    }
};

/**
 * Build a scheduler. @p prefill_chunk caps one request's prompt tokens
 * per iteration. @p token_budget sizes the Sarathi policy's iteration:
 * decode tokens (one per decode-phase resident) are never throttled and
 * count against the budget first; only the *remainder* is packed with
 * prefill chunks. An iteration whose decode batch alone reaches the
 * budget therefore runs over budget and schedules no prefill. The
 * one-chunk policies ignore the budget.
 */
std::unique_ptr<Scheduler> makeScheduler(SchedulerPolicy policy,
                                         Tokens prefill_chunk,
                                         Tokens token_budget);

} // namespace pimba

#endif // PIMBA_SERVING_SCHEDULER_H
