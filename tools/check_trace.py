#!/usr/bin/env python3
"""Validate a pimba Chrome trace-event JSON (docs/observability.md).

CI's trace-smoke job runs this against the artifact `pimba run
--trace` writes, so a malformed trace fails the build instead of
failing silently when someone finally loads it into Perfetto.

Checks, in order:

 1. The document parses and has a non-empty "traceEvents" array.
 2. Every event carries integer "pid" and "tid" members and a known
    phase ("ph" in M, X, B, E, i, C).
 3. Non-metadata events have a numeric, non-negative "ts"; "X" events
    also a non-negative "dur". Timestamps are globally monotonic
    (non-decreasing) in file order — the renderer sorts by ts, so any
    regression here is an emitter bug.
 4. "B"/"E" events pair up as a well-formed stack per (pid, tid):
    no "E" without an open "B", nothing left open at EOF.
 5. With --require-lifecycle: at least one request lane opened and
    closed (B/E pair whose name starts with "req "), plus at least one
    "admitted" and "first token" instant and one slice on a thread
    named "iterations".
 6. With --require-phases: at least one "X" slice on a thread named
    gpu, pim, and sync — across *all* processes, because a GPU-only
    system legitimately emits nothing on its pim/sync lanes while a
    hybrid in the same study does.

Exit 0 and a one-line summary when valid; exit 1 with every violation
(capped) on stderr otherwise.
"""

import argparse
import json
import sys

KNOWN_PHASES = {"M", "X", "B", "E", "i", "C"}
MAX_REPORTED = 20


def fail(errors):
    for e in errors[:MAX_REPORTED]:
        print(f"check_trace: {e}", file=sys.stderr)
    if len(errors) > MAX_REPORTED:
        print(f"check_trace: ... and {len(errors) - MAX_REPORTED} more",
              file=sys.stderr)
    return 1


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="trace JSON written by pimba --trace")
    ap.add_argument("--require-lifecycle", action="store_true",
                    help="insist on request lanes + admission/first-token"
                         "/iteration events")
    ap.add_argument("--require-phases", action="store_true",
                    help="insist on gpu/pim/sync phase slices")
    opts = ap.parse_args()

    try:
        with open(opts.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail([f"{opts.trace}: {e}"])

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail([f"{opts.trace}: missing or empty traceEvents"])

    errors = []
    # (pid, tid) -> stack of open "B" names.
    stacks = {}
    # thread_name label -> set of (pid, tid) carrying it. The same
    # label recurs once per process (every engine names its own
    # gpu/pim/sync lanes).
    thread_names = {}
    last_ts = None
    lanes_opened = 0
    lanes_closed = 0
    instant_names = set()
    # (pid, tid) -> count of X slices, to resolve per-named-thread.
    x_slices = {}

    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"{where}: unknown ph {ph!r}")
            continue
        pid, tid = ev.get("pid"), ev.get("tid")
        if not isinstance(pid, int) or not isinstance(tid, int):
            errors.append(f"{where}: pid/tid missing or non-integer")
            continue
        name = ev.get("name", "")

        if ph == "M":
            if name == "thread_name":
                label = ev.get("args", {}).get("name", "")
                thread_names.setdefault(label, set()).add((pid, tid))
            continue

        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: ts missing or negative: {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            errors.append(
                f"{where}: ts {ts} regresses below {last_ts}")
        last_ts = ts

        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(
                    f"{where}: X event needs non-negative dur, "
                    f"got {dur!r}")
            key = (pid, tid)
            x_slices[key] = x_slices.get(key, 0) + 1
        elif ph == "B":
            stacks.setdefault((pid, tid), []).append(name)
            if name.startswith("req "):
                lanes_opened += 1
        elif ph == "E":
            stack = stacks.get((pid, tid), [])
            if not stack:
                errors.append(
                    f"{where}: E without open B on pid={pid} tid={tid}")
            else:
                opened = stack.pop()
                if opened.startswith("req "):
                    lanes_closed += 1
        elif ph == "i":
            instant_names.add(name)
        elif ph == "C":
            if not isinstance(ev.get("args", {}).get("value"),
                              (int, float)):
                errors.append(f"{where}: counter without numeric value")

    for (pid, tid), stack in sorted(stacks.items()):
        for name in stack:
            errors.append(
                f"unclosed B {name!r} on pid={pid} tid={tid} at EOF")

    def named_slices(label):
        return sum(x_slices.get(k, 0)
                   for k in thread_names.get(label, ()))

    if opts.require_lifecycle:
        if lanes_opened == 0 or lanes_closed == 0:
            errors.append(
                "lifecycle: no completed request lane (B/E pair named "
                f"'req N'); opened={lanes_opened} closed={lanes_closed}")
        for needed in ("admitted", "first token"):
            if not any(n.startswith(needed) for n in instant_names):
                errors.append(
                    f"lifecycle: no {needed!r} instant event")
        if named_slices("iterations") == 0:
            errors.append(
                "lifecycle: no slices on any 'iterations' thread")

    if opts.require_phases:
        for phase in ("gpu", "pim", "sync"):
            if phase not in thread_names:
                errors.append(
                    f"phases: no thread named {phase!r} (metadata)")
            elif named_slices(phase) == 0:
                errors.append(
                    f"phases: no X slices on any {phase!r} thread")

    if errors:
        return fail(errors)

    print(f"check_trace: ok — {len(events)} events, "
          f"{len(stacks)} B/E tracks, {lanes_closed} request lanes, "
          f"{named_slices('iterations')} iteration slices")
    return 0


if __name__ == "__main__":
    sys.exit(main())
