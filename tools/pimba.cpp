/**
 * @file
 * `pimba` — the scenario CLI. Runs declarative JSON experiment
 * descriptions (see docs/scenarios.md) through the scenario registry:
 *
 *     pimba run scenarios/fig12_throughput.json
 *     pimba run scenarios/serving_rate_sweep.json --smoke --csv
 *     pimba run scenarios/serving_rate_sweep.json --smoke \
 *         --trace trace.json --timeline load.csv --stream-metrics
 *     pimba sweep scenarios/policy_shootout.json --grid rate=1..32:x2
 *     pimba fleet scenarios/fleet_planner.json
 *     pimba validate scenarios/cluster_routers.json
 *
 * `run` executes any scenario kind; `sweep` fans one grid axis across
 * a thread pool (same scenario + seed => byte-identical report at any
 * thread count); `fleet` insists on the cluster kinds
 * (fleet/planner/control);
 * `validate` parses and type-checks without running. Schema errors
 * print as `file: line L, column C: message`.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "config/sweep.h"
#include "core/args.h"
#include "perf/selfbench.h"
#include "serving/trace_io.h"

using namespace pimba;

namespace {

void
printTopLevelHelp()
{
    fputs(
        "usage: pimba <command> <scenario.json> [options]\n"
        "\n"
        "Declarative scenario runner for the Pimba serving simulator.\n"
        "\n"
        "commands:\n"
        "  run       execute a scenario and print its report\n"
        "  sweep     run a scenario once per grid point, in parallel\n"
        "  fleet     execute a cluster scenario (fleet/planner/control "
        "kinds)\n"
        "  trace     save a scenario's arrival trace as a "
        "pimba-trace-v1 file\n"
        "  replay    run a fleet scenario with bounded-memory "
        "streaming metrics\n"
        "  validate  parse and type-check a scenario without running\n"
        "  bench     time the simulator itself (see docs/benchmarking.md)\n"
        "\n"
        "common options:\n"
        "  --smoke       apply the scenario's \"smoke\" overlay "
        "(CI-sized run)\n"
        "  --csv         emit CSV instead of aligned tables\n"
        "  --grid <p=v>  sweep axis, e.g. rate=1..32:x2 (sweep only)\n"
        "  --threads <n> sweep worker threads, 0 = all cores "
        "(sweep only)\n"
        "  --trace <f>   write a Perfetto/Chrome trace JSON "
        "(run/fleet only)\n"
        "  --timeline <f> write the sampled load timeline "
        "(run/fleet only)\n"
        "  --stream-metrics  streaming quantile-sketch metrics "
        "(run/fleet only)\n"
        "  --help        this message, or per-command usage\n",
        stdout);
}

int
runCommand(const std::string &command, int argc, char **argv)
{
    std::string path, grid;
    bool smoke = false, csv = false;
    int threads = 1;
    std::string tracePath, timelinePath;
    bool streamMetrics = false;

    ArgParser args("pimba " + command,
                   command == "sweep"
                       ? "Run a scenario once per grid point across a "
                         "worker pool."
                       : command == "fleet"
                             ? "Execute a cluster (fleet or planner) "
                               "scenario."
                             : command == "validate"
                                   ? "Parse and type-check a scenario "
                                     "without running it."
                                   : "Execute a scenario and print its "
                                     "report.");
    args.positional("scenario.json", "scenario description to load",
                    &path);
    args.flag("--smoke", "apply the scenario's \"smoke\" overlay",
              &smoke);
    if (command != "validate")
        args.flag("--csv", "emit CSV instead of aligned tables", &csv);
    if (command == "sweep") {
        args.option("--grid", "param=spec",
                    "sweep axis (rate=1..32, rate=1..32:x2, "
                    "rate=1,2,4)",
                    &grid);
        args.option("--threads", "n",
                    "worker threads; 0 selects all cores", &threads);
    }
    if (command == "run" || command == "fleet") {
        args.option("--trace", "file",
                    "write a Chrome trace-event JSON (Perfetto) here",
                    &tracePath);
        args.option("--timeline", "file",
                    "write the sampled load timeline here (.json for "
                    "JSON, else CSV)",
                    &timelinePath);
        args.flag("--stream-metrics",
                  "derive report metrics through streaming quantile "
                  "sketches",
                  &streamMetrics);
    }
    if (!args.parse(argc, argv))
        return args.exitCode();

    try {
        Scenario sc = loadScenarioFile(path, smoke);
        // CLI observability flags override (or enable) the scenario's
        // "observability" block. Only the serving and fleet kinds run
        // engines to observe.
        if (!tracePath.empty())
            sc.obs.tracePath = tracePath;
        if (!timelinePath.empty()) {
            sc.obs.timelinePath = timelinePath;
            if (timelinePath.size() >= 5 &&
                timelinePath.compare(timelinePath.size() - 5, 5,
                                     ".json") == 0)
                sc.obs.timelineFormat = TimelineFormat::Json;
        }
        if (streamMetrics)
            sc.obs.streamMetrics = true;
        if (sc.obs.enabled() && sc.kind != ScenarioKind::Serving &&
            sc.kind != ScenarioKind::Fleet &&
            sc.kind != ScenarioKind::ControlPlane) {
            fprintf(stderr,
                    "pimba %s: observability applies to serving, fleet "
                    "and control scenarios; %s is a %s scenario\n",
                    command.c_str(), path.c_str(),
                    scenarioKindName(sc.kind).c_str());
            return 1;
        }
        if (command == "validate") {
            // Check both the plain document and its smoke overlay — a
            // typo inside "smoke" must not survive validation only to
            // abort CI's --smoke run.
            loadScenarioFile(path, !smoke);
            printf("%s: ok (%s scenario \"%s\")\n", path.c_str(),
                   scenarioKindName(sc.kind).c_str(), sc.name.c_str());
            return 0;
        }
        if (command == "fleet" && sc.kind != ScenarioKind::Fleet &&
            sc.kind != ScenarioKind::Planner &&
            sc.kind != ScenarioKind::ControlPlane) {
            fprintf(stderr,
                    "pimba fleet: %s is a %s scenario; expected kind "
                    "fleet, planner or control (use `pimba run`)\n",
                    path.c_str(), scenarioKindName(sc.kind).c_str());
            return 1;
        }
        ScenarioReport rep;
        if (command == "sweep") {
            if (grid.empty()) {
                fprintf(stderr, "pimba sweep: --grid param=spec is "
                                "required (try --help)\n");
                return 1;
            }
            rep = runSweep(sc, parseGridSpec(grid), threads);
        } else {
            rep = runScenario(sc);
        }
        fputs(csv ? rep.renderCsv().c_str() : rep.renderText().c_str(),
              stdout);
        return 0;
    } catch (const ConfigError &e) {
        fprintf(stderr, "pimba %s: %s\n", command.c_str(), e.what());
        return 1;
    }
}

/// The TraceConfig a scenario carries, or null for the trace-free
/// throughput kind.
TraceConfig *
scenarioTrace(Scenario &sc)
{
    switch (sc.kind) {
      case ScenarioKind::Serving:
        return &std::get<ServingScenario>(sc.spec).trace;
      case ScenarioKind::Fleet:
      case ScenarioKind::ControlPlane:
        return &std::get<FleetScenario>(sc.spec).trace;
      case ScenarioKind::Saturation:
        return &std::get<SaturationScenario>(sc.spec).trace;
      case ScenarioKind::Planner:
        return &std::get<PlannerScenario>(sc.spec).trace;
      case ScenarioKind::Throughput:
        return nullptr;
    }
    return nullptr;
}

int
traceCommand(int argc, char **argv)
{
    std::string path, out;
    bool smoke = false;
    int requests = 0;

    ArgParser args("pimba trace",
                   "Generate a scenario's arrival trace and save it as "
                   "a pimba-trace-v1 file (docs/trace-format.md).");
    args.positional("scenario.json", "scenario whose trace to save",
                    &path);
    args.option("--out", "file",
                "write the pimba-trace-v1 file here (required)", &out);
    args.flag("--smoke", "apply the scenario's \"smoke\" overlay",
              &smoke);
    args.option("--requests", "n",
                "override the trace's request count", &requests);
    if (!args.parse(argc, argv))
        return args.exitCode();
    if (out.empty()) {
        fprintf(stderr,
                "pimba trace: --out <file> is required (try --help)\n");
        return 1;
    }

    try {
        Scenario sc = loadScenarioFile(path, smoke);
        TraceConfig *tc = scenarioTrace(sc);
        if (!tc) {
            fprintf(stderr,
                    "pimba trace: %s is a %s scenario, which has no "
                    "request trace\n",
                    path.c_str(), scenarioKindName(sc.kind).c_str());
            return 1;
        }
        if (!tc->file.empty()) {
            fprintf(stderr,
                    "pimba trace: %s already replays \"%s\" — saving "
                    "it again would only copy the file\n",
                    path.c_str(), tc->file.c_str());
            return 1;
        }
        if (requests > 0)
            tc->numRequests = requests;
        if (std::string err = validateTraceConfig(*tc); !err.empty()) {
            fprintf(stderr, "pimba trace: %s\n", err.c_str());
            return 1;
        }
        std::vector<Request> trace = generateTrace(*tc);
        saveTrace(out, trace);
        printf("wrote %s (%zu requests, last arrival %.3fs)\n",
               out.c_str(), trace.size(),
               trace.empty() ? 0.0 : trace.back().arrival.value());
        return 0;
    } catch (const ConfigError &e) {
        fprintf(stderr, "pimba trace: %s\n", e.what());
        return 1;
    }
}

int
replayCommand(int argc, char **argv)
{
    std::string path, traceFile;
    bool smoke = false, csv = false, exact = false;
    int requests = 0;

    ArgParser args("pimba replay",
                   "Run a fleet scenario with bounded-memory streaming "
                   "metrics: arrivals stream from the generator or a "
                   "pimba-trace-v1 file, completions fold into quantile "
                   "sketches, and peak memory stays independent of "
                   "trace length.");
    args.positional("scenario.json", "fleet scenario to replay", &path);
    args.option("--trace-file", "file",
                "replay this pimba-trace-v1 file instead of the "
                "scenario's own trace",
                &traceFile);
    args.option("--requests", "n",
                "replay only the first n requests", &requests);
    args.flag("--exact-metrics",
              "retain per-request records and report exact percentiles "
              "(O(requests) memory)",
              &exact);
    args.flag("--smoke", "apply the scenario's \"smoke\" overlay",
              &smoke);
    args.flag("--csv", "emit CSV instead of aligned tables", &csv);
    if (!args.parse(argc, argv))
        return args.exitCode();

    try {
        Scenario sc = loadScenarioFile(path, smoke);
        if (sc.kind != ScenarioKind::Fleet &&
            sc.kind != ScenarioKind::ControlPlane) {
            fprintf(stderr,
                    "pimba replay: %s is a %s scenario; replay needs "
                    "kind fleet or control\n",
                    path.c_str(), scenarioKindName(sc.kind).c_str());
            return 1;
        }
        auto &fs = std::get<FleetScenario>(sc.spec);
        if (!traceFile.empty()) {
            fs.trace.file = traceFile;
            // The scenario's generation-side request count must not
            // silently truncate the substituted file.
            fs.trace.numRequests = 0;
        }
        if (requests > 0)
            fs.trace.numRequests = requests;
        sc.obs.streamMetrics = !exact;
        ScenarioReport rep = runScenario(sc);
        fputs(csv ? rep.renderCsv().c_str() : rep.renderText().c_str(),
              stdout);
        return 0;
    } catch (const ConfigError &e) {
        fprintf(stderr, "pimba replay: %s\n", e.what());
        return 1;
    }
}

int
benchCommand(int argc, char **argv)
{
    bool smoke = false;
    int reps = 3;
    std::string out;

    ArgParser args("pimba bench",
                   "Time the simulator's own layers and emit the "
                   "BENCH_*.json perf record (docs/benchmarking.md).");
    args.flag("--smoke", "CI-sized shapes instead of the full ones",
              &smoke);
    args.option("--reps", "n", "repetitions per layer (default 3)",
                &reps);
    args.option("--out", "file",
                "also write the schema'd JSON record to this path",
                &out);
    if (!args.parse(argc, argv))
        return args.exitCode();
    if (reps < 1) {
        fprintf(stderr, "pimba bench: --reps must be >= 1\n");
        return 1;
    }

    SelfBenchOptions opts;
    opts.smoke = smoke;
    opts.reps = reps;
    SelfBenchReport report = runSelfBench(opts);
    fputs(report.renderText().c_str(), stdout);

    std::string json = report.renderJson();
    // The emitter and the schema must never drift: re-parse what we
    // are about to publish and refuse to write an invalid record.
    if (std::string err = validateSelfBenchJson(json); !err.empty()) {
        fprintf(stderr,
                "pimba bench: emitted JSON fails self-validation: "
                "%s\n",
                err.c_str());
        return 1;
    }
    if (!out.empty()) {
        FILE *f = fopen(out.c_str(), "w");
        if (!f) {
            fprintf(stderr, "pimba bench: cannot write %s\n",
                    out.c_str());
            return 1;
        }
        fputs(json.c_str(), f);
        fclose(f);
        printf("wrote %s\n", out.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
        std::strcmp(argv[1], "-h") == 0) {
        printTopLevelHelp();
        return argc < 2 ? 1 : 0;
    }
    std::string command = argv[1];
    if (command == "bench")
        return benchCommand(argc - 1, argv + 1);
    if (command == "trace")
        return traceCommand(argc - 1, argv + 1);
    if (command == "replay")
        return replayCommand(argc - 1, argv + 1);
    if (command != "run" && command != "sweep" && command != "fleet" &&
        command != "validate") {
        fprintf(stderr, "pimba: unknown command '%s' (try --help)\n",
                command.c_str());
        return 1;
    }
    return runCommand(command, argc - 1, argv + 1);
}
