#!/usr/bin/env python3
"""Validate the bounded-memory replay path (docs/trace-format.md).

CI's replay-smoke job runs this against a Release `pimba` binary and
the fleet_replay preset. Two claims are checked, both from ISSUE 9's
acceptance list:

 1. Peak RSS is independent of trace length: a streamed replay of the
    full preset (2M requests) may not use more than --rss-ratio times
    the RSS of a --small-requests prefix replay, plus an absolute
    allocator-noise slack. A leak of even one small struct per request
    adds tens of MB at 2M requests and fails loudly.
 2. Streaming sketch percentiles agree with the exact per-request
    percentile pass to within 1% (plus the table's print-rounding
    quantum) on a --small-requests prefix, and the exactly-maintained
    columns (goodput) match byte-for-byte.

Exit 0 with a summary when both hold; exit 1 listing violations.
"""

import argparse
import os
import sys

# Table columns of the fleet report CSV, by index (tools keep this in
# sync with runFleet's header in src/config/runner.cpp).
COL_GOODPUT = 2
PERCENTILE_COLS = {
    "TTFT p50": 3,
    "TTFT p95": 4,
    "TPOT p50": 5,
    "TPOT p95": 6,
}


def run_measured(args):
    """Run a child to completion; return (peak_rss_bytes, stdout)."""
    r, w = os.pipe()
    pid = os.fork()
    if pid == 0:
        os.close(r)
        os.dup2(w, 1)
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, 2)
        os.execv(args[0], args)
    os.close(w)
    out = b""
    while chunk := os.read(r, 65536):
        out += chunk
    os.close(r)
    _, status, rusage = os.wait4(pid, 0)
    if status != 0:
        print(f"check_replay: {' '.join(args)} exited {status}",
              file=sys.stderr)
        sys.exit(1)
    # ru_maxrss is KiB on Linux.
    return rusage.ru_maxrss * 1024, out.decode()


def data_row(csv_text):
    """The first non-comment, non-header CSV row, split into cells."""
    for line in csv_text.splitlines():
        if not line or line.startswith("#") or line.startswith("fleet,"):
            continue
        return line.split(",")
    print("check_replay: no data row in CSV output", file=sys.stderr)
    sys.exit(1)


def quantum(cell):
    """Half a unit in the last printed decimal place of @p cell."""
    frac = cell.split(".")[1] if "." in cell else ""
    return 0.5 * 10 ** -len(frac)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("pimba", help="path to the pimba CLI binary")
    ap.add_argument("scenario", help="fleet scenario with streaming "
                                     "metrics (scenarios/fleet_replay.json)")
    ap.add_argument("--small-requests", type=int, default=200000,
                    help="prefix length for the RSS baseline and the "
                         "percentile comparison (default 200000)")
    ap.add_argument("--rss-ratio", type=float, default=1.35,
                    help="max full-replay RSS over prefix-replay RSS")
    ap.add_argument("--rss-slack-mb", type=float, default=16.0,
                    help="absolute allocator-noise slack added to the "
                         "ratio bound (MB)")
    opts = ap.parse_args()
    errors = []

    small = str(opts.small_requests)
    rss_small, _ = run_measured(
        [opts.pimba, "replay", opts.scenario, "--requests", small])
    rss_full, _ = run_measured([opts.pimba, "replay", opts.scenario])
    bound = rss_small * opts.rss_ratio + opts.rss_slack_mb * 1e6
    if rss_full > bound:
        errors.append(
            f"peak RSS grows with trace length: full replay "
            f"{rss_full / 1e6:.1f}MB > {bound / 1e6:.1f}MB "
            f"({opts.rss_ratio}x the {rss_small / 1e6:.1f}MB of the "
            f"{small}-request prefix + {opts.rss_slack_mb}MB slack)")

    _, streamed_csv = run_measured(
        [opts.pimba, "replay", opts.scenario, "--requests", small,
         "--csv"])
    _, exact_csv = run_measured(
        [opts.pimba, "replay", opts.scenario, "--requests", small,
         "--exact-metrics", "--csv"])
    streamed = data_row(streamed_csv)
    exact = data_row(exact_csv)

    if streamed[COL_GOODPUT] != exact[COL_GOODPUT]:
        errors.append(
            f"goodput is exact under streaming but differs: "
            f"streamed {streamed[COL_GOODPUT]} vs exact "
            f"{exact[COL_GOODPUT]}")
    for name, col in PERCENTILE_COLS.items():
        s, e = float(streamed[col]), float(exact[col])
        tol = 0.01 * max(abs(s), abs(e)) + quantum(streamed[col]) \
            + quantum(exact[col])
        if abs(s - e) > tol:
            errors.append(
                f"{name}: streamed {s} vs exact {e} disagree beyond "
                f"1% + print rounding ({tol:.6f})")

    if errors:
        for e in errors:
            print(f"check_replay: {e}", file=sys.stderr)
        return 1
    print(f"check_replay: ok (full replay {rss_full / 1e6:.1f}MB peak "
          f"RSS vs {rss_small / 1e6:.1f}MB at {small} requests; "
          f"percentiles within 1%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
