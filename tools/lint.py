#!/usr/bin/env python3
"""Project lint for the pimba tree (see docs/static-analysis.md).

Three rules, each born from a regression this repo actually shipped or
measured:

  node-container   std::map / std::set / std::unordered_map /
                   std::unordered_set in the hot-path directories
                   (src/sim, src/serving, src/pim, src/cluster). The
                   self-benchmark showed the per-step unordered_map memo
                   dominating engine iteration; FlatTable (core/) is the
                   sanctioned replacement. Cold bookkeeping paths carry
                   an explicit suppression.

  bare-unit        `double <name>;` members whose name says the unit
                   (seconds / joules / bytes / watts) in a public header
                   outside core/units.h. Cost-carrying quantities must
                   use the strong types from core/units.h so dimensional
                   errors stay compile errors.

  docs-coverage    every bench/*.cpp binary must appear in
                   docs/figures.md, and every scenarios/*.json preset
                   must appear somewhere under docs/ or README.md. The
                   figure map is the contract between the benches and
                   the paper.

Suppression: append
    // pimba-lint: allow(<rule>) <justification>
on the offending line or the line directly above it. An allow without a
justification is itself an error — the point is a reviewed reason, not
a mute button.

Exit status: 0 clean, 1 findings, 2 usage/self-test failure.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

HOT_DIRS = ("src/sim", "src/serving", "src/pim", "src/cluster")

NODE_CONTAINER_RE = re.compile(
    r"std::(?:unordered_)?(?:map|set)\s*<|#include\s*<(?:unordered_)?(?:map|set)>"
)

# A bare-double member whose identifier names a unit. Declarations only:
# lines with a '(' are signatures, which rule (b) does not police.
BARE_UNIT_RE = re.compile(
    r"^\s*double\s+\w*(?:seconds|joules|bytes|watts)\w*\s*(?:=[^;()]*)?;",
    re.IGNORECASE,
)

ALLOW_RE = re.compile(r"pimba-lint:\s*allow\((?P<rule>[\w-]+)\)\s*(?P<why>.*)")


class Finding:
    def __init__(self, rule: str, path: str, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def allowed(rule: str, lines: list[str], idx: int,
            findings: list[Finding], path: str) -> bool:
    """True when line idx (0-based) carries or inherits an allow(rule)."""
    for probe in (idx, idx - 1):
        if probe < 0:
            continue
        m = ALLOW_RE.search(lines[probe])
        if m and m.group("rule") == rule:
            if not m.group("why").strip():
                findings.append(Finding(
                    rule, path, probe + 1,
                    "allow() without a justification — say why"))
            return True
    return False


def iter_source(root: str, subdirs, exts):
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(exts):
                    yield os.path.join(dirpath, name)


def check_node_containers(root: str) -> list[Finding]:
    findings: list[Finding] = []
    for path in iter_source(root, HOT_DIRS, (".h", ".cpp")):
        rel = os.path.relpath(path, root)
        lines = open(path, encoding="utf-8").read().splitlines()
        for i, line in enumerate(lines):
            if not NODE_CONTAINER_RE.search(line):
                continue
            if allowed("node-container", lines, i, findings, rel):
                continue
            findings.append(Finding(
                "node-container", rel, i + 1,
                "node-based container on a hot path — use FlatTable "
                "(core/flat_table.h) or add a justified "
                "pimba-lint: allow(node-container)"))
    return findings


def check_bare_units(root: str) -> list[Finding]:
    findings: list[Finding] = []
    for path in iter_source(root, ("src",), (".h",)):
        rel = os.path.relpath(path, root)
        if rel.replace(os.sep, "/") == "src/core/units.h":
            continue
        lines = open(path, encoding="utf-8").read().splitlines()
        for i, line in enumerate(lines):
            if "(" in line or not BARE_UNIT_RE.match(line):
                continue
            if allowed("bare-unit", lines, i, findings, rel):
                continue
            findings.append(Finding(
                "bare-unit", rel, i + 1,
                "bare double carries a unit in its name — use the "
                "strong type from core/units.h (Seconds/Joules/Bytes/"
                "Watts) or add a justified pimba-lint: allow(bare-unit)"))
    return findings


def check_docs_coverage(root: str) -> list[Finding]:
    findings: list[Finding] = []
    figures = os.path.join(root, "docs", "figures.md")
    figures_text = (
        open(figures, encoding="utf-8").read()
        if os.path.exists(figures) else "")
    bench_dir = os.path.join(root, "bench")
    if os.path.isdir(bench_dir):
        for name in sorted(os.listdir(bench_dir)):
            if not name.endswith(".cpp"):
                continue
            binary = name[:-len(".cpp")]
            if binary not in figures_text:
                findings.append(Finding(
                    "docs-coverage", "docs/figures.md", 1,
                    f"bench binary `{binary}` is not mapped to a paper "
                    "figure"))

    docs_text = figures_text
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        for dirpath, _dirnames, filenames in os.walk(docs_dir):
            for name in sorted(filenames):
                if name.endswith(".md"):
                    docs_text += open(os.path.join(dirpath, name),
                                      encoding="utf-8").read()
    readme = os.path.join(root, "README.md")
    if os.path.exists(readme):
        docs_text += open(readme, encoding="utf-8").read()

    scenario_dir = os.path.join(root, "scenarios")
    if os.path.isdir(scenario_dir):
        for name in sorted(os.listdir(scenario_dir)):
            if name.endswith(".json") and name not in docs_text:
                findings.append(Finding(
                    "docs-coverage", f"scenarios/{name}", 1,
                    "scenario preset is not mentioned in docs/ or "
                    "README.md"))
    return findings


def run_all(root: str) -> list[Finding]:
    return (check_node_containers(root) + check_bare_units(root)
            + check_docs_coverage(root))


# ----------------------------------------------------------- self-test

def self_test() -> int:
    """Seed one violation per rule in a scratch tree and insist the
    linter fires on each — and stays quiet on the clean variants."""
    failures = []

    def expect(name, findings, rule, count):
        got = [f for f in findings if f.rule == rule]
        if len(got) != count:
            failures.append(
                f"{name}: wanted {count} x {rule}, got "
                f"{[str(f) for f in findings]}")

    with tempfile.TemporaryDirectory() as root:
        os.makedirs(os.path.join(root, "src", "serving"))
        os.makedirs(os.path.join(root, "src", "core"))
        os.makedirs(os.path.join(root, "bench"))
        os.makedirs(os.path.join(root, "docs"))
        os.makedirs(os.path.join(root, "scenarios"))

        def write(rel, text):
            with open(os.path.join(root, rel), "w",
                      encoding="utf-8") as f:
                f.write(text)

        # Seeded violations.
        write("src/serving/hot.h",
              "#include <unordered_map>\n"
              "struct S { std::unordered_map<int, int> memo; };\n"
              "struct T {\n"
              "    double transferSeconds = 0.0;\n"
              "};\n")
        write("bench/bench_unmapped.cpp", "int main() {}\n")
        write("docs/figures.md", "| `bench_mapped` | Fig. 0 |\n")
        write("bench/bench_mapped.cpp", "int main() {}\n")
        write("scenarios/orphan.json", "{}\n")
        write("README.md", "nothing here\n")
        findings = run_all(root)
        expect("seeded", findings, "node-container", 2)
        expect("seeded", findings, "bare-unit", 1)
        expect("seeded", findings, "docs-coverage", 2)

        # Suppressions silence them; a bare allow() is itself flagged.
        write("src/serving/hot.h",
              "#include <unordered_map> "
              "// pimba-lint: allow(node-container) cold path\n"
              "// pimba-lint: allow(node-container) cold bookkeeping\n"
              "struct S { std::unordered_map<int, int> memo; };\n"
              "struct T {\n"
              "    Seconds transferSeconds;\n"
              "};\n")
        write("docs/figures.md",
              "| `bench_mapped` | Fig. 0 |\n"
              "| `bench_unmapped` | simulator micro-bench |\n"
              "uses scenarios/orphan.json\n")
        findings = run_all(root)
        if findings:
            failures.append(
                f"clean tree still flagged: {[str(f) for f in findings]}")

        write("src/serving/hot.h",
              "// pimba-lint: allow(node-container)\n"
              "struct S { std::unordered_map<int, int> memo; };\n")
        findings = run_all(root)
        expect("bare allow", findings, "node-container", 1)

        # units.h itself may name units in doubles (conversion factors).
        write("src/core/units.h", "struct Q {\n    double seconds;\n};\n")
        findings = [f for f in run_all(root) if f.rule == "bare-unit"]
        if findings:
            failures.append("core/units.h must be exempt from bare-unit")

    if failures:
        for f in failures:
            print("self-test FAIL:", f, file=sys.stderr)
        return 2
    print("lint self-test: ok")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of this script)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the linter against seeded violations")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    findings = run_all(args.root)
    for f in findings:
        print(f)
    if findings:
        print(f"\nlint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
