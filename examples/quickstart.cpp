/**
 * @file
 * Quickstart: simulate serving Mamba-2 2.7B on a Pimba-equipped A100
 * and print the per-token latency breakdown and throughput.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/args.h"
#include "sim/serving_sim.h"

using namespace pimba;

int
main(int argc, char **argv)
{
    ArgParser args("quickstart",
                   "Smallest end-to-end example: one decode step on each system.");
    if (!args.parse(argc, argv))
        return args.exitCode();

    // 1. Pick a model from the zoo (or build your own ModelConfig).
    ModelConfig model = mamba2_2p7b();
    printf("model: %s (%.2fB params, %d layers, state %.1f MB/request "
           "in fp16)\n",
           model.name.c_str(), model.paramCount() / 1e9, model.layers,
           model.stateBytes(2.0) / 1e6);

    // 2. Build a system: one A100 with Pimba PIM in its HBM.
    SystemConfig system = makeSystem(SystemKind::PIMBA);
    ServingSimulator sim(system);

    // 3. Simulate one generation step for a batch of 64 requests.
    const int batch = 64;
    StepResult step = sim.generationStep(model, batch, /*seq_len=*/2048);
    printf("\nper-token step latency: %.3f ms\n",
           step.seconds.value() * 1e3);
    for (const auto &key : step.latency.keys())
        printf("  %-15s %7.3f ms (%4.1f%%)\n", key.c_str(),
               step.latency.get(key) * 1e3,
               100.0 * step.latency.fraction(key));

    // 4. Throughput over a (2048 in, 2048 out) serving window, and the
    //    same on a plain GPU for comparison.
    double pimba_thr =
        sim.generationThroughput(model, batch, 2048, 2048).value();
    ServingSimulator gpu(makeSystem(SystemKind::GPU));
    double gpu_thr =
        gpu.generationThroughput(model, batch, 2048, 2048).value();
    printf("\nthroughput: %.0f tok/s on Pimba vs %.0f tok/s on GPU "
           "(%.2fx)\n", pimba_thr, gpu_thr, pimba_thr / gpu_thr);

    // 5. Energy per generated token.
    printf("energy: %.2f mJ/token (Pimba) vs %.2f mJ/token (GPU)\n",
           step.energy.total() / batch * 1e3,
           gpu.generationStep(model, batch, 2048).energy.total() /
               batch * 1e3);
    return 0;
}
