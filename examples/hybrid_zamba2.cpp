/**
 * @file
 * Hybrid-model walk-through: Zamba2-70B served on 8 GPUs. Shows why a
 * serving system must accelerate BOTH state updates and attention
 * (Section 3.1): with only one of them offloaded, the other dominates.
 *
 * The NeuPIMs-like system offloads only attention; a hypothetical
 * "SU-only" Pimba is emulated by running attention on the GPU.
 */

#include <cstdio>

#include "core/args.h"
#include "core/table.h"
#include "sim/serving_sim.h"

using namespace pimba;

int
main(int argc, char **argv)
{
    ArgParser args("hybrid_zamba2",
                   "Zamba2 hybrid-model (attention + SSM) study on 8x A100.");
    if (!args.parse(argc, argv))
        return args.exitCode();

    ModelConfig model = scaleModel(zamba2_7b(), 70e9);
    model.name = "Zamba2-70B";
    const int batch = 128;
    const uint64_t seq = 3072; // mid-decode with (2048, 2048) lengths

    printf("=== %s on 8x A100, batch %d ===\n\n", model.name.c_str(),
           batch);
    printf("%d Mamba-2 blocks + %d attention blocks (1:6 ratio)\n\n",
           model.stateUpdateLayers(), model.attentionLayers());

    Table t({"system", "step (ms)", "StateUpdate (ms)",
             "Attention (ms)", "bottleneck"});
    for (SystemKind kind :
         {SystemKind::GPU, SystemKind::NEUPIMS, SystemKind::GPU_PIM,
          SystemKind::PIMBA}) {
        ServingSimulator sim(makeSystem(kind, 8));
        auto step = sim.generationStep(model, batch, seq);
        double su = step.latency.get("StateUpdate");
        double at = step.latency.get("Attention");
        const char *bottleneck = "GEMM";
        double top = step.latency.get("GEMM");
        if (su > top) {
            bottleneck = "StateUpdate";
            top = su;
        }
        if (at > top)
            bottleneck = "Attention";
        t.addRow({systemName(kind), fmt(step.seconds.value() * 1e3, 2),
                  fmt(su * 1e3, 2), fmt(at * 1e3, 2), bottleneck});
    }
    printf("%s", t.str().c_str());

    printf("\nTakeaway: NeuPIMs (attention-only PIM) leaves the state "
           "updates on the\nGPU where they dominate; Pimba offloads "
           "both by reusing one SPU\nmicroarchitecture for the two "
           "operations (Section 5.4).\n");
    return 0;
}
