/**
 * @file
 * Fleet planner: how many replicas of each system does it take to meet
 * the SLO at a target arrival rate?
 *
 * For every serving system, the planner bisects the minimum replica
 * count whose homogeneous fleet (join-shortest-queue routing) serves a
 * shared Poisson trace with >= 90% of requests inside the TTFT/TPOT SLO
 * — the deployment question behind the paper's throughput-per-device
 * claim: a Pimba fleet needs fewer devices than a GPU fleet at equal
 * SLO-goodput.
 *
 * Thin wrapper over the scenario registry's planner kind; the same
 * study loads from scenarios/fleet_planner.json via `pimba fleet`.
 * Run with `--smoke` for a CI-sized trace.
 */

#include <cstdio>

#include "config/runner.h"
#include "core/args.h"

using namespace pimba;

int
main(int argc, char **argv)
{
    bool smoke = false;
    ArgParser args("fleet_planner",
                   "Bisect the minimum replica count per system at a "
                   "target SLO-attainment rate.");
    args.flag("--smoke", "CI-sized trace and rate", &smoke);
    if (!args.parse(argc, argv))
        return args.exitCode();

    Scenario sc = plannerScenario(smoke);
    const auto &ps = std::get<PlannerScenario>(sc.spec);
    printf("model %s, Poisson %s req/s, %d requests, input %llu / "
           "output %llu\n\n",
           ps.model.name.c_str(), fmt(ps.trace.ratePerSec, 0).c_str(),
           ps.trace.numRequests,
           static_cast<unsigned long long>(ps.trace.inputLen),
           static_cast<unsigned long long>(ps.trace.outputLen));

    ScenarioReport rep = runScenario(sc);
    fputs(rep.renderText().c_str(), stdout);
    return 0;
}
