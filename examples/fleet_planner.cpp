/**
 * @file
 * Fleet planner: how many replicas of each system does it take to meet
 * the SLO at a target arrival rate — and once sized, does an
 * SLO-aware autoscaler beat static provisioning on that fleet?
 *
 * Part 1 bisects, per serving system, the minimum replica count whose
 * homogeneous fleet (join-shortest-queue routing) serves a shared
 * Poisson trace with >= 90% of requests inside the TTFT/TPOT SLO — the
 * deployment question behind the paper's throughput-per-device claim.
 *
 * Part 2 evaluates provisioning *policies* on a diurnal trace: the
 * control plane's queue-depth autoscaler (docs/control-plane.md)
 * against the static fleets it must beat, compared on replica-seconds
 * billed at equal SLO attainment.
 *
 * Thin wrapper over the scenario registry's planner and control kinds;
 * the same studies load from scenarios/fleet_planner.json and
 * scenarios/autoscale_diurnal.json via `pimba fleet`. Run with
 * `--smoke` for CI-sized traces.
 */

#include <cstdio>

#include "config/runner.h"
#include "core/args.h"

using namespace pimba;

int
main(int argc, char **argv)
{
    bool smoke = false;
    ArgParser args("fleet_planner",
                   "Bisect the minimum replica count per system at a "
                   "target SLO-attainment rate, then compare autoscaled "
                   "vs static provisioning on a diurnal trace.");
    args.flag("--smoke", "CI-sized traces and rates", &smoke);
    if (!args.parse(argc, argv))
        return args.exitCode();

    Scenario sc = plannerScenario(smoke);
    const auto &ps = std::get<PlannerScenario>(sc.spec);
    printf("model %s, Poisson %s req/s, %d requests, input %llu / "
           "output %llu\n\n",
           ps.model.name.c_str(), fmt(ps.trace.ratePerSec, 0).c_str(),
           ps.trace.numRequests,
           static_cast<unsigned long long>(ps.trace.inputLen),
           static_cast<unsigned long long>(ps.trace.outputLen));

    ScenarioReport rep = runScenario(sc);
    fputs(rep.renderText().c_str(), stdout);

    Scenario as = autoscaleScenario(smoke);
    const auto &fs = std::get<FleetScenario>(as.spec);
    printf("autoscaler evaluation: model %s, diurnal %s req/s mean, "
           "%d requests\n\n",
           fs.model.name.c_str(), fmt(fs.trace.ratePerSec, 0).c_str(),
           fs.trace.numRequests);
    ScenarioReport arep = runScenario(as);
    fputs(arep.renderText().c_str(), stdout);
    return 0;
}
