/**
 * @file
 * Fleet planner: how many replicas of each system does it take to meet
 * the SLO at a target arrival rate?
 *
 * For every serving system, the planner bisects the minimum replica
 * count whose homogeneous fleet (join-shortest-queue routing) serves a
 * shared Poisson trace with >= 90% of requests inside the TTFT/TPOT SLO
 * — the deployment question behind the paper's throughput-per-device
 * claim: a Pimba fleet needs fewer devices than a GPU fleet at equal
 * SLO-goodput. Run with `--smoke` for a CI-sized trace.
 */

#include <cstdio>
#include <cstring>

#include "cluster/fleet.h"
#include "core/table.h"
#include "serving/trace.h"
#include "serving/workload.h"

using namespace pimba;

namespace {

constexpr size_t kMaxReplicas = 32;

std::vector<Request>
plannerTrace(double rate, int num_requests)
{
    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Poisson;
    tc.ratePerSec = rate;
    tc.numRequests = num_requests;
    tc.inputLen = 512;
    tc.outputLen = 256;
    tc.seed = 0x5EEDF1EEu;
    return generateTrace(tc);
}

/** True if an n-replica fleet of @p kind meets the SLO on @p trace. */
bool
meetsSlo(SystemKind kind, const ModelConfig &model, size_t n,
         const std::vector<Request> &trace)
{
    FleetConfig cfg = homogeneousFleet(kind, n);
    cfg.router = RouterPolicy::JoinShortestQueue;
    FleetReport rep = Fleet(model, cfg).run(trace);
    return sustainsSlo(rep.metrics, 0.9);
}

/** Smallest replica count in [1, kMaxReplicas] meeting the SLO, or 0. */
size_t
minReplicas(SystemKind kind, const ModelConfig &model,
            const std::vector<Request> &trace)
{
    // Gallop to an upper bound, then bisect the first passing count.
    size_t hi = 1;
    while (hi <= kMaxReplicas && !meetsSlo(kind, model, hi, trace))
        hi *= 2;
    if (hi > kMaxReplicas)
        return 0;
    size_t lo = hi / 2 + 1; // hi/2 failed (or hi == 1)
    while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (meetsSlo(kind, model, mid, trace))
            hi = mid;
        else
            lo = mid + 1;
    }
    return hi;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    const double rate = smoke ? 24.0 : 48.0;
    const int requests = smoke ? 64 : 192;
    ModelConfig model = mamba2_2p7b();
    std::vector<Request> trace = plannerTrace(rate, requests);

    printf("=== Fleet planner: min replicas for >= 90%% SLO attainment "
           "===\n");
    printf("model %s, Poisson %s req/s, %d requests, input 512 / "
           "output 256\n\n",
           model.name.c_str(), fmt(rate, 0).c_str(), requests);

    Table t({"system", "min replicas", "goodput", "TTFT p95",
             "vs Pimba"});
    size_t pimbaCount = 0;
    std::vector<std::pair<SystemKind, size_t>> results;
    for (SystemKind kind : mainSystems()) {
        size_t n = minReplicas(kind, model, trace);
        if (kind == SystemKind::PIMBA)
            pimbaCount = n;
        results.emplace_back(kind, n);
    }
    for (auto [kind, n] : results) {
        if (n == 0) {
            t.addRow({systemName(kind), "> 32", "-", "-", "-"});
            continue;
        }
        FleetConfig cfg = homogeneousFleet(kind, n);
        cfg.router = RouterPolicy::JoinShortestQueue;
        FleetReport rep = Fleet(model, cfg).run(trace);
        t.addRow({systemName(kind), fmt(static_cast<double>(n), 0),
                  fmt(rep.metrics.goodput, 2),
                  fmt(rep.metrics.ttft.p95, 3),
                  pimbaCount > 0
                      ? fmtRatio(static_cast<double>(n) /
                                 static_cast<double>(pimbaCount))
                      : "-"});
    }
    printf("%s\n", t.str().c_str());
    printf("\"vs Pimba\": replica-count ratio against the Pimba fleet — "
           "the devices one Pimba device replaces at equal SLO.\n");
    return 0;
}
