/**
 * @file
 * Find each system's saturation point under open-loop Poisson traffic:
 * geometrically grow the arrival rate until the SLO breaks, then bisect
 * to the highest rate at which >= 95% of requests still meet the SLO.
 * One row per system x scheduler policy — the request-level analogue of
 * the paper's throughput comparison.
 *
 * Thin wrapper over the scenario registry's saturation kind; the same
 * study loads from scenarios/saturation_search.json via `pimba run`.
 * `--smoke` shrinks the trace and the bisection depth for CI.
 */

#include <cstdio>

#include "config/runner.h"
#include "core/args.h"

using namespace pimba;

int
main(int argc, char **argv)
{
    bool smoke = false;
    ArgParser args("traffic_sweep",
                   "Bisect each system's saturation rate under the "
                   "TTFT/TPOT SLO.");
    args.flag("--smoke", "CI-sized trace and bisection depth", &smoke);
    if (!args.parse(argc, argv))
        return args.exitCode();

    ScenarioReport rep = runScenario(saturationScenario(smoke));
    fputs(rep.renderText().c_str(), stdout);
    return 0;
}
