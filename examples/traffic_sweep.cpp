/**
 * @file
 * Find each system's saturation point under open-loop Poisson traffic:
 * geometrically grow the arrival rate until the SLO breaks, then bisect
 * to the highest rate at which >= 95% of requests still meet the SLO.
 * Prints one line per system — the request-level analogue of the
 * paper's throughput comparison.
 */

#include <cstdio>

#include "core/table.h"
#include "serving/workload.h"

using namespace pimba;

namespace {

ServingMetrics
serveAtRate(SystemKind kind, const ModelConfig &model, double rate)
{
    OpenLoopWorkload w;
    w.numRequests = 96;
    return servePoisson(kind, model, rate, w);
}

/** Highest Poisson rate at which >= 95% of requests meet the SLO. */
double
saturationRate(SystemKind kind, const ModelConfig &model,
               ServingMetrics &at_knee)
{
    double lo = 0.5;
    ServingMetrics m = serveAtRate(kind, model, lo);
    if (!sustainsSlo(m)) {
        at_knee = m;
        return 0.0;
    }
    double hi = lo;
    while (hi < 512.0) {
        hi *= 2.0;
        if (!sustainsSlo(serveAtRate(kind, model, hi)))
            break;
        lo = hi;
    }
    for (int i = 0; i < 6; ++i) {
        double mid = 0.5 * (lo + hi);
        if (sustainsSlo(serveAtRate(kind, model, mid)))
            lo = mid;
        else
            hi = mid;
    }
    at_knee = serveAtRate(kind, model, lo);
    return lo;
}

} // namespace

int
main()
{
    ModelConfig model = mamba2_2p7b();
    printf("=== Saturation sweep: %s, Poisson, input 512 / output 256 "
           "===\n", model.name.c_str());
    Table t({"system", "saturation req/s", "tok/s", "TTFT p95",
             "TPOT p95"});
    double gpuRate = 0.0;
    for (SystemKind kind :
         {SystemKind::GPU, SystemKind::GPU_Q, SystemKind::GPU_PIM,
          SystemKind::PIMBA, SystemKind::NEUPIMS}) {
        ServingMetrics knee;
        double rate = saturationRate(kind, model, knee);
        if (kind == SystemKind::GPU)
            gpuRate = rate;
        t.addRow({systemName(kind), fmt(rate, 2),
                  fmt(knee.tokensPerSec, 0), fmt(knee.ttft.p95, 3),
                  fmt(knee.tpot.p95, 4)});
        fprintf(stderr, "  %s done\n", systemName(kind).c_str());
    }
    printf("%s\n", t.str().c_str());
    if (gpuRate > 0.0)
        printf("(rates relative to GPU = 1.00x at %s req/s)\n",
               fmt(gpuRate, 2).c_str());
    return 0;
}
