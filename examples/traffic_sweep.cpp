/**
 * @file
 * Find each system's saturation point under open-loop Poisson traffic:
 * geometrically grow the arrival rate until the SLO breaks, then bisect
 * to the highest rate at which >= 95% of requests still meet the SLO.
 * Prints one line per system — the request-level analogue of the
 * paper's throughput comparison. `--smoke` shrinks the trace and the
 * bisection depth for CI.
 */

#include <cstdio>
#include <cstring>

#include "core/table.h"
#include "serving/workload.h"

using namespace pimba;

namespace {

int gNumRequests = 96;
int gBisectSteps = 6;

ServingMetrics
serveAtRate(SystemKind kind, const ModelConfig &model, double rate,
            SchedulerPolicy policy)
{
    OpenLoopWorkload w;
    w.numRequests = gNumRequests;
    w.policy = policy;
    // Uniform lengths (mean 512/256): length variance is what lets SJF
    // reorder relative to FCFS; fixed lengths would make them identical.
    w.inputLen = 256;
    w.inputLenMax = 768;
    w.outputLen = 128;
    w.outputLenMax = 384;
    return servePoisson(kind, model, rate, w);
}

/** Highest Poisson rate at which >= 95% of requests meet the SLO. */
double
saturationRate(SystemKind kind, const ModelConfig &model,
               SchedulerPolicy policy, ServingMetrics &at_knee)
{
    double lo = 0.5;
    ServingMetrics m = serveAtRate(kind, model, lo, policy);
    if (!sustainsSlo(m)) {
        at_knee = m;
        return 0.0;
    }
    double hi = lo;
    while (hi < 512.0) {
        hi *= 2.0;
        if (!sustainsSlo(serveAtRate(kind, model, hi, policy)))
            break;
        lo = hi;
    }
    for (int i = 0; i < gBisectSteps; ++i) {
        double mid = 0.5 * (lo + hi);
        if (sustainsSlo(serveAtRate(kind, model, mid, policy)))
            lo = mid;
        else
            hi = mid;
    }
    at_knee = serveAtRate(kind, model, lo, policy);
    return lo;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            gNumRequests = 32;
            gBisectSteps = 2;
        }
    }
    ModelConfig model = mamba2_2p7b();
    printf("=== Saturation sweep: %s, Poisson, uniform input "
           "256..768 / output 128..384 ===\n", model.name.c_str());
    Table t({"system", "policy", "saturation req/s", "tok/s",
             "TTFT p95", "TPOT p95"});
    double gpuRate = 0.0;
    for (SystemKind kind :
         {SystemKind::GPU, SystemKind::GPU_Q, SystemKind::GPU_PIM,
          SystemKind::PIMBA, SystemKind::NEUPIMS}) {
        for (SchedulerPolicy policy : allPolicies()) {
            ServingMetrics knee;
            double rate = saturationRate(kind, model, policy, knee);
            if (kind == SystemKind::GPU &&
                policy == SchedulerPolicy::FCFS)
                gpuRate = rate;
            t.addRow({systemName(kind), policyName(policy), fmt(rate, 2),
                      fmt(knee.tokensPerSec, 0), fmt(knee.ttft.p95, 3),
                      fmt(knee.tpot.p95, 4)});
        }
        fprintf(stderr, "  %s done\n", systemName(kind).c_str());
    }
    printf("%s\n", t.str().c_str());
    if (gpuRate > 0.0)
        printf("(rates relative to GPU fcfs = 1.00x at %s req/s)\n",
               fmt(gpuRate, 2).c_str());
    return 0;
}
