/**
 * @file
 * Serving-system shoot-out: compare all five systems (GPU, GPU+Q,
 * GPU+PIM, Pimba, NeuPIMs) on a model and batch size given on the
 * command line.
 *
 * Usage: serving_comparison [model] [batch]
 *   model: retnet | gla | hgrn2 | mamba2 | zamba2 | opt (default mamba2)
 *   batch: requests per batch (default 128)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/table.h"
#include "sim/serving_sim.h"

using namespace pimba;

namespace {

ModelConfig
pickModel(const char *name)
{
    if (!strcmp(name, "retnet"))
        return retnet2p7b();
    if (!strcmp(name, "gla"))
        return gla2p7b();
    if (!strcmp(name, "hgrn2"))
        return hgrn2_2p7b();
    if (!strcmp(name, "mamba2"))
        return mamba2_2p7b();
    if (!strcmp(name, "zamba2"))
        return zamba2_7b();
    if (!strcmp(name, "opt"))
        return opt7b();
    fprintf(stderr, "unknown model '%s'\n", name);
    exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    ModelConfig model = pickModel(argc > 1 ? argv[1] : "mamba2");
    int batch = argc > 2 ? atoi(argv[2]) : 128;

    printf("comparing systems on %s, batch %d, (2048, 2048) lengths\n\n",
           model.name.c_str(), batch);

    Table t({"system", "tok/s", "speedup", "step (ms)", "SU (ms)",
             "Attn (ms)", "energy (J/step)", "memory (GB)"});
    double base = 0.0;
    for (SystemKind kind :
         {SystemKind::GPU, SystemKind::GPU_Q, SystemKind::GPU_PIM,
          SystemKind::PIMBA, SystemKind::NEUPIMS}) {
        ServingSimulator sim(makeSystem(kind));
        double thr = sim.generationThroughput(model, batch, 2048, 2048);
        if (kind == SystemKind::GPU)
            base = thr;
        auto step = sim.averagedStep(model, batch, 2048, 2048);
        auto mem = sim.memoryUsage(model, batch, 3072);
        t.addRow({systemName(kind), fmt(thr, 0), fmtRatio(thr / base),
                  fmt(step.seconds * 1e3, 2),
                  fmt(step.latency.get("StateUpdate") * 1e3, 2),
                  fmt(step.latency.get("Attention") * 1e3, 2),
                  fmt(step.energy.total(), 3),
                  fmt(mem.total() / 1e9, 1)});
    }
    printf("%s", t.str().c_str());
    return 0;
}
