/**
 * @file
 * Serving-system shoot-out: compare all five systems (GPU, GPU+Q,
 * GPU+PIM, Pimba, NeuPIMs) on a model and batch size given on the
 * command line.
 *
 * Usage: serving_comparison [--model m] [--batch n]
 *   --model: retnet | gla | hgrn2 | mamba2 | zamba2 | opt (default mamba2)
 *   --batch: requests per batch (default 128)
 */

#include <cstdio>

#include "config/scenario.h"
#include "core/args.h"
#include "core/table.h"
#include "sim/serving_sim.h"

using namespace pimba;

namespace {

/// Zoo lookup through the shared scenario registry, with the short
/// family aliases this tool has always accepted ("mamba2" ->
/// "mamba2-2.7b", "opt" -> "opt-7b").
ModelConfig
pickModel(const std::string &name)
{
    for (const std::string &candidate :
         {name, name + "-7b", name + "-2.7b"}) {
        try {
            return modelPreset(candidate);
        } catch (const ConfigError &) {
        }
    }
    try {
        return modelPreset(name); // rethrow for the name list
    } catch (const ConfigError &e) {
        fprintf(stderr, "serving_comparison: %s\n", e.what());
        exit(1);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string model_name = "mamba2";
    int batch = 128;
    ArgParser args("serving_comparison",
                   "Compare all five systems on one model and batch "
                   "size (per-step latency, energy, memory).");
    args.option("--model", "name",
                "retnet | gla | hgrn2 | mamba2 | zamba2 | opt",
                &model_name);
    args.option("--batch", "n", "requests per batch", &batch);
    if (!args.parse(argc, argv))
        return args.exitCode();
    ModelConfig model = pickModel(model_name);

    printf("comparing systems on %s, batch %d, (2048, 2048) lengths\n\n",
           model.name.c_str(), batch);

    Table t({"system", "tok/s", "speedup", "step (ms)", "SU (ms)",
             "Attn (ms)", "energy (J/step)", "memory (GB)"});
    double base = 0.0;
    for (SystemKind kind :
         {SystemKind::GPU, SystemKind::GPU_Q, SystemKind::GPU_PIM,
          SystemKind::PIMBA, SystemKind::NEUPIMS}) {
        ServingSimulator sim(makeSystem(kind));
        double thr =
            sim.generationThroughput(model, batch, 2048, 2048).value();
        if (kind == SystemKind::GPU)
            base = thr;
        auto step = sim.averagedStep(model, batch, 2048, 2048);
        auto mem = sim.memoryUsage(model, batch, 3072);
        t.addRow({systemName(kind), fmt(thr, 0), fmtRatio(thr / base),
                  fmt(step.seconds.value() * 1e3, 2),
                  fmt(step.latency.get("StateUpdate") * 1e3, 2),
                  fmt(step.latency.get("Attention") * 1e3, 2),
                  fmt(step.energy.total(), 3),
                  fmt(mem.total().value() / 1e9, 1)});
    }
    printf("%s", t.str().c_str());
    return 0;
}
