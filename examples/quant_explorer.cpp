/**
 * @file
 * Quantization explorer: run the generalized state-update recurrence
 * (Eq. 2) for a configurable number of steps under every storage
 * format, through the bit-accurate Pimba SPE datapath for MX8 and the
 * span codecs for the rest, and report the output error — a hands-on
 * view of the swamping effect and of stochastic rounding's rescue.
 *
 * Usage: quant_explorer [--steps n] [--decay d]
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/args.h"
#include "core/lfsr.h"
#include "core/table.h"
#include "pim/spu.h"
#include "quant/format.h"

using namespace pimba;

int
main(int argc, char **argv)
{
    int steps = 512;
    double decay = 0.98;
    ArgParser args("quant_explorer",
                   "Run the state-update recurrence under every "
                   "storage format and report the output error.");
    args.option("--steps", "n", "recurrence steps", &steps);
    args.option("--decay", "d", "per-step state decay in (0, 1)",
                &decay);
    if (!args.parse(argc, argv))
        return args.exitCode();
    if (steps < 1 || decay <= 0.0 || decay >= 1.0) {
        fprintf(stderr, "quant_explorer: --steps must be >= 1 and "
                        "--decay must lie in (0, 1)\n");
        return 1;
    }
    const int dim_head = 32, dim_state = 32;

    printf("state-update recurrence: %d steps, decay %.3f "
           "(state/increment ratio ~%.0f)\n\n",
           steps, decay, 1.0 / (1.0 - decay));

    // Persistent-mean inputs: the regime where swamping matters.
    Lfsr32 data_rng(2024);
    std::vector<double> bk(dim_head), bv(dim_state);
    for (auto &b : bk)
        b = data_rng.nextGaussian();
    for (auto &b : bv)
        b = data_rng.nextGaussian();

    auto run = [&](const QuantSpec &spec, bool use_spe) {
        Lfsr32 rng(7);
        Lfsr16 lfsr(0x2468);
        std::vector<double> s(dim_head * dim_state, 0.0);
        std::vector<double> ref(dim_head * dim_state, 0.0);
        std::vector<double> d(dim_head, decay), k(dim_head),
            q(dim_head), v(dim_state), y;
        double err = 0.0, norm = 0.0;
        for (int t = 0; t < steps; ++t) {
            for (int i = 0; i < dim_head; ++i)
                k[i] = rng.nextGaussian() + bk[i];
            for (int j = 0; j < dim_state; ++j)
                v[j] = rng.nextGaussian() + bv[j];
            for (int i = 0; i < dim_head; ++i)
                q[i] = rng.nextGaussian();

            for (int i = 0; i < dim_head; ++i)
                for (int j = 0; j < dim_state; ++j)
                    ref[i * dim_state + j] =
                        decay * ref[i * dim_state + j] + k[i] * v[j];

            if (use_spe) {
                // Bit-accurate Pimba SPE path (MX ops per Fig. 9).
                speStateUpdateHead(s, d, k, q, v, y, dim_head, dim_state,
                                   spec.rnd, lfsr);
            } else {
                for (int i = 0; i < dim_head; ++i)
                    for (int j = 0; j < dim_state; ++j)
                        s[i * dim_state + j] =
                            decay * s[i * dim_state + j] + k[i] * v[j];
                quantizeSpan(s.data(), s.size(), spec, lfsr);
            }

            if (t >= steps - 64) {
                for (int j = 0; j < dim_state; ++j) {
                    double ye = 0.0, yr = 0.0;
                    for (int i = 0; i < dim_head; ++i) {
                        ye += s[i * dim_state + j] * q[i];
                        yr += ref[i * dim_state + j] * q[i];
                    }
                    err += (ye - yr) * (ye - yr);
                    norm += yr * yr;
                }
            }
        }
        return std::sqrt(err / norm);
    };

    Table t({"format", "rel. output error", "note"});
    for (const auto &spec : figure4Specs()) {
        double e = run(spec, false);
        const char *note = "";
        if (spec.fmt == NumberFormat::E5M2 &&
            spec.rnd == Rounding::Nearest)
            note = "swamping: updates below half-ulp vanish";
        if (spec.fmt == NumberFormat::MX8)
            note = "Pimba's storage format";
        t.addRow({spec.name(), fmt(e, 4), note});
    }
    double spe = run({NumberFormat::MX8, Rounding::Stochastic}, true);
    t.addRow({"mx8SR (SPE datapath)", fmt(spe, 4),
              "bit-accurate MX multiplier/adder path"});
    printf("%s", t.str().c_str());
    return 0;
}
