/**
 * @file
 * Figure 3 — GPU generation-phase latency breakdown across SU-LLMs and
 * Zamba2 for batch sizes {32, 64, 128}. Paper anchor: RetNet state
 * updates grow from 41.9% (b=32) to 73.8% (b=128); Zamba2's attention
 * reaches ~65% at b=128 with (2048, 2048) lengths.
 */

#include <cstdio>

#include "core/args.h"
#include "core/table.h"
#include "sim/serving_sim.h"

using namespace pimba;

int
main(int argc, char **argv)
{
    ArgParser args("bench_fig03_breakdown",
                   "Figure 3: per-operation latency breakdown on the GPU.");
    if (!args.parse(argc, argv))
        return args.exitCode();

    printf("=== Figure 3: latency breakdown on GPU (generation) ===\n");
    ServingSimulator gpu(makeSystem(SystemKind::GPU));

    const char *cats[] = {"StateUpdate", "Attention", "Discretization",
                          "CausalConv", "GEMM", "Others"};
    Table t({"model", "batch", "StateUpdate%", "Attention%",
             "Discretization%", "CausalConv%", "GEMM%", "Others%"});

    for (const auto &model : evaluationModels()) {
        for (int batch : {32, 64, 128}) {
            // SU-LLMs are sequence-length independent; Zamba2/OPT use
            // (2048, 2048) per the caption.
            uint64_t seq = (model.attentionLayers() > 0) ? 3072 : 1;
            auto step = gpu.generationStep(model, batch, seq);
            std::vector<std::string> row = {model.name,
                                            std::to_string(batch)};
            for (const char *c : cats)
                row.push_back(fmt(100.0 * step.latency.fraction(c), 1));
            t.addRow(row);
        }
    }
    printf("%s", t.str().c_str());

    auto retnet32 = gpu.generationStep(retnet2p7b(), 32, 1);
    auto retnet128 = gpu.generationStep(retnet2p7b(), 128, 1);
    printf("\nRetNet state-update share: %.1f%% (b=32) -> %.1f%% "
           "(b=128); paper: 41.9%% -> 73.8%%\n",
           100.0 * retnet32.latency.fraction("StateUpdate"),
           100.0 * retnet128.latency.fraction("StateUpdate"));
    auto zamba128 = gpu.generationStep(zamba2_7b(), 128, 3072);
    printf("Zamba2 attention share at b=128: %.1f%% (paper: 65.5%%)\n",
           100.0 * zamba128.latency.fraction("Attention"));
    return 0;
}
