/**
 * @file
 * Request-level serving under open-loop Poisson traffic: sweep the
 * arrival rate for all five systems (GPU, GPU+Q, GPU+PIM, Pimba,
 * NeuPIMs) and report sustained tokens/s, goodput under the TTFT/TPOT
 * SLO, and tail latency. Each system shows a saturation knee: below it
 * goodput tracks the offered load, above it queueing blows up TTFT and
 * goodput collapses while tokens/s plateaus at the system's capacity.
 *
 * Mamba-2 2.7B exercises the state-update path (where NeuPIMs, an
 * attention-only PIM, degenerates to the GPU baseline); OPT 2.7B
 * exercises the attention path where NeuPIMs differs.
 */

#include <cstdio>

#include "core/table.h"
#include "serving/workload.h"

using namespace pimba;

namespace {

const std::vector<SystemKind> kAllSystems = {
    SystemKind::GPU, SystemKind::GPU_Q, SystemKind::GPU_PIM,
    SystemKind::PIMBA, SystemKind::NEUPIMS};

const std::vector<double> kRates = {1, 2, 4, 8, 16, 32, 64};

/**
 * Scheduler-policy shootout at a saturating rate: same seeded Poisson
 * trace, same paged block pool, one row per policy x execution mode.
 * Lengths are uniform (mean 512/256) — length variance is what lets
 * SJF reorder versus FCFS; on a fixed-length trace the two are
 * identical. The Sarathi-style fused chunked-prefill policy should
 * show strictly lower tail TTFT than FCFS at equal-or-better goodput —
 * the head-of-line fix. On the PIM systems the overlapped rows pipe
 * one sub-batch's PIM phases under the other's GPU phases, so every
 * policy's latency columns drop at unchanged token counts; the
 * GPU-only systems have no PIM phase to hide and run blocked only.
 */
void
sweepPolicies(const ModelConfig &model, double rate)
{
    printf("--- %s, policy comparison at %s req/s (saturating), "
           "uniform lengths ---\n",
           model.name.c_str(), fmt(rate, 0).c_str());
    for (SystemKind kind : {SystemKind::GPU, SystemKind::PIMBA}) {
        const bool hasPim = makeSystem(kind).pim().has_value();
        std::vector<ExecutionMode> modes = {ExecutionMode::Blocked};
        if (hasPim)
            modes.push_back(ExecutionMode::Overlapped);
        Table t({"policy", "mode", "tok/s", "goodput", "TTFT p95",
                 "TPOT p95", "preempt", "blk util"});
        for (SchedulerPolicy policy : allPolicies()) {
            for (ExecutionMode mode : modes) {
                OpenLoopWorkload w;
                w.policy = policy;
                w.executionMode = mode;
                w.inputLen = 256;
                w.inputLenMax = 768; // uniform, mean 512
                w.outputLen = 128;
                w.outputLenMax = 384; // uniform, mean 256
                ServingReport r = servePoissonReport(kind, model, rate,
                                                     w);
                t.addRow({policyName(policy), executionModeName(mode),
                          fmt(r.metrics.tokensPerSec, 1),
                          fmt(r.metrics.goodput, 2),
                          fmt(r.metrics.ttft.p95, 3),
                          fmt(r.metrics.tpot.p95, 4),
                          fmt(static_cast<double>(r.preemptions), 0),
                          fmt(r.peakBlockUtil, 3)});
            }
        }
        printf("%s\n%s\n", systemName(kind).c_str(), t.str().c_str());
    }
}

void
sweepModel(const ModelConfig &model)
{
    printf("--- %s, Poisson arrivals, input 512 / output 256, "
           "batch cap 64 ---\n", model.name.c_str());
    Table knees({"system", "saturation req/s", "peak tok/s"});
    for (SystemKind kind : kAllSystems) {
        Table t(metricsHeader());
        double kneeRate = 0.0, peakTok = 0.0;
        for (double rate : kRates) {
            ServingMetrics m = servePoisson(kind, model, rate);
            t.addRow(metricsRow("rate " + fmt(rate, 0), m));
            peakTok = std::max(peakTok, m.tokensPerSec);
            // The knee: the highest offered load the system still
            // serves almost entirely within the SLO.
            if (sustainsSlo(m, 0.9))
                kneeRate = rate;
        }
        printf("%s\n%s\n", systemName(kind).c_str(), t.str().c_str());
        knees.addRow({systemName(kind), fmt(kneeRate, 0),
                      fmt(peakTok, 0)});
    }
    printf("Saturation knees (%s):\n%s\n", model.name.c_str(),
           knees.str().c_str());
}

} // namespace

int
main()
{
    printf("=== Request-level continuous-batching rate sweep ===\n");
    sweepModel(mamba2_2p7b());
    sweepModel(opt2p7b());
    printf("=== Scheduler policies over the paged block manager ===\n");
    sweepPolicies(mamba2_2p7b(), 32.0);
    sweepPolicies(opt2p7b(), 32.0);
    return 0;
}
