/**
 * @file
 * Request-level serving under open-loop Poisson traffic, as two
 * scenario-registry studies per model:
 *
 *  1. Rate sweep for all five systems (GPU, GPU+Q, GPU+PIM, Pimba,
 *     NeuPIMs): sustained tokens/s, goodput under the TTFT/TPOT SLO,
 *     and tail latency, ending with each system's saturation knee —
 *     below it goodput tracks the offered load, above it queueing
 *     blows up TTFT while tokens/s plateaus at capacity.
 *  2. Scheduler-policy shootout at a saturating rate over the paged
 *     block manager (FCFS / SJF / Sarathi x blocked / overlapped).
 *
 * Mamba-2 2.7B exercises the state-update path (where NeuPIMs, an
 * attention-only PIM, degenerates to the GPU baseline); OPT 2.7B
 * exercises the attention path where NeuPIMs differs.
 *
 * Thin wrapper over the scenario registry; the same studies load from
 * scenarios/serving_rate_sweep.json and scenarios/policy_shootout.json
 * via `pimba run`.
 */

#include <cstdio>

#include "config/runner.h"
#include "core/args.h"

using namespace pimba;

int
main(int argc, char **argv)
{
    bool smoke = false;
    ArgParser args("bench_serving_trace",
                   "Request-level rate sweep and scheduler-policy "
                   "shootout for all five systems.");
    args.flag("--smoke", "CI-sized traces and rate grid", &smoke);
    if (!args.parse(argc, argv))
        return args.exitCode();

    for (const ModelConfig &model : {mamba2_2p7b(), opt2p7b()}) {
        ScenarioReport sweep =
            runScenario(servingRateSweepScenario(model, smoke));
        fputs(sweep.renderText().c_str(), stdout);
    }
    for (const ModelConfig &model : {mamba2_2p7b(), opt2p7b()}) {
        ScenarioReport shootout =
            runScenario(policyShootoutScenario(model, smoke));
        fputs(shootout.renderText().c_str(), stdout);
    }
    return 0;
}
