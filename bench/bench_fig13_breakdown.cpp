/**
 * @file
 * Figure 13 — normalized latency breakdown of the large-scale (70B)
 * models at generation with (2048, 2048) lengths across the four
 * systems. Paper anchors: Pimba reduces state-update latency 14.6x vs
 * GPU and 6.9x vs GPU+PIM; attention 6.3x and 2.1x.
 */

#include <cstdio>

#include "core/args.h"
#include "core/table.h"
#include "sim/serving_sim.h"

using namespace pimba;

int
main(int argc, char **argv)
{
    ArgParser args("bench_fig13_breakdown",
                   "Figure 13: latency breakdown at 70B on 8x A100.");
    if (!args.parse(argc, argv))
        return args.exitCode();

    printf("=== Figure 13: latency breakdown, 70B, 8x A100 ===\n");
    const char *cats[] = {"StateUpdate", "Attention", "Discretization",
                          "CausalConv", "GEMM", "Communication",
                          "Others"};

    Accumulator su_vs_gpu, su_vs_pim, at_vs_gpu, at_vs_pim;

    for (const auto &model : evaluationModels70b()) {
        printf("--- %s ---\n", model.name.c_str());
        Table t({"system", "batch", "total(ms)", "StateUpdate",
                 "Attention", "Discretization", "CausalConv", "GEMM",
                 "Communication", "Others"});
        for (int batch : {32, 64, 128}) {
            StepResult gpu_step, pim_step;
            double base = 0.0;
            for (SystemKind kind : mainSystems()) {
                ServingSimulator sim(makeSystem(kind, 8));
                auto step = sim.generationStep(model, batch, 3072);
                if (kind == SystemKind::GPU) {
                    base = step.seconds.value();
                    gpu_step = step;
                }
                if (kind == SystemKind::GPU_PIM)
                    pim_step = step;
                std::vector<std::string> row = {systemName(kind),
                                                std::to_string(batch),
                                                fmt(step.seconds.value() *
                                                        1e3,
                                                    2)};
                for (const char *c : cats)
                    row.push_back(fmt(step.latency.get(c) / base, 3));
                t.addRow(row);
                if (kind == SystemKind::PIMBA && batch == 128) {
                    double su = step.latency.get("StateUpdate");
                    double at = step.latency.get("Attention");
                    if (su > 0) {
                        su_vs_gpu.add(
                            gpu_step.latency.get("StateUpdate") / su);
                        su_vs_pim.add(
                            pim_step.latency.get("StateUpdate") / su);
                    }
                    if (at > 0) {
                        at_vs_gpu.add(
                            gpu_step.latency.get("Attention") / at);
                        at_vs_pim.add(
                            pim_step.latency.get("Attention") / at);
                    }
                }
            }
        }
        printf("%s\n", t.str().c_str());
        fprintf(stderr, "  %s done\n", model.name.c_str());
    }

    printf("State-update latency reduction (b=128): %s vs GPU, %s vs "
           "GPU+PIM (paper: 14.6x, 6.9x)\n",
           fmtRatio(su_vs_gpu.mean()).c_str(),
           fmtRatio(su_vs_pim.mean()).c_str());
    printf("Attention latency reduction (b=128): %s vs GPU, %s vs "
           "GPU+PIM (paper: 6.3x, 2.1x)\n",
           fmtRatio(at_vs_gpu.mean()).c_str(),
           fmtRatio(at_vs_pim.mean()).c_str());
    return 0;
}
