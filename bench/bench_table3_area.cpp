/**
 * @file
 * Table 3 — area and power of the Pimba SPUs versus the optimized
 * HBM-PIM units. Paper values: Pimba 0.053/0.039/0.092 mm², 13.4%
 * overhead, 8.2908 mW; HBM-PIM 0.042/0.039/0.081 mm², 11.8%, 6.028 mW.
 */

#include <cstdio>

#include "core/args.h"
#include "core/table.h"
#include "pim/area_model.h"

using namespace pimba;

int
main(int argc, char **argv)
{
    ArgParser args("bench_table3_area",
                   "Table 3: area and power comparison of PIM designs.");
    if (!args.parse(argc, argv))
        return args.exitCode();

    printf("=== Table 3: area and power comparison ===\n");
    HbmConfig hbm = hbm2eConfig();
    int banks = hbm.org.banksPerPseudoChannel();

    PimArea pimba = PimAreaModel::designArea(pimbaDesign(), banks);
    PimArea hbmpim = PimAreaModel::designArea(hbmPimDesign(), banks,
                                              /*stochastic=*/false);

    Table t({"Parameters", "Pimba", "HBM-PIM", "paper (Pimba/HBM-PIM)"});
    t.addRow({"Compute area (mm^2)", fmt(pimba.compute, 3),
              fmt(hbmpim.compute, 3), "0.053 / 0.042"});
    t.addRow({"Buffer area (mm^2)", fmt(pimba.buffer, 3),
              fmt(hbmpim.buffer, 3), "0.039 / 0.039"});
    t.addRow({"Total area (mm^2)", fmt(pimba.total(), 3),
              fmt(hbmpim.total(), 3), "0.092 / 0.081"});
    t.addRow({"Area overhead (%)",
              fmt(PimAreaModel::overheadPercent(pimba), 1),
              fmt(PimAreaModel::overheadPercent(hbmpim), 1),
              "13.4 / 11.8"});
    t.addRow({"Compute power (mW)",
              fmt(PimAreaModel::computePowerMw(pimba.compute,
                                               hbm.pimFreqHz()), 2),
              fmt(PimAreaModel::computePowerMw(hbmpim.compute,
                                               hbm.pimFreqHz()), 2),
              "8.29 / 6.03"});
    printf("%s", t.str().c_str());
    printf("\nPimba stays under the 25%% logic-ratio guideline while "
           "buying up to\n2.1x throughput over HBM-PIM for ~1.5%% more "
           "overhead (Section 6.2).\n");
    return 0;
}
