/**
 * @file
 * Software micro-benchmarks of the quantization substrate (google-
 * benchmark): codec and MX datapath throughput. These measure the
 * simulator's own hot loops, not the modeled hardware.
 */

#include <benchmark/benchmark.h>

#include <array>
#include <vector>

#include "core/lfsr.h"
#include "quant/format.h"
#include "quant/mx8.h"

namespace {

using namespace pimba;

std::array<double, kMxGroupSize>
randomGroup(uint32_t seed)
{
    Lfsr32 rng(seed);
    std::array<double, kMxGroupSize> v{};
    for (auto &x : v)
        x = rng.nextGaussian();
    return v;
}

void
BM_MxQuantize(benchmark::State &state)
{
    auto v = randomGroup(1);
    Lfsr16 lfsr(7);
    Rounding mode = state.range(0) ? Rounding::Stochastic
                                   : Rounding::Nearest;
    for (auto _ : state) {
        MxGroup g = mxQuantize(v.data(), mode, lfsr);
        benchmark::DoNotOptimize(g);
    }
    state.SetItemsProcessed(state.iterations() * kMxGroupSize);
}
BENCHMARK(BM_MxQuantize)->Arg(0)->Arg(1);

void
BM_MxMultiply(benchmark::State &state)
{
    Lfsr16 lfsr(7);
    auto a = randomGroup(1);
    auto b = randomGroup(2);
    MxGroup ga = mxQuantize(a.data(), Rounding::Nearest, lfsr);
    MxGroup gb = mxQuantize(b.data(), Rounding::Nearest, lfsr);
    for (auto _ : state) {
        MxGroup g = mxMultiply(ga, gb, Rounding::Nearest, lfsr);
        benchmark::DoNotOptimize(g);
    }
    state.SetItemsProcessed(state.iterations() * kMxGroupSize);
}
BENCHMARK(BM_MxMultiply);

void
BM_MxAdd(benchmark::State &state)
{
    Lfsr16 lfsr(7);
    auto a = randomGroup(3);
    auto b = randomGroup(4);
    MxGroup ga = mxQuantize(a.data(), Rounding::Nearest, lfsr);
    MxGroup gb = mxQuantize(b.data(), Rounding::Nearest, lfsr);
    for (auto _ : state) {
        MxGroup g = mxAdd(ga, gb, Rounding::Nearest, lfsr);
        benchmark::DoNotOptimize(g);
    }
    state.SetItemsProcessed(state.iterations() * kMxGroupSize);
}
BENCHMARK(BM_MxAdd);

void
BM_MxDotProduct(benchmark::State &state)
{
    Lfsr16 lfsr(7);
    auto a = randomGroup(5);
    auto b = randomGroup(6);
    MxGroup ga = mxQuantize(a.data(), Rounding::Nearest, lfsr);
    MxGroup gb = mxQuantize(b.data(), Rounding::Nearest, lfsr);
    for (auto _ : state)
        benchmark::DoNotOptimize(mxDotProduct(ga, gb));
    state.SetItemsProcessed(state.iterations() * kMxGroupSize);
}
BENCHMARK(BM_MxDotProduct);

void
BM_QuantizeSpan(benchmark::State &state)
{
    NumberFormat fmt = static_cast<NumberFormat>(state.range(0));
    Lfsr16 lfsr(9);
    Lfsr32 rng(11);
    std::vector<double> v(4096);
    for (auto &x : v)
        x = rng.nextGaussian();
    QuantSpec spec{fmt, Rounding::Nearest};
    for (auto _ : state) {
        std::vector<double> w = v;
        quantizeSpan(w.data(), w.size(), spec, lfsr);
        benchmark::DoNotOptimize(w.data());
    }
    state.SetItemsProcessed(state.iterations() * v.size());
    state.SetLabel(formatName(fmt));
}
BENCHMARK(BM_QuantizeSpan)
    ->Arg(static_cast<int>(NumberFormat::FP16))
    ->Arg(static_cast<int>(NumberFormat::INT8))
    ->Arg(static_cast<int>(NumberFormat::E4M3))
    ->Arg(static_cast<int>(NumberFormat::E5M2))
    ->Arg(static_cast<int>(NumberFormat::MX8));

} // namespace
