/**
 * @file
 * Figure 16 — generation throughput on the NVIDIA H100 platform:
 * HBM3-based PIM at a 2.626 GHz bus (657 MHz SPU), NVLink4 at
 * 900 GB/s. Paper anchors: Pimba keeps 1.8x over GPU and 1.3x over
 * GPU+PIM on average, mirroring the A100 trends.
 *
 * Thin wrapper over the scenario registry: prints exactly what
 * `pimba run scenarios/fig16_h100.json` prints (pinned by
 * tests/config/parity_test).
 */

#include <cstdio>

#include "config/runner.h"
#include "core/args.h"

using namespace pimba;

int
main(int argc, char **argv)
{
    bool smoke = false;
    ArgParser args("bench_fig16_h100",
                   "Figure 16: normalized generation throughput on the "
                   "H100/HBM3 platform (70B, 8 GPUs).");
    args.flag("--smoke", "CI-sized grid (2 models, 1 batch)", &smoke);
    if (!args.parse(argc, argv))
        return args.exitCode();

    ScenarioReport rep = runScenario(fig16Scenario(smoke));
    fputs(rep.renderText().c_str(), stdout);
    return 0;
}
