/**
 * @file
 * Figure 16 — generation throughput on the NVIDIA H100 platform:
 * HBM3-based PIM at a 2.626 GHz bus (657 MHz SPU), NVLink4 at
 * 900 GB/s. Paper anchors: Pimba keeps 1.8x over GPU and 1.3x over
 * GPU+PIM on average, mirroring the A100 trends.
 */

#include <cstdio>

#include "core/table.h"
#include "sim/serving_sim.h"

using namespace pimba;

int
main()
{
    printf("=== Figure 16: throughput on H100 (70B, 8 GPUs) ===\n");
    Accumulator vs_gpu, vs_pim;
    Table t({"model", "batch", "GPU", "GPU+Q", "GPU+PIM", "Pimba"});
    for (const auto &model : evaluationModels70b()) {
        for (int batch : {32, 64, 128}) {
            double base = 0.0, gpupim = 0.0, pimba = 0.0;
            std::vector<std::string> row = {model.name,
                                            std::to_string(batch)};
            for (SystemKind kind : mainSystems()) {
                ServingSimulator sim(
                    makeSystem(kind, 8, h100Config(), hbm3Config()));
                double thr = sim.generationThroughput(model, batch, 2048,
                                                      2048);
                if (kind == SystemKind::GPU)
                    base = thr;
                if (kind == SystemKind::GPU_PIM)
                    gpupim = thr;
                if (kind == SystemKind::PIMBA)
                    pimba = thr;
                row.push_back(fmt(thr / base, 2));
            }
            vs_gpu.add(pimba / base);
            vs_pim.add(pimba / gpupim);
            t.addRow(row);
        }
        fprintf(stderr, "  %s done\n", model.name.c_str());
    }
    printf("%s\n", t.str().c_str());
    printf("Pimba vs GPU:     avg %s (paper: 1.8x)\n",
           fmtRatio(vs_gpu.mean()).c_str());
    printf("Pimba vs GPU+PIM: avg %s (paper: 1.3x)\n",
           fmtRatio(vs_pim.mean()).c_str());
    return 0;
}
