/**
 * @file
 * Figure 12 — normalized generation throughput of GPU, GPU+Q, GPU+PIM
 * and Pimba across the six models, batch sizes {32, 64, 128}, at small
 * scale (2.7B/7B, one GPU) and large scale (70B, eight GPUs), with
 * (2048, 2048) input/output lengths.
 *
 * Paper anchors: Pimba averages 1.9x over GPU and 1.4x over GPU+PIM,
 * up to 4.1x / 2.1x; GPU+Q and GPU+PIM both average ~1.4x over GPU.
 */

#include <cstdio>

#include "core/stats.h"
#include "core/table.h"
#include "sim/serving_sim.h"

using namespace pimba;

namespace {

void
runScale(const std::vector<ModelConfig> &models, int n_gpus,
         const char *label, Accumulator &vs_gpu, Accumulator &vs_pim)
{
    printf("--- %s ---\n", label);
    Table t({"model", "batch", "GPU", "GPU+Q", "GPU+PIM", "Pimba"});
    for (const auto &model : models) {
        for (int batch : {32, 64, 128}) {
            double base = 0.0;
            std::vector<std::string> row = {model.name,
                                            std::to_string(batch)};
            double gpupim = 0.0, pimba = 0.0;
            for (SystemKind kind : mainSystems()) {
                ServingSimulator sim(makeSystem(kind, n_gpus));
                double thr = sim.generationThroughput(model, batch, 2048,
                                                      2048);
                if (kind == SystemKind::GPU)
                    base = thr;
                if (kind == SystemKind::GPU_PIM)
                    gpupim = thr;
                if (kind == SystemKind::PIMBA)
                    pimba = thr;
                row.push_back(fmt(thr / base, 2));
            }
            vs_gpu.add(pimba / base);
            vs_pim.add(pimba / gpupim);
            t.addRow(row);
        }
        fprintf(stderr, "  %s done\n", model.name.c_str());
    }
    printf("%s\n", t.str().c_str());
}

} // namespace

int
main()
{
    printf("=== Figure 12: normalized generation throughput ===\n");
    Accumulator vs_gpu, vs_pim;
    runScale(evaluationModels(), 1, "Small scale (2.7B, 7B) - 1x A100",
             vs_gpu, vs_pim);
    runScale(evaluationModels70b(), 8, "Large scale (70B) - 8x A100",
             vs_gpu, vs_pim);

    printf("Pimba vs GPU:     avg %s, max %s (paper: avg 1.9x, up to "
           "4.1x)\n",
           fmtRatio(vs_gpu.mean()).c_str(),
           fmtRatio(vs_gpu.max()).c_str());
    printf("Pimba vs GPU+PIM: avg %s, max %s (paper: avg 1.4x, up to "
           "2.1x)\n",
           fmtRatio(vs_pim.mean()).c_str(),
           fmtRatio(vs_pim.max()).c_str());
    return 0;
}
