/**
 * @file
 * Figure 12 — normalized generation throughput of GPU, GPU+Q, GPU+PIM
 * and Pimba across the six models, batch sizes {32, 64, 128}, at small
 * scale (2.7B/7B, one GPU) and large scale (70B, eight GPUs), with
 * (2048, 2048) input/output lengths.
 *
 * Paper anchors: Pimba averages 1.9x over GPU and 1.4x over GPU+PIM,
 * up to 4.1x / 2.1x; GPU+Q and GPU+PIM both average ~1.4x over GPU.
 *
 * Thin wrapper over the scenario registry: prints exactly what
 * `pimba run scenarios/fig12_throughput.json` prints (pinned by
 * tests/config/parity_test).
 */

#include <cstdio>

#include "config/runner.h"
#include "core/args.h"

using namespace pimba;

int
main(int argc, char **argv)
{
    bool smoke = false;
    ArgParser args("bench_fig12_throughput",
                   "Figure 12: normalized generation throughput across "
                   "systems, models, and batch sizes.");
    args.flag("--smoke", "CI-sized grid (2 models, 1 batch per scale)",
              &smoke);
    if (!args.parse(argc, argv))
        return args.exitCode();

    ScenarioReport rep = runScenario(fig12Scenario(smoke));
    fputs(rep.renderText().c_str(), stdout);
    return 0;
}
