/**
 * @file
 * Cluster-layer studies. Two parts:
 *
 * 1. Router shootout on a heterogeneous fleet (2x Pimba + 2x GPU,
 *    Mamba-2 2.7B) at a saturating arrival rate: round-robin splits the
 *    load evenly and drowns the slow GPU replicas, so the load-aware
 *    policies (join-shortest-queue, least-outstanding-tokens,
 *    power-of-two-choices) show strictly lower tail TTFT and a smaller
 *    token imbalance.
 *
 * 2. Prefill/decode disaggregation (DistServe-style) on a Pimba fleet:
 *    a colocated 4-replica fleet versus a 2 prefill + 2 decode split of
 *    the same hardware, with the cached KV/state block transfer riding
 *    an NVLink- or InfiniBand-class link and charged into TTFT. The
 *    table reports the transfer-inclusive TTFT against the colocated
 *    baseline plus the transfer overhead breakdown.
 *
 * 3. Execution-mode shootout on the colocated Pimba fleet: all-blocked
 *    vs all-overlapped (GPU<->PIM sub-batch pipelining on every
 *    replica) vs a mixed fleet (half blocked, half overlapped behind
 *    the load-aware router), at identical token production.
 *
 * `--smoke` shrinks the traces for CI.
 */

#include <cstdio>
#include <cstring>

#include "cluster/workload.h"
#include "core/table.h"

using namespace pimba;

namespace {

void
routerShootout(const ModelConfig &model, double rate, int num_requests)
{
    printf("--- Router shootout: 2x Pimba + 2x GPU, %s, %s req/s, "
           "%d requests ---\n",
           model.name.c_str(), fmt(rate, 0).c_str(), num_requests);
    std::vector<Request> trace = clusterTrace(rate, num_requests);
    Table t({"router", "goodput", "TTFT p50", "TTFT p95", "queue p95",
             "req imbal", "tok imbal"});
    for (RouterPolicy policy : allRouterPolicies()) {
        Fleet fleet(model, heterogeneousFleet(policy));
        FleetReport rep = fleet.run(trace);
        t.addRow({routerName(policy), fmt(rep.metrics.goodput, 2),
                  fmt(rep.metrics.ttft.p50, 3),
                  fmt(rep.metrics.ttft.p95, 3),
                  fmt(rep.metrics.queueing.p95, 3),
                  fmt(rep.load.requestImbalance, 3),
                  fmt(rep.load.tokenImbalance, 3)});
    }
    printf("%s\n", t.str().c_str());
}

void
disaggregationStudy(const ModelConfig &model, double rate,
                    int num_requests)
{
    printf("--- Prefill/decode disaggregation: 4x Pimba, %s, %s req/s, "
           "%d requests ---\n",
           model.name.c_str(), fmt(rate, 0).c_str(), num_requests);
    std::vector<Request> trace = clusterTrace(rate, num_requests);

    Table t({"fleet", "goodput", "TTFT p50", "TTFT p95", "TPOT p95",
             "xfer MB/req", "xfer p95 ms", "TTFT share"});

    FleetReport coloRep = Fleet(model, colocatedPimbaFleet()).run(trace);
    t.addRow({"colocated 4", fmt(coloRep.metrics.goodput, 2),
              fmt(coloRep.metrics.ttft.p50, 3),
              fmt(coloRep.metrics.ttft.p95, 3),
              fmt(coloRep.metrics.tpot.p95, 4), "-", "-", "-"});

    for (const LinkConfig &link : {nvlinkLink(), infinibandLink()}) {
        FleetReport rep =
            Fleet(model, disaggregatedPimbaFleet(link)).run(trace);
        double mbPerReq =
            rep.transfer.transfers > 0
                ? rep.transfer.totalBytes /
                      static_cast<double>(rep.transfer.transfers) / 1e6
                : 0.0;
        t.addRow({"2p+2d " + link.name, fmt(rep.metrics.goodput, 2),
                  fmt(rep.metrics.ttft.p50, 3),
                  fmt(rep.metrics.ttft.p95, 3),
                  fmt(rep.metrics.tpot.p95, 4), fmt(mbPerReq, 2),
                  fmt(rep.transfer.perTransfer.p95 * 1e3, 3),
                  fmtPercent(rep.transfer.meanTtftShare)});
    }
    printf("%s\n", t.str().c_str());
}

void
executionModeStudy(const ModelConfig &model, double rate,
                   int num_requests)
{
    printf("--- Execution modes: 4x Pimba colocated, %s, %s req/s, "
           "%d requests ---\n",
           model.name.c_str(), fmt(rate, 0).c_str(), num_requests);
    std::vector<Request> trace = clusterTrace(rate, num_requests);

    Table t({"fleet", "goodput", "TTFT p95", "TPOT p50", "TPOT p95",
             "tok/s"});
    auto addRow = [&](const char *label, const FleetConfig &cfg) {
        FleetReport rep = Fleet(model, cfg).run(trace);
        t.addRow({label, fmt(rep.metrics.goodput, 2),
                  fmt(rep.metrics.ttft.p95, 3),
                  fmt(rep.metrics.tpot.p50, 4),
                  fmt(rep.metrics.tpot.p95, 4),
                  fmt(rep.metrics.tokensPerSec, 1)});
    };
    addRow("blocked x4",
           colocatedPimbaFleet(4, ExecutionMode::Blocked));
    addRow("overlapped x4",
           colocatedPimbaFleet(4, ExecutionMode::Overlapped));
    addRow("mixed 2+2", mixedModePimbaFleet(4));
    printf("%s\n", t.str().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    const int requests = smoke ? 48 : 192;

    printf("=== Cluster serving sweep%s ===\n", smoke ? " (smoke)" : "");
    ModelConfig model = mamba2_2p7b();
    routerShootout(model, 48.0, requests);
    disaggregationStudy(model, 24.0, requests);
    executionModeStudy(model, 48.0, requests);
    return 0;
}
