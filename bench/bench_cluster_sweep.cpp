/**
 * @file
 * Cluster-layer studies, as three scenario-registry runs:
 *
 * 1. Router shootout on a heterogeneous fleet (2x Pimba + 2x GPU,
 *    Mamba-2 2.7B) at a saturating arrival rate: round-robin splits the
 *    load evenly and drowns the slow GPU replicas, so the load-aware
 *    policies (join-shortest-queue, least-outstanding-tokens,
 *    power-of-two-choices) show strictly lower tail TTFT and a smaller
 *    token imbalance.
 *
 * 2. Prefill/decode disaggregation (DistServe-style) on a Pimba fleet:
 *    a colocated 4-replica fleet versus a 2 prefill + 2 decode split of
 *    the same hardware, with the cached KV/state block transfer riding
 *    an NVLink- or InfiniBand-class link and charged into TTFT.
 *
 * 3. Execution-mode shootout on the colocated Pimba fleet: all-blocked
 *    vs all-overlapped (GPU<->PIM sub-batch pipelining on every
 *    replica) vs a mixed fleet (half blocked, half overlapped behind
 *    the load-aware router), at identical token production.
 *
 * Thin wrapper over the scenario registry; studies 1 and 2 also load
 * from scenarios/cluster_routers.json and
 * scenarios/cluster_disaggregation.json via `pimba run`. `--smoke`
 * shrinks the traces for CI.
 */

#include <cstdio>

#include "config/runner.h"
#include "core/args.h"

using namespace pimba;

int
main(int argc, char **argv)
{
    bool smoke = false;
    ArgParser args("bench_cluster_sweep",
                   "Cluster serving studies: router shootout, "
                   "prefill/decode disaggregation, execution modes.");
    args.flag("--smoke", "CI-sized traces", &smoke);
    if (!args.parse(argc, argv))
        return args.exitCode();

    printf("=== Cluster serving sweep%s ===\n\n",
           smoke ? " (smoke)" : "");
    for (const Scenario &sc :
         {routerShootoutScenario(smoke), disaggregationScenario(smoke),
          executionModeScenario(smoke)}) {
        ScenarioReport rep = runScenario(sc);
        fputs(rep.renderText().c_str(), stdout);
    }
    return 0;
}
