/**
 * @file
 * Figure 6 — accuracy–area tradeoff of the low-precision formats on
 * Mamba-2 with a per-bank pipelined PIM datapath (256-bit operands).
 * Paper shape: mx8(+SR) is Pareto-optimal — lowest area at fp16-level
 * perplexity; int8 pays dequant/requant area; fp8 is small but
 * inaccurate; fp16 sits far right.
 */

#include <cstdio>

#include "core/args.h"
#include "accuracy/evaluate.h"
#include "core/table.h"
#include "pim/area_model.h"

using namespace pimba;

int
main(int argc, char **argv)
{
    ArgParser args("bench_fig06_pareto",
                   "Figure 6: accuracy-area Pareto tradeoff of quantization formats.");
    if (!args.parse(argc, argv))
        return args.exitCode();

    printf("=== Figure 6: accuracy-area tradeoff (Mamba-2) ===\n");
    auto mamba = accuracyModels()[3];

    std::vector<QuantSpec> specs = figure4Specs();
    Table t({"format", "area overhead (%)", "perplexity"});
    for (const auto &s : specs) {
        bool sr = s.rnd == Rounding::Stochastic;
        PimArea area = PimAreaModel::designArea(
            PimStyle::PerBankPipelined, s.fmt, sr, 16);
        double ppl = evalPerplexity(mamba, s);
        t.addRow({s.name(), fmt(PimAreaModel::overheadPercent(area), 1),
                  fmt(ppl, 2)});
        fprintf(stderr, "  %s done\n", s.name().c_str());
    }
    printf("%s", t.str().c_str());
    printf("\nPareto front: mx8SR (lowest area at baseline-level "
           "perplexity).\nNote: our gate model places fp16 at ~33%% "
           "where the paper shows ~65%%\n(we keep consistency with "
           "Fig. 5(b)'s 32.4%%; see EXPERIMENTS.md).\n");
    return 0;
}
