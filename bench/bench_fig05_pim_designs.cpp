/**
 * @file
 * Figure 5 — (a) normalized state-update throughput of the GPU, the
 * per-bank time-multiplexed PIM and the per-bank pipelined PIM at
 * batch 128 (paper: 2.8x and 4.3x over GPU); (b) area overhead of the
 * two PIM designs (paper: 17.8% vs 32.4%).
 *
 * Both PIM designs here use fp16 state per Section 4.1 (quantization
 * enters in Section 4.2 / Fig. 6).
 */

#include <cstdio>

#include "core/args.h"
#include "core/table.h"
#include "pim/area_model.h"
#include "sim/serving_sim.h"

using namespace pimba;

namespace {

double
gpuStateUpdateTime(const ModelConfig &m, int batch)
{
    ServingSimulator gpu(makeSystem(SystemKind::GPU));
    return gpu.generationStep(m, batch, 1).latency.get("StateUpdate");
}

double
pimStateUpdateTime(const ModelConfig &m, int batch,
                   const PimDesign &design)
{
    PimComputeModel pim(hbm2eConfig(), design);
    StateUpdateShape shape{static_cast<uint64_t>(batch) * m.suHeads,
                           m.dimHead, m.dimState};
    double launch = a100Config().kernelLaunchOverhead;
    return (pim.stateUpdate(shape).seconds.value() + launch) *
           m.stateUpdateLayers();
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bench_fig05_pim_designs",
                   "Figure 5: state-update throughput and area of per-bank PIM designs.");
    if (!args.parse(argc, argv))
        return args.exitCode();

    printf("=== Figure 5(a): state-update throughput, batch 128 ===\n");
    Table t({"model", "GPU", "Time-multiplexed PIM", "Pipelined PIM"});
    const int batch = 128;
    for (const auto &m : evaluationModels()) {
        if (m.stateUpdateLayers() == 0)
            continue; // OPT has no state updates
        double gpu = gpuStateUpdateTime(m, batch);
        PimDesign tmx_design{"TimeMuxPerBank",
                             PimStyle::TimeMultiplexedPerBank,
                             NumberFormat::FP16, true, true};
        double tmx = pimStateUpdateTime(m, batch, tmx_design);
        double pipe = pimStateUpdateTime(
            m, batch, perBankPipelinedDesign(NumberFormat::FP16));
        t.addRow({m.name, "1.00", fmt(gpu / tmx, 2), fmt(gpu / pipe, 2)});
    }
    printf("%s", t.str().c_str());
    printf("(paper: time-multiplexed ~2.8x, pipelined ~4.3x)\n\n");

    printf("=== Figure 5(b): area overhead of per-bank designs ===\n");
    PimArea tmx = PimAreaModel::designArea(
        PimStyle::TimeMultiplexedPerBank, NumberFormat::FP16, false, 16);
    PimArea pipe = PimAreaModel::designArea(PimStyle::PerBankPipelined,
                                            NumberFormat::FP16, false,
                                            16);
    Table a({"design", "area overhead", "paper"});
    a.addRow({"Time-multiplexed PIM",
              fmt(PimAreaModel::overheadPercent(tmx), 1) + "%", "17.8%"});
    a.addRow({"Pipelined PIM",
              fmt(PimAreaModel::overheadPercent(pipe), 1) + "%",
              "32.4%"});
    printf("%s", a.str().c_str());
    printf("(>25%% breaches the deployability guideline; neither "
           "design offers both)\n");
    return 0;
}
