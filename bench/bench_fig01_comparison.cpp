/**
 * @file
 * Figure 1 — (a) 2.7B transformer vs Mamba-2: GPU memory, generation
 * throughput (paper: 2.3x less memory, 2.6x higher throughput);
 * (b) roofline positions of attention, state update and GEMM (paper:
 * state-update arithmetic intensity ~4x attention's, both memory
 * bound; GEMM compute bound at batch).
 */

#include <cstdio>

#include "core/args.h"
#include "core/table.h"
#include "sim/serving_sim.h"

using namespace pimba;

int
main(int argc, char **argv)
{
    ArgParser args("bench_fig01_comparison",
                   "Figure 1: Transformer vs Mamba-2 latency and the A100 roofline.");
    if (!args.parse(argc, argv))
        return args.exitCode();

    printf("=== Figure 1(a): Transformer vs Mamba-2 (2.7B, A100) ===\n");
    ServingSimulator gpu(makeSystem(SystemKind::GPU));
    ModelConfig tf = opt2p7b();
    ModelConfig mamba = mamba2_2p7b();
    // Batch/lengths chosen so the transformer's KV cache dominates the
    // way the paper's measurement does (Fig. 1(a) does not state them).
    const int batch = 32;
    const uint64_t in_len = 1024, out_len = 1024;

    auto mem_tf = gpu.memoryUsage(tf, batch, in_len + out_len / 2);
    auto mem_mb = gpu.memoryUsage(mamba, batch, in_len + out_len / 2);
    double thr_tf =
        gpu.generationThroughput(tf, batch, in_len, out_len).value();
    double thr_mb = gpu.generationThroughput(mamba, batch, in_len,
                                             out_len)
                        .value();

    Table t({"model", "memory (GB)", "throughput (wps)"});
    t.addRow({"Transformer", fmt(mem_tf.total().value() / 1e9, 1),
              fmt(thr_tf, 0)});
    t.addRow({"Mamba-2", fmt(mem_mb.total().value() / 1e9, 1), fmt(thr_mb, 0)});
    printf("%s", t.str().c_str());
    printf("memory ratio   %s (paper ~2.3x)\n",
           fmtRatio(mem_tf.total() / mem_mb.total()).c_str());
    printf("throughput ratio %s (paper ~2.6x)\n",
           fmtRatio(thr_mb / thr_tf).c_str());
    printf("accuracy: +4.5%% for Mamba-2, referenced from [15] in the "
           "paper (not measured here)\n\n");

    printf("=== Figure 1(b): Roofline (A100) ===\n");
    GpuKernelModel kern(a100Config());
    printf("ridge intensity: %.0f FLOP/byte\n", kern.ridgeIntensity());

    Table r({"operation", "intensity (FLOP/B)", "perf (TFLOPS)",
             "bound"});
    auto add_point = [&](const char *name, double flops, double bytes) {
        double ai = flops / bytes;
        double secs = kern.kernel(flops, bytes).seconds.value();
        double tflops = flops / secs / 1e12;
        r.addRow({name, fmt(ai, 2), fmt(tflops, 1),
                  ai < kern.ridgeIntensity() ? "memory" : "compute"});
    };
    // Attention (per token, batch of requests, seq 2048): 2 MACs per
    // fp16 KV element read.
    {
        auto ops = generationStepOps(tf, batch, 3072);
        double f = 0, b = 0;
        for (const auto &op : ops)
            if (op.cls == OpClass::Attention) {
                f += op.flops;
                b += op.memBytes.value();
            }
        add_point("Attention", f, b);
    }
    // State update (Mamba-2): ~6 FLOPs per state value, read+write.
    {
        auto ops = generationStepOps(mamba, batch, 3072);
        double f = 0, b = 0;
        for (const auto &op : ops)
            if (op.cls == OpClass::StateUpdate) {
                f += op.flops;
                b += op.memBytes.value();
            }
        add_point("StateUpdate", f, b);
    }
    // Decode GEMMs at this batch.
    {
        auto ops = generationStepOps(tf, batch, 3072);
        double f = 0, b = 0;
        for (const auto &op : ops)
            if (op.cls == OpClass::GEMM) {
                f += op.flops;
                b += op.memBytes.value();
            }
        add_point("GEMM (b=64)", f, b);
    }
    {
        auto ops = generationStepOps(tf, 2048, 3072);
        double f = 0, b = 0;
        for (const auto &op : ops)
            if (op.cls == OpClass::GEMM) {
                f += op.flops;
                b += op.memBytes.value();
            }
        add_point("GEMM (b=2048)", f, b);
    }
    printf("%s", r.str().c_str());
    return 0;
}
