/**
 * @file
 * Figure 15 — Pimba vs the NeuPIMs-like baseline on Zamba2-70B, batch
 * 128, (1024, 1024) lengths: per-token latency and memory usage as the
 * generated output grows. Paper shape: Pimba's latency stays below
 * NeuPIMs' with similar scaling, and its memory footprint is smaller
 * (MX8 state and KV vs fp16).
 */

#include <cstdio>

#include "core/table.h"
#include "sim/serving_sim.h"

using namespace pimba;

int
main()
{
    printf("=== Figure 15: Pimba vs NeuPIMs (Zamba2-70B, b=128) ===\n");
    ModelConfig model = scaleModel(zamba2_7b(), 70e9);
    model.name = "Zamba2";
    ServingSimulator pimba(makeSystem(SystemKind::PIMBA, 8));
    ServingSimulator neupims(makeSystem(SystemKind::NEUPIMS, 8));

    Table t({"out tokens", "NeuPIMs lat (ms)", "Pimba lat (ms)",
             "NeuPIMs mem (GB)", "Pimba mem (GB)"});
    const uint64_t input_len = 1024;
    for (uint64_t out : {1ull, 256ull, 512ull, 768ull, 1024ull}) {
        uint64_t seq = input_len + out;
        auto pl = pimba.generationStep(model, 128, seq);
        auto nl = neupims.generationStep(model, 128, seq);
        auto pm = pimba.memoryUsage(model, 128, seq);
        auto nm = neupims.memoryUsage(model, 128, seq);
        t.addRow({std::to_string(out), fmt(nl.seconds * 1e3, 2),
                  fmt(pl.seconds * 1e3, 2), fmt(nm.total() / 1e9, 1),
                  fmt(pm.total() / 1e9, 1)});
    }
    printf("%s", t.str().c_str());
    printf("\nPimba offloads the state updates NeuPIMs leaves on the "
           "GPU and stores\nstate+KV in MX8, so both curves sit below "
           "NeuPIMs' at every length.\n");
    return 0;
}
