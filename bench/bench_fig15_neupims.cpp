/**
 * @file
 * Figure 15 — Pimba vs the NeuPIMs-like baseline on Zamba2-70B, batch
 * 128, (1024, 1024) lengths: per-token latency and memory usage as the
 * generated output grows, under both execution modes. Paper shape:
 * Pimba's latency stays below NeuPIMs' with similar scaling, and its
 * memory footprint is smaller (MX8 state and KV vs fp16). The
 * overlapped columns add the NeuPIMs-style sub-batch pipeline the
 * figure compares against: GPU phases of one sub-batch hide the other
 * sub-batch's PIM phases, so both systems drop below their blocked
 * latency at identical energy.
 */

#include <cstdio>

#include "core/args.h"
#include "core/table.h"
#include "sim/serving_sim.h"

using namespace pimba;

namespace {

ServingSimulator
makeSim(SystemKind kind, ExecutionMode mode)
{
    SystemConfig cfg = makeSystem(kind, 8);
    cfg.executionMode = mode;
    return ServingSimulator(cfg);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bench_fig15_neupims",
                   "Figure 15: Pimba vs NeuPIMs latency/memory under both execution modes.");
    if (!args.parse(argc, argv))
        return args.exitCode();

    printf("=== Figure 15: Pimba vs NeuPIMs (Zamba2-70B, b=128) ===\n");
    ModelConfig model = scaleModel(zamba2_7b(), 70e9);
    model.name = "Zamba2";
    const uint64_t input_len = 1024;

    for (ExecutionMode mode : {ExecutionMode::Blocked,
                               ExecutionMode::Overlapped}) {
        ServingSimulator pimba = makeSim(SystemKind::PIMBA, mode);
        ServingSimulator neupims = makeSim(SystemKind::NEUPIMS, mode);
        Table t({"out tokens", "NeuPIMs lat (ms)", "Pimba lat (ms)",
                 "NeuPIMs mem (GB)", "Pimba mem (GB)"});
        for (uint64_t out : {1ull, 256ull, 512ull, 768ull, 1024ull}) {
            uint64_t seq = input_len + out;
            auto pl = pimba.generationStep(model, 128, seq);
            auto nl = neupims.generationStep(model, 128, seq);
            auto pm = pimba.memoryUsage(model, 128, seq);
            auto nm = neupims.memoryUsage(model, 128, seq);
            t.addRow({std::to_string(out),
                      fmt(nl.seconds.value() * 1e3, 2),
                      fmt(pl.seconds.value() * 1e3, 2),
                      fmt(nm.total().value() / 1e9, 1),
                      fmt(pm.total().value() / 1e9, 1)});
        }
        printf("--- %s execution ---\n%s",
               executionModeName(mode).c_str(), t.str().c_str());
    }

    // The mode comparison the test suite pins: overlapped < blocked at
    // identical energy on both PIM-attention systems.
    Table cmp({"system", "blocked (ms)", "overlapped (ms)", "speedup",
               "energy blk (J)", "energy ovl (J)"});
    for (SystemKind kind : {SystemKind::NEUPIMS, SystemKind::PIMBA}) {
        auto blk = makeSim(kind, ExecutionMode::Blocked)
                       .generationStep(model, 128, input_len + 512);
        auto ovl = makeSim(kind, ExecutionMode::Overlapped)
                       .generationStep(model, 128, input_len + 512);
        cmp.addRow({systemName(kind),
                    fmt(blk.seconds.value() * 1e3, 2),
                    fmt(ovl.seconds.value() * 1e3, 2),
                    fmt(blk.seconds / ovl.seconds, 2),
                    fmt(blk.energy.total(), 2),
                    fmt(ovl.energy.total(), 2)});
    }
    printf("--- blocked vs overlapped at out=512 ---\n%s",
           cmp.str().c_str());

    printf("\nPimba offloads the state updates NeuPIMs leaves on the "
           "GPU and stores\nstate+KV in MX8, so both curves sit below "
           "NeuPIMs' at every length;\noverlapping the two sub-batches "
           "hides PIM time behind GPU time at\nno energy cost.\n");
    return 0;
}
