/**
 * @file
 * Table 2 — per-task accuracy of the GPU baseline (fp64/fp16 state)
 * versus Pimba (MX8 + stochastic rounding state). Paper anchor: the
 * geomean difference stays within a few tenths of a point.
 */

#include <cstdio>

#include "core/args.h"
#include "accuracy/evaluate.h"
#include "core/table.h"

using namespace pimba;

int
main(int argc, char **argv)
{
    ArgParser args("bench_table2_accuracy",
                   "Table 2: accuracy of GPU fp16 vs Pimba MX8-SR state.");
    if (!args.parse(argc, argv))
        return args.exitCode();

    printf("=== Table 2: accuracy, GPU vs Pimba (MX8-SR state) ===\n");
    printf("(synthetic task stand-ins; see DESIGN.md)\n\n");

    QuantSpec gpu_spec{};
    QuantSpec pimba_spec{NumberFormat::MX8, Rounding::Stochastic};
    auto tasks = accuracyTasks();

    std::vector<std::string> header = {"model", "method", "ppl"};
    for (const auto &task : tasks)
        header.push_back(task.name);
    header.push_back("Geomean");
    Table t(header);

    for (const auto &model : accuracyModels()) {
        for (bool pimba : {false, true}) {
            const QuantSpec &spec = pimba ? pimba_spec : gpu_spec;
            std::vector<std::string> row = {model.name,
                                            pimba ? "Pimba" : "GPU"};
            row.push_back(fmt(evalPerplexity(model, spec), 2));
            std::vector<double> accs;
            for (const auto &task : tasks) {
                double acc = evalTaskAccuracy(model, task, spec);
                accs.push_back(acc);
                row.push_back(fmt(acc, 1));
            }
            row.push_back(fmt(geomean(accs), 1));
            t.addRow(row);
        }
        fprintf(stderr, "  %s done\n", model.name.c_str());
    }
    printf("%s", t.str().c_str());
    printf("\nExpected shape: per-model GPU and Pimba rows agree to "
           "within a few\npoints on every task (MX8-SR state is "
           "near-lossless).\n");
    return 0;
}
