/**
 * @file
 * Figure 14 — normalized energy breakdown of the large-scale models at
 * batch 128 (generation). Paper anchors: Pimba consumes 2.2x less
 * energy than GPU and 1.3x less than GPU+PIM on average.
 */

#include <cstdio>

#include "core/args.h"
#include "core/table.h"
#include "sim/serving_sim.h"

using namespace pimba;

int
main(int argc, char **argv)
{
    ArgParser args("bench_fig14_energy",
                   "Figure 14: energy breakdown at 70B, batch 128.");
    if (!args.parse(argc, argv))
        return args.exitCode();

    printf("=== Figure 14: energy breakdown, 70B, batch 128 ===\n");
    const char *cats[] = {"State update (I/O)", "State update (Compute)",
                          "Attention (I/O)", "Attention (Compute)",
                          "GEMM", "Others"};
    Accumulator vs_gpu, vs_pim;

    Table t({"model", "system", "total(J)", "SU I/O", "SU Comp",
             "Attn I/O", "Attn Comp", "GEMM", "Others"});
    for (const auto &model : evaluationModels70b()) {
        double base = 0.0, gpupim = 0.0, pimba = 0.0;
        for (SystemKind kind : mainSystems()) {
            ServingSimulator sim(makeSystem(kind, 8));
            auto step = sim.generationStep(model, 128, 3072);
            double total = step.energy.total();
            if (kind == SystemKind::GPU)
                base = total;
            if (kind == SystemKind::GPU_PIM)
                gpupim = total;
            if (kind == SystemKind::PIMBA)
                pimba = total;
            std::vector<std::string> row = {model.name, systemName(kind),
                                            fmt(total, 3)};
            for (const char *c : cats)
                row.push_back(fmt(step.energy.get(c) / base, 3));
            t.addRow(row);
        }
        vs_gpu.add(base / pimba);
        vs_pim.add(gpupim / pimba);
        fprintf(stderr, "  %s done\n", model.name.c_str());
    }
    printf("%s\n", t.str().c_str());
    printf("Pimba energy advantage: %s vs GPU (paper: 2.2x), %s vs "
           "GPU+PIM (paper: 1.3x)\n",
           fmtRatio(vs_gpu.mean()).c_str(),
           fmtRatio(vs_pim.mean()).c_str());
    return 0;
}
