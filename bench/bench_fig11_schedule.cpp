/**
 * @file
 * Figure 11 — command-scheduling timeline of one state-update pass:
 * REG_WRITEs overlap the tFAW gaps between ACT4s, COMPs stream at
 * tCCD_L, and RESULT_READ overlaps the PRECHARGES tRP window.
 */

#include <cstdio>

#include "core/args.h"
#include "dram/pim_scheduler.h"

using namespace pimba;

int
main(int argc, char **argv)
{
    ArgParser args("bench_fig11_schedule",
                   "Figure 11: PIM command schedule for one state-update pass.");
    if (!args.parse(argc, argv))
        return args.exitCode();

    printf("=== Figure 11: PIM command schedule (one pass) ===\n");
    HbmConfig cfg = hbm2eConfig();
    PimCommandScheduler sched(cfg, /*keep_trace=*/true);

    // One pass: 4 ACT4s (16 banks), 8 REG_WRITEs, 16 COMPs,
    // PRECHARGES, 2 RESULT_READs.
    int regs = 8;
    int issued = 0;
    for (int a = 0; a < 4; ++a) {
        sched.issueAct4();
        while (issued < (a + 1) * 2) {
            sched.issueRegWrite();
            ++issued;
        }
    }
    for (int c = 0; c < 16; ++c)
        sched.issueComp();
    sched.issuePrecharges();
    for (int r = 0; r < 2; ++r)
        sched.issueResultRead();
    (void)regs;

    printf("%-6s %-12s\n", "cycle", "command");
    printf("--------------------\n");
    for (const auto &rec : sched.trace())
        printf("%-6llu %-12s\n",
               static_cast<unsigned long long>(rec.cycle.value()),
               commandName(rec.cmd).c_str());

    printf("\ntFAW=%d keeps ACT4s %d cycles apart; REG_WRITEs fill the "
           "gaps.\nCOMPs stream every tCCD_L=%d cycles.\nRESULT_READs "
           "issue inside the tRP=%d window after PRECHARGES.\n",
           cfg.timing.tFAW, cfg.timing.tFAW, cfg.timing.tCCD_L,
           cfg.timing.tRP);
    printf("finish cycle: %llu (%.1f ns)\n",
           static_cast<unsigned long long>(sched.finishCycle().value()),
           sched.finishSeconds() * 1e9);
    return 0;
}
