/**
 * @file
 * Figure 4 — perplexity of SU-LLMs and transformer LLMs with the state
 * (resp. KV cache) quantized to each 8-bit format, with and without
 * stochastic rounding. Paper shape: fp8 formats blow up on SU-LLMs
 * (swamping), SR substantially recovers them, int8/MX8 track fp16, and
 * the transformer is insensitive to every format.
 */

#include <cstdio>

#include "core/args.h"
#include "accuracy/evaluate.h"
#include "core/table.h"

using namespace pimba;

int
main(int argc, char **argv)
{
    ArgParser args("bench_fig04_quant_ppl",
                   "Figure 4: perplexity under 8-bit state/KV quantization formats.");
    if (!args.parse(argc, argv))
        return args.exitCode();

    printf("=== Figure 4: perplexity under 8-bit state/KV formats ===\n");
    printf("(synthetic WikiText-2 stand-in; see DESIGN.md for the "
           "substitution)\n\n");

    auto specs = figure4Specs();
    std::vector<std::string> header = {"model"};
    for (const auto &s : specs)
        header.push_back(s.name());
    Table t(header);

    for (const auto &model : accuracyModels()) {
        std::vector<std::string> row = {model.name};
        for (const auto &s : specs)
            row.push_back(fmt(evalPerplexity(model, s), 2));
        t.addRow(row);
        fprintf(stderr, "  %s done\n", model.name.c_str());
    }
    printf("%s", t.str().c_str());
    printf("\nExpected shape: e4m3/e5m2 columns elevated for the four "
           "SU-LLMs,\nSR variants recover much of the loss, int8/mx8 "
           "track fp16, OPT flat.\n");
    return 0;
}
