/**
 * @file
 * Event-tracer tests: trace-event structure (metadata first, globally
 * monotonic timestamps, nested B/E lanes), and the engine integration
 * — a traced run must emit the full request lifecycle and phase lanes
 * while leaving the simulated report bit-identical to an untraced run
 * (the zero-perturbation contract CI's trace-smoke job re-checks on
 * whole presets).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/tracer.h"
#include "serving/engine.h"
#include "serving/trace.h"

namespace pimba {
namespace {

/// Occurrences of @p needle in @p hay.
size_t
countOf(const std::string &hay, const std::string &needle)
{
    size_t n = 0;
    for (size_t at = hay.find(needle); at != std::string::npos;
         at = hay.find(needle, at + needle.size()))
        ++n;
    return n;
}

TEST(Tracer, RenderEmitsMetadataFirstAndSortsEventsByTimestamp)
{
    Tracer t;
    // Record deliberately out of timestamp order.
    t.complete(1, kTraceIterTid, Seconds(0.002), Seconds(0.001), "late",
               "iteration");
    t.processName(1, "engine under test");
    t.threadName(1, kTraceIterTid, "iterations");
    t.complete(1, kTraceIterTid, Seconds(0.001), Seconds(0.001),
               "early", "iteration");
    EXPECT_EQ(t.eventCount(), 2u); // metadata not counted

    std::string json = t.renderJson();
    EXPECT_LT(json.find("process_name"), json.find("\"late\""));
    EXPECT_LT(json.find("thread_name"), json.find("\"late\""));
    // Sorted: the 1000 us event precedes the 2000 us one.
    EXPECT_LT(json.find("\"early\""), json.find("\"late\""));
}

TEST(Tracer, BeginEndInstantCounterRenderTheirPhases)
{
    Tracer t;
    t.begin(3, requestLane(7), Seconds(0.5), "req 7", "request",
            {{"input_len", 64.0}});
    t.instant(3, requestLane(7), Seconds(0.75), "admitted", "request");
    t.counter(3, Seconds(0.8), "queue depth", 5.0);
    t.end(3, requestLane(7), Seconds(1.0));

    std::string json = t.renderJson();
    EXPECT_EQ(countOf(json, "\"ph\":\"B\""), 1u);
    EXPECT_EQ(countOf(json, "\"ph\":\"E\""), 1u);
    EXPECT_EQ(countOf(json, "\"ph\":\"i\""), 1u);
    EXPECT_EQ(countOf(json, "\"ph\":\"C\""), 1u);
    // Instants carry thread scope; counters carry their value arg.
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(json.find("\"value\":5"), std::string::npos);
    EXPECT_NE(json.find("\"input_len\":64"), std::string::npos);
}

TraceConfig
tracedTrace()
{
    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Poisson;
    tc.ratePerSec = 16.0;
    tc.numRequests = 24;
    tc.inputLen = 128;
    tc.outputLen = 16;
    tc.seed = 99;
    return tc;
}

TEST(TracerEngine, TracedRunEmitsLifecycleAndPhaseLanes)
{
    auto trace = generateTrace(tracedTrace());
    ServingSimulator sim(makeSystem(SystemKind::PIMBA));
    ServingEngine engine(sim, mamba2_2p7b(), {});

    Tracer tracer;
    EngineObservers eo;
    eo.tracer = &tracer;
    eo.pid = 1;
    engine.attachObservers(eo);
    ServingReport rep = engine.run(trace);
    ASSERT_EQ(rep.completed.size(), trace.size());

    std::string json = tracer.renderJson();
    // One lifecycle lane per request, opened and closed.
    EXPECT_EQ(countOf(json, "\"ph\":\"B\""), trace.size());
    EXPECT_EQ(countOf(json, "\"ph\":\"E\""), trace.size());
    // Every request is admitted and produces a first token.
    EXPECT_EQ(countOf(json, "\"admitted\""), trace.size());
    EXPECT_EQ(countOf(json, "\"first token\""), trace.size());
    // Iteration slices cover the run (cat "iteration", one per engine
    // iteration); phase lanes are populated (the Pimba system does SSM
    // state update on PIM, so both gpu and pim lanes carry slices).
    EXPECT_EQ(countOf(json, "\"iteration\""),
              static_cast<size_t>(rep.iterations));
    EXPECT_NE(json.find("\"name\":\"gpu\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"pim\""), std::string::npos);
    EXPECT_GE(countOf(json, "\"cat\":\"gpu\""), 1u);
    EXPECT_GE(countOf(json, "\"cat\":\"pim\""), 1u);
}

TEST(TracerEngine, TracingDoesNotPerturbTheReport)
{
    auto trace = generateTrace(tracedTrace());

    ServingSimulator plainSim(makeSystem(SystemKind::PIMBA));
    ServingEngine plain(plainSim, mamba2_2p7b(), {});
    ServingReport a = plain.run(trace);

    ServingSimulator tracedSim(makeSystem(SystemKind::PIMBA));
    ServingEngine traced(tracedSim, mamba2_2p7b(), {});
    Tracer tracer;
    EngineObservers eo;
    eo.tracer = &tracer;
    traced.attachObservers(eo);
    ServingReport b = traced.run(trace);

    EXPECT_GT(tracer.eventCount(), 0u);
    EXPECT_DOUBLE_EQ(a.makespan.value(), b.makespan.value());
    EXPECT_EQ(a.iterations, b.iterations);
    ASSERT_EQ(a.completed.size(), b.completed.size());
    for (size_t i = 0; i < a.completed.size(); ++i) {
        EXPECT_EQ(a.completed[i].req.id, b.completed[i].req.id);
        EXPECT_DOUBLE_EQ(a.completed[i].ttft.value(),
                         b.completed[i].ttft.value());
        EXPECT_DOUBLE_EQ(a.completed[i].tpot.value(),
                         b.completed[i].tpot.value());
        EXPECT_DOUBLE_EQ(a.completed[i].latency.value(),
                         b.completed[i].latency.value());
    }
}

} // namespace
} // namespace pimba
