/**
 * @file
 * Timeline-sampler tests: per-track cadence gating, unconditional
 * record(), and both render formats (the CSV header contract
 * tools/plotting depends on, and JSON parseability by shape).
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/timeline.h"

namespace pimba {
namespace {

TEST(TimelineSampler, CadenceGatesPerTrack)
{
    TimelineSampler tl(Seconds(0.1));
    int a = tl.registerTrack("replica A");
    int b = tl.registerTrack("replica B");
    ASSERT_NE(a, b);

    // Offer track A samples every 10 ms over one second: only every
    // 100 ms one may land.
    for (int i = 0; i <= 100; ++i)
        tl.sample(a, Seconds(0.01 * i), 1, 10, 1, 0.5);
    // Track B's cadence is independent of A's.
    tl.sample(b, Seconds(0.005), 2, 20, 2, 0.25);

    size_t a_rows = 0, b_rows = 0;
    for (const TimelineRow &r : tl.rows())
        (r.track == a ? a_rows : b_rows) += 1;
    EXPECT_EQ(b_rows, 1u);
    EXPECT_GE(a_rows, 10u);
    EXPECT_LE(a_rows, 11u);

    // Samples inside the holdoff were dropped, not queued.
    Seconds prev(-1.0);
    for (const TimelineRow &r : tl.rows()) {
        if (r.track != a)
            continue;
        if (prev >= Seconds(0.0))
            EXPECT_GE((r.time - prev).value(), 0.1 - 1e-12);
        prev = r.time;
    }
}

TEST(TimelineSampler, RecordBypassesTheCadence)
{
    TimelineSampler tl(Seconds(10.0));
    int t = tl.registerTrack("engine");
    tl.sample(t, Seconds(0.0), 1, 1, 1, 0.1);
    tl.sample(t, Seconds(1.0), 2, 2, 2, 0.2); // gated away
    tl.record(t, Seconds(1.5), 3, 3, 3, 0.3); // forced (run-final)
    ASSERT_EQ(tl.rows().size(), 2u);
    EXPECT_EQ(tl.rows().back().queueDepth, 3u);
    EXPECT_DOUBLE_EQ(tl.rows().back().blockUtil, 0.3);
}

TEST(TimelineSampler, NonPositiveIntervalRecordsEveryOffer)
{
    TimelineSampler tl(Seconds(0.0));
    int t = tl.registerTrack("dense");
    for (int i = 0; i < 5; ++i)
        tl.sample(t, Seconds(0.001 * i), 1, 1, 1, 0.0);
    EXPECT_EQ(tl.rows().size(), 5u);
}

TEST(TimelineSampler, CsvHasHeaderAndEscapesLabelCommas)
{
    TimelineSampler tl(Seconds(0.0));
    int t = tl.registerTrack("replica 0 (Pimba x1, prefill)");
    tl.sample(t, Seconds(0.25), 4, 128, 3, 0.75);

    std::string csv = tl.renderCsv();
    EXPECT_EQ(csv.find("time_s,track,label,queue_depth,"
                       "outstanding_tokens,running,block_util"),
              0u);
    // The label's comma must not add a CSV column.
    EXPECT_NE(csv.find("(Pimba x1; prefill)"), std::string::npos);
    EXPECT_NE(csv.find("0.25"), std::string::npos);
    EXPECT_NE(csv.find(",4,128,3,"), std::string::npos);
}

TEST(TimelineSampler, JsonCarriesTrackLabelsAndValues)
{
    TimelineSampler tl(Seconds(0.0));
    int t = tl.registerTrack("engine");
    tl.sample(t, Seconds(1.5), 7, 256, 5, 0.5);
    std::string json = tl.renderJson();
    EXPECT_NE(json.find("\"label\""), std::string::npos);
    EXPECT_NE(json.find("engine"), std::string::npos);
    EXPECT_NE(json.find("256"), std::string::npos);
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), '\n');
}

} // namespace
} // namespace pimba
