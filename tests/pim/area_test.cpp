/**
 * @file
 * Tests of the area/power model against the paper's published numbers
 * (Table 3, Fig. 5(b), Fig. 6 ordering).
 */

#include <gtest/gtest.h>

#include "pim/area_model.h"

namespace pimba {
namespace {

TEST(AreaModel, Table3PimbaAnchors)
{
    PimArea a = PimAreaModel::designArea(pimbaDesign(), 16);
    EXPECT_NEAR(a.compute, 0.053, 0.004);
    EXPECT_NEAR(a.buffer, 0.039, 1e-9);
    EXPECT_NEAR(a.total(), 0.092, 0.004);
    EXPECT_NEAR(PimAreaModel::overheadPercent(a), 13.4, 0.6);
}

TEST(AreaModel, Table3HbmPimAnchors)
{
    PimArea a = PimAreaModel::designArea(hbmPimDesign(), 16, false);
    EXPECT_NEAR(a.compute, 0.042, 0.003);
    EXPECT_NEAR(a.total(), 0.081, 0.003);
    EXPECT_NEAR(PimAreaModel::overheadPercent(a), 11.8, 0.5);
}

TEST(AreaModel, Fig5bPerBankDesigns)
{
    PimArea tm = PimAreaModel::designArea(PimStyle::TimeMultiplexed,
                                          NumberFormat::FP16, false, 16);
    PimArea pipe = PimAreaModel::designArea(PimStyle::PerBankPipelined,
                                            NumberFormat::FP16, false,
                                            16);
    EXPECT_NEAR(PimAreaModel::overheadPercent(tm), 17.8, 0.8);
    EXPECT_NEAR(PimAreaModel::overheadPercent(pipe), 32.4, 0.8);
    // The pipelined design exceeds the 25% deployability guideline;
    // the time-multiplexed one does not (Section 4.1).
    EXPECT_GT(PimAreaModel::overheadPercent(pipe), 25.0);
    EXPECT_LT(PimAreaModel::overheadPercent(tm), 25.0);
}

TEST(AreaModel, PimbaUnderDeployabilityBound)
{
    PimArea a = PimAreaModel::designArea(pimbaDesign(), 16);
    EXPECT_LT(PimAreaModel::overheadPercent(a), 25.0);
}

TEST(AreaModel, Figure6FormatOrdering)
{
    // mx8 < e5m2 < e4m3 < int8 < fp16 for the pipelined datapath.
    auto ovh = [](NumberFormat fmt) {
        return PimAreaModel::overheadPercent(PimAreaModel::designArea(
            PimStyle::PerBankPipelined, fmt, false, 16));
    };
    double mx8 = ovh(NumberFormat::MX8);
    double e5m2 = ovh(NumberFormat::E5M2);
    double e4m3 = ovh(NumberFormat::E4M3);
    double int8 = ovh(NumberFormat::INT8);
    double fp16 = ovh(NumberFormat::FP16);
    EXPECT_LT(mx8, e5m2);
    EXPECT_LT(e5m2, e4m3);
    EXPECT_LT(e4m3, int8);
    EXPECT_LT(int8, fp16);
    EXPECT_NEAR(mx8, 19.0, 1.0);
}

TEST(AreaModel, StochasticRoundingIsCheap)
{
    // Section 4.2: SR needs only an LFSR and small adders.
    PimArea rn = PimAreaModel::designArea(PimStyle::PerBankPipelined,
                                          NumberFormat::MX8, false, 16);
    PimArea sr = PimAreaModel::designArea(PimStyle::PerBankPipelined,
                                          NumberFormat::MX8, true, 16);
    double delta = PimAreaModel::overheadPercent(sr) -
                   PimAreaModel::overheadPercent(rn);
    EXPECT_GT(delta, 0.0);
    EXPECT_LT(delta, 1.0);
}

TEST(AreaModel, InterleavingCostsLessThanDoubling)
{
    // One interleaved SPU (two banks) must be far cheaper than two
    // per-bank pipelined units — that is the whole point of Pimba.
    PimArea shared = PimAreaModel::designArea(
        PimStyle::PimbaInterleaved, NumberFormat::MX8, false, 8);
    PimArea perbank = PimAreaModel::designArea(
        PimStyle::PerBankPipelined, NumberFormat::MX8, false, 16);
    EXPECT_LT(shared.compute, 0.65 * perbank.compute);
}

TEST(AreaModel, PowerAnchors)
{
    // Table 3: 8.2908 mW (Pimba) vs 6.028 mW (HBM-PIM) at 378 MHz.
    PimArea pimba = PimAreaModel::designArea(pimbaDesign(), 16);
    PimArea hbmpim = PimAreaModel::designArea(hbmPimDesign(), 16, false);
    double p = PimAreaModel::computePowerMw(pimba.compute, 378e6);
    double h = PimAreaModel::computePowerMw(hbmpim.compute, 378e6);
    EXPECT_NEAR(p, 8.29, 0.6);
    EXPECT_NEAR(h, 6.03, 0.7);
    EXPECT_GT(p, h);
}

TEST(AreaModel, GateCountMonotonicity)
{
    // Component model sanity: wider units cost more.
    EXPECT_GT(PimAreaModel::intMultGates(8, 8),
              PimAreaModel::intMultGates(6, 6));
    EXPECT_GT(PimAreaModel::intAddGates(16), PimAreaModel::intAddGates(8));
    EXPECT_GT(PimAreaModel::fpMultGates(5, 10),
              PimAreaModel::fpMultGates(4, 3));
    EXPECT_GT(PimAreaModel::fpAddGates(5, 10),
              PimAreaModel::fpAddGates(5, 2));
}

TEST(AreaModel, LaneGateOrderingMatchesFormats)
{
    // The gate model justifies the calibrated table: fp16 lanes dwarf
    // MX8 lanes; int8 adds dequant/requant on top of 8-bit multipliers.
    double mx8 = PimAreaModel::laneGates(NumberFormat::MX8);
    double fp16 = PimAreaModel::laneGates(NumberFormat::FP16);
    double int8 = PimAreaModel::laneGates(NumberFormat::INT8);
    EXPECT_GT(fp16, 2.0 * mx8);
    EXPECT_GT(int8, mx8);
}

TEST(AreaModel, LanesPerColumn)
{
    EXPECT_EQ(PimAreaModel::lanesPerColumn(NumberFormat::MX8), 32);
    EXPECT_EQ(PimAreaModel::lanesPerColumn(NumberFormat::FP16), 16);
    EXPECT_EQ(PimAreaModel::lanesPerColumn(NumberFormat::E4M3), 32);
}

TEST(AreaModel, Int8GroupLogicChargesMaxSearch)
{
    EXPECT_GT(PimAreaModel::groupGates(NumberFormat::INT8),
              PimAreaModel::groupGates(NumberFormat::MX8));
    EXPECT_EQ(PimAreaModel::groupGates(NumberFormat::FP16), 0.0);
}

} // namespace
} // namespace pimba
