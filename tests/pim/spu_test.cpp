/**
 * @file
 * Tests of the SPU pipeline occupancy model (Section 5.2, Fig. 8) and
 * the bit-accurate SPE datapath.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "pim/spu.h"

namespace pimba {
namespace {

TEST(SpuPipeline, InterleavedIsHazardFree)
{
    auto res = simulateSpuPipeline(PimStyle::PimbaInterleaved, 1000);
    EXPECT_EQ(res.bankConflicts, 0u);
    EXPECT_EQ(res.itemsProcessed, 1000u);
}

TEST(SpuPipeline, InterleavedSustainsOnePerIteration)
{
    // The core claim of access interleaving: full input rate with one
    // SPU per two banks.
    auto res = simulateSpuPipeline(PimStyle::PimbaInterleaved, 10000);
    EXPECT_GT(res.throughputPerBankPair(), 0.99);
    EXPECT_GT(res.unitUtilization, 0.99);
}

TEST(SpuPipeline, PerBankHalvesThroughput)
{
    // A single row buffer cannot read and write in the same iteration,
    // so a per-bank unit runs at half duty for state updates.
    auto res = simulateSpuPipeline(PimStyle::PerBankPipelined, 10000);
    EXPECT_NEAR(res.throughputPerBankPair(), 0.5, 0.01);
    EXPECT_NEAR(res.unitUtilization, 0.5, 0.01);
    EXPECT_EQ(res.itemsProcessed, 10000u);
}

TEST(SpuPipeline, TimeMultiplexedQuartersThroughput)
{
    auto res = simulateSpuPipeline(PimStyle::TimeMultiplexed, 10000);
    EXPECT_NEAR(res.throughputPerBankPair(),
                1.0 / kTimeMuxSlotsPerColumn, 0.01);
}

TEST(SpuPipeline, SmallItemCountsDrainCompletely)
{
    for (uint64_t n : {1u, 2u, 3u, 5u, 7u}) {
        for (auto style : {PimStyle::PimbaInterleaved,
                           PimStyle::PerBankPipelined,
                           PimStyle::TimeMultiplexed}) {
            auto res = simulateSpuPipeline(style, n);
            ASSERT_EQ(res.itemsProcessed, n)
                << "style " << static_cast<int>(style) << " n " << n;
        }
    }
}

TEST(SpuPipeline, ColumnsPerCompSlot)
{
    // 16 banks per pseudo-channel (Table 1 organization).
    // Pimba: 8 SPUs x 1 column/slot; per-bank pipelined: 16 x 0.5;
    // time-mux: 8 / 4 (Sections 4.1, 5.2).
    EXPECT_DOUBLE_EQ(
        columnsPerCompSlot(PimStyle::PimbaInterleaved, 16, true), 8.0);
    EXPECT_DOUBLE_EQ(
        columnsPerCompSlot(PimStyle::PerBankPipelined, 16, true), 8.0);
    EXPECT_DOUBLE_EQ(
        columnsPerCompSlot(PimStyle::TimeMultiplexed, 16, true), 2.0);
}

TEST(SpuPipeline, AttentionColumnsPerCompSlot)
{
    // No write-back: per-bank units reach full duty; HBM-PIM's MAC is
    // one slot per column (GEMV is what it was built for).
    EXPECT_DOUBLE_EQ(
        columnsPerCompSlot(PimStyle::PimbaInterleaved, 16, false), 8.0);
    EXPECT_DOUBLE_EQ(
        columnsPerCompSlot(PimStyle::PerBankPipelined, 16, false), 16.0);
    EXPECT_DOUBLE_EQ(
        columnsPerCompSlot(PimStyle::TimeMultiplexed, 16, false), 8.0);
}

TEST(SpuPipeline, InterleavingMatchesPerBankThroughput)
{
    // Fig. 5 takeaway: half the units, same aggregate throughput.
    auto pimba = simulateSpuPipeline(PimStyle::PimbaInterleaved, 4096);
    auto perbank = simulateSpuPipeline(PimStyle::PerBankPipelined, 2048);
    // One SPU serving 4096 sub-chunks from two banks takes the same
    // iterations as one per-bank unit serving 2048 from its bank...
    EXPECT_NEAR(static_cast<double>(pimba.iterations),
                static_cast<double>(perbank.iterations), 10.0);
}

// --- SPE functional datapath ---

TEST(SpeDatapath, SubchunkMatchesReference)
{
    Lfsr16 lfsr(0x77);
    Lfsr32 rng(9);
    double sv[kMxGroupSize], dv[kMxGroupSize], kv[kMxGroupSize],
        qv[kMxGroupSize];
    for (int i = 0; i < kMxGroupSize; ++i) {
        sv[i] = rng.nextGaussian();
        dv[i] = 0.9 + 0.09 * rng.nextUnit();
        kv[i] = rng.nextGaussian();
        qv[i] = rng.nextGaussian();
    }
    double v_elem = 0.7;
    MxGroup s = mxQuantize(sv, Rounding::Nearest, lfsr);
    MxGroup d = mxQuantize(dv, Rounding::Nearest, lfsr);
    MxGroup k = mxQuantize(kv, Rounding::Nearest, lfsr);
    MxGroup q = mxQuantize(qv, Rounding::Nearest, lfsr);

    SpeStepResult step = speProcessSubchunk(s, d, k, q, v_elem,
                                            Rounding::Nearest, lfsr);
    double dot = 0.0;
    for (int i = 0; i < kMxGroupSize; ++i) {
        double expect = d.value(i) * s.value(i) + k.value(i) * v_elem;
        // Datapath rounding: within a few grid steps of the result.
        double tol = 4.0 * std::ldexp(1.0, step.newState.sharedExp -
                                      kMxMantFracBits);
        ASSERT_NEAR(step.newState.value(i), expect, tol) << "elem " << i;
        dot += step.newState.value(i) * q.value(i);
    }
    ASSERT_NEAR(step.dotPartial, dot, 1e-9);
}

TEST(SpeDatapath, FullHeadStateUpdate)
{
    const int dh = 32, ds = 8;
    Lfsr16 lfsr(0x31);
    Lfsr32 rng(77);
    std::vector<double> state(dh * ds), d(dh), k(dh), q(dh), v(ds), y;
    std::vector<double> ref = state;
    for (auto &x : state)
        x = rng.nextGaussian();
    for (auto &x : d)
        x = 0.95;
    for (auto &x : k)
        x = rng.nextGaussian();
    for (auto &x : q)
        x = rng.nextGaussian();
    for (auto &x : v)
        x = rng.nextGaussian();
    ref = state;

    speStateUpdateHead(state, d, k, q, v, y, dh, ds, Rounding::Nearest,
                       lfsr);

    // Reference in double precision.
    ASSERT_EQ(y.size(), static_cast<size_t>(ds));
    for (int j = 0; j < ds; ++j) {
        double yj = 0.0;
        for (int i = 0; i < dh; ++i) {
            double expect = 0.95 * ref[i * ds + j] + k[i] * v[j];
            // MX8 rounding: ~2% relative of the column scale.
            ASSERT_NEAR(state[i * ds + j], expect,
                        0.1 * std::max(1.0, std::fabs(expect)));
            yj += state[i * ds + j] * q[i];
        }
        // The SPE dots against the MX8-encoded q registers, so allow
        // the quantization of q (~1/64 relative) plus slack.
        ASSERT_NEAR(y[j], yj, 0.05 * std::max(1.0, std::fabs(yj)));
    }
}

TEST(SpeDatapathDeath, MisalignedDimHead)
{
    Lfsr16 lfsr(1);
    std::vector<double> state(10 * 4), d(10), k(10), q(10), v(4), y;
    EXPECT_DEATH(speStateUpdateHead(state, d, k, q, v, y, 10, 4,
                                    Rounding::Nearest, lfsr),
                 "multiple");
}

} // namespace
} // namespace pimba
