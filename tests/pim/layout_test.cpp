/**
 * @file
 * Tests of the PIM state / KV-cache data-layout math (Section 5.1(3)).
 */

#include <gtest/gtest.h>

#include "pim/data_layout.h"

namespace pimba {
namespace {

TEST(StateLayout, BytesAndColumns)
{
    HbmConfig hbm = hbm2eConfig();
    StateUpdateShape shape{1024, 64, 128};
    StateLayout lay = computeStateLayout(shape, NumberFormat::MX8, hbm);
    // 1024 instances x 64 x 128 values x 1 byte.
    EXPECT_EQ(lay.totalStateBytes, 1024ull * 64 * 128);
    int pcs = hbm.org.totalPseudoChannels();
    EXPECT_EQ(lay.stateBytesPerPc,
              ceilDiv<uint64_t>(lay.totalStateBytes, pcs));
    EXPECT_EQ(lay.columnsPerPc,
              ceilDiv<uint64_t>(lay.stateBytesPerPc, 32));
}

TEST(StateLayout, Fp16DoublesBytes)
{
    HbmConfig hbm = hbm2eConfig();
    StateUpdateShape shape{128, 64, 128};
    StateLayout mx = computeStateLayout(shape, NumberFormat::MX8, hbm);
    StateLayout fp = computeStateLayout(shape, NumberFormat::FP16, hbm);
    EXPECT_EQ(fp.totalStateBytes, 2 * mx.totalStateBytes);
    EXPECT_EQ(fp.elemsPerColumn, mx.elemsPerColumn / 2);
}

TEST(StateLayout, PassesCoverRows)
{
    HbmConfig hbm = hbm2eConfig();
    StateUpdateShape shape{4096, 64, 128};
    StateLayout lay = computeStateLayout(shape, NumberFormat::MX8, hbm);
    int banks = hbm.org.banksPerPseudoChannel();
    EXPECT_GE(lay.passes * banks, lay.rowsPerPc);
    EXPECT_LT((lay.passes - 1) * banks, lay.rowsPerPc);
}

TEST(StateLayout, SubchunksPerStateColumn)
{
    HbmConfig hbm = hbm2eConfig();
    // dim_head 64 at 1 B/value -> 2 sub-chunks per 32 B column.
    StateLayout lay = computeStateLayout({1, 64, 128},
                                         NumberFormat::MX8, hbm);
    EXPECT_EQ(lay.elemsPerColumn, 32);
    EXPECT_EQ(lay.subchunksPerStateColumn, 2);
}

TEST(StateLayout, OperandTraffic)
{
    HbmConfig hbm = hbm2eConfig();
    StateUpdateShape shape{10, 64, 128};
    StateLayout lay = computeStateLayout(shape, NumberFormat::MX8, hbm);
    // d, q, k (64 each) + v (128) per instance at 1 B/value.
    EXPECT_EQ(lay.regWriteBytesTotal, 10ull * (3 * 64 + 128));
    // Results drained as fp16: dim_state values x 2 B.
    EXPECT_EQ(lay.resultReadBytesTotal, 10ull * 128 * 2);
}

TEST(StateLayout, MinimumOnePass)
{
    HbmConfig hbm = hbm2eConfig();
    StateLayout lay = computeStateLayout({1, 16, 16},
                                         NumberFormat::MX8, hbm);
    EXPECT_GE(lay.passes, 1u);
}

TEST(AttentionLayout, ScoreTraffic)
{
    HbmConfig hbm = hbm2eConfig();
    AttentionShape shape{8, 128, 2048};
    AttentionLayout lay = computeScoreLayout(shape, NumberFormat::MX8,
                                             hbm);
    EXPECT_EQ(lay.cacheBytesTotal, 8ull * 2048 * 128);
    // Queries in: dim_head per instance; scores out: one per token.
    EXPECT_EQ(lay.regWriteBytesTotal, 8ull * 128);
    EXPECT_EQ(lay.resultReadBytesTotal, 8ull * 2048 * 2);
}

TEST(AttentionLayout, AttendTrafficMirrorsScore)
{
    HbmConfig hbm = hbm2eConfig();
    AttentionShape shape{8, 128, 2048};
    AttentionLayout sc = computeScoreLayout(shape, NumberFormat::MX8,
                                            hbm);
    AttentionLayout at = computeAttendLayout(shape, NumberFormat::MX8,
                                             hbm);
    EXPECT_EQ(sc.cacheBytesTotal, at.cacheBytesTotal);
    // Attend loads scores (seq) and drains outputs (dim_head).
    EXPECT_EQ(at.regWriteBytesTotal, 8ull * 2048);
    EXPECT_EQ(at.resultReadBytesTotal, 8ull * 128 * 2);
}

TEST(AttentionLayout, GrowsWithSequence)
{
    HbmConfig hbm = hbm2eConfig();
    AttentionLayout a = computeScoreLayout({8, 128, 1024},
                                           NumberFormat::FP16, hbm);
    AttentionLayout b = computeScoreLayout({8, 128, 2048},
                                           NumberFormat::FP16, hbm);
    EXPECT_EQ(b.cacheBytesTotal, 2 * a.cacheBytesTotal);
    EXPECT_GE(b.passes, a.passes);
}

} // namespace
} // namespace pimba
