/**
 * @file
 * Tests of the PIM kernel cycle/energy model — the performance claims
 * of Sections 4.1, 5.2 and 6.2 at kernel granularity.
 */

#include <gtest/gtest.h>

#include "pim/pim_compute.h"

namespace pimba {
namespace {

StateUpdateShape
suShape(uint64_t inst = 128 * 80)
{
    return {inst, 64, 128};
}

TEST(PimKernels, StateUpdateScalesLinearly)
{
    PimComputeModel pimba(hbm2eConfig(), pimbaDesign());
    auto small = pimba.stateUpdate(suShape(1000));
    auto large = pimba.stateUpdate(suShape(8000));
    double ratio = large.seconds / small.seconds;
    EXPECT_NEAR(ratio, 8.0, 1.0);
}

TEST(PimKernels, PimbaBeatsTimeMultiplexed)
{
    // Pimba processes 4x the columns per COMP and moves half the bytes
    // (MX8 vs fp16): ~8x at kernel level before overheads.
    PimComputeModel pimba(hbm2eConfig(), pimbaDesign());
    PimComputeModel hbmpim(hbm2eConfig(), hbmPimDesign());
    auto a = pimba.stateUpdate(suShape());
    auto b = hbmpim.stateUpdate(suShape());
    EXPECT_GT(b.seconds / a.seconds, 5.0);
    EXPECT_LT(b.seconds / a.seconds, 9.0);
}

TEST(PimKernels, PipelinedFp16MatchesPimbaColumnRate)
{
    // Same column throughput (Fig. 5), but double the bytes -> ~2x time.
    PimComputeModel pimba(hbm2eConfig(), pimbaDesign());
    PimComputeModel perbank(hbm2eConfig(), perBankPipelinedDesign());
    auto a = pimba.stateUpdate(suShape());
    auto b = perbank.stateUpdate(suShape());
    EXPECT_NEAR(b.seconds / a.seconds, 2.0, 0.3);
}

TEST(PimKernels, CompCountMatchesLayout)
{
    HbmConfig hbm = hbm2eConfig();
    PimComputeModel pimba(hbm, pimbaDesign());
    StateUpdateShape shape = suShape();
    auto res = pimba.stateUpdate(shape);
    StateLayout lay = computeStateLayout(shape, NumberFormat::MX8, hbm);
    uint64_t expected = ceilDiv<uint64_t>(
        lay.columnsPerPc,
        static_cast<uint64_t>(columnsPerCompSlot(
            PimStyle::PimbaInterleaved,
            hbm.org.banksPerPseudoChannel(), true)));
    EXPECT_EQ(res.counts.comp, expected);
}

TEST(PimKernels, AttentionPhasesTouchCache)
{
    PimComputeModel pimba(hbm2eConfig(), pimbaDesign());
    AttentionShape shape{128 * 32, 128, 2048};
    auto score = pimba.attentionScore(shape);
    auto attend = pimba.attentionAttend(shape);
    EXPECT_GT(score.seconds, Seconds(0.0));
    // Same cache volume, same column rate: phases take similar time.
    EXPECT_NEAR(attend.seconds / score.seconds, 1.0, 0.2);
}

TEST(PimKernels, AttentionMx8HalvesTimeVsFp16)
{
    // Section 6.2: the 2.1x attention gain over GPU+PIM comes from MX8.
    PimComputeModel pimba(hbm2eConfig(), pimbaDesign());
    PimComputeModel hbmpim(hbm2eConfig(), hbmPimDesign());
    AttentionShape shape{128 * 32, 128, 2048};
    double a = pimba.attentionScore(shape).seconds.value() +
               pimba.attentionAttend(shape).seconds.value();
    double b = hbmpim.attentionScore(shape).seconds.value() +
               hbmpim.attentionAttend(shape).seconds.value();
    EXPECT_NEAR(b / a, 2.0, 0.35);
}

TEST(PimKernels, NeupimsRejectsStateUpdate)
{
    PimComputeModel neupims(hbm2eConfig(), neupimsDesign());
    EXPECT_DEATH(neupims.stateUpdate(suShape()), "state update");
}

TEST(PimKernels, RefreshChargedOnLongKernels)
{
    PimComputeModel pimba(hbm2eConfig(), pimbaDesign());
    auto res = pimba.stateUpdate(suShape(400000));
    EXPECT_GT(res.counts.refresh, 0u);
}

TEST(PimKernels, EnergyComponentsPositive)
{
    PimComputeModel pimba(hbm2eConfig(), pimbaDesign());
    auto res = pimba.stateUpdate(suShape());
    EXPECT_GT(res.energy.activation, Joules(0.0));
    EXPECT_GT(res.energy.column, Joules(0.0));
    EXPECT_GT(res.energy.io, Joules(0.0));
    EXPECT_GT(res.energy.compute, Joules(0.0));
    EXPECT_DOUBLE_EQ(res.energy.total().value(),
                     (res.energy.activation + res.energy.column +
                      res.energy.io + res.energy.compute)
                         .value());
}

TEST(PimKernels, StateUpdateEnergyBelowGpuTraffic)
{
    // Confining the state inside the device must cost less than moving
    // it over the bus: column energy/bit < GPU DRAM energy/bit.
    HbmConfig hbm = hbm2eConfig();
    PimComputeModel pimba(hbm, pimbaDesign());
    auto res = pimba.stateUpdate(suShape());
    StateLayout lay = computeStateLayout(suShape(), NumberFormat::MX8,
                                         hbm);
    double gpu_energy = 2.0 * 2.0 * static_cast<double>(
        lay.totalStateBytes) * 8.0 * 3.9e-12; // fp16 R+W at 3.9 pJ/bit
    EXPECT_LT(res.energy.total(), Joules(gpu_energy));
}

TEST(PimKernels, Hbm3RunsFaster)
{
    PimComputeModel a100(hbm2eConfig(), pimbaDesign());
    PimComputeModel h100(hbm3Config(), pimbaDesign());
    auto a = a100.stateUpdate(suShape());
    auto h = h100.stateUpdate(suShape());
    EXPECT_NEAR(a.seconds / h.seconds, 2.626 / 1.512, 0.1);
}

TEST(PimKernels, InternalBandwidthRealized)
{
    // Achieved state-processing rate approaches the interleaved share
    // (half) of internal bandwidth once overheads amortize.
    HbmConfig hbm = hbm2eConfig();
    PimComputeModel pimba(hbm, pimbaDesign());
    StateUpdateShape shape = suShape(100000);
    auto res = pimba.stateUpdate(shape);
    StateLayout lay = computeStateLayout(shape, NumberFormat::MX8, hbm);
    double achieved = static_cast<double>(lay.totalStateBytes) /
                      res.seconds.value();
    double bound = hbm.internalBandwidth() / 2.0;
    EXPECT_LT(achieved, bound);
    // Per-pass ACT4/REG_WRITE/PRECHARGES overheads and refresh cost
    // ~35-40% of the raw column rate (Fig. 11's sequence).
    EXPECT_GT(achieved, 0.5 * bound);
}

} // namespace
} // namespace pimba
