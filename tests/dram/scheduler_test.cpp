/**
 * @file
 * Tests of the PIM command scheduler against the Table 1 timing rules
 * and the Fig. 11 overlap behaviour.
 */

#include <gtest/gtest.h>

#include "dram/pim_scheduler.h"

namespace pimba {
namespace {

HbmConfig
cfg()
{
    return hbm2eConfig();
}

TEST(PimScheduler, Act4RespectsFaw)
{
    auto c = cfg();
    PimCommandScheduler s(c, true);
    Cycles a0 = s.issueAct4();
    Cycles a1 = s.issueAct4();
    Cycles a2 = s.issueAct4();
    EXPECT_GE(a1 - a0, static_cast<Cycles>(c.timing.tFAW));
    EXPECT_GE(a2 - a1, static_cast<Cycles>(c.timing.tFAW));
}

TEST(PimScheduler, CompWaitsForTrcd)
{
    auto c = cfg();
    PimCommandScheduler s(c);
    Cycles act = s.issueAct4();
    Cycles comp = s.issueComp();
    EXPECT_GE(comp - act, static_cast<Cycles>(c.timing.tRCD));
}

TEST(PimScheduler, ConsecutiveCompsSpacedTccdL)
{
    auto c = cfg();
    PimCommandScheduler s(c);
    s.issueAct4();
    Cycles prev = s.issueComp();
    for (int i = 0; i < 10; ++i) {
        Cycles next = s.issueComp();
        ASSERT_GE(next - prev, static_cast<Cycles>(c.timing.tCCD_L));
        prev = next;
    }
}

TEST(PimScheduler, SteadyStateCompRateIsTccdL)
{
    // Within a pass, COMP throughput is exactly one per tCCD_L — this
    // fixes the SPU frequency to busFreq / 4 (Table 1, Section 6.1).
    auto c = cfg();
    PimCommandScheduler s(c);
    s.issueAct4();
    Cycles first = s.issueComp();
    Cycles last = first;
    const int n = 100;
    for (int i = 0; i < n; ++i)
        last = s.issueComp();
    EXPECT_EQ(last - first, static_cast<Cycles>(n * c.timing.tCCD_L));
}

TEST(PimScheduler, RegWritesFillFawGaps)
{
    // Fig. 11: REG_WRITEs slot between ACT4s without delaying them.
    auto c = cfg();
    PimCommandScheduler s(c, true);
    Cycles a0 = s.issueAct4();
    for (int i = 0; i < 8; ++i)
        s.issueRegWrite();
    Cycles a1 = s.issueAct4();
    // The 8 REG_WRITEs (2 cycles each on the data bus) fit inside the
    // tFAW = 30 cycle window, so ACT4 spacing stays at tFAW.
    EXPECT_EQ(a1 - a0, static_cast<Cycles>(c.timing.tFAW));
}

TEST(PimScheduler, RegWritesSerializeOnDataBus)
{
    auto c = cfg();
    PimCommandScheduler s(c, true);
    Cycles r0 = s.issueRegWrite();
    Cycles r1 = s.issueRegWrite();
    EXPECT_GE(r1 - r0, static_cast<Cycles>(c.timing.burstCycles));
}

TEST(PimScheduler, PrechargeRespectsTrasAndTwr)
{
    auto c = cfg();
    PimCommandScheduler s(c);
    Cycles act = s.issueAct4();
    Cycles comp = s.issueComp();
    Cycles pre = s.issuePrecharges();
    EXPECT_GE(pre - act, static_cast<Cycles>(c.timing.tRAS));
    EXPECT_GE(pre - comp, static_cast<Cycles>(c.timing.tWR));
}

TEST(PimScheduler, NextAct4WaitsForTrp)
{
    auto c = cfg();
    PimCommandScheduler s(c);
    s.issueAct4();
    s.issueComp();
    Cycles pre = s.issuePrecharges();
    Cycles act = s.issueAct4();
    EXPECT_GE(act - pre, static_cast<Cycles>(c.timing.tRP));
}

TEST(PimScheduler, ResultReadAfterCompDelay)
{
    auto c = cfg();
    PimCommandScheduler s(c);
    s.issueAct4();
    Cycles comp = s.issueComp();
    s.issuePrecharges();
    Cycles rr = s.issueResultRead();
    EXPECT_GE(rr - comp, static_cast<Cycles>(
                  std::max(c.timing.tRTP_L, c.timing.tWR)));
}

TEST(PimScheduler, ResultReadOverlapsPrechargeWindow)
{
    // Fig. 11: RESULT_READ only needs the data bus, so it issues inside
    // the tRP window after PRECHARGES rather than after it.
    auto c = cfg();
    PimCommandScheduler s(c);
    s.issueAct4();
    for (int i = 0; i < 16; ++i)
        s.issueComp(); // spread COMPs so tWR is satisfied by the time
    Cycles pre = s.issuePrecharges();
    Cycles rr = s.issueResultRead();
    EXPECT_LT(rr, pre + static_cast<Cycles>(c.timing.tRP));
}

TEST(PimScheduler, RefreshRequiresPrechargedBanks)
{
    auto c = cfg();
    PimCommandScheduler s(c);
    s.issueAct4();
    EXPECT_DEATH(s.maybeRefresh(), "precharged");
}

TEST(PimScheduler, RefreshIssuedWhenDue)
{
    auto c = cfg();
    PimCommandScheduler s(c, true);
    // Run passes until we cross tREFI.
    int refreshes = 0;
    while (s.finishCycle() < static_cast<Cycles>(2 * c.timing.tREFI)) {
        refreshes += s.maybeRefresh();
        s.issueAct4();
        for (int i = 0; i < 32; ++i)
            s.issueComp();
        s.issuePrecharges();
    }
    EXPECT_GE(refreshes, 1);
    EXPECT_GE(s.counts().refresh, 1u);
}

TEST(PimScheduler, CompWithoutActDies)
{
    auto c = cfg();
    PimCommandScheduler s(c);
    EXPECT_DEATH(s.issueComp(), "no activated rows");
}

TEST(PimScheduler, CountsTrackIssues)
{
    auto c = cfg();
    PimCommandScheduler s(c);
    s.issueAct4();
    s.issueRegWrite();
    s.issueComp();
    s.issueComp();
    s.issuePrecharges();
    s.issueResultRead();
    const auto &n = s.counts();
    EXPECT_EQ(n.act4, 1u);
    EXPECT_EQ(n.regWrite, 1u);
    EXPECT_EQ(n.comp, 2u);
    EXPECT_EQ(n.precharges, 1u);
    EXPECT_EQ(n.resultRead, 1u);
}

TEST(PimScheduler, TraceRecordsWhenEnabled)
{
    auto c = cfg();
    PimCommandScheduler s(c, true);
    s.issueAct4();
    s.issueComp();
    ASSERT_EQ(s.trace().size(), 2u);
    EXPECT_EQ(s.trace()[0].cmd, DramCommand::ACT4);
    EXPECT_EQ(s.trace()[1].cmd, DramCommand::COMP);
    EXPECT_LE(s.trace()[0].cycle, s.trace()[1].cycle);
}

TEST(PimScheduler, FinishCoversPrechargeTail)
{
    auto c = cfg();
    PimCommandScheduler s(c);
    s.issueAct4();
    s.issueComp();
    Cycles pre = s.issuePrecharges();
    EXPECT_GE(s.finishCycle(), pre + static_cast<Cycles>(c.timing.tRP));
}

TEST(PimScheduler, FinishSecondsUsesBusClock)
{
    auto c = cfg();
    PimCommandScheduler s(c);
    s.issueAct4();
    EXPECT_NEAR(s.finishSeconds().value(),
                static_cast<double>(s.finishCycle().value()) / c.busFreqHz,
                1e-15);
}

TEST(HbmConfig, Table1Values)
{
    auto c = hbm2eConfig();
    EXPECT_EQ(c.timing.tRP, 14);
    EXPECT_EQ(c.timing.tRAS, 34);
    EXPECT_EQ(c.timing.tCCD_S, 2);
    EXPECT_EQ(c.timing.tCCD_L, 4);
    EXPECT_EQ(c.timing.tWR, 16);
    EXPECT_EQ(c.timing.tRTP_S, 4);
    EXPECT_EQ(c.timing.tRTP_L, 6);
    EXPECT_EQ(c.timing.tREFI, 3900);
    EXPECT_EQ(c.timing.tFAW, 30);
    EXPECT_EQ(c.org.banksPerBankGroup, 4);
    EXPECT_EQ(c.org.bankGroupsPerPseudoChannel, 4);
    EXPECT_DOUBLE_EQ(c.busFreqHz, 1.512e9);
}

TEST(HbmConfig, PimFrequencyIsBusOverTccdL)
{
    // 1.512 GHz / 4 = 378 MHz (Table 1); HBM3: 2.626 GHz / 4 = 656.5 MHz.
    EXPECT_NEAR(hbm2eConfig().pimFreqHz(), 378e6, 1e3);
    EXPECT_NEAR(hbm3Config().pimFreqHz(), 656.5e6, 1e3);
}

TEST(HbmConfig, BandwidthMatchesGpu)
{
    // 40 channels of HBM2E approximate the A100's ~2 TB/s; the internal
    // all-bank bandwidth exceeds the channel bandwidth by banks/2x
    // tCCD ratio (the PIM opportunity, Section 2.3).
    auto c = hbm2eConfig();
    EXPECT_NEAR(c.channelBandwidth(), 1.935e12, 0.01e12);
    EXPECT_GT(c.internalBandwidth(), 7.0 * c.channelBandwidth());
}

} // namespace
} // namespace pimba
