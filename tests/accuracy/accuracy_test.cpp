/**
 * @file
 * Tests of the synthetic accuracy harness: the Fig. 4 / Table 2 shape
 * must hold (fp8 swamps SU-LLM states, SR helps, int8/MX8 are near
 * lossless, transformers are insensitive).
 */

#include <gtest/gtest.h>

#include "accuracy/evaluate.h"

namespace pimba {
namespace {

// Short streams keep the test fast; the benches use longer ones.
constexpr size_t kSeq = 256;

QuantSpec
spec(NumberFormat f, Rounding r = Rounding::Nearest)
{
    return {f, r};
}

TEST(AccuracyHarness, DeterministicPerplexity)
{
    auto models = accuracyModels();
    double a = evalPerplexity(models[0], spec(NumberFormat::MX8), kSeq);
    double b = evalPerplexity(models[0], spec(NumberFormat::MX8), kSeq);
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(AccuracyHarness, Fp16MatchesFp64)
{
    for (const auto &m : accuracyModels()) {
        double base = evalPerplexity(m, spec(NumberFormat::FP64), kSeq);
        double fp16 = evalPerplexity(m, spec(NumberFormat::FP16), kSeq);
        EXPECT_NEAR(fp16, base, base * 0.02) << m.name;
    }
}

TEST(AccuracyHarness, Mx8NearLossless)
{
    // Table 2's takeaway: MX8(+SR) costs at most a few percent.
    for (const auto &m : accuracyModels()) {
        double base = evalPerplexity(m, spec(NumberFormat::FP64), kSeq);
        double mx8 = evalPerplexity(
            m, spec(NumberFormat::MX8, Rounding::Stochastic), kSeq);
        EXPECT_LT(mx8, base * 1.12) << m.name;
    }
}

TEST(AccuracyHarness, Int8NearLossless)
{
    for (const auto &m : accuracyModels()) {
        double base = evalPerplexity(m, spec(NumberFormat::FP64), kSeq);
        double int8 = evalPerplexity(m, spec(NumberFormat::INT8), kSeq);
        EXPECT_LT(int8, base * 1.12) << m.name;
    }
}

TEST(AccuracyHarness, Fp8SwampsSuLlms)
{
    // Fig. 4: 2-3 mantissa bits cannot absorb the state updates.
    auto models = accuracyModels();
    for (size_t i = 0; i < 4; ++i) { // RetNet, GLA, HGRN2, Mamba-2
        double base = evalPerplexity(models[i],
                                     spec(NumberFormat::FP64), kSeq);
        double e5m2 = evalPerplexity(models[i],
                                     spec(NumberFormat::E5M2), kSeq);
        EXPECT_GT(e5m2, base * 1.05) << models[i].name;
    }
}

TEST(AccuracyHarness, E5m2WorseThanE4m3)
{
    // Fewer mantissa bits, more swamping.
    auto models = accuracyModels();
    double e4m3 = evalPerplexity(models[0], spec(NumberFormat::E4M3),
                                 kSeq);
    double e5m2 = evalPerplexity(models[0], spec(NumberFormat::E5M2),
                                 kSeq);
    EXPECT_GT(e5m2, e4m3 * 0.98);
}

TEST(AccuracyHarness, StochasticRoundingRescuesFp8)
{
    // Fig. 4: SR has a substantial positive impact on SU-LLMs.
    auto models = accuracyModels();
    int improved = 0;
    for (size_t i = 0; i < 4; ++i) {
        double rn = evalPerplexity(models[i], spec(NumberFormat::E5M2),
                                   kSeq);
        double sr = evalPerplexity(
            models[i], spec(NumberFormat::E5M2, Rounding::Stochastic),
            kSeq);
        improved += (sr < rn);
    }
    EXPECT_GE(improved, 3);
}

TEST(AccuracyHarness, TransformerInsensitiveToFormat)
{
    // Fig. 4: write-once KV caches tolerate every 8-bit format.
    const auto opt = accuracyModels().back();
    ASSERT_EQ(opt.name, "OPT");
    double base = evalPerplexity(opt, spec(NumberFormat::FP64), kSeq);
    for (auto f : {NumberFormat::E4M3, NumberFormat::E5M2,
                   NumberFormat::INT8, NumberFormat::MX8}) {
        double q = evalPerplexity(opt, spec(f), kSeq);
        EXPECT_LT(q, base * 1.05) << formatName(f);
    }
}

TEST(AccuracyHarness, TaskAccuracyInBand)
{
    // The synthetic tasks are calibrated to the paper's 40-85% band.
    auto models = accuracyModels();
    auto tasks = accuracyTasks();
    double acc = evalTaskAccuracy(models[3], tasks[0],
                                  spec(NumberFormat::FP64));
    EXPECT_GE(acc, 35.0);
    EXPECT_LE(acc, 100.0);
}

TEST(AccuracyHarness, Mx8SrTaskAccuracyCloseToBaseline)
{
    // Table 2: |Pimba - GPU| is within a few tenths of a point at full
    // scale; the small synthetic models tolerate a wider band.
    auto models = accuracyModels();
    TaskSpec task = accuracyTasks()[0];
    task.trials = 30;
    double base = evalTaskAccuracy(models[0], task,
                                   spec(NumberFormat::FP64));
    double mx8 = evalTaskAccuracy(
        models[0], task, spec(NumberFormat::MX8, Rounding::Stochastic));
    EXPECT_NEAR(mx8, base, 15.0);
}

TEST(AccuracyHarness, Geomean)
{
    EXPECT_NEAR(geomean({4.0, 9.0}), 6.0, 1e-9);
    EXPECT_NEAR(geomean({5.0}), 5.0, 1e-12);
}

TEST(AccuracyHarness, ModelsCoverPaperSet)
{
    auto models = accuracyModels();
    ASSERT_EQ(models.size(), 6u);
    EXPECT_EQ(models[0].name, "RetNet");
    EXPECT_EQ(models[4].name, "Zamba2");
    EXPECT_TRUE(models[4].cfg.hybridAttention);
    EXPECT_TRUE(models[5].cfg.attentionOnly);
}

TEST(AccuracyHarness, StreamsAreReproducible)
{
    TinyLm lm(accuracyModels()[0].cfg);
    auto a = lm.sampleStream(64, 0.7, 42);
    auto b = lm.sampleStream(64, 0.7, 42);
    EXPECT_EQ(a, b);
    auto c = lm.sampleStream(64, 0.7, 43);
    EXPECT_NE(a, c);
}

} // namespace
} // namespace pimba
