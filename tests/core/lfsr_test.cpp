/**
 * @file
 * Unit tests for the LFSR random sources.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/lfsr.h"

namespace pimba {
namespace {

TEST(Lfsr16, ZeroSeedRemapped)
{
    Lfsr16 a(0);
    Lfsr16 b(0xACE1u);
    EXPECT_EQ(a.raw(), b.raw());
}

TEST(Lfsr16, ProducesBits)
{
    Lfsr16 lfsr(0x1234);
    int ones = 0;
    for (int i = 0; i < 1000; ++i)
        ones += lfsr.nextBit();
    // Roughly balanced bit stream.
    EXPECT_GT(ones, 400);
    EXPECT_LT(ones, 600);
}

TEST(Lfsr16, NeverReachesZero)
{
    Lfsr16 lfsr(0x0001);
    for (int i = 0; i < 70000; ++i) {
        lfsr.nextBit();
        ASSERT_NE(lfsr.raw(), 0u);
    }
}

TEST(Lfsr16, FullPeriod)
{
    // Maximal-length 16-bit LFSR visits all 2^16-1 non-zero states.
    Lfsr16 lfsr(0x1);
    uint16_t start = lfsr.raw();
    uint64_t period = 0;
    do {
        lfsr.nextBit();
        ++period;
    } while (lfsr.raw() != start && period <= 70000);
    EXPECT_EQ(period, 65535u);
}

TEST(Lfsr16, NextBitsWidth)
{
    Lfsr16 lfsr(0xBEEF);
    for (int n = 1; n <= 16; ++n) {
        uint32_t v = lfsr.nextBits(n);
        EXPECT_LT(v, 1u << n) << "width " << n;
    }
}

TEST(Lfsr16, NextUnitRange)
{
    Lfsr16 lfsr(0x7777);
    double sum = 0.0;
    for (int i = 0; i < 2000; ++i) {
        double u = lfsr.nextUnit();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 2000.0, 0.5, 0.05);
}

TEST(Lfsr16, Deterministic)
{
    Lfsr16 a(0x4242), b(0x4242);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextBits(8), b.nextBits(8));
}

TEST(Lfsr32, UniformMean)
{
    Lfsr32 rng(99);
    double sum = 0.0;
    for (int i = 0; i < 5000; ++i)
        sum += rng.nextUnit();
    EXPECT_NEAR(sum / 5000.0, 0.5, 0.03);
}

TEST(Lfsr32, GaussianMoments)
{
    Lfsr32 rng(123);
    double sum = 0.0, sq = 0.0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        double g = rng.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.08);
    EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Lfsr32, DistinctSeedsDistinctStreams)
{
    Lfsr32 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

} // namespace
} // namespace pimba
