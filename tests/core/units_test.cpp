/**
 * @file
 * Strong-quantity layer tests: arithmetic laws over the tagged
 * wrappers, the whitelisted cross-unit algebra, the domain-crossing
 * helpers at their edge cases — and, most importantly, the *negative*
 * space: expressions like `Seconds + Joules` must not compile, which
 * is pinned here with detection-idiom static_asserts instead of a
 * comment promising someone once checked.
 */

#include <gtest/gtest.h>

#include <limits>
#include <type_traits>
#include <utility>

#include "core/units.h"

namespace pimba {
namespace {

// ------------------------------------------------ detection idiom

template <typename A, typename B, typename = void>
struct CanAdd : std::false_type
{
};
template <typename A, typename B>
struct CanAdd<A, B,
              std::void_t<decltype(std::declval<A>() +
                                   std::declval<B>())>> : std::true_type
{
};

template <typename A, typename B, typename = void>
struct CanSubtract : std::false_type
{
};
template <typename A, typename B>
struct CanSubtract<A, B,
                   std::void_t<decltype(std::declval<A>() -
                                        std::declval<B>())>>
    : std::true_type
{
};

template <typename A, typename B, typename = void>
struct CanDivide : std::false_type
{
};
template <typename A, typename B>
struct CanDivide<A, B,
                 std::void_t<decltype(std::declval<A>() /
                                      std::declval<B>())>>
    : std::true_type
{
};

template <typename A, typename B, typename = void>
struct CanMultiply : std::false_type
{
};
template <typename A, typename B>
struct CanMultiply<A, B,
                   std::void_t<decltype(std::declval<A>() *
                                        std::declval<B>())>>
    : std::true_type
{
};

template <typename To, typename From>
constexpr bool kConvertible = std::is_convertible_v<From, To>;

// ------------------------------- the planted cross-unit rejections
//
// The ISSUE's acceptance criterion: `Seconds + Joules` fails to
// compile. These asserts are the compile-time test suite — if someone
// relaxes the wrapper (an implicit constructor, a stray conversion
// operator, a catch-all operator overload), this file stops building.

static_assert(!CanAdd<Seconds, Joules>::value,
              "Seconds + Joules must not compile");
static_assert(!CanAdd<Joules, Seconds>::value);
static_assert(!CanSubtract<Seconds, Bytes>::value);
static_assert(!CanAdd<Tokens, Blocks>::value,
              "counter units must not cross-add either");
static_assert(!CanAdd<Cycles, Seconds>::value,
              "cycle<->time crossings go through cyclesToSeconds only");
static_assert(!CanAdd<Seconds, double>::value &&
                  !CanAdd<double, Seconds>::value,
              "raw numbers must be wrapped before unit arithmetic");
static_assert(!CanSubtract<Tokens, uint64_t>::value);

// Unwhitelisted quotients/products stay errors.
static_assert(!CanDivide<Seconds, Joules>::value,
              "Seconds / Joules has no whitelisted unit");
static_assert(!CanDivide<Watts, Bytes>::value);
static_assert(!CanMultiply<Joules, Joules>::value,
              "squared energy has no unit here");
static_assert(!CanMultiply<Bytes, Bytes>::value);

// No implicit construction from raw arithmetic types, and no implicit
// decay back: both directions require spelling the unit.
static_assert(!kConvertible<Seconds, double>,
              "raw double -> Seconds must be explicit");
static_assert(!kConvertible<double, Seconds>,
              "Seconds -> raw double must go through .value()");
static_assert(!kConvertible<Tokens, int>);
static_assert(!kConvertible<Seconds, Joules>,
              "no unit-to-unit conversion, explicit or not");

// The positive space of the algebra, checked at compile time too.
static_assert(std::is_same_v<decltype(Joules(1.0) / Seconds(1.0)),
                             Watts>);
static_assert(std::is_same_v<decltype(Tokens(1) / Seconds(1.0)),
                             TokensPerSecond>);
static_assert(std::is_same_v<decltype(Bytes(1.0) / Seconds(1.0)),
                             BytesPerSecond>);
static_assert(std::is_same_v<decltype(Bytes(1.0) /
                                      BytesPerSecond(1.0)),
                             Seconds>);
static_assert(std::is_same_v<decltype(Joules(1.0) / Watts(1.0)),
                             Seconds>);
static_assert(std::is_same_v<decltype(Watts(1.0) * Seconds(1.0)),
                             Joules>);
static_assert(std::is_same_v<decltype(Seconds(1.0) * Watts(1.0)),
                             Joules>);
static_assert(std::is_same_v<decltype(BytesPerSecond(1.0) *
                                      Seconds(1.0)),
                             Bytes>);
static_assert(std::is_same_v<decltype(Seconds(1.0) / Seconds(1.0)),
                             double>,
              "same-unit ratio is dimensionless");
static_assert(std::is_same_v<decltype(Tokens(1) / Tokens(1)), double>);

// Zero-overhead claim: the wrapper is exactly its representation.
static_assert(sizeof(Seconds) == sizeof(double));
static_assert(sizeof(Tokens) == sizeof(uint64_t));
static_assert(std::is_trivially_copyable_v<Seconds>);
static_assert(std::is_trivially_copyable_v<Blocks>);

// ------------------------------------------------------ runtime laws

TEST(Units, SameUnitArithmeticMatchesRawArithmetic)
{
    Seconds a(1.5), b(0.25);
    EXPECT_DOUBLE_EQ((a + b).value(), 1.75);
    EXPECT_DOUBLE_EQ((a - b).value(), 1.25);
    EXPECT_DOUBLE_EQ((-a).value(), -1.5);
    a += b;
    EXPECT_DOUBLE_EQ(a.value(), 1.75);
    a -= b;
    EXPECT_DOUBLE_EQ(a.value(), 1.5);

    Tokens t(7);
    t += Tokens(3);
    EXPECT_EQ(t, Tokens(10));
    EXPECT_EQ(Tokens(10) - Tokens(4), Tokens(6));
}

TEST(Units, ScalarScalingPreservesOperationOrder)
{
    // Scaling must produce the same bits as the bare expression —
    // the golden-output suites depend on this identity.
    Bytes b(3.14159e9);
    EXPECT_DOUBLE_EQ((b * 2.5).value(), 3.14159e9 * 2.5);
    EXPECT_DOUBLE_EQ((2.5 * b).value(), 2.5 * 3.14159e9);
    EXPECT_DOUBLE_EQ((b / 7.0).value(), 3.14159e9 / 7.0);
    b *= 3.0;
    EXPECT_DOUBLE_EQ(b.value(), 3.14159e9 * 3.0);
    b /= 3.0;
    EXPECT_DOUBLE_EQ(b.value(), 3.14159e9 * 3.0 / 3.0);
}

TEST(Units, ComparisonsAndDefaultZero)
{
    EXPECT_EQ(Seconds(), Seconds(0.0));
    EXPECT_EQ(Blocks(), Blocks(0));
    EXPECT_LT(Seconds(1.0), Seconds(2.0));
    EXPECT_GE(Joules(2.0), Joules(2.0));
    EXPECT_NE(Tokens(1), Tokens(2));
}

TEST(Units, SameUnitRatioIsDimensionless)
{
    EXPECT_DOUBLE_EQ(Seconds(3.0) / Seconds(2.0), 1.5);
    EXPECT_DOUBLE_EQ(Bytes(1e9) / Bytes(2e9), 0.5);
    // Integer-rep ratios divide as doubles, not as truncating ints.
    EXPECT_DOUBLE_EQ(Tokens(3) / Tokens(2), 1.5);
    EXPECT_DOUBLE_EQ(Blocks(3) / Blocks(10), 0.3);
    EXPECT_DOUBLE_EQ(Seconds(3.0).ratio(Seconds(2.0)), 1.5);
}

TEST(Units, WhitelistedAlgebraComputesTheRightNumbers)
{
    EXPECT_DOUBLE_EQ((Joules(10.0) / Seconds(2.0)).value(), 5.0);
    EXPECT_DOUBLE_EQ((Tokens(3000) / Seconds(2.0)).value(), 1500.0);
    EXPECT_DOUBLE_EQ((Bytes(1e9) / BytesPerSecond(2e9)).value(), 0.5);
    EXPECT_DOUBLE_EQ((Joules(6.0) / Watts(3.0)).value(), 2.0);
    EXPECT_DOUBLE_EQ((Watts(3.0) * Seconds(2.0)).value(), 6.0);
    EXPECT_DOUBLE_EQ((BytesPerSecond(2e9) * Seconds(0.5)).value(), 1e9);
}

// ----------------------------------------------- domain conversions

TEST(Units, CyclesToSecondsRoundTrip)
{
    EXPECT_DOUBLE_EQ(cyclesToSeconds(Cycles(1512), 1.512e9).value(),
                     1e-6);
    EXPECT_EQ(secondsToCycles(Seconds(1e-6), 1.512e9), Cycles(1512));
}

TEST(Units, SecondsToCyclesRoundsUp)
{
    EXPECT_EQ(secondsToCycles(Seconds(1.0001e-9), 1e9), Cycles(2));
    EXPECT_EQ(secondsToCycles(Seconds(1e-9), 1e9), Cycles(1));
}

TEST(Units, SecondsToCyclesClampsNegativeToZero)
{
    // float-to-unsigned of a negative value is UB; the helper clamps.
    EXPECT_EQ(secondsToCycles(Seconds(-1.0), 1e9), Cycles(0));
    EXPECT_EQ(secondsToCycles(Seconds(0.0), 1e9), Cycles(0));
    EXPECT_EQ(secondsToCycles(Seconds(1.0), -1e9), Cycles(0));
    double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EQ(secondsToCycles(Seconds(nan), 1e9), Cycles(0));
}

TEST(Units, SecondsToCyclesSaturatesAtUint64Max)
{
    constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
    EXPECT_EQ(secondsToCycles(Seconds(1e30), 1e9), Cycles(kMax));
    double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(secondsToCycles(Seconds(inf), 1e9), Cycles(kMax));
    // Exactly 2^64 is not representable as uint64_t: still saturates.
    EXPECT_EQ(secondsToCycles(Seconds(18446744073709551616.0), 1.0),
              Cycles(kMax));
}

TEST(Units, CeilDivBasics)
{
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(ceilDiv(0, 3), 0);
    EXPECT_EQ(ceilDiv<uint64_t>(1, 100), 1u);
}

TEST(Units, CeilDivDoesNotOverflowNearMax)
{
    // The textbook (a + b - 1) / b wraps here; the quotient-plus-
    // remainder form must not.
    constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
    EXPECT_EQ(ceilDiv<uint64_t>(kMax, 1), kMax);
    EXPECT_EQ(ceilDiv<uint64_t>(kMax, 2), (kMax / 2) + 1);
    EXPECT_EQ(ceilDiv<uint64_t>(kMax - 1, kMax), 1u);
    EXPECT_EQ(ceilDiv<uint64_t>(kMax, kMax), 1u);
    static_assert(ceilDiv<uint64_t>(
                      std::numeric_limits<uint64_t>::max(), 2) ==
                  std::numeric_limits<uint64_t>::max() / 2 + 1);
}

} // namespace
} // namespace pimba
