/**
 * @file
 * FlatTable (open-addressing memo map) tests: exactness of hit/miss,
 * growth rehashing, and the stored-copy reference contract. The
 * serving-engine memos and the PIM kernel-shape cache both sit on this
 * table, and the byte-determinism guarantee assumes a lookup never
 * returns a value stored under a different key.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/flat_table.h"

namespace pimba {
namespace {

TEST(FlatTable, MissReturnsNullHitReturnsExactValue)
{
    FlatTable<double> t;
    EXPECT_EQ(t.find(42), nullptr);
    t.insert(42, 1.5);
    ASSERT_NE(t.find(42), nullptr);
    EXPECT_DOUBLE_EQ(*t.find(42), 1.5);
    // A different key — even one likely to probe the same
    // neighbourhood — must still miss.
    EXPECT_EQ(t.find(43), nullptr);
    EXPECT_EQ(t.size(), 1u);
}

TEST(FlatTable, InsertReturnsReferenceToStoredCopy)
{
    FlatTable<std::vector<int>> t;
    const std::vector<int> &stored = t.insert(7, {1, 2, 3});
    EXPECT_EQ(stored, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(t.find(7), &stored);
}

TEST(FlatTable, GrowthRehashKeepsEveryEntryFindable)
{
    FlatTable<uint64_t> t(16);
    size_t initial_cap = t.capacity();
    // Push far past the 1/2 load cap so the table grows repeatedly.
    // Sequential keys differ only in low bits — the worst case for a
    // weak hash — so this also exercises probe-chain correctness.
    const uint64_t n = 4096;
    for (uint64_t k = 1; k <= n; ++k)
        t.insert(k, k * k);
    EXPECT_EQ(t.size(), n);
    EXPECT_GT(t.capacity(), initial_cap);
    // Load stays at or under 1/2 after growth.
    EXPECT_GE(t.capacity(), 2 * t.size());
    for (uint64_t k = 1; k <= n; ++k) {
        const uint64_t *v = t.find(k);
        ASSERT_NE(v, nullptr) << "lost key " << k;
        EXPECT_EQ(*v, k * k);
    }
    EXPECT_EQ(t.find(n + 1), nullptr);
}

TEST(FlatTable, SparseHighBitKeysDoNotAlias)
{
    // Packed memo keys put fields in high lanes; make sure keys that
    // differ only above bit 32 resolve independently.
    FlatTable<int> t;
    for (uint64_t i = 1; i <= 64; ++i)
        t.insert(i << 32, static_cast<int>(i));
    for (uint64_t i = 1; i <= 64; ++i) {
        const int *v = t.find(i << 32);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, static_cast<int>(i));
    }
    EXPECT_EQ(t.find(65ull << 32), nullptr);
}

} // namespace
} // namespace pimba
