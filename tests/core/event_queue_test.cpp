/**
 * @file
 * Event-calendar tests: min-first dispatch over (time, class, tiebreak,
 * sequence), FIFO among fully-equal keys, interleaved push/pop, the
 * empty-calendar sentinel, and the never-runs-backward guard. The
 * ordering pinned here is the contract the event-driven fleet's
 * byte-identity to the lockstep loop rests on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/event_queue.h"
#include "core/lfsr.h"

namespace pimba {
namespace {

TEST(EventQueueTest, PopsInTimeOrder)
{
    EventQueue<int> q;
    q.push(Seconds(3.0), 0, 0, 30);
    q.push(Seconds(1.0), 0, 0, 10);
    q.push(Seconds(2.0), 0, 0, 20);
    EXPECT_EQ(q.size(), 3u);
    EXPECT_DOUBLE_EQ(q.nextTime().value(), 1.0);
    EXPECT_EQ(q.pop().payload, 10);
    EXPECT_EQ(q.pop().payload, 20);
    EXPECT_EQ(q.pop().payload, 30);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, EmptyCalendarHasInfiniteNextTime)
{
    EventQueue<int> q;
    EXPECT_TRUE(q.empty());
    EXPECT_TRUE(std::isinf(q.nextTime().value()));
    EXPECT_GT(q.nextTime(), Seconds(1e300));
}

TEST(EventQueueTest, ClassBreaksTimeTies)
{
    // At the same instant the lower class dispatches first: the fleet's
    // arrival-beats-handoff rule.
    EventQueue<int> q;
    q.push(Seconds(5.0), 1, 7, 100); // "handoff"
    q.push(Seconds(5.0), 0, 0, 200); // "arrival", pushed later
    EXPECT_EQ(q.pop().payload, 200);
    EXPECT_EQ(q.pop().payload, 100);
}

TEST(EventQueueTest, TiebreakOrdersWithinClass)
{
    EventQueue<int> q;
    q.push(Seconds(2.0), 1, 9, 9);
    q.push(Seconds(2.0), 1, 4, 4);
    q.push(Seconds(2.0), 1, 6, 6);
    EXPECT_EQ(q.pop().payload, 4);
    EXPECT_EQ(q.pop().payload, 6);
    EXPECT_EQ(q.pop().payload, 9);
}

TEST(EventQueueTest, FullyEqualKeysAreFifo)
{
    EventQueue<int> q;
    for (int i = 0; i < 16; ++i)
        q.push(Seconds(1.0), 0, 0, i);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(q.pop().payload, i) << "insertion " << i;
}

TEST(EventQueueTest, InterleavedPushPopStaysSorted)
{
    // Randomized interleaving: at any pop, the returned key must be
    // <= every key popped after it (global sortedness), even when
    // pushes land between pops. Seeded, so the sequence is pinned.
    Lfsr32 rng(0xE7E27u);
    EventQueue<uint64_t> q;
    std::vector<double> popped;
    uint64_t id = 0;
    double horizon = 0.0; // pushes must not precede the last pop
    for (int step = 0; step < 2000; ++step) {
        bool doPush = q.empty() || rng.nextUnit() < 0.55;
        if (doPush) {
            double t = horizon + 10.0 * rng.nextUnit();
            q.push(Seconds(t), 0, 0, id++);
        } else {
            auto e = q.pop();
            popped.push_back(e.time.value());
            horizon = e.time.value();
        }
    }
    while (!q.empty())
        popped.push_back(q.pop().time.value());
    for (size_t i = 1; i < popped.size(); ++i)
        EXPECT_LE(popped[i - 1], popped[i]) << "pop " << i;
    EXPECT_EQ(popped.size(), static_cast<size_t>(id));
}

TEST(EventQueueTest, TopMatchesNextPop)
{
    EventQueue<int> q;
    q.push(Seconds(2.0), 0, 0, 2);
    q.push(Seconds(1.0), 0, 0, 1);
    EXPECT_EQ(q.top().payload, 1);
    EXPECT_DOUBLE_EQ(q.top().time.value(), q.nextTime().value());
    EXPECT_EQ(q.pop().payload, 1);
    EXPECT_EQ(q.top().payload, 2);
}

TEST(EventQueueDeathTest, SchedulingBeforeLastPopIsFatal)
{
    EventQueue<int> q;
    q.push(Seconds(5.0), 0, 0, 1);
    (void)q.pop();
    EXPECT_DEATH(q.push(Seconds(4.0), 0, 0, 2), "before");
}

TEST(EventQueueDeathTest, PopOnEmptyIsFatal)
{
    EventQueue<int> q;
    EXPECT_DEATH((void)q.pop(), "empty");
}

} // namespace
} // namespace pimba
