/**
 * @file
 * Unit tests for accumulators, breakdowns and stat sets.
 */

#include <gtest/gtest.h>

#include "core/stats.h"
#include "core/units.h"

namespace pimba {
namespace {

TEST(Accumulator, Empty)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.mean(), 0.0);
    EXPECT_EQ(acc.sum(), 0.0);
}

TEST(Accumulator, SingleSample)
{
    Accumulator acc;
    acc.add(3.5);
    EXPECT_EQ(acc.count(), 1u);
    EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
    EXPECT_DOUBLE_EQ(acc.min(), 3.5);
    EXPECT_DOUBLE_EQ(acc.max(), 3.5);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, KnownMoments)
{
    Accumulator acc;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(v);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 4.0);
    EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Breakdown, AccumulatesByKey)
{
    Breakdown b;
    b.add("x", 1.0);
    b.add("y", 2.0);
    b.add("x", 3.0);
    EXPECT_DOUBLE_EQ(b.get("x"), 4.0);
    EXPECT_DOUBLE_EQ(b.get("y"), 2.0);
    EXPECT_DOUBLE_EQ(b.get("absent"), 0.0);
    EXPECT_DOUBLE_EQ(b.total(), 6.0);
}

TEST(Breakdown, PreservesInsertionOrder)
{
    Breakdown b;
    b.add("zeta", 1.0);
    b.add("alpha", 1.0);
    b.add("zeta", 1.0);
    ASSERT_EQ(b.keys().size(), 2u);
    EXPECT_EQ(b.keys()[0], "zeta");
    EXPECT_EQ(b.keys()[1], "alpha");
}

TEST(Breakdown, Fraction)
{
    Breakdown b;
    b.add("a", 1.0);
    b.add("b", 3.0);
    EXPECT_DOUBLE_EQ(b.fraction("a"), 0.25);
    EXPECT_DOUBLE_EQ(b.fraction("b"), 0.75);
    Breakdown empty;
    EXPECT_DOUBLE_EQ(empty.fraction("a"), 0.0);
}

TEST(Breakdown, ScaleAndMerge)
{
    Breakdown a;
    a.add("x", 2.0);
    a.scale(0.5);
    EXPECT_DOUBLE_EQ(a.get("x"), 1.0);

    Breakdown b;
    b.add("x", 1.0);
    b.add("y", 5.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 2.0);
    EXPECT_DOUBLE_EQ(a.get("y"), 5.0);
}

TEST(StatSet, IncSetGet)
{
    StatSet s;
    s.inc("counter");
    s.inc("counter", 4.0);
    EXPECT_DOUBLE_EQ(s.get("counter"), 5.0);
    s.set("counter", 1.0);
    EXPECT_DOUBLE_EQ(s.get("counter"), 1.0);
    EXPECT_DOUBLE_EQ(s.get("missing"), 0.0);
    s.clear();
    EXPECT_DOUBLE_EQ(s.get("counter"), 0.0);
}

TEST(StatSet, DumpContainsEntries)
{
    StatSet s;
    s.set("alpha", 1.5);
    std::string dump = s.dump();
    EXPECT_NE(dump.find("alpha"), std::string::npos);
    EXPECT_NE(dump.find("1.5"), std::string::npos);
}

TEST(Percentile, EmptyAndSingleSample)
{
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
    EXPECT_DOUBLE_EQ(percentile({3.0}, 0.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile({3.0}, 99.0), 3.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics)
{
    std::vector<double> v = {4.0, 1.0, 3.0, 2.0}; // unsorted on purpose
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 1.75);
}

TEST(Percentile, TailOrderingHolds)
{
    std::vector<double> v;
    for (int i = 1; i <= 1000; ++i)
        v.push_back(static_cast<double>(i));
    double p50 = percentile(v, 50.0);
    double p95 = percentile(v, 95.0);
    double p99 = percentile(v, 99.0);
    EXPECT_LT(p50, p95);
    EXPECT_LT(p95, p99);
    EXPECT_NEAR(p99, 990.0, 1.0);
}

} // namespace
} // namespace pimba
