/**
 * @file
 * Quantile-sketch tests: the relative-error guarantee against the
 * exact percentile() path on pinned seeded populations (uniform,
 * lognormal, point-mass), exact count/min/max/sum bookkeeping, merge
 * associativity/equivalence, and the empty-sketch guards. The 1%
 * equivalence budget here is the same one the streaming-metrics mode
 * is held to (docs/observability.md).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/lfsr.h"
#include "core/sketch.h"
#include "core/stats.h"

namespace pimba {
namespace {

/// Relative gap |a - b| / |b|, with b != 0 expected by the caller.
double
relErr(double a, double b)
{
    return std::abs(a - b) / std::abs(b);
}

std::vector<double>
uniformSamples(size_t n, uint32_t seed)
{
    Lfsr32 rng(seed);
    std::vector<double> v;
    v.reserve(n);
    for (size_t i = 0; i < n; ++i)
        v.push_back(0.5 + 9.5 * rng.nextUnit()); // [0.5, 10)
    return v;
}

std::vector<double>
lognormalSamples(size_t n, uint32_t seed)
{
    Lfsr32 rng(seed);
    std::vector<double> v;
    v.reserve(n);
    // exp(N(0, 1.5)): a heavy right tail, the TTFT-under-overload
    // shape the p99 columns exist for.
    for (size_t i = 0; i < n; ++i)
        v.push_back(std::exp(1.5 * rng.nextGaussian()));
    return v;
}

void
expectQuantilesWithin(const std::vector<double> &samples, double budget)
{
    QuantileSketch sk;
    for (double x : samples)
        sk.add(x);
    for (double q : {1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
        double exact = percentile(samples, q);
        ASSERT_GT(exact, 0.0);
        EXPECT_LE(relErr(sk.quantile(q), exact), budget)
            << "q=" << q << " sketch=" << sk.quantile(q)
            << " exact=" << exact;
    }
}

TEST(QuantileSketch, UniformPopulationWithinOnePercent)
{
    expectQuantilesWithin(uniformSamples(20000, 0x5EEDBA5Eu), 0.01);
}

TEST(QuantileSketch, LognormalPopulationWithinOnePercent)
{
    expectQuantilesWithin(lognormalSamples(20000, 0x0BADCAFEu), 0.01);
}

TEST(QuantileSketch, PointMassIsRecoveredAtEveryQuantile)
{
    QuantileSketch sk;
    for (int i = 0; i < 1000; ++i)
        sk.add(0.0375);
    for (double q : {0.0, 50.0, 99.0, 100.0})
        EXPECT_LE(relErr(sk.quantile(q), 0.0375),
                  sk.relativeAccuracy())
            << "q=" << q;
    EXPECT_DOUBLE_EQ(sk.min(), 0.0375);
    EXPECT_DOUBLE_EQ(sk.max(), 0.0375);
}

TEST(QuantileSketch, CountMinMaxSumAreExact)
{
    std::vector<double> samples = uniformSamples(777, 0x1234ABCDu);
    QuantileSketch sk;
    double lo = samples[0], hi = samples[0], total = 0.0;
    for (double x : samples) {
        sk.add(x);
        lo = std::min(lo, x);
        hi = std::max(hi, x);
        total += x;
    }
    EXPECT_EQ(sk.count(), samples.size());
    EXPECT_DOUBLE_EQ(sk.min(), lo);
    EXPECT_DOUBLE_EQ(sk.max(), hi);
    EXPECT_DOUBLE_EQ(sk.sum(), total);
    EXPECT_DOUBLE_EQ(sk.mean(), total / 777.0);
}

TEST(QuantileSketch, MergeMatchesConcatenationAndIsAssociative)
{
    std::vector<double> a = uniformSamples(3000, 0xAAAAAAAAu);
    std::vector<double> b = lognormalSamples(3000, 0xBBBBBBB1u);
    std::vector<double> c = uniformSamples(3000, 0xCCCCCCCCu);

    auto sketchOf = [](const std::vector<double> &v) {
        QuantileSketch s;
        for (double x : v)
            s.add(x);
        return s;
    };
    QuantileSketch whole;
    for (const auto *v : {&a, &b, &c})
        for (double x : *v)
            whole.add(x);

    // (a + b) + c
    QuantileSketch left = sketchOf(a);
    left.merge(sketchOf(b));
    left.merge(sketchOf(c));
    // a + (b + c)
    QuantileSketch bc = sketchOf(b);
    bc.merge(sketchOf(c));
    QuantileSketch right = sketchOf(a);
    right.merge(bc);

    EXPECT_EQ(left.count(), whole.count());
    EXPECT_EQ(right.count(), whole.count());
    EXPECT_DOUBLE_EQ(left.sum(), right.sum());
    for (double q : {5.0, 50.0, 95.0, 99.0}) {
        // Bucket-wise merge is exact: both orders answer identically,
        // and both match the single sketch of the concatenated stream.
        EXPECT_DOUBLE_EQ(left.quantile(q), right.quantile(q))
            << "q=" << q;
        EXPECT_DOUBLE_EQ(left.quantile(q), whole.quantile(q))
            << "q=" << q;
    }
}

TEST(QuantileSketch, EmptySketchAnswersZeroEverywhere)
{
    QuantileSketch sk;
    EXPECT_TRUE(sk.empty());
    EXPECT_EQ(sk.count(), 0u);
    EXPECT_DOUBLE_EQ(sk.quantile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(sk.min(), 0.0);
    EXPECT_DOUBLE_EQ(sk.max(), 0.0);
    EXPECT_DOUBLE_EQ(sk.mean(), 0.0);
    // Merging an empty sketch is a no-op in both directions.
    QuantileSketch other;
    other.add(3.0);
    other.merge(sk);
    EXPECT_EQ(other.count(), 1u);
    sk.merge(other);
    EXPECT_EQ(sk.count(), 1u);
}

TEST(QuantileSketch, NonPositiveSamplesLandInTheZeroBucket)
{
    // Per-request preemption counts are frequently zero; the sketch
    // must not feed them to a logarithm.
    QuantileSketch sk;
    for (int i = 0; i < 90; ++i)
        sk.add(0.0);
    for (int i = 0; i < 10; ++i)
        sk.add(2.0);
    EXPECT_EQ(sk.count(), 100u);
    EXPECT_DOUBLE_EQ(sk.quantile(50.0), 0.0);
    EXPECT_LE(relErr(sk.quantile(99.0), 2.0), sk.relativeAccuracy());
    EXPECT_DOUBLE_EQ(sk.min(), 0.0);
}

TEST(MetricRegistry, CountersSumAndGaugesHighWaterOnMerge)
{
    MetricRegistry a, b;
    a.count("requests", 3.0);
    a.gauge("queue depth", 7.0);
    b.count("requests", 5.0);
    b.gauge("queue depth", 4.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.value("requests"), 8.0);
    EXPECT_DOUBLE_EQ(a.value("queue depth"), 7.0);
    EXPECT_TRUE(a.isGauge("queue depth"));
    EXPECT_FALSE(a.isGauge("requests"));
    EXPECT_DOUBLE_EQ(a.value("never touched"), 0.0);
}

TEST(MetricRegistry, RenderKeepsInsertionOrder)
{
    MetricRegistry r;
    r.count("zeta");
    r.gauge("alpha", 1.5);
    r.count("zeta", 2.0);
    ASSERT_EQ(r.names().size(), 2u);
    EXPECT_EQ(r.names()[0], "zeta");
    EXPECT_EQ(r.names()[1], "alpha");
    std::string text = r.render();
    EXPECT_LT(text.find("zeta"), text.find("alpha"));
}

} // namespace
} // namespace pimba
