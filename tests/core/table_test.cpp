/**
 * @file
 * Unit tests for the table renderer and number formatting.
 */

#include <gtest/gtest.h>

#include "core/table.h"

namespace pimba {
namespace {

TEST(Table, RendersHeaderAndRows)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    std::string s = t.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.cols(), 2u);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, ColumnsAligned)
{
    Table t({"x", "longheader"});
    t.addRow({"averylongcell", "y"});
    std::string s = t.str();
    // Each line should be at least as wide as the widest cells.
    size_t first_nl = s.find('\n');
    EXPECT_GE(first_nl, std::string("averylongcell").size());
}

TEST(TableDeath, RowWidthMismatch)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(Formatting, Fmt)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Formatting, Ratio)
{
    EXPECT_EQ(fmtRatio(2.345, 2), "2.35x");
    EXPECT_EQ(fmtRatio(1.0, 1), "1.0x");
}

TEST(Formatting, Percent)
{
    EXPECT_EQ(fmtPercent(0.5, 1), "50.0%");
    EXPECT_EQ(fmtPercent(0.123, 1), "12.3%");
}

} // namespace
} // namespace pimba
