/**
 * @file
 * Colocated fleet tests: deterministic replay for every router policy,
 * fleet-level token conservation, single-replica equivalence with the
 * plain engine, empty-input metric guards, and the pinned router claim
 * — load-aware policies (JSQ / least-tokens / power-of-two) strictly
 * beat round-robin on p95 TTFT at saturation on a heterogeneous fleet.
 */

#include <gtest/gtest.h>

#include <set>

#include "cluster/workload.h"
#include "serving/trace.h"

namespace pimba {
namespace {

uint64_t
outputTokens(const std::vector<Request> &trace)
{
    uint64_t total = 0;
    for (const Request &r : trace)
        total += r.outputLen;
    return total;
}

TEST(ClusterFleet, DeterministicReplayForEveryRouterPolicy)
{
    auto trace = clusterTrace(32.0, 64);
    ModelConfig model = mamba2_2p7b();
    for (RouterPolicy policy : allRouterPolicies()) {
        FleetReport a =
            Fleet(model, heterogeneousFleet(policy)).run(trace);
        // A fresh Fleet and a reused Fleet must both replay bit-exactly.
        Fleet reused(model, heterogeneousFleet(policy));
        FleetReport b = reused.run(trace);
        FleetReport c = reused.run(trace);

        for (const FleetReport *r : {&b, &c}) {
            EXPECT_EQ(a.assignments, r->assignments)
                << routerName(policy);
            EXPECT_DOUBLE_EQ(a.makespan.value(), r->makespan.value())
                << routerName(policy);
            EXPECT_DOUBLE_EQ(a.metrics.ttft.p95, r->metrics.ttft.p95)
                << routerName(policy);
            EXPECT_DOUBLE_EQ(a.metrics.goodput.value(),
                             r->metrics.goodput.value())
                << routerName(policy);
            ASSERT_EQ(a.completed.size(), r->completed.size());
            for (size_t i = 0; i < a.completed.size(); ++i) {
                EXPECT_EQ(a.completed[i].req.id, r->completed[i].req.id);
                EXPECT_DOUBLE_EQ(a.completed[i].latency.value(),
                                 r->completed[i].latency.value());
            }
            for (size_t i = 0; i < a.replicas.size(); ++i)
                EXPECT_EQ(a.replicas[i].iterations,
                          r->replicas[i].iterations)
                    << routerName(policy) << " replica " << i;
        }
    }
}

TEST(ClusterFleet, TokenConservationAndCompleteness)
{
    auto trace = clusterTrace(32.0, 96);
    Fleet fleet(mamba2_2p7b(),
                heterogeneousFleet(RouterPolicy::JoinShortestQueue));
    FleetReport rep = fleet.run(trace);

    ASSERT_EQ(rep.completed.size(), trace.size());
    ASSERT_EQ(rep.assignments.size(), trace.size());
    std::set<uint64_t> ids;
    for (const CompletedRequest &c : rep.completed)
        ids.insert(c.req.id);
    EXPECT_EQ(ids.size(), trace.size());

    uint64_t generated = 0;
    for (const ServingReport &r : rep.replicas)
        generated += r.generatedTokens;
    EXPECT_EQ(generated, outputTokens(trace));
    EXPECT_EQ(rep.metrics.generatedTokens, outputTokens(trace));

    // Per-replica load stats cover every routed request.
    uint64_t routed = 0;
    for (uint64_t n : rep.load.requestsPerReplica)
        routed += n;
    EXPECT_EQ(routed, trace.size());
    EXPECT_GE(rep.load.requestImbalance, 1.0);
    EXPECT_GE(rep.load.tokenImbalance, 1.0);
}

TEST(ClusterFleet, SingleReplicaFleetMatchesPlainEngine)
{
    auto trace = clusterTrace(16.0, 48);
    ModelConfig model = mamba2_2p7b();

    FleetReport fleet =
        Fleet(model, homogeneousFleet(SystemKind::PIMBA, 1))
            .run(trace);

    ServingSimulator sim(makeSystem(SystemKind::PIMBA));
    ServingReport engine =
        ServingEngine(sim, model).run(trace);

    EXPECT_DOUBLE_EQ(fleet.makespan.value(), engine.makespan.value());
    EXPECT_DOUBLE_EQ(fleet.metrics.ttft.p95, engine.metrics.ttft.p95);
    EXPECT_DOUBLE_EQ(fleet.metrics.tpot.p95, engine.metrics.tpot.p95);
    EXPECT_EQ(fleet.metrics.generatedTokens,
              engine.metrics.generatedTokens);
    EXPECT_EQ(fleet.replicas[0].iterations, engine.iterations);
}

TEST(ClusterFleet, LoadAwareRoutersBeatRoundRobinAtSaturation)
{
    // At 48 req/s the round-robin fleet pushes each GPU replica to
    // twice its ~8 req/s capacity while the Pimba replicas idle below
    // theirs; the load-aware policies divert the overflow, so their
    // tail TTFT must be strictly lower. This is the cluster layer's
    // core claim — pinned, not just printed by bench_cluster_sweep.
    auto trace = clusterTrace(48.0, 192);
    ModelConfig model = mamba2_2p7b();

    FleetReport rr =
        Fleet(model, heterogeneousFleet(RouterPolicy::RoundRobin))
            .run(trace);
    for (RouterPolicy policy : {RouterPolicy::JoinShortestQueue,
                                RouterPolicy::LeastOutstandingTokens,
                                RouterPolicy::PowerOfTwoChoices}) {
        FleetReport aware =
            Fleet(model, heterogeneousFleet(policy)).run(trace);
        EXPECT_LT(aware.metrics.ttft.p95, rr.metrics.ttft.p95)
            << routerName(policy);
        EXPECT_GE(aware.metrics.goodput, rr.metrics.goodput)
            << routerName(policy);
    }
}

TEST(ClusterFleet, RoundRobinSpreadsRequestsEvenly)
{
    auto trace = clusterTrace(48.0, 192); // 192 = 4 x 48, exact split
    Fleet fleet(mamba2_2p7b(),
                heterogeneousFleet(RouterPolicy::RoundRobin));
    FleetReport rep = fleet.run(trace);
    for (uint64_t n : rep.load.requestsPerReplica)
        EXPECT_EQ(n, trace.size() / rep.replicas.size());
    EXPECT_DOUBLE_EQ(rep.load.requestImbalance, 1.0);
}

TEST(ClusterFleet, AggregateMetricsMatchesFleetRecords)
{
    // aggregateMetrics is the API for callers holding only per-replica
    // reports; on a colocated run it must reproduce the fleet metrics
    // computed from the merged records, and tolerate an empty fleet.
    auto trace = clusterTrace(32.0, 64);
    Fleet fleet(mamba2_2p7b(),
                heterogeneousFleet(RouterPolicy::JoinShortestQueue));
    FleetReport rep = fleet.run(trace);

    ServingMetrics agg =
        aggregateMetrics(rep.replicas, rep.makespan, fleet.config().slo);
    EXPECT_EQ(agg.requests, rep.metrics.requests);
    EXPECT_EQ(agg.generatedTokens, rep.metrics.generatedTokens);
    EXPECT_DOUBLE_EQ(agg.goodput.value(), rep.metrics.goodput.value());
    EXPECT_DOUBLE_EQ(agg.ttft.p95, rep.metrics.ttft.p95);
    EXPECT_DOUBLE_EQ(agg.tpot.p95, rep.metrics.tpot.p95);

    ServingMetrics empty = aggregateMetrics({}, Seconds(0.0), SloConfig{});
    EXPECT_EQ(empty.requests, 0u);
    EXPECT_DOUBLE_EQ(empty.goodput.value(), 0.0);
}

TEST(ClusterFleet, EmptyTraceYieldsZeroedFleetMetrics)
{
    // A fleet that serves nothing must report zeros, not UB — the
    // aggregate path is the same one a saturated zero-completion
    // replica exercises.
    Fleet fleet(mamba2_2p7b(),
                homogeneousFleet(SystemKind::PIMBA, 2));
    FleetReport rep = fleet.run({});
    EXPECT_EQ(rep.metrics.requests, 0u);
    EXPECT_DOUBLE_EQ(rep.metrics.goodput.value(), 0.0);
    EXPECT_DOUBLE_EQ(rep.metrics.ttft.p95, 0.0);
    EXPECT_DOUBLE_EQ(rep.makespan.value(), 0.0);
    EXPECT_DOUBLE_EQ(rep.load.requestImbalance, 0.0);
    EXPECT_EQ(rep.transfer.transfers, 0u);
}

TEST(ClusterFleet, QueueingDelayIsSurfacedPerRequest)
{
    auto trace = clusterTrace(48.0, 96);
    Fleet fleet(mamba2_2p7b(),
                heterogeneousFleet(RouterPolicy::RoundRobin));
    FleetReport rep = fleet.run(trace);
    for (const CompletedRequest &c : rep.completed) {
        EXPECT_GE(c.queueing, Seconds(0.0));
        // Admission precedes the first token.
        EXPECT_LE(c.queueing, c.ttft + Seconds(1e-12));
    }
    EXPECT_GE(rep.metrics.queueing.max, rep.metrics.queueing.p50);
}

} // namespace
} // namespace pimba
