/**
 * @file
 * Control-plane property suite (docs/control-plane.md): seeded random
 * fleets x arrival processes x control-plane policies, 100+ seeds per
 * policy, each run checked against the invariants that pin the
 * subsystem down — request/token conservation under cancellation,
 * no admission inside a warm-up span, provisioned-count bounds, the
 * monotone trajectory of scale-down-free configs, replica-second
 * billing bounds, and bit-exact determinism on a re-run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "cluster/workload.h"
#include "serving/trace.h"

namespace pimba {
namespace {

struct PolicyCase
{
    const char *name;
    bool autoscaler;
    bool scaleDown;
    bool tiersDeadlinesPrefix;
};

constexpr PolicyCase kPolicies[] = {
    {"autoscale-up-down", true, true, false},
    {"autoscale-monotone", true, false, false},
    {"tiers-deadlines-prefix", false, false, true},
    {"everything-on", true, true, true},
};
constexpr int kSeedsPerPolicy = 100;

TraceConfig
traceFor(uint32_t seed)
{
    TraceConfig tc;
    switch (seed % 3) {
    case 0:
        tc.arrivals = ArrivalProcess::Poisson;
        break;
    case 1:
        tc.arrivals = ArrivalProcess::Diurnal;
        tc.diurnal.period = Seconds(4.0);
        tc.diurnal.peakToTrough = 3.0;
        break;
    default:
        tc.arrivals = ArrivalProcess::Mmpp;
        tc.mmpp.burstMultiplier = 4.0;
        tc.mmpp.burstMean = Seconds(0.5);
        tc.mmpp.idleMean = Seconds(2.0);
        break;
    }
    tc.ratePerSec = 20.0 + 8.0 * static_cast<double>(seed % 5);
    tc.numRequests = 30 + static_cast<int>(seed % 11);
    TraceClass interactive;
    interactive.name = "interactive";
    interactive.weight = 1.0;
    interactive.lengths = LengthDistribution::Uniform;
    interactive.inputLen = 16;
    interactive.inputLenMax = 64;
    interactive.outputLen = 4;
    interactive.outputLenMax = 16;
    TraceClass batch = interactive;
    batch.name = "batch";
    batch.weight = 2.0;
    batch.inputLen = 32;
    batch.inputLenMax = 128;
    batch.outputLen = 8;
    batch.outputLenMax = 24;
    tc.classes = {interactive, batch};
    tc.seed = 0x9E3779B9u ^ (seed * 0x85EBCA6Bu + 1u);
    return tc;
}

FleetConfig
fleetFor(const PolicyCase &pc, uint32_t seed)
{
    const size_t n = 2 + seed % 2;
    FleetConfig fc = colocatedPimbaFleet(n);
    constexpr RouterPolicy kRouters[] = {
        RouterPolicy::JoinShortestQueue, RouterPolicy::RoundRobin,
        RouterPolicy::CacheAffinity};
    fc.router = kRouters[(seed / 3) % 3];
    if (pc.autoscaler) {
        AutoscalerConfig &as = fc.controlPlane.autoscaler;
        as.enabled = true;
        as.minReplicas = 1;
        as.maxReplicas = 0; // resolves to the fleet size
        as.initialReplicas = 1;
        as.interval = Seconds(0.25 + 0.25 * static_cast<double>(seed % 3));
        as.scaleUpQueueDepth = 2.0 + static_cast<double>(seed % 4);
        as.scaleDownQueueDepth = pc.scaleDown ? 0.5 : 0.0;
        as.warmup = Seconds(0.2 * static_cast<double>(seed % 4));
        as.scaleUpWait = (seed % 2) ? Seconds(0.75) : Seconds(0.0);
    }
    if (pc.tiersDeadlinesPrefix) {
        fc.controlPlane.tierByClass = {1, 0};
        fc.controlPlane.deadlines.resize(2);
        fc.controlPlane.deadlines[0].ttft = Seconds(0.8);
        fc.controlPlane.deadlines[1].total = Seconds(2.5);
        fc.controlPlane.prefixTokensByClass = {12, 0};
    }
    return fc;
}

void
checkInvariants(const FleetReport &rep,
                const std::vector<Request> &trace,
                const FleetConfig &fc, bool monotone,
                const std::string &tag)
{
    SCOPED_TRACE(tag);
    const size_t fleetSize = fc.replicas.size();
    const ControlPlaneReport &cp = rep.controlPlane;
    ASSERT_TRUE(cp.enabled);

    // Conservation: every submitted request completes or cancels,
    // exactly once, fleet-wide and per replica.
    EXPECT_EQ(rep.completed.size() + cp.cancelledRequests, trace.size());
    EXPECT_EQ(rep.metrics.requests, rep.completed.size());
    EXPECT_EQ(rep.metrics.cancelledRequests, cp.cancelledRequests);
    EXPECT_EQ(rep.metrics.wastedTokens, cp.wastedTokens);
    uint64_t done = 0, cancelled = 0, wasted = 0, generated = 0;
    for (const ServingReport &r : rep.replicas) {
        done += r.completedRequests;
        cancelled += r.cancelledRequests;
        wasted += r.wastedTokens;
        generated += r.generatedTokens;
    }
    EXPECT_EQ(done + cancelled, trace.size());
    EXPECT_EQ(cancelled, cp.cancelledRequests);
    EXPECT_EQ(wasted, cp.wastedTokens);
    if (fc.controlPlane.deadlines.empty()) {
        // Only deadline timers cancel — scaling never drops requests.
        EXPECT_EQ(cp.cancelledRequests, 0u);
        EXPECT_EQ(cp.wastedTokens, 0u);
    }

    // Token accounting: delivered tokens are exactly the completed
    // requests' outputs — cancellation never leaks into the counter.
    uint64_t delivered = 0;
    for (const CompletedRequest &c : rep.completed)
        delivered += c.req.outputLen;
    EXPECT_EQ(generated, delivered);
    EXPECT_EQ(rep.metrics.generatedTokens, delivered);

    // Every request was routed exactly once, to a valid replica.
    EXPECT_EQ(rep.assignments.size(), trace.size());
    for (const Assignment &a : rep.assignments)
        EXPECT_LT(a.replica, fleetSize);

    // Warm-up exclusion: nothing routes to a replica inside one of its
    // warm-up spans [start, ready).
    std::map<uint64_t, Seconds> arrivalOf;
    for (const Request &r : trace)
        arrivalOf[r.id] = r.arrival;
    for (const WarmupSpan &w : cp.warmups) {
        EXPECT_LT(w.replica, fleetSize);
        EXPECT_LE(w.start.value(), w.ready.value());
        for (const Assignment &a : rep.assignments) {
            if (a.replica != w.replica)
                continue;
            Seconds at = arrivalOf.at(a.requestId);
            EXPECT_FALSE(at >= w.start && at < w.ready)
                << "request " << a.requestId << " routed to replica "
                << w.replica << " at t=" << at.value()
                << " inside warm-up [" << w.start.value() << ", "
                << w.ready.value() << ")";
        }
    }

    // Trajectory: starts at t=0, non-decreasing times, provisioned
    // count always within the resolved [min, max].
    const AutoscalerConfig &as = fc.controlPlane.autoscaler;
    const size_t minR = as.enabled ? as.minReplicas : fleetSize;
    const size_t maxR =
        as.enabled ? (as.maxReplicas != 0 ? as.maxReplicas : fleetSize)
                   : fleetSize;
    ASSERT_FALSE(cp.trajectory.empty());
    EXPECT_DOUBLE_EQ(cp.trajectory.front().time.value(), 0.0);
    for (size_t i = 0; i < cp.trajectory.size(); ++i) {
        const ScaleEvent &e = cp.trajectory[i];
        EXPECT_GE(e.provisioned, std::min(minR, maxR));
        EXPECT_LE(e.provisioned, maxR);
        if (i > 0) {
            EXPECT_GE(e.time.value(),
                      cp.trajectory[i - 1].time.value());
        }
        if (monotone && i > 0) {
            EXPECT_GE(e.provisioned, cp.trajectory[i - 1].provisioned)
                << "scale-down-free trajectory regressed at point "
                << i;
        }
    }

    // Billing bounds: positive, at most fleet x makespan, and at
    // least the trajectory's provisioned-count integral.
    if (!trace.empty()) {
        EXPECT_GT(cp.replicaSeconds.value(), 0.0);
        EXPECT_LE(cp.replicaSeconds.value(),
                  static_cast<double>(fleetSize) *
                          rep.makespan.value() +
                      1e-9);
        double integral = 0.0;
        for (size_t i = 0; i < cp.trajectory.size(); ++i) {
            double start = cp.trajectory[i].time.value();
            double end = i + 1 < cp.trajectory.size()
                             ? cp.trajectory[i + 1].time.value()
                             : rep.makespan.value();
            end = std::min(end, rep.makespan.value());
            if (end > start)
                integral +=
                    static_cast<double>(cp.trajectory[i].provisioned) *
                    (end - start);
        }
        EXPECT_GE(cp.replicaSeconds.value(), integral - 1e-9);
    }
}

void
expectIdenticalRuns(const FleetReport &a, const FleetReport &b,
                    const std::string &tag)
{
    SCOPED_TRACE(tag);
    EXPECT_EQ(a.assignments, b.assignments);
    EXPECT_DOUBLE_EQ(a.makespan.value(), b.makespan.value());
    EXPECT_DOUBLE_EQ(a.metrics.ttft.p95, b.metrics.ttft.p95);
    EXPECT_DOUBLE_EQ(a.metrics.goodput.value(),
                     b.metrics.goodput.value());
    EXPECT_EQ(a.metrics.generatedTokens, b.metrics.generatedTokens);
    EXPECT_EQ(a.controlPlane.cancelledRequests,
              b.controlPlane.cancelledRequests);
    EXPECT_EQ(a.controlPlane.wastedTokens, b.controlPlane.wastedTokens);
    EXPECT_DOUBLE_EQ(a.controlPlane.replicaSeconds.value(),
                     b.controlPlane.replicaSeconds.value());
    ASSERT_EQ(a.controlPlane.trajectory.size(),
              b.controlPlane.trajectory.size());
    for (size_t i = 0; i < a.controlPlane.trajectory.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.controlPlane.trajectory[i].time.value(),
                         b.controlPlane.trajectory[i].time.value());
        EXPECT_EQ(a.controlPlane.trajectory[i].provisioned,
                  b.controlPlane.trajectory[i].provisioned);
    }
}

TEST(ControlPlaneProperty, InvariantsHoldAcrossSeededPolicySweep)
{
    ModelConfig model = mamba2_2p7b();
    for (const PolicyCase &pc : kPolicies) {
        for (uint32_t seed = 0; seed < kSeedsPerPolicy; ++seed) {
            const std::string tag = std::string(pc.name) + " seed " +
                                    std::to_string(seed);
            auto trace = generateTrace(traceFor(seed));
            FleetConfig fc = fleetFor(pc, seed);
            ASSERT_TRUE(fc.controlPlane.anyEnabled()) << tag;
            ASSERT_EQ(validateFleetConfig(fc), "") << tag;

            Fleet fleet(model, fc);
            FleetReport rep = fleet.run(trace);
            const bool monotone =
                pc.autoscaler && !pc.scaleDown &&
                fc.controlPlane.autoscaler.scaleDownQueueDepth == 0.0;
            checkInvariants(rep, trace, fc, monotone, tag);

            // Determinism: a reused fleet replays bit-exactly.
            FleetReport again = fleet.run(trace);
            expectIdenticalRuns(rep, again, tag);
        }
    }
}

} // namespace
} // namespace pimba
