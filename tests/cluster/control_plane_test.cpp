/**
 * @file
 * Control-plane tests (docs/control-plane.md): config validation, the
 * replica activation state machine and its replica-second billing, the
 * byte-identical-when-neutral regression against the classic fleet
 * paths, deadline cancellation accounting, and the three pinned
 * superiority claims — the autoscaler beats the best static replica
 * count on replica-seconds at equal SLO attainment, cache-affinity
 * routing beats JSQ on p95 TTFT for a prefix-heavy workload, and
 * priority tiers keep the high tier's p95 TTFT out of a low-tier
 * flood's queue.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "cluster/workload.h"
#include "serving/workload.h"

namespace pimba {
namespace {

ControlPlaneConfig
autoscalerOn(size_t minR, size_t maxR, size_t initial, double interval,
             double up, double down, double warmup)
{
    ControlPlaneConfig cp;
    cp.autoscaler.enabled = true;
    cp.autoscaler.minReplicas = minR;
    cp.autoscaler.maxReplicas = maxR;
    cp.autoscaler.initialReplicas = initial;
    cp.autoscaler.interval = Seconds(interval);
    cp.autoscaler.scaleUpQueueDepth = up;
    cp.autoscaler.scaleDownQueueDepth = down;
    cp.autoscaler.warmup = Seconds(warmup);
    return cp;
}

double
p95Of(std::vector<double> v)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    size_t idx = static_cast<size_t>(
        std::ceil(0.95 * static_cast<double>(v.size())));
    idx = std::min(v.size(), std::max<size_t>(idx, 1)) - 1;
    return v[idx];
}

double
classP95Ttft(const FleetReport &rep, uint32_t classId)
{
    std::vector<double> ttfts;
    for (const CompletedRequest &c : rep.completed)
        if (c.req.classId == classId)
            ttfts.push_back(c.ttft.value());
    return p95Of(std::move(ttfts));
}

TEST(ControlPlaneConfigTest, ValidationCatchesBadConfigs)
{
    ControlPlaneConfig cp; // all features off
    EXPECT_EQ(validateControlPlaneConfig(cp, 4), "");
    EXPECT_FALSE(cp.anyEnabled());

    auto bad = [&](ControlPlaneConfig c, const char *what) {
        EXPECT_NE(validateControlPlaneConfig(c, 4), "") << what;
    };
    ControlPlaneConfig ok = autoscalerOn(1, 4, 1, 2.0, 6.0, 1.0, 2.0);
    EXPECT_EQ(validateControlPlaneConfig(ok, 4), "");

    ControlPlaneConfig c = ok;
    c.autoscaler.minReplicas = 0;
    bad(c, "zero minReplicas");
    c = ok;
    c.autoscaler.maxReplicas = 5;
    bad(c, "maxReplicas beyond the fleet");
    c = ok;
    c.autoscaler.minReplicas = 3;
    c.autoscaler.maxReplicas = 2;
    bad(c, "min above max");
    c = ok;
    c.autoscaler.initialReplicas = 5;
    bad(c, "initial outside [min, max]");
    c = ok;
    c.autoscaler.interval = Seconds(0.0);
    bad(c, "non-positive interval");
    c = ok;
    c.autoscaler.warmup = Seconds(-1.0);
    bad(c, "negative warmup");
    c = ok;
    c.autoscaler.scaleUpQueueDepth = 0.0;
    bad(c, "non-positive scale-up threshold");
    c = ok;
    c.autoscaler.scaleDownQueueDepth = 6.0;
    bad(c, "no hysteresis gap");
    c = ok;
    c.autoscaler.scaleUpWait = Seconds(-0.5);
    bad(c, "negative scale-up wait");

    c = ControlPlaneConfig{};
    c.deadlines.resize(1);
    c.deadlines[0].ttft = Seconds(0.0);
    bad(c, "non-positive deadline");

    // maxReplicas 0 resolves to the fleet size, so a fleet of 4 is the
    // ceiling and a request for initial 4 is fine.
    c = autoscalerOn(1, 0, 4, 2.0, 6.0, 1.0, 2.0);
    EXPECT_EQ(validateControlPlaneConfig(c, 4), "");

    // The fleet validator folds the same checks in, plus the
    // colocated-only restriction.
    FleetConfig fc = disaggregatedPimbaFleet();
    fc.controlPlane = ok;
    EXPECT_NE(validateFleetConfig(fc), "");
    FleetConfig good = colocatedPimbaFleet(4);
    good.controlPlane = ok;
    EXPECT_EQ(validateFleetConfig(good), "");
}

TEST(ControlPlaneUnit, StateMachineTrajectoryAndBilling)
{
    ControlPlaneConfig cp = autoscalerOn(1, 4, 2, 1.0, 4.0, 0.5, 1.5);
    ControlPlane plane(cp, 4);
    // Idle engines: enough for scaleUp()'s queue probes.
    ServingSimulator sim(makeSystem(SystemKind::PIMBA));
    ModelConfig model = mamba2_2p7b();
    std::vector<ServingEngine> engines;
    for (int i = 0; i < 4; ++i)
        engines.emplace_back(sim, model);

    ASSERT_EQ(plane.pool(), (std::vector<size_t>{0, 1}));
    EXPECT_EQ(plane.provisioned(), 2u);
    ASSERT_FALSE(plane.report().trajectory.empty());
    EXPECT_DOUBLE_EQ(plane.report().trajectory[0].time.value(), 0.0);
    EXPECT_EQ(plane.report().trajectory[0].provisioned, 2u);

    // Cold scale-up warms the lowest-index inactive replica.
    ASSERT_TRUE(plane.canScaleUp());
    auto su = plane.scaleUp(Seconds(1.0), engines);
    EXPECT_EQ(su.replica, 2u);
    EXPECT_FALSE(su.instant);
    EXPECT_DOUBLE_EQ(su.ready.value(), 2.5);
    EXPECT_EQ(plane.provisioned(), 3u);
    // Warming replicas are billed but not routable.
    EXPECT_EQ(plane.pool(), (std::vector<size_t>{0, 1}));
    ASSERT_EQ(plane.report().warmups.size(), 1u);
    EXPECT_EQ(plane.report().warmups[0].replica, 2u);
    EXPECT_DOUBLE_EQ(plane.report().warmups[0].start.value(), 1.0);
    EXPECT_DOUBLE_EQ(plane.report().warmups[0].ready.value(), 2.5);

    plane.warmupDone(2, Seconds(2.5));
    EXPECT_EQ(plane.pool(), (std::vector<size_t>{0, 1, 2}));

    // Scale-down drains the highest-index routable replica.
    size_t victim = plane.scaleDown(Seconds(4.0));
    EXPECT_EQ(victim, 2u);
    EXPECT_EQ(plane.pool(), (std::vector<size_t>{0, 1}));
    EXPECT_EQ(plane.drainingReplicas(), (std::vector<size_t>{2}));

    // An *idle* drained replica was released: re-provisioning it pays
    // the full warm-up again (the instant path needs a live backlog).
    auto again = plane.scaleUp(Seconds(5.0), engines);
    EXPECT_EQ(again.replica, 2u);
    EXPECT_FALSE(again.instant);
    EXPECT_DOUBLE_EQ(again.ready.value(), 6.5);

    // Billing: replicas 0 and 1 are active 0..10; replica 2 billed
    // 1..4 (warm-up + service) plus 5..10 (second provision, still
    // warming at the close); replica 3 never provisioned.
    plane.finalize(Seconds(10.0), engines);
    EXPECT_NEAR(plane.report().replicaSeconds.value(),
                10.0 + 10.0 + 3.0 + 5.0, 1e-9);

    // Without the autoscaler the whole fleet is statically routable
    // and bills fleet-size x makespan.
    ControlPlaneConfig tiers;
    tiers.tierByClass = {1, 0};
    ControlPlane fixed(tiers, 3);
    EXPECT_EQ(fixed.pool().size(), 3u);
    EXPECT_FALSE(fixed.canScaleUp());
    EXPECT_FALSE(fixed.canScaleDown());
    fixed.finalize(Seconds(7.0), engines);
    EXPECT_NEAR(fixed.report().replicaSeconds.value(), 21.0, 1e-9);
}

TEST(ControlPlaneRegression, NeutralControlPlaneMatchesClassicRun)
{
    // A control-plane config with anyEnabled() == true but no
    // *behavioral* feature — zero-length prefixes, deadlines too far
    // out to ever fire — must reproduce the classic colocated pump
    // byte-for-byte. This pins runControlled() as a superset of the
    // PR 9 event core, not a fork of it.
    auto trace = clusterTrace(32.0, 96);
    ModelConfig model = mamba2_2p7b();

    for (bool farDeadlines : {false, true}) {
        FleetConfig plainCfg = colocatedPimbaFleet(3);
        FleetReport plain = Fleet(model, plainCfg).run(trace);
        EXPECT_FALSE(plain.controlPlane.enabled);

        FleetConfig neutralCfg = colocatedPimbaFleet(3);
        neutralCfg.controlPlane.prefixTokensByClass = {0};
        if (farDeadlines) {
            neutralCfg.controlPlane.deadlines.resize(1);
            neutralCfg.controlPlane.deadlines[0].ttft = Seconds(1e6);
            neutralCfg.controlPlane.deadlines[0].total = Seconds(1e6);
        }
        ASSERT_TRUE(neutralCfg.controlPlane.anyEnabled());
        FleetReport ctl = Fleet(model, neutralCfg).run(trace);
        EXPECT_TRUE(ctl.controlPlane.enabled);

        EXPECT_EQ(plain.assignments, ctl.assignments) << farDeadlines;
        EXPECT_DOUBLE_EQ(plain.makespan.value(), ctl.makespan.value());
        EXPECT_DOUBLE_EQ(plain.metrics.ttft.p95, ctl.metrics.ttft.p95);
        EXPECT_DOUBLE_EQ(plain.metrics.tpot.p95, ctl.metrics.tpot.p95);
        EXPECT_DOUBLE_EQ(plain.metrics.goodput.value(),
                         ctl.metrics.goodput.value());
        EXPECT_EQ(plain.metrics.generatedTokens,
                  ctl.metrics.generatedTokens);
        ASSERT_EQ(plain.completed.size(), ctl.completed.size());
        for (size_t i = 0; i < plain.completed.size(); ++i) {
            EXPECT_EQ(plain.completed[i].req.id,
                      ctl.completed[i].req.id);
            EXPECT_DOUBLE_EQ(plain.completed[i].latency.value(),
                             ctl.completed[i].latency.value());
        }
        for (size_t i = 0; i < plain.replicas.size(); ++i)
            EXPECT_EQ(plain.replicas[i].iterations,
                      ctl.replicas[i].iterations);

        // Nothing fired, and a static pool bills N x makespan.
        EXPECT_EQ(ctl.controlPlane.cancelledRequests, 0u);
        EXPECT_EQ(ctl.controlPlane.wastedTokens, 0u);
        EXPECT_TRUE(ctl.controlPlane.warmups.empty());
        EXPECT_NEAR(ctl.controlPlane.replicaSeconds.value(),
                    3.0 * ctl.makespan.value(), 1e-9);
    }
}

TEST(ControlPlaneDeadlines, CancellationIsAccountedAndConserved)
{
    // Queue-saturating load with a TTFT deadline no queued tail can
    // meet: a healthy share of requests must cancel, and every counter
    // has to balance — fleet-wide and per replica.
    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Poisson;
    tc.ratePerSec = 96.0;
    tc.numRequests = 300;
    tc.lengths = LengthDistribution::Uniform;
    tc.inputLen = 256;
    tc.inputLenMax = 768;
    tc.outputLen = 64;
    tc.outputLenMax = 192;
    tc.seed = 0xCA9CE11Eu;
    auto trace = generateTrace(tc);

    FleetConfig fc = colocatedPimbaFleet(2);
    fc.controlPlane.deadlines.resize(1);
    fc.controlPlane.deadlines[0].ttft = Seconds(0.5);
    FleetReport rep = Fleet(mamba2_2p7b(), fc).run(trace);

    EXPECT_GT(rep.controlPlane.cancelledRequests, 0u);
    EXPECT_GT(rep.controlPlane.wastedTokens, 0u);
    EXPECT_EQ(rep.completed.size() + rep.controlPlane.cancelledRequests,
              trace.size());
    EXPECT_EQ(rep.metrics.requests, rep.completed.size());
    EXPECT_EQ(rep.metrics.cancelledRequests,
              rep.controlPlane.cancelledRequests);
    EXPECT_EQ(rep.metrics.wastedTokens, rep.controlPlane.wastedTokens);
    uint64_t perReplicaCancelled = 0, perReplicaWasted = 0,
             perReplicaDone = 0;
    for (const ServingReport &r : rep.replicas) {
        perReplicaCancelled += r.cancelledRequests;
        perReplicaWasted += r.wastedTokens;
        perReplicaDone += r.completedRequests;
    }
    EXPECT_EQ(perReplicaCancelled, rep.controlPlane.cancelledRequests);
    EXPECT_EQ(perReplicaWasted, rep.controlPlane.wastedTokens);
    EXPECT_EQ(perReplicaDone + perReplicaCancelled, trace.size());

    // Cancelled requests deliver nothing: the fleet's token counter is
    // exactly the sum over *completed* requests.
    uint64_t delivered = 0;
    for (const CompletedRequest &c : rep.completed)
        delivered += c.req.outputLen;
    EXPECT_EQ(rep.metrics.generatedTokens, delivered);
}

TEST(ControlPlaneSuperiority, AutoscalerBeatsBestStaticOnReplicaSeconds)
{
    // A day-shaped load: a dense working-hours burst that needs most
    // of the fleet, then a long sparse tail that needs almost none of
    // it. The best static count is sized for the burst and burns
    // replica-seconds through the whole tail; the autoscaler must
    // match its SLO attainment and bill strictly less.
    TraceConfig burst;
    burst.arrivals = ArrivalProcess::Poisson;
    burst.ratePerSec = 150.0;
    burst.numRequests = 1500;
    burst.lengths = LengthDistribution::Uniform;
    burst.inputLen = 128;
    burst.inputLenMax = 512;
    burst.outputLen = 32;
    burst.outputLenMax = 128;
    burst.seed = 0x5CA1AB1Eu;
    auto trace = generateTrace(burst);
    Seconds burstEnd = trace.back().arrival;
    TraceConfig tail = burst;
    tail.ratePerSec = 4.0;
    tail.numRequests = 120;
    tail.seed = 0x7A11E00Du;
    for (Request r : generateTrace(tail)) {
        r.id += trace.size() + 1000;
        r.arrival = r.arrival + burstEnd;
        trace.push_back(r);
    }
    ModelConfig model = mamba2_2p7b();
    SloConfig slo;
    slo.ttft = Seconds(2.5);
    slo.tpot = Seconds(0.05);
    const double kAttainment = 0.95;

    size_t bestStatic = 0;
    Seconds bestStaticBill{0.0};
    for (size_t n = 1; n <= 4; ++n) {
        FleetConfig fc = colocatedPimbaFleet(n);
        fc.slo = slo;
        FleetReport rep = Fleet(model, fc).run(trace);
        if (sustainsSlo(rep.metrics, kAttainment)) {
            bestStatic = n;
            bestStaticBill =
                Seconds(static_cast<double>(n) * rep.makespan.value());
            break;
        }
    }
    // The claim is vacuous if one replica already suffices — the trace
    // above is tuned so it does not.
    ASSERT_GE(bestStatic, 2u);

    FleetConfig fc = colocatedPimbaFleet(4);
    fc.slo = slo;
    fc.controlPlane = autoscalerOn(1, 4, 1, 0.5, 4.0, 1.0, 0.5);
    fc.controlPlane.autoscaler.scaleUpWait = Seconds(0.5);
    FleetReport scaled = Fleet(model, fc).run(trace);

    EXPECT_TRUE(sustainsSlo(scaled.metrics, kAttainment));
    EXPECT_LT(scaled.controlPlane.replicaSeconds.value(),
              bestStaticBill.value());
    // And it actually scaled — up for the burst, down for the tail.
    size_t peak = 0, trough = 4;
    for (const ScaleEvent &e : scaled.controlPlane.trajectory) {
        peak = std::max(peak, e.provisioned);
        trough = std::min(trough, e.provisioned);
    }
    EXPECT_GT(peak, 1u);
    EXPECT_LT(trough, peak);
}

TEST(ControlPlaneSuperiority, CacheAffinityBeatsJsqOnPrefixHeavyLoad)
{
    // Many tenant classes sharing long per-class prefixes, few
    // replicas: JSQ sprays every class across the whole fleet and pays
    // the cold prefix prefill on ~every replica, while the affinity
    // router converges each class onto the replica already holding its
    // prefix. Both fleets run identical engines and prefixes — only
    // the routing differs.
    const int kClasses = 24;
    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Poisson;
    tc.ratePerSec = 40.0;
    tc.numRequests = 600;
    for (int c = 0; c < kClasses; ++c) {
        TraceClass cls;
        cls.name = "tenant" + std::to_string(c);
        cls.weight = 1.0;
        cls.lengths = LengthDistribution::Fixed;
        cls.inputLen = 320;
        cls.outputLen = 24;
        tc.classes.push_back(cls);
    }
    tc.seed = 0xAFF1117Eu;
    auto trace = generateTrace(tc);
    ModelConfig model = mamba2_2p7b();

    auto runWith = [&](RouterPolicy router) {
        FleetConfig fc = colocatedPimbaFleet(4);
        fc.router = router;
        fc.controlPlane.prefixTokensByClass.assign(kClasses, 256);
        return Fleet(model, fc).run(trace);
    };
    FleetReport affinity = runWith(RouterPolicy::CacheAffinity);
    FleetReport jsq = runWith(RouterPolicy::JoinShortestQueue);

    EXPECT_LT(affinity.metrics.ttft.p95, jsq.metrics.ttft.p95);
    // Affinity routing must not trade the TTFT win for throughput
    // (makespan noise allows a sliver of goodput slack).
    EXPECT_GE(affinity.metrics.goodput.value(),
              0.98 * jsq.metrics.goodput.value());
}

TEST(ControlPlaneSuperiority, HighTierTtftSurvivesLowTierFlood)
{
    // A sparse interactive class (tier 1) under a saturating batch
    // flood (tier 0). Tiered admission queues the interactive arrivals
    // ahead of the flood, so its p95 TTFT must come in far below the
    // untiered FIFO run where it waits behind the batch backlog.
    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Poisson;
    tc.ratePerSec = 80.0;
    tc.numRequests = 400;
    TraceClass interactive;
    interactive.name = "interactive";
    interactive.weight = 1.0;
    interactive.lengths = LengthDistribution::Uniform;
    interactive.inputLen = 64;
    interactive.inputLenMax = 192;
    interactive.outputLen = 16;
    interactive.outputLenMax = 48;
    TraceClass batch;
    batch.name = "batch";
    batch.weight = 7.0;
    batch.lengths = LengthDistribution::Uniform;
    batch.inputLen = 256;
    batch.inputLenMax = 1024;
    batch.outputLen = 64;
    batch.outputLenMax = 192;
    tc.classes = {interactive, batch};
    tc.seed = 0xF100DEDu;
    auto trace = generateTrace(tc);
    ModelConfig model = mamba2_2p7b();

    FleetConfig tiered = colocatedPimbaFleet(2);
    tiered.controlPlane.tierByClass = {1, 0};
    FleetReport protectedRun = Fleet(model, tiered).run(trace);

    FleetReport floodedRun =
        Fleet(model, colocatedPimbaFleet(2)).run(trace);

    double protectedP95 = classP95Ttft(protectedRun, 0);
    double floodedP95 = classP95Ttft(floodedRun, 0);
    ASSERT_GT(protectedP95, 0.0);
    ASSERT_GT(floodedP95, 0.0);
    EXPECT_LT(protectedP95, floodedP95);
    // Protection is not starvation: every batch request still
    // completes (no deadlines are configured here).
    EXPECT_EQ(protectedRun.completed.size(), trace.size());
}

} // namespace
} // namespace pimba
