/**
 * @file
 * Bounded-memory replay tests: Fleet::runStreamed must agree with the
 * record-retaining run on everything exact (counts, tokens, goodput,
 * makespan), keep its sketch percentiles within the 1% agreement bound
 * ISSUE 9 pins, retain no per-request state in the report, leave the
 * fleet reusable, and refuse disaggregated fleets (whose driver polls
 * per-request completion records).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/workload.h"
#include "serving/trace.h"

namespace pimba {
namespace {

/** |a - b| relative to max(|a|, |b|); 0 when both are 0. */
double
relDiff(double a, double b)
{
    double scale = std::max(std::fabs(a), std::fabs(b));
    return scale == 0.0 ? 0.0 : std::fabs(a - b) / scale;
}

TraceConfig
replayTraceConfig(int n)
{
    TraceConfig cfg;
    cfg.arrivals = ArrivalProcess::Diurnal;
    cfg.ratePerSec = 24.0;
    cfg.diurnal.period = Seconds(30.0);
    cfg.diurnal.peakToTrough = 3.0;
    cfg.lengths = LengthDistribution::Uniform;
    cfg.inputLen = 256;
    cfg.inputLenMax = 768;
    cfg.outputLen = 128;
    cfg.outputLenMax = 384;
    cfg.numRequests = n;
    cfg.seed = 0x5EEDC0DEu;
    return cfg;
}

TEST(FleetReplay, StreamedRunMatchesExactRun)
{
    TraceConfig tc = replayTraceConfig(600);
    ModelConfig model = mamba2_2p7b();
    FleetConfig fc = colocatedPimbaFleet(2);

    FleetReport exact = Fleet(model, fc).run(generateTrace(tc));

    Fleet fleet(model, fc);
    StreamingMetrics stream(fc.slo);
    ArrivalStream arrivals(tc);
    FleetReport streamed = fleet.runStreamed(arrivals, stream);

    // Exact fields agree exactly.
    EXPECT_EQ(streamed.metrics.requests, exact.metrics.requests);
    EXPECT_EQ(streamed.metrics.generatedTokens,
              exact.metrics.generatedTokens);
    EXPECT_EQ(streamed.metrics.sloViolations,
              exact.metrics.sloViolations);
    EXPECT_DOUBLE_EQ(streamed.makespan.value(), exact.makespan.value());
    EXPECT_DOUBLE_EQ(streamed.metrics.goodput.value(),
                     exact.metrics.goodput.value());
    EXPECT_DOUBLE_EQ(streamed.metrics.tokensPerSec.value(),
                     exact.metrics.tokensPerSec.value());
    EXPECT_EQ(streamed.load.requestsPerReplica,
              exact.load.requestsPerReplica);

    // Sketch percentiles stay within the pinned 1% agreement bound.
    EXPECT_LE(relDiff(streamed.metrics.ttft.p50, exact.metrics.ttft.p50),
              0.01);
    EXPECT_LE(relDiff(streamed.metrics.ttft.p95, exact.metrics.ttft.p95),
              0.01);
    EXPECT_LE(relDiff(streamed.metrics.tpot.p95, exact.metrics.tpot.p95),
              0.01);
    EXPECT_LE(relDiff(streamed.metrics.latency.p99,
                      exact.metrics.latency.p99),
              0.01);

    // Bounded memory means no per-request retention anywhere.
    EXPECT_TRUE(streamed.completed.empty());
    EXPECT_TRUE(streamed.assignments.empty());
    for (const ServingReport &r : streamed.replicas) {
        EXPECT_TRUE(r.completed.empty());
        EXPECT_GT(r.completedRequests, 0u);
    }
    EXPECT_EQ(stream.observed(), exact.metrics.requests);
}

TEST(FleetReplay, FleetIsReusableAfterStreamedRun)
{
    // runStreamed grafts streaming observers onto the replica engines;
    // they must be restored so a later exact run retains records again.
    TraceConfig tc = replayTraceConfig(200);
    ModelConfig model = mamba2_2p7b();
    FleetConfig fc = colocatedPimbaFleet(2);
    auto trace = generateTrace(tc);

    Fleet fleet(model, fc);
    FleetReport before = fleet.run(trace);

    StreamingMetrics stream(fc.slo);
    ArrivalStream arrivals(tc);
    fleet.runStreamed(arrivals, stream);

    FleetReport after = fleet.run(trace);
    EXPECT_EQ(after.assignments, before.assignments);
    EXPECT_EQ(after.completed.size(), before.completed.size());
    EXPECT_DOUBLE_EQ(after.makespan.value(), before.makespan.value());
    EXPECT_DOUBLE_EQ(after.metrics.ttft.p95, before.metrics.ttft.p95);
}

TEST(FleetReplay, StreamedCountersAreExactUnderLoad)
{
    // At a rate above fleet capacity requests queue and complete out of
    // arrival order; the streamed counters must still account for every
    // request exactly.
    TraceConfig tc = replayTraceConfig(400);
    tc.arrivals = ArrivalProcess::Mmpp;
    tc.mmpp.burstMultiplier = 6.0;
    tc.mmpp.burstMean = Seconds(2.0);
    tc.mmpp.idleMean = Seconds(8.0);
    ModelConfig model = mamba2_2p7b();
    FleetConfig fc = colocatedPimbaFleet(2);

    Fleet fleet(model, fc);
    StreamingMetrics stream(fc.slo);
    ArrivalStream arrivals(tc);
    FleetReport rep = fleet.runStreamed(arrivals, stream);
    EXPECT_EQ(rep.metrics.requests, 400u);
    EXPECT_EQ(stream.observed(), 400u);
    uint64_t perReplica = 0;
    for (const ServingReport &r : rep.replicas)
        perReplica += r.completedRequests;
    EXPECT_EQ(perReplica, 400u);
}

using FleetReplayDeathTest = ::testing::Test;

TEST(FleetReplayDeathTest, DisaggregatedStreamingIsFatal)
{
    // The disaggregated driver polls per-request completion records to
    // build hand-offs, so bounded-memory streaming cannot apply there.
    TraceConfig tc = replayTraceConfig(8);
    Fleet fleet(mamba2_2p7b(), disaggregatedPimbaFleet());
    StreamingMetrics stream;
    ArrivalStream arrivals(tc);
    EXPECT_DEATH(fleet.runStreamed(arrivals, stream), "olocated");
}

} // namespace
} // namespace pimba
