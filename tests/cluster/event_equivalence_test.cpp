/**
 * @file
 * Event-calendar vs. lockstep equivalence: the discrete-event fleet
 * driver (Fleet::run) must reproduce the retired lockstep reference
 * (Fleet::runLockstep) bit for bit — same assignments, same completion
 * records, same metrics, same per-replica reports — on every fleet
 * preset shipped under scenarios/, colocated and disaggregated, across
 * every router the preset sweeps. This is the proof obligation that
 * lets the lockstep driver stay a debug-only reference.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "config/scenario.h"
#include "serving/trace_io.h"

namespace pimba {
namespace {

/** Field-exact comparison of two fleet reports. @p what names the
 *  preset/case/router combination in failure output. */
void
expectIdenticalReports(const FleetReport &a, const FleetReport &b,
                       const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.mode, b.mode);
    EXPECT_EQ(a.router, b.router);
    EXPECT_EQ(a.assignments, b.assignments);
    EXPECT_DOUBLE_EQ(a.makespan.value(), b.makespan.value());

    ASSERT_EQ(a.completed.size(), b.completed.size());
    for (size_t i = 0; i < a.completed.size(); ++i) {
        const CompletedRequest &x = a.completed[i];
        const CompletedRequest &y = b.completed[i];
        EXPECT_EQ(x.req.id, y.req.id) << "record " << i;
        EXPECT_EQ(x.req.classId, y.req.classId) << "record " << i;
        EXPECT_DOUBLE_EQ(x.ttft.value(), y.ttft.value()) << "record " << i;
        EXPECT_DOUBLE_EQ(x.tpot.value(), y.tpot.value()) << "record " << i;
        EXPECT_DOUBLE_EQ(x.latency.value(), y.latency.value())
            << "record " << i;
        EXPECT_DOUBLE_EQ(x.queueing.value(), y.queueing.value())
            << "record " << i;
        EXPECT_EQ(x.preemptions, y.preemptions) << "record " << i;
    }

    EXPECT_EQ(a.metrics.requests, b.metrics.requests);
    EXPECT_EQ(a.metrics.generatedTokens, b.metrics.generatedTokens);
    EXPECT_EQ(a.metrics.sloViolations, b.metrics.sloViolations);
    EXPECT_DOUBLE_EQ(a.metrics.goodput.value(), b.metrics.goodput.value());
    EXPECT_DOUBLE_EQ(a.metrics.ttft.p50, b.metrics.ttft.p50);
    EXPECT_DOUBLE_EQ(a.metrics.ttft.p95, b.metrics.ttft.p95);
    EXPECT_DOUBLE_EQ(a.metrics.tpot.p95, b.metrics.tpot.p95);
    EXPECT_DOUBLE_EQ(a.metrics.latency.p99, b.metrics.latency.p99);
    EXPECT_DOUBLE_EQ(a.metrics.queueing.p95, b.metrics.queueing.p95);

    ASSERT_EQ(a.replicas.size(), b.replicas.size());
    for (size_t i = 0; i < a.replicas.size(); ++i) {
        EXPECT_EQ(a.replicas[i].iterations, b.replicas[i].iterations)
            << "replica " << i;
        EXPECT_EQ(a.replicas[i].completedRequests,
                  b.replicas[i].completedRequests)
            << "replica " << i;
        EXPECT_EQ(a.replicas[i].generatedTokens,
                  b.replicas[i].generatedTokens)
            << "replica " << i;
        EXPECT_DOUBLE_EQ(a.replicas[i].makespan.value(),
                         b.replicas[i].makespan.value())
            << "replica " << i;
    }

    EXPECT_EQ(a.load.requestsPerReplica, b.load.requestsPerReplica);
    EXPECT_DOUBLE_EQ(a.load.requestImbalance, b.load.requestImbalance);
    EXPECT_DOUBLE_EQ(a.load.tokenImbalance, b.load.tokenImbalance);

    EXPECT_EQ(a.transfer.transfers, b.transfer.transfers);
    EXPECT_DOUBLE_EQ(a.transfer.totalBytes.value(),
                     b.transfer.totalBytes.value());
}

/** Run one fleet case under both drivers and compare. */
void
checkCase(const FleetScenario &sc, const FleetCase &c,
          std::optional<RouterPolicy> router,
          const std::vector<Request> &trace, const std::string &what)
{
    FleetConfig cfg = c.fleet;
    if (router)
        cfg.router = *router;
    FleetReport event = Fleet(sc.model, cfg).run(trace);
    FleetReport lockstep = Fleet(sc.model, cfg).runLockstep(trace);
    expectIdenticalReports(event, lockstep, what);
}

TEST(EventEquivalence, EveryFleetPresetIsByteIdenticalToLockstep)
{
    // Sweep every scenarios/*.json under the smoke overlay (full-size
    // presets are CI-hostile); non-fleet kinds are skipped. Guard that
    // the sweep saw real work so a filtering bug can't pass vacuously.
    size_t fleetPresets = 0, casesChecked = 0;
    std::vector<std::string> files;
    for (const auto &entry : std::filesystem::directory_iterator(
             std::string(PIMBA_SCENARIO_DIR)))
        if (entry.path().extension() == ".json")
            files.push_back(entry.path().string());
    std::sort(files.begin(), files.end());
    ASSERT_FALSE(files.empty());

    for (const std::string &file : files) {
        Scenario scenario = loadScenarioFile(file, /*smoke=*/true);
        if (scenario.kind != ScenarioKind::Fleet)
            continue;
        ++fleetPresets;
        const auto &sc = std::get<FleetScenario>(scenario.spec);
        auto trace = materializeTrace(sc.trace);
        for (const FleetCase &c : sc.cases) {
            std::vector<std::optional<RouterPolicy>> routers;
            if (sc.routers.empty()) {
                routers.push_back(std::nullopt);
            } else {
                for (RouterPolicy r : sc.routers)
                    routers.emplace_back(r);
            }
            for (const auto &router : routers) {
                std::string what =
                    scenario.name + " / " + c.label +
                    (router ? " / " + routerName(*router) : "");
                checkCase(sc, c, router, trace, what);
                ++casesChecked;
            }
        }
    }
    // scenarios/ ships at least the router shootout and the
    // disaggregation study; both must have been exercised.
    EXPECT_GE(fleetPresets, 2u);
    EXPECT_GE(casesChecked, 4u);
}

TEST(EventEquivalence, StreamedSourceMatchesMaterializedRun)
{
    // run(ArrivalSource&) must agree with run(vector): the lazy pull
    // path and the sorted-copy path drive the same calendar.
    Scenario scenario = loadScenarioFile(
        std::string(PIMBA_SCENARIO_DIR) + "/cluster_routers.json",
        /*smoke=*/true);
    const auto &sc = std::get<FleetScenario>(scenario.spec);
    auto trace = materializeTrace(sc.trace);
    const FleetCase &c = sc.cases.front();

    FleetReport fromVector = Fleet(sc.model, c.fleet).run(trace);
    ArrivalStream stream(sc.trace);
    FleetReport fromStream = Fleet(sc.model, c.fleet).run(stream);
    expectIdenticalReports(fromVector, fromStream, "stream vs vector");
}

} // namespace
} // namespace pimba
