/**
 * @file
 * Router policy unit tests: deterministic picks, documented tie
 * breaking (lowest replica index), and seeded power-of-two sampling
 * that replays identically for a given seed.
 */

#include <gtest/gtest.h>

#include "cluster/router.h"

namespace pimba {
namespace {

Request
req(uint64_t id)
{
    Request r;
    r.id = id;
    r.inputLen = 128;
    r.outputLen = 32;
    return r;
}

std::vector<ReplicaSnapshot>
pool(std::vector<std::pair<size_t, uint64_t>> loads)
{
    std::vector<ReplicaSnapshot> snap;
    for (auto [depth, tokens] : loads)
        snap.push_back(ReplicaSnapshot{depth, tokens});
    return snap;
}

TEST(ClusterRouter, NamesAndRegistry)
{
    EXPECT_EQ(allRouterPolicies().size(), 4u);
    EXPECT_EQ(routerName(RouterPolicy::RoundRobin), "rr");
    EXPECT_EQ(routerName(RouterPolicy::JoinShortestQueue), "jsq");
    EXPECT_EQ(routerName(RouterPolicy::LeastOutstandingTokens), "lot");
    EXPECT_EQ(routerName(RouterPolicy::PowerOfTwoChoices), "p2c");
    for (RouterPolicy p : allRouterPolicies())
        EXPECT_EQ(makeRouter(p)->policy(), p);
}

TEST(ClusterRouter, RoundRobinCycles)
{
    auto rr = makeRouter(RouterPolicy::RoundRobin);
    auto snap = pool({{9, 900}, {0, 0}, {5, 500}});
    for (uint64_t i = 0; i < 9; ++i)
        EXPECT_EQ(rr->route(snap, req(i)), i % 3) << i;
}

TEST(ClusterRouter, JsqPicksShortestQueueTiesToLowestIndex)
{
    auto jsq = makeRouter(RouterPolicy::JoinShortestQueue);
    EXPECT_EQ(jsq->route(pool({{4, 10}, {2, 99}, {3, 1}}), req(0)), 1u);
    // Queue-depth tie between replicas 0 and 2: the lower index wins,
    // even though replica 2 has fewer outstanding tokens.
    EXPECT_EQ(jsq->route(pool({{2, 50}, {3, 0}, {2, 10}}), req(1)), 0u);
}

TEST(ClusterRouter, LeastTokensPicksLightestTokenLoad)
{
    auto lot = makeRouter(RouterPolicy::LeastOutstandingTokens);
    EXPECT_EQ(lot->route(pool({{1, 500}, {9, 100}, {2, 300}}), req(0)),
              1u);
    EXPECT_EQ(lot->route(pool({{1, 100}, {9, 100}}), req(1)), 0u);
}

TEST(ClusterRouter, PowerOfTwoComparesTheSampledPair)
{
    // With exactly two replicas every sample is the pair {0, 1}, so
    // the pick is always the less token-loaded replica.
    auto p2c = makeRouter(RouterPolicy::PowerOfTwoChoices, 42);
    for (uint64_t i = 0; i < 16; ++i)
        EXPECT_EQ(p2c->route(pool({{1, 10}, {1, 999}}), req(i)), 0u);
    for (uint64_t i = 0; i < 16; ++i)
        EXPECT_EQ(p2c->route(pool({{1, 999}, {1, 10}}), req(i)), 1u);
}

TEST(ClusterRouter, PowerOfTwoIsSeedDeterministic)
{
    auto a = makeRouter(RouterPolicy::PowerOfTwoChoices, 7);
    auto b = makeRouter(RouterPolicy::PowerOfTwoChoices, 7);
    auto snap = pool({{1, 100}, {1, 100}, {1, 100}, {1, 100}});
    for (uint64_t i = 0; i < 64; ++i) {
        size_t pa = a->route(snap, req(i));
        EXPECT_EQ(pa, b->route(snap, req(i))) << i;
        EXPECT_LT(pa, snap.size());
    }
}

TEST(ClusterRouter, SingleReplicaPoolAlwaysPicksIt)
{
    for (RouterPolicy p : allRouterPolicies()) {
        auto router = makeRouter(p);
        for (uint64_t i = 0; i < 4; ++i)
            EXPECT_EQ(router->route(pool({{3, 30}}), req(i)), 0u)
                << routerName(p);
    }
}

} // namespace
} // namespace pimba
