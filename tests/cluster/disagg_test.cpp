/**
 * @file
 * Prefill/decode disaggregation tests: the shipped bytes follow the
 * simulator's footprint math, the link transfer is charged into TTFT
 * (a slower link strictly raises it), fleet-level token conservation
 * spans both stages, single-token requests never cross the link,
 * replay is deterministic, and the pinned comparison against the
 * colocated baseline — decode replicas freed of prefill interference
 * show strictly lower tail TPOT on the same trace.
 */

#include <gtest/gtest.h>

#include <set>

#include "cluster/workload.h"
#include "serving/trace.h"

namespace pimba {
namespace {

TEST(ClusterDisagg, CompletenessTokenConservationAndStageSplit)
{
    auto trace = clusterTrace(24.0, 96);
    Fleet fleet(mamba2_2p7b(), disaggregatedPimbaFleet());
    FleetReport rep = fleet.run(trace);

    ASSERT_EQ(rep.completed.size(), trace.size());
    std::set<uint64_t> ids;
    uint64_t expected = 0;
    for (const Request &r : trace)
        expected += r.outputLen;
    for (const CompletedRequest &c : rep.completed)
        ids.insert(c.req.id);
    EXPECT_EQ(ids.size(), trace.size());

    // Prefill replicas deliver 1 token per request, decode replicas the
    // remaining outputLen - 1; the fleet total must conserve.
    uint64_t generated = 0;
    for (const ServingReport &r : rep.replicas) {
        generated += r.generatedTokens;
        // Per-replica metrics must agree with the replica's own
        // delivered counter — a decode replica does not re-claim the
        // first token its prefill replica already delivered.
        EXPECT_EQ(r.metrics.generatedTokens, r.generatedTokens);
    }
    EXPECT_EQ(generated, expected);
    EXPECT_EQ(rep.metrics.generatedTokens, expected);

    // Stage split respected: prefill on replicas [0, 2), decode on
    // [2, 4), every multi-token request handed off exactly once.
    uint64_t multiToken = 0;
    for (const Request &r : trace)
        if (r.outputLen > 1)
            ++multiToken;
    EXPECT_EQ(rep.transfer.transfers, multiToken);
    for (const Assignment &a : rep.assignments) {
        EXPECT_LT(a.replica, 2u);
        if (a.decodeReplica >= 0) {
            EXPECT_GE(a.decodeReplica, 2);
        }
    }
}

TEST(ClusterDisagg, TransferBytesFollowFootprintMath)
{
    // Fixed-length OPT trace: the KV cache grows per token, so every
    // hand-off ships exactly state + KV at inputLen + 1 tokens.
    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Poisson;
    tc.ratePerSec = 8.0;
    tc.numRequests = 24;
    tc.inputLen = 256;
    tc.outputLen = 32;
    tc.seed = 0x5EEDBEEFu;
    auto trace = generateTrace(tc);

    ModelConfig model = opt2p7b();
    Fleet fleet(model, disaggregatedPimbaFleet());
    FleetReport rep = fleet.run(trace);

    ServingSimulator sim(makeSystem(SystemKind::PIMBA));
    MemoryUsage mem = sim.memoryUsage(model, 1, 256 + 1);
    Bytes perTransfer = mem.state + mem.kvCache;
    ASSERT_EQ(rep.transfer.transfers, trace.size());
    EXPECT_GT(perTransfer, Bytes(0.0));
    EXPECT_NEAR(rep.transfer.totalBytes.value(),
                perTransfer.value() * static_cast<double>(trace.size()),
                1e-6 * rep.transfer.totalBytes.value());
    EXPECT_GT(rep.transfer.totalSeconds, Seconds(0.0));
    EXPECT_GT(rep.transfer.totalEnergyJ, Joules(0.0));
    EXPECT_GT(rep.transfer.perTransfer.p50, 0.0);
}

TEST(ClusterDisagg, TransferIsChargedIntoTtft)
{
    auto trace = clusterTrace(24.0, 96);
    ModelConfig model = mamba2_2p7b();

    FleetReport nvlink = Fleet(model, disaggregatedPimbaFleet(nvlinkLink()))
                             .run(trace);
    FleetReport ib = Fleet(model, disaggregatedPimbaFleet(infinibandLink()))
                         .run(trace);

    // The prefill stage is identical in both runs; only the link
    // differs, and every hand-off pays strictly more on InfiniBand —
    // so the transfer-inclusive TTFT must be strictly higher.
    EXPECT_GT(ib.transfer.perTransfer.p50,
              nvlink.transfer.perTransfer.p50);
    EXPECT_GT(ib.metrics.ttft.mean, nvlink.metrics.ttft.mean);
    EXPECT_GT(ib.transfer.meanTtftShare, nvlink.transfer.meanTtftShare);
    EXPECT_GT(nvlink.transfer.meanTtftShare, 0.0);
    EXPECT_LT(ib.transfer.meanTtftShare, 1.0);

    // TTFT always covers the wait for the blocks to land, and the
    // decode stage can only add time after it.
    for (const CompletedRequest &c : nvlink.completed) {
        EXPECT_GT(c.ttft, Seconds(0.0));
        EXPECT_GE(c.latency, c.ttft - Seconds(1e-12));
        EXPECT_GE(c.tpot, Seconds(0.0));
    }
}

TEST(ClusterDisagg, DisaggregationCutsTailTpotAgainstColocated)
{
    // The DistServe claim on the same trace and the same 4 devices:
    // colocated replicas interleave prefill chunks with decode steps,
    // inflating inter-token gaps; dedicated decode replicas do not.
    // The transfer-inclusive TTFT is reported against the colocated
    // baseline by bench_cluster_sweep; here both sides are pinned.
    auto trace = clusterTrace(24.0, 192);
    ModelConfig model = mamba2_2p7b();

    FleetReport coloRep = Fleet(model, colocatedPimbaFleet()).run(trace);
    FleetReport disRep = Fleet(model, disaggregatedPimbaFleet()).run(trace);

    EXPECT_LT(disRep.metrics.tpot.p95, coloRep.metrics.tpot.p95);
    // Both fleets must be healthy for the comparison to mean anything.
    EXPECT_GT(coloRep.metrics.goodput, RequestsPerSecond(0.0));
    EXPECT_GT(disRep.metrics.goodput, RequestsPerSecond(0.0));
    EXPECT_EQ(disRep.completed.size(), coloRep.completed.size());
}

TEST(ClusterDisagg, SingleTokenRequestsCompleteAtPrefillStage)
{
    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Fixed;
    tc.ratePerSec = 50.0;
    tc.numRequests = 12;
    tc.inputLen = 128;
    tc.outputLen = 1;
    auto trace = generateTrace(tc);

    Fleet fleet(mamba2_2p7b(), disaggregatedPimbaFleet());
    FleetReport rep = fleet.run(trace);
    ASSERT_EQ(rep.completed.size(), trace.size());
    EXPECT_EQ(rep.transfer.transfers, 0u);
    EXPECT_DOUBLE_EQ(rep.transfer.totalBytes.value(), 0.0);
    for (const Assignment &a : rep.assignments)
        EXPECT_EQ(a.decodeReplica, -1);
    // Decode replicas never saw a request.
    EXPECT_EQ(rep.replicas[2].completed.size(), 0u);
    EXPECT_EQ(rep.replicas[3].completed.size(), 0u);
}

TEST(ClusterDisagg, DecodeSidePreemptionConservesTokens)
{
    // Squeeze the decode replicas' block pools until eviction fires
    // mid-decode. A preloaded victim's shipped prompt is assumed to be
    // retained in the transfer staging buffer (no second link
    // transfer), so only its locally decoded tokens are recompute debt
    // — and the fleet totals must still conserve.
    ModelConfig model = opt2p7b(); // KV growth forces decode pressure
    ServingSimulator sim(makeSystem(SystemKind::PIMBA));
    Bytes weights = sim.weightFootprint(model);

    FleetConfig cfg = disaggregatedPimbaFleet();
    for (size_t i = cfg.prefillReplicas; i < cfg.replicas.size(); ++i)
        cfg.replicas[i].engine.memoryBudget =
            weights + 3.0 * sim.requestFootprint(model, 256 + 192);

    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Fixed;
    tc.ratePerSec = 200.0; // near-simultaneous burst
    tc.numRequests = 12;
    tc.inputLen = 256;
    tc.outputLen = 192;
    auto trace = generateTrace(tc);

    FleetReport rep = Fleet(model, cfg).run(trace);
    ASSERT_EQ(rep.completed.size(), trace.size());

    uint64_t decodePreemptions = 0, decodeRecomputed = 0;
    for (size_t i = cfg.prefillReplicas; i < cfg.replicas.size(); ++i) {
        decodePreemptions += rep.replicas[i].preemptions;
        decodeRecomputed += rep.replicas[i].recomputedTokens;
    }
    EXPECT_GT(decodePreemptions, 0u);
    // Recompute debt counts locally decoded tokens only — it can never
    // reach the shipped-prompt volume a full re-prefill would imply.
    EXPECT_GT(decodeRecomputed, 0u);
    EXPECT_LT(decodeRecomputed, decodePreemptions * 256);

    uint64_t generated = 0, expected = 0;
    for (const ServingReport &r : rep.replicas)
        generated += r.generatedTokens;
    for (const Request &r : trace)
        expected += r.outputLen;
    EXPECT_EQ(generated, expected);
    EXPECT_EQ(rep.transfer.transfers, trace.size());
}

TEST(ClusterDisagg, DeterministicReplayForEveryRouterPolicy)
{
    auto trace = clusterTrace(24.0, 48);
    ModelConfig model = mamba2_2p7b();
    for (RouterPolicy policy : allRouterPolicies()) {
        FleetConfig cfg = disaggregatedPimbaFleet();
        cfg.router = policy;
        FleetReport a = Fleet(model, cfg).run(trace);
        FleetReport b = Fleet(model, cfg).run(trace);
        EXPECT_EQ(a.assignments, b.assignments) << routerName(policy);
        EXPECT_DOUBLE_EQ(a.makespan.value(), b.makespan.value()) << routerName(policy);
        EXPECT_DOUBLE_EQ(a.metrics.ttft.p95, b.metrics.ttft.p95)
            << routerName(policy);
        EXPECT_DOUBLE_EQ(a.transfer.totalSeconds.value(),
                         b.transfer.totalSeconds.value())
            << routerName(policy);
    }
}

} // namespace
} // namespace pimba
