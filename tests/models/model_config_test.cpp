/**
 * @file
 * Tests of the model zoo: parameter counts, 70B scaling (Section 6.1),
 * and per-token operator-graph generation.
 */

#include <gtest/gtest.h>

#include <map>

#include "models/model_config.h"

namespace pimba {
namespace {

TEST(ModelZoo, SmallScaleParameterCounts)
{
    // 2.7B-class SU-LLMs within 15% of nominal; 7B-class within 20%.
    EXPECT_NEAR(retnet2p7b().paramCount(), 2.7e9, 0.4e9);
    EXPECT_NEAR(gla2p7b().paramCount(), 2.7e9, 0.4e9);
    EXPECT_NEAR(hgrn2_2p7b().paramCount(), 2.7e9, 0.4e9);
    EXPECT_NEAR(mamba2_2p7b().paramCount(), 2.7e9, 0.4e9);
    EXPECT_NEAR(zamba2_7b().paramCount(), 7.5e9, 1.2e9);
    EXPECT_NEAR(opt7b().paramCount(), 6.7e9, 0.7e9);
    EXPECT_NEAR(opt2p7b().paramCount(), 2.7e9, 0.4e9);
}

TEST(ModelZoo, LayerKindSplit)
{
    EXPECT_EQ(retnet2p7b().attentionLayers(), 0);
    EXPECT_EQ(retnet2p7b().stateUpdateLayers(), 32);
    EXPECT_EQ(opt7b().attentionLayers(), 32);
    EXPECT_EQ(opt7b().stateUpdateLayers(), 0);
    // Zamba2: one attention layer per six Mamba-2 layers.
    ModelConfig z = zamba2_7b();
    EXPECT_EQ(z.attentionLayers(), z.layers / 7);
    EXPECT_EQ(z.stateUpdateLayers(), z.layers - z.layers / 7);
}

TEST(ModelZoo, StateAndKvFootprints)
{
    // Mamba-2 2.7B: 64 layers x 80 heads x 64 x 128 x 2 B = 83.9 MB.
    EXPECT_NEAR(mamba2_2p7b().stateBytes(2.0), 83.9e6, 1e6);
    EXPECT_EQ(retnet2p7b().kvBytesPerToken(2.0), 0.0);
    // OPT 6.7B: 32 layers x 4096 hidden x 2 (K,V) x 2 B = 524 KB/token.
    EXPECT_NEAR(opt7b().kvBytesPerToken(2.0), 524288.0, 1.0);
}

class Scaled70b : public ::testing::TestWithParam<ModelConfig>
{
};

TEST_P(Scaled70b, HitsTargetParams)
{
    ModelConfig big = scaleModel(GetParam(), 70e9);
    EXPECT_NEAR(big.paramCount(), 70e9, 3.5e9) << GetParam().name;
}

TEST_P(Scaled70b, KeepsHeadCounts)
{
    ModelConfig base = GetParam();
    ModelConfig big = scaleModel(base, 70e9);
    EXPECT_EQ(big.suHeads, base.suHeads);
    EXPECT_EQ(big.attnHeads, base.attnHeads);
}

TEST_P(Scaled70b, WidensWithHidden)
{
    ModelConfig base = GetParam();
    ModelConfig big = scaleModel(base, 70e9);
    EXPECT_GT(big.dModel, base.dModel);
    if (base.suHeads > 0) {
        EXPECT_GE(big.dimHead, base.dimHead);
        EXPECT_GE(big.dimState, base.dimState);
    }
}

TEST_P(Scaled70b, PreservesHybridRatio)
{
    ModelConfig base = GetParam();
    ModelConfig big = scaleModel(base, 70e9);
    if (base.attnEvery > 1) {
        EXPECT_EQ(big.layers % base.attnEvery, 0);
        EXPECT_EQ(big.attentionLayers(), big.layers / base.attnEvery);
    }
}

INSTANTIATE_TEST_SUITE_P(AllModels, Scaled70b,
                         ::testing::ValuesIn(evaluationModels()),
                         [](const auto &info) {
                             std::string n = info.param.name;
                             for (auto &c : n) {
                                 if (!isalnum(static_cast<unsigned char>(c)))
                                     c = '_';
                             }
                             return n;
                         });

TEST(OpGraph, ClassesPresent)
{
    auto ops = generationStepOps(mamba2_2p7b(), 32, 2048);
    std::map<OpClass, int> counts;
    for (const auto &op : ops)
        counts[op.cls]++;
    EXPECT_EQ(counts[OpClass::StateUpdate], 64);
    EXPECT_EQ(counts[OpClass::CausalConv], 64);
    EXPECT_EQ(counts[OpClass::Discretization], 64);
    EXPECT_EQ(counts[OpClass::Attention], 0);
    EXPECT_GT(counts[OpClass::GEMM], 64);
    EXPECT_EQ(counts[OpClass::Communication], 0); // tp = 1
}

TEST(OpGraph, AttentionModelHasNoStateUpdates)
{
    auto ops = generationStepOps(opt7b(), 32, 2048);
    for (const auto &op : ops) {
        ASSERT_NE(op.cls, OpClass::StateUpdate);
        ASSERT_NE(op.cls, OpClass::CausalConv);
        ASSERT_NE(op.cls, OpClass::Discretization);
    }
}

TEST(OpGraph, HybridHasBoth)
{
    auto ops = generationStepOps(zamba2_7b(), 32, 2048);
    int su = 0, attn = 0;
    for (const auto &op : ops) {
        su += op.cls == OpClass::StateUpdate;
        attn += op.cls == OpClass::Attention;
    }
    EXPECT_EQ(su, 66);
    EXPECT_EQ(attn, 11);
}

TEST(OpGraph, TensorParallelShardsWork)
{
    auto single = generationStepOps(opt7b(), 128, 2048, 1);
    auto sharded = generationStepOps(opt7b(), 128, 2048, 8);
    double flops1 = 0.0, flops8 = 0.0;
    bool has_comm = false;
    for (const auto &op : single)
        flops1 += op.flops;
    for (const auto &op : sharded) {
        flops8 += op.flops;
        has_comm |= op.cls == OpClass::Communication;
    }
    EXPECT_TRUE(has_comm);
    EXPECT_NEAR(flops8, flops1 / 8.0, flops1 * 0.03);
}

TEST(OpGraph, StateUpdateShapeMatchesModel)
{
    ModelConfig m = retnet2p7b();
    auto ops = generationStepOps(m, 64, 1024);
    for (const auto &op : ops) {
        if (op.cls == OpClass::StateUpdate) {
            EXPECT_EQ(op.su.instances,
                      static_cast<uint64_t>(64) * m.suHeads);
            EXPECT_EQ(op.su.dimHead, m.dimHead);
            EXPECT_EQ(op.su.dimState, m.dimState);
        }
    }
}

TEST(OpGraph, AttentionSeqLenPropagates)
{
    auto ops = generationStepOps(opt7b(), 16, 4096);
    for (const auto &op : ops) {
        if (op.cls == OpClass::Attention) {
            EXPECT_EQ(op.attn.seqLen, 4096u);
        }
    }
}

TEST(OpGraph, BatchScalesStateUpdateLinearly)
{
    auto a = generationStepOps(mamba2_2p7b(), 32, 2048);
    auto b = generationStepOps(mamba2_2p7b(), 128, 2048);
    Bytes su_a{0.0}, su_b{0.0};
    for (const auto &op : a)
        if (op.cls == OpClass::StateUpdate)
            su_a += op.memBytes;
    for (const auto &op : b)
        if (op.cls == OpClass::StateUpdate)
            su_b += op.memBytes;
    EXPECT_NEAR(su_b / su_a, 4.0, 0.05);
}

TEST(OpGraph, OpClassNamesMatchPaperLegends)
{
    EXPECT_EQ(opClassName(OpClass::StateUpdate), "StateUpdate");
    EXPECT_EQ(opClassName(OpClass::CausalConv), "CausalConv");
    EXPECT_EQ(opClassName(OpClass::Discretization), "Discretization");
    EXPECT_EQ(opClassName(OpClass::Communication), "Communication");
}

} // namespace
} // namespace pimba
