/**
 * @file
 * Cross-module integration tests: full paths from model description to
 * simulated system numbers, and consistency between the independent
 * layers of the stack.
 */

#include <gtest/gtest.h>

#include "accuracy/evaluate.h"
#include "pim/area_model.h"
#include "pim/spu.h"
#include "sim/serving_sim.h"

namespace pimba {
namespace {

TEST(EndToEnd, Figure12CellReproduces)
{
    // One full Fig. 12 cell: all four systems on Mamba-2 2.7B, b=64.
    ModelConfig m = mamba2_2p7b();
    std::map<SystemKind, double> thr;
    for (SystemKind k : mainSystems()) {
        ServingSimulator sim(makeSystem(k));
        thr[k] = sim.generationThroughput(m, 64, 2048, 2048).value();
        EXPECT_GT(thr[k], 0.0);
    }
    EXPECT_GT(thr[SystemKind::PIMBA], thr[SystemKind::GPU]);
    double speedup = thr[SystemKind::PIMBA] / thr[SystemKind::GPU];
    EXPECT_GT(speedup, 1.2);
    EXPECT_LT(speedup, 4.5);
}

TEST(EndToEnd, PimKernelTimeConsistentWithScheduler)
{
    // The serving simulator's state-update latency for Pimba must be
    // exactly the PIM kernel model's (plus the launch overhead), i.e.
    // the layers stack without hidden fudge factors.
    ModelConfig m = retnet2p7b();
    SystemConfig cfg = makeSystem(SystemKind::PIMBA);
    ServingSimulator sim(cfg);
    auto step = sim.generationStep(m, 32, 1);

    PimComputeModel pim(cfg.hbm, pimbaDesign());
    StateUpdateShape shape{static_cast<uint64_t>(32) * m.suHeads,
                           m.dimHead, m.dimState};
    double per_layer = pim.stateUpdate(shape).seconds.value() +
                       cfg.gpu.kernelLaunchOverhead;
    EXPECT_NEAR(step.latency.get("StateUpdate"),
                per_layer * m.stateUpdateLayers(), 1e-9);
}

TEST(EndToEnd, SpePipelineMatchesKernelThroughputModel)
{
    // The occupancy simulation and the columnsPerCompSlot constant used
    // by the kernel model must agree.
    auto res = simulateSpuPipeline(PimStyle::PimbaInterleaved, 20000);
    double per_pair = res.throughputPerBankPair();
    double model = columnsPerCompSlot(PimStyle::PimbaInterleaved, 16,
                                      true) / 8.0; // 8 pairs per PC
    EXPECT_NEAR(per_pair, model, 0.01);
}

TEST(EndToEnd, AreaAndPerformanceTradeoffOfFig5)
{
    // Fig. 5's joint claim: pipelined throughput at time-multiplexed
    // cost is impossible per bank — Pimba's sharing resolves it.
    PimArea pimba = PimAreaModel::designArea(pimbaDesign(), 16);
    PimArea perbank = PimAreaModel::designArea(
        PimStyle::PerBankPipelined, NumberFormat::FP16, false, 16);
    EXPECT_LT(PimAreaModel::overheadPercent(pimba), 25.0);
    EXPECT_GT(PimAreaModel::overheadPercent(perbank), 25.0);

    PimComputeModel fast(hbm2eConfig(), pimbaDesign());
    PimComputeModel slow(hbm2eConfig(), hbmPimDesign());
    StateUpdateShape shape{128 * 80, 64, 128};
    EXPECT_LT(fast.stateUpdate(shape).seconds,
              slow.stateUpdate(shape).seconds);
}

TEST(EndToEnd, QuantFormatsConsistentAcrossLayers)
{
    // The storage width the simulator charges equals the codec's.
    SystemConfig pimba = makeSystem(SystemKind::PIMBA);
    EXPECT_EQ(pimba.stateFormat(), NumberFormat::MX8);
    EXPECT_DOUBLE_EQ(bitsPerValue(pimba.stateFormat()), 8.0);
    SystemConfig gpuq = makeSystem(SystemKind::GPU_Q);
    EXPECT_DOUBLE_EQ(bitsPerValue(gpuq.stateFormat()), 8.5);
}

TEST(EndToEnd, AccuracyAndAreaParetoPointForMx8)
{
    // Fig. 6's conclusion, end to end: MX8+SR sits at low area AND
    // near-baseline perplexity; fp16 matches accuracy at much larger
    // area; e5m2 is small but inaccurate.
    auto model = accuracyModels()[3]; // Mamba-2
    double base = evalPerplexity(model, QuantSpec{}, 256);
    double mx8 = evalPerplexity(
        model, {NumberFormat::MX8, Rounding::Stochastic}, 256);
    double e5m2 = evalPerplexity(model, {NumberFormat::E5M2,
                                         Rounding::Nearest}, 256);
    auto ovh = [](NumberFormat fmt) {
        return PimAreaModel::overheadPercent(PimAreaModel::designArea(
            PimStyle::PerBankPipelined, fmt, true, 16));
    };
    EXPECT_LT(mx8, base * 1.10);
    EXPECT_GT(e5m2, base * 1.05);
    EXPECT_LT(ovh(NumberFormat::MX8), ovh(NumberFormat::FP16));
    EXPECT_LT(ovh(NumberFormat::MX8), ovh(NumberFormat::INT8));
}

TEST(EndToEnd, ThroughputBatchScaling)
{
    // Throughput grows with batch for every system (Fig. 12's x-axis),
    // sub-linearly because the state update is batch-linear.
    for (SystemKind k : mainSystems()) {
        ServingSimulator sim(makeSystem(k));
        double t32 = sim.generationThroughput(mamba2_2p7b(), 32, 2048,
                                              2048).value();
        double t128 = sim.generationThroughput(mamba2_2p7b(), 128, 2048,
                                               2048).value();
        EXPECT_GT(t128, t32) << systemName(k);
        EXPECT_LT(t128, 4.0 * t32) << systemName(k);
    }
}

TEST(EndToEnd, LargeScaleUsesAllDevices)
{
    // 70B on 8 GPUs must beat 70B on 1 GPU (sanity of TP sharding).
    ModelConfig m = scaleModel(mamba2_2p7b(), 70e9);
    ServingSimulator one(makeSystem(SystemKind::PIMBA, 1));
    ServingSimulator eight(makeSystem(SystemKind::PIMBA, 8));
    double t1 = one.generationThroughput(m, 64, 1024, 1024).value();
    double t8 = eight.generationThroughput(m, 64, 1024, 1024).value();
    EXPECT_GT(t8, 2.0 * t1);
}

} // namespace
} // namespace pimba
