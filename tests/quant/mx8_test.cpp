/**
 * @file
 * Bit-level tests of the MX8 codec and the MX Multiplier / MX Adder
 * datapaths (paper Section 5.3, Fig. 9).
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "quant/mx8.h"

namespace pimba {
namespace {

std::array<double, kMxGroupSize>
ramp(double scale = 1.0)
{
    std::array<double, kMxGroupSize> v{};
    for (int i = 0; i < kMxGroupSize; ++i)
        v[i] = scale * (i - 7.5) / 8.0;
    return v;
}

TEST(Mx8Codec, ZeroGroup)
{
    Lfsr16 lfsr(1);
    std::array<double, kMxGroupSize> v{};
    MxGroup g = mxQuantize(v.data(), Rounding::Nearest, lfsr);
    EXPECT_TRUE(g.isZero());
    for (int i = 0; i < kMxGroupSize; ++i)
        EXPECT_EQ(g.value(i), 0.0);
}

TEST(Mx8Codec, SharedExponentCoversMax)
{
    Lfsr16 lfsr(1);
    auto v = ramp(3.0);
    MxGroup g = mxQuantize(v.data(), Rounding::Nearest, lfsr);
    // Largest magnitude must be representable: |max| <= 2^sharedExp.
    double amax = 0.0;
    for (double x : v)
        amax = std::max(amax, std::fabs(x));
    EXPECT_LE(amax, std::ldexp(1.0, g.sharedExp));
    EXPECT_GT(amax, std::ldexp(1.0, g.sharedExp - 1));
}

TEST(Mx8Codec, RelativeErrorWithinMantissaGrid)
{
    Lfsr16 lfsr(5);
    Lfsr32 rng(3);
    for (int trial = 0; trial < 100; ++trial) {
        std::array<double, kMxGroupSize> v{};
        double amax = 0.0;
        for (auto &x : v) {
            x = rng.nextGaussian();
            amax = std::max(amax, std::fabs(x));
        }
        MxGroup g = mxQuantize(v.data(), Rounding::Nearest, lfsr);
        for (int i = 0; i < kMxGroupSize; ++i) {
            // Worst-case grid step: group scale / 2^6 (micro = 0).
            double ulp = std::ldexp(1.0, g.sharedExp - kMxMantFracBits);
            ASSERT_NEAR(g.value(i), v[i], 0.5 * ulp + 1e-12);
        }
    }
}

TEST(Mx8Codec, MicroexponentRefinesSmallPairs)
{
    Lfsr16 lfsr(1);
    std::array<double, kMxGroupSize> v{};
    v[0] = 1.0;       // pins the shared exponent
    v[2] = 0.01;      // small pair -> micro = 1 for pair 1
    v[3] = 0.012;
    MxGroup g = mxQuantize(v.data(), Rounding::Nearest, lfsr);
    EXPECT_EQ(g.micro[0], 0);
    EXPECT_EQ(g.micro[1], 1);
    // The refined pair has half the grid step of the coarse pair.
    double err_coarse = std::ldexp(1.0, g.sharedExp - kMxMantFracBits);
    EXPECT_NEAR(g.value(2), 0.01, err_coarse / 2.0);
}

TEST(Mx8Codec, IdempotentProjection)
{
    Lfsr16 lfsr(9);
    Lfsr32 rng(21);
    std::array<double, kMxGroupSize> v{};
    for (auto &x : v)
        x = rng.nextGaussian() * 4.0;
    MxGroup g1 = mxQuantize(v.data(), Rounding::Nearest, lfsr);
    std::array<double, kMxGroupSize> d1{};
    g1.decode(d1.data());
    MxGroup g2 = mxQuantize(d1.data(), Rounding::Nearest, lfsr);
    std::array<double, kMxGroupSize> d2{};
    g2.decode(d2.data());
    for (int i = 0; i < kMxGroupSize; ++i)
        ASSERT_DOUBLE_EQ(d1[i], d2[i]);
}

TEST(Mx8Codec, SpanHandlesTail)
{
    Lfsr16 lfsr(3);
    std::vector<double> v(20, 1.0);
    v[19] = -2.0;
    mxQuantizeSpan(v.data(), v.size(), Rounding::Nearest, lfsr);
    EXPECT_NEAR(v[0], 1.0, 0.05);
    EXPECT_NEAR(v[19], -2.0, 0.05);
}

TEST(Mx8Codec, StochasticUnbiased)
{
    Lfsr16 lfsr(0x7F7F);
    double sum = 0.0;
    const int n = 4000;
    std::array<double, kMxGroupSize> v{};
    v[0] = 1.0; // pins exponent; element 1 sits off-grid
    for (int i = 0; i < n; ++i) {
        v[1] = 0.3;
        MxGroup g = mxQuantize(v.data(), Rounding::Stochastic, lfsr);
        sum += g.value(1);
    }
    EXPECT_NEAR(sum / n, 0.3, 0.004);
}

// --- MX Multiplier (Fig. 9a) ---

TEST(MxMultiplier, ElementwiseProduct)
{
    Lfsr16 lfsr(1);
    auto a = ramp(2.0);
    auto b = ramp(1.0);
    MxGroup ga = mxQuantize(a.data(), Rounding::Nearest, lfsr);
    MxGroup gb = mxQuantize(b.data(), Rounding::Nearest, lfsr);
    MxGroup prod = mxMultiply(ga, gb, Rounding::Nearest, lfsr);
    for (int i = 0; i < kMxGroupSize; ++i) {
        double expect = ga.value(i) * gb.value(i);
        double tol = std::ldexp(1.0, prod.sharedExp - kMxMantFracBits);
        ASSERT_NEAR(prod.value(i), expect, tol) << "elem " << i;
    }
}

TEST(MxMultiplier, ExponentsAdd)
{
    Lfsr16 lfsr(1);
    std::array<double, kMxGroupSize> a{}, b{};
    a.fill(2.0); // exponent 2 (2.0 <= 2^2, > 2^1... grid exponent = 2)
    b.fill(4.0);
    MxGroup ga = mxQuantize(a.data(), Rounding::Nearest, lfsr);
    MxGroup gb = mxQuantize(b.data(), Rounding::Nearest, lfsr);
    MxGroup prod = mxMultiply(ga, gb, Rounding::Nearest, lfsr);
    EXPECT_EQ(prod.sharedExp, ga.sharedExp + gb.sharedExp);
    EXPECT_NEAR(prod.value(0), 8.0, 0.26);
}

TEST(MxMultiplier, MicroexponentSaturationShiftsMantissa)
{
    // Both operands with micro = 1 in a pair: the product keeps micro=1
    // and right-shifts mantissas once (Section 5.3) — the value must
    // still be correct to within the coarser grid.
    Lfsr16 lfsr(1);
    std::array<double, kMxGroupSize> a{}, b{};
    a[0] = 1.0;
    a[2] = 0.2; // small pair -> micro 1
    a[3] = 0.2;
    b = a;
    MxGroup ga = mxQuantize(a.data(), Rounding::Nearest, lfsr);
    MxGroup gb = mxQuantize(b.data(), Rounding::Nearest, lfsr);
    ASSERT_EQ(ga.micro[1], 1);
    MxGroup prod = mxMultiply(ga, gb, Rounding::Nearest, lfsr);
    EXPECT_EQ(prod.micro[1], 1);
    double tol = std::ldexp(1.0, prod.sharedExp - kMxMantFracBits);
    EXPECT_NEAR(prod.value(2), 0.04, tol);
}

TEST(MxMultiplier, ZeroAnnihilates)
{
    Lfsr16 lfsr(1);
    auto a = ramp();
    std::array<double, kMxGroupSize> z{};
    MxGroup ga = mxQuantize(a.data(), Rounding::Nearest, lfsr);
    MxGroup gz = mxQuantize(z.data(), Rounding::Nearest, lfsr);
    EXPECT_TRUE(mxMultiply(ga, gz, Rounding::Nearest, lfsr).isZero());
    EXPECT_TRUE(mxMultiply(gz, ga, Rounding::Nearest, lfsr).isZero());
}

// --- MX Adder (Fig. 9b) ---

TEST(MxAdder, ElementwiseSumSameExponent)
{
    Lfsr16 lfsr(1);
    auto a = ramp(1.0);
    auto b = ramp(0.5);
    MxGroup ga = mxQuantize(a.data(), Rounding::Nearest, lfsr);
    MxGroup gb = mxQuantize(b.data(), Rounding::Nearest, lfsr);
    MxGroup sum = mxAdd(ga, gb, Rounding::Nearest, lfsr);
    for (int i = 0; i < kMxGroupSize; ++i) {
        double expect = ga.value(i) + gb.value(i);
        double tol = 1.5 * std::ldexp(1.0, sum.sharedExp -
                                      kMxMantFracBits);
        ASSERT_NEAR(sum.value(i), expect, tol) << "elem " << i;
    }
}

TEST(MxAdder, ResultExponentIsMax)
{
    Lfsr16 lfsr(1);
    std::array<double, kMxGroupSize> a{}, b{};
    a.fill(8.0);
    b.fill(0.125);
    MxGroup ga = mxQuantize(a.data(), Rounding::Nearest, lfsr);
    MxGroup gb = mxQuantize(b.data(), Rounding::Nearest, lfsr);
    MxGroup sum = mxAdd(ga, gb, Rounding::Nearest, lfsr);
    EXPECT_GE(sum.sharedExp, std::max(ga.sharedExp, gb.sharedExp));
    EXPECT_NEAR(sum.value(0), 8.125, 0.3);
}

TEST(MxAdder, ResultMicroexponentsAreZero)
{
    Lfsr16 lfsr(1);
    std::array<double, kMxGroupSize> a{};
    a[0] = 1.0;
    a[2] = 0.1;
    a[3] = 0.1;
    MxGroup ga = mxQuantize(a.data(), Rounding::Nearest, lfsr);
    MxGroup sum = mxAdd(ga, ga, Rounding::Nearest, lfsr);
    for (int p = 0; p < kMxNumSubGroups; ++p)
        EXPECT_EQ(sum.micro[p], 0) << "pair " << p;
}

TEST(MxAdder, CarryOutRenormalizes)
{
    Lfsr16 lfsr(1);
    std::array<double, kMxGroupSize> a{};
    a.fill(1.96875); // mantissa near full scale
    MxGroup ga = mxQuantize(a.data(), Rounding::Nearest, lfsr);
    MxGroup sum = mxAdd(ga, ga, Rounding::Nearest, lfsr);
    EXPECT_NEAR(sum.value(0), 2.0 * ga.value(0), 0.13);
    EXPECT_EQ(sum.sharedExp, ga.sharedExp + 1);
}

TEST(MxAdder, SwampingLosesTinyAddendWithNearest)
{
    // The paper's core numerical observation: with round-to-nearest a
    // small addend below half an ulp of the large operand vanishes.
    Lfsr16 lfsr(1);
    std::array<double, kMxGroupSize> big{}, small{};
    big.fill(1.0);
    small.fill(0.004); // < (2^-6)/2 of the big operand's grid
    MxGroup gb = mxQuantize(big.data(), Rounding::Nearest, lfsr);
    MxGroup gs = mxQuantize(small.data(), Rounding::Nearest, lfsr);
    MxGroup sum = mxAdd(gb, gs, Rounding::Nearest, lfsr);
    for (int i = 0; i < kMxGroupSize; ++i)
        ASSERT_DOUBLE_EQ(sum.value(i), gb.value(i));
}

TEST(MxAdder, StochasticPreservesTinyAddendInExpectation)
{
    // ...and stochastic rounding preserves it on average (Section 3.2).
    std::array<double, kMxGroupSize> big{}, small{};
    big.fill(1.0);
    small.fill(0.004);
    Lfsr16 ql(2);
    MxGroup gb = mxQuantize(big.data(), Rounding::Nearest, ql);
    MxGroup gs = mxQuantize(small.data(), Rounding::Nearest, ql);
    Lfsr16 lfsr(0x1357);
    double sum0 = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        MxGroup sum = mxAdd(gb, gs, Rounding::Stochastic, lfsr);
        sum0 += sum.value(0);
    }
    double expected = gb.value(0) + gs.value(0);
    EXPECT_NEAR(sum0 / n, expected, 0.002);
    EXPECT_GT(sum0 / n, gb.value(0) + 0.001); // strictly above swamped
}

TEST(MxAdder, ZeroIdentity)
{
    Lfsr16 lfsr(1);
    auto a = ramp(2.0);
    std::array<double, kMxGroupSize> z{};
    MxGroup ga = mxQuantize(a.data(), Rounding::Nearest, lfsr);
    MxGroup gz = mxQuantize(z.data(), Rounding::Nearest, lfsr);
    MxGroup sum = mxAdd(ga, gz, Rounding::Nearest, lfsr);
    for (int i = 0; i < kMxGroupSize; ++i) {
        // Micro-exponent folding may coarsen by at most one grid step.
        double tol = std::ldexp(1.0, ga.sharedExp - kMxMantFracBits);
        ASSERT_NEAR(sum.value(i), ga.value(i), tol);
    }
}

// --- Scale and Dot Product units ---

TEST(MxScale, BroadcastMultiply)
{
    Lfsr16 lfsr(1);
    auto a = ramp(1.0);
    MxGroup ga = mxQuantize(a.data(), Rounding::Nearest, lfsr);
    MxGroup scaled = mxScale(ga, 0.5, Rounding::Nearest, lfsr);
    for (int i = 0; i < kMxGroupSize; ++i) {
        double tol = std::ldexp(1.0, scaled.sharedExp - kMxMantFracBits);
        ASSERT_NEAR(scaled.value(i), 0.5 * ga.value(i), tol);
    }
}

TEST(MxScale, ZeroScalar)
{
    Lfsr16 lfsr(1);
    auto a = ramp(1.0);
    MxGroup ga = mxQuantize(a.data(), Rounding::Nearest, lfsr);
    EXPECT_TRUE(mxScale(ga, 0.0, Rounding::Nearest, lfsr).isZero());
}

TEST(MxDotProduct, MatchesDecodedDot)
{
    Lfsr16 lfsr(17);
    Lfsr32 rng(31);
    for (int trial = 0; trial < 50; ++trial) {
        std::array<double, kMxGroupSize> a{}, b{};
        for (auto &x : a)
            x = rng.nextGaussian();
        for (auto &x : b)
            x = rng.nextGaussian();
        MxGroup ga = mxQuantize(a.data(), Rounding::Nearest, lfsr);
        MxGroup gb = mxQuantize(b.data(), Rounding::Nearest, lfsr);
        double expect = 0.0;
        for (int i = 0; i < kMxGroupSize; ++i)
            expect += ga.value(i) * gb.value(i);
        // The dot-product unit accumulates exactly (wide accumulator).
        ASSERT_NEAR(mxDotProduct(ga, gb), expect, 1e-9);
    }
}

TEST(Mx8Property, QuantizeErrorShrinksWithMagnitudeSpread)
{
    // Groups with uniform magnitudes quantize better than groups with
    // one outlier (the shared exponent is set by the outlier).
    Lfsr16 lfsr(3);
    std::array<double, kMxGroupSize> uniform{}, outlier{};
    uniform.fill(1.0);
    outlier.fill(0.01);
    outlier[0] = 1.0;
    MxGroup gu = mxQuantize(uniform.data(), Rounding::Nearest, lfsr);
    MxGroup go = mxQuantize(outlier.data(), Rounding::Nearest, lfsr);
    double err_u = std::fabs(gu.value(5) - 1.0) / 1.0;
    double err_o = std::fabs(go.value(5) - 0.01) / 0.01;
    EXPECT_LE(err_u, err_o + 1e-12);
}

} // namespace
} // namespace pimba
