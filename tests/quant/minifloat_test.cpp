/**
 * @file
 * Bit-level tests of the fp16 / e4m3 / e5m2 codecs, including rounding
 * behaviour and the stochastic-rounding statistics the paper's Section
 * 3.2 relies on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "quant/minifloat.h"

namespace pimba {
namespace {

TEST(MinifloatSpec, Fp16Constants)
{
    MinifloatSpec s = fp16Spec();
    EXPECT_DOUBLE_EQ(s.maxValue(), 65504.0);
    EXPECT_DOUBLE_EQ(s.minNormal(), std::ldexp(1.0, -14));
    EXPECT_DOUBLE_EQ(s.minSubnormal(), std::ldexp(1.0, -24));
}

TEST(MinifloatSpec, E4m3Constants)
{
    MinifloatSpec s = e4m3Spec();
    EXPECT_DOUBLE_EQ(s.maxValue(), 448.0);
    EXPECT_DOUBLE_EQ(s.minNormal(), std::ldexp(1.0, -6));
    EXPECT_DOUBLE_EQ(s.minSubnormal(), std::ldexp(1.0, -9));
}

TEST(MinifloatSpec, E5m2Constants)
{
    MinifloatSpec s = e5m2Spec();
    EXPECT_DOUBLE_EQ(s.maxValue(), 57344.0);
    EXPECT_DOUBLE_EQ(s.minNormal(), std::ldexp(1.0, -14));
    EXPECT_DOUBLE_EQ(s.minSubnormal(), std::ldexp(1.0, -16));
}

class MinifloatFormats
    : public ::testing::TestWithParam<MinifloatSpec>
{
  protected:
    Lfsr16 lfsr{0x5555};
};

TEST_P(MinifloatFormats, ExactValuesRoundTrip)
{
    MinifloatSpec spec = GetParam();
    // Powers of two and simple fractions within range are exact.
    for (double v : {1.0, 2.0, 0.5, 0.25, -1.0, -4.0, 1.5, -3.0}) {
        EXPECT_DOUBLE_EQ(
            minifloatQuantize(v, spec, Rounding::Nearest, lfsr), v)
            << "value " << v;
    }
}

TEST_P(MinifloatFormats, ZeroIsExact)
{
    MinifloatSpec spec = GetParam();
    EXPECT_EQ(minifloatQuantize(0.0, spec, Rounding::Nearest, lfsr), 0.0);
}

TEST_P(MinifloatFormats, SaturatesAtMax)
{
    MinifloatSpec spec = GetParam();
    double big = spec.maxValue() * 8.0;
    EXPECT_DOUBLE_EQ(
        minifloatQuantize(big, spec, Rounding::Nearest, lfsr),
        spec.maxValue());
    EXPECT_DOUBLE_EQ(
        minifloatQuantize(-big, spec, Rounding::Nearest, lfsr),
        -spec.maxValue());
}

TEST_P(MinifloatFormats, IdempotentProjection)
{
    MinifloatSpec spec = GetParam();
    Lfsr32 rng(7);
    for (int i = 0; i < 500; ++i) {
        double v = (rng.nextUnit() - 0.5) * 64.0;
        double q = minifloatQuantize(v, spec, Rounding::Nearest, lfsr);
        double q2 = minifloatQuantize(q, spec, Rounding::Nearest, lfsr);
        ASSERT_DOUBLE_EQ(q, q2) << "value " << v;
    }
}

TEST_P(MinifloatFormats, NearestNeverWorseThanUlp)
{
    MinifloatSpec spec = GetParam();
    Lfsr32 rng(11);
    for (int i = 0; i < 500; ++i) {
        double v = (rng.nextUnit() - 0.5) * 8.0;
        double q = minifloatQuantize(v, spec, Rounding::Nearest, lfsr);
        // Relative error bounded by half the mantissa grid (normals).
        if (std::fabs(v) >= spec.minNormal()) {
            double rel = std::fabs(q - v) / std::fabs(v);
            ASSERT_LE(rel, std::ldexp(1.0, -spec.manBits) / 2.0 + 1e-12)
                << "value " << v;
        }
    }
}

TEST_P(MinifloatFormats, SubnormalsRepresentable)
{
    MinifloatSpec spec = GetParam();
    double sub = spec.minSubnormal();
    EXPECT_DOUBLE_EQ(
        minifloatQuantize(sub, spec, Rounding::Nearest, lfsr), sub);
    EXPECT_DOUBLE_EQ(
        minifloatQuantize(3.0 * sub, spec, Rounding::Nearest, lfsr),
        3.0 * sub);
}

TEST_P(MinifloatFormats, TinyValuesFlushOrRound)
{
    MinifloatSpec spec = GetParam();
    double tiny = spec.minSubnormal() * 0.25;
    double q = minifloatQuantize(tiny, spec, Rounding::Nearest, lfsr);
    EXPECT_EQ(q, 0.0);
}

TEST_P(MinifloatFormats, DecodeEncodeBitsConsistent)
{
    MinifloatSpec spec = GetParam();
    Lfsr32 rng(13);
    for (int i = 0; i < 200; ++i) {
        double v = (rng.nextUnit() - 0.5) * 16.0;
        double decoded = 0.0;
        uint32_t bits = minifloatEncode(v, spec, Rounding::Nearest, lfsr,
                                        &decoded);
        EXPECT_DOUBLE_EQ(minifloatDecode(bits, spec), decoded);
    }
}

INSTANTIATE_TEST_SUITE_P(AllFormats, MinifloatFormats,
                         ::testing::Values(fp16Spec(), e4m3Spec(),
                                           e5m2Spec()),
                         [](const auto &info) {
                             const MinifloatSpec &s = info.param;
                             return "e" + std::to_string(s.expBits) + "m" +
                                    std::to_string(s.manBits);
                         });

TEST(MinifloatRounding, RoundToNearestEven)
{
    Lfsr16 lfsr(1);
    MinifloatSpec spec = e4m3Spec();
    // Halfway between 1.0 and 1.125 (3 mantissa bits): 1.0625 -> 1.0
    // (even mantissa); halfway between 1.125 and 1.25: 1.1875 -> 1.25.
    EXPECT_DOUBLE_EQ(
        minifloatQuantize(1.0625, spec, Rounding::Nearest, lfsr), 1.0);
    EXPECT_DOUBLE_EQ(
        minifloatQuantize(1.1875, spec, Rounding::Nearest, lfsr), 1.25);
}

TEST(MinifloatRounding, StochasticIsUnbiased)
{
    MinifloatSpec spec = e5m2Spec();
    Lfsr16 lfsr(0x9999);
    // 1.1 sits between 1.0 and 1.25; SR must average to ~1.1.
    double sum = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i)
        sum += minifloatQuantize(1.1, spec, Rounding::Stochastic, lfsr);
    EXPECT_NEAR(sum / n, 1.1, 0.01);
}

TEST(MinifloatRounding, StochasticOnGridIsExact)
{
    MinifloatSpec spec = e5m2Spec();
    Lfsr16 lfsr(0x2222);
    for (int i = 0; i < 100; ++i)
        ASSERT_DOUBLE_EQ(
            minifloatQuantize(1.25, spec, Rounding::Stochastic, lfsr),
            1.25);
}

TEST(MinifloatRounding, NanEncodesZero)
{
    Lfsr16 lfsr(3);
    EXPECT_EQ(minifloatQuantize(std::nan(""), e4m3Spec(),
                                Rounding::Nearest, lfsr), 0.0);
}

TEST(MinifloatRounding, CarryIntoNextBinade)
{
    Lfsr16 lfsr(5);
    MinifloatSpec spec = e4m3Spec();
    // 1.96875 rounds up past the top of the [1,2) binade to 2.0.
    EXPECT_DOUBLE_EQ(
        minifloatQuantize(1.97, spec, Rounding::Nearest, lfsr), 2.0);
}

} // namespace
} // namespace pimba
