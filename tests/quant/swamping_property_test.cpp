/**
 * @file
 * Property tests of the swamping effect (paper Section 3.2): for every
 * storage format, a decayed accumulation freezes under round-to-nearest
 * exactly when the equilibrium state-to-increment ratio exceeds the
 * format's half-ulp reach, and stochastic rounding tracks the true mean
 * regardless. This is the numerical mechanism behind Fig. 4's format
 * ordering and the MX8 choice.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/lfsr.h"
#include "quant/format.h"

namespace pimba {
namespace {

/** Effective mantissa bits (ulp reach ~ 2^bits) of each format. */
int
mantissaBits(NumberFormat fmt)
{
    switch (fmt) {
      case NumberFormat::FP16: return 11;
      case NumberFormat::INT8: return 7;
      case NumberFormat::E4M3: return 4;
      case NumberFormat::E5M2: return 3;
      case NumberFormat::MX8:  return 6;
      case NumberFormat::FP64: return 52;
    }
    return 0;
}

/**
 * Run S = d*S + c (a scalar decayed accumulation with constant
 * increment c = 1) for @p steps with per-step re-encoding, embedded in
 * a 32-element span so group formats see realistic neighbours.
 * Returns final S relative to the true equilibrium 1/(1-d).
 */
double
trackingRatio(NumberFormat fmt, Rounding rnd, double d, int steps)
{
    Lfsr16 lfsr(0x4D2);
    std::vector<double> span(32);
    // Neighbours at the equilibrium scale so group max is stable.
    double equil = 1.0 / (1.0 - d);
    Lfsr32 rng(99);
    for (auto &x : span)
        x = equil * (0.5 + rng.nextUnit());
    QuantSpec spec{fmt, rnd};
    double &s = span[7];
    s = 0.0;
    std::vector<double> rest0(span.begin(), span.end());
    for (int t = 0; t < steps; ++t) {
        s = d * s + 1.0;
        // Keep the neighbours fixed inputs (re-set before encoding so
        // their own rounding does not drift the group scale).
        for (int i = 0; i < 32; ++i)
            if (i != 7)
                span[i] = rest0[i];
        quantizeSpan(span.data(), span.size(), spec, lfsr);
    }
    return s / equil;
}

struct SwampCase
{
    NumberFormat fmt;
    double decay;
};

class SwampingSweep : public ::testing::TestWithParam<SwampCase>
{
};

TEST_P(SwampingSweep, NearestFreezesIffBeyondHalfUlp)
{
    auto [fmt, d] = GetParam();
    double ratio = 1.0 / (1.0 - d); // equilibrium / increment
    double reach = std::ldexp(1.0, mantissaBits(fmt) + 1); // 2/ulp_rel
    double tracked = trackingRatio(fmt, Rounding::Nearest, d, 4000);
    // Round-to-nearest stalls the accumulation at the level where the
    // per-step change drops below half an ulp, i.e. at roughly
    // equil * (1 - ulp/2); far beyond the format's reach it stalls
    // near zero, comfortably within reach it tracks closely.
    if (ratio > 3.0 * reach) {
        EXPECT_LT(tracked, 0.7) << formatName(fmt) << " d=" << d;
    } else if (ratio < 0.25 * reach) {
        EXPECT_GT(tracked, 0.75) << formatName(fmt) << " d=" << d;
    } // near the threshold either outcome is acceptable
}

TEST_P(SwampingSweep, StochasticTracksMeanEverywhere)
{
    auto [fmt, d] = GetParam();
    // SR is unbiased, so the long-run level approaches the equilibrium
    // for every format and decay (with noise, hence the wide band).
    double tracked = trackingRatio(fmt, Rounding::Stochastic, d, 4000);
    EXPECT_GT(tracked, 0.6) << formatName(fmt) << " d=" << d;
    EXPECT_LT(tracked, 1.4) << formatName(fmt) << " d=" << d;
}

std::vector<SwampCase>
sweepCases()
{
    std::vector<SwampCase> cases;
    for (NumberFormat fmt : {NumberFormat::FP16, NumberFormat::INT8,
                             NumberFormat::E4M3, NumberFormat::E5M2,
                             NumberFormat::MX8}) {
        for (double d : {0.9, 0.97, 0.99, 0.997})
            cases.push_back({fmt, d});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    FormatsByDecay, SwampingSweep, ::testing::ValuesIn(sweepCases()),
    [](const auto &info) {
        int permil = static_cast<int>(std::lround(info.param.decay * 1000));
        return formatName(info.param.fmt) + "_d" + std::to_string(permil);
    });

TEST(SwampingOrdering, FormatReachOrderMatchesPaper)
{
    // The paper's Section 3.2 reasoning in one assertion: at a decay
    // whose equilibrium ratio sits between 2^4 and 2^7, the 2-4 bit
    // mantissas stall while int8/MX8/fp16 track.
    const double d = 0.985; // ratio ~67
    double e5m2 = trackingRatio(NumberFormat::E5M2, Rounding::Nearest,
                                d, 4000);
    double e4m3 = trackingRatio(NumberFormat::E4M3, Rounding::Nearest,
                                d, 4000);
    double mx8 = trackingRatio(NumberFormat::MX8, Rounding::Nearest,
                               d, 4000);
    double int8 = trackingRatio(NumberFormat::INT8, Rounding::Nearest,
                                d, 4000);
    double fp16 = trackingRatio(NumberFormat::FP16, Rounding::Nearest,
                                d, 4000);
    // Stall levels rise with mantissa width (each extra bit halves the
    // shortfall); the paper's usable/unusable split falls between
    // e4m3 and mx8.
    EXPECT_LT(e5m2, 0.40);
    EXPECT_LT(e4m3, 0.60);
    EXPECT_LT(e5m2, e4m3 + 0.05);
    EXPECT_GT(mx8, 0.45);
    EXPECT_GT(int8, mx8);
    EXPECT_GT(fp16, 0.95);
    EXPECT_GT(fp16, int8);
}

TEST(SwampingOrdering, SrBeatsNearestForFp8InDeepRegime)
{
    const double d = 0.99;
    for (NumberFormat fmt : {NumberFormat::E4M3, NumberFormat::E5M2}) {
        double rn = trackingRatio(fmt, Rounding::Nearest, d, 4000);
        double sr = trackingRatio(fmt, Rounding::Stochastic, d, 4000);
        EXPECT_GT(sr, rn + 0.1) << formatName(fmt);
    }
}

} // namespace
} // namespace pimba
