/**
 * @file
 * Tests of the unified quantization front end (format table, span
 * projection properties shared by all codecs).
 */

#include <gtest/gtest.h>

#include <vector>

#include "quant/format.h"

namespace pimba {
namespace {

TEST(Format, BitsPerValue)
{
    EXPECT_DOUBLE_EQ(bitsPerValue(NumberFormat::FP64), 64.0);
    EXPECT_DOUBLE_EQ(bitsPerValue(NumberFormat::FP16), 16.0);
    EXPECT_DOUBLE_EQ(bitsPerValue(NumberFormat::E4M3), 8.0);
    EXPECT_DOUBLE_EQ(bitsPerValue(NumberFormat::E5M2), 8.0);
    // int8 carries an fp16 scale per 32 elements.
    EXPECT_DOUBLE_EQ(bitsPerValue(NumberFormat::INT8), 8.5);
    // MX8 averages exactly 8 bits per value (Section 3.2).
    EXPECT_DOUBLE_EQ(bitsPerValue(NumberFormat::MX8), 8.0);
}

TEST(Format, StorageBytes)
{
    EXPECT_DOUBLE_EQ(storageBytes(NumberFormat::MX8, 16), 16.0);
    EXPECT_DOUBLE_EQ(storageBytes(NumberFormat::FP16, 16), 32.0);
}

TEST(Format, Names)
{
    EXPECT_EQ(formatName(NumberFormat::MX8), "mx8");
    QuantSpec sr{NumberFormat::E5M2, Rounding::Stochastic};
    EXPECT_EQ(sr.name(), "e5m2SR");
    QuantSpec rn{NumberFormat::INT8, Rounding::Nearest};
    EXPECT_EQ(rn.name(), "int8");
    QuantSpec fp64{NumberFormat::FP64, Rounding::Stochastic};
    EXPECT_EQ(fp64.name(), "fp64"); // no SR suffix on the identity
}

TEST(Format, Figure4SweepOrder)
{
    auto specs = figure4Specs();
    ASSERT_EQ(specs.size(), 9u);
    EXPECT_EQ(specs.front().name(), "fp16");
    EXPECT_EQ(specs.back().name(), "mx8SR");
}

class SpanProjection : public ::testing::TestWithParam<QuantSpec>
{
};

TEST_P(SpanProjection, Idempotent)
{
    QuantSpec spec = GetParam();
    Lfsr16 lfsr(0x11);
    Lfsr32 rng(5);
    std::vector<double> v(100);
    for (auto &x : v)
        x = rng.nextGaussian() * 2.0;
    quantizeSpan(v.data(), v.size(), spec, lfsr);
    std::vector<double> again = v;
    quantizeSpan(again.data(), again.size(), spec, lfsr);
    for (size_t i = 0; i < v.size(); ++i)
        ASSERT_DOUBLE_EQ(v[i], again[i]) << spec.name() << " idx " << i;
}

TEST_P(SpanProjection, PreservesZero)
{
    QuantSpec spec = GetParam();
    Lfsr16 lfsr(0x22);
    std::vector<double> v(48, 0.0);
    quantizeSpan(v.data(), v.size(), spec, lfsr);
    for (double x : v)
        ASSERT_EQ(x, 0.0);
}

TEST_P(SpanProjection, BoundedRelativeError)
{
    QuantSpec spec = GetParam();
    Lfsr16 lfsr(0x33);
    Lfsr32 rng(7);
    std::vector<double> v(64);
    for (auto &x : v)
        x = 1.0 + rng.nextUnit(); // uniform magnitudes in [1, 2)
    std::vector<double> q = v;
    quantizeSpan(q.data(), q.size(), spec, lfsr);
    for (size_t i = 0; i < v.size(); ++i) {
        // All 8-bit formats resolve uniform [1,2) values to within ~6%;
        // fp16 is far tighter.
        ASSERT_NEAR(q[i], v[i], 0.13) << spec.name() << " idx " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, SpanProjection,
    ::testing::Values(QuantSpec{NumberFormat::FP16, Rounding::Nearest},
                      QuantSpec{NumberFormat::INT8, Rounding::Nearest},
                      QuantSpec{NumberFormat::E4M3, Rounding::Nearest},
                      QuantSpec{NumberFormat::E5M2, Rounding::Nearest},
                      QuantSpec{NumberFormat::MX8, Rounding::Nearest},
                      QuantSpec{NumberFormat::MX8, Rounding::Stochastic}),
    [](const auto &info) { return info.param.name(); });

TEST(Format, Fp64IsIdentity)
{
    Lfsr16 lfsr(1);
    std::vector<double> v = {1.23456789, -9.87654321e-7, 3.14159e12};
    std::vector<double> q = v;
    quantizeSpan(q.data(), q.size(), QuantSpec{}, lfsr);
    for (size_t i = 0; i < v.size(); ++i)
        EXPECT_DOUBLE_EQ(q[i], v[i]);
}

} // namespace
} // namespace pimba
