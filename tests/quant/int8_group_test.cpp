/**
 * @file
 * Tests of the group-scaled int8 codec (Section 3.2's integer format).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "quant/int8_group.h"

namespace pimba {
namespace {

TEST(Int8Group, ZeroGroup)
{
    Lfsr16 lfsr(1);
    double v[4] = {0, 0, 0, 0};
    Int8Group g = int8Quantize(v, 4, Rounding::Nearest, lfsr);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(g.value(i), 0.0);
}

TEST(Int8Group, MaxValueUsesFullRange)
{
    Lfsr16 lfsr(1);
    double v[2] = {127.0, -127.0};
    Int8Group g = int8Quantize(v, 2, Rounding::Nearest, lfsr);
    EXPECT_EQ(g.codes[0], 127);
    EXPECT_EQ(g.codes[1], -127);
    EXPECT_NEAR(g.value(0), 127.0, 0.05);
}

TEST(Int8Group, RelativeErrorBound)
{
    Lfsr16 lfsr(9);
    Lfsr32 rng(5);
    std::vector<double> v(kInt8GroupSize);
    double amax = 0.0;
    for (auto &x : v) {
        x = rng.nextGaussian();
        amax = std::max(amax, std::fabs(x));
    }
    Int8Group g = int8Quantize(v.data(), kInt8GroupSize,
                               Rounding::Nearest, lfsr);
    for (int i = 0; i < kInt8GroupSize; ++i) {
        // Absolute error bounded by ~half a code step (plus fp16 scale
        // rounding slack).
        EXPECT_NEAR(g.value(i), v[i], amax / 127.0 * 0.51 + amax * 1e-3);
    }
}

TEST(Int8Group, ScaleIsFp16Representable)
{
    Lfsr16 lfsr(2);
    double v[1] = {0.333};
    Int8Group g = int8Quantize(v, 1, Rounding::Nearest, lfsr);
    // fp16 values have at most 11 significant bits; re-rounding the
    // scale must not change it.
    Lfsr16 l2(3);
    EXPECT_DOUBLE_EQ(
        minifloatQuantize(g.scale, fp16Spec(), Rounding::Nearest, l2),
        g.scale);
}

TEST(Int8Group, SpanQuantizeIdempotent)
{
    Lfsr16 lfsr(7);
    Lfsr32 rng(17);
    std::vector<double> v(70);
    for (auto &x : v)
        x = rng.nextGaussian() * 3.0;
    std::vector<double> once = v;
    int8QuantizeSpan(once.data(), once.size(), Rounding::Nearest, lfsr);
    std::vector<double> twice = once;
    int8QuantizeSpan(twice.data(), twice.size(), Rounding::Nearest, lfsr);
    for (size_t i = 0; i < v.size(); ++i)
        ASSERT_DOUBLE_EQ(once[i], twice[i]) << "index " << i;
}

TEST(Int8Group, StochasticUnbiased)
{
    Lfsr16 lfsr(0xABCD);
    double sum = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        double v[2] = {1.0, 0.3};
        Int8Group g = int8Quantize(v, 2, Rounding::Stochastic, lfsr);
        sum += g.value(1);
    }
    EXPECT_NEAR(sum / n, 0.3, 0.002);
}

TEST(Int8Group, GroupwiseScaling)
{
    // Two groups with very different ranges keep independent scales.
    Lfsr16 lfsr(4);
    std::vector<double> v(64, 0.0);
    for (int i = 0; i < 32; ++i)
        v[i] = 1000.0 * ((i % 2) ? 1 : -1);
    for (int i = 32; i < 64; ++i)
        v[i] = 0.001 * ((i % 2) ? 1 : -1);
    int8QuantizeSpan(v.data(), v.size(), Rounding::Nearest, lfsr);
    EXPECT_NEAR(std::fabs(v[0]), 1000.0, 5.0);
    EXPECT_NEAR(std::fabs(v[40]), 0.001, 1e-5);
}

TEST(Int8GroupDeath, BadGroupSize)
{
    Lfsr16 lfsr(1);
    double v[1] = {1.0};
    EXPECT_DEATH(int8Quantize(v, 0, Rounding::Nearest, lfsr),
                 "group size");
    EXPECT_DEATH(int8Quantize(v, 33, Rounding::Nearest, lfsr),
                 "group size");
}

} // namespace
} // namespace pimba
