/**
 * @file
 * Sweep tests: grid-spec parsing and the pinned determinism guarantee
 * — the same scenario + seed produces a byte-identical report at any
 * thread count.
 */

#include <gtest/gtest.h>

#include "config/sweep.h"

using namespace pimba;

namespace {

TEST(GridSpec, LinearRange)
{
    GridAxis axis = parseGridSpec("rate=1..5");
    EXPECT_EQ(axis.param, "rate");
    EXPECT_EQ(axis.values, (std::vector<double>{1, 2, 3, 4, 5}));
}

TEST(GridSpec, SteppedRange)
{
    GridAxis axis = parseGridSpec("rate=4..16:4");
    EXPECT_EQ(axis.values, (std::vector<double>{4, 8, 12, 16}));
}

TEST(GridSpec, GeometricRange)
{
    GridAxis axis = parseGridSpec("rate=1..32:x2");
    EXPECT_EQ(axis.values, (std::vector<double>{1, 2, 4, 8, 16, 32}));
}

TEST(GridSpec, ExplicitList)
{
    GridAxis axis = parseGridSpec("maxBatch=8,32,128");
    EXPECT_EQ(axis.param, "maxBatch");
    EXPECT_EQ(axis.values, (std::vector<double>{8, 32, 128}));
}

TEST(GridSpec, FractionalValues)
{
    GridAxis axis = parseGridSpec("rate=0.5..2:0.5");
    EXPECT_EQ(axis.values, (std::vector<double>{0.5, 1.0, 1.5, 2.0}));
}

TEST(GridSpec, MalformedSpecsFail)
{
    EXPECT_THROW(parseGridSpec("rate"), ConfigError);
    EXPECT_THROW(parseGridSpec("=1..4"), ConfigError);
    EXPECT_THROW(parseGridSpec("rate="), ConfigError);
    EXPECT_THROW(parseGridSpec("rate=8..1"), ConfigError);
    EXPECT_THROW(parseGridSpec("rate=1..8:0"), ConfigError);
    EXPECT_THROW(parseGridSpec("rate=1..8:x1"), ConfigError);
    EXPECT_THROW(parseGridSpec("rate=a,b"), ConfigError);
    // A geometric range from a non-positive bound would never advance
    // (0 * 2 == 0) — must be rejected, not loop forever.
    EXPECT_THROW(parseGridSpec("rate=0..32:x2"), ConfigError);
    EXPECT_THROW(parseGridSpec("rate=-4..32:x2"), ConfigError);
}

Scenario
smallServingScenario()
{
    return parseScenarioText(R"({
      "name": "sweep_determinism",
      "kind": "serving",
      "systems": ["pimba"],
      "rate": 8,
      "model": "mamba2-2.7b",
      "engine": {"maxBatch": 16},
      "trace": {
        "arrivals": "poisson", "numRequests": 16,
        "inputLen": 128, "outputLen": 64, "seed": 4242
      }
    })");
}

TEST(Sweep, OneThreadAndManyThreadsAreByteIdentical)
{
    Scenario sc = smallServingScenario();
    GridAxis axis = parseGridSpec("rate=2..16:x2");
    ScenarioReport serial = runSweep(sc, axis, 1);
    ScenarioReport parallel4 = runSweep(sc, axis, 4);
    ScenarioReport parallel_all = runSweep(sc, axis, 0);
    EXPECT_EQ(serial.renderCsv(), parallel4.renderCsv());
    EXPECT_EQ(serial.renderText(), parallel4.renderText());
    EXPECT_EQ(serial.renderCsv(), parallel_all.renderCsv());
}

TEST(Sweep, RepeatedRunsAreByteIdentical)
{
    Scenario sc = smallServingScenario();
    GridAxis axis = parseGridSpec("rate=4,8");
    EXPECT_EQ(runSweep(sc, axis, 2).renderCsv(),
              runSweep(sc, axis, 2).renderCsv());
}

TEST(Sweep, GridPointsAppearInOrder)
{
    Scenario sc = smallServingScenario();
    ScenarioReport rep = runSweep(sc, parseGridSpec("rate=4,8,2"), 3);
    std::string text = rep.renderText();
    size_t p4 = text.find("rate = 4");
    size_t p8 = text.find("rate = 8");
    size_t p2 = text.find("rate = 2");
    ASSERT_NE(p4, std::string::npos);
    ASSERT_NE(p8, std::string::npos);
    ASSERT_NE(p2, std::string::npos);
    EXPECT_LT(p4, p8);
    EXPECT_LT(p8, p2);
}

TEST(Sweep, SeedAxisSpansFullUint32Range)
{
    // Seeds accepted in JSON must also be sweepable: the full uint32
    // range including 0 and values past INT_MAX.
    Scenario sc = smallServingScenario();
    EXPECT_NO_THROW(applyGridParam(sc, "seed", 0));
    EXPECT_NO_THROW(applyGridParam(sc, "seed", 3000000000.0));
    EXPECT_NO_THROW(applyGridParam(sc, "seed", 4294967295.0));
    EXPECT_THROW(applyGridParam(sc, "seed", 4294967296.0),
                 ConfigError);
    EXPECT_THROW(applyGridParam(sc, "seed", -1), ConfigError);
    const auto &ss = std::get<ServingScenario>(sc.spec);
    EXPECT_EQ(ss.trace.seed, 4294967295u);
}

TEST(Sweep, UnknownParamRejected)
{
    Scenario sc = smallServingScenario();
    EXPECT_THROW(runSweep(sc, parseGridSpec("turbo=1..2"), 1),
                 ConfigError);
    // 'replicas' only applies to fleet scenarios.
    EXPECT_THROW(runSweep(sc, parseGridSpec("replicas=1..2"), 1),
                 ConfigError);
}

TEST(Planner, NonPowerOfTwoMaxReplicasCeilingIsProbed)
{
    // At 64 req/s the GPU fleet needs 3 replicas. With maxReplicas 3
    // the gallop probes 1, 2 (both fail) and must then probe the
    // clamped ceiling 3 itself — not overshoot to 4 and report "> 3".
    const char *json = R"({
      "kind": "planner",
      "systems": ["gpu"],
      "model": "mamba2-2.7b",
      "maxReplicas": %d,
      "trace": {"rate": 64, "numRequests": 48,
                "inputLen": 512, "outputLen": 256, "seed": 1592652270}
    })";
    char with_cap3[512], with_cap8[512];
    snprintf(with_cap3, sizeof with_cap3, json, 3);
    snprintf(with_cap8, sizeof with_cap8, json, 8);
    std::string capped =
        runScenario(parseScenarioText(with_cap3)).renderText();
    std::string roomy =
        runScenario(parseScenarioText(with_cap8)).renderText();
    EXPECT_EQ(capped, roomy); // both must find the same 3-replica fleet
    EXPECT_EQ(capped.find("> 3"), std::string::npos) << capped;
}

TEST(Sweep, MaxBatchAxisRevalidatedAgainstScenarioPolicies)
{
    // A Sarathi sweep point over the memo bound must raise a located
    // ConfigError at apply time, not a fatal abort on a worker thread.
    Scenario sc = parseScenarioText(R"({
      "kind": "serving",
      "systems": ["gpu"],
      "policies": ["sarathi"],
      "rate": 8,
      "model": "mamba2-2.7b",
      "trace": {"numRequests": 8, "inputLen": 64, "outputLen": 16}
    })");
    EXPECT_NO_THROW(applyGridParam(sc, "maxBatch", 2048));
    EXPECT_THROW(applyGridParam(sc, "maxBatch", 5000), ConfigError);
}

TEST(Sweep, ReplicasAxisResizesFleetCases)
{
    Scenario sc = parseScenarioText(R"({
      "kind": "fleet",
      "model": "mamba2-2.7b",
      "fleet": {"replicas": [{"system": "pimba"}]},
      "trace": {"rate": 8, "numRequests": 12,
                "inputLen": 128, "outputLen": 32, "seed": 7}
    })");
    Scenario two = sc;
    applyGridParam(two, "replicas", 3);
    const auto &fs = std::get<FleetScenario>(two.spec);
    EXPECT_EQ(fs.cases[0].fleet.replicas.size(), 3u);
}

TEST(Sweep, ReplicasAxisRejectsImpossibleDisaggregatedResize)
{
    // Shrinking a 2-prefill disaggregated fleet to 2 replicas leaves
    // no decode pool: a located ConfigError, not a mid-run abort.
    Scenario sc = parseScenarioText(R"({
      "kind": "fleet",
      "model": "mamba2-2.7b",
      "fleet": {"mode": "disaggregated", "prefillReplicas": 2,
                "replicas": [{"system": "pimba", "count": 4}]},
      "trace": {"rate": 8, "numRequests": 12,
                "inputLen": 128, "outputLen": 32, "seed": 7}
    })");
    EXPECT_THROW(applyGridParam(sc, "replicas", 2), ConfigError);
    EXPECT_NO_THROW(applyGridParam(sc, "replicas", 3));
}

} // namespace
