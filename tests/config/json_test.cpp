/**
 * @file
 * JSON parser edge cases: values, escapes, comments, and — most
 * importantly — that every malformed input fails with a located,
 * actionable ConfigError instead of silently misparsing.
 */

#include <gtest/gtest.h>

#include "config/json.h"

using namespace pimba;

namespace {

TEST(JsonParse, ScalarsAndNesting)
{
    JsonValue v = parseJson(R"({
      "a": 1, "b": -2.5, "c": 1e3, "d": true, "e": null,
      "f": "hi", "g": [1, 2, 3], "h": {"x": [true, false]}
    })");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.find("a")->asInt(), 1);
    EXPECT_DOUBLE_EQ(v.find("b")->asNumber(), -2.5);
    EXPECT_DOUBLE_EQ(v.find("c")->asNumber(), 1000.0);
    EXPECT_TRUE(v.find("d")->asBool());
    EXPECT_TRUE(v.find("e")->isNull());
    EXPECT_EQ(v.find("f")->asString(), "hi");
    EXPECT_EQ(v.find("g")->items().size(), 3u);
    EXPECT_FALSE(v.find("h")->find("x")->items()[1].asBool());
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, StringEscapes)
{
    JsonValue v = parseJson(R"(["a\"b", "tab\there", "A"])");
    EXPECT_EQ(v.items()[0].asString(), "a\"b");
    EXPECT_EQ(v.items()[1].asString(), "tab\there");
    EXPECT_EQ(v.items()[2].asString(), "A");
}

TEST(JsonParse, LineCommentsSkipped)
{
    JsonValue v = parseJson("// header comment\n"
                            "{\n"
                            "  \"a\": 1, // trailing comment\n"
                            "  \"b\": 2\n"
                            "}\n");
    EXPECT_EQ(v.find("a")->asInt(), 1);
    EXPECT_EQ(v.find("b")->asInt(), 2);
}

TEST(JsonParse, MemberOrderAndLocationTracked)
{
    JsonValue v = parseJson("{\n  \"first\": 1,\n  \"second\": 2\n}");
    ASSERT_EQ(v.members().size(), 2u);
    EXPECT_EQ(v.members()[0].first, "first");
    EXPECT_EQ(v.members()[1].first, "second");
    // "second"'s value sits on line 3.
    EXPECT_EQ(v.find("second")->line(), 3);
    EXPECT_GT(v.find("second")->column(), 1);
}

/// Expect a ConfigError whose message mentions @p needle and whose
/// location matches (when given).
void
expectError(const std::string &text, const std::string &needle,
            int line = 0)
{
    try {
        parseJson(text);
        FAIL() << "expected ConfigError for: " << text;
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "message '" << e.what() << "' lacks '" << needle << "'";
        if (line > 0)
            EXPECT_EQ(e.line(), line) << e.what();
    }
}

TEST(JsonParse, TruncatedInputsFailWithLocation)
{
    expectError("", "unexpected end of input");
    expectError("{", "unterminated object");
    expectError("{\"a\": ", "unexpected end of input");
    expectError("[1, 2", "unterminated array");
    expectError("\"abc", "unterminated string");
    expectError("{\"a\": 1,", "unterminated object");
    expectError("tru", "invalid token");
}

TEST(JsonParse, MalformedInputsFail)
{
    expectError("{a: 1}", "object keys must be strings");
    expectError("[1 2]", "expected ']'");
    expectError("{\"a\": 1} extra", "trailing content");
    expectError("{\"a\": 1, \"a\": 2}", "duplicate key");
    expectError("[#]", "unexpected character");
}

TEST(JsonParse, ErrorsCarrySourceLine)
{
    // The bad token sits on line 3.
    expectError("{\n  \"a\": 1,\n  \"b\": oops\n}", "unexpected", 3);
}

TEST(JsonParse, TypeMismatchesAreLocated)
{
    JsonValue v = parseJson("{\n  \"a\": \"text\"\n}");
    try {
        v.find("a")->asNumber();
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("expected number"),
                  std::string::npos);
        EXPECT_EQ(e.line(), 2);
    }
    EXPECT_THROW(v.find("a")->items(), ConfigError);
    EXPECT_THROW(v.asString(), ConfigError);
}

TEST(JsonParse, NonIntegralIntRejected)
{
    JsonValue v = parseJson("{\"n\": 1.5}");
    EXPECT_THROW(v.find("n")->asInt(), ConfigError);
    EXPECT_EQ(parseJson("{\"n\": 2e3}").find("n")->asInt(), 2000);
}

TEST(JsonMerge, DeepMergeSemantics)
{
    JsonValue base = parseJson(
        R"({"a": 1, "nested": {"x": 1, "y": 2}, "list": [1, 2]})");
    JsonValue overlay = parseJson(
        R"({"nested": {"y": 3, "z": 4}, "list": [9], "b": 5})");
    JsonValue merged = mergeJson(base, overlay);
    EXPECT_EQ(merged.find("a")->asInt(), 1);       // kept
    EXPECT_EQ(merged.find("b")->asInt(), 5);       // added
    EXPECT_EQ(merged.find("nested")->find("x")->asInt(), 1);
    EXPECT_EQ(merged.find("nested")->find("y")->asInt(), 3);
    EXPECT_EQ(merged.find("nested")->find("z")->asInt(), 4);
    // Arrays replace wholesale, never merge element-wise.
    ASSERT_EQ(merged.find("list")->items().size(), 1u);
    EXPECT_EQ(merged.find("list")->items()[0].asInt(), 9);
}

} // namespace
