/**
 * @file
 * Scenario schema tests: JSON -> typed scenario round-trips that run
 * through the registry and reproduce the exact metrics of the
 * equivalent hand-constructed engine/fleet runs, located schema errors
 * for unknown keys and bad values, and the smoke-overlay semantics.
 */

#include <gtest/gtest.h>

#include "config/runner.h"
#include "config/scenario.h"

using namespace pimba;

namespace {

constexpr const char *kServingJson = R"({
  "name": "roundtrip_serving",
  "kind": "serving",
  "systems": ["pimba"],
  "policies": ["sarathi"],
  "rate": 16,
  "model": "mamba2-2.7b",
  "engine": {"maxBatch": 32, "prefillChunk": 256},
  "trace": {
    "arrivals": "poisson",
    "numRequests": 24,
    "lengths": "uniform",
    "inputLen": 128, "inputLenMax": 512,
    "outputLen": 64, "outputLenMax": 192,
    "seed": 12345
  }
})";

TEST(ScenarioRoundTrip, ServingMatchesHandConstructedRun)
{
    Scenario sc = parseScenarioText(kServingJson);
    ASSERT_EQ(sc.kind, ScenarioKind::Serving);
    const auto &ss = std::get<ServingScenario>(sc.spec);
    ServingReport via_scenario = runServingPoint(
        ss, SystemKind::PIMBA, SchedulerPolicy::Sarathi,
        ExecutionMode::Blocked, 16.0);

    // The equivalent hand-constructed run, built without the registry.
    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Poisson;
    tc.ratePerSec = 16.0;
    tc.numRequests = 24;
    tc.lengths = LengthDistribution::Uniform;
    tc.inputLen = 128;
    tc.inputLenMax = 512;
    tc.outputLen = 64;
    tc.outputLenMax = 192;
    tc.seed = 12345;
    EngineConfig ec;
    ec.maxBatch = 32;
    ec.prefillChunk = Tokens(256);
    ec.policy = SchedulerPolicy::Sarathi;
    ec.executionMode = ExecutionMode::Blocked;
    ServingEngine engine(ServingSimulator(makeSystem(SystemKind::PIMBA)),
                         mamba2_2p7b(), ec);
    ServingReport by_hand = engine.run(generateTrace(tc));

    // Identical code path => bit-identical metrics, not just close.
    EXPECT_EQ(via_scenario.metrics.requests, by_hand.metrics.requests);
    EXPECT_EQ(via_scenario.metrics.generatedTokens,
              by_hand.metrics.generatedTokens);
    EXPECT_EQ(via_scenario.metrics.tokensPerSec,
              by_hand.metrics.tokensPerSec);
    EXPECT_EQ(via_scenario.metrics.ttft.p95, by_hand.metrics.ttft.p95);
    EXPECT_EQ(via_scenario.metrics.tpot.p95, by_hand.metrics.tpot.p95);
    EXPECT_EQ(via_scenario.iterations, by_hand.iterations);
    EXPECT_EQ(via_scenario.preemptions, by_hand.preemptions);
}

constexpr const char *kFleetJson = R"({
  "name": "roundtrip_fleet",
  "kind": "fleet",
  "model": "mamba2-2.7b",
  "fleet": {
    "label": "2p+1d",
    "router": "lot",
    "mode": "disaggregated",
    "prefillReplicas": 2,
    "link": "infiniband",
    "replicas": [{"system": "pimba", "count": 3}]
  },
  "trace": {
    "arrivals": "poisson", "rate": 12, "numRequests": 32,
    "inputLen": 256, "outputLen": 128, "seed": 777
  }
})";

TEST(ScenarioRoundTrip, FleetMatchesHandConstructedRun)
{
    Scenario sc = parseScenarioText(kFleetJson);
    ASSERT_EQ(sc.kind, ScenarioKind::Fleet);
    const auto &fs = std::get<FleetScenario>(sc.spec);
    ASSERT_EQ(fs.cases.size(), 1u);
    FleetReport via_scenario = runFleetCase(fs, fs.cases[0]);

    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Poisson;
    tc.ratePerSec = 12.0;
    tc.numRequests = 32;
    tc.inputLen = 256;
    tc.outputLen = 128;
    tc.seed = 777;
    FleetConfig cfg = homogeneousFleet(SystemKind::PIMBA, 3);
    cfg.router = RouterPolicy::LeastOutstandingTokens;
    cfg.mode = FleetMode::Disaggregated;
    cfg.prefillReplicas = 2;
    cfg.link = infinibandLink();
    FleetReport by_hand =
        Fleet(mamba2_2p7b(), cfg).run(generateTrace(tc));

    EXPECT_EQ(via_scenario.metrics.requests, by_hand.metrics.requests);
    EXPECT_EQ(via_scenario.metrics.ttft.p95, by_hand.metrics.ttft.p95);
    EXPECT_EQ(via_scenario.metrics.tpot.p95, by_hand.metrics.tpot.p95);
    EXPECT_EQ(via_scenario.transfer.totalBytes,
              by_hand.transfer.totalBytes);
    EXPECT_EQ(via_scenario.assignments.size(),
              by_hand.assignments.size());
    for (size_t i = 0; i < via_scenario.assignments.size(); ++i)
        EXPECT_EQ(via_scenario.assignments[i], by_hand.assignments[i]);
}

/// Expect parseScenarioText to fail mentioning @p needle; returns the
/// error for further checks.
ConfigError
expectSchemaError(const std::string &text, const std::string &needle)
{
    try {
        parseScenarioText(text);
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "message '" << e.what() << "' lacks '" << needle << "'";
        return e;
    }
    ADD_FAILURE() << "expected ConfigError mentioning " << needle;
    return ConfigError("none");
}

TEST(ScenarioSchema, UnknownKeysAreLocated)
{
    ConfigError e = expectSchemaError(
        "{\n"
        "  \"kind\": \"serving\",\n"
        "  \"systems\": [\"gpu\"],\n"
        "  \"rate\": 4,\n"
        "  \"model\": \"mamba2-2.7b\",\n"
        "  \"trace\": {\"numRequests\": 8, \"rats\": 3}\n"
        "}",
        "unknown key \"rats\"");
    EXPECT_EQ(e.line(), 6);
}

TEST(ScenarioSchema, UnknownEnumNamesListAlternatives)
{
    expectSchemaError(R"({"kind": "sorving"})", "unknown scenario kind");
    expectSchemaError(
        R"({"kind": "serving", "systems": ["tpu"], "rate": 1,
            "model": "mamba2-2.7b", "trace": {"numRequests": 4}})",
        "unknown system \"tpu\"");
    expectSchemaError(
        R"({"kind": "serving", "systems": ["gpu"], "rate": 1,
            "model": "nanogpt", "trace": {"numRequests": 4}})",
        "unknown model preset");
}

TEST(ScenarioSchema, LayerValidatorsRejectNonsense)
{
    // Negative memory budget -> engine validator, with JSON location.
    ConfigError e = expectSchemaError(
        "{\n"
        "  \"kind\": \"serving\",\n"
        "  \"systems\": [\"gpu\"],\n"
        "  \"rate\": 4,\n"
        "  \"model\": \"mamba2-2.7b\",\n"
        "  \"engine\": {\"memoryBudget\": -1},\n"
        "  \"trace\": {\"numRequests\": 8}\n"
        "}",
        "memoryBudget must be >= 0");
    EXPECT_EQ(e.line(), 6);

    expectSchemaError(
        R"({"kind": "serving", "systems": ["gpu"], "rate": 4,
            "model": "mamba2-2.7b",
            "engine": {"blockTokens": 0},
            "trace": {"numRequests": 8}})",
        "blockTokens must be >= 1");

    expectSchemaError(
        R"({"kind": "fleet", "model": "mamba2-2.7b",
            "fleet": {"replicas": []},
            "trace": {"rate": 4, "numRequests": 8}})",
        "at least 1 replica");

    expectSchemaError(
        R"({"kind": "serving", "systems": ["gpu"], "rate": 4,
            "model": "mamba2-2.7b",
            "trace": {"numRequests": 0}})",
        "numRequests must be >= 1");
}

TEST(ScenarioSchema, NegativeValuesForUnsignedFieldsAreLocatedErrors)
{
    // A negative length must fail at the parse, not wrap through the
    // unsigned field past the validators into a ~2^64-token prompt.
    ConfigError e = expectSchemaError(
        "{\n"
        "  \"kind\": \"serving\",\n"
        "  \"systems\": [\"gpu\"],\n"
        "  \"rate\": 4,\n"
        "  \"model\": \"mamba2-2.7b\",\n"
        "  \"trace\": {\"numRequests\": 8, \"inputLen\": -512}\n"
        "}",
        "\"inputLen\" must be >= 0");
    EXPECT_EQ(e.line(), 6);

    expectSchemaError(
        R"({"kind": "serving", "systems": ["gpu"], "rate": 4,
            "model": "mamba2-2.7b",
            "engine": {"prefillChunk": -1},
            "trace": {"numRequests": 8}})",
        "\"prefillChunk\" must be >= 0");
    expectSchemaError(
        R"({"kind": "serving", "systems": ["gpu"], "nGpus": -2,
            "rate": 4, "model": "mamba2-2.7b",
            "trace": {"numRequests": 8}})",
        "\"nGpus\" must be >= 1");
}

TEST(ScenarioSchema, OutOfRangeIntegersAreLocatedErrors)
{
    // Beyond int64: must not be undefined behavior in the cast.
    expectSchemaError(
        R"({"kind": "serving", "systems": ["gpu"], "rate": 4,
            "model": "mamba2-2.7b",
            "trace": {"numRequests": 1e19}})",
        "out of range");
    // Fits int64 but not int: must not silently wrap to 1.
    expectSchemaError(
        R"({"kind": "serving", "systems": ["gpu"], "rate": 4,
            "model": "mamba2-2.7b",
            "trace": {"numRequests": 4294967297}})",
        "out of int range");
}

TEST(ScenarioSchema, SarathiBoundsCheckedAgainstScenarioPolicies)
{
    // The Sarathi memo bound must be enforced even when "sarathi" only
    // appears in the scenario-level policy list, not inside "engine" —
    // otherwise `pimba validate` passes and the run aborts mid-flight.
    expectSchemaError(
        R"({"kind": "serving", "systems": ["gpu"],
            "policies": ["fcfs", "sarathi"], "rate": 4,
            "model": "mamba2-2.7b",
            "engine": {"maxBatch": 8192},
            "trace": {"numRequests": 8}})",
        "Sarathi");
    expectSchemaError(
        R"({"kind": "saturation", "systems": ["gpu"],
            "policies": ["sarathi"],
            "model": "mamba2-2.7b",
            "engine": {"iterTokenBudget": 65536},
            "trace": {"numRequests": 8}})",
        "Sarathi");
}

TEST(ScenarioSchema, RateAndRatesAreMutuallyExclusive)
{
    expectSchemaError(
        R"({"kind": "serving", "systems": ["gpu"],
            "rates": [1, 2], "rate": 32,
            "model": "mamba2-2.7b", "trace": {"numRequests": 4}})",
        "mutually exclusive");
}

TEST(ScenarioSchema, OversizedSeedsAreLocatedErrors)
{
    expectSchemaError(
        R"({"kind": "serving", "systems": ["gpu"], "rate": 1,
            "model": "mamba2-2.7b",
            "trace": {"numRequests": 4, "seed": 4294967296}})",
        "must fit in 32 bits");
}

TEST(ScenarioSchema, MissingRequiredKeysFail)
{
    expectSchemaError(R"({"name": "x"})", "missing required key");
    expectSchemaError(
        R"({"kind": "serving", "systems": ["gpu"],
            "model": "mamba2-2.7b", "trace": {"numRequests": 4}})",
        "needs \"rates\" or \"rate\"");
    expectSchemaError(
        R"({"kind": "fleet", "model": "mamba2-2.7b",
            "trace": {"rate": 1, "numRequests": 4}})",
        "needs \"fleet\" or \"fleets\"");
}

TEST(ScenarioSchema, SmokeOverlayAppliesOnlyWhenAsked)
{
    const char *json = R"({
      "kind": "serving",
      "systems": ["gpu"],
      "rates": [4, 8],
      "model": "mamba2-2.7b",
      "trace": {"numRequests": 64, "seed": 9},
      "smoke": {"rates": [4], "trace": {"numRequests": 8}}
    })";
    Scenario full = parseScenarioText(json, /*smoke=*/false);
    Scenario smoke = parseScenarioText(json, /*smoke=*/true);
    const auto &fs = std::get<ServingScenario>(full.spec);
    const auto &ss = std::get<ServingScenario>(smoke.spec);
    EXPECT_EQ(fs.trace.numRequests, 64);
    EXPECT_EQ(fs.rates.size(), 2u);
    EXPECT_EQ(ss.trace.numRequests, 8);
    EXPECT_EQ(ss.rates.size(), 1u);
    // Untouched fields survive the overlay.
    EXPECT_EQ(ss.trace.seed, 9u);
}

TEST(ScenarioSchema, ArrivalProcessAndClassKeysParse)
{
    Scenario sc = parseScenarioText(R"({
      "kind": "fleet", "model": "mamba2-2.7b",
      "fleet": {"replicas": [{"system": "pimba", "count": 2}]},
      "trace": {
        "arrivals": "diurnal", "rate": 8, "numRequests": 32,
        "diurnal": {"periodSec": 120, "peakToTrough": 3},
        "classes": [
          {"name": "interactive", "weight": 3,
           "inputLen": 128, "outputLen": 64},
          {"name": "batch", "weight": 1, "lengths": "uniform",
           "inputLen": 512, "inputLenMax": 1024,
           "outputLen": 256, "outputLenMax": 512}
        ]
      }
    })");
    const auto &fs = std::get<FleetScenario>(sc.spec);
    EXPECT_EQ(fs.trace.arrivals, ArrivalProcess::Diurnal);
    EXPECT_DOUBLE_EQ(fs.trace.diurnal.period.value(), 120.0);
    EXPECT_DOUBLE_EQ(fs.trace.diurnal.peakToTrough, 3.0);
    ASSERT_EQ(fs.trace.classes.size(), 2u);
    EXPECT_EQ(fs.trace.classes[0].name, "interactive");
    EXPECT_DOUBLE_EQ(fs.trace.classes[0].weight, 3.0);
    EXPECT_EQ(fs.trace.classes[1].lengths, LengthDistribution::Uniform);
    EXPECT_EQ(fs.trace.classes[1].inputLenMax, 1024u);

    Scenario mm = parseScenarioText(R"({
      "kind": "fleet", "model": "mamba2-2.7b",
      "fleet": {"replicas": [{"system": "pimba", "count": 2}]},
      "trace": {
        "arrivals": "mmpp", "rate": 8, "numRequests": 32,
        "mmpp": {"burstMultiplier": 6, "burstMeanSec": 2,
                 "idleMeanSec": 10}
      }
    })");
    const auto &ms = std::get<FleetScenario>(mm.spec);
    EXPECT_EQ(ms.trace.arrivals, ArrivalProcess::Mmpp);
    EXPECT_DOUBLE_EQ(ms.trace.mmpp.burstMultiplier, 6.0);
    EXPECT_DOUBLE_EQ(ms.trace.mmpp.burstMean.value(), 2.0);
    EXPECT_DOUBLE_EQ(ms.trace.mmpp.idleMean.value(), 10.0);
}

TEST(ScenarioSchema, ReplayFileKeysAreFleetOnlyAndValidated)
{
    // The serving sweep re-generates its trace per swept rate, so a
    // fixed replay file there would silently ignore the sweep variable.
    expectSchemaError(
        R"({"kind": "serving", "systems": ["gpu"], "rate": 4,
            "model": "mamba2-2.7b",
            "trace": {"numRequests": 8, "file": "t.csv"}})",
        "fleet scenarios only");
    expectSchemaError(
        R"({"kind": "fleet", "model": "mamba2-2.7b",
            "fleet": {"replicas": [{"system": "pimba", "count": 1}]},
            "trace": {"file": ""}})",
        "must name a pimba-trace-v1 file");
    expectSchemaError(
        R"({"kind": "fleet", "model": "mamba2-2.7b",
            "fleet": {"replicas": [{"system": "pimba", "count": 1}]},
            "trace": {"arrivals": "daily", "numRequests": 4}})",
        "expected poisson, fixed, diurnal, mmpp");
    expectSchemaError(
        R"({"kind": "fleet", "model": "mamba2-2.7b",
            "fleet": {"replicas": [{"system": "pimba", "count": 1}]},
            "trace": {"arrivals": "diurnal", "numRequests": 4,
                      "diurnal": {"peakToTrough": 0.5}}})",
        "peakToTrough");

    // Omitted numRequests on a replay trace means "all of the file",
    // not the generator's default 64.
    Scenario sc = parseScenarioText(R"({
      "kind": "fleet", "model": "mamba2-2.7b",
      "fleet": {"replicas": [{"system": "pimba", "count": 1}]},
      "trace": {"file": "t.csv"}
    })");
    EXPECT_EQ(std::get<FleetScenario>(sc.spec).trace.numRequests, 0);
}

TEST(ScenarioSchema, ScaledModelKeepsFamilyName)
{
    Scenario sc = parseScenarioText(R"({
      "kind": "serving", "systems": ["gpu"], "rate": 1,
      "model": {"base": "zamba2-7b", "scaleTo": 70e9},
      "trace": {"numRequests": 4}
    })");
    const auto &ss = std::get<ServingScenario>(sc.spec);
    EXPECT_EQ(ss.model.name, zamba2_7b().name);
    EXPECT_GT(ss.model.paramCount(), 5e10);
}

} // namespace
