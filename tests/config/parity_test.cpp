/**
 * @file
 * Preset parity: the checked-in scenario presets that mirror
 * built-in bench studies must reproduce them byte for byte. Since
 * bench_fig12_throughput / bench_fig16_h100 print exactly
 * runScenario(fig12Scenario()/fig16Scenario()).renderText(), equality
 * here pins the acceptance claim that `pimba run
 * scenarios/fig12_throughput.json` reproduces the bench's tables.
 */

#include <gtest/gtest.h>

#include "config/runner.h"

using namespace pimba;

namespace {

std::string
scenarioPath(const std::string &file)
{
    return std::string(PIMBA_SCENARIO_DIR) + "/" + file;
}

TEST(PresetParity, Fig12JsonMatchesBuiltin)
{
    Scenario from_json =
        loadScenarioFile(scenarioPath("fig12_throughput.json"));
    ScenarioReport json_rep = runScenario(from_json);
    ScenarioReport builtin_rep = runScenario(fig12Scenario());
    EXPECT_EQ(json_rep.renderText(), builtin_rep.renderText());
    EXPECT_EQ(json_rep.renderCsv(), builtin_rep.renderCsv());
}

TEST(PresetParity, Fig12SmokeOverlayMatchesBuiltinSmoke)
{
    Scenario from_json = loadScenarioFile(
        scenarioPath("fig12_throughput.json"), /*smoke=*/true);
    EXPECT_EQ(runScenario(from_json).renderText(),
              runScenario(fig12Scenario(/*smoke=*/true)).renderText());
}

TEST(PresetParity, Fig16JsonMatchesBuiltin)
{
    Scenario from_json =
        loadScenarioFile(scenarioPath("fig16_h100.json"));
    EXPECT_EQ(runScenario(from_json).renderText(),
              runScenario(fig16Scenario()).renderText());
}

TEST(PresetParity, ClusterRoutersJsonMatchesBuiltin)
{
    // Smoke mode keeps the fleet runs CI-sized; the builtin smoke flag
    // shrinks the same knob (trace length), so the reports must agree.
    Scenario from_json = loadScenarioFile(
        scenarioPath("cluster_routers.json"), /*smoke=*/true);
    EXPECT_EQ(
        runScenario(from_json).renderText(),
        runScenario(routerShootoutScenario(/*smoke=*/true)).renderText());
}

TEST(PresetParity, EveryPresetParsesAndValidates)
{
    const char *presets[] = {
        "fig12_throughput.json",  "fig15_neupims.json",
        "fig16_h100.json",        "serving_rate_sweep.json",
        "policy_shootout.json",   "cluster_routers.json",
        "cluster_disaggregation.json", "saturation_search.json",
        "fleet_planner.json",
    };
    for (const char *file : presets) {
        EXPECT_NO_THROW({
            loadScenarioFile(scenarioPath(file));
            loadScenarioFile(scenarioPath(file), /*smoke=*/true);
        }) << file;
    }
}

} // namespace
