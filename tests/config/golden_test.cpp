/**
 * @file
 * Golden-output pinning: the checked-in fixtures under tests/golden/
 * are the *pre-optimization* stdout of `pimba run` on the scenario
 * presets, captured before the step-memo flattening, the PIM
 * kernel-shape cache, and the layer-replicated op builder landed. The
 * hot-path work is only allowed to make the simulator faster, never to
 * move a digit — so every report here must match its fixture byte for
 * byte, at full size and under the smoke overlay.
 *
 * Regenerate a fixture (only when an intentional modeling change lands,
 * with the diff reviewed):
 *
 *     ./build/pimba run scenarios/<file>.json [--smoke] \
 *         > tests/golden/<name>.txt 2>/dev/null
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "config/runner.h"

using namespace pimba;

namespace {

std::string
readFixture(const std::string &name)
{
    std::string path = std::string(PIMBA_GOLDEN_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing golden fixture " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::string
runPreset(const std::string &file, bool smoke)
{
    Scenario sc = loadScenarioFile(
        std::string(PIMBA_SCENARIO_DIR) + "/" + file, smoke);
    return runScenario(sc, /*quiet=*/true).renderText();
}

TEST(GoldenOutput, Fig12SmokeMatchesPreOptimizationCapture)
{
    EXPECT_EQ(runPreset("fig12_throughput.json", true),
              readFixture("fig12_smoke.txt"));
}

TEST(GoldenOutput, Fig12FullMatchesPreOptimizationCapture)
{
    // The full paper-scale grid — the workload the hot-path work was
    // measured on, and the byte-identity claim of the speedup number.
    EXPECT_EQ(runPreset("fig12_throughput.json", false),
              readFixture("fig12_full.txt"));
}

TEST(GoldenOutput, ServingRateSweepSmokeMatchesPreOptimizationCapture)
{
    // Exercises the engine's decode/prefill/fused step memos end to
    // end (systems x policies x rates).
    EXPECT_EQ(runPreset("serving_rate_sweep.json", true),
              readFixture("serving_smoke.txt"));
}

TEST(GoldenOutput, ClusterRoutersSmokeMatchesPreOptimizationCapture)
{
    // Exercises the fleet's advance gating: skipped no-op broadcasts
    // must not change a single digit of the router comparison.
    EXPECT_EQ(runPreset("cluster_routers.json", true),
              readFixture("routers_smoke.txt"));
}

TEST(GoldenOutput, Fig16SmokeMatchesPreOptimizationCapture)
{
    EXPECT_EQ(runPreset("fig16_h100.json", true),
              readFixture("fig16_smoke.txt"));
}

} // namespace
