/**
 * @file
 * Layer-validator tests: validateEngineConfig / validateFleetConfig /
 * validateTraceConfig reject nonsensical values with actionable
 * messages (and accept every default and canonical config).
 */

#include <gtest/gtest.h>

#include "cluster/workload.h"
#include "serving/trace.h"

using namespace pimba;

namespace {

TEST(ValidateEngine, DefaultsAndCanonicalConfigsPass)
{
    EXPECT_EQ(validateEngineConfig(EngineConfig{}), "");
    EngineConfig sarathi;
    sarathi.policy = SchedulerPolicy::Sarathi;
    sarathi.iterTokenBudget = Tokens(768);
    EXPECT_EQ(validateEngineConfig(sarathi), "");
}

TEST(ValidateEngine, RejectsNonsenseWithActionableMessages)
{
    EngineConfig ec;
    ec.maxBatch = 0;
    EXPECT_NE(validateEngineConfig(ec).find("maxBatch"),
              std::string::npos);

    ec = EngineConfig{};
    ec.memoryBudget = Bytes(-5e9);
    EXPECT_NE(validateEngineConfig(ec).find("memoryBudget"),
              std::string::npos);

    ec = EngineConfig{};
    ec.blockTokens = Tokens(0);
    EXPECT_NE(validateEngineConfig(ec).find("blockTokens"),
              std::string::npos);

    ec = EngineConfig{};
    ec.prefillChunk = Tokens(0);
    EXPECT_NE(validateEngineConfig(ec).find("prefillChunk"),
              std::string::npos);

    ec = EngineConfig{};
    ec.slo.ttft = Seconds(0.0);
    EXPECT_NE(validateEngineConfig(ec).find("SLO"), std::string::npos);
}

TEST(ValidateEngine, SarathiMemoBoundsEnforced)
{
    EngineConfig ec;
    ec.policy = SchedulerPolicy::Sarathi;
    ec.maxBatch = 4096;
    EXPECT_NE(validateEngineConfig(ec).find("4096"), std::string::npos);

    ec = EngineConfig{};
    ec.policy = SchedulerPolicy::Sarathi;
    ec.iterTokenBudget = Tokens(1ull << 16);
    EXPECT_NE(validateEngineConfig(ec).find("65536"),
              std::string::npos);

    // The same budget is fine for the one-chunk policies.
    ec.policy = SchedulerPolicy::FCFS;
    EXPECT_EQ(validateEngineConfig(ec), "");
}

TEST(ValidateFleet, CanonicalFleetsPass)
{
    EXPECT_EQ(validateFleetConfig(homogeneousFleet(SystemKind::GPU, 2)),
              "");
    EXPECT_EQ(validateFleetConfig(heterogeneousFleet()), "");
    EXPECT_EQ(validateFleetConfig(disaggregatedPimbaFleet()), "");
    EXPECT_EQ(validateFleetConfig(mixedModePimbaFleet()), "");
}

TEST(ValidateFleet, RejectsNonsense)
{
    FleetConfig empty;
    EXPECT_NE(validateFleetConfig(empty).find("at least 1 replica"),
              std::string::npos);

    FleetConfig bad_gpus = homogeneousFleet(SystemKind::GPU, 2);
    bad_gpus.replicas[1].nGpus = 0;
    std::string msg = validateFleetConfig(bad_gpus);
    EXPECT_NE(msg.find("replica 1"), std::string::npos);
    EXPECT_NE(msg.find("nGpus"), std::string::npos);

    // A bad per-replica engine config surfaces with its index.
    FleetConfig bad_engine = homogeneousFleet(SystemKind::PIMBA, 2);
    bad_engine.replicas[0].engine.blockTokens = Tokens(0);
    EXPECT_NE(validateFleetConfig(bad_engine).find("replica 0"),
              std::string::npos);

    // Disaggregation needs both pools non-empty.
    FleetConfig disagg = homogeneousFleet(SystemKind::PIMBA, 2);
    disagg.mode = FleetMode::Disaggregated;
    disagg.prefillReplicas = 0;
    EXPECT_NE(validateFleetConfig(disagg).find(">= 1 prefill"),
              std::string::npos);
    disagg.prefillReplicas = 2; // no decode replica left
    EXPECT_NE(validateFleetConfig(disagg).find(">= 1 prefill"),
              std::string::npos);

    FleetConfig dead_link = disaggregatedPimbaFleet();
    dead_link.link.bandwidth = BytesPerSecond(0.0);
    EXPECT_NE(validateFleetConfig(dead_link).find("bandwidth"),
              std::string::npos);
}

TEST(ValidateTrace, DefaultsPassAndNonsenseRejected)
{
    EXPECT_EQ(validateTraceConfig(TraceConfig{}), "");

    TraceConfig tc;
    tc.ratePerSec = 0.0;
    EXPECT_NE(validateTraceConfig(tc).find("ratePerSec"),
              std::string::npos);

    tc = TraceConfig{};
    tc.numRequests = 0;
    EXPECT_NE(validateTraceConfig(tc).find("numRequests"),
              std::string::npos);

    tc = TraceConfig{};
    tc.inputLen = 0;
    EXPECT_NE(validateTraceConfig(tc).find("inputLen"),
              std::string::npos);

    tc = TraceConfig{};
    tc.lengths = LengthDistribution::Uniform;
    tc.inputLen = 512;
    tc.inputLenMax = 256;
    EXPECT_NE(validateTraceConfig(tc).find("inverted"),
              std::string::npos);

    // Inverted bounds are fine under the Fixed distribution (ignored).
    tc.lengths = LengthDistribution::Fixed;
    EXPECT_EQ(validateTraceConfig(tc), "");
}

} // namespace
