/**
 * @file
 * Self-benchmark subsystem tests: the smoke run produces every layer
 * with sane counters, renderJson() always passes its own validator
 * (the invariant CI's perf job leans on), and the validator actually
 * rejects the failure shapes it claims to catch.
 */

#include <gtest/gtest.h>

#include <string>

#include "perf/selfbench.h"

namespace pimba {
namespace {

SelfBenchReport
smokeReport()
{
    // One shared run: the smoke bench simulates real workloads, so
    // rerunning it per TEST would triple this suite's wall time.
    static SelfBenchReport rep = [] {
        SelfBenchOptions opts;
        opts.smoke = true;
        opts.reps = 1;
        return runSelfBench(opts);
    }();
    return rep;
}

TEST(SelfBench, SmokeRunCoversEveryLayer)
{
    SelfBenchReport rep = smokeReport();
    ASSERT_EQ(rep.layers.size(), 8u);
    const char *expected[] = {"step_cost",    "engine",
                              "engine_traced", "serving",
                              "fleet",         "fleet_replay",
                              "fleet_autoscale", "sweep_fig12"};
    for (size_t i = 0; i < rep.layers.size(); ++i) {
        EXPECT_EQ(rep.layers[i].name, expected[i]);
        EXPECT_FALSE(rep.layers[i].detail.empty());
        EXPECT_GE(rep.layers[i].wallSeconds, 0.0);
    }
    EXPECT_EQ(rep.scale, "smoke");
    EXPECT_EQ(rep.reps, 1);
    EXPECT_GT(rep.totalWallSeconds(), 0.0);
    // The macro layers push simulated requests through the engine.
    bool anyRequests = false;
    for (const auto &l : rep.layers)
        anyRequests |= l.simRequests > 0;
    EXPECT_TRUE(anyRequests);
}

TEST(SelfBench, EmittedJsonValidatesAgainstItsOwnSchema)
{
    std::string json = smokeReport().renderJson();
    EXPECT_EQ(validateSelfBenchJson(json), "");
    EXPECT_NE(json.find(SelfBenchReport::kSchema), std::string::npos);
}

TEST(SelfBench, ValidatorRejectsBrokenDocuments)
{
    std::string good = smokeReport().renderJson();

    // Not JSON at all.
    EXPECT_NE(validateSelfBenchJson("not json"), "");
    // Wrong schema id.
    std::string wrong = good;
    size_t at = wrong.find("pimba-selfbench-v1");
    ASSERT_NE(at, std::string::npos);
    wrong.replace(at, 18, "pimba-selfbench-v9");
    EXPECT_NE(validateSelfBenchJson(wrong), "");
    // A required per-layer member renamed away.
    std::string renamed = good;
    at = renamed.find("\"wallSeconds\"");
    ASSERT_NE(at, std::string::npos);
    renamed.replace(at, 13, "\"wallSecondz\"");
    EXPECT_NE(validateSelfBenchJson(renamed), "");
    // Layers emptied out.
    EXPECT_NE(validateSelfBenchJson(
                  "{\"schema\":\"pimba-selfbench-v1\",\"scale\":\"smoke\","
                  "\"reps\":1,\"totalWallSeconds\":0.1,\"layers\":[]}"),
              "");
}

} // namespace
} // namespace pimba
